// Package unprotected is a Go reproduction of "Unprotected Computing: A
// Large-Scale Study of DRAM Raw Error Rate on a Supercomputer"
// (Bautista-Gomez, Zyulkyarov, Unsal, McIntosh-Smith; SC'16).
//
// The paper monitored 923 ECC-less LPDDR nodes of the Mont-Blanc prototype
// for 13 months with a software memory scanner, collected >25 million raw
// error logs, distilled them into >55,000 independent DRAM faults and
// analyzed their spatial, temporal and environmental structure. This
// module implements the complete system: the scanner tool, the cluster /
// scheduler / thermal / radiation substrates that replace the physical
// machine (the hardware is simulated — see DESIGN.md for the substitution
// argument), the §II-C extraction methodology, every §III analysis
// (Figures 1–13, Tables I–II), the §IV resilience policies (quarantine,
// page retirement, adaptive checkpointing) and real SECDED/chipkill codecs
// for detectability classification.
//
// # The Source/Observer API
//
// The pipeline has exactly one shape — a merged, canonically ordered
// stream of faults and sessions feeding one-pass analyses — and the API
// exposes it through one door. A Source yields that stream (Simulate runs
// the campaign engine, Logs replays a directory of per-node log files —
// the paper's actual workflow) and Analyze drains it once, building the
// Study every figure and table renders from:
//
//	study, err := unprotected.Analyze(ctx, unprotected.Simulate(unprotected.DefaultConfig(42)))
//	if err != nil { ... }
//	study.FullReport(os.Stdout, unprotected.ReportOptions{Charts: true})
//
// Replaying logged data is the same call with the other source:
//
//	study, err := unprotected.Analyze(ctx, unprotected.Logs(dir,
//		unprotected.WithController("02-04")))
//
// Consumers with their own one-pass accumulators — RowHammer-style
// reliability analyses, exporters, online policies — implement Observer
// (or use FuncObserver) and ride the same single pass the internal
// figures use; WithoutDataset drops the in-memory dataset for
// pure-streaming runs:
//
//	var n int
//	counter := unprotected.FuncObserver{Fault: func(unprotected.Fault) { n++ }}
//	_, err := unprotected.Analyze(ctx, unprotected.Simulate(cfg),
//		unprotected.WithObservers(counter), unprotected.WithoutDataset())
//
// For full control, range over the stream directly; cancellation and
// early break both shut the source's worker pools down leak-free:
//
//	for ev, err := range unprotected.Simulate(cfg).Events(ctx) {
//		if err != nil { ... }
//		if ev.Kind == unprotected.EventFault { /* one fault at a time */ }
//	}
//
// The stream contract (ordering, cancellation semantics, zero-alloc
// delivery) is specified in DESIGN.md §7. The public API re-exports the
// core types; the substrates live under internal/ and are documented in
// DESIGN.md.
package unprotected

import (
	"context"
	"time"

	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/core"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/stream"
	"unprotected/internal/sweep"
)

// Study is one executed campaign with its analysis-ready dataset.
type Study = core.Study

// Config parameterizes a campaign (topology, scheduler calendar, fault
// profile, RNG seed).
type Config = campaign.Config

// ReportOptions selects FullReport sections.
type ReportOptions = core.ReportOptions

// Fault is one independent memory error with its derived classification
// (§II-C), the unit every analysis counts.
type Fault = extract.Fault

// Session is one scanner run on a node, from START to the matching END.
type Session = eventlog.Session

// NodeID locates a node on the prototype (blade-SoC, e.g. "02-04").
type NodeID = cluster.NodeID

// DefaultConfig returns the calibrated paper-scale configuration, which
// callers may modify before Simulate.
func DefaultConfig(seed uint64) *Config { return campaign.DefaultConfig(seed) }

// RunPaperStudy executes the full-scale calibrated study: 923 scanned
// nodes, February 2015 – February 2016. It is sugar for
// Analyze(ctx, Simulate(DefaultConfig(seed))).
func RunPaperStudy(seed uint64) *Study { return core.RunPaperStudy(seed) }

// Source yields the merged campaign stream — the stats prologue, then
// every fault in canonical (time, node, address, ...) order, then every
// session in (start time, host) order — as a single-use iterator.
// Simulate and Logs are the built-in implementations; external packages
// may implement Source to feed their own datasets through Analyze.
type Source = stream.Source

// Event is one element of a Source's stream: a Fault/Session sum with a
// one-time stats prologue. Exactly the field named by Kind is set.
type Event = stream.Event

// EventKind discriminates the Event sum type.
type EventKind = stream.Kind

const (
	// EventStats is the stream prologue carrying *SourceStats.
	EventStats = stream.KindStats
	// EventFault delivers Event.Fault.
	EventFault = stream.KindFault
	// EventSession delivers Event.Session.
	EventSession = stream.KindSession
)

// SourceStats are the scalar aggregates of a stream, delivered as its
// prologue so collecting consumers can preallocate exactly.
type SourceStats = stream.Stats

// Observer is a pluggable one-pass accumulator over the stream; attach
// with WithObservers. Faults arrive in canonical order, sessions in start
// order, and Finish runs once after the final delivery.
type Observer = stream.Observer

// FuncObserver adapts free functions to Observer; nil fields are skipped.
type FuncObserver = stream.FuncObserver

// Accumulators is the stock Observer bundle computing every
// online-computable §III figure (hour-of-day, temperature, multi-bit,
// simultaneity, daily series, regimes, headline) in one pass. Analyze
// always feeds an internal instance (Study.Figures); NewAccumulators
// builds an independent one for custom pipelines.
type Accumulators = analysis.Accumulators

// NewAccumulators builds a stock figure-accumulator bundle.
// excludeFromRegimes lists the nodes the §III-I regime analysis drops
// (the permanently failing controller node).
func NewAccumulators(excludeFromRegimes ...NodeID) *Accumulators {
	return analysis.NewAccumulators(excludeFromRegimes...)
}

// Option configures Analyze and the built-in sources; invalid values are
// reported as errors before the stream starts.
type Option = core.Option

// WithWorkers bounds the source's worker pool. Zero selects GOMAXPROCS;
// negative values are rejected.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithController names the permanently failing node excluded from
// MTBF-style analyses (§III-I); the empty string disables the exclusion.
// Required for log replay (log files do not record the controller);
// overrides the profile's controller for simulations.
func WithController(node string) Option { return core.WithController(node) }

// WithObservers attaches external accumulators to the single pass.
func WithObservers(obs ...Observer) Option { return core.WithObservers(obs...) }

// WithoutDataset makes Analyze a pure-streaming run: dataset slices stay
// empty while figures and attached observers are still fed.
func WithoutDataset() Option { return core.WithoutDataset() }

// Simulate returns the Source that executes the campaign described by
// cfg on the streaming engine.
func Simulate(cfg *Config) Source { return core.Simulate(cfg) }

// Logs returns the Source that replays a directory of per-node log files
// — the paper's actual workflow — through the parallel streaming loader.
func Logs(dir string, opts ...Option) Source { return core.Logs(dir, opts...) }

// Store returns the Source that reads a sharded, time-partitioned binary
// fault store built from text logs by cmd/faultstore. It yields the same
// canonical stream Logs does — text stays the interchange format; the
// store is the query-efficient form — and it is the one source that
// understands WithNodes and WithTimeRange, pruning whole segments via
// the store index before any I/O.
func Store(dir string, opts ...Option) Source { return core.Store(dir, opts...) }

// WithNodes restricts a Store source to the named nodes ("blade-SoC",
// e.g. "02-04"). Segments whose index node set is disjoint are never
// opened. Simulate and Logs reject this option.
func WithNodes(nodes ...string) Option { return core.WithNodes(nodes...) }

// WithTimeRange restricts a Store source to records whose prune key —
// fault first-observation time, session start time — falls in [from,
// to). Segments whose index bounds fall outside are never opened.
// Simulate and Logs reject this option.
func WithTimeRange(from, to time.Time) Option { return core.WithTimeRange(from, to) }

// StoreHealth is the queryable report of a degraded store read: the
// segments the query skipped, each with its error and the index-declared
// record counts the skip cost. The zero value is ready to pass to
// WithDegraded; it is safe for concurrent use and accumulates across
// queries.
type StoreHealth = core.StoreHealth

// WithDegraded switches a Store source to degraded reads: a segment that
// cannot be read or fails its checksum is skipped — recorded in h with
// diagnostics, when h is non-nil — instead of failing the analysis.
// Strict hard-error remains the default. Simulate and Logs reject this
// option.
func WithDegraded(h *StoreHealth) Option { return core.WithDegraded(h) }

// Analyze drains src once and assembles the Study: dataset slices
// (unless WithoutDataset), incremental figure accumulators and every
// attached Observer are fed from the same single pass in canonical
// order. Cancelling ctx aborts the run leak-free and returns ctx.Err().
func Analyze(ctx context.Context, src Source, opts ...Option) (*Study, error) {
	return core.Analyze(ctx, src, opts...)
}

// SweepSpec is a declarative parameter sweep: a base Config plus axes to
// vary, expanding by cartesian product into scenarios. The paper is one
// environment; a sweep asks how its headline figures move with altitude
// flux, scan cadence, cluster size, pattern mix or seed replicates.
type SweepSpec = sweep.Spec

// SweepAxis is one sweep dimension: a named, ordered set of points.
type SweepAxis = sweep.Axis

// SweepPoint is one value on an axis: a label plus the mutation it
// applies to a scenario's private Config copy.
type SweepPoint = sweep.Point

// SweepScenario is one expanded axis combination with its own Config.
type SweepScenario = sweep.Scenario

// SweepResult is a completed sweep: per-scenario summaries sorted by
// scenario name, renderable as a cross-scenario comparison table that is
// byte-identical for every worker budget and submission order.
type SweepResult = sweep.Result

// SweepScenarioResult pairs one scenario with its comparison summary and
// the pure-streaming Study behind it.
type SweepScenarioResult = sweep.ScenarioResult

// SweepSummary is one scenario's headline comparison row: raw error
// rate, multi-bit fraction, day/night contrast, worst node.
type SweepSummary = analysis.ScenarioSummary

// SweepOption configures Sweep; invalid values are reported as errors
// before any scenario starts.
type SweepOption = sweep.Option

// WithSweepBudget bounds the sweep's global worker budget: a shared
// semaphore caps concurrent node simulations across all scenarios, so N
// campaigns never oversubscribe the machine. Zero selects GOMAXPROCS.
func WithSweepBudget(n int) SweepOption { return sweep.WithBudget(n) }

// ParseSweepAxes parses "name=v1,v2,..." axis specs (numeric axes accept
// lo:hi:step ranges) into sweep axes; see cmd/sweep for the grammar and
// the known axis names. Malformed specs are descriptive errors.
func ParseSweepAxes(specs []string) ([]SweepAxis, error) { return sweep.ParseAxes(specs) }

// Sweep expands the spec and runs every scenario concurrently under one
// worker budget, each as its own Simulate source through Analyze in
// pure-streaming mode. Cancelling ctx drains the whole fleet leak-free.
func Sweep(ctx context.Context, spec *SweepSpec, opts ...SweepOption) (*SweepResult, error) {
	return sweep.Run(ctx, spec, opts...)
}

// RunStudy executes a custom configuration.
//
// Deprecated: use Analyze(ctx, Simulate(cfg)) — identical output, plus
// cancellation, custom observers and pure-streaming runs.
func RunStudy(cfg *Config) *Study { return core.RunStudy(cfg) }

// StudyFromLogs rebuilds a study from a directory of per-node log files.
// controller optionally names the permanently failing node excluded from
// MTBF-style analyses ("" disables); workers bounds the loader pool
// (0 means GOMAXPROCS, negative is an error).
//
// Deprecated: use Analyze(ctx, Logs(dir, WithController(controller),
// WithWorkers(workers))) — identical output, plus cancellation, custom
// observers and pure-streaming runs.
func StudyFromLogs(dir, controller string, workers int) (*Study, error) {
	return core.StudyFromLogs(dir, controller, workers)
}

// StreamHandler receives the merged campaign stream; see StreamCampaign.
//
// Deprecated: implement Observer (or use FuncObserver) and attach it via
// WithObservers, or range over Simulate(cfg).Events(ctx); unlike the
// callbacks, the iterator can stop the producers mid-stream.
type StreamHandler = campaign.StreamHandler

// CampaignStats are the scalar aggregates StreamCampaign returns.
//
// Deprecated: the equivalent SourceStats arrive as the stream's
// EventStats prologue.
type CampaignStats = campaign.Stats

// StreamCampaign executes a campaign and delivers faults and sessions
// incrementally in the canonical (time, node, ...) order, without
// materializing the dataset.
//
// Deprecated: range over Simulate(cfg).Events(ctx) — the same sequence,
// with cancellation and early break stopping the engine leak-free
// (StreamCampaign callbacks cannot abort the stream).
func StreamCampaign(cfg *Config, h StreamHandler) *CampaignStats {
	return campaign.Stream(cfg, h)
}
