// Package unprotected is a Go reproduction of "Unprotected Computing: A
// Large-Scale Study of DRAM Raw Error Rate on a Supercomputer"
// (Bautista-Gomez, Zyulkyarov, Unsal, McIntosh-Smith; SC'16).
//
// The paper monitored 923 ECC-less LPDDR nodes of the Mont-Blanc prototype
// for 13 months with a software memory scanner, collected >25 million raw
// error logs, distilled them into >55,000 independent DRAM faults and
// analyzed their spatial, temporal and environmental structure. This
// module implements the complete system: the scanner tool, the cluster /
// scheduler / thermal / radiation substrates that replace the physical
// machine (the hardware is simulated — see DESIGN.md for the substitution
// argument), the §II-C extraction methodology, every §III analysis
// (Figures 1–13, Tables I–II), the §IV resilience policies (quarantine,
// page retirement, adaptive checkpointing) and real SECDED/chipkill codecs
// for detectability classification.
//
// Quick start:
//
//	study := unprotected.RunPaperStudy(42)
//	study.FullReport(os.Stdout, unprotected.ReportOptions{Charts: true})
//
// Consumers that do not need the whole dataset in memory can stream it in
// canonical order instead:
//
//	unprotected.StreamCampaign(unprotected.DefaultConfig(42), unprotected.StreamHandler{
//		Fault: func(f unprotected.Fault) { /* one fault at a time */ },
//	})
//
// The public API re-exports the core types; the substrates live under
// internal/ and are documented in DESIGN.md.
package unprotected

import (
	"unprotected/internal/campaign"
	"unprotected/internal/core"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
)

// Study is one executed campaign with its analysis-ready dataset.
type Study = core.Study

// Config parameterizes a campaign (topology, scheduler calendar, fault
// profile, RNG seed).
type Config = campaign.Config

// ReportOptions selects FullReport sections.
type ReportOptions = core.ReportOptions

// RunPaperStudy executes the full-scale calibrated study: 923 scanned
// nodes, February 2015 – February 2016.
func RunPaperStudy(seed uint64) *Study { return core.RunPaperStudy(seed) }

// RunStudy executes a custom configuration.
func RunStudy(cfg *Config) *Study { return core.RunStudy(cfg) }

// DefaultConfig returns the calibrated paper-scale configuration, which
// callers may modify before RunStudy.
func DefaultConfig(seed uint64) *Config { return campaign.DefaultConfig(seed) }

// StudyFromLogs rebuilds a study from a directory of per-node log files —
// the paper's actual workflow — using the parallel streaming replay
// loader. controller optionally names the permanently failing node
// excluded from MTBF-style analyses ("" disables); workers bounds the
// loader pool (0 means GOMAXPROCS). The resulting Study is
// interchangeable with one from RunStudy over the same dataset, and its
// report is identical for every workers value.
func StudyFromLogs(dir, controller string, workers int) (*Study, error) {
	return core.StudyFromLogs(dir, controller, workers)
}

// Fault is one independent memory error with its derived classification
// (§II-C), the unit every analysis counts.
type Fault = extract.Fault

// Session is one scanner run on a node, from START to the matching END.
type Session = eventlog.Session

// StreamHandler receives the merged campaign stream; see StreamCampaign.
type StreamHandler = campaign.StreamHandler

// CampaignStats are the scalar aggregates StreamCampaign returns.
type CampaignStats = campaign.Stats

// StreamCampaign executes a campaign and delivers faults and sessions
// incrementally in the canonical (time, node, ...) order, without
// materializing the dataset. The delivered sequence is identical to the
// slices a RunStudy over the same Config would collect; use it when the
// consumer aggregates on the fly (exporters, counters, online policies)
// rather than analyzing the whole dataset at once.
func StreamCampaign(cfg *Config, h StreamHandler) *CampaignStats {
	return campaign.Stream(cfg, h)
}
