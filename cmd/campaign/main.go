// Command campaign runs the full 13-month measurement campaign and writes
// the resulting dataset.
//
// Usage:
//
//	campaign [-seed N] [-stream] [-faults FILE] [-sessions FILE] [-logdir DIR]
//
// -faults writes every independent memory fault as a canonical ERROR log
// line (the §II-C extracted view, ~58k lines); -sessions writes START/END
// pairs for every scanner session; -logdir exports the prototype's
// one-log-file-per-node layout, which `analyze -from-logs` consumes.
// Without flags a summary is printed. The raw 25M-record stream is not
// materialized — it is counted during simulation exactly as the analysis
// requires (see DESIGN.md).
//
// -stream writes the -faults / -sessions files directly off the campaign's
// merged event stream: each fault and session is formatted as the k-way
// merge emits it, so the merged dataset is never materialized (per-node
// buffers still exist inside the engine) and the output is byte-identical
// to the collect-all path. Streaming skips the headline analysis (which
// needs the whole dataset) and is incompatible with -logdir (the per-node
// layout regroups the stream by node).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/core"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
)

func vaddrOf(f extract.Fault) uint64 { return dram.VirtAddr(f.Addr) }

func pageOf(f extract.Fault) uint64 { return dram.PhysPage(uint64(f.Node.Index()), f.Addr) }

func main() {
	seed := flag.Uint64("seed", 42, "campaign RNG seed")
	stream := flag.Bool("stream", false, "write outputs off the event stream without materializing the dataset")
	faultsPath := flag.String("faults", "", "write independent faults as ERROR log lines")
	sessionsPath := flag.String("sessions", "", "write sessions as START/END log lines")
	logDir := flag.String("logdir", "", "write per-node log files (the prototype's on-disk layout)")
	flag.Parse()

	if *stream {
		if *logDir != "" {
			fail(errors.New("-stream is incompatible with -logdir"))
		}
		if err := streamCampaign(*seed, *faultsPath, *sessionsPath); err != nil {
			fail(err)
		}
		return
	}

	study := core.RunPaperStudy(*seed)
	h := analysis.ComputeHeadline(study.Dataset)
	fmt.Printf("campaign complete: %d raw logs, %d independent faults, %.0f node-hours, %.0f TBh\n",
		h.RawLogs, h.IndependentFaults, float64(h.NodeHours), float64(h.TotalTBh))

	if *faultsPath != "" {
		if err := writeFaults(study, *faultsPath); err != nil {
			fail(err)
		}
		fmt.Println("faults written to", *faultsPath)
	}
	if *sessionsPath != "" {
		if err := writeSessions(study, *sessionsPath); err != nil {
			fail(err)
		}
		fmt.Println("sessions written to", *sessionsPath)
	}
	if *logDir != "" {
		if err := logstore.Export(study.Dataset.Sessions, study.Dataset.Faults, *logDir); err != nil {
			fail(err)
		}
		fmt.Println("per-node logs written to", *logDir, "— analyze them with: analyze -from-logs", *logDir)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}

// faultRecord renders a fault in the canonical ERROR line shape.
func faultRecord(f extract.Fault) eventlog.Record {
	return eventlog.Record{
		Kind: eventlog.KindError, At: f.FirstAt, Host: f.Node,
		VAddr: vaddrOf(f), Actual: f.Actual, Expected: f.Expected,
		TempC: f.TempC, PhysPage: pageOf(f),
	}
}

// writeSession emits a session's START/END pair (END omitted for hard
// reboots, which never logged one).
func writeSession(w *eventlog.Writer, s eventlog.Session) error {
	if err := w.Write(eventlog.Record{
		Kind: eventlog.KindStart, At: s.From, Host: s.Host, AllocBytes: s.AllocBytes,
	}); err != nil {
		return err
	}
	if s.Truncated {
		return nil
	}
	return w.Write(eventlog.Record{Kind: eventlog.KindEnd, At: s.To, Host: s.Host})
}

// streamCampaign is the -stream path: faults and sessions go to disk as
// the campaign's k-way merge emits them, one record at a time.
func streamCampaign(seed uint64, faultsPath, sessionsPath string) (err error) {
	var h campaign.StreamHandler
	var closers []func() error
	defer func() {
		for _, closer := range closers {
			err = errors.Join(err, closer())
		}
	}()
	// Each sink tracks its own error, so a faults-file failure cannot
	// silently truncate a healthy sessions file (and vice versa); the
	// first error per sink is what the caller sees, joined.
	newSink := func(path string, write func(w *eventlog.Writer, sinkErr *error)) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := eventlog.NewWriter(f)
		var sinkErr error
		write(w, &sinkErr)
		closers = append(closers, func() error {
			if err := w.Flush(); sinkErr == nil {
				sinkErr = err
			}
			return errors.Join(sinkErr, f.Close())
		})
		return nil
	}
	if faultsPath != "" {
		err := newSink(faultsPath, func(w *eventlog.Writer, sinkErr *error) {
			h.Fault = func(fault extract.Fault) {
				if *sinkErr == nil {
					*sinkErr = w.Write(faultRecord(fault))
				}
			}
		})
		if err != nil {
			return err
		}
	}
	if sessionsPath != "" {
		err := newSink(sessionsPath, func(w *eventlog.Writer, sinkErr *error) {
			h.Session = func(s eventlog.Session) {
				if *sinkErr == nil {
					*sinkErr = writeSession(w, s)
				}
			}
		})
		if err != nil {
			return err
		}
	}

	stats := campaign.Stream(campaign.DefaultConfig(seed), h)
	for _, closer := range closers {
		err = errors.Join(err, closer())
	}
	closers = nil
	if err != nil {
		return err
	}
	fmt.Printf("campaign complete (streamed): %d raw logs, %d independent faults, %d sessions, %d alloc failures\n",
		stats.RawLogs, stats.Faults, stats.Sessions, stats.AllocFails)
	if faultsPath != "" {
		fmt.Println("faults streamed to", faultsPath)
	}
	if sessionsPath != "" {
		fmt.Println("sessions streamed to", sessionsPath)
	}
	return nil
}

func writeFaults(study *core.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := eventlog.NewWriter(f)
	for _, fault := range study.Dataset.Faults {
		if err := w.Write(faultRecord(fault)); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeSessions(study *core.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := eventlog.NewWriter(f)
	for _, s := range study.Dataset.Sessions {
		if err := writeSession(w, s); err != nil {
			return err
		}
	}
	return w.Flush()
}
