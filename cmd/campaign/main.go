// Command campaign runs the full 13-month measurement campaign and writes
// the resulting dataset.
//
// Usage:
//
//	campaign [-seed N] [-stream] [-faults FILE] [-sessions FILE] [-logdir DIR]
//
// -faults writes every independent memory fault as a canonical ERROR log
// line (the §II-C extracted view, ~58k lines); -sessions writes START/END
// pairs for every scanner session; -logdir exports the prototype's
// one-log-file-per-node layout, which `analyze -from-logs` consumes.
// Without flags a summary is printed. The raw 25M-record stream is not
// materialized — it is counted during simulation exactly as the analysis
// requires (see DESIGN.md).
//
// -stream writes the -faults / -sessions / -logdir outputs directly off
// the campaign's merged event stream: the tool ranges over the engine's
// event iterator (filtered to the halves with sinks, so a sessions-only
// export never classifies faults) and formats each fault and session as
// the k-way merge emits it, so the merged dataset is never materialized
// (per-node buffers still exist inside the engine) and the output loads
// back identically to the collect-all path. For -logdir the stream is
// demultiplexed into the one-file-per-node layout by the descriptor-capped
// store (LRU eviction keeps burst-hot nodes open); ERROR lines within a
// node file are time-ordered, as are its START/END lines, which is all the
// replay loader requires. A sink write error aborts the stream on the
// spot — no further records are formatted or written to any sink
// (simulation itself has already finished by first delivery); SIGINT
// cancels mid-simulation too, truncating the run.
// Streaming skips the headline analysis (which needs the whole dataset).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"unprotected"
	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
	"unprotected/internal/thermal"
)

func vaddrOf(f extract.Fault) uint64 { return dram.VirtAddr(f.Addr) }

func pageOf(f extract.Fault) uint64 { return dram.PhysPage(uint64(f.Node.Index()), f.Addr) }

func main() {
	seed := flag.Uint64("seed", 42, "campaign RNG seed")
	stream := flag.Bool("stream", false, "write outputs off the event stream without materializing the dataset")
	faultsPath := flag.String("faults", "", "write independent faults as ERROR log lines")
	sessionsPath := flag.String("sessions", "", "write sessions as START/END log lines")
	logDir := flag.String("logdir", "", "write per-node log files (the prototype's on-disk layout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *stream {
		if err := streamCampaign(ctx, *seed, *faultsPath, *sessionsPath, *logDir); err != nil {
			fail(err)
		}
		return
	}

	study, err := unprotected.Analyze(ctx, unprotected.Simulate(unprotected.DefaultConfig(*seed)))
	if err != nil {
		fail(err)
	}
	h := analysis.ComputeHeadline(study.Dataset)
	fmt.Printf("campaign complete: %d raw logs, %d independent faults, %.0f node-hours, %.0f TBh\n",
		h.RawLogs, h.IndependentFaults, float64(h.NodeHours), float64(h.TotalTBh))

	if *faultsPath != "" {
		if err := writeFaults(study, *faultsPath); err != nil {
			fail(err)
		}
		fmt.Println("faults written to", *faultsPath)
	}
	if *sessionsPath != "" {
		if err := writeSessions(study, *sessionsPath); err != nil {
			fail(err)
		}
		fmt.Println("sessions written to", *sessionsPath)
	}
	if *logDir != "" {
		if err := logstore.Export(study.Dataset.Sessions, study.Dataset.Faults, *logDir); err != nil {
			fail(err)
		}
		fmt.Println("per-node logs written to", *logDir, "— analyze them with: analyze -from-logs", *logDir)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}

// faultRecord renders a fault in the canonical ERROR line shape. The
// last=/logs= fields carry the collapsed run's extent and raw volume so a
// re-import reconstructs the fault exactly instead of re-collapsing it.
func faultRecord(f extract.Fault) eventlog.Record {
	return eventlog.Record{
		Kind: eventlog.KindError, At: f.FirstAt, Host: f.Node,
		VAddr: vaddrOf(f), Actual: f.Actual, Expected: f.Expected,
		TempC: f.TempC, PhysPage: pageOf(f),
		LastAt: f.LastAt, Logs: max(f.Logs, 1),
	}
}

// sessionRecords renders a session as its START/END pair (END omitted for
// hard reboots, which never logged one). Sessions carry no temperature, so
// the records must say temp=NA — a zero TempC would fabricate a 0°C
// reading. Every session sink shares this construction so the flat files
// and the per-node layout cannot drift apart.
func sessionRecords(s eventlog.Session) []eventlog.Record {
	recs := []eventlog.Record{{
		Kind: eventlog.KindStart, At: s.From, Host: s.Host, AllocBytes: s.AllocBytes,
		TempC: thermal.NoReading,
	}}
	if !s.Truncated {
		recs = append(recs, eventlog.Record{
			Kind: eventlog.KindEnd, At: s.To, Host: s.Host, TempC: thermal.NoReading,
		})
	}
	return recs
}

// writeSession emits a session's records to a flat file.
func writeSession(w *eventlog.Writer, s eventlog.Session) error {
	for _, rec := range sessionRecords(s) {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// streamCampaign is the -stream path: faults and sessions go to disk as
// the engine's k-way merge emits them, one record at a time, consumed
// straight off the Source iterator. The first failing sink (or ctx
// cancellation) aborts the stream immediately — returning out of the
// range-over-Events loop stops the producers — after which every opened
// sink is still flushed and closed, errors joined.
func streamCampaign(ctx context.Context, seed uint64, faultsPath, sessionsPath, logDir string) (err error) {
	var faultSinks []func(extract.Fault) error
	var sessionSinks []func(eventlog.Session) error
	var closers []func() error
	defer func() {
		for _, closer := range closers {
			err = errors.Join(err, closer())
		}
	}()
	newFileSink := func(path string) (*eventlog.Writer, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		w := eventlog.NewWriter(f)
		closers = append(closers, func() error {
			return errors.Join(w.Flush(), f.Close())
		})
		return w, nil
	}
	if faultsPath != "" {
		w, err := newFileSink(faultsPath)
		if err != nil {
			return err
		}
		faultSinks = append(faultSinks, func(f extract.Fault) error {
			return w.Write(faultRecord(f))
		})
	}
	if sessionsPath != "" {
		w, err := newFileSink(sessionsPath)
		if err != nil {
			return err
		}
		sessionSinks = append(sessionSinks, func(s eventlog.Session) error {
			return writeSession(w, s)
		})
	}
	if logDir != "" {
		// Demultiplex the merged stream into the one-file-per-node layout.
		// The merge visits a bursting node many times in a row, so the
		// store's LRU descriptor budget keeps hot files open. ERROR lines
		// land before START/END lines within each file (faults precede
		// sessions in the stream); both kinds are time-ordered per node,
		// which is all the replay loader's collapser and accounting need.
		store, err := logstore.NewStore(logDir)
		if err != nil {
			return err
		}
		closers = append(closers, store.Close)
		faultSinks = append(faultSinks, func(f extract.Fault) error {
			return store.Append(faultRecord(f))
		})
		sessionSinks = append(sessionSinks, func(s eventlog.Session) error {
			for _, rec := range sessionRecords(s) {
				if err := store.Append(rec); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// EventsFiltered skips the extraction/sorting of any half with no
	// sink, like the old nil-callback handler did; the prologue's counts
	// still cover the full campaign.
	var stats unprotected.SourceStats
	events := campaign.EventsFiltered(ctx, unprotected.DefaultConfig(seed),
		len(faultSinks) > 0, len(sessionSinks) > 0)
	for ev, evErr := range events {
		if evErr != nil {
			return evErr
		}
		switch ev.Kind {
		case unprotected.EventStats:
			stats = *ev.Stats
		case unprotected.EventFault:
			for _, sink := range faultSinks {
				if err := sink(ev.Fault); err != nil {
					return err
				}
			}
		case unprotected.EventSession:
			for _, sink := range sessionSinks {
				if err := sink(ev.Session); err != nil {
					return err
				}
			}
		}
	}
	for _, closer := range closers {
		err = errors.Join(err, closer())
	}
	closers = nil
	if err != nil {
		return err
	}
	fmt.Printf("campaign complete (streamed): %d raw logs, %d independent faults, %d sessions, %d alloc failures\n",
		stats.RawLogs, stats.Faults, stats.Sessions, stats.AllocFails)
	if faultsPath != "" {
		fmt.Println("faults streamed to", faultsPath)
	}
	if sessionsPath != "" {
		fmt.Println("sessions streamed to", sessionsPath)
	}
	if logDir != "" {
		fmt.Println("per-node logs streamed to", logDir, "— analyze them with: analyze -from-logs", logDir)
	}
	return nil
}

func writeFaults(study *unprotected.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := eventlog.NewWriter(f)
	for _, fault := range study.Dataset.Faults {
		if err := w.Write(faultRecord(fault)); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeSessions(study *unprotected.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := eventlog.NewWriter(f)
	for _, s := range study.Dataset.Sessions {
		if err := writeSession(w, s); err != nil {
			return err
		}
	}
	return w.Flush()
}
