// Command campaign runs the full 13-month measurement campaign and writes
// the resulting dataset.
//
// Usage:
//
//	campaign [-seed N] [-faults FILE] [-sessions FILE] [-logdir DIR]
//
// -faults writes every independent memory fault as a canonical ERROR log
// line (the §II-C extracted view, ~58k lines); -sessions writes START/END
// pairs for every scanner session; -logdir exports the prototype's
// one-log-file-per-node layout, which `analyze -from-logs` consumes.
// Without flags a summary is printed. The raw 25M-record stream is not
// materialized — it is counted during simulation exactly as the analysis
// requires (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"unprotected/internal/analysis"
	"unprotected/internal/core"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
)

func vaddrOf(f extract.Fault) uint64 { return dram.VirtAddr(f.Addr) }

func pageOf(f extract.Fault) uint64 { return dram.PhysPage(uint64(f.Node.Index()), f.Addr) }

func main() {
	seed := flag.Uint64("seed", 42, "campaign RNG seed")
	faultsPath := flag.String("faults", "", "write independent faults as ERROR log lines")
	sessionsPath := flag.String("sessions", "", "write sessions as START/END log lines")
	logDir := flag.String("logdir", "", "write per-node log files (the prototype's on-disk layout)")
	flag.Parse()

	study := core.RunPaperStudy(*seed)
	h := analysis.ComputeHeadline(study.Dataset)
	fmt.Printf("campaign complete: %d raw logs, %d independent faults, %.0f node-hours, %.0f TBh\n",
		h.RawLogs, h.IndependentFaults, float64(h.NodeHours), float64(h.TotalTBh))

	if *faultsPath != "" {
		if err := writeFaults(study, *faultsPath); err != nil {
			fail(err)
		}
		fmt.Println("faults written to", *faultsPath)
	}
	if *sessionsPath != "" {
		if err := writeSessions(study, *sessionsPath); err != nil {
			fail(err)
		}
		fmt.Println("sessions written to", *sessionsPath)
	}
	if *logDir != "" {
		if err := logstore.Export(study.Dataset.Sessions, study.Dataset.Faults, *logDir); err != nil {
			fail(err)
		}
		fmt.Println("per-node logs written to", *logDir, "— analyze them with: analyze -from-logs", *logDir)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}

func writeFaults(study *core.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := eventlog.NewWriter(f)
	for _, fault := range study.Dataset.Faults {
		rec := eventlog.Record{
			Kind: eventlog.KindError, At: fault.FirstAt, Host: fault.Node,
			VAddr: vaddrOf(fault), Actual: fault.Actual, Expected: fault.Expected,
			TempC: fault.TempC, PhysPage: pageOf(fault),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeSessions(study *core.Study, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := eventlog.NewWriter(f)
	for _, s := range study.Dataset.Sessions {
		if err := w.Write(eventlog.Record{
			Kind: eventlog.KindStart, At: s.From, Host: s.Host, AllocBytes: s.AllocBytes,
		}); err != nil {
			return err
		}
		if s.Truncated {
			continue // hard reboot: no END was ever logged
		}
		if err := w.Write(eventlog.Record{
			Kind: eventlog.KindEnd, At: s.To, Host: s.Host,
		}); err != nil {
			return err
		}
	}
	return w.Flush()
}
