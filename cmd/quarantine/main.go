// Command quarantine reproduces Table II: it replays the study's
// independent-error log under the §IV quarantine policy for a sweep of
// quarantine periods and prints surviving errors, node-days spent in
// quarantine and the resulting system MTBF.
//
// Usage:
//
//	quarantine [-seed N] [-periods 0,5,10,15,20,25,30] [-trigger N]
//	           [-window HOURS] [-include-permanent]
//
// By default the permanently failing node (02-04) is excluded, as in the
// paper; -include-permanent keeps it to show how one bad node dominates.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"unprotected"
	"unprotected/internal/quarantine"
	"unprotected/internal/render"
)

func main() {
	seed := flag.Uint64("seed", 42, "campaign RNG seed")
	periods := flag.String("periods", "0,5,10,15,20,25,30", "quarantine periods in days")
	trigger := flag.Int("trigger", 4, "errors within the window that trigger quarantine")
	windowH := flag.Int("window", 24, "trigger window in hours")
	includePermanent := flag.Bool("include-permanent", false, "keep the permanently failing node")
	flag.Parse()

	days, err := parsePeriods(*periods)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quarantine:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	study, err := unprotected.Analyze(ctx, unprotected.Simulate(unprotected.DefaultConfig(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "quarantine:", err)
		os.Exit(1)
	}
	var exclude = study.ExcludedNodes()
	if *includePermanent {
		exclude = nil
	}

	t := &render.Table{
		Title:   "Table II: system MTBF for different quarantine periods",
		Headers: []string{"Quarantine (days)", "Errors", "Prevented", "Entries", "Node-days", "MTBF (h)"},
	}
	for _, d := range days {
		p := quarantine.Policy{
			Period:        time.Duration(d) * 24 * time.Hour,
			TriggerCount:  *trigger,
			TriggerWindow: time.Duration(*windowH) * time.Hour,
		}
		res := quarantine.Simulate(study.Dataset.Faults, p, exclude...)
		t.AddRow(
			strconv.Itoa(d),
			strconv.Itoa(res.Errors),
			strconv.Itoa(res.Prevented),
			strconv.Itoa(res.Entries),
			fmt.Sprintf("%.0f", res.NodeDaysQuarantined),
			fmt.Sprintf("%.1f", res.MTBFHours),
		)
	}
	t.Render(os.Stdout)
}

func parsePeriods(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad period %q", part)
		}
		out = append(out, d)
	}
	return out, nil
}
