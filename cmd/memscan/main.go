// Command memscan is the memory error scanning tool itself (§II-B),
// running against an in-process ECC-less DRAM device with injectable
// faults. It is the smallest end-to-end demonstration of the system: real
// words are written, corrupted by real fault models, detected by reading
// them back, and logged in the canonical format.
//
// Usage:
//
//	memscan [-words N] [-iters N] [-mode flip|counter] [-weak N]
//	        [-strike-rate R] [-seed N]
//
// -weak injects N intermittent weak cells; -strike-rate injects transient
// particle strikes at R per iteration (Poisson). Log records go to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/timebase"
)

func main() {
	words := flag.Int("words", 1<<20, "device size in 32-bit words")
	iters := flag.Int64("iters", 20, "scan iterations to run")
	modeFlag := flag.String("mode", "flip", "write pattern: flip or counter")
	weak := flag.Int("weak", 2, "number of weak cells to inject")
	strikeRate := flag.Float64("strike-rate", 0.3, "mean particle strikes per iteration")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	mode := scanner.FlipMode
	switch *modeFlag {
	case "flip":
	case "counter":
		mode = scanner.CounterMode
	default:
		fmt.Fprintln(os.Stderr, "memscan: unknown mode", *modeFlag)
		os.Exit(2)
	}

	r := rng.New(*seed)
	host := cluster.NodeID{Blade: 1, SoC: 2}
	dev := dram.NewDevice(uint64(host.Index()), *words, nil)

	// Weak cells: pick true-polarity bits so leaks are observable.
	for i := 0; i < *weak; i++ {
		addr := dram.Addr(r.IntN(*words))
		for bit := 0; bit < dram.WordBits; bit++ {
			if dev.Polarity.IsTrueCell(uint64(host.Index()), addr, bit) {
				dev.AddWeakCell(&dram.WeakCell{Addr: addr, Bit: bit, LeakProb: 0.4, Active: true})
				fmt.Fprintf(os.Stderr, "# injected weak cell at word %d bit %d\n", addr, bit)
				break
			}
		}
	}

	// On a write error the scan must abort *cleanly*: calling os.Exit
	// inside the record callback would skip the final Flush and drop every
	// buffered log line — the worst possible failure mode for a logging
	// tool. Instead the callback closes the scanner's stop channel and the
	// tool flushes whatever it has before exiting non-zero.
	out := eventlog.NewWriter(os.Stdout)
	var writeErr error
	stop := make(chan struct{})
	s := scanner.New(host, dev, mode, func(rec eventlog.Record) {
		if writeErr != nil {
			return
		}
		if err := out.Write(rec); err != nil {
			writeErr = err
			close(stop)
		}
	}, r)
	scrambler := dram.NewScrambler()
	s.Perturb = func(iter int64, at timebase.T, d *dram.Device) {
		for n := r.Poisson(*strikeRate); n > 0; n-- {
			addr := dram.Addr(r.IntN(*words))
			cells := scrambler.PhysRun(r.IntN(dram.WordBits), 1+weightedSize(r))
			if d.Strike(addr, cells) != 0 {
				fmt.Fprintf(os.Stderr, "# strike at word %d cells %v (iteration %d)\n", addr, cells, iter)
			}
		}
	}

	errs := s.Run(timebase.FromTime(timebase.Epoch.AddDate(0, 4, 0)), *iters, stop)
	flushErr := out.Flush()
	if writeErr != nil || flushErr != nil {
		if writeErr != nil {
			fmt.Fprintln(os.Stderr, "memscan: write:", writeErr)
		}
		if flushErr != nil {
			fmt.Fprintln(os.Stderr, "memscan: flush:", flushErr)
		}
		fmt.Fprintf(os.Stderr, "# scan aborted after flushing %d records\n", out.Count())
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# scan finished: %d ERROR records over %d iterations\n", errs, *iters)
}

// weightedSize approximates the strike-size tail: mostly single-cell.
func weightedSize(r *rng.Stream) int {
	if r.Bernoulli(0.9) {
		return 0
	}
	return r.IntN(4)
}
