// Command sweep runs N parameterized campaigns concurrently under one
// worker budget and prints a cross-scenario comparison of the paper's
// headline figures.
//
// Usage:
//
//	sweep -axis name=v1,v2,... [-axis ...] [-seed N] [-parallel N]
//
// Each -axis adds one sweep dimension; axes combine by cartesian
// product. Numeric axes accept lo:hi:step ranges. Known axes:
//
//	altitude  site altitude in meters (drives neutron flux)
//	ambient   background strike rate per node-hour
//	blades    cluster size: only blades 1..N participate
//	pattern   scanner pattern mix: flip, counter or mixed
//	scrub     mean busy+idle cycle hours (scan cadence)
//	seed      RNG seed replicates
//
// Example — does the Fig 6 day/night contrast survive a move to
// altitude, at two cluster sizes?
//
//	sweep -axis altitude=100:3100:1500 -axis blades=8,72
//
// -parallel bounds the global worker budget: all scenarios share one
// semaphore, so N concurrent campaigns never run more than -parallel
// node simulations at once (0 = GOMAXPROCS). The comparison table is
// byte-identical for every -parallel value; rows are sorted in natural
// (numeric-aware) scenario-name order, so seed=10 follows seed=2.
// SIGINT cancels the whole fleet, draining every pool leak-free.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"unprotected"
)

// axisFlags collects repeated -axis values.
type axisFlags []string

func (a *axisFlags) String() string { return fmt.Sprint([]string(*a)) }

func (a *axisFlags) Set(v string) error {
	*a = append(*a, v)
	return nil
}

// errUsage signals a flag-parse failure the flag package has already
// reported (with usage) on stderr; main must not print it again.
var errUsage = errors.New("usage")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		// Library errors already carry the "sweep: " prefix; don't
		// double it.
		fmt.Fprintln(os.Stderr, "sweep:", strings.TrimPrefix(err.Error(), "sweep: "))
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var axes axisFlags
	fs.Var(&axes, "axis", "axis spec name=v1,v2 or name=lo:hi:step (repeatable; axes combine by cartesian product)")
	seed := fs.Uint64("seed", 42, "base campaign RNG seed (the seed axis overrides it)")
	parallel := fs.Int("parallel", 0, "global worker budget shared by all scenarios (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if len(axes) == 0 {
		return fmt.Errorf("no -axis given (e.g. -axis altitude=100:3100:1500 -axis seed=1,2)")
	}

	parsed, err := unprotected.ParseSweepAxes(axes)
	if err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d (0 selects GOMAXPROCS)", *parallel)
	}
	spec := &unprotected.SweepSpec{Base: unprotected.DefaultConfig(*seed), Axes: parsed}
	// Expand once up front so the spec is fully validated before the
	// header is printed: a failing invocation must not emit a
	// plausible-looking scenario count first. Expansion is shallow
	// (Configs, not rosters), so Sweep repeating it is free.
	scenarios, err := spec.Scenarios()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sweep: %d scenarios\n\n", len(scenarios))
	result, err := unprotected.Sweep(ctx, spec, unprotected.WithSweepBudget(*parallel))
	if err != nil {
		return err
	}
	result.Render(stdout)
	return nil
}
