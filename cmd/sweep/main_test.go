package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// goldenArgs is the acceptance sweep: a 2x2 grid (pattern x seed) on a
// two-blade cluster, fixed seeds, explicit -parallel.
var goldenArgs = []string{
	"-axis", "blades=2",
	"-axis", "pattern=flip,counter",
	"-axis", "seed=1,2",
	"-parallel", "2",
}

// TestSweepCommandGolden pins the full cmd/sweep output for a small 2x2
// sweep: the scenario count line plus the cross-scenario comparison
// table, byte for byte. The same invocation must render identically for
// every -parallel value (the cmd-level determinism contract).
func TestSweepCommandGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), goldenArgs, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sweep_2x2.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./cmd/sweep -run TestSweepCommandGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}

	// Same sweep, serialized: -parallel must never change the bytes.
	serial := append([]string{}, goldenArgs[:len(goldenArgs)-2]...)
	serial = append(serial, "-parallel", "1")
	var again bytes.Buffer
	if err := run(context.Background(), serial, &again, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatalf("-parallel 1 diverges from golden:\n%s", again.Bytes())
	}
}

// TestSweepCommandErrors: flag and spec defects surface as errors, not
// output.
func TestSweepCommandErrors(t *testing.T) {
	cases := []struct {
		args    []string
		wantSub string
	}{
		{nil, "no -axis"},
		{[]string{"-axis", "voltage=1"}, "unknown axis"},
		{[]string{"-axis", "seed=1", "-axis", "seed=2"}, "duplicate axis"},
		{[]string{"-axis", "altitude=0:3000:0"}, "step must be > 0"},
		{[]string{"-axis", "seed=1", "-parallel", "-1"}, "-parallel must be >= 0"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := run(context.Background(), tc.args, &buf, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("run(%v) error %v, want mention of %q", tc.args, err, tc.wantSub)
		}
		// A failing invocation must not print a plausible-looking
		// scenario-count header first.
		if buf.Len() != 0 {
			t.Fatalf("run(%v) wrote %q to stdout before failing", tc.args, buf.String())
		}
	}

	// Flag-parse failures are reported once, by the flag package itself
	// (error + usage on stderr); run signals them with errUsage so main
	// does not print them a second time.
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-bogus"}, &stdout, &stderr)
	if !errors.Is(err, errUsage) {
		t.Fatalf("bad flag returned %v, want errUsage", err)
	}
	if !strings.Contains(stderr.String(), "-bogus") || !strings.Contains(stderr.String(), "Usage") {
		t.Fatalf("flag package output missing from stderr: %q", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("bad flag wrote %q to stdout", stdout.String())
	}
}
