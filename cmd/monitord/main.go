// Command monitord is the long-running fleet monitor: it tails a live
// directory of per-node log files — the same files cmd/memscan appends —
// and serves the continuously updated study over HTTP.
//
// Usage:
//
//	monitord -dir DIR [-addr :8080] [-interval 1s] [-controller 02-04]
//
// Endpoints:
//
//	GET /study       full study report (JSON)
//	GET /metrics     Prometheus text exposition
//	GET /healthz     liveness + snapshot epoch
//	GET /nodes       per-node verdicts
//	GET /nodes/{id}  one node's verdict
//
// The daemon polls the directory every -interval, ingests appended lines
// and newly created node files, and publishes an immutable snapshot per
// round; HTTP readers never contend with ingest. Snapshots are rebuilt in
// the canonical analysis order, so once the writers go quiet the report
// is byte-identical to `analyze -from-logs DIR` over the same directory
// (DESIGN.md §13). SIGTERM or SIGINT drains gracefully: in-flight
// requests finish, the tail loop winds down, descriptors are released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unprotected/internal/monitor"
)

func main() {
	dir := flag.String("dir", "", "log directory to tail (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	interval := flag.Duration("interval", time.Second, "tail poll interval")
	controller := flag.String("controller", "", "permanently failing node to exclude from MTBF analyses (e.g. 02-04)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "monitord: -dir is required")
		os.Exit(2)
	}

	m, err := monitor.New(*dir,
		monitor.WithInterval(*interval),
		monitor.WithController(*controller))
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runErr := make(chan error, 1)
	go func() { runErr <- m.Run(ctx) }()

	srv := &http.Server{Addr: *addr, Handler: m.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "monitord: tailing %s, serving on %s\n", *dir, *addr)

	exit := 0
	select {
	case <-ctx.Done():
		// Signal: drain in-flight requests, then wind the tail loop down.
		fmt.Fprintln(os.Stderr, "monitord: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "monitord: shutdown:", err)
			exit = 1
		}
		cancel()
		if err := <-runErr; err != nil {
			fmt.Fprintln(os.Stderr, "monitord:", err)
			exit = 1
		}
	case err := <-runErr:
		// The tail loop died (unreadable directory, corrupt line): the
		// daemon has nothing live left to serve.
		if err != nil {
			fmt.Fprintln(os.Stderr, "monitord:", err)
		}
		srv.Close()
		exit = 1
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "monitord:", err)
		}
		stop()
		exit = 1
	}
	os.Exit(exit)
}
