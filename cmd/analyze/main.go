// Command analyze runs the full study and regenerates every figure and
// table of the paper.
//
// Usage:
//
//	analyze [-seed N] [-charts] [-heatmaps] [-csv DIR]
//	        [-from-logs DIR [-controller NODE] [-workers N]]
//	        [-store DIR [-controller NODE] [-workers N]]
//
// Without flags it prints the numeric report (headlines, Table I, Table
// II, per-figure statistics). -charts adds ASCII renderings of Figs 4–13,
// -heatmaps the Figs 1–3 node maps, and -csv writes every figure's data as
// CSV files for external plotting.
//
// -from-logs replays a directory of per-node log files — the paper's
// actual workflow — through the parallel streaming loader: files are
// collapsed by a worker pool (-workers, default GOMAXPROCS), merged into
// the canonical order and fed to the incremental figure accumulators in a
// single pass. The report is byte-identical for every -workers value.
//
// -store reads a binary fault store built by cmd/faultstore instead of
// text logs: the same downstream flags apply and the report is
// byte-identical to replaying the logs the store was ingested from.
//
// Both paths go through unprotected.Analyze over the matching Source;
// SIGINT cancels the run, winding the engine's worker pools down cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"unprotected"
	"unprotected/internal/analysis"
	"unprotected/internal/core"
	"unprotected/internal/quarantine"
)

func main() {
	seed := flag.Uint64("seed", 42, "campaign RNG seed")
	charts := flag.Bool("charts", false, "render ASCII charts for Figs 4-13")
	heatmaps := flag.Bool("heatmaps", false, "render Figs 1-3 node heat maps")
	csvDir := flag.String("csv", "", "write per-figure CSV files to this directory")
	fromLogs := flag.String("from-logs", "", "analyze per-node log files from this directory instead of simulating")
	storeDir := flag.String("store", "", "analyze a binary fault store (built by cmd/faultstore) instead of simulating")
	controller := flag.String("controller", "02-04", "permanently failing node to exclude from MTBF analyses (with -from-logs)")
	workers := flag.Int("workers", 0, "source worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *fromLogs != "" && *storeDir != "" {
		fmt.Fprintln(os.Stderr, "analyze: -from-logs and -store are mutually exclusive")
		os.Exit(2)
	}
	var src unprotected.Source
	opts := []unprotected.Option{unprotected.WithWorkers(*workers)}
	switch {
	case *fromLogs != "":
		src = unprotected.Logs(*fromLogs)
		opts = append(opts, unprotected.WithController(*controller))
	case *storeDir != "":
		src = unprotected.Store(*storeDir)
		opts = append(opts, unprotected.WithController(*controller))
	default:
		src = unprotected.Simulate(unprotected.DefaultConfig(*seed))
	}
	study, err := unprotected.Analyze(ctx, src, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	study.FullReport(os.Stdout, core.ReportOptions{Charts: *charts, Heatmaps: *heatmaps})

	if *csvDir != "" {
		rows := quarantineCSVRows(study)
		if err := analysis.WriteCSVs(study.Dataset, rows, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		fmt.Println("CSV files written to", *csvDir)
	}
}

// quarantineCSVRows renders the Table II sweep for CSV export.
func quarantineCSVRows(study *core.Study) [][]string {
	var rows [][]string
	for _, r := range quarantine.Sweep(study.Dataset.Faults, quarantine.PaperPeriods, study.ExcludedNodes()...) {
		rows = append(rows, []string{
			fmt.Sprint(int(r.Policy.Period.Hours() / 24)),
			fmt.Sprint(r.Errors),
			fmt.Sprintf("%.0f", r.NodeDaysQuarantined),
			fmt.Sprintf("%.1f", r.MTBFHours),
		})
	}
	return rows
}
