// Command faultstore manages the sharded, time-partitioned binary fault
// store. Text log directories stay the interchange format; the store is
// the query-efficient form: a manifest index over fixed-layout columnar
// segments that node-subset and time-range queries prune before any I/O.
//
// Usage:
//
//	faultstore ingest  [-shards N] [-window DUR] [-workers N] LOGDIR STOREDIR
//	faultstore export  [-workers N] STOREDIR LOGDIR
//	faultstore compact STOREDIR
//	faultstore query   [-nodes LIST] [-from TIME] [-to TIME] [-workers N] STOREDIR
//	faultstore fsck    [-repair] STOREDIR
//
// ingest streams a directory of per-node text logs through the replay
// pipeline into the store, appending a new segment generation if the
// store already exists. export renders the store back to text logs —
// for a store ingested from a canonically exported directory the output
// is byte-identical to the input. compact merges segment generations,
// re-collapses runs split across ingest batches and rewrites one
// segment per (shard, window). query prints matching faults as
// canonical ERROR log lines on stdout and a summary — including how
// many segments the index pruned without opening — on stderr.
//
// fsck verifies the store: every manifest-referenced segment must read,
// pass its CRC and agree with its index entry, and no unreferenced
// segment or stranded MANIFEST.tmp may be left on disk (the litter of a
// crashed pre-commit ingest or compact). With -repair, corrupt segments
// are moved into quarantine/ and dropped from the manifest, and orphans
// are deleted; the exit status reflects the store's state after repair.
//
// Times accept RFC 3339 ("2015-06-01T00:00:00Z") or a plain date
// ("2015-06-01", midnight UTC). Nodes are "blade-SoC" IDs, e.g. "02-04".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/faultstore"
	"unprotected/internal/stream"
	"unprotected/internal/timebase"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "ingest":
		err = runIngest(ctx, os.Args[2:])
	case "export":
		err = runExport(ctx, os.Args[2:])
	case "compact":
		err = runCompact(os.Args[2:])
	case "query":
		err = runQuery(ctx, os.Args[2:])
	case "fsck":
		err = runFsck(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  faultstore ingest  [-shards N] [-window DUR] [-workers N] LOGDIR STOREDIR
  faultstore export  [-workers N] STOREDIR LOGDIR
  faultstore compact STOREDIR
  faultstore query   [-nodes LIST] [-from TIME] [-to TIME] [-workers N] STOREDIR
  faultstore fsck    [-repair] STOREDIR`)
	os.Exit(2)
}

func runIngest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	shards := fs.Int("shards", faultstore.DefaultShards, "node-hash shard count")
	window := fs.Duration("window", faultstore.DefaultWindow, "time-partition window length (fixed at store creation)")
	workers := fs.Int("workers", 0, "loader worker pool size (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	opts := []faultstore.IngestOption{
		faultstore.WithShards(*shards), faultstore.WithIngestWorkers(*workers),
	}
	// Forward -window only when given: an explicit WithWindow must match
	// the window persisted in an existing store's manifest, while an
	// additive ingest without the flag adopts the stored window.
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "window" {
			opts = append(opts, faultstore.WithWindow(*window))
		}
	})
	stats, err := faultstore.Ingest(ctx, fs.Arg(0), fs.Arg(1), opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ingested %d faults, %d sessions (%d raw logs) into %d segments (%d bytes)\n",
		stats.Faults, stats.Sessions, stats.RawLogs, stats.Segments, stats.Bytes)
	return nil
}

func runExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	workers := fs.Int("workers", 0, "decode worker pool size (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	return faultstore.Export(ctx, fs.Arg(0), fs.Arg(1), *workers)
}

func runCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	stats, err := faultstore.Compact(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "compacted %d segments to %d, %d faults to %d\n",
		stats.SegmentsBefore, stats.SegmentsAfter, stats.FaultsBefore, stats.FaultsAfter)
	return nil
}

func runQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated node subset (blade-SoC, e.g. 02-04,03-11)")
	from := fs.String("from", "", "range start (RFC 3339 or YYYY-MM-DD), inclusive")
	to := fs.String("to", "", "range end, exclusive")
	workers := fs.Int("workers", 0, "decode worker pool size (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	q := faultstore.Query{Workers: *workers}
	if *nodes != "" {
		for _, n := range strings.Split(*nodes, ",") {
			id, err := cluster.ParseNodeID(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			q.Nodes = append(q.Nodes, id)
		}
	}
	if (*from == "") != (*to == "") {
		return fmt.Errorf("-from and -to must be given together")
	}
	if *from != "" {
		fromT, err := parseTime(*from)
		if err != nil {
			return err
		}
		toT, err := parseTime(*to)
		if err != nil {
			return err
		}
		if !fromT.Before(toT) {
			return fmt.Errorf("-from %v is not before -to %v", fromT, toT)
		}
		q.HasRange = true
		q.From = timebase.FromTime(fromT)
		q.To = timebase.FromTime(toT)
	}

	s, err := faultstore.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	var faults, sessions int
	var line []byte
	for ev, err := range s.Events(ctx, q) {
		if err != nil {
			return err
		}
		switch ev.Kind {
		case stream.KindFault:
			faults++
			f := ev.Fault
			rec := eventlog.Record{
				Kind: eventlog.KindError, At: f.FirstAt, Host: f.Node,
				VAddr:  dram.VirtAddr(f.Addr),
				Actual: f.Actual, Expected: f.Expected,
				TempC:    f.TempC,
				PhysPage: dram.PhysPage(uint64(f.Node.Index()), f.Addr),
				LastAt:   f.LastAt, Logs: max(f.Logs, 1),
			}
			line = append(rec.AppendText(line[:0]), '\n')
			if _, err := os.Stdout.Write(line); err != nil {
				return err
			}
		case stream.KindSession:
			sessions++
		}
	}
	fmt.Fprintf(os.Stderr, "%d faults, %d sessions; %d/%d segments opened (%d pruned by index)\n",
		faults, sessions, s.SegmentsOpened(), s.Segments(), s.SegmentsPruned())
	return nil
}

func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := fs.Bool("repair", false, "quarantine corrupt segments and delete orphans")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	var opts []faultstore.FsckOption
	if *repair {
		opts = append(opts, faultstore.WithRepair())
	}
	rep, err := faultstore.Fsck(fs.Arg(0), opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, rep)
	// After -repair the findings were acted on: quarantined references are
	// gone from the manifest and orphans are deleted, so the store is
	// consistent again and the exit status says so.
	if !rep.Clean() && !*repair {
		return fmt.Errorf("store has %d corrupt segment(s), %d orphan(s)",
			len(rep.Corrupt), len(rep.Orphans))
	}
	return nil
}

// parseTime accepts RFC 3339 or a plain UTC date.
func parseTime(s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad time %q (want RFC 3339 or YYYY-MM-DD)", s)
	}
	return t, nil
}
