package unprotected_test

import (
	"bytes"
	"strings"
	"testing"

	"unprotected"
	"unprotected/internal/logstore"
)

func TestPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := unprotected.DefaultConfig(5)
	if cfg == nil || cfg.Profile == nil {
		t.Fatal("default config incomplete")
	}
	s := unprotected.RunStudy(cfg)
	if s.Dataset == nil || len(s.Dataset.Faults) == 0 {
		t.Fatal("study produced no dataset")
	}
	var buf bytes.Buffer
	s.FullReport(&buf, unprotected.ReportOptions{})
	if !strings.Contains(buf.String(), "independent memory faults") {
		t.Fatal("report missing headline")
	}
}

func TestPublicStudyFromLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	s := unprotected.RunStudy(unprotected.DefaultConfig(3))
	dir := t.TempDir()
	if err := logstore.Export(s.Dataset.Sessions, s.Dataset.Faults, dir); err != nil {
		t.Fatal(err)
	}
	replayed, err := unprotected.StudyFromLogs(dir, "02-04", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Dataset.Faults) != len(s.Dataset.Faults) {
		t.Fatalf("replayed %d faults, want %d", len(replayed.Dataset.Faults), len(s.Dataset.Faults))
	}
	var buf bytes.Buffer
	replayed.FullReport(&buf, unprotected.ReportOptions{})
	if !strings.Contains(buf.String(), "independent memory faults") {
		t.Fatal("replayed report missing headline")
	}
}
