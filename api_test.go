package unprotected_test

import (
	"bytes"
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"slices"
	"strings"
	"testing"

	"unprotected"
	"unprotected/internal/logstore"
)

// publicSurface is the golden list of exported identifiers of package
// unprotected. An accidental removal, rename, or addition fails this test:
// removals and renames break consumers, and additions are API commitments
// that deserve the deliberate step of updating this list.
var publicSurface = []string{
	"Accumulators",
	"Analyze",
	"CampaignStats",
	"Config",
	"DefaultConfig",
	"Event",
	"EventFault",
	"EventKind",
	"EventSession",
	"EventStats",
	"Fault",
	"FuncObserver",
	"Logs",
	"NewAccumulators",
	"NodeID",
	"Observer",
	"Option",
	"ParseSweepAxes",
	"ReportOptions",
	"RunPaperStudy",
	"RunStudy",
	"Session",
	"Simulate",
	"Source",
	"SourceStats",
	"Store",
	"StoreHealth",
	"StreamCampaign",
	"StreamHandler",
	"Study",
	"StudyFromLogs",
	"Sweep",
	"SweepAxis",
	"SweepOption",
	"SweepPoint",
	"SweepResult",
	"SweepScenario",
	"SweepScenarioResult",
	"SweepSpec",
	"SweepSummary",
	"WithController",
	"WithDegraded",
	"WithNodes",
	"WithObservers",
	"WithSweepBudget",
	"WithTimeRange",
	"WithWorkers",
	"WithoutDataset",
}

// TestPublicSurfaceGolden enumerates the package's exported top-level
// identifiers from source and compares them against the golden list.
func TestPublicSurfaceGolden(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["unprotected"]
	if !ok {
		t.Fatalf("package unprotected not found in %v", pkgs)
	}
	var got []string
	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					got = append(got, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							got = append(got, sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() {
								got = append(got, n.Name)
							}
						}
					}
				}
			}
		}
	}
	slices.Sort(got)
	got = slices.Compact(got)
	want := slices.Clone(publicSurface)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		for _, name := range got {
			if !slices.Contains(want, name) {
				t.Errorf("exported %q is not in the golden surface (new API? update publicSurface deliberately)", name)
			}
		}
		for _, name := range want {
			if !slices.Contains(got, name) {
				t.Errorf("golden identifier %q is no longer exported (breaking change!)", name)
			}
		}
	}
}

func TestPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := unprotected.DefaultConfig(5)
	if cfg == nil || cfg.Profile == nil {
		t.Fatal("default config incomplete")
	}
	s := unprotected.RunStudy(cfg)
	if s.Dataset == nil || len(s.Dataset.Faults) == 0 {
		t.Fatal("study produced no dataset")
	}
	var buf bytes.Buffer
	s.FullReport(&buf, unprotected.ReportOptions{})
	if !strings.Contains(buf.String(), "independent memory faults") {
		t.Fatal("report missing headline")
	}
}

// TestPublicAnalyze drives the new unified entry point end to end through
// the public surface: simulation source, log source, custom observers and
// the raw iterator — all against the deprecated doors they replace.
func TestPublicAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	ctx := context.Background()
	legacy := unprotected.RunStudy(unprotected.DefaultConfig(6))
	var want bytes.Buffer
	legacy.FullReport(&want, unprotected.ReportOptions{Charts: true})

	var observed int
	counter := unprotected.FuncObserver{Fault: func(unprotected.Fault) { observed++ }}
	study, err := unprotected.Analyze(ctx, unprotected.Simulate(unprotected.DefaultConfig(6)),
		unprotected.WithObservers(counter))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	study.FullReport(&got, unprotected.ReportOptions{Charts: true})
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("Analyze(Simulate) report diverges from RunStudy")
	}
	if observed != len(study.Dataset.Faults) {
		t.Fatalf("observer saw %d faults, dataset holds %d", observed, len(study.Dataset.Faults))
	}

	// Round-trip through the log source.
	dir := t.TempDir()
	if err := logstore.Export(study.Dataset.Sessions, study.Dataset.Faults, dir); err != nil {
		t.Fatal(err)
	}
	fromLogs, err := unprotected.Analyze(ctx, unprotected.Logs(dir, unprotected.WithController("02-04")))
	if err != nil {
		t.Fatal(err)
	}
	wrapper, err := unprotected.StudyFromLogs(dir, "02-04", 0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	fromLogs.FullReport(&a, unprotected.ReportOptions{Charts: true})
	wrapper.FullReport(&b, unprotected.ReportOptions{Charts: true})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Analyze(Logs) report diverges from StudyFromLogs")
	}

	// The raw iterator delivers the stream the deprecated callbacks did.
	var faults, sessions int
	cb := unprotected.StreamCampaign(unprotected.DefaultConfig(6), unprotected.StreamHandler{
		Fault:   func(unprotected.Fault) { faults++ },
		Session: func(unprotected.Session) { sessions++ },
	})
	var itFaults, itSessions int
	for ev, err := range unprotected.Simulate(unprotected.DefaultConfig(6)).Events(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case unprotected.EventFault:
			itFaults++
		case unprotected.EventSession:
			itSessions++
		}
	}
	if itFaults != faults || itFaults != cb.Faults || itSessions != sessions || itSessions != cb.Sessions {
		t.Fatalf("iterator delivered %d/%d, callbacks %d/%d (stats %d/%d)",
			itFaults, itSessions, faults, sessions, cb.Faults, cb.Sessions)
	}
}

// TestSweepPublicAPI drives the sweep surface end to end: parsed axes,
// cartesian expansion, a budgeted run and the rendered comparison — all
// through package unprotected.
func TestSweepPublicAPI(t *testing.T) {
	axes, err := unprotected.ParseSweepAxes([]string{"blades=2", "seed=1,2"})
	if err != nil {
		t.Fatal(err)
	}
	spec := &unprotected.SweepSpec{Base: unprotected.DefaultConfig(42), Axes: axes}
	scenarios, err := spec.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scenarios))
	}
	res, err := unprotected.Sweep(context.Background(), spec, unprotected.WithSweepBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("sweep returned %d scenarios, want 2", len(res.Scenarios))
	}
	for i, sc := range res.Scenarios {
		if sc.Summary.Faults == 0 || sc.Study == nil {
			t.Fatalf("scenario %d (%s) has no results: %+v", i, sc.Scenario.Name, sc.Summary)
		}
		if len(sc.Study.Dataset.Faults) != 0 {
			t.Fatalf("scenario %d materialized its dataset (%d faults)", i, len(sc.Study.Dataset.Faults))
		}
	}
	if res.Scenarios[0].Scenario.Name >= res.Scenarios[1].Scenario.Name {
		t.Fatalf("results not sorted by name: %q, %q",
			res.Scenarios[0].Scenario.Name, res.Scenarios[1].Scenario.Name)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Cross-scenario comparison") ||
		!strings.Contains(buf.String(), "blades=2,seed=1") {
		t.Fatalf("comparison render incomplete:\n%s", buf.String())
	}

	if _, err := unprotected.ParseSweepAxes([]string{"voltage=3"}); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if _, err := unprotected.Sweep(context.Background(), &unprotected.SweepSpec{}); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestPublicStudyFromLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	s := unprotected.RunStudy(unprotected.DefaultConfig(3))
	dir := t.TempDir()
	if err := logstore.Export(s.Dataset.Sessions, s.Dataset.Faults, dir); err != nil {
		t.Fatal(err)
	}
	replayed, err := unprotected.StudyFromLogs(dir, "02-04", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Dataset.Faults) != len(s.Dataset.Faults) {
		t.Fatalf("replayed %d faults, want %d", len(replayed.Dataset.Faults), len(s.Dataset.Faults))
	}
	var buf bytes.Buffer
	replayed.FullReport(&buf, unprotected.ReportOptions{})
	if !strings.Contains(buf.String(), "independent memory faults") {
		t.Fatal("replayed report missing headline")
	}
}
