package unprotected_test

import (
	"bytes"
	"strings"
	"testing"

	"unprotected"
)

func TestPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := unprotected.DefaultConfig(5)
	if cfg == nil || cfg.Profile == nil {
		t.Fatal("default config incomplete")
	}
	s := unprotected.RunStudy(cfg)
	if s.Dataset == nil || len(s.Dataset.Faults) == 0 {
		t.Fatal("study produced no dataset")
	}
	var buf bytes.Buffer
	s.FullReport(&buf, unprotected.ReportOptions{})
	if !strings.Contains(buf.String(), "independent memory faults") {
		t.Fatal("report missing headline")
	}
}
