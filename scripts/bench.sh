#!/usr/bin/env bash
# bench.sh — run the substrate benchmark suite and capture the trajectory.
#
# Runs the BenchmarkSubstrate* group and the iterator-vs-callback pair
# BenchmarkAnalyzeIterator/BenchmarkCampaignStream (root package; equal
# allocs/op proves the iterator delivery layer adds no per-event
# allocations), BenchmarkLogstoreStream (internal/logstore) and the
# fault-store pair BenchmarkStoreDecode/BenchmarkStoreQueryPruned
# (internal/faultstore; decode MB/s must stay ≥4× the text parser's
# BenchmarkSubstrateParse MB/s) with -benchmem -count=5 and
# writes BENCH_PR7.json mapping each benchmark to its best observed
# {ns_per_op, mb_per_s, b_per_op, allocs_per_op} (minimum ns/op across the
# five runs — the least-noise sample; B/op and allocs/op are deterministic).
# BENCH_PR6.json stays in-tree: the CI allocation gate diffs against it.
#
# Extra arguments are forwarded to `go test`, so CI smoke runs
#   scripts/bench.sh -benchtime=1x
# to keep the harness from rotting without paying full measurement cost.
#
# Environment:
#   BENCH_OUT    output file (default BENCH_PR6.json)
#   BENCH_COUNT  -count value (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_PR7.json}"
count="${BENCH_COUNT:-5}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench='^BenchmarkSubstrate|^BenchmarkAnalyzeIterator$|^BenchmarkCampaignStream$' -benchmem -count="$count" "$@" . | tee "$tmp"
go test -run='^$' -bench='^BenchmarkLogstoreStream$' -benchmem -count="$count" "$@" ./internal/logstore | tee -a "$tmp"
go test -run='^$' -bench='^BenchmarkStoreDecode$|^BenchmarkStoreQueryPruned$' -benchmem -count="$count" "$@" ./internal/faultstore | tee -a "$tmp"

awk '
$1 ~ /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    lns = lmb = lbp = lap = ""
    for (i = 2; i < NF; i++) {
        u = $(i + 1)
        if (u == "ns/op") lns = $i + 0
        else if (u == "MB/s") lmb = $i + 0
        else if (u == "B/op") lbp = $i + 0
        else if (u == "allocs/op") lap = $i + 0
    }
    if (lns == "") next
    if (!(name in ns)) { order[++n] = name }
    if (!(name in ns) || lns < ns[name]) {
        ns[name] = lns; mb[name] = lmb; bp[name] = lbp; ap[name] = lap
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_per_op\": %g", name, ns[name]
        if (mb[name] != "") printf ", \"mb_per_s\": %g", mb[name]
        if (bp[name] != "") printf ", \"b_per_op\": %g", bp[name]
        if (ap[name] != "") printf ", \"allocs_per_op\": %g", ap[name]
        printf "}%s\n", (i < n) ? "," : ""
    }
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
