#!/usr/bin/env bash
# lint.sh — the repo's consolidated static-analysis gate.
#
# Runs, in order:
#
#   1. gofmt -l over the whole tree (both modules and the analyzer
#      golden corpora under tools/lint/*/testdata);
#   2. stock `go vet` on the root module;
#   3. the unprotectedlint invariant suite (tools/lint) over the root
#      module via `go vet -vettool`: directio, maporder, wallclock,
#      poolreturn, ctxsend, plus the stock-pass ports copylock, shadow,
#      unusedwrite and nilness. See DESIGN.md §12 for the catalogue.
#
# Any finding fails the script. Deliberate exceptions are annotated in
# the source with `//lint:allow <analyzer> <reason>`; the reason is
# mandatory, and a reason-less allow is itself a finding.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:"
    echo "$unformatted"
    fail=1
fi

echo "== go vet (stock) =="
go vet ./... || fail=1

echo "== unprotectedlint invariant suite =="
mkdir -p bin
go build -o bin/unprotectedlint ./tools/lint/cmd/unprotectedlint
go vet -vettool="$PWD/bin/unprotectedlint" ./... || fail=1

if [[ "$fail" -ne 0 ]]; then
    echo "lint: FAIL"
    exit 1
fi
echo "lint: OK"
