package logstore

import (
	"os"
	"path/filepath"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

func TestFileNameRoundTrip(t *testing.T) {
	id := cluster.NodeID{Blade: 2, SoC: 4}
	name := FileName(id)
	if name != "node-02-04.log" {
		t.Fatalf("name %q", name)
	}
	back, ok := nodeOfFile("/some/dir/" + name)
	if !ok || back != id {
		t.Fatalf("inversion: %v %v", back, ok)
	}
	if _, ok := nodeOfFile("random.txt"); ok {
		t.Fatal("non-log file accepted")
	}
}

func TestStoreWriteLoad(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hostA := cluster.NodeID{Blade: 1, SoC: 2}
	hostB := cluster.NodeID{Blade: 3, SoC: 4}
	recs := []eventlog.Record{
		{Kind: eventlog.KindStart, At: 0, Host: hostA, AllocBytes: 3 << 30, TempC: thermal.NoReading},
		{Kind: eventlog.KindError, At: 11, Host: hostA, VAddr: dram.VirtAddr(7),
			Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE, TempC: thermal.NoReading},
		{Kind: eventlog.KindError, At: 22, Host: hostA, VAddr: dram.VirtAddr(7),
			Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE, TempC: thermal.NoReading},
		{Kind: eventlog.KindEnd, At: 3600, Host: hostA, TempC: thermal.NoReading},
		{Kind: eventlog.KindStart, At: 50, Host: hostB, AllocBytes: 2 << 30, TempC: thermal.NoReading},
		// hostB never logs an END: hard reboot, 0 hours.
	}
	for _, r := range recs {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if store.NodeCount() != 2 {
		t.Fatalf("node files %d", store.NodeCount())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawLogs != 2 {
		t.Fatalf("raw logs %d", res.RawLogs)
	}
	// The two consecutive ERROR records collapse into one run.
	if len(res.Runs) != 1 || res.Runs[0].Logs != 2 {
		t.Fatalf("runs %+v", res.Runs)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes %v", res.Nodes)
	}
	// Session accounting: hostA 1h, hostB truncated (0h).
	var hours float64
	for _, s := range res.Sessions {
		hours += s.Duration().Hours()
	}
	if hours != 1 {
		t.Fatalf("monitored hours %v, want 1 (truncation rule)", hours)
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(cluster.NodeID{Blade: 5, SoC: 5}))
	if err := os.WriteFile(path, []byte("GARBAGE LINE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt log accepted")
	}
}

func TestEndToEndScannerToStoreToExtraction(t *testing.T) {
	// The real scanner writes a node log file; Load reproduces the exact
	// fault the injector planted.
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	host := cluster.NodeID{Blade: 7, SoC: 3}
	dev := dram.NewDevice(uint64(host.Index()), 4096, nil)
	bit := -1
	for b := 0; b < dram.WordBits; b++ {
		if dev.Polarity.IsTrueCell(uint64(host.Index()), 123, b) {
			bit = b
			break
		}
	}
	dev.AddWeakCell(&dram.WeakCell{Addr: 123, Bit: bit, LeakProb: 1, Active: true})
	s := scanner.New(host, dev, scanner.FlipMode, func(rec eventlog.Record) {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}, rng.New(9))
	s.Run(timebase.T(100*86400), 8, nil)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("no faults recovered from disk")
	}
	for _, run := range res.Runs {
		if run.Addr != 123 {
			t.Fatalf("fault at %d, want 123", run.Addr)
		}
		if run.Expected != 0xFFFFFFFF || run.Actual != 0xFFFFFFFF&^(1<<uint(bit)) {
			t.Fatalf("pattern %08x->%08x", run.Expected, run.Actual)
		}
	}
	if res.RawLogs != 4 { // observable on the 4 FF-phase checks of 8 passes
		t.Fatalf("raw logs %d, want 4", res.RawLogs)
	}
}
