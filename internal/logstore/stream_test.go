package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/rng"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// synthDir writes a synthetic but irregular multi-node directory: every
// node gets sessions (some truncated) and a fault mix with ties on FirstAt
// across nodes, so the merges actually have work to do.
func synthDir(t testing.TB, dir string, nodes, sessionsPer, faultsPer int) ([]eventlog.Session, []extract.Fault) {
	t.Helper()
	r := rng.New(99)
	var sessions []eventlog.Session
	var faults []extract.Fault
	day := timebase.T(86400)
	for n := 0; n < nodes; n++ {
		host := cluster.NodeID{Blade: n/15 + 1, SoC: n%15 + 1}
		for s := 0; s < sessionsPer; s++ {
			from := timebase.T(s)*4*3600 + timebase.T(r.IntN(600))
			sess := eventlog.Session{
				Host: host, From: from, To: from + 3*3600,
				AllocBytes: 3 << 30,
			}
			if s%7 == 3 {
				sess.Truncated = true
				sess.To = 0
			}
			sessions = append(sessions, sess)
		}
		for i := 0; i < faultsPer; i++ {
			// Deliberate cross-node FirstAt collisions (i-based, not
			// node-based) exercise merge tie-breaking by node.
			at := day + timebase.T(i)*731
			temp := thermal.NoReading
			if i%3 != 0 {
				temp = 20 + r.Float64()*30
			}
			faults = append(faults, extract.Classify(extract.RawRun{
				Node: host, Addr: dram.Addr(i * 17), FirstAt: at, LastAt: at + timebase.T(r.IntN(500)),
				Logs: 1 + r.IntN(40), Expected: 0xffffffff, Actual: uint32(0xffffffff &^ (1 << (i % 32))),
				TempC: temp,
			}))
		}
	}
	if err := Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	return sessions, faults
}

// collectStream drains a full StreamWorkers run into slices.
func collectStream(t testing.TB, dir string, workers int) ([]extract.Fault, []eventlog.Session, *Stats) {
	t.Helper()
	var faults []extract.Fault
	var sessions []eventlog.Session
	st, err := StreamWorkers(dir, workers, StreamHandler{
		Begin: func(st *Stats) {
			faults = make([]extract.Fault, 0, st.Faults)
			sessions = make([]eventlog.Session, 0, st.Sessions)
		},
		Fault:   func(f extract.Fault) { faults = append(faults, f) },
		Session: func(s eventlog.Session) { sessions = append(sessions, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return faults, sessions, st
}

// TestStreamDeterministicAcrossWorkers: the delivered sequences and stats
// must be identical for any worker-pool size, and in canonical order.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	synthDir(t, dir, 40, 8, 25)

	refFaults, refSessions, refStats := collectStream(t, dir, 1)
	if len(refFaults) == 0 || len(refSessions) == 0 {
		t.Fatal("stream delivered nothing")
	}
	for i := 1; i < len(refFaults); i++ {
		if extract.Compare(&refFaults[i-1], &refFaults[i]) >= 0 {
			t.Fatalf("fault %d out of canonical order", i)
		}
	}
	for i := 1; i < len(refSessions); i++ {
		if eventlog.CompareSessions(&refSessions[i-1], &refSessions[i]) >= 0 {
			t.Fatalf("session %d out of canonical order", i)
		}
	}
	if refStats.Faults != len(refFaults) || refStats.Sessions != len(refSessions) {
		t.Fatalf("stats (%d, %d) disagree with delivery (%d, %d)",
			refStats.Faults, refStats.Sessions, len(refFaults), len(refSessions))
	}

	for _, workers := range []int{2, 3, 8, 64} {
		faults, sessions, st := collectStream(t, dir, workers)
		if !reflect.DeepEqual(faults, refFaults) {
			t.Fatalf("workers=%d: fault stream differs", workers)
		}
		if !reflect.DeepEqual(sessions, refSessions) {
			t.Fatalf("workers=%d: session stream differs", workers)
		}
		if !reflect.DeepEqual(st, refStats) {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, st, refStats)
		}
	}
}

// TestLoadIsStreamCollectAll: Load must return exactly the streamed
// sequences, now in canonical order (it used to hand-roll a partial sort
// and leave sessions unsorted).
func TestLoadIsStreamCollectAll(t *testing.T) {
	dir := t.TempDir()
	synthDir(t, dir, 12, 5, 9)
	faults, sessions, st := collectStream(t, dir, 4)
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(faults) {
		t.Fatalf("runs %d vs streamed faults %d", len(res.Runs), len(faults))
	}
	for i := range faults {
		if res.Runs[i] != faults[i].RawRun {
			t.Fatalf("run %d differs from streamed fault", i)
		}
	}
	if !reflect.DeepEqual(res.Sessions, sessions) {
		t.Fatal("Load sessions differ from streamed sessions")
	}
	if res.RawLogs != st.RawLogs || !reflect.DeepEqual(res.RawLogsByNode, st.RawLogsByNode) {
		t.Fatal("Load raw-log accounting differs from streamed stats")
	}
	if !reflect.DeepEqual(res.Nodes, st.Nodes) {
		t.Fatal("Load node list differs from streamed stats")
	}
}

// TestStreamNilCallbacks: counts survive without either merge running.
func TestStreamNilCallbacks(t *testing.T) {
	dir := t.TempDir()
	_, faults := synthDir(t, dir, 6, 4, 3)
	st, err := Stream(dir, StreamHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != len(faults) || st.Sessions == 0 || st.RawLogs == 0 {
		t.Fatalf("implausible stats with nil callbacks: %+v", st)
	}
}

// TestStreamPropagatesWorkerErrors: a corrupt file must fail the whole
// stream deterministically, whichever worker hits it.
func TestStreamPropagatesWorkerErrors(t *testing.T) {
	dir := t.TempDir()
	synthDir(t, dir, 10, 2, 2)
	bad := filepath.Join(dir, FileName(cluster.NodeID{Blade: 1, SoC: 3}))
	if err := os.WriteFile(bad, []byte("GARBAGE LINE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		if _, err := StreamWorkers(dir, workers, StreamHandler{}); err == nil {
			t.Fatalf("workers=%d: corrupt file accepted", workers)
		}
	}
}

// TestStreamAttributesRawVolumeByRecordHost: a file holding records of a
// foreign host (renamed or concatenated logs) must credit the raw volume
// to the record's host= field, matching fault attribution — not to the
// node the file name claims.
func TestStreamAttributesRawVolumeByRecordHost(t *testing.T) {
	dir := t.TempDir()
	trueHost := cluster.NodeID{Blade: 2, SoC: 2}
	rec := eventlog.Record{
		Kind: eventlog.KindError, At: 100, Host: trueHost,
		VAddr: dram.VirtAddr(5), Expected: 0xffffffff, Actual: 0xfffffffe,
		TempC: thermal.NoReading, LastAt: 200, Logs: 9,
	}
	misnamed := filepath.Join(dir, FileName(cluster.NodeID{Blade: 1, SoC: 1}))
	if err := os.WriteFile(misnamed, []byte(rec.String()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var faults []extract.Fault
	st, err := Stream(dir, StreamHandler{Fault: func(f extract.Fault) { faults = append(faults, f) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || faults[0].Node != trueHost {
		t.Fatalf("fault attribution: %+v", faults)
	}
	if st.RawLogsByNode[trueHost] != 9 || len(st.RawLogsByNode) != 1 {
		t.Fatalf("raw volume credited to the wrong node: %v", st.RawLogsByNode)
	}
}

// TestStreamCampaignEquivalence is the replay/campaign equivalence
// contract: a campaign exported through the Store layout and re-read via
// Stream yields the same faults (every field), the same sessions (modulo
// the truncated-session end instants the log format deliberately cannot
// carry — a lost END is unknowable), and raw-log accounting equal to the
// campaign's for every characterized node. It also pins the
// Σ run.Logs == RawLogs invariant the -from-logs analysis path assumes.
func TestStreamCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := campaign.DefaultConfig(7)
	res := campaign.Run(cfg)
	dir := t.TempDir()
	if err := Export(res.Sessions, res.Faults, dir); err != nil {
		t.Fatal(err)
	}

	wantSessions := make([]eventlog.Session, len(res.Sessions))
	copy(wantSessions, res.Sessions)
	for i := range wantSessions {
		if wantSessions[i].Truncated {
			wantSessions[i].To = 0
		}
	}

	for _, workers := range []int{1, 8} {
		faults, sessions, st := collectStream(t, dir, workers)

		if len(faults) != len(res.Faults) {
			t.Fatalf("workers=%d: faults %d, want %d", workers, len(faults), len(res.Faults))
		}
		for i := range faults {
			if faults[i] != res.Faults[i] {
				t.Fatalf("workers=%d: fault %d differs:\n got %+v\nwant %+v",
					workers, i, faults[i], res.Faults[i])
			}
		}
		if len(sessions) != len(wantSessions) {
			t.Fatalf("workers=%d: sessions %d, want %d", workers, len(sessions), len(wantSessions))
		}
		for i := range sessions {
			if sessions[i] != wantSessions[i] {
				t.Fatalf("workers=%d: session %d differs:\n got %+v\nwant %+v",
					workers, i, sessions[i], wantSessions[i])
			}
		}

		// Raw-log accounting: the export carries each characterized
		// fault's raw weight (logs=), so per-node volumes must round-trip
		// exactly for every node with faults. The pathological node's
		// ~98% raw share is excluded from characterization (§III-B) and
		// therefore from the extracted export.
		var sumLogs int64
		perNode := make(map[cluster.NodeID]int64)
		for _, f := range res.Faults {
			sumLogs += int64(f.Logs)
			perNode[f.Node] += int64(f.Logs)
		}
		if st.RawLogs != sumLogs {
			t.Fatalf("workers=%d: RawLogs %d, want Σ fault.Logs %d", workers, st.RawLogs, sumLogs)
		}
		if !reflect.DeepEqual(st.RawLogsByNode, perNode) {
			t.Fatalf("workers=%d: per-node raw logs diverge from campaign", workers)
		}
		for id, n := range perNode {
			if res.RawLogsByNode[id] != n {
				t.Fatalf("workers=%d: node %v raw logs %d, want campaign's %d",
					workers, id, n, res.RawLogsByNode[id])
			}
		}
		// Σ run.Logs == RawLogs: what studyFromLogs silently assumed.
		var runSum int64
		for _, f := range faults {
			runSum += int64(f.Logs)
		}
		if runSum != st.RawLogs {
			t.Fatalf("workers=%d: Σ run.Logs %d != RawLogs %d", workers, runSum, st.RawLogs)
		}
	}
}

// BenchmarkLogstoreStream measures the replay loader over a
// multi-hundred-node directory. workers=1 is the sequential baseline the
// parallel default must beat.
func BenchmarkLogstoreStream(b *testing.B) {
	dir := b.TempDir()
	synthDir(b, dir, 300, 60, 120)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := StreamWorkers(dir, workers, StreamHandler{
					Fault:   func(extract.Fault) {},
					Session: func(eventlog.Session) {},
				})
				if err != nil {
					b.Fatal(err)
				}
				if st.Faults == 0 {
					b.Fatal("empty stream")
				}
			}
		})
	}
}
