// Package logstore manages the study's on-disk log layout: one log file
// per node, exactly as the prototype's tooling kept them ("log entries are
// stored in log files with each node having a separate log file", §II-B).
// It writes canonical eventlog lines and reads whole directories back into
// the extraction pipeline, so every analysis can run from files rather
// than from an in-memory campaign — the paper's actual workflow.
package logstore

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
)

// FileName returns the per-node log file name ("node-02-04.log").
func FileName(id cluster.NodeID) string {
	return "node-" + id.String() + ".log"
}

// nodeOfFile inverts FileName.
func nodeOfFile(name string) (cluster.NodeID, bool) {
	base := strings.TrimSuffix(filepath.Base(name), ".log")
	s, ok := strings.CutPrefix(base, "node-")
	if !ok {
		return cluster.NodeID{}, false
	}
	id, err := cluster.ParseNodeID(s)
	return id, err == nil
}

// DefaultMaxOpenFiles bounds the store's simultaneously open node files:
// a full campaign has 923 nodes, which would flirt with common descriptor
// limits if every file stayed open. Evicted files are reopened with
// O_APPEND on the next write, so callers never notice. The cap is the
// shared fdlimit budget's: log writers and fault-store segment readers
// meter their descriptors from one pool.
const DefaultMaxOpenFiles = fdlimit.DefaultCap

// Store writes per-node log files under a directory. All methods are safe
// for concurrent use: a daemon keeps one Store alive indefinitely while
// other goroutines read its counters (Reopens, NodeCount), so the writer
// cache and its accounting are guarded by one mutex rather than relying
// on a documented single-writer discipline. Records of one node must
// still arrive in time order, which under concurrent Appends means every
// writer of a given node serializes its own calls.
type Store struct {
	// mu guards every mutable field below; Append holds it across the
	// whole write so eviction, reopen accounting and the LRU clock stay
	// consistent.
	mu  sync.Mutex
	dir string
	// fsys carries every file operation; retry covers the writer's
	// OpenFile, so a transient descriptor blip (EMFILE from a neighbour
	// process) backs off and recovers instead of killing the replay.
	fsys  iofault.FS
	retry iofault.RetryPolicy
	// budget meters the open node files. It defaults to fdlimit.Shared —
	// one process-wide descriptor pool spanning log writers and
	// fault-store segment readers — and SetMaxOpenFiles swaps in a
	// private budget for callers that need an isolated cap.
	budget  *fdlimit.Budget
	writers map[cluster.NodeID]*nodeFile
	seen    map[cluster.NodeID]bool
	// paths caches each node's rendered file path: under a tight open-file
	// budget the same file is reopened on every eviction cycle, and the
	// merge-ordered append stream re-renders the name far more often than
	// once per node.
	paths   map[cluster.NodeID]string
	clock   uint64 // advances per Append; stamps nodeFile.lastUse
	reopens int
}

type nodeFile struct {
	f       iofault.File
	w       *eventlog.Writer
	lastUse uint64
}

// NewStore creates (or reuses) the directory.
func NewStore(dir string) (*Store, error) {
	return NewStoreFS(dir, iofault.OS)
}

// NewStoreFS is NewStore with every file operation routed through fsys —
// the seam the chaos tests inject faults through.
func NewStoreFS(dir string, fsys iofault.FS) (*Store, error) {
	if fsys == nil {
		return nil, fmt.Errorf("logstore: nil FS")
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	return &Store{
		dir:     dir,
		fsys:    fsys,
		retry:   iofault.DefaultRetry,
		budget:  fdlimit.Shared,
		writers: make(map[cluster.NodeID]*nodeFile),
		seen:    make(map[cluster.NodeID]bool),
		paths:   make(map[cluster.NodeID]string),
	}, nil
}

// SetRetry replaces the writer's transient-OpenFile retry policy.
func (s *Store) SetRetry(p iofault.RetryPolicy) {
	s.mu.Lock()
	s.retry = p
	s.mu.Unlock()
}

// path returns the node's log file path, rendering it at most once.
func (s *Store) path(id cluster.NodeID) string {
	p, ok := s.paths[id]
	if !ok {
		p = filepath.Join(s.dir, FileName(id))
		s.paths[id] = p
	}
	return p
}

// SetMaxOpenFiles gives the store a private descriptor budget with the
// given cap (minimum 1), detaching it from the shared fdlimit pool. Use
// SetBudget to share a specific budget instead.
func (s *Store) SetMaxOpenFiles(n int) {
	s.mu.Lock()
	s.budget = fdlimit.NewBudget(n)
	s.mu.Unlock()
}

// SetBudget makes the store meter its open files from b. The store must
// hold no open files yet (call it right after NewStore).
func (s *Store) SetBudget(b *fdlimit.Budget) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.writers) > 0 {
		panic("logstore: SetBudget with files already open")
	}
	s.budget = b
}

// acquireFD claims one descriptor from the budget, evicting the store's
// own least-recently-used open file while the pool is exhausted. When the
// store itself holds nothing evictable the tokens are held by other
// budget users (another writer, or fault-store segment readers) and it
// blocks until one frees — via AcquireCached, because the descriptor it
// claims goes into the writer cache indefinitely and must never consume
// the reserve that keeps transient readers live.
func (s *Store) acquireFD() error {
	for !s.budget.TryAcquire() {
		if len(s.writers) == 0 {
			s.budget.AcquireCached()
			return nil
		}
		if err := s.evictOne(); err != nil {
			return err
		}
	}
	return nil
}

// Append writes a record to its node's file, creating it on first use.
// Records of one node must arrive in time order (scanner order). Append
// is safe to call from multiple goroutines; calls serialize on the
// store's mutex.
func (s *Store) Append(rec eventlog.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nf, ok := s.writers[rec.Host]
	if !ok {
		if err := s.acquireFD(); err != nil {
			return err
		}
		// A transient OpenFile failure — descriptor pressure from outside
		// this process, an EIO blip — backs off and retries rather than
		// aborting the whole replay; only a persistent or permanent error
		// surfaces.
		var f iofault.File
		err := s.retry.Do(context.Background(), func() error {
			var oerr error
			f, oerr = s.fsys.OpenFile(s.path(rec.Host),
				iofault.OpenAppendFlags, 0o644)
			return oerr
		})
		if err != nil {
			s.budget.Release()
			return fmt.Errorf("logstore: %w", err)
		}
		nf = &nodeFile{f: f, w: eventlog.NewWriter(f)}
		s.writers[rec.Host] = nf
		if s.seen[rec.Host] {
			s.reopens++
		}
		s.seen[rec.Host] = true
	}
	s.clock++
	nf.lastUse = s.clock
	return nf.w.Write(rec)
}

// evictOne flushes and closes the least-recently-used open file to stay
// under the budget. LRU matters because appends arrive in (time, node)
// merge order: a node writing a burst stays hot for many consecutive
// records, and evicting an arbitrary map entry used to close exactly such
// hot files, thrashing open/close cycles across wide campaigns.
func (s *Store) evictOne() error {
	var victim cluster.NodeID
	var nf *nodeFile
	for id, cand := range s.writers {
		if nf == nil || cand.lastUse < nf.lastUse {
			victim, nf = id, cand
		}
	}
	if nf == nil {
		return nil
	}
	if err := nf.w.Flush(); err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	if err := nf.f.Close(); err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	delete(s.writers, victim)
	s.budget.Release()
	return nil
}

// Reopens counts how many times an evicted node file had to be reopened —
// the cost metric of the eviction policy.
func (s *Store) Reopens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reopens
}

// Close flushes and closes every node file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, nf := range s.writers {
		if err := nf.w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := nf.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.budget.Release()
	}
	s.writers = make(map[cluster.NodeID]*nodeFile)
	return firstErr
}

// NodeCount reports how many distinct node files the store has written.
func (s *Store) NodeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// ListNodeFiles returns the node log files under dir, sorted by node.
func ListNodeFiles(dir string) ([]string, error) {
	return listNodeFiles(iofault.OS, dir)
}

// listNodeFiles walks dir through fsys (depth-first, directories
// recursed) and returns the node log files, sorted.
func listNodeFiles(fsys iofault.FS, dir string) ([]string, error) {
	var out []string
	var walk func(string) error
	walk = func(d string) error {
		entries, err := fsys.ReadDir(d)
		if err != nil {
			return err
		}
		for _, ent := range entries {
			path := filepath.Join(d, ent.Name())
			if ent.IsDir() {
				if err := walk(path); err != nil {
					return err
				}
				continue
			}
			if _, ok := nodeOfFile(path); ok {
				out = append(out, path)
			}
		}
		return nil
	}
	if err := walk(dir); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// LoadResult is a directory read back through the §II-C pipeline.
type LoadResult struct {
	// Runs are the collapsed error runs of every node, in the canonical
	// extract.Compare order — exactly the order the campaign path uses.
	Runs []extract.RawRun
	// RawLogs counts the ERROR records consumed (pre-collapsed lines
	// count their logs= weight).
	RawLogs int64
	// RawLogsByNode splits the raw volume per node.
	RawLogsByNode map[cluster.NodeID]int64
	// Sessions reconstructed from START/END records, with the
	// conservative truncation rule applied, in eventlog.CompareSessions
	// order.
	Sessions []eventlog.Session
	// Nodes lists the nodes found, sorted.
	Nodes []cluster.NodeID
}

// Load reads every node file under dir, collapses consecutive ERROR
// records into runs and reconstructs sessions. It is a thin collect-all
// wrapper over Stream: anything that can process faults or sessions one at
// a time should use Stream instead.
func Load(dir string) (*LoadResult, error) {
	res := &LoadResult{}
	st, err := Stream(dir, StreamHandler{
		Begin: func(st *Stats) {
			res.Runs = make([]extract.RawRun, 0, st.Faults)
			res.Sessions = make([]eventlog.Session, 0, st.Sessions)
		},
		Fault:   func(f extract.Fault) { res.Runs = append(res.Runs, f.RawRun) },
		Session: func(s eventlog.Session) { res.Sessions = append(res.Sessions, s) },
	})
	if err != nil {
		return nil, err
	}
	res.RawLogs = st.RawLogs
	res.RawLogsByNode = st.RawLogsByNode
	res.Nodes = st.Nodes
	return res, nil
}
