// Package logstore manages the study's on-disk log layout: one log file
// per node, exactly as the prototype's tooling kept them ("log entries are
// stored in log files with each node having a separate log file", §II-B).
// It writes canonical eventlog lines and reads whole directories back into
// the extraction pipeline, so every analysis can run from files rather
// than from an in-memory campaign — the paper's actual workflow.
package logstore

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
)

// FileName returns the per-node log file name ("node-02-04.log").
func FileName(id cluster.NodeID) string {
	return fmt.Sprintf("node-%s.log", id)
}

// nodeOfFile inverts FileName.
func nodeOfFile(name string) (cluster.NodeID, bool) {
	base := strings.TrimSuffix(filepath.Base(name), ".log")
	s, ok := strings.CutPrefix(base, "node-")
	if !ok {
		return cluster.NodeID{}, false
	}
	id, err := cluster.ParseNodeID(s)
	return id, err == nil
}

// DefaultMaxOpenFiles bounds the store's simultaneously open node files:
// a full campaign has 923 nodes, which would flirt with common descriptor
// limits if every file stayed open. Evicted files are reopened with
// O_APPEND on the next write, so callers never notice.
const DefaultMaxOpenFiles = 128

// Store writes per-node log files under a directory.
type Store struct {
	dir     string
	maxOpen int
	writers map[cluster.NodeID]*nodeFile
	seen    map[cluster.NodeID]bool
}

type nodeFile struct {
	f *os.File
	w *eventlog.Writer
}

// NewStore creates (or reuses) the directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	return &Store{
		dir:     dir,
		maxOpen: DefaultMaxOpenFiles,
		writers: make(map[cluster.NodeID]*nodeFile),
		seen:    make(map[cluster.NodeID]bool),
	}, nil
}

// SetMaxOpenFiles adjusts the descriptor budget (minimum 1).
func (s *Store) SetMaxOpenFiles(n int) {
	if n < 1 {
		n = 1
	}
	s.maxOpen = n
}

// Append writes a record to its node's file, creating it on first use.
// Records of one node must arrive in time order (scanner order).
func (s *Store) Append(rec eventlog.Record) error {
	nf, ok := s.writers[rec.Host]
	if !ok {
		if len(s.writers) >= s.maxOpen {
			if err := s.evictOne(); err != nil {
				return err
			}
		}
		f, err := os.OpenFile(filepath.Join(s.dir, FileName(rec.Host)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
		nf = &nodeFile{f: f, w: eventlog.NewWriter(f)}
		s.writers[rec.Host] = nf
		s.seen[rec.Host] = true
	}
	return nf.w.Write(rec)
}

// evictOne flushes and closes one open file to stay under the budget.
func (s *Store) evictOne() error {
	for id, nf := range s.writers {
		if err := nf.w.Flush(); err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
		if err := nf.f.Close(); err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
		delete(s.writers, id)
		return nil
	}
	return nil
}

// Close flushes and closes every node file.
func (s *Store) Close() error {
	var firstErr error
	for _, nf := range s.writers {
		if err := nf.w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := nf.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.writers = make(map[cluster.NodeID]*nodeFile)
	return firstErr
}

// NodeCount reports how many distinct node files the store has written.
func (s *Store) NodeCount() int { return len(s.seen) }

// ListNodeFiles returns the node log files under dir, sorted by node.
func ListNodeFiles(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			if _, ok := nodeOfFile(path); ok {
				out = append(out, path)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// LoadResult is a directory read back through the §II-C pipeline.
type LoadResult struct {
	// Runs are the collapsed error runs of every node.
	Runs []extract.RawRun
	// RawLogs counts the ERROR records consumed.
	RawLogs int64
	// Sessions reconstructed from START/END records, with the
	// conservative truncation rule applied.
	Sessions []eventlog.Session
	// Nodes lists the nodes found, sorted.
	Nodes []cluster.NodeID
}

// Load reads every node file under dir, collapses consecutive ERROR
// records into runs and reconstructs sessions.
func Load(dir string) (*LoadResult, error) {
	files, err := ListNodeFiles(dir)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{}
	acct := eventlog.NewAccounting()
	for _, path := range files {
		id, _ := nodeOfFile(path)
		res.Nodes = append(res.Nodes, id)
		if err := loadFile(path, acct, res); err != nil {
			return nil, fmt.Errorf("logstore: %s: %w", path, err)
		}
	}
	res.Sessions = acct.Finish()
	sort.Slice(res.Runs, func(i, j int) bool {
		if res.Runs[i].FirstAt != res.Runs[j].FirstAt {
			return res.Runs[i].FirstAt < res.Runs[j].FirstAt
		}
		if res.Runs[i].Node != res.Runs[j].Node {
			return res.Runs[i].Node.Index() < res.Runs[j].Node.Index()
		}
		return res.Runs[i].Addr < res.Runs[j].Addr
	})
	return res, nil
}

func loadFile(path string, acct *eventlog.Accounting, res *LoadResult) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	collapser := extract.NewCollapser()
	r := eventlog.NewReader(f)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		acct.Observe(rec)
		collapser.Observe(rec)
	}
	runs, raw := collapser.Close()
	res.Runs = append(res.Runs, runs...)
	res.RawLogs += raw
	return nil
}
