package logstore

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/stream"
)

// TestEventsMatchesStreamWorkers: the iterator must deliver exactly the
// sequence the callback API delivers over the same directory — stats
// prologue first, then faults, then sessions, element for element — for
// every worker count.
func TestEventsMatchesStreamWorkers(t *testing.T) {
	dir := t.TempDir()
	synthDir(t, dir, 12, 9, 25)

	var wantFaults []extract.Fault
	var wantSessions []eventlog.Session
	wantStats, err := StreamWorkers(dir, 1, StreamHandler{
		Fault:   func(f extract.Fault) { wantFaults = append(wantFaults, f) },
		Session: func(s eventlog.Session) { wantSessions = append(wantSessions, s) },
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 1, 3, 16} {
		var gotFaults []extract.Fault
		var gotSessions []eventlog.Session
		var gotStats *stream.Stats
		for ev, err := range Events(context.Background(), dir, workers) {
			if err != nil {
				t.Fatal(err)
			}
			switch ev.Kind {
			case stream.KindStats:
				if gotStats != nil || len(gotFaults) > 0 || len(gotSessions) > 0 {
					t.Fatal("stats prologue missing or not first")
				}
				gotStats = ev.Stats
			case stream.KindFault:
				if len(gotSessions) > 0 {
					t.Fatal("fault delivered after a session")
				}
				gotFaults = append(gotFaults, ev.Fault)
			case stream.KindSession:
				gotSessions = append(gotSessions, ev.Session)
			}
		}
		if gotStats == nil {
			t.Fatalf("workers=%d: no stats prologue", workers)
		}
		if gotStats.Faults != wantStats.Faults || gotStats.Sessions != wantStats.Sessions ||
			gotStats.RawLogs != wantStats.RawLogs {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, gotStats, wantStats)
		}
		if len(gotFaults) != len(wantFaults) || len(gotSessions) != len(wantSessions) {
			t.Fatalf("workers=%d: lengths differ", workers)
		}
		for i := range gotFaults {
			if gotFaults[i] != wantFaults[i] {
				t.Fatalf("workers=%d: fault %d differs", workers, i)
			}
		}
		for i := range gotSessions {
			if gotSessions[i] != wantSessions[i] {
				t.Fatalf("workers=%d: session %d differs", workers, i)
			}
		}
	}
}

// TestEventsSurfacesLoadErrors: a broken file must surface as the
// iterator's error, same as the callback API's return.
func TestEventsSurfacesLoadErrors(t *testing.T) {
	for ev, err := range Events(context.Background(), t.TempDir()+"/missing", 2) {
		if err == nil {
			t.Fatalf("delivered %+v from a missing directory", ev)
		}
		return
	}
	t.Fatal("iterator yielded nothing for a missing directory")
}

// TestEventsCancel: a pre-cancelled context must abort the replay with
// ctx.Err() and leave no loader goroutines behind; cancelling mid-stream
// must stop delivery on the spot.
func TestEventsCancel(t *testing.T) {
	dir := t.TempDir()
	synthDir(t, dir, 8, 6, 40)

	baseline := runtime.NumGoroutine()
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	for ev, err := range Events(pre, dir, 4) {
		if err == nil {
			t.Fatalf("delivered %+v under a cancelled context", ev)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	faults := 0
	var sawErr error
	for ev, err := range Events(ctx, dir, 4) {
		if err != nil {
			sawErr = err
			break
		}
		if ev.Kind == stream.KindFault {
			if faults++; faults == 7 {
				cancelMid()
			}
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", sawErr)
	}
	if faults != 7 {
		t.Fatalf("delivered %d faults after cancel, want exactly 7", faults)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
