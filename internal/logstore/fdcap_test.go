package logstore

import (
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// TestFDCapEviction interleaves appends across many more nodes than the
// descriptor budget allows: eviction + O_APPEND reopen must lose nothing.
func TestFDCapEviction(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(3)

	const nodes = 20
	const rounds = 5
	for round := 0; round < rounds; round++ {
		for n := 0; n < nodes; n++ {
			host := cluster.NodeID{Blade: n/15 + 1, SoC: n%15 + 1}
			rec := eventlog.Record{
				Kind: eventlog.KindStart,
				At:   timebase.T(round*1000 + n),
				Host: host, AllocBytes: 1 << 30, TempC: thermal.NoReading,
			}
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
			rec.Kind = eventlog.KindEnd
			rec.At += 100
			rec.AllocBytes = 0
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if store.NodeCount() != nodes {
		t.Fatalf("distinct nodes %d, want %d", store.NodeCount(), nodes)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != nodes {
		t.Fatalf("files on disk for %d nodes, want %d", len(res.Nodes), nodes)
	}
	if len(res.Sessions) != nodes*rounds {
		t.Fatalf("sessions %d, want %d (eviction lost records)", len(res.Sessions), nodes*rounds)
	}
}

func TestSetMaxOpenFilesFloor(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(-5)
	if store.maxOpen != 1 {
		t.Fatalf("floor not applied: %d", store.maxOpen)
	}
}
