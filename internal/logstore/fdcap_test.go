package logstore

import (
	"sync"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// TestFDCapEviction interleaves appends across many more nodes than the
// descriptor budget allows: eviction + O_APPEND reopen must lose nothing.
func TestFDCapEviction(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(3)

	const nodes = 20
	const rounds = 5
	for round := 0; round < rounds; round++ {
		for n := 0; n < nodes; n++ {
			host := cluster.NodeID{Blade: n/15 + 1, SoC: n%15 + 1}
			rec := eventlog.Record{
				Kind: eventlog.KindStart,
				At:   timebase.T(round*1000 + n),
				Host: host, AllocBytes: 1 << 30, TempC: thermal.NoReading,
			}
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
			rec.Kind = eventlog.KindEnd
			rec.At += 100
			rec.AllocBytes = 0
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if store.NodeCount() != nodes {
		t.Fatalf("distinct nodes %d, want %d", store.NodeCount(), nodes)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != nodes {
		t.Fatalf("files on disk for %d nodes, want %d", len(res.Nodes), nodes)
	}
	if len(res.Sessions) != nodes*rounds {
		t.Fatalf("sessions %d, want %d (eviction lost records)", len(res.Sessions), nodes*rounds)
	}
}

// TestEvictionIsLRU drives the hot/cold pattern the merge-ordered append
// stream produces: a few nodes appended on every round (hot) plus a drip
// of nodes touched exactly once (cold). LRU must sacrifice only the cold
// files, so no file is ever reopened. The old policy evicted an arbitrary
// map entry, which regularly closed a hot file mid-burst.
func TestEvictionIsLRU(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(4)

	hot := []cluster.NodeID{{Blade: 1, SoC: 1}, {Blade: 1, SoC: 2}, {Blade: 1, SoC: 3}}
	rec := func(host cluster.NodeID, at int64) eventlog.Record {
		return eventlog.Record{Kind: eventlog.KindStart, At: timebase.T(at),
			Host: host, AllocBytes: 1 << 30, TempC: thermal.NoReading}
	}
	at := int64(0)
	for round := 0; round < 50; round++ {
		for _, h := range hot {
			at++
			if err := store.Append(rec(h, at)); err != nil {
				t.Fatal(err)
			}
		}
		cold := cluster.NodeID{Blade: 2 + round/10, SoC: round%10 + 1}
		at++
		if err := store.Append(rec(cold, at)); err != nil {
			t.Fatal(err)
		}
	}
	if n := store.Reopens(); n != 0 {
		t.Fatalf("reopens %d, want 0: LRU must never evict a hot file", n)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenCountUnderRoundRobin pins the deterministic worst case: pure
// round-robin over more nodes than the budget misses on every post-warmup
// append, no more and no less. The exact count also proves eviction no
// longer depends on map iteration order.
func TestReopenCountUnderRoundRobin(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(5)

	const nodes = 20
	const rounds = 4
	at := int64(0)
	for round := 0; round < rounds; round++ {
		for n := 0; n < nodes; n++ {
			at++
			host := cluster.NodeID{Blade: n/15 + 1, SoC: n%15 + 1}
			rec := eventlog.Record{Kind: eventlog.KindStart, At: timebase.T(at),
				Host: host, AllocBytes: 1 << 30, TempC: thermal.NoReading}
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Round 0 opens every file for the first time (not a reopen); each
	// later round reopens all 20 — the access pattern is LRU's worst case,
	// but the count is exact and stable.
	if want, got := nodes*(rounds-1), store.Reopens(); got != want {
		t.Fatalf("reopens %d, want %d", got, want)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != nodes*rounds {
		t.Fatalf("sessions %d, want %d (eviction lost records)", len(res.Sessions), nodes*rounds)
	}
}

func TestSetMaxOpenFilesFloor(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(-5)
	if got := store.budget.Cap(); got != 1 {
		t.Fatalf("floor not applied: %d", got)
	}
}

// TestStoreConcurrentAppendCounters hammers one Store from many
// goroutines — each owning its own node so per-node time order holds —
// while two more poll Reopens and NodeCount. Before the store grew its
// mutex, the writer cache, the seen set and the LRU clock were all
// unsynchronized; under -race this test is the regression proof, and the
// tight 2-descriptor budget keeps eviction and reopen accounting in the
// contended path the whole time.
func TestStoreConcurrentAppendCounters(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMaxOpenFiles(2)

	const writers = 8
	const perWriter = 50
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 2; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = store.Reopens()
					_ = store.NodeCount()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := cluster.NodeID{Blade: w + 1, SoC: 1}
			for i := 0; i < perWriter; i++ {
				rec := eventlog.Record{
					Kind: eventlog.KindStart, At: timebase.T(i * 10),
					Host: host, AllocBytes: 1 << 30, TempC: thermal.NoReading,
				}
				if err := store.Append(rec); err != nil {
					errs <- err
					return
				}
				rec.Kind, rec.At, rec.AllocBytes = eventlog.KindEnd, rec.At+5, 0
				if err := store.Append(rec); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	if got := store.NodeCount(); got != writers {
		t.Fatalf("NodeCount %d, want %d", got, writers)
	}
	// Every record must survive the concurrent eviction churn intact.
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sessions); got != writers*perWriter {
		t.Fatalf("sessions %d, want %d", got, writers*perWriter)
	}
	for _, s := range res.Sessions {
		if s.Truncated {
			t.Fatalf("truncated session %+v: interleaved write corrupted a file", s)
		}
	}
}
