package logstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/iofault"
	"unprotected/internal/stream"
	"unprotected/internal/thermal"
)

var chaosRetry = iofault.RetryPolicy{Attempts: 4, Base: 50 * time.Microsecond, Max: time.Millisecond}

// TestAppendRetriesTransientOpen pins the writer's liveness under
// descriptor pressure: an EMFILE blip on the node-file open — two
// failures, then air — must be absorbed by the retry policy instead of
// killing the replay.
func TestAppendRetriesTransientOpen(t *testing.T) {
	dir := t.TempDir()
	node := cluster.NodeID{Blade: 2, SoC: 4}

	inj := iofault.NewInjector(nil)
	inj.FailPath(FileName(node), 2, syscall.EMFILE)
	st, err := NewStoreFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRetry(chaosRetry)
	rec := eventlog.Record{Kind: eventlog.KindStart, At: 1000, Host: node, AllocBytes: 1 << 20, TempC: thermal.NoReading}
	if err := st.Append(rec); err != nil {
		t.Fatalf("append did not survive a transient EMFILE blip: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, FileName(node)))
	if err != nil || len(data) == 0 {
		t.Fatalf("node file not written after retried open: %v", err)
	}
}

// TestAppendSurfacesPersistentOpenFailure is the other half: when the
// failure does not clear within the retry budget, the error surfaces and
// the claimed descriptor token is released (the store stays usable for
// other nodes).
func TestAppendSurfacesPersistentOpenFailure(t *testing.T) {
	dir := t.TempDir()
	bad := cluster.NodeID{Blade: 2, SoC: 4}
	good := cluster.NodeID{Blade: 3, SoC: 1}

	inj := iofault.NewInjector(nil)
	inj.FailPath(FileName(bad), -1, syscall.EMFILE)
	st, err := NewStoreFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRetry(chaosRetry)
	if err := st.Append(eventlog.Record{Kind: eventlog.KindStart, At: 1000, Host: bad, TempC: thermal.NoReading}); err == nil {
		t.Fatal("append to a persistently unopenable file must fail")
	} else if !errors.Is(err, syscall.EMFILE) {
		t.Fatalf("error lost its cause: %v", err)
	}
	if err := st.Append(eventlog.Record{Kind: eventlog.KindStart, At: 1000, Host: good, TempC: thermal.NoReading}); err != nil {
		t.Fatalf("store unusable after one node's open failure: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEventsFSReplaySurfacesReadFailure pins the replay seam: a node
// file whose open persistently fails turns into a stream error naming
// the file, not a hang or a silent omission.
func TestEventsFSReplaySurfacesReadFailure(t *testing.T) {
	dir := t.TempDir()
	node := cluster.NodeID{Blade: 2, SoC: 4}
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(eventlog.Record{Kind: eventlog.KindStart, At: 1000, Host: node, TempC: thermal.NoReading}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	inj := iofault.NewInjector(nil)
	inj.FailPath(FileName(node), -1, nil)
	var streamErr error
	for _, err := range EventsFS(context.Background(), dir, 1, inj) {
		if err != nil {
			streamErr = err
			break
		}
	}
	if streamErr == nil || !errors.Is(streamErr, iofault.ErrInjected) {
		t.Fatalf("replay over an unreadable file yielded %v, want the injected failure", streamErr)
	}

	// And with no faults scheduled the same seam replays cleanly.
	events := 0
	for ev, err := range EventsFS(context.Background(), dir, 1, iofault.NewInjector(nil)) {
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == stream.KindSession {
			events++
		}
	}
	if events != 1 {
		t.Fatalf("clean replay delivered %d sessions, want 1", events)
	}
}
