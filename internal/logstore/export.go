package logstore

import (
	"sort"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/iofault"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// Export writes a dataset in the prototype's on-disk layout: one log file
// per node with START/ERROR/END lines in time order. ERROR lines carry the
// independent faults (one line per fault — the raw multi-million-record
// stream would be gigabytes and adds nothing the extraction keeps). Each
// line's last=/logs= fields record the collapsed run's extent and raw
// volume, so Stream and Load reconstruct the exact fault set, including
// per-fault raw-log weights.
func Export(sessions []eventlog.Session, faults []extract.Fault, dir string) error {
	return ExportFS(sessions, faults, dir, iofault.OS)
}

// ExportFS is Export with every file operation routed through fsys.
func ExportFS(sessions []eventlog.Session, faults []extract.Fault, dir string, fsys iofault.FS) error {
	store, err := NewStoreFS(dir, fsys)
	if err != nil {
		return err
	}
	type ev struct {
		at  timebase.T
		rec eventlog.Record
	}
	perNode := make(map[cluster.NodeID][]ev)
	for _, s := range sessions {
		perNode[s.Host] = append(perNode[s.Host], ev{s.From, eventlog.Record{
			Kind: eventlog.KindStart, At: s.From, Host: s.Host, AllocBytes: s.AllocBytes,
			TempC: thermal.NoReading,
		}})
		if !s.Truncated {
			perNode[s.Host] = append(perNode[s.Host], ev{s.To, eventlog.Record{
				Kind: eventlog.KindEnd, At: s.To, Host: s.Host, TempC: thermal.NoReading,
			}})
		}
	}
	for _, f := range faults {
		perNode[f.Node] = append(perNode[f.Node], ev{f.FirstAt, eventlog.Record{
			Kind: eventlog.KindError, At: f.FirstAt, Host: f.Node,
			VAddr:  dram.VirtAddr(f.Addr),
			Actual: f.Actual, Expected: f.Expected,
			TempC:    f.TempC,
			PhysPage: dram.PhysPage(uint64(f.Node.Index()), f.Addr),
			LastAt:   f.LastAt, Logs: max(f.Logs, 1),
		}})
	}
	for _, evs := range perNode {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		for _, e := range evs {
			if err := store.Append(e.rec); err != nil {
				store.Close()
				return err
			}
		}
	}
	return store.Close()
}
