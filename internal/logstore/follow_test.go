package logstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
	"unprotected/internal/stream"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// followEv is one delivery of the follow iterator.
type followEv struct {
	ev  stream.Event
	err error
}

// startFollow ranges over Follow in a goroutine, pushing every delivery
// onto a channel. The returned step channel drives the injected ticker:
// one send permits one more poll round; closing it ends the follow
// cleanly. done closes when the iterator returns.
func startFollow(ctx context.Context, dir string, opts ...FollowOption) (step chan struct{}, evs chan followEv, done chan struct{}) {
	step = make(chan struct{})
	evs = make(chan followEv, 1024)
	done = make(chan struct{})
	opts = append(opts, FollowWithTicker(func(ctx context.Context) bool {
		select {
		case <-ctx.Done():
			return false
		case _, ok := <-step:
			return ok
		}
	}))
	go func() {
		defer close(done)
		for ev, err := range Follow(ctx, dir, opts...) {
			evs <- followEv{ev: ev, err: err}
		}
	}()
	return step, evs, done
}

// drainRoundEvents reads deliveries until the KindSync round boundary,
// failing on stream errors, and returns the events seen this round in
// delivery order (the sync itself excluded).
func drainRoundEvents(t *testing.T, evs chan followEv) []stream.Event {
	t.Helper()
	var out []stream.Event
	for {
		select {
		case d := <-evs:
			if d.err != nil {
				t.Fatalf("stream error: %v", d.err)
			}
			if d.ev.Kind == stream.KindSync {
				return out
			}
			out = append(out, d.ev)
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for round boundary")
		}
	}
}

// drainRound reads one round and returns its records, failing on any
// event that is not a record (rounds that expect resets use
// drainRoundEvents).
func drainRound(t *testing.T, evs chan followEv) []eventlog.Record {
	t.Helper()
	var recs []eventlog.Record
	for _, ev := range drainRoundEvents(t, evs) {
		if ev.Kind != stream.KindRecord {
			t.Fatalf("unexpected event kind %d", ev.Kind)
		}
		recs = append(recs, ev.Record)
	}
	return recs
}

// appendLines appends raw text to a node log file.
func appendLines(t *testing.T, path, text string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(text); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// line renders one record as a log line with trailing newline.
func line(rec eventlog.Record) string {
	return string(rec.AppendText(nil)) + "\n"
}

// errRec builds a raw scanner ERROR record.
func errRec(host cluster.NodeID, at timebase.T, addr dram.Addr) eventlog.Record {
	return eventlog.Record{
		Kind: eventlog.KindError, At: at, Host: host,
		VAddr: dram.VirtAddr(addr), Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE,
		TempC: thermal.NoReading,
	}
}

func TestFollowDeliversBacklogAppendsAndNewFiles(t *testing.T) {
	dir := t.TempDir()
	a := cluster.NodeID{Blade: 1, SoC: 1}
	b := cluster.NodeID{Blade: 2, SoC: 7}
	pathA := filepath.Join(dir, FileName(a))
	pathB := filepath.Join(dir, FileName(b))
	appendLines(t, pathA,
		line(eventlog.Record{Kind: eventlog.KindStart, At: 0, Host: a, AllocBytes: 1 << 30, TempC: thermal.NoReading})+
			line(errRec(a, 10, 7)))

	var st FollowStats
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	step, evs, done := startFollow(ctx, dir, FollowWithStats(&st))

	// Round 1 runs immediately: the backlog already on disk.
	recs := drainRound(t, evs)
	if len(recs) != 2 || recs[0].Kind != eventlog.KindStart || recs[1].Kind != eventlog.KindError {
		t.Fatalf("backlog round: %+v", recs)
	}

	// Appended lines and a brand-new node file are both picked up.
	appendLines(t, pathA, line(errRec(a, 20, 9)))
	appendLines(t, pathB, line(errRec(b, 15, 3)))
	step <- struct{}{}
	recs = drainRound(t, evs)
	if len(recs) != 2 {
		t.Fatalf("incremental round: %+v", recs)
	}
	// Files drain in sorted file order within a round.
	if recs[0].Host != a || recs[1].Host != b {
		t.Fatalf("round order: %v then %v", recs[0].Host, recs[1].Host)
	}

	if got := st.Lines.Load(); got != 4 {
		t.Fatalf("lines ingested %d, want 4", got)
	}
	if got := st.Rounds.Load(); got != 2 {
		t.Fatalf("rounds %d, want 2", got)
	}
	if got := st.Files.Load(); got != 2 {
		t.Fatalf("files tailed %d, want 2", got)
	}

	// Closing the ticker ends the stream cleanly: no trailing error.
	close(step)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("follow did not stop on ticker end")
	}
	select {
	case d := <-evs:
		t.Fatalf("unexpected trailing delivery %+v", d)
	default:
	}
}

func TestFollowNeverParsesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	a := cluster.NodeID{Blade: 3, SoC: 2}
	path := filepath.Join(dir, FileName(a))
	full := line(errRec(a, 30, 5))
	half := full[:len(full)/2]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	step, evs, done := startFollow(ctx, dir)
	defer func() { cancel(); <-done }()

	if recs := drainRound(t, evs); len(recs) != 0 {
		t.Fatalf("empty dir delivered %+v", recs)
	}

	// A torn write: half a record, no newline. Nothing may be parsed.
	appendLines(t, path, half)
	step <- struct{}{}
	if recs := drainRound(t, evs); len(recs) != 0 {
		t.Fatalf("torn line was parsed: %+v", recs)
	}

	// The writer finishes the line; the record arrives whole.
	appendLines(t, path, full[len(half):])
	step <- struct{}{}
	recs := drainRound(t, evs)
	if len(recs) != 1 || recs[0].At != 30 || recs[0].Host != a {
		t.Fatalf("completed line: %+v", recs)
	}
}

func TestFollowTruncatedFileReopensFromZero(t *testing.T) {
	dir := t.TempDir()
	a := cluster.NodeID{Blade: 4, SoC: 4}
	path := filepath.Join(dir, FileName(a))
	appendLines(t, path, line(errRec(a, 10, 1))+line(errRec(a, 200, 2)))

	// The iofault seam carries every stat/read; a transient injected Stat
	// failure must be ridden out by the retry policy, not kill the tail.
	inj := iofault.NewInjector(nil)
	var st FollowStats
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	step, evs, done := startFollow(ctx, dir,
		FollowWithFS(inj), FollowWithStats(&st),
		FollowWithRetry(iofault.RetryPolicy{Attempts: 3}))
	defer func() { cancel(); <-done }()

	if recs := drainRound(t, evs); len(recs) != 2 {
		t.Fatal("backlog not delivered")
	}

	// Rotate underneath the tail: truncate to zero, then write fresh
	// content shorter than the consumed offset. Without size-regression
	// detection the tail would sit at the stale offset forever.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendLines(t, path, line(errRec(a, 300, 3)))
	inj.FailPath(path, 1, nil) // one injected EIO on the reopened file's first touch
	step <- struct{}{}
	round := drainRoundEvents(t, evs)
	// A KindReset for the node must precede the re-delivered content:
	// without it a consumer would fold the file's records twice.
	if len(round) != 2 || round[0].Kind != stream.KindReset || round[0].Record.Host != a {
		t.Fatalf("post-truncation round did not lead with a reset: %+v", round)
	}
	if round[1].Kind != stream.KindRecord || round[1].Record.At != 300 {
		t.Fatalf("post-truncation round: %+v", round)
	}
	if got := st.Truncations.Load(); got != 1 {
		t.Fatalf("truncations %d, want 1", got)
	}

	// The tail keeps following the recreated file.
	appendLines(t, path, line(errRec(a, 400, 4)))
	step <- struct{}{}
	if recs := drainRound(t, evs); len(recs) != 1 || recs[0].At != 400 {
		t.Fatalf("post-truncation append: %+v", recs)
	}

	// A consumed file that vanishes outright resets the node too; its
	// recreated successor is rediscovered fresh.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	step <- struct{}{}
	round = drainRoundEvents(t, evs)
	if len(round) != 1 || round[0].Kind != stream.KindReset || round[0].Record.Host != a {
		t.Fatalf("vanish round: %+v", round)
	}
	appendLines(t, path, line(errRec(a, 500, 5)))
	step <- struct{}{}
	if recs := drainRound(t, evs); len(recs) != 1 || recs[0].At != 500 {
		t.Fatalf("recreated file round: %+v", recs)
	}
}

func TestFollowTailFDsUseCachedBudgetHolds(t *testing.T) {
	dir := t.TempDir()
	const nodes = 6
	var ids []cluster.NodeID
	for i := 0; i < nodes; i++ {
		id := cluster.NodeID{Blade: i + 1, SoC: 1}
		ids = append(ids, id)
		appendLines(t, filepath.Join(dir, FileName(id)), line(errRec(id, timebase.T(10*i+10), dram.Addr(i+1))))
	}

	// cap 4, reserve 2: cached holders (tail fds) may claim at most 2;
	// the reserve stays free for transient acquirers — the same split
	// that keeps fault-store segment reads live next to the log writer.
	budget := fdlimit.NewReservedBudget(4, 2)
	var st FollowStats
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	step, evs, done := startFollow(ctx, dir, FollowWithBudget(budget), FollowWithStats(&st))

	if recs := drainRound(t, evs); len(recs) != nodes {
		t.Fatalf("backlog %d records, want %d", len(recs), nodes)
	}
	if hw := budget.MaxInUse(); hw > 2 {
		t.Fatalf("tail fd high-water %d exceeded the cached ceiling 2: idle tails starve transient readers", hw)
	}
	// An idle monitord holding its full cached allowance must leave the
	// transient reserve claimable without blocking.
	acquired := make(chan struct{})
	go func() {
		budget.Acquire()
		budget.Acquire()
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(10 * time.Second):
		t.Fatal("transient acquire blocked behind idle tail fds")
	}
	budget.Release()
	budget.Release()

	// More appends across every node force eviction cycles under the
	// 2-descriptor allowance; everything still arrives, and the reopen
	// counter records the cost.
	for i, id := range ids {
		appendLines(t, filepath.Join(dir, FileName(id)), line(errRec(id, timebase.T(1000+10*i), dram.Addr(40+i))))
	}
	step <- struct{}{}
	if recs := drainRound(t, evs); len(recs) != nodes {
		t.Fatalf("post-eviction round %d records, want %d", len(recs), nodes)
	}
	if hw := budget.MaxInUse(); hw > 4 {
		t.Fatalf("high-water %d exceeds cap", hw)
	}
	if st.Reopens.Load() == 0 {
		t.Fatal("expected eviction-driven reopens under a 2-fd allowance")
	}

	cancel()
	<-done
	if n := budget.InUse(); n != 0 {
		t.Fatalf("budget leak: %d descriptors still claimed after shutdown", n)
	}
	_ = step
}

func TestFollowCancelSurfacesContextError(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	_, evs, done := startFollow(ctx, dir)
	drainRound(t, evs)
	cancel()
	select {
	case d := <-evs:
		if !errors.Is(d.err, context.Canceled) {
			t.Fatalf("final delivery %+v, want context.Canceled", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no final delivery after cancel")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("iterator did not return after cancel")
	}
}

func TestFollowMalformedLineAbortsPositioned(t *testing.T) {
	dir := t.TempDir()
	a := cluster.NodeID{Blade: 9, SoC: 9}
	appendLines(t, filepath.Join(dir, FileName(a)),
		line(errRec(a, 5, 1))+"NOT A RECORD\n")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, evs, done := startFollow(ctx, dir)
	var sawRecord bool
	for {
		select {
		case d := <-evs:
			if d.err != nil {
				if !strings.Contains(d.err.Error(), "line 2") {
					t.Fatalf("error not positioned: %v", d.err)
				}
				<-done
				return
			}
			if d.ev.Kind == stream.KindRecord {
				sawRecord = true
				continue
			}
			t.Fatalf("unexpected event before error (kind %d, sawRecord %v)", d.ev.Kind, sawRecord)
		case <-time.After(10 * time.Second):
			t.Fatal("no positioned error delivered")
		}
	}
}
