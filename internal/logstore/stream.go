package logstore

import (
	"context"
	"fmt"
	"io"
	"iter"
	"runtime"
	"sort"
	"sync"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/iofault"
	"unprotected/internal/kway"
	"unprotected/internal/stream"
)

// StreamHandler receives the merged replay stream, mirroring the campaign
// engine's handler: either callback may be nil, in which case that merge is
// skipped entirely and only its count survives.
type StreamHandler struct {
	// Begin, when non-nil, observes the Stats after every file has been
	// collapsed and before the first Fault/Session delivery — in time for
	// a collecting consumer to preallocate from the exact counts.
	Begin func(*Stats)
	// Fault observes every extracted fault in the canonical
	// extract.Compare order: (time, node, address, pattern, ...).
	Fault func(extract.Fault)
	// Session observes every reconstructed session in
	// eventlog.CompareSessions order.
	Session func(eventlog.Session)
}

// Stats are the scalar aggregates of a replayed log directory.
type Stats struct {
	// Faults and Sessions count what the handler observed (or would have
	// observed, for nil callbacks).
	Faults   int
	Sessions int
	// RawLogs counts the ERROR records consumed; pre-collapsed lines
	// (logs= field) count their full weight, so a faithful export
	// round-trips the original raw volume of its faults.
	RawLogs int64
	// RawLogsByNode splits the raw volume per node (nodes with zero raw
	// logs have no entry).
	RawLogsByNode map[cluster.NodeID]int64
	// Nodes lists the nodes found, in sorted file order.
	Nodes []cluster.NodeID
}

// nodeStream is one log file's finalized, locally sorted contribution to
// the replay stream.
type nodeStream struct {
	faults     []extract.Fault
	faultCount int
	sessions   []eventlog.Session
	rawLogs    int64
	// rawByNode attributes raw volume by each run's host= field, not by
	// the file name — a file holding records of a foreign host (renamed or
	// concatenated logs) must credit the true host, matching fault
	// attribution.
	rawByNode map[cluster.NodeID]int64
	node      cluster.NodeID
	order     int // file index: the deterministic merge tiebreak
	err       error
}

// Stream reads every node file under dir with a bounded worker pool and
// delivers the extracted dataset incrementally, mirroring the campaign
// engine: each worker collapses and classifies one file (so §II-C
// extraction parallelizes across files), sorts that node's faults and
// sessions locally, and two deterministic k-way merges interleave the
// per-node streams into the canonical global orders. The merged dataset is
// never materialized here; Load is the collect-all wrapper.
//
// The default worker count is GOMAXPROCS; see StreamWorkers. Output is
// byte-identical for any worker count: per-file work is independent, both
// comparators are total orders, and the merge consumes streams sorted by
// file index, so scheduling can not reorder anything.
func Stream(dir string, h StreamHandler) (*Stats, error) {
	return StreamWorkers(dir, 0, h)
}

// StreamWorkers is Stream with an explicit worker-pool size (0 or negative
// means GOMAXPROCS).
func StreamWorkers(dir string, workers int, h StreamHandler) (*Stats, error) {
	stats, streams, err := collect(context.Background(), dir, workers, iofault.OS, h.Fault != nil, h.Session != nil)
	if err != nil {
		return nil, err
	}
	if h.Begin != nil {
		h.Begin(stats)
	}
	if h.Fault != nil {
		kway.Merge(faultStreams(streams), extract.Compare, h.Fault)
	}
	if h.Session != nil {
		kway.Merge(sessionStreams(streams), eventlog.CompareSessions, h.Session)
	}
	return stats, nil
}

// Events replays the directory and yields the merged stream as an
// iterator honouring the internal/stream contract, mirroring the campaign
// engine's Events: a stats prologue, faults in extract.Compare order,
// then sessions in eventlog.CompareSessions order — exactly the sequence
// StreamWorkers hands its callbacks over the same directory, for any
// worker count (0 means GOMAXPROCS).
//
// Cancelling ctx aborts the replay: unread files are skipped, the loader
// pool drains and exits before the iterator yields its final (zero Event,
// ctx.Err()) pair, so an abandoned replay leaks no goroutines. By the
// first yield the pool has already wound down, so breaking out of the
// range releases everything immediately. Delivery itself performs no
// per-event allocation.
func Events(ctx context.Context, dir string, workers int) iter.Seq2[stream.Event, error] {
	return EventsFS(ctx, dir, workers, iofault.OS)
}

// EventsFS is Events with every file operation routed through fsys — the
// seam the chaos tests use to fail or tear the replay's reads.
func EventsFS(ctx context.Context, dir string, workers int, fsys iofault.FS) iter.Seq2[stream.Event, error] {
	return func(yield func(stream.Event, error) bool) {
		stats, streams, err := collect(ctx, dir, workers, fsys, true, true)
		if err != nil {
			yield(stream.Event{}, err)
			return
		}
		stream.Deliver(ctx, yield, &stream.Stats{
			Faults:        stats.Faults,
			Sessions:      stats.Sessions,
			RawLogs:       stats.RawLogs,
			RawLogsByNode: stats.RawLogsByNode,
		}, faultStreams(streams), sessionStreams(streams))
	}
}

// faultStreams projects the non-empty per-node fault slices in file order.
func faultStreams(streams []nodeStream) [][]extract.Fault {
	out := make([][]extract.Fault, 0, len(streams))
	for _, ns := range streams {
		if len(ns.faults) > 0 {
			out = append(out, ns.faults)
		}
	}
	return out
}

// sessionStreams projects the non-empty per-node session slices in file
// order.
func sessionStreams(streams []nodeStream) [][]eventlog.Session {
	out := make([][]eventlog.Session, 0, len(streams))
	for _, ns := range streams {
		if len(ns.sessions) > 0 {
			out = append(out, ns.sessions)
		}
	}
	return out
}

// collect runs the loader pool to completion (or cancellation) and
// gathers the per-file sorted streams, restored to file order, plus the
// scalar stats. It is the shared engine under StreamWorkers and Events.
//
// Cancellation: the feeder stops handing out files, workers skip loading
// whatever is still queued, and the collector keeps draining until the
// results channel closes — so by the time ctx.Err() is returned every
// pool goroutine has exited.
func collect(ctx context.Context, dir string, workers int, fsys iofault.FS, needFaults, needSessions bool) (*Stats, []nodeStream, error) {
	files, err := listNodeFiles(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(files) {
		workers = len(files)
	}

	type job struct {
		path  string
		node  cluster.NodeID
		order int
	}
	jobs := make(chan job)
	results := make(chan nodeStream, workers)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain the queue without loading
				}
				ns := loadNodeFile(fsys, j.path, j.node, needFaults, needSessions)
				ns.order = j.order
				select {
				case results <- ns:
				case <-done:
				}
			}
		}()
	}
	stats := &Stats{RawLogsByNode: make(map[cluster.NodeID]int64)}
	go func() {
	feed:
		for i, path := range files {
			node, _ := nodeOfFile(path)
			select {
			case jobs <- job{path: path, node: node, order: i}:
			case <-done:
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for _, path := range files {
		node, _ := nodeOfFile(path)
		stats.Nodes = append(stats.Nodes, node)
	}

	var streams []nodeStream
	var firstErr *nodeStream
	for ns := range results {
		if ctx.Err() != nil {
			continue // cancelled: keep draining so the pool exits
		}
		if ns.err != nil {
			// Keep draining so the pool exits, but remember the failure of
			// the lowest-indexed file — deterministic no matter which
			// worker tripped first.
			if firstErr == nil || ns.order < firstErr.order {
				cp := ns
				firstErr = &cp
			}
			continue
		}
		stats.Faults += ns.faultCount
		stats.Sessions += len(ns.sessions)
		stats.RawLogs += ns.rawLogs
		for id, n := range ns.rawByNode {
			stats.RawLogsByNode[id] += n
		}
		if len(ns.faults) > 0 || len(ns.sessions) > 0 {
			streams = append(streams, ns)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if firstErr != nil {
		return nil, nil, firstErr.err
	}
	// Streams arrive in worker-completion order; restore file order so the
	// merge's equal-key tiebreak (stream index) is deterministic even if a
	// directory holds two files for one node.
	sort.Slice(streams, func(i, j int) bool { return streams[i].order < streams[j].order })
	return stats, streams, nil
}

// collapserPool recycles per-file collapsers — and with them the
// struct-of-arrays run columns and the open-run slab they carry — across
// every file of a directory and across directories.
var collapserPool = sync.Pool{New: func() any { return extract.NewCollapser() }}

// loadNodeFile runs one file through the §II-C pipeline on the worker:
// records are collapsed into runs and sessions as they are read, then the
// node's faults and sessions are classified and sorted locally so the
// collector only merges.
func loadNodeFile(fsys iofault.FS, path string, node cluster.NodeID, needFaults, needSessions bool) nodeStream {
	ns := nodeStream{node: node}
	f, err := fsys.Open(path)
	if err != nil {
		ns.err = fmt.Errorf("logstore: %w", err)
		return ns
	}
	defer f.Close()
	collapser := collapserPool.Get().(*extract.Collapser)
	defer func() {
		// Close already resets on the success path; Reset again is a no-op
		// there and cleans up after mid-file read errors.
		collapser.Reset()
		collapserPool.Put(collapser)
	}()
	acct := eventlog.NewAccounting()
	r := eventlog.NewReader(f)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			ns.err = fmt.Errorf("logstore: %s: %w", path, err)
			return ns
		}
		acct.Observe(rec)
		collapser.Observe(rec)
	}
	runs, raw := collapser.Close()
	ns.rawLogs = raw
	ns.faultCount = len(runs)
	if len(runs) > 0 {
		// Every ERROR record lands in exactly one run, so Σ run.Logs == raw
		// and grouping by run.Node splits the volume by true host.
		ns.rawByNode = make(map[cluster.NodeID]int64, 1)
		for _, r := range runs {
			ns.rawByNode[r.Node] += int64(r.Logs)
		}
	}
	if needFaults {
		ns.faults = extract.Faults(runs)
		extract.SortFaults(ns.faults)
	}
	ns.sessions = acct.Finish()
	if needSessions {
		sort.Slice(ns.sessions, func(i, j int) bool {
			return eventlog.CompareSessions(&ns.sessions[i], &ns.sessions[j]) < 0
		})
	}
	return ns
}
