package logstore

import (
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

func TestExportLoadRoundTrip(t *testing.T) {
	hostA := cluster.NodeID{Blade: 2, SoC: 4}
	hostB := cluster.NodeID{Blade: 40, SoC: 6}
	day := timebase.T(86400)
	sessions := []eventlog.Session{
		{Host: hostA, From: 0, To: 4 * 3600, AllocBytes: 3 << 30},
		{Host: hostA, From: 10 * day, To: 10*day + 7200, AllocBytes: 3 << 30},
		{Host: hostB, From: 5 * day, To: 5*day + 3600, AllocBytes: 2 << 30, Truncated: true},
	}
	faults := []extract.Fault{
		extract.Classify(extract.RawRun{
			Node: hostA, Addr: 100, FirstAt: 3600, LastAt: 3600, Logs: 1,
			Expected: 0xFFFFFFFF, Actual: 0xFFFF7BFF, TempC: 33.5,
		}),
		extract.Classify(extract.RawRun{
			Node: hostA, Addr: 2000, FirstAt: 10*day + 600, LastAt: 10*day + 600, Logs: 1,
			Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE, TempC: thermal.NoReading,
		}),
	}

	dir := t.TempDir()
	if err := Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Nodes) != 2 {
		t.Fatalf("nodes %v", res.Nodes)
	}
	if len(res.Runs) != len(faults) {
		t.Fatalf("runs %d, want %d", len(res.Runs), len(faults))
	}
	back := extract.Faults(res.Runs)
	extract.SortFaults(back)
	for i := range back {
		want := faults[i]
		got := back[i]
		if got.Node != want.Node || got.Addr != want.Addr ||
			got.FirstAt != want.FirstAt || got.Expected != want.Expected ||
			got.Actual != want.Actual {
			t.Fatalf("fault %d mismatch:\n got %+v\nwant %+v", i, got.RawRun, want.RawRun)
		}
		if got.Bits != want.Bits {
			t.Fatalf("fault %d classification drifted", i)
		}
	}

	// Session accounting round-trips with the truncation rule intact.
	var hours float64
	truncated := 0
	for _, s := range res.Sessions {
		hours += s.Duration().Hours()
		if s.Truncated {
			truncated++
		}
	}
	if hours != 6 { // 4h + 2h; the truncated one counts 0
		t.Fatalf("hours %v, want 6", hours)
	}
	if truncated != 1 {
		t.Fatalf("truncated sessions %d, want 1", truncated)
	}

	// Addresses survive the virtual-address encoding.
	if dram.VirtAddr(res.Runs[0].Addr) != dram.VirtAddr(100) &&
		dram.VirtAddr(res.Runs[0].Addr) != dram.VirtAddr(2000) {
		t.Fatal("address mapping broken")
	}
}

func TestExportEmptyDataset(t *testing.T) {
	dir := t.TempDir()
	if err := Export(nil, nil, dir); err != nil {
		t.Fatal(err)
	}
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 0 || len(res.Sessions) != 0 {
		t.Fatal("phantom data from empty export")
	}
}
