package logstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
	"unprotected/internal/stream"
)

// DefaultFollowInterval is the tail poll cadence when no option overrides
// it: fast enough that a fleet monitor's figures lag the logs by about a
// second, slow enough that an idle 1000-node directory costs one stat
// sweep per second, not a busy loop.
const DefaultFollowInterval = time.Second

// FollowStats is the caller-owned counter block a follower publishes
// into (FollowWithStats). All fields are atomics, so a monitoring
// daemon's HTTP handlers read them lock-free while the tail loop writes.
type FollowStats struct {
	// Rounds counts completed poll rounds (one KindSync each).
	Rounds atomic.Int64
	// Lines counts parsed records delivered as KindRecord events.
	Lines atomic.Int64
	// Files reports how many node files are currently being tailed.
	Files atomic.Int64
	// Truncations counts size regressions: a tailed file shrank under
	// the follower (truncate-in-place or rotation), forcing a reopen
	// from offset zero.
	Truncations atomic.Int64
	// Reopens counts descriptors reopened after a budget eviction — the
	// cost metric of tailing more files than the fd budget allows.
	Reopens atomic.Int64
}

// followCfg is the resolved follow option set.
type followCfg struct {
	fsys     iofault.FS
	budget   *fdlimit.Budget
	retry    iofault.RetryPolicy
	interval time.Duration
	// wait blocks until the next poll round is due, returning false when
	// the follow should stop (the injectable ticker; tests drive it
	// deterministically, production builds one from interval).
	wait  func(ctx context.Context) bool
	stats *FollowStats
}

// FollowOption configures Follow.
type FollowOption func(*followCfg) error

// FollowWithFS routes every file operation of the follower through fsys —
// the seam the truncation and torn-write tests inject faults through.
func FollowWithFS(fsys iofault.FS) FollowOption {
	return func(c *followCfg) error {
		if fsys == nil {
			return errors.New("nil FS")
		}
		c.fsys = fsys
		return nil
	}
}

// FollowWithBudget makes the follower meter its long-lived tail
// descriptors from b instead of the shared process-wide budget.
func FollowWithBudget(b *fdlimit.Budget) FollowOption {
	return func(c *followCfg) error {
		if b == nil {
			return errors.New("nil Budget")
		}
		c.budget = b
		return nil
	}
}

// FollowWithInterval sets the poll cadence (default one second).
func FollowWithInterval(d time.Duration) FollowOption {
	return func(c *followCfg) error {
		if d <= 0 {
			return fmt.Errorf("non-positive poll interval %v", d)
		}
		c.interval = d
		return nil
	}
}

// FollowWithTicker replaces the wall-clock poll ticker: wait blocks until
// the next round is due and returns false to end the follow cleanly (the
// iterator then yields ctx.Err() if the context was cancelled, or simply
// returns). Tests inject a channel-driven stepper here so tail behavior
// is deterministic — no sleeps, no wall clock.
func FollowWithTicker(wait func(ctx context.Context) bool) FollowOption {
	return func(c *followCfg) error {
		if wait == nil {
			return errors.New("nil ticker")
		}
		c.wait = wait
		return nil
	}
}

// FollowWithStats publishes the follower's counters into st.
func FollowWithStats(st *FollowStats) FollowOption {
	return func(c *followCfg) error {
		if st == nil {
			return errors.New("nil FollowStats")
		}
		c.stats = st
		return nil
	}
}

// FollowWithRetry replaces the transient-error retry policy applied to
// the follower's directory walks, stats and opens.
func FollowWithRetry(p iofault.RetryPolicy) FollowOption {
	return func(c *followCfg) error {
		c.retry = p
		return nil
	}
}

// Follow tails a log directory: it delivers every record already on disk,
// then keeps polling for appended lines and newly created node files, as
// an endless stream of KindRecord events in per-node arrival order with a
// KindSync boundary after each poll round. It is the live-ingest
// counterpart of Events — a fleet monitor ranges over it for the lifetime
// of the process.
//
// Contract (differs from the batch Source shape, see stream.KindRecord):
//
//   - No stats prologue: totals are unknowable mid-tail.
//   - Records of one node arrive in file-append order; nodes interleave
//     in sorted file order per round, NOT in the canonical global merge
//     order. Consumers that need canonical order re-establish it at
//     snapshot time (extract.Compare is total, so sorting the same fault
//     set always yields the same sequence).
//   - A torn final line — bytes after the last complete '\n' — is never
//     parsed: the follower buffers it and resumes from the last complete
//     line boundary once the writer finishes the record.
//   - A file whose size regresses (truncation, rotation) is reopened
//     from offset zero and its unread tail buffer dropped. A KindReset
//     event for the file's node precedes the re-read: every record
//     previously delivered from the old content is invalid, and the
//     consumer must discard that node's accumulated state before the
//     file's current content arrives as fresh records. A tailed file
//     that vanishes after delivering records resets the same way.
//   - Long-lived tail descriptors are metered from the fd budget as
//     cached holds (TryAcquire/AcquireCached + own-LRU eviction), so a
//     follower tailing more files than the cap never starves transient
//     acquirers (fault-store segment reads) of the reserve.
//   - Cancelling ctx (or a false injectable ticker) ends the stream; a
//     cancelled context is surfaced as a final (zero Event, ctx.Err())
//     pair after the descriptors are closed. A parse or I/O error that
//     survives the retry policy ends the stream the same way.
func Follow(ctx context.Context, dir string, opts ...FollowOption) iter.Seq2[stream.Event, error] {
	return func(yield func(stream.Event, error) bool) {
		cfg := followCfg{
			fsys:     iofault.OS,
			budget:   fdlimit.Shared,
			retry:    iofault.DefaultRetry,
			interval: DefaultFollowInterval,
		}
		for _, opt := range opts {
			if opt == nil {
				yield(stream.Event{}, errors.New("logstore: Follow: nil FollowOption"))
				return
			}
			if err := opt(&cfg); err != nil {
				yield(stream.Event{}, fmt.Errorf("logstore: Follow: %w", err))
				return
			}
		}
		if cfg.wait == nil {
			ticker := time.NewTicker(cfg.interval)
			defer ticker.Stop()
			cfg.wait = func(ctx context.Context) bool {
				select {
				case <-ctx.Done():
					return false
				case <-ticker.C:
					return true
				}
			}
		}
		f := &follower{cfg: cfg, dir: dir, tails: make(map[string]*tail)}
		defer f.closeAll()
		for {
			if !f.poll(ctx, yield) {
				return
			}
			if cfg.stats != nil {
				cfg.stats.Rounds.Add(1)
			}
			if !yield(stream.SyncEvent(), nil) {
				return
			}
			if !cfg.wait(ctx) {
				if err := ctx.Err(); err != nil {
					f.closeAll()
					yield(stream.Event{}, err)
				}
				return
			}
		}
	}
}

// tail is the follower's per-file cursor.
type tail struct {
	path string
	node cluster.NodeID
	f    iofault.File // nil while evicted or not yet opened
	off  int64        // bytes consumed from the file, including partial
	// partial holds the bytes after the last complete '\n' — the torn
	// final line the follower must never parse until it is finished.
	partial []byte
	lineNo  int
	lastUse uint64
	opened  bool // the file was opened at least once (reopen accounting)
}

// follower tracks every tailed file and the descriptors they hold.
type follower struct {
	cfg   followCfg
	dir   string
	tails map[string]*tail
	clock uint64
	open  int // tails currently holding a descriptor
}

// poll runs one round: discover files, detect truncations, read every
// file to its current end, deliver complete lines. It returns false when
// the stream must stop (consumer break, cancellation, or an error that
// was already yielded).
func (f *follower) poll(ctx context.Context, yield func(stream.Event, error) bool) bool {
	var files []string
	err := f.cfg.retry.Do(ctx, func() error {
		var lerr error
		files, lerr = listNodeFiles(f.cfg.fsys, f.dir)
		return lerr
	})
	if err != nil {
		f.closeAll()
		yield(stream.Event{}, err)
		return false
	}
	live := make(map[string]bool, len(files))
	for _, path := range files {
		live[path] = true
	}
	// A tracked file that vanished (rotation by rename, cleanup) stops
	// being tailed; if a file reappears at the same path it is discovered
	// fresh, from offset zero. Consumers holding state folded from the
	// vanished content are told to drop it (sorted so multiple vanishes
	// in one round reset in a deterministic order).
	var gone []*tail
	for path, t := range f.tails {
		if !live[path] {
			gone = append(gone, t)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i].path < gone[j].path })
	for _, t := range gone {
		consumed := t.off > 0
		f.closeTail(t)
		delete(f.tails, t.path)
		if consumed && !yield(stream.ResetEvent(t.node), nil) {
			return false
		}
	}
	for _, path := range files {
		if err := ctx.Err(); err != nil {
			f.closeAll()
			yield(stream.Event{}, err)
			return false
		}
		t := f.tails[path]
		if t == nil {
			node, _ := nodeOfFile(path)
			t = &tail{path: path, node: node}
			f.tails[path] = t
		}
		if !f.drain(ctx, t, yield) {
			return false
		}
	}
	if f.cfg.stats != nil {
		f.cfg.stats.Files.Store(int64(len(f.tails)))
	}
	return true
}

// drain catches one tail up with its file: stat for growth or
// truncation, then read and deliver every newly completed line.
func (f *follower) drain(ctx context.Context, t *tail, yield func(stream.Event, error) bool) bool {
	var size int64
	err := f.cfg.retry.Do(ctx, func() error {
		info, serr := f.cfg.fsys.Stat(t.path)
		if serr != nil {
			return serr
		}
		size = info.Size()
		return nil
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Deleted between ReadDir and Stat: drop it; a recreated file
			// is rediscovered next round.
			consumed := t.off > 0
			f.closeTail(t)
			delete(f.tails, t.path)
			return !consumed || yield(stream.ResetEvent(t.node), nil)
		}
		f.closeAll()
		yield(stream.Event{}, fmt.Errorf("logstore: follow %s: %w", t.path, err))
		return false
	}
	if size < t.off {
		// Size regression: the file was truncated or rotated underneath
		// us. The old offset now points past (or into the middle of)
		// content we never saw; the only consistent restart is offset
		// zero with the torn-line buffer dropped — and a reset telling the
		// consumer to drop everything it folded from the old content,
		// which the re-read below re-delivers as fresh records. Without
		// this check the tail would block at the stale offset forever.
		f.closeTail(t)
		t.off = 0
		t.partial = t.partial[:0]
		t.lineNo = 0
		if f.cfg.stats != nil {
			f.cfg.stats.Truncations.Add(1)
		}
		if !yield(stream.ResetEvent(t.node), nil) {
			return false
		}
	}
	if size <= t.off {
		return true
	}
	if err := f.ensureOpen(ctx, t); err != nil {
		f.closeAll()
		yield(stream.Event{}, fmt.Errorf("logstore: follow %s: %w", t.path, err))
		return false
	}
	// Read to the size the stat observed, not to EOF: a writer appending
	// concurrently could otherwise keep this loop in one file while every
	// other tail starves. What lands after the stat is next round's work.
	remain := size - t.off
	buf := make([]byte, 64*1024)
	for remain > 0 {
		n := int64(len(buf))
		if n > remain {
			n = remain
		}
		rn, rerr := t.f.Read(buf[:n])
		if rn > 0 {
			t.off += int64(rn)
			remain -= int64(rn)
			if ok, perr := f.deliver(t, buf[:rn], yield); !ok {
				if perr != nil {
					f.closeAll()
					yield(stream.Event{}, perr)
				}
				return false
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.closeAll()
			yield(stream.Event{}, fmt.Errorf("logstore: follow %s: %w", t.path, rerr))
			return false
		}
	}
	return true
}

// deliver appends chunk to the tail's line buffer and yields every
// complete line as a KindRecord event, leaving the torn remainder — if
// any — buffered. It mirrors eventlog.Reader line handling exactly: blank
// lines are skipped, malformed lines abort with a positioned error.
func (f *follower) deliver(t *tail, chunk []byte, yield func(stream.Event, error) bool) (bool, error) {
	t.partial = append(t.partial, chunk...)
	consumed := 0
	for {
		i := bytes.IndexByte(t.partial[consumed:], '\n')
		if i < 0 {
			break
		}
		line := bytes.TrimSpace(t.partial[consumed : consumed+i])
		consumed += i + 1
		t.lineNo++
		if len(line) == 0 {
			continue
		}
		rec, err := eventlog.ParseBytes(line)
		if err != nil {
			return false, fmt.Errorf("logstore: follow %s: line %d: %w", t.path, t.lineNo, err)
		}
		if f.cfg.stats != nil {
			f.cfg.stats.Lines.Add(1)
		}
		if !yield(stream.RecordEvent(rec), nil) {
			return false, nil
		}
	}
	if consumed > 0 {
		rest := copy(t.partial, t.partial[consumed:])
		t.partial = t.partial[:rest]
	}
	return true, nil
}

// ensureOpen gives the tail a readable descriptor positioned at its
// consumed offset, claiming one from the budget as a cached hold: the
// descriptor stays open across rounds, so it must never dip into the
// reserve that keeps transient acquirers (fault-store segment reads)
// live. While the budget is exhausted the follower evicts its own
// least-recently-used open tail; with nothing left to evict it blocks in
// AcquireCached for another holder's release.
func (f *follower) ensureOpen(ctx context.Context, t *tail) error {
	f.clock++
	t.lastUse = f.clock
	if t.f != nil {
		return nil
	}
	for !f.cfg.budget.TryAcquire() {
		if f.open == 0 {
			f.cfg.budget.AcquireCached()
			break
		}
		f.evictLRU()
	}
	var file iofault.File
	err := f.cfg.retry.Do(ctx, func() error {
		var oerr error
		file, oerr = f.cfg.fsys.Open(t.path)
		return oerr
	})
	if err != nil {
		f.cfg.budget.Release()
		return err
	}
	if t.off > 0 {
		if _, err := file.Seek(t.off, io.SeekStart); err != nil {
			file.Close()
			f.cfg.budget.Release()
			return err
		}
	}
	t.f = file
	f.open++
	if t.opened && f.cfg.stats != nil {
		f.cfg.stats.Reopens.Add(1)
	}
	t.opened = true
	return nil
}

// evictLRU closes the least-recently-used open tail to free a budget
// token. The tail's offset survives; the next drain reopens and seeks.
func (f *follower) evictLRU() {
	var victim *tail
	for _, t := range f.tails {
		if t.f != nil && (victim == nil || t.lastUse < victim.lastUse) {
			victim = t
		}
	}
	if victim == nil {
		return
	}
	f.closeTail(victim)
}

// closeTail releases one tail's descriptor, if it holds one.
func (f *follower) closeTail(t *tail) {
	if t.f == nil {
		return
	}
	t.f.Close()
	t.f = nil
	f.open--
	f.cfg.budget.Release()
}

// closeAll releases every descriptor the follower holds; safe to call
// repeatedly (the final yield paths and the deferred cleanup both run it).
func (f *follower) closeAll() {
	for _, t := range f.tails {
		f.closeTail(t)
	}
}
