package fdlimit

import (
	"sync"
	"testing"
)

func TestBudgetTryAcquireCeiling(t *testing.T) {
	b := NewBudget(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("budget refused descriptors under the cap")
	}
	if b.TryAcquire() {
		t.Fatal("budget granted a descriptor over the cap")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("budget refused a descriptor after a release")
	}
	if got := b.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}
	if got := b.MaxInUse(); got != 2 {
		t.Fatalf("MaxInUse = %d, want 2", got)
	}
}

func TestBudgetAcquireBlocksUntilRelease(t *testing.T) {
	b := NewBudget(1)
	b.Acquire()
	done := make(chan struct{})
	go func() {
		b.Acquire()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire returned while the budget was exhausted")
	default:
	}
	b.Release()
	<-done
	b.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

// TestBudgetConcurrentHighWater hammers one small budget from many
// goroutines: the high-water mark must never exceed the cap.
func TestBudgetConcurrentHighWater(t *testing.T) {
	const cap = 5
	b := NewBudget(cap)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Acquire()
				b.Release()
			}
		}()
	}
	wg.Wait()
	if got := b.MaxInUse(); got > cap {
		t.Fatalf("MaxInUse = %d, want <= %d", got, cap)
	}
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0 after all releases", got)
	}
}

func TestBudgetFloorAndReset(t *testing.T) {
	b := NewBudget(-3)
	if got := b.Cap(); got != 1 {
		t.Fatalf("Cap = %d, want floor 1", got)
	}
	b.SetCap(0)
	if got := b.Cap(); got != 1 {
		t.Fatalf("Cap = %d, want floor 1 after SetCap(0)", got)
	}
	b.SetCap(4)
	b.Acquire()
	b.Acquire()
	b.Release()
	b.ResetMaxInUse()
	if got := b.MaxInUse(); got != 1 {
		t.Fatalf("MaxInUse = %d, want 1 after reset with one held", got)
	}
	b.Release()
}

// TestBudgetReserve pins the two-class contract: cache-style holders
// (TryAcquire/AcquireCached) stop at cap minus the reserve, while
// transient holders (Acquire) may use the full cap — so an idle cache
// can never starve transient acquirers out of every token.
func TestBudgetReserve(t *testing.T) {
	b := NewReservedBudget(4, 2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("cached holder refused descriptors under the cached ceiling")
	}
	if b.TryAcquire() {
		t.Fatal("cached holder dipped into the transient reserve")
	}
	// The reserve is still fully available to transient holders, and they
	// never block on the idle cache.
	b.Acquire()
	b.Acquire()
	if got := b.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
	b.Release()
	b.Release()

	// A blocking cached acquire waits for the cached ceiling, not the cap.
	done := make(chan struct{})
	go func() {
		b.AcquireCached()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("AcquireCached returned while the cached ceiling was reached")
	default:
	}
	b.Release()
	<-done
	b.Release()
	b.Release()

	// The cached ceiling never drops below one descriptor.
	tiny := NewReservedBudget(1, 8)
	if !tiny.TryAcquire() {
		t.Fatal("reserve floored the cached ceiling below one")
	}
	tiny.Release()
}

func TestBudgetReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewBudget(1).Release()
}
