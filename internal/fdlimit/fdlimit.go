// Package fdlimit meters open file descriptors across the module's
// storage layers. The log writer (logstore.Store) keeps per-node files
// open in an LRU cache and the binary fault store (internal/faultstore)
// opens segment files while answering queries; both draw their
// descriptors from one Budget, so a process that writes logs while
// serving store queries stays under a single configurable ceiling instead
// of two independent ones that can add up past the OS limit.
//
// A Budget is a counting limiter, not a cache: callers Acquire before
// opening a file and Release after closing it. The two holder classes
// acquire differently. Components that cache open files indefinitely
// (the log writer) call TryAcquire — or its blocking form AcquireCached —
// and evict their own least-recently-used entry when the budget is
// exhausted; components with transient opens (segment readers) block in
// Acquire until a descriptor frees up. Cached holds never release on
// their own, so a budget can reserve headroom for the transient class:
// TryAcquire/AcquireCached stop at cap minus the reserve, while Acquire
// may use the full cap. Without a reserve, an idle cache holding every
// token would block transient acquirers forever. MaxInUse records the
// high-water mark, which is what the regression tests pin.
package fdlimit

import "sync"

// DefaultCap is the default descriptor ceiling of the shared budget. It
// matches the log writer's historical private cap: a full campaign has
// 923 nodes, which would flirt with common descriptor limits if every
// per-node file stayed open.
const DefaultCap = 128

// DefaultReserve is the shared budget's headroom withheld from
// cache-style holders, so transient opens (segment readers) always find
// descriptors that are guaranteed to cycle back.
const DefaultReserve = 8

// Budget meters a fixed number of concurrently open file descriptors.
// All methods are safe for concurrent use.
type Budget struct {
	mu       sync.Mutex
	cond     *sync.Cond
	cap      int
	reserve  int
	inUse    int
	maxInUse int
}

// NewBudget returns a budget with the given ceiling (minimum 1) and no
// reserve; use NewReservedBudget or SetReserve when cache-style and
// transient holders share it.
func NewBudget(cap int) *Budget {
	return NewReservedBudget(cap, 0)
}

// NewReservedBudget returns a budget with the given ceiling (minimum 1)
// that withholds reserve tokens from cache-style holders.
func NewReservedBudget(cap, reserve int) *Budget {
	b := &Budget{cap: max(cap, 1), reserve: max(reserve, 0)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Shared is the process-wide default budget, drawn on by logstore writers
// and faultstore segment readers unless a caller installs a private one.
// The reserve keeps segment readers live even when writer caches are full
// and idle.
var Shared = NewReservedBudget(DefaultCap, DefaultReserve)

// SetCap adjusts the ceiling (minimum 1). Lowering it below the current
// in-use count does not revoke held descriptors; it only blocks new
// acquisitions until enough are released.
func (b *Budget) SetCap(n int) {
	b.mu.Lock()
	b.cap = max(n, 1)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Cap returns the current ceiling.
func (b *Budget) Cap() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// SetReserve adjusts the headroom withheld from cache-style holders
// (minimum 0). The cached ceiling never drops below one descriptor.
func (b *Budget) SetReserve(n int) {
	b.mu.Lock()
	b.reserve = max(n, 0)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// cachedCapLocked is the ceiling cache-style holders may claim up to:
// the cap minus the transient reserve, but never below one so a lone
// writer can always make progress.
func (b *Budget) cachedCapLocked() int {
	return max(b.cap-b.reserve, 1)
}

// TryAcquire claims one descriptor for a cache-style (indefinite) hold
// if the budget allows, reporting whether it did. It never blocks and
// never dips into the transient reserve.
func (b *Budget) TryAcquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.inUse >= b.cachedCapLocked() {
		return false
	}
	b.claimLocked()
	return true
}

// AcquireCached is the blocking form of TryAcquire, for cache-style
// holders that have nothing of their own left to evict: it waits for
// another holder's release but still never dips into the transient
// reserve.
func (b *Budget) AcquireCached() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inUse >= b.cachedCapLocked() {
		b.cond.Wait()
	}
	b.claimLocked()
}

// Acquire claims one descriptor for a transient hold, blocking until the
// budget allows it. Transient holds may use the full cap, including the
// reserve: they release promptly, so waiting on them always terminates.
func (b *Budget) Acquire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inUse >= b.cap {
		b.cond.Wait()
	}
	b.claimLocked()
}

func (b *Budget) claimLocked() {
	b.inUse++
	if b.inUse > b.maxInUse {
		b.maxInUse = b.inUse
	}
}

// Release returns one descriptor to the budget. Releasing more than was
// acquired panics: it means a double-close style accounting bug.
func (b *Budget) Release() {
	b.mu.Lock()
	if b.inUse <= 0 {
		b.mu.Unlock()
		panic("fdlimit: Release without matching Acquire")
	}
	b.inUse--
	b.mu.Unlock()
	// Broadcast, not Signal: cached and transient waiters share the
	// condition but wake at different thresholds, and a single Signal
	// could land on a waiter whose threshold is still unmet.
	b.cond.Broadcast()
}

// InUse returns the number of currently claimed descriptors.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// MaxInUse returns the high-water mark of claimed descriptors since the
// budget was created or the mark was last reset.
func (b *Budget) MaxInUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.maxInUse
}

// ResetMaxInUse rewinds the high-water mark to the current in-use count,
// so a test can meter one phase in isolation.
func (b *Budget) ResetMaxInUse() {
	b.mu.Lock()
	b.maxInUse = b.inUse
	b.mu.Unlock()
}
