// Package radiation models the atmospheric-neutron environment that drives
// transient DRAM upsets.
//
// The paper's key environmental finding (§III-E) is that multi-bit errors
// are about twice as frequent between 7am and 6pm as at night, with a bell
// shape peaking when the sun is highest — consistent with secondary-neutron
// showers from cosmic rays interacting with the atmosphere, whose local
// intensity tracks solar elevation. This package turns that hypothesis into
// the generative model: strike arrival is a non-homogeneous Poisson process
// whose rate is a base (galactic) term plus a solar-elevation term, sampled
// exactly by thinning. Each strike deposits charge over one or more
// physically adjacent cells; the cell-count distribution has a heavy tail
// (the paper saw a single event upset 36 bits across different words).
package radiation

import (
	"math"

	"unprotected/internal/rng"
	"unprotected/internal/solar"
	"unprotected/internal/timebase"
)

// Flux converts solar elevation into a relative strike-rate multiplier.
type Flux struct {
	Site solar.Site
	// SolarGain scales the elevation-driven term. Calibrated so that the
	// 7am–6pm window carries about twice the strikes of the night window,
	// matching Fig 6.
	SolarGain float64
	// AltitudeFactor scales the whole flux with site altitude. Neutron flux
	// roughly doubles every ~1500 m; Barcelona at ~100 m is ≈ sea level.
	AltitudeFactor float64
}

// NewFlux returns the flux model for a site, calibrated for the paper.
// Site altitude is the one environmental knob: it feeds AltitudeScale, so
// sweeping a campaign across altitudes (internal/sweep's altitude axis)
// scales the whole strike process the way moving the machine would.
func NewFlux(site solar.Site) *Flux {
	return &Flux{
		Site:           site,
		SolarGain:      4.2,
		AltitudeFactor: AltitudeScale(site.AltMeters),
	}
}

// AltitudeScale approximates the neutron-flux altitude dependence
// exp(alt / L) with attenuation length L ≈ 2165 m of air ≈ scaling that
// doubles roughly every 1500 m. Sea level maps to 1. It is exported as the
// sweepable altitude/flux axis: a follow-up study at a high-altitude site
// (Boixaderas et al. measured ~6.6× at the Pic du Midi, 2877 m) is the
// paper's configuration with only this multiplier moved.
func AltitudeScale(altMeters float64) float64 {
	return math.Exp(altMeters / 2165)
}

// Multiplier returns the relative strike rate at time t. The night-time
// (sun below horizon) multiplier is AltitudeFactor; daytime adds the
// solar-elevation term.
func (f *Flux) Multiplier(t timebase.T) float64 {
	el := solar.Elevation(f.Site, t.Time())
	if el <= 0 {
		return f.AltitudeFactor
	}
	return f.AltitudeFactor * (1 + f.SolarGain*math.Sin(el*math.Pi/180))
}

// MaxMultiplier bounds Multiplier over any time, used for thinning.
func (f *Flux) MaxMultiplier() float64 {
	return f.AltitudeFactor * (1 + f.SolarGain)
}

// DayNightRatio integrates the multiplier over one synthetic year at hourly
// resolution and returns (total in local 7:00–17:59) / (total outside).
// Used by calibration tests to keep Fig 6's 2× contrast honest.
func (f *Flux) DayNightRatio() float64 {
	var day, night float64
	for d := 0; d < timebase.StudyDays; d += 7 { // weekly samples are plenty
		for h := 0; h < 24; h++ {
			t := timebase.T(int64(d)*86400 + int64(h)*3600)
			m := f.Multiplier(t)
			lh := t.HourOfDay()
			if lh >= 7 && lh < 18 {
				day += m
			} else {
				night += m
			}
		}
	}
	if night == 0 {
		return math.Inf(1)
	}
	return day / night
}

// Event is one particle strike: at time At it upsets Cells physically
// adjacent DRAM cells. Placement into words and observability are decided
// downstream by the DRAM model.
type Event struct {
	At    timebase.T
	Cells int
}

// SizeDist is the distribution of cells upset per strike. Weights[i] is the
// relative probability of i+1 cells. The default has a heavy tail out to
// the 36-cell shower the paper observed.
type SizeDist struct {
	Weights []float64
}

// DefaultSizeDist matches the paper's event mix: the overwhelming majority
// of strikes upset one cell; a small fraction upset 2–9; rare showers reach
// tens of cells.
func DefaultSizeDist() SizeDist {
	w := make([]float64, 36)
	w[0] = 0.965 // 1 cell
	// Geometric-ish tail for 2..9 cells.
	p := 0.016
	for i := 1; i < 9; i++ {
		w[i] = p
		p *= 0.52
	}
	// Flat ultra-tail for large showers (10..36 cells).
	for i := 9; i < 36; i++ {
		w[i] = 0.00004
	}
	return SizeDist{Weights: w}
}

// Sample draws a cell count (>= 1).
func (d SizeDist) Sample(r *rng.Stream) int { return r.WeightedIndex(d.Weights) + 1 }

// Generator samples strike events for one node over time windows.
type Generator struct {
	Flux *Flux
	// BaseRatePerHour is the homogeneous strike rate (per node-hour) before
	// flux modulation, i.e. the rate an identical node would see at night
	// at sea level.
	BaseRatePerHour float64
	Size            SizeDist
}

// NewGenerator builds a generator with the default size distribution.
func NewGenerator(flux *Flux, baseRatePerHour float64) *Generator {
	return &Generator{Flux: flux, BaseRatePerHour: baseRatePerHour, Size: DefaultSizeDist()}
}

// Window samples all strikes in [from, to) by Poisson thinning: candidate
// arrivals are drawn at the max rate, then accepted with probability
// Multiplier(t)/MaxMultiplier. The result is exact for the non-homogeneous
// process and costs O(candidates).
func (g *Generator) Window(from, to timebase.T, r *rng.Stream) []Event {
	if to <= from || g.BaseRatePerHour <= 0 {
		return nil
	}
	maxRate := g.BaseRatePerHour * g.Flux.MaxMultiplier() / 3600 // per second
	var out []Event
	t := float64(from)
	limit := float64(to)
	for {
		t += r.Exp(maxRate)
		if t >= limit {
			return out
		}
		at := timebase.T(t)
		accept := g.Flux.Multiplier(at) / g.Flux.MaxMultiplier()
		if r.Bernoulli(accept) {
			out = append(out, Event{At: at, Cells: g.Size.Sample(r)})
		}
	}
}

// ExpectedCount returns the expected number of strikes in [from, to) by
// trapezoidal integration at hourly resolution; used by tests to check the
// thinning sampler against the analytic rate.
func (g *Generator) ExpectedCount(from, to timebase.T) float64 {
	if to <= from {
		return 0
	}
	var total float64
	step := timebase.T(3600)
	for t := from; t < to; t += step {
		end := t + step
		if end > to {
			end = to
		}
		mid := t + (end-t)/2
		hours := float64(end-t) / 3600
		total += g.BaseRatePerHour * g.Flux.Multiplier(mid) * hours
	}
	return total
}
