package radiation

import (
	"math"
	"testing"

	"unprotected/internal/rng"
	"unprotected/internal/solar"
	"unprotected/internal/timebase"
)

func TestMultiplierBounds(t *testing.T) {
	f := NewFlux(solar.Barcelona)
	max := f.MaxMultiplier()
	for sec := int64(0); sec < timebase.StudySeconds; sec += 13 * 3600 {
		m := f.Multiplier(timebase.T(sec))
		if m < f.AltitudeFactor-1e-9 || m > max+1e-9 {
			t.Fatalf("multiplier %v outside [%v, %v]", m, f.AltitudeFactor, max)
		}
	}
}

func TestDayNightRatioCalibration(t *testing.T) {
	// Fig 6: multi-bit errors are about twice as frequent 7am-6pm.
	f := NewFlux(solar.Barcelona)
	r := f.DayNightRatio()
	if r < 1.7 || r < 0 || r > 2.6 {
		t.Fatalf("day/night flux ratio %v, want ~2 (1.7-2.6)", r)
	}
}

func TestAltitudeScaling(t *testing.T) {
	sea := AltitudeScale(0)
	if math.Abs(sea-1) > 1e-12 {
		t.Fatalf("sea level scale %v", sea)
	}
	high := AltitudeScale(3000)
	if high < 3 || high > 4.5 {
		t.Fatalf("3000m scale %v, want roughly 4x sea level", high)
	}
	if AltitudeScale(1500) <= AltitudeScale(100) {
		t.Fatal("flux must increase with altitude")
	}
}

func TestWindowMatchesExpectedCount(t *testing.T) {
	f := NewFlux(solar.Barcelona)
	gen := NewGenerator(f, 0.001) // high rate for statistics
	r := rng.New(11)
	from, to := timebase.T(0), timebase.T(30*86400)
	want := gen.ExpectedCount(from, to)
	const trials = 60
	var total int
	for i := 0; i < trials; i++ {
		total += len(gen.Window(from, to, r))
	}
	got := float64(total) / trials
	if math.Abs(got-want) > want*0.1 {
		t.Fatalf("thinning mean %v, analytic %v", got, want)
	}
}

func TestWindowEventsOrderedAndInRange(t *testing.T) {
	f := NewFlux(solar.Barcelona)
	gen := NewGenerator(f, 0.01)
	r := rng.New(12)
	from, to := timebase.T(5000), timebase.T(5000+10*86400)
	evs := gen.Window(from, to, r)
	if len(evs) == 0 {
		t.Fatal("expected events at this rate")
	}
	last := from
	for _, ev := range evs {
		if ev.At < from || ev.At >= to {
			t.Fatalf("event at %v outside window", ev.At)
		}
		if ev.At < last {
			t.Fatal("events out of order")
		}
		if ev.Cells < 1 || ev.Cells > 36 {
			t.Fatalf("cells %d out of range", ev.Cells)
		}
		last = ev.At
	}
}

func TestWindowDegenerate(t *testing.T) {
	f := NewFlux(solar.Barcelona)
	gen := NewGenerator(f, 0.01)
	r := rng.New(13)
	if evs := gen.Window(100, 100, r); evs != nil {
		t.Fatal("empty window should yield nil")
	}
	gen.BaseRatePerHour = 0
	if evs := gen.Window(0, 1e6, r); evs != nil {
		t.Fatal("zero rate should yield nil")
	}
}

func TestSizeDistShape(t *testing.T) {
	d := DefaultSizeDist()
	r := rng.New(14)
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	single := float64(counts[1]) / n
	if single < 0.94 || single > 0.99 {
		t.Fatalf("single-cell fraction %v, want ~0.965", single)
	}
	multi := 0
	for k, c := range counts {
		if k >= 2 {
			multi += c
		}
	}
	if multi == 0 {
		t.Fatal("no multi-cell strikes sampled")
	}
}

func TestDiurnalPeakNearSolarNoon(t *testing.T) {
	// The multiplier's daily maximum must fall near local solar noon
	// (the paper: multi-bit peak when the sun is highest).
	f := NewFlux(solar.Barcelona)
	day := timebase.T(150 * 86400) // mid-study, late June
	bestHour, bestVal := 0, 0.0
	for h := 0; h < 24; h++ {
		m := f.Multiplier(day + timebase.T(h*3600))
		if m > bestVal {
			bestVal, bestHour = m, h
		}
	}
	local := (day + timebase.T(bestHour*3600)).HourOfDay()
	if local < 11 || local > 15 {
		t.Fatalf("peak multiplier at local hour %d, want near solar noon", local)
	}
}
