package timebase

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
	if StudyDays != 394 {
		t.Fatalf("study is %d days; Feb 2015 through Feb 2016 should be 394", StudyDays)
	}
}

func TestRoundTrip(t *testing.T) {
	abs := time.Date(2015, time.July, 14, 10, 30, 0, 0, time.UTC)
	ts := FromTime(abs)
	if got := ts.Time(); !got.Equal(abs) {
		t.Fatalf("round trip %v != %v", got, abs)
	}
	if FromTime(Epoch) != 0 {
		t.Fatal("epoch should map to 0")
	}
}

func TestDSTBoundaries(t *testing.T) {
	// 2015: CEST begins Mar 29 01:00 UTC, ends Oct 25 01:00 UTC.
	cases := []struct {
		at   time.Time
		cest bool
	}{
		{time.Date(2015, time.March, 29, 0, 59, 0, 0, time.UTC), false},
		{time.Date(2015, time.March, 29, 1, 0, 0, 0, time.UTC), true},
		{time.Date(2015, time.July, 1, 12, 0, 0, 0, time.UTC), true},
		{time.Date(2015, time.October, 25, 0, 59, 0, 0, time.UTC), true},
		{time.Date(2015, time.October, 25, 1, 0, 0, 0, time.UTC), false},
		{time.Date(2016, time.January, 15, 12, 0, 0, 0, time.UTC), false},
	}
	for _, c := range cases {
		if got := IsCEST(c.at); got != c.cest {
			t.Errorf("IsCEST(%v) = %v, want %v", c.at, got, c.cest)
		}
	}
}

func TestHourOfDayLocal(t *testing.T) {
	// Winter: UTC+1. 11:00 UTC on Feb 1 is 12:00 local.
	ts := FromTime(time.Date(2015, time.February, 1, 11, 0, 0, 0, time.UTC))
	if h := ts.HourOfDay(); h != 12 {
		t.Fatalf("winter hour = %d, want 12", h)
	}
	// Summer: UTC+2.
	ts = FromTime(time.Date(2015, time.July, 1, 11, 0, 0, 0, time.UTC))
	if h := ts.HourOfDay(); h != 13 {
		t.Fatalf("summer hour = %d, want 13", h)
	}
}

func TestDayIndexing(t *testing.T) {
	// The epoch is 01:00 local on 2015-02-01, so day 0 is Feb 1.
	if d := T(0).Day(); d != 0 {
		t.Fatalf("epoch day = %d", d)
	}
	// 2015-02-02 00:30 local = 2015-02-01 23:30 UTC.
	ts := FromTime(time.Date(2015, time.February, 1, 23, 30, 0, 0, time.UTC))
	if d := ts.Day(); d != 1 {
		t.Fatalf("local-midnight crossing: day = %d, want 1", d)
	}
	if lbl := DayLabel(0); lbl != "2015-02-01" {
		t.Fatalf("day label %q", lbl)
	}
	if m := MonthOfDay(0); m != time.February {
		t.Fatalf("month of day 0: %v", m)
	}
	if m := MonthOfDay(40); m != time.March {
		t.Fatalf("month of day 40: %v", m)
	}
}

func TestSecondsIntoLocalDay(t *testing.T) {
	// 2015-02-01 12:34:56 local = 11:34:56 UTC.
	ts := FromTime(time.Date(2015, time.February, 1, 11, 34, 56, 0, time.UTC))
	want := int64(12*3600 + 34*60 + 56)
	if got := ts.SecondsIntoLocalDay(); got != want {
		t.Fatalf("seconds into day = %d, want %d", got, want)
	}
}

func TestAddSub(t *testing.T) {
	a := T(1000)
	b := a.Add(90 * time.Second)
	if b != 1090 {
		t.Fatalf("Add = %v", b)
	}
	if d := b.Sub(a); d != 90*time.Second {
		t.Fatalf("Sub = %v", d)
	}
}

func TestDayCoversWholeStudy(t *testing.T) {
	// Every second of the study maps to a day in [0, StudyDays].
	for _, sec := range []int64{0, 1, 3599, 86400, StudySeconds / 2, StudySeconds - 1} {
		d := T(sec).Day()
		if d < 0 || d > StudyDays {
			t.Fatalf("t=%d maps to day %d", sec, d)
		}
	}
}
