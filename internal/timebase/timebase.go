// Package timebase defines the study clock.
//
// The study window is February 2015 through February 2016 (inclusive), at
// the Barcelona Supercomputing Center. All simulation time is kept as
// seconds since the study epoch (UTC); presentation-level analyses (hour of
// day, day index) use local wall time under the CET/CEST rules, implemented
// here directly so the library does not depend on a tzdata database being
// installed.
package timebase

import (
	"fmt"
	"time"
)

// Epoch is the first instant of the study, 2015-02-01 00:00:00 UTC.
var Epoch = time.Date(2015, time.February, 1, 0, 0, 0, 0, time.UTC)

// End is the first instant after the study, 2016-03-01 00:00:00 UTC
// ("February 2015 to February 2016 inclusive").
var End = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

// StudyDays is the number of whole days in the window.
var StudyDays = int(End.Sub(Epoch) / (24 * time.Hour))

// StudySeconds is the window length in seconds.
var StudySeconds = int64(End.Sub(Epoch) / time.Second)

// T is simulation time: seconds since Epoch. Negative values are before the
// study and never produced by the simulator.
type T int64

// FromTime converts an absolute time to study time.
func FromTime(t time.Time) T { return T(t.Sub(Epoch) / time.Second) }

// Time converts study time back to an absolute UTC time.
func (t T) Time() time.Time { return Epoch.Add(time.Duration(t) * time.Second) }

// Add returns the study time shifted by d.
func (t T) Add(d time.Duration) T { return t + T(d/time.Second) }

// Sub returns the duration t - u.
func (t T) Sub(u T) time.Duration { return time.Duration(t-u) * time.Second }

// Day returns the zero-based day index of t in local wall time.
func (t T) Day() int {
	lt := ToLocal(t.Time())
	midnight := time.Date(2015, time.February, 1, 0, 0, 0, 0, time.UTC)
	// Local calendar day relative to the local date of the epoch. The epoch
	// is 2015-02-01 01:00 local (CET); day 0 covers the remainder of
	// 2015-02-01 local.
	y, m, d := lt.Date()
	cur := time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	return int(cur.Sub(midnight) / (24 * time.Hour))
}

// HourOfDay returns the local hour (0-23) of t.
func (t T) HourOfDay() int { return ToLocal(t.Time()).Hour() }

// SecondsIntoLocalDay returns how far t is into its local calendar day.
func (t T) SecondsIntoLocalDay() int64 {
	lt := ToLocal(t.Time())
	return int64(lt.Hour())*3600 + int64(lt.Minute())*60 + int64(lt.Second())
}

// Month returns the local calendar month of t.
func (t T) Month() time.Month { return ToLocal(t.Time()).Month() }

// String renders as local wall-clock time.
func (t T) String() string { return ToLocal(t.Time()).Format("2006-01-02 15:04:05") }

// lastSunday returns the day-of-month of the last Sunday of (year, month).
func lastSunday(year int, month time.Month) int {
	// Day after the month's last day, step back to Sunday.
	next := time.Date(year, month+1, 1, 0, 0, 0, 0, time.UTC)
	last := next.AddDate(0, 0, -1)
	off := int(last.Weekday()) // Sunday == 0
	return last.Day() - off
}

// IsCEST reports whether the instant (UTC) falls in Central European Summer
// Time: from 01:00 UTC on the last Sunday of March until 01:00 UTC on the
// last Sunday of October.
func IsCEST(t time.Time) bool {
	t = t.UTC()
	y := t.Year()
	start := time.Date(y, time.March, lastSunday(y, time.March), 1, 0, 0, 0, time.UTC)
	end := time.Date(y, time.October, lastSunday(y, time.October), 1, 0, 0, 0, time.UTC)
	return !t.Before(start) && t.Before(end)
}

// The two fixed-offset locations are shared: time.FixedZone allocates a
// fresh *Location on every call, and ToLocal sits under every per-window
// Month/HourOfDay lookup of the simulation hot path — constructing the
// zones per call used to be over half of a campaign's total allocations.
var (
	zoneCEST = time.FixedZone("CEST", 2*3600)
	zoneCET  = time.FixedZone("CET", 1*3600)
)

// ToLocal converts a UTC instant to Barcelona wall time (CET/CEST) using a
// fixed-offset location, independent of the host tz database.
func ToLocal(t time.Time) time.Time {
	if IsCEST(t) {
		return t.In(zoneCEST)
	}
	return t.In(zoneCET)
}

// DayLabel renders a zero-based study day index as a local date.
func DayLabel(day int) string {
	d := time.Date(2015, time.February, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)
	return d.Format("2006-01-02")
}

// MonthOfDay returns the local calendar month containing the given study day.
func MonthOfDay(day int) time.Month {
	d := time.Date(2015, time.February, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)
	return d.Month()
}

// Validate panics if the window constants are inconsistent; used by tests.
func Validate() error {
	if !End.After(Epoch) {
		return fmt.Errorf("timebase: end %v not after epoch %v", End, Epoch)
	}
	if StudyDays < 300 || StudyDays > 500 {
		return fmt.Errorf("timebase: suspicious study length %d days", StudyDays)
	}
	return nil
}
