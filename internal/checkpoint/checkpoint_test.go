package checkpoint

import (
	"math"
	"testing"

	"unprotected/internal/timebase"
)

func TestYoungDaly(t *testing.T) {
	// sqrt(2 * 0.1h * 167h) ≈ 5.78h.
	got := YoungDaly(0.1, 167)
	if math.Abs(got-math.Sqrt(2*0.1*167)) > 1e-12 {
		t.Fatalf("YoungDaly = %v", got)
	}
	// Degraded regime: sqrt(2 * 0.1 * 0.39) ≈ 0.28h — the paper's
	// motivation for shortening the interval.
	deg := YoungDaly(0.1, 0.39)
	if deg >= got {
		t.Fatal("degraded interval must be shorter")
	}
	if !math.IsInf(YoungDaly(0, 100), 1) || !math.IsInf(YoungDaly(0.1, 0), 1) {
		t.Fatal("degenerate inputs")
	}
}

func TestWasteFraction(t *testing.T) {
	// At the Young/Daly optimum the two waste terms are equal.
	mtbf := 100.0
	cost := 0.05
	opt := YoungDaly(cost, mtbf)
	w := WasteFraction(opt, cost, mtbf)
	if math.Abs(cost/opt-opt/(2*mtbf)) > 1e-12 {
		t.Fatal("optimum does not balance terms")
	}
	// Any other interval wastes at least as much.
	for _, iv := range []float64{opt / 4, opt / 2, opt * 2, opt * 4} {
		if WasteFraction(iv, cost, mtbf) < w {
			t.Fatalf("interval %v beats the optimum", iv)
		}
	}
	if WasteFraction(0, cost, mtbf) != 1 {
		t.Fatal("zero interval should saturate")
	}
}

func TestPlans(t *testing.T) {
	p := StaticPlan(6)
	if len(p.IntervalHours) != timebase.StudyDays || p.IntervalHours[100] != 6 {
		t.Fatal("static plan")
	}
	degraded := make([]bool, 10)
	degraded[3] = true
	ap := AdaptivePlan(degraded, 0.1, 167, 0.39)
	if ap.IntervalHours[3] >= ap.IntervalHours[0] {
		t.Fatal("adaptive plan must shorten on degraded days")
	}
}

func TestReplayCountsFailures(t *testing.T) {
	plan := StaticPlan(10)
	failures := []float64{25, 50, 75}
	out := Replay(plan, failures, 0.1)
	if out.Failures != 3 {
		t.Fatalf("failures %d", out.Failures)
	}
	if out.ReworkHours <= 0 || out.CheckpointsTaken == 0 {
		t.Fatalf("replay outcome: %+v", out)
	}
	if out.WasteHours != out.CheckpointHours+out.ReworkHours {
		t.Fatal("waste arithmetic")
	}
}

func TestReplayNoFailures(t *testing.T) {
	plan := StaticPlan(24)
	out := Replay(plan, nil, 0.05)
	if out.Failures != 0 || out.ReworkHours != 0 {
		t.Fatalf("clean replay: %+v", out)
	}
	// ~one checkpoint per day for the whole study.
	if out.CheckpointsTaken < timebase.StudyDays-10 || out.CheckpointsTaken > timebase.StudyDays+10 {
		t.Fatalf("checkpoints %d", out.CheckpointsTaken)
	}
}

func TestAdaptiveBeatsStaticOnRegimeSwitch(t *testing.T) {
	// Failures cluster in a degraded window (days 100-110, every 0.5h),
	// like the paper's degraded regime.
	var failures []float64
	degraded := make([]bool, timebase.StudyDays)
	for d := 100; d < 110; d++ {
		degraded[d] = true
		for h := 0.0; h < 24; h += 0.5 {
			failures = append(failures, float64(d)*24+h)
		}
	}
	cost := 0.05
	static := Replay(StaticPlan(YoungDaly(cost, 167)), failures, cost)
	adaptive := Replay(AdaptivePlan(degraded, cost, 167, 0.39), failures, cost)
	if adaptive.WasteHours >= static.WasteHours {
		t.Fatalf("adaptive %.1fh should beat static %.1fh on bursty failures",
			adaptive.WasteHours, static.WasteHours)
	}
}
