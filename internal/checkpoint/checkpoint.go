// Package checkpoint implements §IV's adaptive-checkpointing proposal:
// when the spatio-temporal analysis detects a degraded regime (MTBF
// dropping from ~167 h to ~0.39 h), a long-running job should shorten its
// checkpoint interval accordingly. The package provides the Young/Daly
// optimal interval, a wasted-work model, and a replay simulator comparing
// a static interval against a regime-adaptive one over the study's error
// timeline.
package checkpoint

import (
	"math"

	"unprotected/internal/timebase"
)

// YoungDaly returns the first-order optimal checkpoint interval
// sqrt(2 * C * MTBF) for checkpoint cost C (both in hours).
func YoungDaly(checkpointCostHours, mtbfHours float64) float64 {
	if checkpointCostHours <= 0 || mtbfHours <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * checkpointCostHours * mtbfHours)
}

// WasteFraction estimates the fraction of time lost to checkpointing
// overhead plus expected rework, for interval T, cost C and the given
// MTBF (hours). First-order model: waste = C/T + T/(2*MTBF).
func WasteFraction(intervalHours, checkpointCostHours, mtbfHours float64) float64 {
	if intervalHours <= 0 {
		return 1
	}
	w := checkpointCostHours/intervalHours + intervalHours/(2*mtbfHours)
	if w > 1 {
		return 1
	}
	return w
}

// Plan is a per-day checkpoint-interval schedule.
type Plan struct {
	// IntervalHours[day] is the interval used on that study day.
	IntervalHours []float64
}

// StaticPlan uses one interval everywhere.
func StaticPlan(intervalHours float64) Plan {
	p := Plan{IntervalHours: make([]float64, timebase.StudyDays)}
	for i := range p.IntervalHours {
		p.IntervalHours[i] = intervalHours
	}
	return p
}

// AdaptivePlan derives a per-day interval from the regime classification:
// Young/Daly against the regime's MTBF. degraded[day] comes from
// analysis.ComputeRegimes.
func AdaptivePlan(degraded []bool, checkpointCostHours, mtbfNormalHours, mtbfDegradedHours float64) Plan {
	p := Plan{IntervalHours: make([]float64, len(degraded))}
	normal := YoungDaly(checkpointCostHours, mtbfNormalHours)
	deg := YoungDaly(checkpointCostHours, mtbfDegradedHours)
	for day, isDeg := range degraded {
		if isDeg {
			p.IntervalHours[day] = deg
		} else {
			p.IntervalHours[day] = normal
		}
	}
	return p
}

// Outcome summarizes a replay.
type Outcome struct {
	CheckpointsTaken int
	CheckpointHours  float64
	ReworkHours      float64
	// WasteHours is total overhead (checkpoints + rework).
	WasteHours float64
	Failures   int
}

// Replay walks the study day by day. Failure times are the hour-of-study
// instants of system-level errors (one per fault affecting the job's
// nodes). The job checkpoints every IntervalHours (resetting after
// failures); each failure rolls back to the last checkpoint.
func Replay(p Plan, failureHours []float64, checkpointCostHours float64) Outcome {
	var out Outcome
	horizon := float64(timebase.StudyDays) * 24
	fi := 0
	lastCheckpoint := 0.0
	next := func(t float64) float64 {
		day := int(t / 24)
		if day >= len(p.IntervalHours) {
			day = len(p.IntervalHours) - 1
		}
		iv := p.IntervalHours[day]
		if math.IsInf(iv, 1) {
			return horizon + 1
		}
		return t + iv
	}
	nextCk := next(0)
	t := 0.0
	for t < horizon {
		// Next event: checkpoint or failure.
		var failT = math.Inf(1)
		if fi < len(failureHours) {
			failT = failureHours[fi]
		}
		if nextCk <= failT {
			if nextCk > horizon {
				break
			}
			t = nextCk
			out.CheckpointsTaken++
			out.CheckpointHours += checkpointCostHours
			lastCheckpoint = t
			nextCk = next(t + checkpointCostHours)
			continue
		}
		// Failure: lose the work done since the last resume point (the
		// last checkpoint or the previous failure's restart — counting
		// from the checkpoint every time would double-charge overlapping
		// spans when failures arrive faster than checkpoints).
		t = failT
		fi++
		out.Failures++
		out.ReworkHours += t - lastCheckpoint
		lastCheckpoint = t
		nextCk = next(t)
	}
	out.WasteHours = out.CheckpointHours + out.ReworkHours
	return out
}
