package sweep

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"unprotected/internal/campaign"
	"unprotected/internal/core"
)

// renderSweep runs the scenarios and renders the comparison table.
func renderSweep(t *testing.T, scenarios []Scenario, opts ...Option) []byte {
	t.Helper()
	res, err := RunScenarios(context.Background(), scenarios, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	return buf.Bytes()
}

// TestSweepDeterminism is the sweep-layer extension of the PR 2/4
// determinism proofs: the rendered comparison must be byte-identical
// across worker budgets (the -parallel axis of cmd/sweep) and across
// shuffled scenario submission orders.
func TestSweepDeterminism(t *testing.T) {
	scenarios, err := testSpec(t).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	want := renderSweep(t, scenarios, WithBudget(1))
	if !bytes.Contains(want, []byte("pattern=flip,seed=1")) {
		t.Fatalf("comparison table missing scenario rows:\n%s", want)
	}
	for _, budget := range []int{2, 8, 0} {
		got := renderSweep(t, scenarios, WithBudget(budget))
		if !bytes.Equal(got, want) {
			t.Fatalf("budget %d diverged:\n%s\nvs budget 1:\n%s", budget, got, want)
		}
	}

	// Shuffled submission orders: reversed, and a fixed permutation.
	perms := [][]int{{3, 2, 1, 0}, {2, 0, 3, 1}}
	for _, perm := range perms {
		shuffled := make([]Scenario, len(scenarios))
		for i, p := range perm {
			shuffled[i] = scenarios[p]
		}
		got := renderSweep(t, shuffled, WithBudget(3))
		if !bytes.Equal(got, want) {
			t.Fatalf("submission order %v diverged:\n%s\nvs:\n%s", perm, got, want)
		}
	}
}

// TestSweepScratchReuseMatchesIsolated: scenarios running concurrently
// under one shared gate draw their per-node scratch and their delivery
// blocks from process-wide pools (internal/campaign's scratch pool,
// internal/stream's batch pool), so a buffer released by one scenario is
// immediately rewritten by a sibling mid-flight. Every scenario's summary
// must nonetheless be byte-identical to an isolated Analyze run of the
// same configuration — extending TestSweepDeterminism from "any worker
// budget" to "pool state shared with arbitrary concurrent siblings".
func TestSweepScratchReuseMatchesIsolated(t *testing.T) {
	scenarios, err := testSpec(t).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	// Budget 2 keeps two scenarios in flight at once, interleaving their
	// pool traffic under the shared gate.
	res, err := RunScenarios(context.Background(), scenarios, WithBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != len(scenarios) {
		t.Fatalf("sweep returned %d scenarios, want %d", len(res.Scenarios), len(scenarios))
	}
	for _, sr := range res.Scenarios {
		cfg := *sr.Scenario.Config
		if cfg.Topo != nil {
			cfg.Topo = cfg.Topo.Clone()
		}
		study, err := core.Analyze(context.Background(), core.Simulate(&cfg), core.WithoutDataset())
		if err != nil {
			t.Fatal(err)
		}
		want := strings.Join(study.ScenarioSummary(sr.Scenario.Name).Row(), "|")
		got := strings.Join(sr.Summary.Row(), "|")
		if got != want {
			t.Fatalf("scenario %q under shared pools:\n%s\nisolated run:\n%s",
				sr.Scenario.Name, got, want)
		}
	}
}

// TestSweepBaseMatchesStandalone is the acceptance criterion: the base
// scenario's comparison row must be byte-identical to a standalone
// Analyze run of the same configuration.
func TestSweepBaseMatchesStandalone(t *testing.T) {
	// pattern=mixed and seed=42 reproduce the base config exactly.
	axes, err := ParseAxes([]string{"pattern=mixed", "seed=42"})
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Base: testBase(42), Axes: axes}
	res, err := Run(context.Background(), spec, WithBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(res.Scenarios))
	}
	name := res.Scenarios[0].Scenario.Name

	study, err := core.Analyze(context.Background(), core.Simulate(testBase(42)))
	if err != nil {
		t.Fatal(err)
	}
	wantRow := study.ScenarioSummary(name).Row()
	gotRow := res.Scenarios[0].Summary.Row()
	if strings.Join(gotRow, "|") != strings.Join(wantRow, "|") {
		t.Fatalf("sweep row %v\ndiverges from standalone Analyze row %v", gotRow, wantRow)
	}
}

// TestSweepRunValidation: defects in the scenario list and the options
// are descriptive errors reported before any scenario starts.
func TestSweepRunValidation(t *testing.T) {
	ctx := context.Background()
	ok := Scenario{Name: "ok", Config: testBase(1)}
	check := func(wantSub string, _ *Result, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("no error, want one mentioning %q", wantSub)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}
	r, err := RunScenarios(ctx, nil)
	check("no scenarios", r, err)
	r, err = RunScenarios(ctx, []Scenario{{Name: "x"}})
	check("nil Config", r, err)
	r, err = RunScenarios(ctx, []Scenario{{Config: testBase(1)}})
	check("empty name", r, err)
	r, err = RunScenarios(ctx, []Scenario{ok, ok})
	check("duplicate scenario name", r, err)
	r, err = RunScenarios(ctx, []Scenario{ok}, WithBudget(-2))
	check("budget", r, err)
	r, err = RunScenarios(ctx, []Scenario{ok}, nil)
	check("nil Option", r, err)
	r, err = Run(ctx, &Spec{}, WithBudget(1))
	check("nil base", r, err)
}

// TestSweepScenarioErrorAborts: a failing scenario cancels the rest of
// the fleet instead of letting it simulate to completion, and the
// reported error is the genuine failure, not its siblings' cancellation
// fallout.
func TestSweepScenarioErrorAborts(t *testing.T) {
	scenarios, err := testSpec(t).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	boom := errors.New("boom")
	var launched, completed int
	r := &runner{
		budget: 1,
		analyze: func(ctx context.Context, cfg *campaign.Config) (*core.Study, error) {
			launched++
			if launched == 2 {
				return nil, boom
			}
			study, err := core.Analyze(ctx, core.Simulate(cfg), core.WithoutDataset())
			if err == nil {
				completed++
			}
			return study, err
		},
	}
	res, err := RunScenarios(context.Background(), scenarios,
		func(rr *runner) error { *rr = *r; return nil })
	if res != nil || !errors.Is(err, boom) {
		t.Fatalf("got (%v, %v), want the injected scenario error", res, err)
	}
	if !strings.Contains(err.Error(), scenarios[1].Name) {
		t.Fatalf("error %q does not name the failing scenario %q", err, scenarios[1].Name)
	}
	// The fleet was aborted: at most the scenarios already in flight at
	// failure time finished; the tail was cancelled, not simulated.
	if completed == len(scenarios)-1 {
		t.Fatalf("all %d surviving scenarios ran to completion despite the abort", completed)
	}
	waitForGoroutines(t, baseline)
}

// TestSweepNaturalOrder: multi-digit labels sort numerically in the
// result, so seed=10 lands after seed=2, and the order stays total over
// textually distinct but numerically equal names.
func TestSweepNaturalOrder(t *testing.T) {
	cases := []struct {
		a, b string
		less bool
	}{
		{"seed=2", "seed=10", true},
		{"seed=10", "seed=2", false},
		{"altitude=100,seed=9", "altitude=100,seed=11", true},
		{"altitude=1500", "altitude=150", false},
		{"pattern=counter", "pattern=flip", true},
		{"seed=1", "seed=1", false},
		{"seed=01", "seed=1", true}, // numeric tie broken textually
		{"seed=1", "seed=01", false},
	}
	for _, tc := range cases {
		if got := naturalLess(tc.a, tc.b); got != tc.less {
			t.Fatalf("naturalLess(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.less)
		}
	}

	rs := []ScenarioResult{
		{Scenario: Scenario{Name: "seed=10"}},
		{Scenario: Scenario{Name: "seed=2"}},
		{Scenario: Scenario{Name: "seed=1"}},
	}
	sortByName(rs)
	want := []string{"seed=1", "seed=2", "seed=10"}
	for i, w := range want {
		if rs[i].Scenario.Name != w {
			t.Fatalf("sorted order %v, want %v at %d", rs[i].Scenario.Name, w, i)
		}
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline, failing after a deadline (same gate as the analyze and
// campaign leak tests).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepCancelMidScenario: cancelling while campaigns are simulating
// must drain every scenario's pool and the sweep's own goroutines.
func TestSweepCancelMidScenario(t *testing.T) {
	scenarios, err := testSpec(t).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(3*time.Millisecond, cancel)
	res, err := RunScenarios(ctx, scenarios, WithBudget(4))
	timer.Stop()
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
	waitForGoroutines(t, baseline)
}

// TestSweepCancelBetweenScenarios: with a serializing budget, cancelling
// right after the first scenario completes must skip the rest, return
// ctx.Err() and leak nothing.
func TestSweepCancelBetweenScenarios(t *testing.T) {
	scenarios, err := testSpec(t).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completed := 0
	res, err := RunScenarios(ctx, scenarios, WithBudget(1),
		withAfterScenario(func(int) {
			if completed++; completed == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
	if completed > 2 {
		t.Fatalf("%d scenarios completed after the cancellation point", completed)
	}
	waitForGoroutines(t, baseline)
}
