package sweep

import (
	"strings"
	"testing"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
)

// labels extracts an axis's point labels.
func labels(ax Axis) []string {
	out := make([]string, len(ax.Points))
	for i, p := range ax.Points {
		out[i] = p.Label
	}
	return out
}

// TestSweepParseAxis: the value grammar — scalars, lo:hi:step ranges,
// categorical patterns — expands to canonically labeled points whose
// Apply mutations land on the right Config knob.
func TestSweepParseAxis(t *testing.T) {
	cases := []struct {
		spec string
		want []string
	}{
		{"seed=1,2", []string{"1", "2"}},
		{"altitude=0:3000:1500", []string{"0", "1500", "3000"}},
		{"altitude=0:2999:1500", []string{"0", "1500"}},
		{"altitude= 100 , 2877", []string{"100", "2877"}},
		{"ambient=4e-6,8e-6", []string{"4e-06", "8e-06"}},
		{"scrub=6,14,48", []string{"6", "14", "48"}},
		{"blades=2,8,72", []string{"2", "8", "72"}},
		{"pattern=flip,counter,mixed", []string{"flip", "counter", "mixed"}},
		{"seed=0:3:1,10", []string{"0", "1", "2", "3", "10"}},
		// Integer axes label in plain decimal, never exponent form.
		{"seed=2,1000000,1e7", []string{"2", "1000000", "10000000"}},
		// Decimal grids must not leak binary float noise into labels:
		// the walk emits 0.1+i*0.3 but labels snap to the decimal grid,
		// including the endpoint (0.9999999999999999 -> 1).
		{"scrub=0.1:2:0.3", []string{"0.1", "0.4", "0.7", "1", "1.3", "1.6", "1.9"}},
		{"scrub=0.1:1:0.3", []string{"0.1", "0.4", "0.7", "1"}},
	}
	for _, tc := range cases {
		ax, err := ParseAxis(tc.spec)
		if err != nil {
			t.Fatalf("ParseAxis(%q): %v", tc.spec, err)
		}
		got := labels(ax)
		if strings.Join(got, "|") != strings.Join(tc.want, "|") {
			t.Fatalf("ParseAxis(%q) labels %v, want %v", tc.spec, got, tc.want)
		}
	}

	// Apply effects: each axis must mutate exactly its knob.
	apply := func(spec string, i int) *campaign.Config {
		t.Helper()
		ax, err := ParseAxis(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := *campaign.DefaultConfig(7)
		ax.Points[i].Apply(&cfg)
		return &cfg
	}
	if cfg := apply("altitude=2877", 0); cfg.Site.AltMeters != 2877 {
		t.Fatalf("altitude axis applied %v", cfg.Site.AltMeters)
	}
	if cfg := apply("scrub=6", 0); cfg.Sched.CycleHours != 6 {
		t.Fatalf("scrub axis applied %v", cfg.Sched.CycleHours)
	}
	if cfg := apply("ambient=8e-6", 0); cfg.AmbientRatePerHour != 8e-6 {
		t.Fatalf("ambient axis applied %v", cfg.AmbientRatePerHour)
	}
	if cfg := apply("seed=9", 0); cfg.Seed != 9 {
		t.Fatalf("seed axis applied %v", cfg.Seed)
	}
	if cfg := apply("pattern=counter", 0); cfg.CounterModeFrac != 1 {
		t.Fatalf("pattern=counter applied %v", cfg.CounterModeFrac)
	}
	if cfg := apply("pattern=flip", 0); cfg.CounterModeFrac != 0 {
		t.Fatalf("pattern=flip applied %v", cfg.CounterModeFrac)
	}
	cfg := apply("blades=2", 0)
	scanned := cfg.Topo.CountByRole()[cluster.Scanned]
	if scanned != 28 { // 2 blades x 15 SoCs - 2 login (SoC 1 of blades 1,2)
		t.Fatalf("blades=2 topology has %d scanned nodes, want 28", scanned)
	}
	if cfg.Topo.Node(cluster.NodeID{Blade: 3, SoC: 2}).Role == cluster.Scanned {
		t.Fatal("blades=2 topology still scans blade 3")
	}

	// The blades axis restricts the *configured* roster, not a fresh
	// paper one: a customized base keeps its structure at every size,
	// and the base itself is never mutated.
	ax, err := ParseAxis("blades=2")
	if err != nil {
		t.Fatal(err)
	}
	custom := *campaign.DefaultConfig(7)
	dead := cluster.NodeID{Blade: 1, SoC: 5}
	custom.Topo.Node(dead).Role = cluster.Dead
	ax.Points[0].Apply(&custom)
	if custom.Topo.Node(dead).Role != cluster.Dead {
		t.Fatal("blades axis discarded the customized base roster")
	}
	if got := custom.Topo.CountByRole()[cluster.Scanned]; got != 27 {
		t.Fatalf("customized blades=2 topology has %d scanned nodes, want 27", got)
	}
}

// TestSweepParseAxisErrors: malformed specs — unknown axes, bad numbers,
// degenerate ranges, duplicates, out-of-domain values — are descriptive
// errors, never panics.
func TestSweepParseAxisErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"altitude", "missing '='"},
		{"=1,2", "empty name"},
		{"seed=", "empty value list"},
		{"voltage=1,2", "unknown axis"},
		{"seed=abc", "bad number"},
		{"altitude=NaN", "bad number"},
		{"altitude=+Inf", "bad number"},
		{"seed=1,,2", "bad number"},
		{"altitude=0:3000", "bad range"},
		{"altitude=0:3000:1500:10", "bad range"},
		{"altitude=0:3000:0", "step must be > 0"},
		{"altitude=0:3000:-5", "step must be > 0"},
		{"altitude=3000:0:100", "hi < lo"},
		{"seed=0:10000:1", "more than 256 points"},
		// A tiny step must hit the cap check while the ratio is still a
		// float: converted to int it overflows (negative on amd64) and
		// used to slip past both the cap and the emit loop, yielding an
		// accepted axis with zero points.
		{"altitude=0:9000:1e-300", "more than 256 points"},
		{"scrub=1:8760:0.5", "more than 256 points"},
		{"seed=1.5", "must be an integer"},
		{"seed=-1", "out of range"},
		{"blades=0", "out of range"},
		{"blades=99", "out of range"},
		{"blades=2.5", "must be an integer"},
		{"altitude=-100", "out of range"},
		{"altitude=99999", "out of range"},
		{"scrub=0", "out of range"},
		{"ambient=2", "out of range"},
		{"seed=1,1", "duplicate value"},
		{"seed=1,1.0", "duplicate value"},          // canonical labels collide
		{"scrub=0.3,0.1:2:0.1", "duplicate value"}, // range noise snaps onto the scalar
		{"pattern=zigzag", "unknown value"},
		{"pattern=flip,flip", "duplicate value"},
	}
	for _, tc := range cases {
		ax, err := ParseAxis(tc.spec)
		if err == nil {
			t.Fatalf("ParseAxis(%q) accepted %v, want error mentioning %q", tc.spec, labels(ax), tc.wantSub)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("ParseAxis(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}

	// ParseAxes adds cross-axis duplicate detection.
	if _, err := ParseAxes([]string{"seed=1", "seed=2"}); err == nil ||
		!strings.Contains(err.Error(), "duplicate axis") {
		t.Fatalf("ParseAxes duplicate axis error: %v", err)
	}
	if _, err := ParseAxes([]string{"seed=1", "voltage=2"}); err == nil {
		t.Fatal("ParseAxes accepted an unknown axis")
	}
}
