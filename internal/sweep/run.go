package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/core"
	"unprotected/internal/render"
)

// Option configures a sweep run; invalid values are reported as errors
// before any scenario starts.
type Option func(*runner) error

// WithBudget sets the global worker budget: the shared semaphore bounding
// concurrent node simulations across the whole fleet, and the maximum
// number of scenarios in flight. Zero selects GOMAXPROCS; negative values
// are rejected.
func WithBudget(n int) Option {
	return func(r *runner) error {
		if n < 0 {
			return fmt.Errorf("budget must be >= 0, got %d (0 selects GOMAXPROCS)", n)
		}
		r.budget = n
		return nil
	}
}

// withAfterScenario installs the in-package test seam: fn runs after
// each successful scenario, on that scenario's goroutine, with its
// submission index. The cancellation tests use it to cancel the sweep
// between scenarios.
func withAfterScenario(fn func(i int)) Option {
	return func(r *runner) error {
		r.afterScenario = fn
		return nil
	}
}

// runner is the resolved run configuration.
type runner struct {
	budget int
	// afterScenario is a test seam observing each completed scenario by
	// index, from the scenario's own goroutine (used by the cancellation
	// tests to pull the plug between scenarios).
	afterScenario func(i int)
	// analyze is a test seam for injecting scenario failures; nil selects
	// the real pipeline.
	analyze func(ctx context.Context, cfg *campaign.Config) (*core.Study, error)
}

// ScenarioResult pairs a scenario with its comparison summary and the
// pure-streaming Study behind it (figures only; the dataset slices stay
// empty, so holding a large fleet's results is cheap).
type ScenarioResult struct {
	Scenario Scenario
	Summary  analysis.ScenarioSummary
	Study    *core.Study
}

// Result is the completed sweep, with scenarios in natural
// (numeric-aware) name order.
type Result struct {
	Scenarios []ScenarioResult
}

// Table builds the cross-scenario comparison table, rows in the sorted
// scenario order.
func (r *Result) Table() *render.Table {
	rows := make([]analysis.ScenarioSummary, len(r.Scenarios))
	for i, sc := range r.Scenarios {
		rows[i] = sc.Summary
	}
	return analysis.RenderComparison(rows)
}

// Render writes the comparison table. Output is byte-identical for any
// worker budget and any scenario submission order.
func (r *Result) Render(w io.Writer) { r.Table().Render(w) }

// Run expands the spec and executes every scenario; see RunScenarios.
func Run(ctx context.Context, spec *Spec, opts ...Option) (*Result, error) {
	scenarios, err := spec.Scenarios()
	if err != nil {
		return nil, err
	}
	return RunScenarios(ctx, scenarios, opts...)
}

// RunScenarios executes an explicit scenario list concurrently under one
// worker budget: at most budget scenarios are in flight, and a shared
// campaign gate bounds the fleet's concurrent node simulations to the
// same budget, so per-campaign pools never oversubscribe the machine.
// Each scenario runs as its own Simulate source through core.Analyze in
// pure-streaming mode (WithoutDataset) and reduces to its comparison row.
//
// Cancelling ctx drains the whole sweep leak-free: unlaunched scenarios
// are skipped, in-flight campaigns wind their pools down exactly as a
// lone Analyze would, and RunScenarios returns ctx.Err(). A scenario
// error aborts the sweep: the remaining fleet is cancelled instead of
// simulated to completion, and the reported error deterministically
// prefers the first genuine failure by submission index over the
// cancellation fallout of its siblings. Results are sorted in natural
// (numeric-aware) scenario-name order, making the output independent of
// submission order.
func RunScenarios(ctx context.Context, scenarios []Scenario, opts ...Option) (*Result, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("sweep: no scenarios")
	}
	seen := make(map[string]bool, len(scenarios))
	for i, sc := range scenarios {
		if sc.Config == nil {
			return nil, fmt.Errorf("sweep: scenario %d (%q): nil Config", i, sc.Name)
		}
		if sc.Name == "" {
			return nil, fmt.Errorf("sweep: scenario %d: empty name", i)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("sweep: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	r := &runner{}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("sweep: nil Option")
		}
		if err := opt(r); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	budget := r.budget
	if budget == 0 {
		budget = runtime.GOMAXPROCS(0)
	}

	// One token pool serves both levels: sem admits at most budget
	// scenarios, gate admits at most budget node simulations across all
	// admitted campaigns. Each campaign's pool is sized to the full
	// budget so a lone in-flight scenario can still saturate it.
	//
	// The derived context turns any scenario failure into a fleet-wide
	// abort: siblings stop at their next cancellation check instead of
	// simulating a doomed sweep to completion.
	ictx, abort := context.WithCancel(ctx)
	defer abort()
	gate := make(chan struct{}, budget)
	sem := make(chan struct{}, budget)
	results := make([]ScenarioResult, len(scenarios))
	errs := make([]error, len(scenarios))
	var wg sync.WaitGroup
launch:
	for i := range scenarios {
		select {
		case sem <- struct{}{}:
		case <-ictx.Done():
			break launch
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if r.runOne(ictx, i, scenarios[i], budget, gate, &results[i], &errs[i]) != nil {
				abort()
			}
		}(i)
	}
	wg.Wait()

	// Caller cancellation wins; otherwise report the first genuine
	// scenario failure by submission index, skipping the context-canceled
	// errors the abort itself induced on in-flight siblings.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	sortByName(results)
	return &Result{Scenarios: results}, nil
}

// runOne executes a single scenario on its own Config copy; the shared
// gate and the budget-sized pool flow in via the campaign Config. The
// returned error (also recorded in errOut) tells the launcher to abort
// the rest of the fleet.
func (r *runner) runOne(ctx context.Context, i int, sc Scenario, budget int, gate chan struct{}, res *ScenarioResult, errOut *error) error {
	cfg := *sc.Config
	if cfg.Topo != nil {
		// Re-running the same scenario value must stay safe even when the
		// caller reuses a []Scenario (the determinism proofs do): the
		// campaign mutates its topology, so each run works on a clone.
		cfg.Topo = cfg.Topo.Clone()
	}
	cfg.Workers = budget
	cfg.Gate = gate
	analyze := r.analyze
	if analyze == nil {
		analyze = func(ctx context.Context, cfg *campaign.Config) (*core.Study, error) {
			return core.Analyze(ctx, core.Simulate(cfg), core.WithoutDataset())
		}
	}
	study, err := analyze(ctx, &cfg)
	if err != nil {
		*errOut = fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
		return *errOut
	}
	*res = ScenarioResult{Scenario: sc, Summary: study.ScenarioSummary(sc.Name), Study: study}
	if r.afterScenario != nil {
		r.afterScenario(i)
	}
	return nil
}
