package sweep

import (
	"strings"
	"testing"

	"unprotected/internal/campaign"
)

// FuzzSweepParseAxis: the axis grammar must never panic, and every
// accepted spec must yield a well-formed axis — non-empty name, at least
// one point, unique non-empty labels, callable Apply — with a fully
// deterministic re-parse.
func FuzzSweepParseAxis(f *testing.F) {
	for _, seed := range []string{
		"seed=1,2",
		"altitude=0:3000:1500",
		"altitude=100,2877",
		"ambient=4e-6,8e-6",
		"scrub=6,14,48",
		"blades=2,8,72",
		"pattern=flip,counter,mixed",
		"seed=0:3:1,10",
		"seed=",
		"=1",
		"altitude=0:3000:0",
		"altitude=3000:0:100",
		"seed=1.5",
		"seed=1,1",
		"pattern=zigzag",
		"voltage=12",
		"altitude=NaN",
		"seed=0:10000:1",
		"altitude=0:9000:1e-300",
		"altitude=-0:+3e2:1e1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		ax, err := ParseAxis(spec)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if ax.Name == "" {
			t.Fatalf("accepted %q with empty axis name", spec)
		}
		if len(ax.Points) == 0 || len(ax.Points) > maxAxisPoints {
			t.Fatalf("accepted %q with %d points", spec, len(ax.Points))
		}
		seen := make(map[string]bool, len(ax.Points))
		for i, p := range ax.Points {
			if p.Label == "" {
				t.Fatalf("accepted %q with empty label at point %d", spec, i)
			}
			if seen[p.Label] {
				t.Fatalf("accepted %q with duplicate label %q", spec, p.Label)
			}
			seen[p.Label] = true
			if p.Apply == nil {
				t.Fatalf("accepted %q with nil Apply at %q", spec, p.Label)
			}
		}
		// Applying any point to a private config copy must not panic.
		for _, p := range ax.Points {
			cfg := *campaign.DefaultConfig(1)
			p.Apply(&cfg)
		}
		// Re-parsing is deterministic: same labels in the same order.
		again, err2 := ParseAxis(spec)
		if err2 != nil {
			t.Fatalf("re-parse of accepted %q failed: %v", spec, err2)
		}
		if strings.Join(labels(again), "|") != strings.Join(labels(ax), "|") {
			t.Fatalf("re-parse of %q diverged: %v vs %v", spec, labels(again), labels(ax))
		}
	})
}
