package sweep

import (
	"fmt"
	"strings"
	"testing"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
)

// testBase returns a fast base config: the paper profile restricted to
// two blades (28 scanned nodes), so a scenario simulates in tens of
// milliseconds instead of a second while keeping the controller node
// (02-04) and its full fault population in play.
func testBase(seed uint64) *campaign.Config {
	cfg := campaign.DefaultConfig(seed)
	cfg.Topo = topologyWithBlades(cfg.Topo, 2)
	return cfg
}

// testSpec is the canonical small 2x2 sweep the determinism and leak
// tests share.
func testSpec(t *testing.T) *Spec {
	t.Helper()
	axes, err := ParseAxes([]string{"pattern=flip,counter", "seed=1,2"})
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{Base: testBase(42), Axes: axes}
}

// TestSweepExpansion: cartesian product in odometer order, private
// config copies, cloned topologies, "base" for the zero-axes spec.
func TestSweepExpansion(t *testing.T) {
	base := testBase(42)
	spec := &Spec{
		Base: base,
		Axes: []Axis{
			{Name: "A", Points: []Point{
				{Label: "a1", Apply: func(cfg *campaign.Config) { cfg.Seed = 101 }},
				{Label: "a2", Apply: func(cfg *campaign.Config) { cfg.Seed = 102 }},
			}},
			{Name: "B", Points: []Point{
				{Label: "b1", Apply: func(cfg *campaign.Config) { cfg.AmbientRatePerHour = 1e-9 }},
				{Label: "b2", Apply: func(cfg *campaign.Config) { cfg.AmbientRatePerHour = 2e-9 }},
			}},
		},
	}
	scs, err := spec.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"A=a1,B=b1", "A=a1,B=b2", "A=a2,B=b1", "A=a2,B=b2"}
	if len(scs) != len(wantNames) {
		t.Fatalf("expanded %d scenarios, want %d", len(scs), len(wantNames))
	}
	for i, want := range wantNames {
		if scs[i].Name != want {
			t.Fatalf("scenario %d named %q, want %q", i, scs[i].Name, want)
		}
	}
	if scs[2].Config.Seed != 102 || scs[2].Config.AmbientRatePerHour != 1e-9 {
		t.Fatalf("scenario 2 config not the applied combination: %+v", scs[2].Config)
	}
	if base.Seed != 42 {
		t.Fatalf("expansion mutated the base config (seed %d)", base.Seed)
	}
	// Expansion is shallow: axes that leave the roster untouched share
	// the base topology (the runner clones per run, so a fleet of
	// thousands does not hold thousands of roster clones live), while a
	// topology-installing axis keeps its clone private.
	if scs[0].Config.Topo != base.Topo {
		t.Fatal("expansion cloned the topology eagerly")
	}
	bladed, err := ParseAxis("blades=2")
	if err != nil {
		t.Fatal(err)
	}
	withTopo := &Spec{Base: base, Axes: []Axis{bladed}}
	bscs, err := withTopo.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if bscs[0].Config.Topo == base.Topo {
		t.Fatal("blades axis left the scenario on the shared base roster")
	}
	if base.Topo.Node(cluster.NodeID{Blade: 1, SoC: 2}).Role != cluster.Scanned {
		t.Fatal("blades axis mutated the base roster")
	}

	// Zero axes: the single "base" scenario.
	solo, err := (&Spec{Base: testBase(1)}).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 || solo[0].Name != "base" {
		t.Fatalf("zero-axes spec expanded to %v", solo)
	}
}

// TestSweepSpecValidation: every malformed spec is a descriptive error,
// in the option-validation style (never a panic, never silent clamping).
func TestSweepSpecValidation(t *testing.T) {
	noop := func(*campaign.Config) {}
	wide := Axis{Name: "wide"}
	for i := 0; i < 70; i++ {
		wide.Points = append(wide.Points, Point{Label: fmt.Sprint(i), Apply: noop})
	}
	wide2 := wide
	wide2.Name = "wide2"
	cases := []struct {
		name    string
		spec    *Spec
		wantSub string
	}{
		{"nil spec", nil, "nil base"},
		{"nil base", &Spec{}, "nil base"},
		{"empty axis name", &Spec{Base: testBase(1), Axes: []Axis{{Points: []Point{{Label: "x", Apply: noop}}}}}, "empty name"},
		{"duplicate axis", &Spec{Base: testBase(1), Axes: []Axis{
			{Name: "seed", Points: []Point{{Label: "1", Apply: noop}}},
			{Name: "seed", Points: []Point{{Label: "2", Apply: noop}}},
		}}, `duplicate axis "seed"`},
		{"no points", &Spec{Base: testBase(1), Axes: []Axis{{Name: "seed"}}}, "no points"},
		{"empty label", &Spec{Base: testBase(1), Axes: []Axis{{Name: "seed", Points: []Point{{Apply: noop}}}}}, "empty label"},
		{"nil apply", &Spec{Base: testBase(1), Axes: []Axis{{Name: "seed", Points: []Point{{Label: "1"}}}}}, "nil Apply"},
		{"duplicate label", &Spec{Base: testBase(1), Axes: []Axis{
			{Name: "seed", Points: []Point{{Label: "1", Apply: noop}, {Label: "1", Apply: noop}}},
		}}, `duplicate point "1"`},
		{"too many scenarios", &Spec{Base: testBase(1), Axes: []Axis{wide, wide2}}, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scs, err := tc.spec.Scenarios()
			if err == nil {
				t.Fatalf("expanded %d scenarios, want error mentioning %q", len(scs), tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
