// Package sweep turns one campaign configuration into a fleet of
// parameterized scenarios and runs them concurrently under a single
// global worker budget, producing a deterministic cross-scenario
// comparison of the paper's headline figures.
//
// The paper's measurements are a single environment: one site (Barcelona,
// ~100 m), one scan cadence, one cluster, one pattern mix. The obvious
// follow-up questions — how the raw rate, the multi-bit fraction or the
// day/night contrast move with altitude-driven neutron flux, scrub
// cadence, cluster size or pattern choice — are exactly what later field
// studies asked. A Spec answers them in one invocation: a base
// campaign.Config plus declarative axes expands (cartesian product) into
// scenarios, each executed as its own Simulate source through
// core.Analyze in pure-streaming mode, all sharing one worker budget via
// campaign.Config.Gate so N scenarios never oversubscribe the machine.
//
// Determinism contract: every scenario is an ordinary campaign, already
// proven byte-identical for any worker count; the sweep layer adds no
// cross-scenario communication and sorts its result rows by scenario
// name, so the rendered comparison is byte-identical for any budget and
// any submission order (see TestSweepDeterminism).
package sweep

import (
	"fmt"
	"sort"
	"strings"

	"unprotected/internal/campaign"
)

// maxScenarios bounds the cartesian expansion: a runaway spec (three
// 100-point axes) should fail loudly, not allocate a million campaigns.
const maxScenarios = 4096

// Point is one value on an axis: a human-readable label plus the
// mutation it applies to a scenario's private Config copy. Apply must
// only overwrite fields (or replace pointers with fresh values); it must
// never mutate state shared with other scenarios through the base
// config, such as the topology's nodes or the scheduler calendar map.
type Point struct {
	Label string
	Apply func(*campaign.Config)
}

// Axis is one sweep dimension: a named, ordered set of points. Axes
// combine by cartesian product, so two 2-point axes yield 4 scenarios.
type Axis struct {
	Name   string
	Points []Point
}

// Spec is a declarative sweep: a base configuration plus the axes to
// vary. The zero axes case is legal and expands to the single "base"
// scenario, which makes "sweep of one" trivially comparable against a
// standalone Analyze run.
type Spec struct {
	Base *campaign.Config
	Axes []Axis
}

// Scenario is one expanded combination: its own Config copy under a
// name built from its axis labels ("altitude=1500,seed=2"). The copy is
// shallow — in particular, scenarios whose axes leave the topology
// untouched share the base roster. That is safe through RunScenarios,
// which clones the topology per run (the campaign engine records
// outages onto its roster's nodes); a caller executing a scenario
// Config directly through core.Analyze must give it a private
// cfg.Topo.Clone() first.
type Scenario struct {
	Name   string
	Config *campaign.Config
}

// Scenarios validates the spec and expands the cartesian product, in
// odometer order (last axis fastest). Every defect — nil base, an
// unnamed axis, duplicate axis names, an empty axis, a degenerate point
// — is a descriptive error, never a panic, matching the option
// validation style of core.Analyze.
func (s *Spec) Scenarios() ([]Scenario, error) {
	if s == nil || s.Base == nil {
		return nil, fmt.Errorf("sweep: nil base Config (use campaign.DefaultConfig)")
	}
	total := 1
	seenAxis := make(map[string]bool, len(s.Axes))
	for i, ax := range s.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep: axis %d: empty name", i)
		}
		if seenAxis[ax.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Name)
		}
		seenAxis[ax.Name] = true
		if len(ax.Points) == 0 {
			return nil, fmt.Errorf("sweep: axis %q: no points", ax.Name)
		}
		seenLabel := make(map[string]bool, len(ax.Points))
		for j, p := range ax.Points {
			if p.Label == "" {
				return nil, fmt.Errorf("sweep: axis %q: point %d: empty label", ax.Name, j)
			}
			if p.Apply == nil {
				return nil, fmt.Errorf("sweep: axis %q: point %q: nil Apply", ax.Name, p.Label)
			}
			if seenLabel[p.Label] {
				return nil, fmt.Errorf("sweep: axis %q: duplicate point %q", ax.Name, p.Label)
			}
			seenLabel[p.Label] = true
		}
		if total > maxScenarios/len(ax.Points) {
			return nil, fmt.Errorf("sweep: expansion exceeds %d scenarios", maxScenarios)
		}
		total *= len(ax.Points)
	}

	out := make([]Scenario, 0, total)
	idx := make([]int, len(s.Axes))
	for {
		// A shallow copy only: the runner clones the topology just
		// before each run, so expanding thousands of scenarios does not
		// hold thousands of roster clones live (a blades-axis Apply
		// installs its own private clone anyway).
		cfg := *s.Base
		parts := make([]string, len(s.Axes))
		for a, ax := range s.Axes {
			p := ax.Points[idx[a]]
			p.Apply(&cfg)
			parts[a] = ax.Name + "=" + p.Label
		}
		name := strings.Join(parts, ",")
		if name == "" {
			name = "base"
		}
		out = append(out, Scenario{Name: name, Config: &cfg})

		// Odometer increment, last axis fastest.
		a := len(idx) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Points) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return out, nil
		}
	}
}

// sortByName orders scenario results canonically so rendered output is
// independent of submission and completion order. The order is natural:
// digit runs compare numerically, so "seed=2" sorts before "seed=10".
func sortByName(rs []ScenarioResult) {
	sort.Slice(rs, func(i, j int) bool { return naturalLess(rs[i].Scenario.Name, rs[j].Scenario.Name) })
}

// naturalLess is a numeric-aware string order: embedded runs of digits
// compare by value, everything else bytewise, with a plain string
// comparison breaking natural ties ("seed=01" vs "seed=1") so the order
// stays total over distinct names.
func naturalLess(a, b string) bool {
	if c := naturalCmp(a, b); c != 0 {
		return c < 0
	}
	return a < b
}

func naturalCmp(a, b string) int {
	for a != "" && b != "" {
		if isDigit(a[0]) && isDigit(b[0]) {
			da, ra := digitRun(a)
			db, rb := digitRun(b)
			// Compare the runs as integers without parsing: after
			// stripping leading zeros, a longer run is a larger value and
			// equal-length runs compare lexically.
			ta, tb := strings.TrimLeft(da, "0"), strings.TrimLeft(db, "0")
			if len(ta) != len(tb) {
				if len(ta) < len(tb) {
					return -1
				}
				return 1
			}
			if ta != tb {
				if ta < tb {
					return -1
				}
				return 1
			}
			a, b = ra, rb
			continue
		}
		if a[0] != b[0] {
			if a[0] < b[0] {
				return -1
			}
			return 1
		}
		a, b = a[1:], b[1:]
	}
	return len(a) - len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// digitRun splits s after its leading run of digits.
func digitRun(s string) (run, rest string) {
	i := 0
	for i < len(s) && isDigit(s[i]) {
		i++
	}
	return s[:i], s[i:]
}
