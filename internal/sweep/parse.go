package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
)

// The declarative sweep grammar, used by cmd/sweep:
//
//	axis  ::= name "=" value ("," value)*
//	value ::= scalar | lo ":" hi ":" step      (numeric axes only)
//
// Known axes (each mutates one knob of the scenario's private Config):
//
//	altitude=0:3000:1500   site altitude in meters -> neutron flux
//	                       (radiation.AltitudeScale; 0..9000)
//	scrub=6,14,48          mean busy+idle cycle hours, i.e. how often a
//	                       node gets a scan (scrub) opportunity (>0)
//	ambient=4e-6,8e-6      background strike rate per node-hour (>=0)
//	pattern=flip,counter   scanner pattern mix: flip (all 0xFF/0x00
//	                       flip sessions), counter (all counter mode),
//	                       mixed (the paper's 15% counter share)
//	blades=2,8,72          cluster size: only blades 1..N of the base
//	                       topology participate
//	seed=1:8:1             RNG seed replicates (non-negative integer)
//
// Every malformed spec — unknown axis, empty value list, a degenerate
// range (step <= 0, hi < lo), out-of-domain values — is a descriptive
// error; the parser never panics (FuzzSweepParseAxis enforces it).

// maxAxisPoints bounds a single axis expansion.
const maxAxisPoints = 256

// numericAxis describes one float-valued knob.
type numericAxis struct {
	min, max float64
	integer  bool
	apply    func(*campaign.Config, float64)
}

var numericAxes = map[string]numericAxis{
	"altitude": {min: 0, max: 9000, apply: func(cfg *campaign.Config, v float64) {
		cfg.Site.AltMeters = v
	}},
	"scrub": {min: 0.1, max: 24 * 365, apply: func(cfg *campaign.Config, v float64) {
		cfg.Sched.CycleHours = v
	}},
	"ambient": {min: 0, max: 1, apply: func(cfg *campaign.Config, v float64) {
		cfg.AmbientRatePerHour = v
	}},
	"blades": {min: 1, max: cluster.TotalBlades, integer: true, apply: func(cfg *campaign.Config, v float64) {
		cfg.Topo = topologyWithBlades(cfg.Topo, int(v))
	}},
	"seed": {min: 0, max: 1 << 53, integer: true, apply: func(cfg *campaign.Config, v float64) {
		cfg.Seed = uint64(v)
	}},
}

// patternMixes are the categorical pattern axis values, mapped to the
// counter-mode session fraction.
var patternMixes = map[string]float64{
	"flip":    0,
	"counter": 1,
	"mixed":   0.15, // the paper: "most of the study" used flip mode
}

// ParseAxes parses a list of axis specs, rejecting duplicate axis names
// across the list.
func ParseAxes(specs []string) ([]Axis, error) {
	axes := make([]Axis, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		ax, err := ParseAxis(s)
		if err != nil {
			return nil, err
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		axes = append(axes, ax)
	}
	return axes, nil
}

// ParseAxis parses one "name=v1,v2,..." axis spec.
func ParseAxis(spec string) (Axis, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return Axis{}, fmt.Errorf("sweep: axis %q: missing '=' (want name=v1,v2,...)", spec)
	}
	if name == "" {
		return Axis{}, fmt.Errorf("sweep: axis %q: empty name", spec)
	}
	if rest == "" {
		return Axis{}, fmt.Errorf("sweep: axis %q: empty value list", name)
	}
	if name == "pattern" {
		return parsePatternAxis(rest)
	}
	def, ok := numericAxes[name]
	if !ok {
		return Axis{}, fmt.Errorf("sweep: unknown axis %q (known: altitude, ambient, blades, pattern, scrub, seed)", name)
	}
	return parseNumericAxis(name, rest, def)
}

// parsePatternAxis expands the categorical pattern axis.
func parsePatternAxis(rest string) (Axis, error) {
	ax := Axis{Name: "pattern"}
	seen := make(map[string]bool)
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		frac, ok := patternMixes[tok]
		if !ok {
			return Axis{}, fmt.Errorf("sweep: axis \"pattern\": unknown value %q (want flip, counter or mixed)", tok)
		}
		if seen[tok] {
			return Axis{}, fmt.Errorf("sweep: axis \"pattern\": duplicate value %q", tok)
		}
		seen[tok] = true
		ax.Points = append(ax.Points, Point{
			Label: tok,
			Apply: func(cfg *campaign.Config) { cfg.CounterModeFrac = frac },
		})
	}
	return ax, nil
}

// parseNumericAxis expands comma-separated scalars and lo:hi:step ranges
// into validated, canonically labeled points.
func parseNumericAxis(name, rest string, def numericAxis) (Axis, error) {
	ax := Axis{Name: name}
	seen := make(map[string]bool)
	add := func(v float64) error {
		if !def.integer {
			// Snap decimal-grid noise before labeling: 0.1:2:0.1 must
			// yield "0.3", not "0.30000000000000004", and the duplicate
			// check must see through the representation. Integer axes
			// stay untouched — their values are exact and 12 significant
			// digits would corrupt large seeds.
			v = roundSig(v)
		}
		if err := validateValue(name, v, def); err != nil {
			return err
		}
		label := strconv.FormatFloat(v, 'g', -1, 64)
		if def.integer {
			// Integer axes label in plain decimal: shortest-float form
			// would render seed=1000000 as "1e+06", which is unreadable
			// and defeats the natural (numeric-aware) row ordering.
			label = strconv.FormatInt(int64(v), 10)
		}
		if seen[label] {
			return fmt.Errorf("sweep: axis %q: duplicate value %s", name, label)
		}
		seen[label] = true
		if len(ax.Points) >= maxAxisPoints {
			return fmt.Errorf("sweep: axis %q: more than %d points", name, maxAxisPoints)
		}
		ax.Points = append(ax.Points, Point{Label: label, Apply: func(cfg *campaign.Config) { def.apply(cfg, v) }})
		return nil
	}
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		if strings.Contains(tok, ":") {
			if err := expandRange(name, tok, add); err != nil {
				return Axis{}, err
			}
			continue
		}
		v, err := parseScalar(name, tok)
		if err != nil {
			return Axis{}, err
		}
		if err := add(v); err != nil {
			return Axis{}, err
		}
	}
	return ax, nil
}

// expandRange expands "lo:hi:step" inclusively. Degenerate ranges —
// missing parts, step <= 0, hi < lo — are errors.
func expandRange(name, tok string, add func(float64) error) error {
	parts := strings.Split(tok, ":")
	if len(parts) != 3 {
		return fmt.Errorf("sweep: axis %q: bad range %q (want lo:hi:step)", name, tok)
	}
	lo, err := parseScalar(name, parts[0])
	if err != nil {
		return err
	}
	hi, err := parseScalar(name, parts[1])
	if err != nil {
		return err
	}
	step, err := parseScalar(name, parts[2])
	if err != nil {
		return err
	}
	if step <= 0 {
		return fmt.Errorf("sweep: axis %q: range %q: step must be > 0", name, tok)
	}
	if hi < lo {
		return fmt.Errorf("sweep: axis %q: range %q: hi < lo", name, tok)
	}
	// Bound the ratio while it is still a float: a tiny step makes it
	// overflow int (implementation-defined, negative on amd64), which
	// would skip both the cap check and the emit loop and silently
	// produce a zero-point axis.
	ratio := (hi - lo) / step
	if !(ratio < float64(maxAxisPoints)) {
		return fmt.Errorf("sweep: axis %q: range %q expands to more than %d points", name, tok, maxAxisPoints)
	}
	// Index-based stepping avoids accumulating float error over the walk;
	// the epsilon admits hi itself when (hi-lo)/step is integral.
	n := int(ratio + 1e-9)
	for i := 0; i <= n; i++ {
		if err := add(lo + float64(i)*step); err != nil {
			return err
		}
	}
	return nil
}

// roundSig snaps v to 12 significant decimal digits via a shortest-form
// round trip, absorbing binary float noise from decimal range walks
// (the endpoint of 0.1:1:0.3 is 1, not 0.9999999999999999).
func roundSig(v float64) float64 {
	r, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 12, 64), 64)
	if err != nil {
		return v
	}
	return r
}

// parseScalar parses one numeric token, rejecting NaN/Inf.
func parseScalar(name, tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("sweep: axis %q: bad number %q", name, tok)
	}
	return v, nil
}

// validateValue range-checks one axis value.
func validateValue(name string, v float64, def numericAxis) error {
	if def.integer && v != math.Trunc(v) {
		return fmt.Errorf("sweep: axis %q: value %v must be an integer", name, v)
	}
	if v < def.min || v > def.max {
		return fmt.Errorf("sweep: axis %q: value %v out of range [%g, %g]", name, v, def.min, def.max)
	}
	return nil
}

// topologyWithBlades is the cluster-size axis: the base roster restricted
// to blades 1..n (everything beyond is excluded, like the chassis
// dedicated to another study). The restriction applies to a clone of the
// configured topology — a customized base roster (extra dead nodes, a
// stress layout) keeps its structure at every size — falling back to the
// paper roster when the base leaves Topo nil. Login and dead nodes within
// range keep their roles, so small clusters stay structurally faithful.
func topologyWithBlades(base *cluster.Topology, n int) *cluster.Topology {
	var topo *cluster.Topology
	if base != nil {
		topo = base.Clone()
	} else {
		topo = cluster.PaperTopology()
	}
	for _, node := range topo.Nodes {
		if node.ID.Blade > n && node.Role == cluster.Scanned {
			node.Role = cluster.Excluded
		}
	}
	return topo
}
