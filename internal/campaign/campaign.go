// Package campaign orchestrates the year-long measurement campaign: it
// wires the cluster topology, scheduler, thermal and radiation models and
// each node's fault plan into per-node scan-session simulations, runs them
// on a worker pool, and streams the study dataset every analysis consumes.
//
// The engine is a streaming pipeline (see DESIGN.md): each worker
// simulates a node, extracts and sorts that node's faults locally, and a
// deterministic k-way heap merge interleaves the per-node streams into the
// canonical global order. Stream delivers faults and sessions to the
// caller one at a time without materializing the merged dataset; Run is a
// thin collect-all wrapper over Stream for consumers that want slices.
//
// Determinism: each node draws from an independent RNG stream derived from
// (campaign seed, node index); per-node streams are sorted by the total
// orders extract.Compare and eventlog.CompareSessions and merged keyed on
// (time, node, ...), so results are identical for any Workers setting.
package campaign

import (
	"context"
	"iter"
	"runtime"
	"sort"
	"sync"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/faults"
	"unprotected/internal/kway"
	"unprotected/internal/radiation"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/sched"
	"unprotected/internal/solar"
	"unprotected/internal/stream"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// Config parameterizes a campaign.
type Config struct {
	Seed uint64
	Topo *cluster.Topology
	// Sched drives idle-window generation.
	Sched sched.Profile
	// Site locates the machine for the solar/radiation models.
	Site solar.Site
	// CounterModeFrac is the fraction of sessions run in counter mode
	// ("most of the study was done using the former [flip] method").
	CounterModeFrac float64
	// Leak models scanner allocation shortfall from leaky jobs.
	Leak scanner.LeakModel
	// AmbientRatePerHour is the background strike rate per node-hour.
	AmbientRatePerHour float64
	// Profile places the study's specific faults onto nodes.
	Profile *Profile
	// SoC12OffFrom mirrors the topology's SoC-12 power-off instant for
	// temperature computation (before it, SoC 12 heats its neighbours).
	SoC12OffFrom timebase.T
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Gate, when non-nil, is a shared counting semaphore (a buffered
	// channel) bounding concurrent node simulations across every campaign
	// carrying the same channel: each worker acquires a token before
	// simulating a node and releases it immediately after, so N
	// concurrent campaigns with per-campaign pools never run more than
	// cap(Gate) simulations at once. The sweep engine (internal/sweep)
	// uses this to keep a whole scenario fleet inside one worker budget.
	// Scheduling never affects the merged stream, so output is identical
	// with or without a Gate.
	Gate chan struct{}

	// StressSoC12 enables the paper's §VI stress-test proposal: the
	// overheating SoC-12 positions stay powered all year and
	// temperature-accelerated retention faults are modeled on them and
	// their neighbours. Use StressConfig to build a consistent topology.
	StressSoC12 bool
	// Swap, when set, performs the paper's §VI component-swap experiment:
	// the degrading component of the controller node moves to a healthy
	// node at the given instant.
	Swap *SwapSpec
}

// SwapSpec schedules the §VI component-swap experiment.
type SwapSpec struct {
	At timebase.T
	// To receives the faulty component; the controller node gives it up.
	To cluster.NodeID
}

// Result is the assembled dataset.
type Result struct {
	Cfg *Config
	// Faults are the independent memory errors of every characterized
	// node, sorted by (time, node, address). The pathological node is
	// excluded here, as in §III-B.
	Faults []extract.Fault
	// Sessions are all scanner sessions (including the pathological
	// node's), for hours/TBh accounting.
	Sessions []eventlog.Session
	// RawLogs counts every ERROR record the scanner would have written.
	RawLogs int64
	// RawLogsByNode splits the raw volume per node.
	RawLogsByNode map[cluster.NodeID]int64
	// AllocFails counts sessions that could not allocate any memory.
	AllocFails int
}

// nodeOutput is one worker's result.
type nodeOutput struct {
	runs       []extract.RawRun
	sessions   []eventlog.Session
	rawLogs    int64
	allocFails int
	node       cluster.NodeID
	excluded   bool // pathological: runs are not characterized
}

// StreamHandler receives the merged campaign stream. Either callback may
// be nil, in which case that merge is skipped entirely — a consumer
// interested only in faults pays nothing for session ordering.
type StreamHandler struct {
	// Begin, when non-nil, observes the scalar Stats after simulation
	// completes and before the first Fault/Session delivery — in time for
	// a collecting consumer to preallocate from the exact counts.
	Begin func(*Stats)
	// Fault observes every characterized fault in the canonical
	// extract.Compare order: (time, node, address, pattern, ...).
	Fault func(extract.Fault)
	// Session observes every scanner session in (start time, host) order.
	Session func(eventlog.Session)
}

// Stats are the scalar campaign aggregates. Unlike faults and sessions
// they are cheap to hold, so Stream returns them directly.
type Stats struct {
	// Faults and Sessions count what the handler observed (or would have
	// observed, for nil callbacks).
	Faults   int
	Sessions int
	// RawLogs counts every ERROR record the scanner would have written.
	RawLogs int64
	// RawLogsByNode splits the raw volume per node (nodes with zero raw
	// logs have no entry).
	RawLogsByNode map[cluster.NodeID]int64
	// AllocFails counts sessions that could not allocate any memory.
	AllocFails int
}

// nodeStream is one node's finalized, locally sorted contribution to the
// campaign stream.
type nodeStream struct {
	faults []extract.Fault
	// faultCount is the node's characterized-fault count even when faults
	// itself was not built (no Fault callback — classification is 1:1 with
	// runs, so the count is known without doing the work).
	faultCount int
	sessions   []eventlog.Session
	rawLogs    int64
	allocFails int
	node       cluster.NodeID
}

// Stream executes the campaign and delivers the dataset incrementally.
//
// Each worker simulates a node end to end and finalizes it in place:
// the node's raw runs are sorted and classified into faults on the worker
// (so extraction parallelizes across the pool), and its sessions are
// ordered by start time. Once every node has reported, two deterministic
// k-way heap merges interleave the per-node streams into the canonical
// global orders and feed the handler one element at a time — the merged
// dataset is never materialized here, and a drained node's stream is
// released mid-merge. The results channel is bounded by the worker count,
// not the node count.
func Stream(cfg *Config, h StreamHandler) *Stats {
	stats, faultStreams, sessionStreams, _ := collect(context.Background(), cfg, h.Fault != nil, h.Session != nil)
	if h.Begin != nil {
		h.Begin(stats)
	}
	// The deterministic k-way merge lives in internal/kway so the
	// log-replay loader (internal/logstore) shares the exact same code;
	// see that package for the ordering and stability contract.
	if h.Fault != nil {
		kway.Merge(faultStreams, extract.Compare, h.Fault)
	}
	if h.Session != nil {
		kway.Merge(sessionStreams, eventlog.CompareSessions, h.Session)
	}
	return stats
}

// Events executes the campaign and yields the merged stream as an
// iterator honouring the internal/stream contract: a stats prologue, then
// every characterized fault in extract.Compare order, then every session
// in eventlog.CompareSessions order. The delivered sequence is identical
// to what Stream hands its callbacks over the same Config.
//
// Cancelling ctx aborts the campaign: unsimulated nodes are skipped, the
// worker pool drains and exits before the iterator yields its final
// (zero Event, ctx.Err()) pair, so an abandoned run leaks no goroutines.
// Breaking out of the range mid-merge releases everything immediately —
// by the first yield the pool has already wound down. Delivery itself
// performs no per-event allocation.
//
// Events always produces the complete stream; a single-sided consumer
// should use EventsFiltered, which skips the unwanted half's extraction
// and sorting entirely (the counts in the prologue stay exact either
// way).
func Events(ctx context.Context, cfg *Config) iter.Seq2[stream.Event, error] {
	return EventsFiltered(ctx, cfg, true, true)
}

// EventsFiltered is Events restricted to the halves the consumer wants:
// a false needFaults (or needSessions) omits those deliveries and skips
// their per-node classification, sorting and buffering, exactly like a
// nil StreamHandler callback. The prologue's counts still cover the full
// campaign.
func EventsFiltered(ctx context.Context, cfg *Config, needFaults, needSessions bool) iter.Seq2[stream.Event, error] {
	return func(yield func(stream.Event, error) bool) {
		stats, faultStreams, sessionStreams, err := collect(ctx, cfg, needFaults, needSessions)
		if err != nil {
			yield(stream.Event{}, err)
			return
		}
		stream.Deliver(ctx, yield, &stream.Stats{
			Faults:        stats.Faults,
			Sessions:      stats.Sessions,
			RawLogs:       stats.RawLogs,
			RawLogsByNode: stats.RawLogsByNode,
			AllocFails:    stats.AllocFails,
		}, faultStreams, sessionStreams)
	}
}

// collect runs the simulation worker pool to completion (or cancellation)
// and gathers the per-node sorted streams plus the scalar stats. It is
// the shared engine under Stream and Events.
//
// Cancellation: the feeder stops handing out nodes, workers skip
// simulating whatever is still queued, and the collector keeps draining
// until the results channel closes — so by the time the ctx.Err() is
// returned every pool goroutine has exited. A nil error guarantees the
// pool is equally gone (the channels closed normally).
func collect(ctx context.Context, cfg *Config, needFaults, needSessions bool) (*Stats, [][]extract.Fault, [][]eventlog.Session, error) {
	if cfg.Topo == nil {
		cfg.Topo = cluster.PaperTopology()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	plans := cfg.Profile.build(cfg)
	nodes := cfg.Topo.ScannedNodes()

	jobs := make(chan *cluster.Node)
	results := make(chan nodeStream, cfg.Workers)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker, recycled node to node and — via the
			// package pool — across campaigns: a sweep's scenario fleet
			// resimulates with the buffers its predecessors grew.
			sc := scratchPool.Get().(*nodeScratch)
			defer scratchPool.Put(sc)
			for n := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain the queue without simulating
				}
				if cfg.Gate != nil {
					select {
					case cfg.Gate <- struct{}{}:
					case <-done:
						continue
					}
				}
				out := finalizeNode(simulateNode(cfg, n, plans[n.ID], sc), needFaults, needSessions)
				if cfg.Gate != nil {
					// Release before the results send: the token covers the
					// CPU-heavy simulation only, never a wait on the
					// collector, so sibling campaigns sharing the gate can
					// proceed while this one drains.
					<-cfg.Gate
				}
				select {
				case results <- out:
				case <-done:
				}
			}
		}()
	}
	go func() {
	feed:
		for _, n := range nodes {
			select {
			case jobs <- n:
			case <-done:
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	stats := &Stats{RawLogsByNode: make(map[cluster.NodeID]int64)}
	faultStreams := make([][]extract.Fault, 0, len(nodes))
	sessionStreams := make([][]eventlog.Session, 0, len(nodes))
	for out := range results {
		if ctx.Err() != nil {
			continue // cancelled: keep draining so the pool exits
		}
		stats.Faults += out.faultCount
		stats.Sessions += len(out.sessions)
		stats.RawLogs += out.rawLogs
		if out.rawLogs > 0 {
			stats.RawLogsByNode[out.node] += out.rawLogs
		}
		stats.AllocFails += out.allocFails
		// A nil callback's streams are dropped here, node by node, so a
		// faults-only consumer never holds the session data (and vice
		// versa) — the counts above are all that survives.
		if len(out.faults) > 0 {
			faultStreams = append(faultStreams, out.faults)
		}
		if needSessions && len(out.sessions) > 0 {
			sessionStreams = append(sessionStreams, out.sessions)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	// Streams arrive in worker-completion order, but that cannot affect
	// the output: each stream holds a single node and both comparators
	// include the node key, so no two stream heads ever compare equal and
	// the merge's emitted sequence is independent of stream order.
	return stats, faultStreams, sessionStreams, nil
}

// finalizeNode turns a simulated node's raw output into its sorted stream
// contribution. This runs on the worker, so per-node extraction and
// sorting parallelize across the pool instead of serializing on the
// collector. The pathological node's runs are not characterized (§III-B),
// so an excluded node contributes sessions and raw-log counts only. When
// no consumer wants faults (or sessions), that side's classification and
// sorting are skipped — the count is all that survives, and for faults it
// equals the run count.
func finalizeNode(out nodeOutput, needFaults, needSessions bool) nodeStream {
	ns := nodeStream{
		sessions:   out.sessions,
		rawLogs:    out.rawLogs,
		allocFails: out.allocFails,
		node:       out.node,
	}
	if !out.excluded {
		ns.faultCount = len(out.runs)
		if needFaults {
			ns.faults = extract.Faults(out.runs)
			extract.SortFaults(ns.faults)
		}
	}
	// Sessions are generated in window order, which is already start-time
	// order for scheduler windows; the pathological node's trimmed +
	// continuous window splice preserves it too. Sorting is a near-no-op
	// pass that turns that invariant into a guarantee.
	if needSessions {
		sort.Slice(ns.sessions, func(i, j int) bool {
			return eventlog.CompareSessions(&ns.sessions[i], &ns.sessions[j]) < 0
		})
	}
	return ns
}

// Run executes the campaign and collects the full dataset. It is a thin
// wrapper over Stream for consumers that want slices; anything that can
// process faults or sessions one at a time should use Stream instead.
func Run(cfg *Config) *Result {
	res := &Result{Cfg: cfg}
	st := Stream(cfg, StreamHandler{
		Begin: func(st *Stats) {
			res.Faults = make([]extract.Fault, 0, st.Faults)
			res.Sessions = make([]eventlog.Session, 0, st.Sessions)
		},
		Fault:   func(f extract.Fault) { res.Faults = append(res.Faults, f) },
		Session: func(s eventlog.Session) { res.Sessions = append(res.Sessions, s) },
	})
	res.RawLogs = st.RawLogs
	res.RawLogsByNode = st.RawLogsByNode
	res.AllocFails = st.AllocFails
	return res
}

// nodeScratch is the reusable per-worker simulation state: the window and
// raw-run buffers a node simulation fills and its finalization drains.
// Nothing in a finished nodeStream aliases the scratch (faults are
// classified into a fresh slice, sessions are node-owned), so one scratch
// serves every node a worker simulates, and the package-level pool carries
// the grown buffers across campaigns — the sweep engine's scenarios
// resimulate million-session fleets without regrowing them.
type nodeScratch struct {
	windows []sched.Window
	runs    []extract.RawRun
}

// scratchPool recycles nodeScratch values across workers, campaigns and
// sweep scenarios.
var scratchPool = sync.Pool{New: func() any { return new(nodeScratch) }}

// simulateNode runs one node's full-year simulation. The returned output's
// runs slice is backed by sc and is only valid until the next simulateNode
// call with the same scratch — finalizeNode consumes it before then.
func simulateNode(cfg *Config, node *cluster.Node, plan *faults.Plan, sc *nodeScratch) nodeOutput {
	r := rng.Derive(cfg.Seed, uint64(node.ID.Index()))
	gen := sched.NewGenerator(cfg.Sched)
	sc.windows = gen.AppendNodeWindows(sc.windows[:0], node, r)
	windows := sc.windows

	out := nodeOutput{node: node.ID}
	therm := thermal.New()
	scrambler := sharedScrambler
	polarity := sharedPolarity

	// The pathological node scans continuously once failed: it was removed
	// from the scheduler pool, so nothing ever SIGTERMed its scanner.
	if plan != nil && plan.Pathological != nil {
		out.excluded = true
		var trimmed []sched.Window
		for _, w := range windows {
			if w.To <= plan.Pathological.Active.From {
				trimmed = append(trimmed, w)
			} else if w.From < plan.Pathological.Active.From {
				w.To = plan.Pathological.Active.From
				trimmed = append(trimmed, w)
			}
		}
		for _, b := range plan.Pathological.ContinuousWindows(timebase.T(timebase.StudySeconds)) {
			trimmed = append(trimmed, sched.Window{From: b.From, To: b.To})
		}
		windows = trimmed
	}

	// One SessionCtx (and one temperature closure) serves every window of
	// the node: only the per-session fields change between windows.
	// Allocating these per window used to be the single largest campaign
	// allocation site after the timezone cache.
	soc12Off := cfg.SoC12OffFrom
	nodeID := node.ID
	ctx := &faults.SessionCtx{
		Node: nodeID,
		Rng:  r,
		Temp: func(at timebase.T) float64 {
			return therm.NodeTemp(nodeID, at, at < soc12Off, r)
		},
		Polarity:  polarity,
		Scrambler: scrambler,
	}
	out.sessions = make([]eventlog.Session, 0, len(windows))
	out.runs = sc.runs[:0]
	for _, w := range windows {
		avail := cfg.Leak.Available(r)
		alloc := scanner.Allocate(avail)
		if alloc == 0 {
			out.allocFails++
			continue
		}
		mode := scanner.FlipMode
		if r.Bernoulli(cfg.CounterModeFrac) {
			mode = scanner.CounterMode
		}
		ctx.Window = w
		ctx.Alloc = alloc
		ctx.Mode = mode
		ctx.IterDur = scanner.IterDuration(alloc)
		ctx.Words = alloc / 4
		if plan != nil {
			for _, src := range plan.Sources {
				out.rawLogs += src.Emit(ctx, &out.runs)
			}
			if plan.Pathological != nil {
				out.rawLogs += plan.Pathological.Emit(ctx, &out.runs)
			}
		}
		out.sessions = append(out.sessions, eventlog.Session{
			Host: node.ID, From: w.From, To: w.To,
			AllocBytes: alloc, Truncated: w.HardReboot,
		})
	}
	// Keep the grown runs buffer for the worker's next node.
	sc.runs = out.runs
	return out
}

// Shared immutable models: the scrambler search and polarity map are pure
// functions of fixed seeds, safe to share across workers (read-only after
// construction).
var (
	sharedScrambler = dram.NewScrambler()
	sharedPolarity  = dram.NewPolarityMap(0xd0_c4_11)
)

// Scrambler exposes the shared bit scrambler for analyses and tests.
func Scrambler() *dram.Scrambler { return sharedScrambler }

// Polarity exposes the shared polarity map.
func Polarity() *dram.PolarityMap { return sharedPolarity }

// FluxFor builds the site flux model used by fault profiles.
func FluxFor(site solar.Site) *radiation.Flux { return radiation.NewFlux(site) }
