// Package campaign orchestrates the year-long measurement campaign: it
// wires the cluster topology, scheduler, thermal and radiation models and
// each node's fault plan into per-node scan-session simulations, runs them
// on a worker pool, and assembles the study dataset every analysis
// consumes.
//
// Determinism: each node draws from an independent RNG stream derived from
// (campaign seed, node index); per-node outputs are merged and sorted by
// (time, node, address), so results are identical for any GOMAXPROCS.
package campaign

import (
	"runtime"
	"sort"
	"sync"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/faults"
	"unprotected/internal/radiation"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/sched"
	"unprotected/internal/solar"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// Config parameterizes a campaign.
type Config struct {
	Seed uint64
	Topo *cluster.Topology
	// Sched drives idle-window generation.
	Sched sched.Profile
	// Site locates the machine for the solar/radiation models.
	Site solar.Site
	// CounterModeFrac is the fraction of sessions run in counter mode
	// ("most of the study was done using the former [flip] method").
	CounterModeFrac float64
	// Leak models scanner allocation shortfall from leaky jobs.
	Leak scanner.LeakModel
	// AmbientRatePerHour is the background strike rate per node-hour.
	AmbientRatePerHour float64
	// Profile places the study's specific faults onto nodes.
	Profile *Profile
	// SoC12OffFrom mirrors the topology's SoC-12 power-off instant for
	// temperature computation (before it, SoC 12 heats its neighbours).
	SoC12OffFrom timebase.T
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int

	// StressSoC12 enables the paper's §VI stress-test proposal: the
	// overheating SoC-12 positions stay powered all year and
	// temperature-accelerated retention faults are modeled on them and
	// their neighbours. Use StressConfig to build a consistent topology.
	StressSoC12 bool
	// Swap, when set, performs the paper's §VI component-swap experiment:
	// the degrading component of the controller node moves to a healthy
	// node at the given instant.
	Swap *SwapSpec
}

// SwapSpec schedules the §VI component-swap experiment.
type SwapSpec struct {
	At timebase.T
	// To receives the faulty component; the controller node gives it up.
	To cluster.NodeID
}

// Result is the assembled dataset.
type Result struct {
	Cfg *Config
	// Faults are the independent memory errors of every characterized
	// node, sorted by (time, node, address). The pathological node is
	// excluded here, as in §III-B.
	Faults []extract.Fault
	// Sessions are all scanner sessions (including the pathological
	// node's), for hours/TBh accounting.
	Sessions []eventlog.Session
	// RawLogs counts every ERROR record the scanner would have written.
	RawLogs int64
	// RawLogsByNode splits the raw volume per node.
	RawLogsByNode map[cluster.NodeID]int64
	// AllocFails counts sessions that could not allocate any memory.
	AllocFails int
}

// nodeOutput is one worker's result.
type nodeOutput struct {
	runs       []extract.RawRun
	sessions   []eventlog.Session
	rawLogs    int64
	allocFails int
	node       cluster.NodeID
	excluded   bool // pathological: runs are not characterized
}

// Run executes the campaign.
func Run(cfg *Config) *Result {
	if cfg.Topo == nil {
		cfg.Topo = cluster.PaperTopology()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	plans := cfg.Profile.build(cfg)
	nodes := cfg.Topo.ScannedNodes()

	jobs := make(chan *cluster.Node)
	results := make(chan nodeOutput, len(nodes))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range jobs {
				results <- simulateNode(cfg, n, plans[n.ID])
			}
		}()
	}
	go func() {
		for _, n := range nodes {
			jobs <- n
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	res := &Result{Cfg: cfg, RawLogsByNode: make(map[cluster.NodeID]int64)}
	var allRuns []extract.RawRun
	for out := range results {
		if !out.excluded {
			allRuns = append(allRuns, out.runs...)
		}
		res.Sessions = append(res.Sessions, out.sessions...)
		res.RawLogs += out.rawLogs
		if out.rawLogs > 0 {
			res.RawLogsByNode[out.node] += out.rawLogs
		}
		res.AllocFails += out.allocFails
	}
	res.Faults = extract.Faults(allRuns)
	extract.SortFaults(res.Faults)
	sortSessions(res.Sessions)
	return res
}

// sortSessions orders sessions by (start time, host) so output is
// reproducible regardless of worker interleaving. No two sessions of one
// host share a start time, so the key is total.
func sortSessions(ss []eventlog.Session) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].From != ss[j].From {
			return ss[i].From < ss[j].From
		}
		return ss[i].Host.Index() < ss[j].Host.Index()
	})
}

// simulateNode runs one node's full-year simulation.
func simulateNode(cfg *Config, node *cluster.Node, plan *faults.Plan) nodeOutput {
	r := rng.Derive(cfg.Seed, uint64(node.ID.Index()))
	gen := sched.NewGenerator(cfg.Sched)
	windows := gen.NodeWindows(node, r)

	out := nodeOutput{node: node.ID}
	therm := thermal.New()
	scrambler := sharedScrambler
	polarity := sharedPolarity

	// The pathological node scans continuously once failed: it was removed
	// from the scheduler pool, so nothing ever SIGTERMed its scanner.
	if plan != nil && plan.Pathological != nil {
		out.excluded = true
		var trimmed []sched.Window
		for _, w := range windows {
			if w.To <= plan.Pathological.Active.From {
				trimmed = append(trimmed, w)
			} else if w.From < plan.Pathological.Active.From {
				w.To = plan.Pathological.Active.From
				trimmed = append(trimmed, w)
			}
		}
		for _, b := range plan.Pathological.ContinuousWindows(timebase.T(timebase.StudySeconds)) {
			trimmed = append(trimmed, sched.Window{From: b.From, To: b.To})
		}
		windows = trimmed
	}

	for _, w := range windows {
		avail := cfg.Leak.Available(r)
		alloc := scanner.Allocate(avail)
		if alloc == 0 {
			out.allocFails++
			continue
		}
		mode := scanner.FlipMode
		if r.Bernoulli(cfg.CounterModeFrac) {
			mode = scanner.CounterMode
		}
		ctx := &faults.SessionCtx{
			Node:    node.ID,
			Window:  w,
			Alloc:   alloc,
			Mode:    mode,
			IterDur: scanner.IterDuration(alloc),
			Words:   alloc / 4,
			Rng:     r,
			Temp: func(at timebase.T) float64 {
				return therm.NodeTemp(node.ID, at, at < cfg.SoC12OffFrom, r)
			},
			Polarity:  polarity,
			Scrambler: scrambler,
		}
		if plan != nil {
			for _, src := range plan.Sources {
				out.rawLogs += src.Emit(ctx, &out.runs)
			}
			if plan.Pathological != nil {
				out.rawLogs += plan.Pathological.Emit(ctx, &out.runs)
			}
		}
		out.sessions = append(out.sessions, eventlog.Session{
			Host: node.ID, From: w.From, To: w.To,
			AllocBytes: alloc, Truncated: w.HardReboot,
		})
	}
	return out
}

// Shared immutable models: the scrambler search and polarity map are pure
// functions of fixed seeds, safe to share across workers (read-only after
// construction).
var (
	sharedScrambler = dram.NewScrambler()
	sharedPolarity  = dram.NewPolarityMap(0xd0_c4_11)
)

// Scrambler exposes the shared bit scrambler for analyses and tests.
func Scrambler() *dram.Scrambler { return sharedScrambler }

// Polarity exposes the shared polarity map.
func Polarity() *dram.PolarityMap { return sharedPolarity }

// FluxFor builds the site flux model used by fault profiles.
func FluxFor(site solar.Site) *radiation.Flux { return radiation.NewFlux(site) }
