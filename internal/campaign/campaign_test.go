package campaign

import (
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// smallConfig trims the fault profile to run fast while still exercising
// every source kind.
func smallConfig(seed uint64) *Config {
	cfg := DefaultConfig(seed)
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	a := Run(smallConfig(7))
	cfgB := smallConfig(7)
	cfgB.Workers = 2 // different parallelism must not change results
	b := Run(cfgB)
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("fault counts differ: %d vs %d", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs across parallelism", i)
		}
	}
	if a.RawLogs != b.RawLogs {
		t.Fatalf("raw logs differ: %d vs %d", a.RawLogs, b.RawLogs)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	a := Run(smallConfig(1))
	b := Run(smallConfig(2))
	if len(a.Faults) == len(b.Faults) && a.RawLogs == b.RawLogs {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestPaperCampaignHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	res := Run(DefaultConfig(42))

	// §III-B magnitudes (generous windows; exact values in EXPERIMENTS.md).
	if res.RawLogs < 20e6 || res.RawLogs > 32e6 {
		t.Fatalf("raw logs %d, want ~25M", res.RawLogs)
	}
	if n := len(res.Faults); n < 45000 || n > 70000 {
		t.Fatalf("independent faults %d, want ~55k", n)
	}
	var maxRaw int64
	var worst cluster.NodeID
	for id, n := range res.RawLogsByNode {
		if n > maxRaw {
			maxRaw, worst = n, id
		}
	}
	if share := float64(maxRaw) / float64(res.RawLogs); share < 0.95 {
		t.Fatalf("worst node raw share %.2f, want >0.95", share)
	}
	if worst != DefaultConfig(42).Profile.PathologicalNode {
		t.Fatalf("worst raw node %v, want the pathological node", worst)
	}

	// The pathological node contributes no characterized faults.
	for _, f := range res.Faults {
		if f.Node == worst {
			t.Fatal("pathological node leaked into characterized faults")
		}
	}

	// Multi-bit population: 85 events, 9 over 2 bits, 7 over 3.
	multi, over2, over3 := 0, 0, 0
	for _, f := range res.Faults {
		switch n := f.BitCount(); {
		case n > 3:
			over3++
			over2++
			multi++
		case n == 3:
			over2++
			multi++
		case n == 2:
			multi++
		}
	}
	if multi < 60 || multi > 110 {
		t.Fatalf("multi-bit faults %d, want ~85", multi)
	}
	if over3 != 7 {
		t.Fatalf(">3-bit faults %d, want exactly 7 (scheduled)", over3)
	}

	// Faults are sorted and within the study window.
	for i, f := range res.Faults {
		if f.FirstAt < 0 || f.FirstAt >= timebase.T(timebase.StudySeconds) {
			t.Fatalf("fault %d outside study window: %v", i, f.FirstAt)
		}
		if i > 0 && res.Faults[i-1].FirstAt > f.FirstAt {
			t.Fatal("faults not sorted by time")
		}
	}

	// Simultaneity magnitude (§III-C).
	st := extract.Simultaneity(extract.Groups(res.Faults))
	if st.FaultsInGroups < 18000 || st.FaultsInGroups > 40000 {
		t.Fatalf("simultaneous faults %d, want ~26k", st.FaultsInGroups)
	}
}

func TestSessionsRespectRoster(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := DefaultConfig(3)
	res := Run(cfg)
	for _, s := range res.Sessions {
		node := cfg.Topo.Node(s.Host)
		if node.Role != cluster.Scanned {
			t.Fatalf("session on non-scanned node %v (%v)", s.Host, node.Role)
		}
	}
	// Hours per node: no node exceeds the study duration.
	hours := make(map[cluster.NodeID]float64)
	for _, s := range res.Sessions {
		hours[s.Host] += s.Duration().Hours()
	}
	limit := float64(timebase.StudySeconds) / 3600
	for id, h := range hours {
		if h > limit {
			t.Fatalf("node %v monitored %v h > study length", id, h)
		}
	}
}

func TestSharedModelsExposed(t *testing.T) {
	if Scrambler() == nil || Polarity() == nil {
		t.Fatal("shared models missing")
	}
	if FluxFor(DefaultConfig(1).Site) == nil {
		t.Fatal("flux constructor")
	}
}
