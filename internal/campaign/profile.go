package campaign

import (
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/faults"
	"unprotected/internal/radiation"
	"unprotected/internal/scanner"
	"unprotected/internal/sched"
	"unprotected/internal/solar"
	"unprotected/internal/timebase"
)

// Profile places the study's specific fault population onto nodes. The
// constants here were calibrated once against the paper's aggregates
// (§III, Tables I–II); EXPERIMENTS.md records paper-vs-measured for every
// figure.
type Profile struct {
	// PathologicalNode produced ~98% of all raw error logs.
	PathologicalNode cluster.NodeID
	PathologicalFrom timebase.T
	// AddrsPerIter calibrates its raw volume to ~24.5M records.
	PathologicalAddrsPerIter float64

	// ControllerNode is the degrading node (02-04 in the paper).
	ControllerNode cluster.NodeID
	ControllerFrom timebase.T
	ControllerRamp timebase.T
	// ControllerPeakRate is glitches/hour at full degradation.
	ControllerPeakRate float64
	// ControllerPoolSize is how many distinct addresses the fault touches.
	ControllerPoolSize int
	// ControllerScanGaps are periods with no monitoring on that node
	// (Fig 12's silent stretches in December onward).
	ControllerScanGaps []cluster.Outage

	// WeakNodes carry one intermittently leaking cell each (04-05, 58-02).
	WeakNodes []WeakSpec

	// Recurring are the Table I multi-bit word sites.
	Recurring []RecurringSpec

	// Isolated are the §III-D silent-corruption strikes.
	Isolated []IsolatedSpec

	// TriplesAt schedules the two triple-bit-with-single events and
	// DoubleDoubleAt the one double+double event, all on ControllerNode.
	TriplesAt      []timebase.T
	DoubleDoubleAt timebase.T
	// BigBurstAt schedules the 36-bit multi-word glitch.
	BigBurstAt timebase.T
}

// WeakSpec places a weak bit on a node.
type WeakSpec struct {
	Node         cluster.NodeID
	Addr         dram.Addr
	Bit          int
	LeakPerCheck float64
	Bursts       []faults.Burst
}

// RecurringSpec places a recurring multi-bit word site.
type RecurringSpec struct {
	Node        cluster.NodeID
	Addr        dram.Addr
	PhysStart   int // cells = scrambler image of a 2-cell physical run
	Cells       int
	RatePerHour float64
	Counter     bool // counter-mode affinity (low-bit cells)
	Stress      bool // couple to the controller node's degradation
}

// IsolatedSpec places one scheduled >3-bit strike.
type IsolatedSpec struct {
	Node      cluster.NodeID
	At        timebase.T
	BitCount  int
	Addr      dram.Addr
	PhysStart int
}

// date is a convenience for profile literals.
func date(y int, m time.Month, d, hh int) timebase.T {
	return timebase.FromTime(time.Date(y, m, d, hh, 0, 0, 0, time.UTC))
}

// PaperProfile returns the calibrated fault population of the study.
func PaperProfile() *Profile {
	p := &Profile{
		// ~98% of the ~25M raw logs: continuous scanning from late
		// September with ~19 failing addresses per pass.
		PathologicalNode:         cluster.NodeID{Blade: 17, SoC: 9},
		PathologicalFrom:         date(2015, time.September, 20, 4),
		PathologicalAddrsPerIter: 17.9,

		ControllerNode:     cluster.NodeID{Blade: 2, SoC: 4},
		ControllerFrom:     date(2015, time.August, 20, 0),
		ControllerRamp:     date(2015, time.November, 5, 0),
		ControllerPeakRate: 102,
		ControllerPoolSize: 12000,
		ControllerScanGaps: []cluster.Outage{
			{From: date(2015, time.November, 26, 12), To: date(2015, time.December, 14, 8), Reason: "no monitoring"},
			{From: date(2015, time.December, 16, 20), To: timebase.T(timebase.StudySeconds), Reason: "no monitoring"},
		},

		WeakNodes: []WeakSpec{
			{
				Node: cluster.NodeID{Blade: 4, SoC: 5}, Addr: 0x2f3_1180, Bit: 13,
				LeakPerCheck: 0.033,
				// Two burst trains: autumn degradation, quiet December
				// (while the machine is mostly idle), relapse in January.
				Bursts: append(
					burstTrain(date(2015, time.September, 20, 0), 5, 6, 10),
					burstTrain(date(2016, time.January, 10, 0), 3, 6, 10)...),
			},
			{
				Node: cluster.NodeID{Blade: 58, SoC: 2}, Addr: 0x11c_9a44, Bit: 5,
				LeakPerCheck: 0.033,
				Bursts: append(
					burstTrain(date(2015, time.October, 1, 0), 4, 5, 9),
					burstTrain(date(2016, time.January, 5, 0), 3, 5, 9)...),
			},
		},

		// Table I's nine recurring double-bit sites. Rates were fitted to
		// the occurrence column {36,10,10,7,4 | 4 | 2 | 2,1}.
		Recurring: []RecurringSpec{
			{Node: cluster.NodeID{Blade: 2, SoC: 4}, Addr: 0x100_2204, PhysStart: 3, Cells: 2, RatePerHour: 0.058, Stress: true},
			{Node: cluster.NodeID{Blade: 2, SoC: 4}, Addr: 0x1a4_0010, PhysStart: 9, Cells: 2, RatePerHour: 0.015, Stress: true},
			{Node: cluster.NodeID{Blade: 2, SoC: 4}, Addr: 0x08c_5b60, PhysStart: 14, Cells: 2, RatePerHour: 0.016, Stress: true},
			{Node: cluster.NodeID{Blade: 2, SoC: 4}, Addr: 0x221_7e08, PhysStart: 21, Cells: 2, RatePerHour: 0.0115, Stress: true},
			{Node: cluster.NodeID{Blade: 2, SoC: 4}, Addr: 0x2b0_96cc, PhysStart: 26, Cells: 2, RatePerHour: 0.015, Stress: true},
			{Node: cluster.NodeID{Blade: 4, SoC: 5}, Addr: 0x1d8_3344, PhysStart: 6, Cells: 2, RatePerHour: 0.0009},
			{Node: cluster.NodeID{Blade: 28, SoC: 7}, Addr: 0x09a_1208, PhysStart: 11, Cells: 2, RatePerHour: 0.00023},
			{Node: cluster.NodeID{Blade: 35, SoC: 10}, Addr: 0x044_0c10, PhysStart: 0, Cells: 2, RatePerHour: 0.0016, Counter: true},
			{Node: cluster.NodeID{Blade: 47, SoC: 3}, Addr: 0x2e1_5550, PhysStart: 1, Cells: 2, RatePerHour: 0.001, Counter: true},
		},

		// §III-D: seven >3-bit strikes on five otherwise-clean nodes,
		// four of them adjacent to the overheating SoC-12 position; two
		// same-day pairs (March, May); six before the SoC-12 power-off.
		Isolated: []IsolatedSpec{
			{Node: cluster.NodeID{Blade: 7, SoC: 11}, At: date(2015, time.February, 21, 9), BitCount: 4, Addr: 0x02a_9104, PhysStart: 5},
			{Node: cluster.NodeID{Blade: 23, SoC: 13}, At: date(2015, time.March, 12, 8), BitCount: 4, Addr: 0x1f0_0218, PhysStart: 12},
			{Node: cluster.NodeID{Blade: 51, SoC: 13}, At: date(2015, time.March, 12, 17), BitCount: 9, Addr: 0x26b_4ff0, PhysStart: 19},
			{Node: cluster.NodeID{Blade: 51, SoC: 13}, At: date(2015, time.April, 3, 11), BitCount: 8, Addr: 0x0b2_c660, PhysStart: 24},
			{Node: cluster.NodeID{Blade: 44, SoC: 11}, At: date(2015, time.May, 19, 7), BitCount: 6, Addr: 0x2c8_0a24, PhysStart: 8},
			{Node: cluster.NodeID{Blade: 51, SoC: 13}, At: date(2015, time.May, 19, 16), BitCount: 4, Addr: 0x135_7d98, PhysStart: 28},
			{Node: cluster.NodeID{Blade: 36, SoC: 5}, At: date(2015, time.July, 22, 14), BitCount: 5, Addr: 0x1c3_2b0c, PhysStart: 16},
		},

		TriplesAt: []timebase.T{
			date(2015, time.November, 12, 10),
			date(2015, time.November, 21, 15),
		},
		DoubleDoubleAt: date(2015, time.November, 17, 12),
		BigBurstAt:     date(2015, time.November, 14, 13),
	}
	return p
}

// burstTrain builds n bursts of lenDays starting at from, separated by
// gapDays of quiet.
func burstTrain(from timebase.T, n, lenDays, gapDays int) []faults.Burst {
	var out []faults.Burst
	t := from
	day := timebase.T(86400)
	for i := 0; i < n; i++ {
		out = append(out, faults.Burst{From: t, To: t + timebase.T(lenDays)*day})
		t += timebase.T(lenDays+gapDays) * day
	}
	return out
}

// DefaultConfig assembles the full paper-scale configuration.
func DefaultConfig(seed uint64) *Config {
	topo := cluster.PaperTopology()
	return &Config{
		Seed:               seed,
		Topo:               topo,
		Sched:              sched.PaperProfile(),
		Site:               solar.Barcelona,
		CounterModeFrac:    0.15,
		Leak:               scanner.DefaultLeakModel(),
		AmbientRatePerHour: 4e-6,
		Profile:            PaperProfile(),
		SoC12OffFrom:       timebase.FromTime(timebase.Epoch.AddDate(0, 4, 0)),
	}
}

// StressConfig returns the §VI stress-test configuration: SoC-12 nodes
// stay powered (and hot) for the whole study and carry thermally
// accelerated retention faults along with their neighbours.
func StressConfig(seed uint64) *Config {
	cfg := DefaultConfig(seed)
	topoCfg := cluster.Config{ExcludedChassis: 8}
	for b := 1; b <= 9; b++ {
		topoCfg.LoginNodes = append(topoCfg.LoginNodes, cluster.NodeID{Blade: b, SoC: 1})
	}
	// Same dead nodes as the paper topology, no SoC-12 outage, no blade-33
	// outage interference with the experiment.
	topoCfg.DeadNodes = []cluster.NodeID{
		{Blade: 5, SoC: 7}, {Blade: 11, SoC: 3}, {Blade: 14, SoC: 9}, {Blade: 19, SoC: 15},
		{Blade: 22, SoC: 6}, {Blade: 27, SoC: 11}, {Blade: 31, SoC: 2}, {Blade: 38, SoC: 14},
		{Blade: 41, SoC: 8}, {Blade: 46, SoC: 4}, {Blade: 52, SoC: 10}, {Blade: 57, SoC: 13},
		{Blade: 61, SoC: 5},
	}
	cfg.Topo = cluster.NewTopology(topoCfg)
	cfg.StressSoC12 = true
	// SoC 12 never powers off: neighbours stay heated all year.
	cfg.SoC12OffFrom = timebase.T(timebase.StudySeconds)
	return cfg
}

// SwapConfig returns the §VI component-swap configuration: the degrading
// component leaves the controller node at the given study instant and is
// installed in a previously healthy node.
func SwapConfig(seed uint64, at timebase.T, to cluster.NodeID) *Config {
	cfg := DefaultConfig(seed)
	cfg.Swap = &SwapSpec{At: at, To: to}
	return cfg
}

// build materializes per-node fault plans and mutates the topology with
// the controller node's monitoring gaps.
func (p *Profile) build(cfg *Config) map[cluster.NodeID]*faults.Plan {
	plans := make(map[cluster.NodeID]*faults.Plan)
	flux := radiation.NewFlux(cfg.Site)
	scrambler := sharedScrambler

	get := func(id cluster.NodeID) *faults.Plan {
		if pl, ok := plans[id]; ok {
			return pl
		}
		pl := &faults.Plan{Node: cfg.Topo.Node(id)}
		plans[id] = pl
		return pl
	}

	if p == nil {
		// No specific faults: ambient background only.
		p = &Profile{}
	}

	// Ambient background on every scanned node.
	if cfg.AmbientRatePerHour > 0 {
		for _, n := range cfg.Topo.ScannedNodes() {
			pl := get(n.ID)
			gen := radiation.NewGenerator(flux, cfg.AmbientRatePerHour)
			pl.Sources = append(pl.Sources, faults.NewAmbient(gen))
		}
	}

	var zero cluster.NodeID
	var controller *faults.Controller
	if p.ControllerNode != zero {
		node := cfg.Topo.Node(p.ControllerNode)
		if cfg.Swap == nil {
			// Fig 12's silent stretches: no monitoring on the node from
			// late November. The swap experiment drops them so both halves
			// of the attribution experiment stay observable.
			node.Outages = append(node.Outages, p.ControllerScanGaps...)
		}
		pool := make([]dram.Addr, p.ControllerPoolSize)
		prng := dram.NewPolarityMap(cfg.Seed ^ 0xcafe)
		_ = prng
		for i := range pool {
			// Spread the pool over the full 3 GB word space with a fixed
			// stride pattern; identity is all that matters downstream.
			pool[i] = dram.Addr((uint64(i)*2654435761 + 12345) % uint64(cluster.ScanTargetBytes/4))
		}
		controller = &faults.Controller{
			Active:        faults.Burst{From: p.ControllerFrom, To: timebase.T(timebase.StudySeconds)},
			PeakRate:      p.ControllerPeakRate,
			RampUntil:     p.ControllerRamp,
			AddrPool:      pool,
			Patterns:      faults.DefaultPatterns(),
			MeanAddrs:     2.6,
			SingleProb:    0.76,
			MeanRunChecks: 2.2,
			MaxBurstAddrs: 34,
			BigBurstAt:    p.BigBurstAt,
		}
		for _, at := range p.TriplesAt {
			controller.ScheduledMulti = append(controller.ScheduledMulti, &faults.ScheduledMulti{
				At:         at,
				Masks:      []dram.BitSet{scrambler.PhysRun(7, 3)},
				Addrs:      []dram.Addr{dram.Addr(0x150_0000 + at%4096)},
				Companions: 1,
			})
		}
		if p.DoubleDoubleAt != 0 {
			controller.ScheduledMulti = append(controller.ScheduledMulti, &faults.ScheduledMulti{
				At:    p.DoubleDoubleAt,
				Masks: []dram.BitSet{scrambler.PhysRun(3, 2), scrambler.PhysRun(9, 2)},
				Addrs: []dram.Addr{0x100_2204, 0x1a4_0010},
			})
		}
		if cfg.Swap != nil {
			// §VI component swap: the faulty component manifests on the
			// controller node before the swap instant and on the recipient
			// node afterwards.
			swapped := &faults.Swapped{
				At:     cfg.Swap.At,
				Before: p.ControllerNode,
				After:  cfg.Swap.To,
				Inner:  controller,
			}
			get(p.ControllerNode).Sources = append(get(p.ControllerNode).Sources, swapped)
			get(cfg.Swap.To).Sources = append(get(cfg.Swap.To).Sources, swapped)
		} else {
			get(p.ControllerNode).Sources = append(get(p.ControllerNode).Sources, controller)
		}
	}

	// §VI stress test: retention faults accelerate with temperature on the
	// always-powered SoC-12 positions and their neighbours.
	if cfg.StressSoC12 {
		for _, n := range cfg.Topo.ScannedNodes() {
			if n.ID.SoC >= 11 && n.ID.SoC <= 13 {
				get(n.ID).Sources = append(get(n.ID).Sources, faults.NewThermalRetention())
			}
		}
	}

	if p.PathologicalNode != zero {
		pl := get(p.PathologicalNode)
		pl.Pathological = &faults.Pathological{
			Active:       faults.Burst{From: p.PathologicalFrom, To: timebase.T(timebase.StudySeconds)},
			AddrsPerIter: p.PathologicalAddrsPerIter,
		}
	}

	for _, w := range p.WeakNodes {
		pl := get(w.Node)
		pl.Sources = append(pl.Sources, &faults.WeakBit{
			Addr: w.Addr, Bit: w.Bit, LeakPerCheck: w.LeakPerCheck, Bursts: w.Bursts,
		})
	}

	for _, rs := range p.Recurring {
		site := &faults.RecurringSite{
			Addr:         rs.Addr,
			Cells:        cellsFor(scrambler, rs),
			ModeAffinity: scanner.FlipMode,
			RatePerHour:  rs.RatePerHour,
			Flux:         flux,
		}
		if rs.Counter {
			site.ModeAffinity = scanner.CounterMode
			site.CounterLowBits = true
			// Counter sites exercise the low bits (Table I's 0x000003c1
			// and 0x000016bb patterns).
			site.Cells = dram.BitSetOf(rs.PhysStart%3, rs.PhysStart%3+1)
		}
		if rs.Stress && controller != nil {
			site.Stress = controller
			site.CompanionProb = 0.68
		}
		if rs.Stress && cfg.Swap != nil {
			// The swap moves the whole DIMM: its strike-susceptible word
			// sites travel with the component, like the glitch source.
			swapped := &faults.Swapped{
				At:     cfg.Swap.At,
				Before: rs.Node,
				After:  cfg.Swap.To,
				Inner:  site,
			}
			get(rs.Node).Sources = append(get(rs.Node).Sources, swapped)
			get(cfg.Swap.To).Sources = append(get(cfg.Swap.To).Sources, swapped)
			continue
		}
		get(rs.Node).Sources = append(get(rs.Node).Sources, site)
	}

	for _, is := range p.Isolated {
		get(is.Node).Sources = append(get(is.Node).Sources, &faults.IsolatedStrike{
			At: is.At, BitCount: is.BitCount, Addr: is.Addr, PhysStart: is.PhysStart,
		})
	}

	return plans
}

// cellsFor derives a site's cell set from its physical run start.
func cellsFor(s *dram.Scrambler, rs RecurringSpec) dram.BitSet {
	n := rs.Cells
	if n <= 0 {
		n = 2
	}
	return s.PhysRun(rs.PhysStart, n)
}
