package campaign

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/stream"
)

// TestEventsMatchesStream: the iterator must deliver exactly the sequence
// the callback API delivers — same stats prologue, same faults in the
// same order, same sessions in the same order.
func TestEventsMatchesStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	ref := DefaultConfig(6)
	var wantFaults []extract.Fault
	var wantSessions []eventlog.Session
	wantStats := Stream(ref, StreamHandler{
		Fault:   func(f extract.Fault) { wantFaults = append(wantFaults, f) },
		Session: func(s eventlog.Session) { wantSessions = append(wantSessions, s) },
	})

	var gotFaults []extract.Fault
	var gotSessions []eventlog.Session
	var gotStats *stream.Stats
	sawPrologueFirst := true
	for ev, err := range Events(context.Background(), DefaultConfig(6)) {
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case stream.KindStats:
			if len(gotFaults) > 0 || len(gotSessions) > 0 || gotStats != nil {
				sawPrologueFirst = false
			}
			gotStats = ev.Stats
		case stream.KindFault:
			if len(gotSessions) > 0 {
				t.Fatal("fault delivered after a session")
			}
			gotFaults = append(gotFaults, ev.Fault)
		case stream.KindSession:
			gotSessions = append(gotSessions, ev.Session)
		default:
			t.Fatalf("unknown event kind %d", ev.Kind)
		}
	}
	if !sawPrologueFirst || gotStats == nil {
		t.Fatal("stats prologue missing or not first")
	}
	if gotStats.Faults != wantStats.Faults || gotStats.Sessions != wantStats.Sessions ||
		gotStats.RawLogs != wantStats.RawLogs || gotStats.AllocFails != wantStats.AllocFails {
		t.Fatalf("stats differ: %+v vs %+v", gotStats, wantStats)
	}
	if len(gotFaults) != len(wantFaults) {
		t.Fatalf("faults %d, want %d", len(gotFaults), len(wantFaults))
	}
	for i := range gotFaults {
		if gotFaults[i] != wantFaults[i] {
			t.Fatalf("fault %d differs", i)
		}
	}
	if len(gotSessions) != len(wantSessions) {
		t.Fatalf("sessions %d, want %d", len(gotSessions), len(wantSessions))
	}
	for i := range gotSessions {
		if gotSessions[i] != wantSessions[i] {
			t.Fatalf("session %d differs", i)
		}
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (the pool can take a few scheduler beats to unwind).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsCancelMidSimulation: cancelling while the worker pool is
// simulating must abort the campaign with ctx.Err() and wind every pool
// goroutine down before the iterator returns.
func TestEventsCancelMidSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	var sawErr error
	events := 0
	for ev, err := range Events(ctx, DefaultConfig(3)) {
		if err != nil {
			sawErr = err
			break
		}
		_ = ev
		events++
	}
	// The full campaign takes ~1s, so a 5ms cancel lands mid-simulation;
	// if this machine somehow finished first the test still must not leak.
	if sawErr != nil && !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", sawErr)
	}
	if sawErr == nil && events == 0 {
		t.Fatal("iterator ended with neither events nor an error")
	}
	waitForGoroutines(t, baseline)
}

// TestEventsCancelMidStream: cancelling between deliveries must surface
// ctx.Err() as the iterator's final pair instead of finishing the merge.
func TestEventsCancelMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faults := 0
	var sawErr error
	for ev, err := range Events(ctx, DefaultConfig(3)) {
		if err != nil {
			sawErr = err
			break
		}
		if ev.Kind == stream.KindFault {
			if faults++; faults == 100 {
				cancel()
			}
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", sawErr)
	}
	if faults != 100 {
		t.Fatalf("delivered %d faults after cancel, want exactly 100", faults)
	}
	waitForGoroutines(t, baseline)
}

// TestEventsEarlyBreak: breaking out of the range must stop the iterator
// without leaking; a fresh source must then deliver the full stream.
func TestEventsEarlyBreak(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	baseline := runtime.NumGoroutine()
	seen := 0
	for ev, err := range Events(context.Background(), DefaultConfig(3)) {
		if err != nil {
			t.Fatal(err)
		}
		_ = ev
		if seen++; seen == 10 {
			break
		}
	}
	if seen != 10 {
		t.Fatalf("consumed %d events, want 10", seen)
	}
	waitForGoroutines(t, baseline)
}
