package campaign

import (
	"context"
	"testing"

	"unprotected/internal/cluster"
)

// TestEventsAllocBudget is the alloc ceiling of the batched engine: a
// warm full campaign drain — simulation, extraction, merge and delivery —
// must stay within a fixed per-run budget plus a fractional per-event
// budget. Before the pooled/batched rework the engine allocated ~3.5
// times per event; the ceiling here pins the reworked path to under one
// allocation per fifty events so a regression of even a single per-event
// allocation site fails loudly.
func TestEventsAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := DefaultConfig(13)
	cfg.Topo = cluster.PaperTopology()
	for _, node := range cfg.Topo.Nodes {
		if node.ID.Blade > 3 && node.Role == cluster.Scanned {
			node.Role = cluster.Excluded
		}
	}
	cfg.Workers = 1
	ctx := context.Background()

	events := 0
	drain := func() {
		n := 0
		for ev, err := range Events(ctx, cfg) {
			if err != nil {
				t.Fatal(err)
			}
			_ = ev
			n++
		}
		events = n
	}
	drain() // warm the scratch and batch pools, learn the event count
	if events == 0 {
		t.Fatal("campaign delivered nothing")
	}

	allocs := testing.AllocsPerRun(3, drain)
	// Fixed costs: pool goroutines, per-node session slices, stats maps,
	// merge heaps. Per-event budget 0.02 ≈ one allocation per 50 events.
	budget := 2000 + float64(events)*0.02
	t.Logf("%d events, %.0f allocs/run (budget %.0f)", events, allocs, budget)
	if allocs > budget {
		t.Fatalf("campaign drain allocated %.0f times for %d events, budget %.0f",
			allocs, events, budget)
	}
}
