package campaign

import (
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/timebase"
)

func TestStressConfigKeepsSoC12Scanning(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	res := Run(StressConfig(11))

	// SoC-12 nodes scan the whole year (no power-off outage).
	hours := make(map[cluster.NodeID]float64)
	for _, s := range res.Sessions {
		hours[s.Host] += s.Duration().Hours()
	}
	soc12 := cluster.NodeID{Blade: 20, SoC: 12}
	if hours[soc12] < 3000 {
		t.Fatalf("stressed SoC-12 scanned only %v h", hours[soc12])
	}

	// Thermally accelerated retention faults appear on the hot positions
	// (11..13) — far more than the paper campaign's ambient background.
	hot, cold := 0, 0
	for _, f := range res.Faults {
		switch {
		case f.Node.SoC >= 11 && f.Node.SoC <= 13:
			hot++
		case f.Node == (cluster.NodeID{Blade: 2, SoC: 4}) ||
			f.Node == (cluster.NodeID{Blade: 4, SoC: 5}) ||
			f.Node == (cluster.NodeID{Blade: 58, SoC: 2}):
			// the calibrated fault nodes; not part of this comparison
		default:
			cold++
		}
	}
	if hot < 50 {
		t.Fatalf("stress test produced only %d faults on hot positions", hot)
	}
	if hot < 3*cold {
		t.Fatalf("hot positions (%d) should dominate cold background (%d)", hot, cold)
	}

	// Hot-position faults carry high temperatures once telemetry exists.
	var hotTemps, over55 int
	for _, f := range res.Faults {
		if f.Node.SoC == 12 && f.HasTemp() {
			hotTemps++
			if f.TempC > 55 {
				over55++
			}
		}
	}
	if hotTemps > 0 && float64(over55)/float64(hotTemps) < 0.5 {
		t.Fatalf("only %d/%d SoC-12 faults above 55°C", over55, hotTemps)
	}
}

func TestSwapExperimentFaultFollowsComponent(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	swapAt := timebase.FromTime(time.Date(2015, time.October, 15, 0, 0, 0, 0, time.UTC))
	healthy := cluster.NodeID{Blade: 40, SoC: 6}
	res := Run(SwapConfig(13, swapAt, healthy))

	controller := cluster.NodeID{Blade: 2, SoC: 4}
	var beforeOnA, afterOnA, beforeOnB, afterOnB int
	for _, f := range res.Faults {
		switch f.Node {
		case controller:
			if f.FirstAt < swapAt {
				beforeOnA++
			} else {
				afterOnA++
			}
		case healthy:
			if f.FirstAt < swapAt {
				beforeOnB++
			} else {
				afterOnB++
			}
		}
	}
	// The errors follow the component: node A degrades only before the
	// swap, node B only after.
	if beforeOnA < 1000 {
		t.Fatalf("controller node logged only %d faults before the swap", beforeOnA)
	}
	if afterOnB < 1000 {
		t.Fatalf("recipient node logged only %d faults after the swap", afterOnB)
	}
	if afterOnA > beforeOnA/100 {
		t.Fatalf("controller node still degrading after the swap: %d faults", afterOnA)
	}
	if beforeOnB > 5 {
		t.Fatalf("recipient node was not healthy before the swap: %d faults", beforeOnB)
	}
}
