package campaign

// kwayMerge deterministically merges k individually sorted streams into
// one ordered sequence, invoking emit once per element. It replaces the
// old buffer-everything-then-sort step of the campaign: per-node streams
// arrive already sorted from the workers, so the global order costs
// O(n log k) comparisons and no merged copy is ever materialized — emit
// observes elements one at a time.
//
// cmp must be a total order consistent with each stream's internal order.
// When two stream heads compare equal, the lower stream index wins, so the
// merge is stable across runs even for equal elements. Exhausted streams
// are released as soon as their last element is emitted.
func kwayMerge[T any](streams [][]T, cmp func(a, b *T) int, emit func(T)) {
	h := make([]mergeCursor[T], 0, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			h = append(h, mergeCursor[T]{items: s, idx: i})
		}
	}
	less := func(a, b *mergeCursor[T]) bool {
		if c := cmp(&a.items[a.pos], &b.items[b.pos]); c != 0 {
			return c < 0
		}
		return a.idx < b.idx
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
	for len(h) > 0 {
		top := &h[0]
		emit(top.items[top.pos])
		top.pos++
		if top.pos == len(top.items) {
			h[0] = h[len(h)-1]
			h[len(h)-1] = mergeCursor[T]{} // drop the stale copy's reference
			h = h[:len(h)-1]
		}
		siftDown(h, 0, less)
	}
}

// mergeCursor is one stream's read position in the merge heap.
type mergeCursor[T any] struct {
	items []T
	pos   int
	idx   int // original stream index, the deterministic tiebreak
}

// siftDown restores the min-heap property below node i.
func siftDown[T any](h []mergeCursor[T], i int, less func(a, b *mergeCursor[T]) bool) {
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < len(h) && less(&h[left], &h[min]) {
			min = left
		}
		if right < len(h) && less(&h[right], &h[min]) {
			min = right
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
