package campaign

import (
	"reflect"
	"sort"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
)

// --- streaming campaign tests ---
// (k-way merge unit tests live with the merge in internal/kway)

// legacyCollectAll is the pre-streaming engine: simulate every node
// sequentially, buffer every run, classify once and globally sort. It is
// the reference the streaming pipeline must reproduce byte for byte.
func legacyCollectAll(cfg *Config) *Result {
	if cfg.Topo == nil {
		cfg.Topo = cluster.PaperTopology()
	}
	plans := cfg.Profile.build(cfg)
	res := &Result{Cfg: cfg, RawLogsByNode: make(map[cluster.NodeID]int64)}
	var allRuns []extract.RawRun
	// One shared scratch across every node, like a single worker would
	// use: the runs are copied out below before the next node overwrites
	// the buffer, so reuse here doubles as a reuse-safety check.
	sc := new(nodeScratch)
	for _, n := range cfg.Topo.ScannedNodes() {
		out := simulateNode(cfg, n, plans[n.ID], sc)
		if !out.excluded {
			allRuns = append(allRuns, out.runs...)
		}
		res.Sessions = append(res.Sessions, out.sessions...)
		res.RawLogs += out.rawLogs
		if out.rawLogs > 0 {
			res.RawLogsByNode[out.node] += out.rawLogs
		}
		res.AllocFails += out.allocFails
	}
	res.Faults = extract.Faults(allRuns)
	extract.SortFaults(res.Faults)
	sortSessionsLegacy(res.Sessions)
	return res
}

func sortSessionsLegacy(ss []eventlog.Session) {
	sort.Slice(ss, func(i, j int) bool {
		return eventlog.CompareSessions(&ss[i], &ss[j]) < 0
	})
}

// assertSameResult compares every dataset field of two campaign results.
func assertSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("%s: fault counts %d vs %d", label, len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("%s: fault %d differs: %+v vs %+v", label, i, a.Faults[i], b.Faults[i])
		}
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("%s: session counts %d vs %d", label, len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("%s: session %d differs", label, i)
		}
	}
	if a.RawLogs != b.RawLogs {
		t.Fatalf("%s: raw logs %d vs %d", label, a.RawLogs, b.RawLogs)
	}
	if !reflect.DeepEqual(a.RawLogsByNode, b.RawLogsByNode) {
		t.Fatalf("%s: per-node raw logs differ", label)
	}
	if a.AllocFails != b.AllocFails {
		t.Fatalf("%s: alloc fails %d vs %d", label, a.AllocFails, b.AllocFails)
	}
}

func TestStreamMatchesCollectAllAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	const seed = 21
	legacy := legacyCollectAll(DefaultConfig(seed))

	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig(seed)
		cfg.Workers = workers
		got := Run(cfg)
		assertSameResult(t, "legacy vs streamed", legacy, got)
	}
}

func TestStreamEmitsCanonicalOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := DefaultConfig(9)
	cfg.Workers = 8
	var (
		prevFault   *extract.Fault
		prevSession *eventlog.Session
		faults      int
		sessions    int
	)
	st := Stream(cfg, StreamHandler{
		Fault: func(f extract.Fault) {
			if prevFault != nil && extract.Compare(prevFault, &f) >= 0 {
				t.Fatalf("fault %d out of order: %+v then %+v", faults, *prevFault, f)
			}
			cp := f
			prevFault = &cp
			faults++
		},
		Session: func(s eventlog.Session) {
			if prevSession != nil && eventlog.CompareSessions(prevSession, &s) >= 0 {
				t.Fatalf("session %d out of order", sessions)
			}
			cp := s
			prevSession = &cp
			sessions++
		},
	})
	if faults == 0 || sessions == 0 {
		t.Fatal("stream delivered nothing")
	}
	if faults != st.Faults || sessions != st.Sessions {
		t.Fatalf("stats (%d, %d) disagree with delivery (%d, %d)",
			st.Faults, st.Sessions, faults, sessions)
	}
	if st.RawLogs == 0 || len(st.RawLogsByNode) == 0 || st.AllocFails == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestStreamBeginPrecedesDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	var announced *Stats
	delivered := 0
	Stream(DefaultConfig(4), StreamHandler{
		Begin: func(st *Stats) {
			if delivered != 0 {
				t.Fatal("Begin after first delivery")
			}
			announced = st
		},
		Fault: func(extract.Fault) { delivered++ },
	})
	if announced == nil || announced.Faults != delivered {
		t.Fatalf("Begin announced %v, delivered %d", announced, delivered)
	}
}

func TestStreamNilCallbacks(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	st := Stream(DefaultConfig(4), StreamHandler{})
	if st.Faults == 0 || st.Sessions == 0 || st.RawLogs == 0 {
		t.Fatalf("stats empty with nil callbacks: %+v", st)
	}
}
