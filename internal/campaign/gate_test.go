package campaign

import (
	"context"
	"errors"
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/stream"
)

// gateTestConfig restricts the paper config to two blades so gated runs
// stay fast enough to repeat.
func gateTestConfig(seed uint64) *Config {
	cfg := DefaultConfig(seed)
	for _, n := range cfg.Topo.Nodes {
		if n.ID.Blade > 2 && n.Role == cluster.Scanned {
			n.Role = cluster.Excluded
		}
	}
	return cfg
}

// collectAll drains a campaign into slices.
func collectAll(t *testing.T, cfg *Config) ([]extract.Fault, []eventlog.Session) {
	t.Helper()
	var faults []extract.Fault
	var sessions []eventlog.Session
	for ev, err := range Events(context.Background(), cfg) {
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case stream.KindFault:
			faults = append(faults, ev.Fault)
		case stream.KindSession:
			sessions = append(sessions, ev.Session)
		}
	}
	return faults, sessions
}

// TestSweepGateEquivalence: a shared gate only schedules — the merged
// stream must be identical with no gate, a wide gate, and a serializing
// gate of one token.
func TestSweepGateEquivalence(t *testing.T) {
	wantFaults, wantSessions := collectAll(t, gateTestConfig(11))
	if len(wantFaults) == 0 || len(wantSessions) == 0 {
		t.Fatal("ungated reference campaign produced no stream")
	}
	for _, tokens := range []int{1, 2, 16} {
		cfg := gateTestConfig(11)
		cfg.Gate = make(chan struct{}, tokens)
		cfg.Workers = 4
		faults, sessions := collectAll(t, cfg)
		if len(faults) != len(wantFaults) || len(sessions) != len(wantSessions) {
			t.Fatalf("gate cap %d: %d/%d deliveries, want %d/%d",
				tokens, len(faults), len(sessions), len(wantFaults), len(wantSessions))
		}
		for i := range faults {
			if faults[i] != wantFaults[i] {
				t.Fatalf("gate cap %d: fault %d differs", tokens, i)
			}
		}
		for i := range sessions {
			if sessions[i] != wantSessions[i] {
				t.Fatalf("gate cap %d: session %d differs", tokens, i)
			}
		}
	}
}

// TestSweepGateTokensReleased: campaigns sharing one gate must return
// every token — after a completed run AND after a cancelled run — or the
// next campaign on the same gate would starve. A leak shows up here as a
// test timeout.
func TestSweepGateTokensReleased(t *testing.T) {
	gate := make(chan struct{}, 1)

	first := gateTestConfig(3)
	first.Gate = gate
	first.Workers = 3
	if faults, _ := collectAll(t, first); len(faults) == 0 {
		t.Fatal("first gated campaign produced no faults")
	}

	// Cancel mid-simulation; the skip-on-done acquire path must not hold
	// a token either.
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	cancelled := gateTestConfig(4)
	cancelled.Gate = gate
	cancelled.Workers = 3
	var lastErr error
	for _, err := range Events(ctx, cancelled) {
		lastErr = err
	}
	timer.Stop()
	cancel()
	if lastErr != nil && !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("cancelled campaign ended with %v", lastErr)
	}

	// The full token budget must be available again.
	second := gateTestConfig(3)
	second.Gate = gate
	second.Workers = 3
	if faults, _ := collectAll(t, second); len(faults) == 0 {
		t.Fatal("second gated campaign produced no faults (token leaked?)")
	}
	if len(gate) != 0 {
		t.Fatalf("%d tokens still held after both campaigns", len(gate))
	}
}
