package sched

import (
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/rng"
	"unprotected/internal/timebase"
)

func TestNodeWindowsBasicInvariants(t *testing.T) {
	topo := cluster.PaperTopology()
	g := NewGenerator(PaperProfile())
	node := topo.Node(cluster.NodeID{Blade: 20, SoC: 5})
	ws := g.NodeWindows(node, rng.New(3))
	if len(ws) < 100 {
		t.Fatalf("only %d windows in 13 months", len(ws))
	}
	var last timebase.T
	for _, w := range ws {
		if w.From < 0 || w.To > timebase.T(timebase.StudySeconds) {
			t.Fatalf("window [%v, %v] outside study", w.From, w.To)
		}
		if w.To <= w.From {
			t.Fatal("empty window emitted")
		}
		if w.From < last {
			t.Fatal("windows overlap or out of order")
		}
		if w.Duration() < PaperProfile().MinWindow {
			t.Fatalf("window shorter than MinWindow: %v", w.Duration())
		}
		last = w.To
	}
}

func TestIdleFractionMatchesCalendar(t *testing.T) {
	p := PaperProfile()
	idle := p.IdleFraction()
	if idle < 0.40 || idle > 0.60 {
		t.Fatalf("calendar idle fraction %v, want ~0.5", idle)
	}
	// Empirical idle time of one node should be near the calendar value.
	topo := cluster.PaperTopology()
	g := NewGenerator(p)
	var total time.Duration
	for seed := uint64(0); seed < 8; seed++ {
		node := topo.Node(cluster.NodeID{Blade: 25, SoC: 5})
		for _, w := range g.NodeWindows(node, rng.New(seed)) {
			total += w.Duration()
		}
	}
	frac := total.Hours() / 8 / (float64(timebase.StudySeconds) / 3600)
	if frac < idle-0.07 || frac > idle+0.07 {
		t.Fatalf("empirical idle %v vs calendar %v", frac, idle)
	}
}

func TestWindowsRespectOutages(t *testing.T) {
	topo := cluster.PaperTopology()
	g := NewGenerator(PaperProfile())
	// SoC 12 nodes are powered off from June 2015.
	node := topo.Node(cluster.NodeID{Blade: 15, SoC: 12})
	off := node.Outages[0]
	ws := g.NodeWindows(node, rng.New(4))
	for _, w := range ws {
		if w.From < off.To && w.To > off.From {
			t.Fatalf("window [%v,%v] overlaps outage [%v,%v]", w.From, w.To, off.From, off.To)
		}
	}
}

func TestOutageTruncationMarksHardReboot(t *testing.T) {
	node := &cluster.Node{
		ID:   cluster.NodeID{Blade: 1, SoC: 2},
		Role: cluster.Scanned,
		Outages: []cluster.Outage{
			{From: 5000, To: 9000, Reason: "test"},
		},
	}
	w := Window{From: 1000, To: 7000}
	segs := appendClipped(nil, node, w, time.Minute)
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	if segs[0].To != 5000 || !segs[0].HardReboot {
		t.Fatalf("leading segment should end at outage and be a hard stop: %+v", segs[0])
	}
	// A window spanning the whole outage splits in two.
	segs = appendClipped(segs[:0], node, Window{From: 1000, To: 12000}, time.Minute)
	if len(segs) != 2 || segs[1].From != 9000 {
		t.Fatalf("split segments: %+v", segs)
	}
}

func TestNonScannedNodesGetNoWindows(t *testing.T) {
	topo := cluster.PaperTopology()
	g := NewGenerator(PaperProfile())
	login := topo.Node(cluster.NodeID{Blade: 1, SoC: 1})
	if ws := g.NodeWindows(login, rng.New(5)); ws != nil {
		t.Fatal("login node scheduled for scanning")
	}
}

func TestVacationMonthsScanMore(t *testing.T) {
	topo := cluster.PaperTopology()
	g := NewGenerator(PaperProfile())
	node := topo.Node(cluster.NodeID{Blade: 30, SoC: 6})
	perMonth := make(map[time.Month]float64)
	for seed := uint64(10); seed < 20; seed++ {
		for _, w := range g.NodeWindows(node, rng.New(seed)) {
			// Attribute whole window to its start month (windows are short).
			perMonth[w.From.Month()] += w.Duration().Hours()
		}
	}
	if perMonth[time.August] <= perMonth[time.May] {
		t.Fatalf("August scanning (%v h) should exceed May (%v h)",
			perMonth[time.August], perMonth[time.May])
	}
	if perMonth[time.December] <= perMonth[time.November] {
		t.Fatalf("December scanning (%v h) should exceed November (%v h)",
			perMonth[time.December], perMonth[time.November])
	}
}
