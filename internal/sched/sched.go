// Package sched models the job scheduler that gates the memory scanner.
//
// The scanner only runs while a node is idle (§II-B): the scheduler's
// epilogue script starts it when a job finishes and the prologue script
// SIGTERMs it when a new job is placed. Scanning time therefore mirrors the
// *complement* of machine utilization. The paper's Fig 9 shows intense
// scanning during academic vacations (August, September, December) and
// less from April to July — so the generative model here is a monthly
// utilization calendar plus a per-node busy/idle renewal process.
package sched

import (
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/rng"
	"unprotected/internal/timebase"
)

// Window is a scanner session opportunity: a maximal idle interval on one
// node, clipped against the node's outages.
type Window struct {
	From, To timebase.T
	// HardReboot marks windows that ended with a manual reboot instead of
	// a prologue SIGTERM, so the scanner's END record was never written.
	HardReboot bool
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.To.Sub(w.From) }

// Profile is the workload calendar.
type Profile struct {
	// BusyFrac maps calendar months (time.January..) to the fraction of
	// time a node spends running jobs in that month.
	BusyFrac map[time.Month]float64
	// CycleHours is the mean duration of one busy+idle cycle.
	CycleHours float64
	// HardRebootProb is the chance an idle window ends in a hard reboot.
	HardRebootProb float64
	// MinWindow drops idle windows too short for the scanner to even
	// allocate memory.
	MinWindow time.Duration
}

// PaperProfile reproduces the study's seasonality: vacations (Aug, Sep,
// Dec) leave the machine mostly idle; the end of the academic year
// (Apr–Jul) keeps it busy. Average idle fraction ≈ 0.48, matching the
// ~4.2M node-hours over 923 nodes (≈4,500 h/node, "most nodes got about
// 5000 hours").
func PaperProfile() Profile {
	return Profile{
		BusyFrac: map[time.Month]float64{
			time.January:   0.50,
			time.February:  0.45,
			time.March:     0.53,
			time.April:     0.61,
			time.May:       0.63,
			time.June:      0.60,
			time.July:      0.56,
			time.August:    0.18,
			time.September: 0.38,
			time.October:   0.60,
			time.November:  0.64,
			time.December:  0.22,
		},
		CycleHours:     14,
		HardRebootProb: 0.012,
		MinWindow:      5 * time.Minute,
	}
}

// busyFracAt returns the calendar utilization at t.
func (p Profile) busyFracAt(t timebase.T) float64 {
	f, ok := p.BusyFrac[t.Month()]
	if !ok {
		return 0.5
	}
	return f
}

// Generator produces idle windows for nodes.
type Generator struct {
	Profile Profile
	From    timebase.T
	To      timebase.T
}

// NewGenerator covers the whole study window with the given profile.
func NewGenerator(p Profile) *Generator {
	return &Generator{Profile: p, From: 0, To: timebase.T(timebase.StudySeconds)}
}

// NodeWindows simulates the busy/idle renewal process for one node and
// returns its scanner windows in time order. Windows are clipped against
// the node's outages; an outage interrupting a window truncates it (the
// scanner dies with the power, logging no END — accounted as a hard
// reboot, matching the paper's conservative 0-hour rule).
func (g *Generator) NodeWindows(node *cluster.Node, r *rng.Stream) []Window {
	return g.AppendNodeWindows(nil, node, r)
}

// AppendNodeWindows is NodeWindows appending into dst, so a caller
// simulating many nodes (the campaign worker pool) can reuse one backing
// buffer across nodes instead of growing a fresh slice per node. The
// windows appended for a node are identical to a standalone NodeWindows
// call; dst's existing contents are preserved.
func (g *Generator) AppendNodeWindows(dst []Window, node *cluster.Node, r *rng.Stream) []Window {
	if node.Role != cluster.Scanned {
		return dst
	}
	t := g.From
	// Desynchronize nodes: a random initial busy phase.
	t += timebase.T(r.Float64() * g.Profile.CycleHours * 3600)
	for t < g.To {
		busy := g.Profile.busyFracAt(t)
		cycle := g.Profile.CycleHours * 3600
		busyDur := timebase.T(r.Exp(1 / (busy * cycle)))
		idleDur := timebase.T(r.Exp(1 / ((1 - busy) * cycle)))
		idleFrom := t + busyDur
		idleTo := idleFrom + idleDur
		if idleTo > g.To {
			idleTo = g.To
		}
		if idleFrom >= g.To {
			break
		}
		hard := r.Bernoulli(g.Profile.HardRebootProb)
		dst = appendClipped(dst, node, Window{From: idleFrom, To: idleTo, HardReboot: hard}, g.Profile.MinWindow)
		t = idleTo
	}
	return dst
}

// appendClipped intersects a window with the node's availability, splitting
// around outages, and appends the surviving segments to dst. Segments cut
// short by an outage are marked HardReboot. The split works in small
// stack scratch (an outage turns one segment into at most two, and nodes
// carry a handful of outages at most), so clipping allocates nothing
// beyond dst's own growth — it runs once per busy/idle cycle of every
// node, which made the old allocate-a-slice-per-call shape a top
// campaign allocation site.
func appendClipped(dst []Window, node *cluster.Node, w Window, minDur time.Duration) []Window {
	var bufA, bufB [8]Window
	segments := append(bufA[:0], w)
	spare := bufB[:0]
	for _, o := range node.Outages {
		next := spare[:0]
		for _, s := range segments {
			// No overlap.
			if o.To <= s.From || o.From >= s.To {
				next = append(next, s)
				continue
			}
			if o.From > s.From {
				// Leading segment survives but is killed by the outage.
				next = append(next, Window{From: s.From, To: o.From, HardReboot: true})
			}
			if o.To < s.To {
				next = append(next, Window{From: o.To, To: s.To, HardReboot: s.HardReboot})
			}
		}
		segments, spare = next, segments
	}
	for _, s := range segments {
		if s.Duration() >= minDur {
			dst = append(dst, s)
		}
	}
	return dst
}

// IdleFraction estimates the profile's long-run idle fraction by averaging
// the monthly calendar over the study window, weighted by days per month.
func (p Profile) IdleFraction() float64 {
	var idle, days float64
	for d := 0; d < timebase.StudyDays; d++ {
		m := timebase.MonthOfDay(d)
		idle += 1 - p.BusyFrac[m]
		days++
	}
	return idle / days
}
