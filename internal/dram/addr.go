package dram

import "fmt"

// Addr is a word index within a node's scanned allocation. A 3 GB
// allocation holds 805,306,368 32-bit words, comfortably within uint32.
type Addr uint32

// WordsOf returns how many scannable words an allocation of n bytes holds.
func WordsOf(allocBytes int64) int64 { return allocBytes / 4 }

// scannerBase is the virtual address at which the scanner's allocation is
// mapped; fixed so logs are reproducible. The exact value carries no
// semantics — it only has to look like a user-space mmap region.
const scannerBase uint64 = 0x7f2a_0000_0000

// VirtAddr returns the virtual address of a scanned word, as recorded in
// ERROR log entries.
func VirtAddr(a Addr) uint64 { return scannerBase + uint64(a)*4 }

// AddrOfVirt inverts VirtAddr.
func AddrOfVirt(v uint64) (Addr, error) {
	if v < scannerBase || (v-scannerBase)%4 != 0 {
		return 0, fmt.Errorf("dram: %#x is not a scanned word address", v)
	}
	return Addr((v - scannerBase) / 4), nil
}

// PageBytes is the OS page size on the prototype.
const PageBytes = 4096

// PhysPage returns the physical page number recorded in ERROR log entries.
// The prototype's kernel maps the scanner's contiguous allocation onto
// physical pages with a fixed node-dependent offset plus a light
// interleave; the exact function is immaterial to the analyses (they only
// group by page identity), so a deterministic mix is used.
func PhysPage(node uint64, a Addr) uint64 {
	virt := VirtAddr(a)
	vpn := virt / PageBytes
	return (vpn ^ (mix64(node) & 0xfffff)) & 0xffffffff
}

// PageOf returns the physical page of an address for retirement decisions.
func PageOf(node uint64, a Addr) uint64 { return PhysPage(node, a) }

// WordsPerPage is how many scanned words share one page.
const WordsPerPage = PageBytes / 4
