package dram

import (
	"testing"
	"testing/quick"

	"unprotected/internal/rng"
)

func TestBitSetBasics(t *testing.T) {
	b := BitSetOf(0, 5, 31)
	if b.Count() != 3 {
		t.Fatalf("count %d", b.Count())
	}
	pos := b.Positions()
	if len(pos) != 3 || pos[0] != 0 || pos[1] != 5 || pos[2] != 31 {
		t.Fatalf("positions %v", pos)
	}
	if BitSetOf(-1, 32).Count() != 0 {
		t.Fatal("out-of-range positions should be ignored")
	}
	if s := BitSetOf(1, 9, 10).String(); s != "{1,9,10}" {
		t.Fatalf("string %q", s)
	}
}

func TestBitSetConsecutive(t *testing.T) {
	cases := []struct {
		bits []int
		want bool
	}{
		{nil, true},
		{[]int{7}, true},
		{[]int{3, 4}, true},
		{[]int{3, 5}, false},
		{[]int{9, 10, 11}, true},
		{[]int{0, 1, 2, 3, 4, 5, 6, 7}, true},
		{[]int{0, 2, 3}, false},
		{[]int{30, 31}, true},
	}
	for _, c := range cases {
		if got := BitSetOf(c.bits...).Consecutive(); got != c.want {
			t.Errorf("Consecutive(%v) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestBitSetGaps(t *testing.T) {
	// Bits {1, 5, 17}: gaps of 3 and 11 (paper max), mean 7.
	b := BitSetOf(1, 5, 17)
	if g := b.MaxGap(); g != 11 {
		t.Fatalf("max gap %d, want 11", g)
	}
	if g := b.MeanGap(); g != 7 {
		t.Fatalf("mean gap %v, want 7", g)
	}
	if BitSetOf(4).MaxGap() != 0 || BitSetOf().MeanGap() != 0 {
		t.Fatal("degenerate gaps should be 0")
	}
}

func TestBitSetCountPositionsProperty(t *testing.T) {
	f := func(v uint32) bool {
		b := BitSet(v)
		pos := b.Positions()
		if len(pos) != b.Count() {
			return false
		}
		var rebuilt BitSet
		for _, p := range pos {
			rebuilt |= 1 << uint(p)
		}
		return rebuilt == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerBijection(t *testing.T) {
	s := NewScrambler()
	seen := make(map[int]bool)
	for p := 0; p < WordBits; p++ {
		l := s.ToLogical(p)
		if l < 0 || l >= WordBits || seen[l] {
			t.Fatalf("not a bijection at phys %d -> %d", p, l)
		}
		seen[l] = true
		if s.ToPhysical(l) != p {
			t.Fatalf("inverse broken at %d", p)
		}
	}
}

func TestScramblerAdjacencyStats(t *testing.T) {
	// Table I statistics: a minority of multi-bit errors are logically
	// consecutive; mean in-word distance ~3-4; max gap 11.
	s := NewScrambler()
	frac, mean, max := s.AdjacencyStats()
	if frac < adjFracConsecLo || frac > adjFracConsecHi {
		t.Fatalf("consecutive fraction %v outside [%v, %v]", frac, adjFracConsecLo, adjFracConsecHi)
	}
	if mean < adjMeanDiffLo || mean > adjMeanDiffHi {
		t.Fatalf("mean diff %v outside window", mean)
	}
	if max > adjMaxDiff {
		t.Fatalf("max diff %d > %d", max, adjMaxDiff)
	}
}

func TestScramblerDeterministic(t *testing.T) {
	a, b := NewScrambler(), NewScrambler()
	for p := 0; p < WordBits; p++ {
		if a.ToLogical(p) != b.ToLogical(p) {
			t.Fatal("scrambler search is not deterministic")
		}
	}
}

func TestPhysRun(t *testing.T) {
	s := NewScrambler()
	for k := 1; k <= 9; k++ {
		set := s.PhysRun(3, k)
		if set.Count() != k {
			t.Fatalf("PhysRun(3,%d) has %d bits", k, set.Count())
		}
	}
	if s.PhysRun(30, 5).Count() != 5 {
		t.Fatal("wrap-around run broken")
	}
}

func TestPolarityFraction(t *testing.T) {
	p := NewPolarityMap(99)
	trueCells := 0
	total := 0
	for node := uint64(0); node < 20; node++ {
		for addr := Addr(0); addr < 500; addr += 7 {
			for bit := 0; bit < WordBits; bit++ {
				total++
				if p.IsTrueCell(node, addr, bit) {
					trueCells++
				}
			}
		}
	}
	frac := float64(trueCells) / float64(total)
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("true-cell fraction %v, want ~0.90", frac)
	}
}

func TestPolarityDeterministic(t *testing.T) {
	p1 := NewPolarityMap(7)
	p2 := NewPolarityMap(7)
	for bit := 0; bit < WordBits; bit++ {
		if p1.IsTrueCell(3, 1234, bit) != p2.IsTrueCell(3, 1234, bit) {
			t.Fatal("polarity not deterministic")
		}
	}
}

func TestDischargeObserved(t *testing.T) {
	// A charged true cell storing 1 discharges to 0.
	cells := BitSetOf(4)
	truePol := BitSetOf(4)
	corrupted, o2z, z2o := DischargeObserved(0xFFFFFFFF, cells, truePol)
	if corrupted != 0xFFFFFFEF || o2z.Count() != 1 || z2o != 0 {
		t.Fatalf("true-cell discharge: %08x %v %v", corrupted, o2z, z2o)
	}
	// The same cell storing 0 is already discharged: no effect.
	corrupted, o2z, z2o = DischargeObserved(0x00000000, cells, truePol)
	if corrupted != 0 || o2z != 0 || z2o != 0 {
		t.Fatal("discharged true cell should be unobservable")
	}
	// An anti cell storing 0 is charged; discharge flips it to 1.
	corrupted, o2z, z2o = DischargeObserved(0x00000000, cells, 0)
	if corrupted != 0x10 || z2o.Count() != 1 || o2z != 0 {
		t.Fatalf("anti-cell discharge: %08x", corrupted)
	}
	// An anti cell storing 1 is already discharged.
	corrupted, _, _ = DischargeObserved(0xFFFFFFFF, cells, 0)
	if corrupted != 0xFFFFFFFF {
		t.Fatal("discharged anti cell should be unobservable")
	}
}

func TestAddrMapping(t *testing.T) {
	a := Addr(12345)
	v := VirtAddr(a)
	back, err := AddrOfVirt(v)
	if err != nil || back != a {
		t.Fatalf("round trip: %v %v", back, err)
	}
	if _, err := AddrOfVirt(3); err == nil {
		t.Fatal("bogus virtual address accepted")
	}
	if WordsOf(3<<30) != 805306368 {
		t.Fatalf("3GB words = %d", WordsOf(3<<30))
	}
	// Physical pages differ across nodes for the same address.
	if PhysPage(1, a) == PhysPage(2, a) {
		t.Fatal("page mapping should be node-dependent")
	}
}

func TestDeviceStrikeAndScan(t *testing.T) {
	dev := NewDevice(1, 1024, nil)
	dev.Fill(0xFFFFFFFF)
	// Find a word with a true-polarity bit so the strike is observable.
	var addr Addr
	var bit int
	found := false
	for a := Addr(0); a < 64 && !found; a++ {
		for b := 0; b < WordBits; b++ {
			if dev.Polarity.IsTrueCell(1, a, b) {
				addr, bit, found = a, b, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no true cell found (polarity broken)")
	}
	flipped := dev.Strike(addr, BitSetOf(bit))
	if flipped.Count() != 1 {
		t.Fatalf("strike flipped %v", flipped)
	}
	if dev.Read(addr) == 0xFFFFFFFF {
		t.Fatal("storage not mutated")
	}
	// A write recharges the cells.
	dev.Write(addr, 0xFFFFFFFF)
	if dev.Read(addr) != 0xFFFFFFFF {
		t.Fatal("write did not restore")
	}
}

func TestDeviceWeakCellTick(t *testing.T) {
	dev := NewDevice(2, 128, nil)
	dev.Fill(0xFFFFFFFF)
	var bit int = -1
	for b := 0; b < WordBits; b++ {
		if dev.Polarity.IsTrueCell(2, 7, b) {
			bit = b
			break
		}
	}
	if bit < 0 {
		t.Fatal("no true cell in word 7")
	}
	w := &WeakCell{Addr: 7, Bit: bit, LeakProb: 1.0, Active: false}
	dev.AddWeakCell(w)
	r := rng.New(3)
	if changed := dev.Tick(r); len(changed) != 0 {
		t.Fatal("inactive weak cell leaked")
	}
	w.Active = true
	changed := dev.Tick(r)
	if len(changed) != 1 || changed[0] != 7 {
		t.Fatalf("active weak cell: changed=%v", changed)
	}
	if len(dev.WeakCells()) != 1 {
		t.Fatal("weak cell registry")
	}
}

func TestDeviceBounds(t *testing.T) {
	dev := NewDevice(3, 10, nil)
	if err := dev.CheckBounds(9); err != nil {
		t.Fatal(err)
	}
	if err := dev.CheckBounds(10); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
	if dev.Strike(100, BitSetOf(1)) != 0 {
		t.Fatal("out-of-range strike should be a no-op")
	}
}
