package dram

import (
	"testing"
	"testing/quick"

	"unprotected/internal/rng"
)

func TestBitSetBasics(t *testing.T) {
	b := BitSetOf(0, 5, 31)
	if b.Count() != 3 {
		t.Fatalf("count %d", b.Count())
	}
	pos := b.Positions()
	if len(pos) != 3 || pos[0] != 0 || pos[1] != 5 || pos[2] != 31 {
		t.Fatalf("positions %v", pos)
	}
	if BitSetOf(-1, 32).Count() != 0 {
		t.Fatal("out-of-range positions should be ignored")
	}
	if s := BitSetOf(1, 9, 10).String(); s != "{1,9,10}" {
		t.Fatalf("string %q", s)
	}
}

func TestBitSetConsecutive(t *testing.T) {
	cases := []struct {
		bits []int
		want bool
	}{
		{nil, true},
		{[]int{7}, true},
		{[]int{3, 4}, true},
		{[]int{3, 5}, false},
		{[]int{9, 10, 11}, true},
		{[]int{0, 1, 2, 3, 4, 5, 6, 7}, true},
		{[]int{0, 2, 3}, false},
		{[]int{30, 31}, true},
	}
	for _, c := range cases {
		if got := BitSetOf(c.bits...).Consecutive(); got != c.want {
			t.Errorf("Consecutive(%v) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestBitSetGaps(t *testing.T) {
	// Bits {1, 5, 17}: gaps of 3 and 11 (paper max), mean 7.
	b := BitSetOf(1, 5, 17)
	if g := b.MaxGap(); g != 11 {
		t.Fatalf("max gap %d, want 11", g)
	}
	if g := b.MeanGap(); g != 7 {
		t.Fatalf("mean gap %v, want 7", g)
	}
	if BitSetOf(4).MaxGap() != 0 || BitSetOf().MeanGap() != 0 {
		t.Fatal("degenerate gaps should be 0")
	}
}

func TestBitSetCountPositionsProperty(t *testing.T) {
	f := func(v uint32) bool {
		b := BitSet(v)
		pos := b.Positions()
		if len(pos) != b.Count() {
			return false
		}
		var rebuilt BitSet
		for _, p := range pos {
			rebuilt |= 1 << uint(p)
		}
		return rebuilt == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerBijection(t *testing.T) {
	s := NewScrambler()
	seen := make(map[int]bool)
	for p := 0; p < WordBits; p++ {
		l := s.ToLogical(p)
		if l < 0 || l >= WordBits || seen[l] {
			t.Fatalf("not a bijection at phys %d -> %d", p, l)
		}
		seen[l] = true
		if s.ToPhysical(l) != p {
			t.Fatalf("inverse broken at %d", p)
		}
	}
}

func TestScramblerAdjacencyStats(t *testing.T) {
	// Table I statistics: a minority of multi-bit errors are logically
	// consecutive; mean in-word distance ~3-4; max gap 11.
	s := NewScrambler()
	frac, mean, max := s.AdjacencyStats()
	if frac < adjFracConsecLo || frac > adjFracConsecHi {
		t.Fatalf("consecutive fraction %v outside [%v, %v]", frac, adjFracConsecLo, adjFracConsecHi)
	}
	if mean < adjMeanDiffLo || mean > adjMeanDiffHi {
		t.Fatalf("mean diff %v outside window", mean)
	}
	if max > adjMaxDiff {
		t.Fatalf("max diff %d > %d", max, adjMaxDiff)
	}
}

func TestScramblerDeterministic(t *testing.T) {
	a, b := NewScrambler(), NewScrambler()
	for p := 0; p < WordBits; p++ {
		if a.ToLogical(p) != b.ToLogical(p) {
			t.Fatal("scrambler search is not deterministic")
		}
	}
}

func TestPhysRun(t *testing.T) {
	s := NewScrambler()
	for k := 1; k <= 9; k++ {
		set := s.PhysRun(3, k)
		if set.Count() != k {
			t.Fatalf("PhysRun(3,%d) has %d bits", k, set.Count())
		}
	}
	if s.PhysRun(30, 5).Count() != 5 {
		t.Fatal("wrap-around run broken")
	}
}

func TestPolarityFraction(t *testing.T) {
	p := NewPolarityMap(99)
	trueCells := 0
	total := 0
	for node := uint64(0); node < 20; node++ {
		for addr := Addr(0); addr < 500; addr += 7 {
			for bit := 0; bit < WordBits; bit++ {
				total++
				if p.IsTrueCell(node, addr, bit) {
					trueCells++
				}
			}
		}
	}
	frac := float64(trueCells) / float64(total)
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("true-cell fraction %v, want ~0.90", frac)
	}
}

func TestPolarityDeterministic(t *testing.T) {
	p1 := NewPolarityMap(7)
	p2 := NewPolarityMap(7)
	for bit := 0; bit < WordBits; bit++ {
		if p1.IsTrueCell(3, 1234, bit) != p2.IsTrueCell(3, 1234, bit) {
			t.Fatal("polarity not deterministic")
		}
	}
}

func TestDischargeObserved(t *testing.T) {
	// A charged true cell storing 1 discharges to 0.
	cells := BitSetOf(4)
	truePol := BitSetOf(4)
	corrupted, o2z, z2o := DischargeObserved(0xFFFFFFFF, cells, truePol)
	if corrupted != 0xFFFFFFEF || o2z.Count() != 1 || z2o != 0 {
		t.Fatalf("true-cell discharge: %08x %v %v", corrupted, o2z, z2o)
	}
	// The same cell storing 0 is already discharged: no effect.
	corrupted, o2z, z2o = DischargeObserved(0x00000000, cells, truePol)
	if corrupted != 0 || o2z != 0 || z2o != 0 {
		t.Fatal("discharged true cell should be unobservable")
	}
	// An anti cell storing 0 is charged; discharge flips it to 1.
	corrupted, o2z, z2o = DischargeObserved(0x00000000, cells, 0)
	if corrupted != 0x10 || z2o.Count() != 1 || o2z != 0 {
		t.Fatalf("anti-cell discharge: %08x", corrupted)
	}
	// An anti cell storing 1 is already discharged.
	corrupted, _, _ = DischargeObserved(0xFFFFFFFF, cells, 0)
	if corrupted != 0xFFFFFFFF {
		t.Fatal("discharged anti cell should be unobservable")
	}
}

func TestAddrMapping(t *testing.T) {
	a := Addr(12345)
	v := VirtAddr(a)
	back, err := AddrOfVirt(v)
	if err != nil || back != a {
		t.Fatalf("round trip: %v %v", back, err)
	}
	if _, err := AddrOfVirt(3); err == nil {
		t.Fatal("bogus virtual address accepted")
	}
	if WordsOf(3<<30) != 805306368 {
		t.Fatalf("3GB words = %d", WordsOf(3<<30))
	}
	// Physical pages differ across nodes for the same address.
	if PhysPage(1, a) == PhysPage(2, a) {
		t.Fatal("page mapping should be node-dependent")
	}
}

func TestDeviceStrikeAndScan(t *testing.T) {
	dev := NewDevice(1, 1024, nil)
	dev.Fill(0xFFFFFFFF)
	// Find a word with a true-polarity bit so the strike is observable.
	var addr Addr
	var bit int
	found := false
	for a := Addr(0); a < 64 && !found; a++ {
		for b := 0; b < WordBits; b++ {
			if dev.Polarity.IsTrueCell(1, a, b) {
				addr, bit, found = a, b, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no true cell found (polarity broken)")
	}
	flipped := dev.Strike(addr, BitSetOf(bit))
	if flipped.Count() != 1 {
		t.Fatalf("strike flipped %v", flipped)
	}
	if dev.Read(addr) == 0xFFFFFFFF {
		t.Fatal("storage not mutated")
	}
	// A write recharges the cells.
	dev.Write(addr, 0xFFFFFFFF)
	if dev.Read(addr) != 0xFFFFFFFF {
		t.Fatal("write did not restore")
	}
}

func TestDeviceWeakCellTick(t *testing.T) {
	dev := NewDevice(2, 128, nil)
	dev.Fill(0xFFFFFFFF)
	var bit int = -1
	for b := 0; b < WordBits; b++ {
		if dev.Polarity.IsTrueCell(2, 7, b) {
			bit = b
			break
		}
	}
	if bit < 0 {
		t.Fatal("no true cell in word 7")
	}
	w := &WeakCell{Addr: 7, Bit: bit, LeakProb: 1.0, Active: false}
	dev.AddWeakCell(w)
	r := rng.New(3)
	if changed := dev.Tick(r); len(changed) != 0 {
		t.Fatal("inactive weak cell leaked")
	}
	w.Active = true
	changed := dev.Tick(r)
	if len(changed) != 1 || changed[0] != 7 {
		t.Fatalf("active weak cell: changed=%v", changed)
	}
	if len(dev.WeakCells()) != 1 {
		t.Fatal("weak cell registry")
	}
}

func TestDeviceBounds(t *testing.T) {
	dev := NewDevice(3, 10, nil)
	if err := dev.CheckBounds(9); err != nil {
		t.Fatal(err)
	}
	if err := dev.CheckBounds(10); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
	if dev.Strike(100, BitSetOf(1)) != 0 {
		t.Fatal("out-of-range strike should be a no-op")
	}
}

func TestFindMismatch(t *testing.T) {
	const n = 37 // not a multiple of the 8-word block: exercises the tail loop
	d := NewDevice(1, n, nil)
	d.Fill(0xAAAA5555)
	if got := d.FindMismatch(0, 0xAAAA5555); got != -1 {
		t.Fatalf("clean device: %d", got)
	}
	// A mismatch at every position must be found from every starting
	// offset at or before it, and skipped from any offset past it.
	for pos := 0; pos < n; pos++ {
		d.Fill(0xAAAA5555)
		d.Write(Addr(pos), 0xAAAA5554)
		for from := 0; from <= pos; from++ {
			if got := d.FindMismatch(from, 0xAAAA5555); got != pos {
				t.Fatalf("mismatch at %d from %d: got %d", pos, from, got)
			}
		}
		if got := d.FindMismatch(pos+1, 0xAAAA5555); got != -1 {
			t.Fatalf("mismatch at %d should be invisible from %d: got %d", pos, pos+1, got)
		}
	}
	// Two mismatches: the first wins.
	d.Fill(0)
	d.Write(5, 1)
	d.Write(30, 1)
	if got := d.FindMismatch(0, 0); got != 5 {
		t.Fatalf("first of two: %d", got)
	}
	if got := d.FindMismatch(6, 0); got != 30 {
		t.Fatalf("second of two: %d", got)
	}
}

func TestFindMismatchAgreesWithWordLoop(t *testing.T) {
	r := rng.New(11)
	d := NewDevice(1, 300, nil)
	for trial := 0; trial < 500; trial++ {
		expected := uint32(r.IntN(4))
		for i := 0; i < d.Len(); i++ {
			if r.Bernoulli(0.95) {
				d.Write(Addr(i), expected)
			} else {
				d.Write(Addr(i), expected^uint32(1+r.IntN(3)))
			}
		}
		from := r.IntN(d.Len() + 1)
		want := -1
		for i := from; i < d.Len(); i++ {
			if d.Read(Addr(i)) != expected {
				want = i
				break
			}
		}
		if got := d.FindMismatch(from, expected); got != want {
			t.Fatalf("trial %d from %d: got %d, want %d", trial, from, got, want)
		}
	}
}

func TestFillRange(t *testing.T) {
	d := NewDevice(1, 50, nil)
	d.Fill(0xFFFFFFFF)
	d.FillRange(10, 33, 0x12345678)
	for i := 0; i < d.Len(); i++ {
		want := uint32(0xFFFFFFFF)
		if i >= 10 && i < 33 {
			want = 0x12345678
		}
		if got := d.Read(Addr(i)); got != want {
			t.Fatalf("word %d = %#x, want %#x", i, got, want)
		}
	}
	d.FillRange(7, 7, 0) // empty range is a no-op
	if d.Read(7) != 0xFFFFFFFF {
		t.Fatal("empty FillRange wrote")
	}
}

func TestTickNoWeakCellsAllocationFree(t *testing.T) {
	r := rng.New(1)
	empty := NewDevice(1, 64, nil)
	if avg := testing.AllocsPerRun(100, func() { empty.Tick(r) }); avg != 0 {
		t.Errorf("Tick with no weak cells allocates %v times per run", avg)
	}
	// A registered-but-quiet weak cell must not allocate either: the
	// changed slice is only materialized when a cell actually fires.
	quiet := NewDevice(1, 64, nil)
	quiet.AddWeakCell(&WeakCell{Addr: 3, Bit: 1, LeakProb: 0, Active: true})
	if avg := testing.AllocsPerRun(100, func() { quiet.Tick(r) }); avg != 0 {
		t.Errorf("Tick with a quiet weak cell allocates %v times per run", avg)
	}
}
