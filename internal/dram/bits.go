// Package dram models the ECC-less LPDDR device under study: word/bit
// geometry, the physical-to-logical bit scrambling that makes multi-bit
// corruption land on non-adjacent logical bits, DRAM cell polarity (which
// makes ~90% of observed flips go 1→0), corruption materialization against
// the scanner's write patterns, and a real in-memory device buffer that the
// scanner can genuinely scan.
package dram

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordBits is the memory-word width used throughout the study. The paper's
// scanner checks 32-bit words (expected values 0x00000000 / 0xFFFFFFFF).
const WordBits = 32

// BitSet is a set of logical bit positions within one memory word.
type BitSet uint32

// BitSetOf builds a BitSet from explicit positions; out-of-range positions
// are ignored.
func BitSetOf(positions ...int) BitSet {
	var b BitSet
	for _, p := range positions {
		if p >= 0 && p < WordBits {
			b |= 1 << uint(p)
		}
	}
	return b
}

// Count returns the number of bits in the set.
func (b BitSet) Count() int { return bits.OnesCount32(uint32(b)) }

// Positions returns the sorted bit positions present in the set.
func (b BitSet) Positions() []int {
	out := make([]int, 0, b.Count())
	for p := 0; p < WordBits; p++ {
		if b&(1<<uint(p)) != 0 {
			out = append(out, p)
		}
	}
	return out
}

// Consecutive reports whether all set bits form one contiguous run. Sets
// with fewer than two bits are trivially consecutive. Table I's
// "Consecutive" column uses this definition.
func (b BitSet) Consecutive() bool {
	if b == 0 {
		return true
	}
	shifted := uint32(b) >> uint(bits.TrailingZeros32(uint32(b)))
	return shifted&(shifted+1) == 0
}

// MaxGap returns the largest count of unset bits between two set bits
// (the paper observed up to 11). Zero for sets with fewer than two bits.
func (b BitSet) MaxGap() int {
	pos := b.Positions()
	max := 0
	for i := 1; i < len(pos); i++ {
		gap := pos[i] - pos[i-1] - 1
		if gap > max {
			max = gap
		}
	}
	return max
}

// MeanGap returns the average unset-bit gap between adjacent set bits
// (the paper reports an average distance of 3). Zero for <2 bits.
func (b BitSet) MeanGap() float64 {
	pos := b.Positions()
	if len(pos) < 2 {
		return 0
	}
	total := 0
	for i := 1; i < len(pos); i++ {
		total += pos[i] - pos[i-1] - 1
	}
	return float64(total) / float64(len(pos)-1)
}

// String renders like "{1,9,10}".
func (b BitSet) String() string {
	pos := b.Positions()
	parts := make([]string, len(pos))
	for i, p := range pos {
		parts[i] = fmt.Sprint(p)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Diff returns the set of bit positions at which two words differ.
func Diff(a, b uint32) BitSet { return BitSet(a ^ b) }
