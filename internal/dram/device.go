package dram

import (
	"fmt"

	"unprotected/internal/rng"
)

// WeakCell is a manufacturing-variability defect: a cell that occasionally
// leaks its charge between refreshes ("weak bit", §III-H). Burn-in is meant
// to catch these before shipping but its coverage is not 100%, so devices
// reach the field with a few of them.
type WeakCell struct {
	Addr     Addr
	Bit      int     // logical bit position
	LeakProb float64 // probability of discharging during one scan iteration while active
	Active   bool    // weak bits are intermittent; campaigns toggle activity in bursts
}

// Device is an in-memory DRAM that the scanner genuinely scans: words are
// real storage, faults mutate that storage, and detection happens by
// reading and comparing — the same code path the paper's tool runs on
// hardware.
type Device struct {
	Node     uint64 // node identity for polarity/page derivation
	Polarity *PolarityMap

	words []uint32
	weak  []*WeakCell
}

// NewDevice allocates a device with nWords words of backing storage.
func NewDevice(node uint64, nWords int, polarity *PolarityMap) *Device {
	if polarity == nil {
		polarity = NewPolarityMap(node)
	}
	return &Device{
		Node:     node,
		Polarity: polarity,
		words:    make([]uint32, nWords),
	}
}

// Len returns the number of words.
func (d *Device) Len() int { return len(d.words) }

// Write stores v at a, fully recharging the word's cells.
func (d *Device) Write(a Addr, v uint32) { d.words[a] = v }

// Read returns the current (possibly corrupted) stored value.
func (d *Device) Read(a Addr) uint32 { return d.words[a] }

// Fill writes v to every word (one scanner pass of the write phase).
func (d *Device) Fill(v uint32) {
	for i := range d.words {
		d.words[i] = v
	}
}

// Strike discharges the given cells of word a, mutating storage exactly as
// a particle strike would. It returns the set of observably flipped bits
// (empty when every struck cell was already discharged).
func (d *Device) Strike(a Addr, cells BitSet) BitSet {
	if int(a) >= len(d.words) {
		return 0
	}
	truePol := d.Polarity.WordPolarity(d.Node, a)
	corrupted, o2z, z2o := DischargeObserved(d.words[a], cells, truePol)
	d.words[a] = corrupted
	return o2z | z2o
}

// AddWeakCell registers a weak bit.
func (d *Device) AddWeakCell(w *WeakCell) { d.weak = append(d.weak, w) }

// WeakCells exposes the registered defects (for campaign toggling).
func (d *Device) WeakCells() []*WeakCell { return d.weak }

// Tick advances one scan-iteration of wall time: every active weak cell
// leaks with its configured probability. Returns the addresses that
// actually changed.
func (d *Device) Tick(r *rng.Stream) []Addr {
	var changed []Addr
	for _, w := range d.weak {
		if !w.Active || !r.Bernoulli(w.LeakProb) {
			continue
		}
		if d.Strike(w.Addr, BitSetOf(w.Bit)) != 0 {
			changed = append(changed, w.Addr)
		}
	}
	return changed
}

// CheckBounds validates an address for tests and tooling.
func (d *Device) CheckBounds(a Addr) error {
	if int(a) >= len(d.words) {
		return fmt.Errorf("dram: address %d out of range (device has %d words)", a, len(d.words))
	}
	return nil
}
