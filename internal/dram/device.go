package dram

import (
	"bytes"
	"fmt"
	"unsafe"

	"unprotected/internal/rng"
)

// WeakCell is a manufacturing-variability defect: a cell that occasionally
// leaks its charge between refreshes ("weak bit", §III-H). Burn-in is meant
// to catch these before shipping but its coverage is not 100%, so devices
// reach the field with a few of them.
type WeakCell struct {
	Addr     Addr
	Bit      int     // logical bit position
	LeakProb float64 // probability of discharging during one scan iteration while active
	Active   bool    // weak bits are intermittent; campaigns toggle activity in bursts
}

// Device is an in-memory DRAM that the scanner genuinely scans: words are
// real storage, faults mutate that storage, and detection happens by
// reading and comparing — the same code path the paper's tool runs on
// hardware.
type Device struct {
	Node     uint64 // node identity for polarity/page derivation
	Polarity *PolarityMap

	words []uint32
	weak  []*WeakCell

	// pattern is FindMismatch's scratch block: patternWords copies of the
	// last expected value, compared against the backing words through the
	// runtime's vectorized memequal. Rebuilt only when the expected value
	// changes; makes FindMismatch non-reentrant, like every other mutator
	// of the single-goroutine device.
	pattern    [patternWords]uint32
	patternVal uint32
	patternOK  bool
}

// patternWords is the block-compare granularity (4 KiB).
const patternWords = 1024

// NewDevice allocates a device with nWords words of backing storage.
func NewDevice(node uint64, nWords int, polarity *PolarityMap) *Device {
	if polarity == nil {
		polarity = NewPolarityMap(node)
	}
	return &Device{
		Node:     node,
		Polarity: polarity,
		words:    make([]uint32, nWords),
	}
}

// Len returns the number of words.
func (d *Device) Len() int { return len(d.words) }

// Write stores v at a, fully recharging the word's cells.
func (d *Device) Write(a Addr, v uint32) { d.words[a] = v }

// Read returns the current (possibly corrupted) stored value.
func (d *Device) Read(a Addr) uint32 { return d.words[a] }

// Fill writes v to every word (one scanner pass of the write phase).
func (d *Device) Fill(v uint32) { d.FillRange(0, len(d.words), v) }

// FillRange writes v to every word of [from, to), recharging their cells.
// Zero fills — half of every flip-mode session, plus the initial write
// phase — compile to the runtime's memclr (write-only traffic); any other
// value runs at memmove bandwidth by seeding the first word and doubling
// the initialized prefix with copy, so almost all bytes are moved by the
// runtime's bulk copier rather than a word-at-a-time store loop.
func (d *Device) FillRange(from, to int, v uint32) {
	w := d.words[from:to]
	if v == 0 {
		for i := range w {
			w[i] = 0
		}
		return
	}
	if len(w) == 0 {
		return
	}
	w[0] = v
	for filled := 1; filled < len(w); filled *= 2 {
		copy(w[filled:], w[:filled])
	}
}

// FindMismatch returns the index of the first word at or after from whose
// stored value differs from expected, or -1 when the rest of the device
// matches. This is the scanner's verify phase as a block primitive: 4 KiB
// blocks are compared against a cached expected-value pattern through the
// runtime's vectorized memequal, the sub-block tail runs a tight
// eight-words-per-branch index loop, and the caller only drills down to
// per-word ERROR emission inside a block that reports a difference. The
// scanner still genuinely reads the same backing storage as Read — only
// the loop shape changes, not the data path.
func (d *Device) FindMismatch(from int, expected uint32) int {
	w := d.words
	i := from
	if i < 0 || i >= len(w) {
		return -1
	}
	if !d.patternOK || d.patternVal != expected {
		for k := range d.pattern {
			d.pattern[k] = expected
		}
		d.patternVal, d.patternOK = expected, true
	}
	pat := wordBytes(d.pattern[:])
	for i+patternWords <= len(w) {
		if !bytes.Equal(wordBytes(w[i:i+patternWords]), pat) {
			return d.scanMismatch(i, i+patternWords, expected)
		}
		i += patternWords
	}
	return d.scanMismatch(i, len(w), expected)
}

// wordBytes views a word slice as raw bytes for memequal; byte views carry
// no alignment constraints, so this is checkptr-clean.
func wordBytes(w []uint32) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*4)
}

// scanMismatch is the drill-down word scan over [from, to): an XOR-OR
// chain checks eight words per branch with constant-size subslices (bounds
// checks hoisted), then the tail goes word by word.
func (d *Device) scanMismatch(from, to int, expected uint32) int {
	w := d.words[:to]
	i := from
	for ; i+8 <= to; i += 8 {
		blk := w[i : i+8 : i+8]
		if (blk[0]^expected)|(blk[1]^expected)|(blk[2]^expected)|(blk[3]^expected)|
			(blk[4]^expected)|(blk[5]^expected)|(blk[6]^expected)|(blk[7]^expected) != 0 {
			break
		}
	}
	for ; i < to; i++ {
		if w[i] != expected {
			return i
		}
	}
	return -1
}

// Strike discharges the given cells of word a, mutating storage exactly as
// a particle strike would. It returns the set of observably flipped bits
// (empty when every struck cell was already discharged).
func (d *Device) Strike(a Addr, cells BitSet) BitSet {
	if int(a) >= len(d.words) {
		return 0
	}
	truePol := d.Polarity.WordPolarity(d.Node, a)
	corrupted, o2z, z2o := DischargeObserved(d.words[a], cells, truePol)
	d.words[a] = corrupted
	return o2z | z2o
}

// AddWeakCell registers a weak bit.
func (d *Device) AddWeakCell(w *WeakCell) { d.weak = append(d.weak, w) }

// WeakCells exposes the registered defects (for campaign toggling).
func (d *Device) WeakCells() []*WeakCell { return d.weak }

// Tick advances one scan-iteration of wall time: every active weak cell
// leaks with its configured probability. Returns the addresses that
// actually changed; the slice is allocated lazily, so the common case —
// no weak cell fires this iteration (or the device has none at all) —
// returns nil without touching the heap. Every session of every campaign
// calls Tick once per iteration, so this path must stay allocation-free.
func (d *Device) Tick(r *rng.Stream) []Addr {
	if len(d.weak) == 0 {
		return nil
	}
	var changed []Addr
	for _, w := range d.weak {
		if !w.Active || !r.Bernoulli(w.LeakProb) {
			continue
		}
		if d.Strike(w.Addr, BitSetOf(w.Bit)) != 0 {
			changed = append(changed, w.Addr)
		}
	}
	return changed
}

// CheckBounds validates an address for tests and tooling.
func (d *Device) CheckBounds(a Addr) error {
	if int(a) >= len(d.words) {
		return fmt.Errorf("dram: address %d out of range (device has %d words)", a, len(d.words))
	}
	return nil
}
