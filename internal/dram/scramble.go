package dram

import (
	"fmt"

	"unprotected/internal/rng"
)

// Scrambler is the bijective mapping between physical cell positions and
// logical bit positions within a word.
//
// DRAM layouts spread logically adjacent bits of a word across the array
// (the paper: "this scrambling is done to avoid resonance on the bus",
// §III-C). The consequence the paper measures is that a particle strike
// upsetting physically adjacent cells corrupts non-adjacent logical bits:
// the average in-word distance between corrupted bits was 3 and the maximum
// 11, yet a minority of multi-bit errors were logically consecutive.
//
// The permutation is found once by a deterministic seeded search whose
// acceptance window encodes those measured statistics; tests pin the
// properties.
type Scrambler struct {
	perm [WordBits]int // physical position -> logical bit
	inv  [WordBits]int // logical bit -> physical position
}

// Adjacency targets for the search, derived from Table I:
// roughly 28% of multi-bit corruptions are logically consecutive, the mean
// gap between corrupted bits is ~3 and the largest observed is 11.
const (
	adjFracConsecLo = 0.22
	adjFracConsecHi = 0.42
	adjMeanDiffLo   = 3.0
	adjMeanDiffHi   = 5.0
	adjMaxDiff      = 12
)

// NewScrambler builds the study's scrambler. The search is deterministic:
// a fixed seed drives a greedy Hamiltonian-path construction over logical
// positions with bounded step sizes, restarted until the adjacency
// statistics fall in the acceptance window.
func NewScrambler() *Scrambler {
	s, err := searchScrambler(0x5eed0fdead)
	if err != nil {
		// The acceptance window is generous; the fixed seed is known to
		// converge. A failure means the constants were edited carelessly.
		panic(err)
	}
	return s
}

func searchScrambler(seed uint64) (*Scrambler, error) {
	r := rng.New(seed)
	for attempt := 0; attempt < 10000; attempt++ {
		perm, ok := greedyPath(r)
		if !ok {
			continue
		}
		s := &Scrambler{}
		for p, l := range perm {
			s.perm[p] = l
			s.inv[l] = p
		}
		frac, mean, max := s.AdjacencyStats()
		if frac >= adjFracConsecLo && frac <= adjFracConsecHi &&
			mean >= adjMeanDiffLo && mean <= adjMeanDiffHi && max <= adjMaxDiff {
			return s, nil
		}
	}
	return nil, fmt.Errorf("dram: scrambler search did not converge")
}

// greedyPath builds a sequence of logical positions where successive steps
// are small with probability ~0.3 and otherwise bounded by adjMaxDiff,
// which directly shapes the adjacency statistics.
func greedyPath(r *rng.Stream) ([]int, bool) {
	used := [WordBits]bool{}
	path := make([]int, 0, WordBits)
	cur := r.IntN(WordBits)
	used[cur] = true
	path = append(path, cur)
	for len(path) < WordBits {
		var candidates []int
		wantStep1 := r.Bernoulli(0.30)
		for v := 0; v < WordBits; v++ {
			if used[v] {
				continue
			}
			d := cur - v
			if d < 0 {
				d = -d
			}
			if wantStep1 && d == 1 {
				candidates = append(candidates, v)
			}
			if !wantStep1 && d >= 2 && d <= adjMaxDiff {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			// Fall back to any in-range neighbour before giving up.
			for v := 0; v < WordBits; v++ {
				if used[v] {
					continue
				}
				d := cur - v
				if d < 0 {
					d = -d
				}
				if d <= adjMaxDiff {
					candidates = append(candidates, v)
				}
			}
		}
		if len(candidates) == 0 {
			return nil, false
		}
		cur = candidates[r.IntN(len(candidates))]
		used[cur] = true
		path = append(path, cur)
	}
	return path, true
}

// NewIdentityScrambler returns the no-scrambling layout: physical and
// logical positions coincide. It exists for the ablation DESIGN.md calls
// out — without layout scrambling, every multi-cell strike would corrupt
// *consecutive* logical bits, and adjacent-bit-optimized ECC would look
// far more effective than the paper measured (§III-C argues the opposite
// from its data).
func NewIdentityScrambler() *Scrambler {
	s := &Scrambler{}
	for i := 0; i < WordBits; i++ {
		s.perm[i] = i
		s.inv[i] = i
	}
	return s
}

// ToLogical maps a physical cell position to its logical bit.
func (s *Scrambler) ToLogical(phys int) int { return s.perm[phys&(WordBits-1)] }

// ToPhysical maps a logical bit to its physical cell position.
func (s *Scrambler) ToPhysical(logical int) int { return s.inv[logical&(WordBits-1)] }

// PhysRun maps a run of k physically contiguous cells starting at phys
// (wrapping within the word tile) to the logical BitSet it corrupts.
func (s *Scrambler) PhysRun(phys, k int) BitSet {
	var b BitSet
	for i := 0; i < k && i < WordBits; i++ {
		b |= 1 << uint(s.perm[(phys+i)%WordBits])
	}
	return b
}

// AdjacencyStats summarizes what physically-adjacent cell pairs look like
// logically: the fraction that are logically consecutive, the mean absolute
// logical distance, and the max distance.
func (s *Scrambler) AdjacencyStats() (fracConsecutive, meanDiff float64, maxDiff int) {
	consec, total := 0, 0
	sum := 0
	for p := 0; p+1 < WordBits; p++ {
		d := s.perm[p] - s.perm[p+1]
		if d < 0 {
			d = -d
		}
		if d == 1 {
			consec++
		}
		sum += d
		if d > maxDiff {
			maxDiff = d
		}
		total++
	}
	return float64(consec) / float64(total), float64(sum) / float64(total), maxDiff
}
