package dram

import "testing"

// TestScramblerAblation pins the design rationale: with the study's
// scrambler, physically contiguous strike runs land on mostly
// non-consecutive logical bits (as Table I shows); with the identity
// layout every run is consecutive, which would make adjacent-bit ECC look
// deceptively strong.
func TestScramblerAblation(t *testing.T) {
	real := NewScrambler()
	ident := NewIdentityScrambler()

	consec := func(s *Scrambler) (n int) {
		for start := 0; start < WordBits; start++ {
			for k := 2; k <= 4; k++ {
				if s.PhysRun(start, k).Consecutive() {
					n++
				}
			}
		}
		return n
	}
	total := WordBits * 3
	identConsec := consec(ident)
	realConsec := consec(real)
	// Identity: every non-wrapping run is consecutive (wrapping runs at
	// the top of the word split into two blocks).
	if identConsec < total*8/10 {
		t.Fatalf("identity layout: %d/%d consecutive", identConsec, total)
	}
	// Real layout: a clear minority.
	if realConsec >= identConsec/2 {
		t.Fatalf("scrambler too tame: %d consecutive vs identity's %d", realConsec, identConsec)
	}
}

func TestIdentityScramblerIsIdentity(t *testing.T) {
	s := NewIdentityScrambler()
	for i := 0; i < WordBits; i++ {
		if s.ToLogical(i) != i || s.ToPhysical(i) != i {
			t.Fatalf("not identity at %d", i)
		}
	}
	frac, mean, max := s.AdjacencyStats()
	if frac != 1 || mean != 1 || max != 1 {
		t.Fatalf("identity adjacency stats: %v %v %v", frac, mean, max)
	}
}
