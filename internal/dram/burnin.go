package dram

import (
	"math"

	"unprotected/internal/rng"
)

// Burn-in screening (§III-H): manufacturers age devices at maximum voltage
// and ~120°C in test ovens to provoke weak bits before shipping; cells
// that fail are repaired with spares. Coverage is not 100%, which is why
// nodes 04-05 and 58-02 reached the field with a weak bit each. This model
// quantifies the escape probability so the campaign's weak-bit incidence
// can be traced back to a manufacturing parameter.

// BurnIn describes a screening run.
type BurnIn struct {
	// Hours at stress conditions.
	Hours float64
	// TempC is the oven temperature (typically 120).
	TempC float64
	// FieldTempC is the nominal field temperature the acceleration is
	// computed against.
	FieldTempC float64
	// DoublingC is the leak-rate doubling interval in °C.
	DoublingC float64
}

// DefaultBurnIn is a typical production screen: 48 hours at 120°C against
// a 35°C field baseline, leak rate doubling every 10°C.
func DefaultBurnIn() BurnIn {
	return BurnIn{Hours: 48, TempC: 120, FieldTempC: 35, DoublingC: 10}
}

// Acceleration returns the stress-to-field leak-rate ratio.
func (b BurnIn) Acceleration() float64 {
	return math.Pow(2, (b.TempC-b.FieldTempC)/b.DoublingC)
}

// DetectProb returns the probability the screen catches a weak cell whose
// field leak rate is leaksPerHour: 1 - exp(-accelerated exposure). Cells
// that leak more are caught more reliably; the marginal ones escape.
func (b BurnIn) DetectProb(leaksPerHour float64) float64 {
	if leaksPerHour <= 0 {
		return 0
	}
	return 1 - math.Exp(-leaksPerHour*b.Acceleration()*b.Hours)
}

// WeakPopulation is a manufactured batch's weak-cell census.
type WeakPopulation struct {
	// PerDevice is the mean number of weak cells per device before
	// screening.
	PerDevice float64
	// LeakMeanLog / LeakSigmaLog parameterize the lognormal field leak
	// rate (per hour) of a weak cell.
	LeakMeanLog  float64
	LeakSigmaLog float64
}

// DefaultWeakPopulation models a mature LPDDR process: a couple of
// candidate weak cells per device whose leak rates span several orders of
// magnitude. Cells leaky enough to matter are almost always caught by the
// accelerated screen; the escapes are the deep quiet tail — cells that
// barely leak under stress but later activate in bursts in the field (the
// intermittency nodes 04-05 and 58-02 exhibited). Calibrated so a
// 923-node system ships with ~2 field weak bits, matching the study.
func DefaultWeakPopulation() WeakPopulation {
	return WeakPopulation{PerDevice: 2, LeakMeanLog: math.Log(0.01), LeakSigmaLog: 1.7}
}

// SimulateEscapes draws the post-burn-in weak cells of nDevices devices:
// the cells whose screening failed to catch them. Returned leak rates are
// field rates per hour.
func SimulateEscapes(pop WeakPopulation, b BurnIn, nDevices int, r *rng.Stream) []float64 {
	var escapes []float64
	for d := 0; d < nDevices; d++ {
		cells := r.Poisson(pop.PerDevice)
		for c := 0; c < cells; c++ {
			leak := r.LogNormal(pop.LeakMeanLog, pop.LeakSigmaLog)
			if !r.Bernoulli(b.DetectProb(leak)) {
				escapes = append(escapes, leak)
			}
		}
	}
	return escapes
}

// EscapeRate estimates the expected escapes per device by Monte Carlo.
func EscapeRate(pop WeakPopulation, b BurnIn, trials int, r *rng.Stream) float64 {
	if trials <= 0 {
		trials = 1000
	}
	return float64(len(SimulateEscapes(pop, b, trials, r))) / float64(trials)
}
