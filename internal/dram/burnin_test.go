package dram

import (
	"testing"

	"unprotected/internal/rng"
)

func TestBurnInAcceleration(t *testing.T) {
	b := DefaultBurnIn()
	// 120°C vs 35°C with doubling every 10°C: 2^8.5 ≈ 362x.
	acc := b.Acceleration()
	if acc < 300 || acc > 450 {
		t.Fatalf("acceleration %v, want ~362", acc)
	}
}

func TestBurnInDetectProbMonotonic(t *testing.T) {
	b := DefaultBurnIn()
	prev := -1.0
	for _, leak := range []float64{0, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		p := b.DetectProb(leak)
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		if p < prev {
			t.Fatal("detection probability must grow with leak rate")
		}
		prev = p
	}
	// A cell leaking hourly in the field is caught essentially always.
	if b.DetectProb(1) < 0.999999 {
		t.Fatal("gross leaker escaped burn-in")
	}
	// A cell leaking once a year is essentially invisible to a 48h screen.
	if b.DetectProb(1.0/8760) > 0.99 {
		t.Fatalf("marginal leaker too detectable: %v", b.DetectProb(1.0/8760))
	}
}

func TestBurnInEscapes(t *testing.T) {
	r := rng.New(31)
	pop := DefaultWeakPopulation()
	b := DefaultBurnIn()
	rate := EscapeRate(pop, b, 4000, r)
	// A small but nonzero fraction of weak cells ships — the mechanism
	// behind the study's two field weak-bit nodes out of 923.
	if rate <= 0 {
		t.Fatal("no escapes: the field weak bits would be impossible")
	}
	if rate > pop.PerDevice/2 {
		t.Fatalf("escape rate %v: screening is ineffective", rate)
	}
	// Longer burn-in strictly reduces escapes.
	longer := b
	longer.Hours = 480
	if EscapeRate(pop, longer, 4000, rng.New(31)) >= rate {
		t.Fatal("longer burn-in should catch more weak cells")
	}
}

func TestBurnInEscapesAreMarginal(t *testing.T) {
	// Escaped cells must be dominated by low leak rates (the "weak bit"
	// intermittency the paper saw: occasional identical flips, not a
	// storm).
	r := rng.New(77)
	escapes := SimulateEscapes(DefaultWeakPopulation(), DefaultBurnIn(), 5000, r)
	if len(escapes) == 0 {
		t.Skip("no escapes at this seed")
	}
	high := 0
	for _, leak := range escapes {
		if leak > 0.1 {
			high++
		}
	}
	if frac := float64(high) / float64(len(escapes)); frac > 0.05 {
		t.Fatalf("%.1f%% of escapes leak >0.1/h; screening model broken", 100*frac)
	}
}
