package dram

// Cell polarity. A DRAM cell stores its logical value either directly
// (true cell: charged capacitor = logical 1) or inverted (anti cell:
// charged = logical 0); arrays mix both orientations for layout reasons.
// A particle strike or retention failure *discharges* the capacitor, so
// the observable flip direction depends on polarity: a discharged true
// cell reads 1→0, a discharged anti cell reads 0→1.
//
// The paper observed ~90% of corrupted bits switching 1→0 ("an indication
// that in the large majority of corruptions, the affected memory cell
// loses some charge", §III-C). We reproduce this with a 90% true-cell
// fraction assigned pseudo-randomly but deterministically per
// (device, word, bit).

// DefaultTrueCellFraction is the fraction of true-polarity cells.
const DefaultTrueCellFraction = 0.90

// PolarityMap deterministically assigns polarity to every cell of every
// node's DRAM.
type PolarityMap struct {
	Seed         uint64
	TrueFraction float64
}

// NewPolarityMap returns the study's polarity assignment.
func NewPolarityMap(seed uint64) *PolarityMap {
	return &PolarityMap{Seed: seed, TrueFraction: DefaultTrueCellFraction}
}

// mix64 is a strong 64-bit finalizer (splitmix64's output stage).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// IsTrueCell reports the polarity of (node, word address, logical bit).
func (p *PolarityMap) IsTrueCell(node uint64, addr Addr, bit int) bool {
	h := mix64(p.Seed ^ mix64(node*0x9e3779b97f4a7c15^uint64(addr)<<6^uint64(bit)))
	// Map to [0,1) using the top 53 bits.
	f := float64(h>>11) / float64(1<<53)
	return f < p.TrueFraction
}

// WordPolarity returns the BitSet of true-polarity bits in a word; the
// complement is anti-polarity.
func (p *PolarityMap) WordPolarity(node uint64, addr Addr) BitSet {
	var b BitSet
	for bit := 0; bit < WordBits; bit++ {
		if p.IsTrueCell(node, addr, bit) {
			b |= 1 << uint(bit)
		}
	}
	return b
}

// DischargeObserved computes what the scanner sees when the given cells
// discharge while the word holds expected.
//
// For each struck cell: if it is a true cell currently storing 1, the read
// value flips to 0; if an anti cell currently storing 0, the read flips to
// 1; otherwise the capacitor was already in the discharged state and the
// strike is unobservable. The returned BitSets record which observed flips
// went each direction.
func DischargeObserved(expected uint32, cells BitSet, truePolarity BitSet) (corrupted uint32, ones2zeros, zeros2ones BitSet) {
	corrupted = expected
	for _, bit := range cells.Positions() {
		mask := uint32(1) << uint(bit)
		stored := expected&mask != 0
		isTrue := truePolarity&(1<<uint(bit)) != 0
		switch {
		case isTrue && stored: // charged true cell: 1 -> 0
			corrupted &^= mask
			ones2zeros |= BitSet(mask)
		case !isTrue && !stored: // charged anti cell: 0 -> 1
			corrupted |= mask
			zeros2ones |= BitSet(mask)
		}
	}
	return corrupted, ones2zeros, zeros2ones
}
