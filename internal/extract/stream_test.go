package extract

import (
	"reflect"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

func fault(blade, soc int, at int64, addr dram.Addr, expected, actual uint32) Fault {
	return Classify(RawRun{
		Node: cluster.NodeID{Blade: blade, SoC: soc}, Addr: addr,
		FirstAt: timebase.T(at), LastAt: timebase.T(at), Logs: 1,
		Expected: expected, Actual: actual, TempC: thermal.NoReading,
	})
}

// TestGrouperMatchesGroups: on a canonically ordered stream the incremental
// grouper and the map-based Groups agree exactly.
func TestGrouperMatchesGroups(t *testing.T) {
	faults := []Fault{
		fault(1, 1, 100, 5, 0xffffffff, 0xfffffffe),
		fault(1, 1, 100, 9, 0xffffffff, 0xfffffffd),
		fault(1, 2, 100, 5, 0xffffffff, 0xfffffffe),
		fault(1, 1, 200, 5, 0xffffffff, 0xfffffffe),
		fault(2, 3, 300, 1, 0, 3),
		fault(2, 3, 300, 2, 0, 1),
		fault(2, 3, 300, 3, 0, 1),
	}
	SortFaults(faults)

	var streamed []Group
	g := NewGrouper(func(gr Group) { streamed = append(streamed, gr) })
	for _, f := range faults {
		g.Observe(f)
	}
	g.Flush()
	// Flush twice: the second must be a no-op.
	g.Flush()

	batch := Groups(faults)
	if !reflect.DeepEqual(streamed, batch) {
		t.Fatalf("grouper disagreed with Groups:\n stream %+v\n batch  %+v", streamed, batch)
	}

	var streamStats, batchStats SimultaneityStats
	for _, gr := range streamed {
		streamStats.Observe(gr)
	}
	batchStats = Simultaneity(batch)
	if streamStats != batchStats {
		t.Fatalf("stats disagree: %+v vs %+v", streamStats, batchStats)
	}
}

// TestCollapserAdoptsPreCollapsedRuns: a record carrying logs=/last= maps
// to exactly one run with those fields verbatim — no re-merging, even when
// a later record lands within the gap tolerance at the same address.
func TestCollapserAdoptsPreCollapsedRuns(t *testing.T) {
	host := cluster.NodeID{Blade: 3, SoC: 7}
	c := NewCollapser()
	rec := func(at, last int64, logs int) eventlog.Record {
		return eventlog.Record{
			Kind: eventlog.KindError, At: timebase.T(at), Host: host,
			VAddr: dram.VirtAddr(77), Expected: 0xffffffff, Actual: 0xfffffffe,
			TempC: thermal.NoReading, LastAt: timebase.T(last), Logs: logs,
		}
	}
	// Two pre-collapsed runs 10 s apart — raw records this close would
	// merge (gap 60 s), extracted ones must not.
	c.Observe(rec(100, 150, 7))
	c.Observe(rec(160, 160, 2))
	runs, raw := c.Close()
	if len(runs) != 2 {
		t.Fatalf("runs %d, want 2 (pre-collapsed runs re-merged): %+v", len(runs), runs)
	}
	if raw != 9 {
		t.Fatalf("raw %d, want 9 (sum of logs= counts)", raw)
	}
	if runs[0].Logs != 7 || runs[0].FirstAt != 100 || runs[0].LastAt != 150 {
		t.Fatalf("run 0 fields drifted: %+v", runs[0])
	}
	if runs[1].Logs != 2 || runs[1].FirstAt != 160 || runs[1].LastAt != 160 {
		t.Fatalf("run 1 fields drifted: %+v", runs[1])
	}
}

// TestCollapserMixedRawAndPreCollapsed: a pre-collapsed record closes any
// open raw run at its address, and raw records after it start fresh.
func TestCollapserMixedRawAndPreCollapsed(t *testing.T) {
	host := cluster.NodeID{Blade: 3, SoC: 7}
	c := NewCollapser()
	raw := func(at int64) eventlog.Record {
		return eventlog.Record{
			Kind: eventlog.KindError, At: timebase.T(at), Host: host,
			VAddr: dram.VirtAddr(77), Expected: 0xffffffff, Actual: 0xfffffffe,
			TempC: thermal.NoReading,
		}
	}
	pre := raw(200)
	pre.LastAt, pre.Logs = timebase.T(230), 4
	c.Observe(raw(100))
	c.Observe(raw(110)) // merges with the one above
	c.Observe(pre)      // closes the open raw run, adds itself
	c.Observe(raw(240)) // fresh raw run, not merged into the extracted one
	runs, rawCount := c.Close()
	if len(runs) != 3 {
		t.Fatalf("runs %d, want 3: %+v", len(runs), runs)
	}
	if rawCount != 3+4 {
		t.Fatalf("raw %d, want 7", rawCount)
	}
	if runs[0].Logs != 2 || runs[1].Logs != 4 || runs[2].Logs != 1 {
		t.Fatalf("run log counts %d/%d/%d, want 2/4/1", runs[0].Logs, runs[1].Logs, runs[2].Logs)
	}
}
