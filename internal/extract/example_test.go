package extract_test

import (
	"fmt"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// Three consecutive ERROR records at the same cell collapse into one
// independent fault (§II-C): "even if such a fault produced many incorrect
// values for thousands of consecutive iterations, we count this as one
// single memory error".
func ExampleCollapser() {
	host := cluster.NodeID{Blade: 2, SoC: 4}
	c := extract.NewCollapser()
	for i := 0; i < 3; i++ {
		c.Observe(eventlog.Record{
			Kind: eventlog.KindError, At: timebase.T(100 + 11*i), Host: host,
			VAddr: dram.VirtAddr(7), Expected: 0xFFFFFFFF, Actual: 0xFFFF7BFF,
		})
	}
	runs, raw := c.Close()
	fault := extract.Classify(runs[0])
	fmt.Printf("%d raw records -> %d fault(s)\n", raw, len(runs))
	fmt.Printf("corrupted bits: %v (multi-bit: %v, consecutive: %v)\n",
		fault.Bits, fault.MultiBit(), fault.Bits.Consecutive())
	// Output:
	// 3 raw records -> 1 fault(s)
	// corrupted bits: {10,15} (multi-bit: true, consecutive: false)
}
