package extract

import (
	"testing"
	"testing/quick"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

var host = cluster.NodeID{Blade: 2, SoC: 4}

func errRec(at timebase.T, addr dram.Addr, expected, actual uint32) eventlog.Record {
	return eventlog.Record{
		Kind: eventlog.KindError, At: at, Host: host,
		VAddr: dram.VirtAddr(addr), Expected: expected, Actual: actual,
		TempC: thermal.NoReading,
	}
}

func TestCollapserMergesConsecutive(t *testing.T) {
	c := NewCollapser()
	// Same cell failing for 5 consecutive checks, 11s apart: one fault.
	for i := 0; i < 5; i++ {
		c.Observe(errRec(timebase.T(100+11*i), 7, 0xFFFFFFFF, 0xFFFFFFFE))
	}
	runs, raw := c.Close()
	if raw != 5 {
		t.Fatalf("raw = %d", raw)
	}
	if len(runs) != 1 || runs[0].Logs != 5 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].FirstAt != 100 || runs[0].LastAt != 144 {
		t.Fatalf("run bounds [%v, %v]", runs[0].FirstAt, runs[0].LastAt)
	}
}

func TestCollapserSplitsOnGap(t *testing.T) {
	c := NewCollapser()
	c.Observe(errRec(100, 7, 0xFFFFFFFF, 0xFFFFFFFE))
	c.Observe(errRec(100+DefaultGap+1, 7, 0xFFFFFFFF, 0xFFFFFFFE))
	runs, _ := c.Close()
	if len(runs) != 2 {
		t.Fatalf("gap should split runs: %+v", runs)
	}
}

func TestCollapserSplitsOnPatternChange(t *testing.T) {
	c := NewCollapser()
	c.Observe(errRec(100, 7, 0xFFFFFFFF, 0xFFFFFFFE)) // bit 0
	c.Observe(errRec(111, 7, 0xFFFFFFFF, 0xFFFFFFFD)) // bit 1: new root cause
	runs, _ := c.Close()
	if len(runs) != 2 {
		t.Fatalf("pattern change should split runs: %+v", runs)
	}
}

func TestCollapserSamePatternDifferentPhase(t *testing.T) {
	// A stuck-at-0 cell shows as 1->0 on FF phases; with the XOR pattern
	// identical it keeps merging even though expected alternates... but
	// the scanner only logs on matching phases, so expected stays FF.
	c := NewCollapser()
	c.Observe(errRec(100, 9, 0xFFFFFFFF, 0xFFFFFFFE))
	c.Observe(errRec(122, 9, 0xFFFFFFFF, 0xFFFFFFFE))
	runs, _ := c.Close()
	if len(runs) != 1 || runs[0].Logs != 2 {
		t.Fatalf("phase-spaced manifestations should merge: %+v", runs)
	}
}

func TestCollapserDistinctAddresses(t *testing.T) {
	c := NewCollapser()
	c.Observe(errRec(100, 1, 0xFFFFFFFF, 0xFFFFFFFE))
	c.Observe(errRec(100, 2, 0xFFFFFFFF, 0xFFFFFFFE))
	runs, _ := c.Close()
	if len(runs) != 2 {
		t.Fatalf("different addresses must not merge: %+v", runs)
	}
}

func TestCollapserCountProperty(t *testing.T) {
	// Independent faults never exceed raw records.
	f := func(addrs []uint8, gaps []uint8) bool {
		c := NewCollapser()
		at := timebase.T(0)
		n := len(addrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			at += timebase.T(gaps[i])
			c.Observe(errRec(at, dram.Addr(addrs[i]%4), 0xFFFFFFFF, 0xFFFFFFFE))
		}
		runs, raw := c.Close()
		if int(raw) != n {
			return false
		}
		total := 0
		for _, r := range runs {
			total += r.Logs
		}
		return total == n && len(runs) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	f := Classify(RawRun{Expected: 0xFFFFFFFF, Actual: 0xFFFF7BFF})
	if f.BitCount() != 2 || !f.MultiBit() {
		t.Fatalf("bit count %d", f.BitCount())
	}
	if f.Ones2Zeros.Count() != 2 || f.Zeros2Ones.Count() != 0 {
		t.Fatal("flip directions wrong for 1->0 corruption")
	}
	f = Classify(RawRun{Expected: 0x000003C1, Actual: 0x000003C2})
	if f.Ones2Zeros.Count() != 1 || f.Zeros2Ones.Count() != 1 {
		t.Fatalf("mixed flip classification: %v %v", f.Ones2Zeros, f.Zeros2Ones)
	}
}

func TestGroupsAndSimultaneity(t *testing.T) {
	mk := func(at timebase.T, addr dram.Addr, exp, act uint32) Fault {
		return Classify(RawRun{Node: host, Addr: addr, FirstAt: at, LastAt: at, Logs: 1, Expected: exp, Actual: act})
	}
	faults := []Fault{
		// Three simultaneous singles (one glitch).
		mk(100, 1, 0xFFFFFFFF, 0xFFFFFFFE),
		mk(100, 2, 0xFFFFFFFF, 0xFFFFFFFD),
		mk(100, 3, 0xFFFFFFFF, 0xFFFFFFFB),
		// A double with a simultaneous single.
		mk(200, 4, 0xFFFFFFFF, 0xFFFF7BFF),
		mk(200, 5, 0xFFFFFFFF, 0xFFFFFFFE),
		// A lone single.
		mk(300, 6, 0xFFFFFFFF, 0xFFFFFFFE),
		// Two doubles together.
		mk(400, 7, 0xFFFFFFFF, 0xFFFF7BFF),
		mk(400, 8, 0xFFFFFFFF, 0xFFFFF9FF),
	}
	groups := Groups(faults)
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	st := Simultaneity(groups)
	if st.FaultsInGroups != 7 {
		t.Fatalf("in groups = %d, want 7", st.FaultsInGroups)
	}
	if st.SingleBitOnly != 3 {
		t.Fatalf("single-only = %d, want 3", st.SingleBitOnly)
	}
	if st.DoubleWithSingle != 1 {
		t.Fatalf("double+single = %d", st.DoubleWithSingle)
	}
	if st.DoubleDoublePairs != 1 {
		t.Fatalf("double+double = %d", st.DoubleDoublePairs)
	}
	if st.MaxGroupBits != 4 {
		t.Fatalf("max group bits = %d", st.MaxGroupBits)
	}
}

func TestGroupAccessors(t *testing.T) {
	g := Group{Faults: []Fault{
		Classify(RawRun{Expected: 0xFFFFFFFF, Actual: 0xFFFF7BFF}), // 2 bits
		Classify(RawRun{Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE}), // 1 bit
	}}
	if g.TotalBits() != 3 || g.MaxWordBits() != 2 {
		t.Fatalf("group bits: total=%d max=%d", g.TotalBits(), g.MaxWordBits())
	}
}

func TestSortFaults(t *testing.T) {
	a := Classify(RawRun{Node: cluster.NodeID{Blade: 2, SoC: 1}, FirstAt: 50})
	b := Classify(RawRun{Node: cluster.NodeID{Blade: 1, SoC: 1}, FirstAt: 50})
	c := Classify(RawRun{Node: cluster.NodeID{Blade: 1, SoC: 1}, FirstAt: 10})
	fs := []Fault{a, b, c}
	SortFaults(fs)
	if fs[0].FirstAt != 10 || fs[1].Node.Blade != 1 || fs[2].Node.Blade != 2 {
		t.Fatalf("sort order: %+v", fs)
	}
}
