// Package extract implements the error-extraction methodology of §II-C.
//
// The scanner logs every mismatch it sees, so one faulty cell showing the
// same wrong value for thousands of consecutive passes produces thousands
// of ERROR records that all share a single root cause. Extraction collapses
// such consecutive records (same node, address and corruption pattern,
// small time gap) into one *independent memory fault* — the unit every
// analysis in the paper counts.
//
// Extraction also performs the simultaneity grouping of §III-C: faults
// first observed in the same scan iteration of the same node are treated as
// one multi-region event (the per-node notion of a multi-bit error), which
// is how the paper discovered that single-bit ECC counters would badly
// misrepresent failure structure.
package extract

import (
	"cmp"
	"sort"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// RawRun is a maximal run of consecutive ERROR records sharing one root
// cause: same node, same address, same corruption pattern, adjacent in
// time. The campaign's fast-forward session simulator produces runs
// directly; real scanner logs are collapsed into runs by Collapser.
type RawRun struct {
	Node     cluster.NodeID
	Addr     dram.Addr
	FirstAt  timebase.T
	LastAt   timebase.T
	Logs     int // raw ERROR records in the run
	Expected uint32
	Actual   uint32
	TempC    float64 // temperature at first observation (NoReading if none)
}

// Fault is one independent memory error with its derived classification.
type Fault struct {
	RawRun
	// Bits is the set of corrupted logical bit positions.
	Bits dram.BitSet
	// Ones2Zeros/Zeros2Ones split Bits by flip direction.
	Ones2Zeros dram.BitSet
	Zeros2Ones dram.BitSet
}

// Classify derives the fault view of a run.
func Classify(r RawRun) Fault {
	diff := r.Expected ^ r.Actual
	return Fault{
		RawRun:     r,
		Bits:       dram.BitSet(diff),
		Ones2Zeros: dram.BitSet(r.Expected & diff),
		Zeros2Ones: dram.BitSet(r.Actual & diff),
	}
}

// BitCount returns the number of corrupted bits in the word.
func (f Fault) BitCount() int { return f.Bits.Count() }

// MultiBit reports whether the fault corrupts more than one bit of the
// word (the paper's standard definition of a multi-bit error).
func (f Fault) MultiBit() bool { return f.BitCount() > 1 }

// HasTemp reports whether the fault carries temperature telemetry.
func (f Fault) HasTemp() bool { return thermal.HasReading(f.TempC) }

// DefaultGap is the time tolerance for collapsing records into a run. The
// scanner only observes a persistent discharge on pattern phases matching
// the stuck state, so "consecutive" manifestations can be one or two scan
// iterations apart; 60 s covers several iterations of a 3 GB scan.
const DefaultGap = 60 // seconds

// Columns is struct-of-arrays storage for raw runs: one backing slice
// per RawRun field. Accumulating column-wise costs eight amortized slice
// appends per run instead of one heap object per fault, and Reset keeps
// every column's capacity for the next batch — the Collapser's finished
// runs live here so replaying a million-record file allocates only
// logarithmically many column growths.
type Columns struct {
	Node     []cluster.NodeID
	Addr     []dram.Addr
	FirstAt  []timebase.T
	LastAt   []timebase.T
	Logs     []int
	Expected []uint32
	Actual   []uint32
	TempC    []float64
}

// Len returns the number of stored runs.
func (c *Columns) Len() int { return len(c.Addr) }

// Append stores one run column-wise.
func (c *Columns) Append(r RawRun) {
	c.Node = append(c.Node, r.Node)
	c.Addr = append(c.Addr, r.Addr)
	c.FirstAt = append(c.FirstAt, r.FirstAt)
	c.LastAt = append(c.LastAt, r.LastAt)
	c.Logs = append(c.Logs, r.Logs)
	c.Expected = append(c.Expected, r.Expected)
	c.Actual = append(c.Actual, r.Actual)
	c.TempC = append(c.TempC, r.TempC)
}

// Row materializes run i as a RawRun value.
func (c *Columns) Row(i int) RawRun {
	return RawRun{
		Node: c.Node[i], Addr: c.Addr[i], FirstAt: c.FirstAt[i],
		LastAt: c.LastAt[i], Logs: c.Logs[i],
		Expected: c.Expected[i], Actual: c.Actual[i], TempC: c.TempC[i],
	}
}

// AppendRows materializes every stored run onto dst, in storage order.
func (c *Columns) AppendRows(dst []RawRun) []RawRun {
	for i := range c.Addr {
		dst = append(dst, c.Row(i))
	}
	return dst
}

// Reset truncates every column, keeping its capacity.
func (c *Columns) Reset() {
	c.Node = c.Node[:0]
	c.Addr = c.Addr[:0]
	c.FirstAt = c.FirstAt[:0]
	c.LastAt = c.LastAt[:0]
	c.Logs = c.Logs[:0]
	c.Expected = c.Expected[:0]
	c.Actual = c.Actual[:0]
	c.TempC = c.TempC[:0]
}

// Collapser streams eventlog records into runs. Feed records of a single
// node in time order (per-node log files guarantee this); Close drains
// every run and resets the collapser, so one instance (or a pooled one —
// see Reset) can process file after file without reallocating.
//
// Internally runs never exist as individual heap objects: finished runs
// accumulate in struct-of-arrays Columns, and still-open runs live in a
// reusable slab indexed by address, with freed slots recycled.
type Collapser struct {
	Gap  timebase.T          // maximum FirstAt..next gap within a run, seconds
	open map[dram.Addr]int32 // address → slot in slab
	slab []RawRun            // open-run storage; free slots are recycled
	free []int32             // slab slots available for reuse
	done Columns
	raw  int64
}

// NewCollapser returns a collapser with the default gap tolerance.
func NewCollapser() *Collapser {
	return &Collapser{Gap: DefaultGap, open: make(map[dram.Addr]int32)}
}

// slot returns a free slab index, recycling closed runs' slots.
func (c *Collapser) slot() int32 {
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free = c.free[:n-1]
		return s
	}
	c.slab = append(c.slab, RawRun{})
	return int32(len(c.slab) - 1)
}

// Observe consumes one record; non-ERROR records are ignored.
func (c *Collapser) Observe(rec eventlog.Record) {
	if rec.Kind != eventlog.KindError {
		return
	}
	addr, err := dram.AddrOfVirt(rec.VAddr)
	if err != nil {
		// Unmappable addresses cannot be grouped; count them as their own
		// single-record runs keyed by a synthesized address.
		addr = dram.Addr(rec.VAddr & 0x7fffffff)
	}
	if rec.Logs > 0 {
		// Pre-collapsed record (logs=/last= fields): the §II-C extraction
		// was already applied when this line was written, so it maps to
		// exactly one run, verbatim. Re-applying the gap heuristic here
		// would merge faults the original extraction deemed independent.
		c.raw += int64(rec.Logs)
		if i, ok := c.open[addr]; ok {
			c.done.Append(c.slab[i])
			c.free = append(c.free, i)
			delete(c.open, addr)
		}
		last := rec.LastAt
		if last < rec.At {
			last = rec.At
		}
		c.done.Append(RawRun{
			Node: rec.Host, Addr: addr, FirstAt: rec.At, LastAt: last,
			Logs: rec.Logs, Expected: rec.Expected, Actual: rec.Actual,
			TempC: rec.TempC,
		})
		return
	}
	c.raw++
	i, ok := c.open[addr]
	if ok {
		run := &c.slab[i]
		if run.Expected^run.Actual == rec.Expected^rec.Actual && rec.At-run.LastAt <= c.Gap {
			run.LastAt = rec.At
			run.Logs++
			return
		}
		c.done.Append(*run)
	} else {
		i = c.slot()
		c.open[addr] = i
	}
	c.slab[i] = RawRun{
		Node: rec.Host, Addr: addr, FirstAt: rec.At, LastAt: rec.At, Logs: 1,
		Expected: rec.Expected, Actual: rec.Actual, TempC: rec.TempC,
	}
}

// Close flushes open runs and returns every run in first-seen order along
// with the raw record count, then resets the collapser for reuse. The
// returned slice is freshly allocated and owned by the caller.
func (c *Collapser) Close() ([]RawRun, int64) {
	out, raw := c.Snapshot()
	c.Reset()
	return out, raw
}

// Snapshot returns every run as Close would — finished runs plus the
// still-open ones flushed as-if-closed, sorted the same way — without
// mutating the collapser: subsequent Observes keep extending the open
// runs. It is the follow-mode serving core's view of a node mid-tail,
// and at quiescence it is exactly what Close would have returned. The
// returned slice is freshly allocated and owned by the caller.
func (c *Collapser) Snapshot() ([]RawRun, int64) {
	out := c.done.AppendRows(make([]RawRun, 0, c.done.Len()+len(c.open)))
	for _, i := range c.open {
		out = append(out, c.slab[i])
	}
	// The open set is a map: the sort below dominates its iteration order,
	// so two snapshots of identical state are identical slices.
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstAt != out[j].FirstAt {
			return out[i].FirstAt < out[j].FirstAt
		}
		return out[i].Addr < out[j].Addr
	})
	return out, c.raw
}

// Reset returns the collapser to its empty state, keeping every backing
// allocation (columns, slab, address map) for the next batch of records.
func (c *Collapser) Reset() {
	clear(c.open)
	c.slab = c.slab[:0]
	c.free = c.free[:0]
	c.done.Reset()
	c.raw = 0
}

// Faults classifies a slice of runs.
func Faults(runs []RawRun) []Fault {
	out := make([]Fault, len(runs))
	for i, r := range runs {
		out[i] = Classify(r)
	}
	return out
}

// Compare is the canonical total order over faults: (time, node, address,
// pattern, extent, temperature). Every field participates so the order is
// identical no matter how parallel simulation interleaved the input (two
// glitches can corrupt the same address in the same iteration with
// different patterns, so the key must go all the way down); Compare
// returns 0 only for faults that are equal in every observable field. The
// campaign's k-way merge relies on this totality: per-node streams sorted
// by Compare merge into one canonical global sequence.
func Compare(a, b *Fault) int {
	switch {
	case a.FirstAt != b.FirstAt:
		return cmp.Compare(a.FirstAt, b.FirstAt)
	case a.Node.Blade != b.Node.Blade:
		// (Blade, SoC) matches Index() order on valid IDs but stays
		// injective on arbitrary ones, keeping the order truly total.
		return cmp.Compare(a.Node.Blade, b.Node.Blade)
	case a.Node.SoC != b.Node.SoC:
		return cmp.Compare(a.Node.SoC, b.Node.SoC)
	case a.Addr != b.Addr:
		return cmp.Compare(a.Addr, b.Addr)
	case a.Expected != b.Expected:
		return cmp.Compare(a.Expected, b.Expected)
	case a.Actual != b.Actual:
		return cmp.Compare(a.Actual, b.Actual)
	case a.LastAt != b.LastAt:
		return cmp.Compare(a.LastAt, b.LastAt)
	case a.Logs != b.Logs:
		return cmp.Compare(a.Logs, b.Logs)
	default:
		// TempC is a plain float (NoReading sentinel, never NaN), so this
		// final tiebreak keeps the order total.
		return cmp.Compare(a.TempC, b.TempC)
	}
}

// SortFaults orders faults by the canonical Compare key.
func SortFaults(fs []Fault) {
	sort.Slice(fs, func(i, j int) bool { return Compare(&fs[i], &fs[j]) < 0 })
}

// Group is a set of faults first observed in the same scan iteration of
// the same node — the paper's "simultaneous corruptions" (§III-C).
type Group struct {
	Node   cluster.NodeID
	At     timebase.T
	Faults []Fault
}

// TotalBits returns the number of corrupted bits across the whole group
// (the paper saw one event corrupt 36 bits across different words).
func (g Group) TotalBits() int {
	total := 0
	for _, f := range g.Faults {
		total += f.BitCount()
	}
	return total
}

// MaxWordBits returns the largest per-word bit count in the group.
func (g Group) MaxWordBits() int {
	max := 0
	for _, f := range g.Faults {
		if n := f.BitCount(); n > max {
			max = n
		}
	}
	return max
}

// Groups buckets faults into simultaneity groups. Faults must not be
// mutated afterwards; group membership shares the input slice's values.
func Groups(fs []Fault) []Group {
	type key struct {
		node cluster.NodeID
		at   timebase.T
	}
	idx := make(map[key]int)
	var out []Group
	for _, f := range fs {
		k := key{f.Node, f.FirstAt}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, Group{Node: f.Node, At: f.FirstAt})
		}
		out[i].Faults = append(out[i].Faults, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node.Index() < out[j].Node.Index()
	})
	return out
}

// Grouper buckets a fault stream into simultaneity groups incrementally.
// It requires the canonical Compare order (or any order where faults of one
// (node, FirstAt) key are contiguous): every time the key changes, the
// finished group is handed to emit. This is the streaming counterpart of
// Groups for one-pass replay pipelines. Call Flush after the last fault.
type Grouper struct {
	emit func(Group)
	cur  Group
	live bool
}

// NewGrouper returns a grouper delivering completed groups to emit.
func NewGrouper(emit func(Group)) *Grouper {
	return &Grouper{emit: emit}
}

// Observe consumes the next fault of a canonically ordered stream.
func (g *Grouper) Observe(f Fault) {
	if g.live && (g.cur.Node != f.Node || g.cur.At != f.FirstAt) {
		g.emit(g.cur)
		g.live = false
	}
	if !g.live {
		g.cur = Group{Node: f.Node, At: f.FirstAt}
		g.live = true
	}
	g.cur.Faults = append(g.cur.Faults, f)
}

// Flush emits the trailing group, if any.
func (g *Grouper) Flush() {
	if g.live {
		g.emit(g.cur)
		g.live = false
		g.cur = Group{}
	}
}

// SimultaneityStats are the §III-C aggregates.
type SimultaneityStats struct {
	// FaultsInGroups counts faults that co-occurred with at least one
	// other fault on the same node (paper: >26,000).
	FaultsInGroups int
	// SingleBitOnly counts co-occurring faults where every member of the
	// group is single-bit (paper: >99.9% of the above).
	SingleBitOnly int
	// DoubleWithSingle counts double-bit faults co-occurring with a
	// single-bit fault elsewhere (paper: 44).
	DoubleWithSingle int
	// TripleWithSingle counts triple-bit faults co-occurring with a
	// single-bit fault (paper: 2).
	TripleWithSingle int
	// DoubleDoublePairs counts groups containing two double-bit faults
	// (paper: 1).
	DoubleDoublePairs int
	// MaxGroupBits is the largest total corrupted bits in one group
	// (paper: 36).
	MaxGroupBits int
}

// Observe folds one completed group into the aggregates. Streaming
// consumers pair it with a Grouper; Simultaneity applies it to a slice.
func (s *SimultaneityStats) Observe(g Group) {
	if tb := g.TotalBits(); tb > s.MaxGroupBits {
		s.MaxGroupBits = tb
	}
	if len(g.Faults) < 2 {
		return
	}
	s.FaultsInGroups += len(g.Faults)
	allSingle := true
	singles, doubles, triples := 0, 0, 0
	for _, f := range g.Faults {
		switch f.BitCount() {
		case 1:
			singles++
		case 2:
			doubles++
			allSingle = false
		case 3:
			triples++
			allSingle = false
		default:
			allSingle = false
		}
	}
	if allSingle {
		s.SingleBitOnly += len(g.Faults)
	}
	if doubles > 0 && singles > 0 {
		s.DoubleWithSingle += doubles
	}
	if triples > 0 && singles > 0 {
		s.TripleWithSingle += triples
	}
	if doubles >= 2 {
		s.DoubleDoublePairs += doubles / 2
	}
}

// Simultaneity computes the §III-C aggregates over groups.
func Simultaneity(groups []Group) SimultaneityStats {
	var s SimultaneityStats
	for _, g := range groups {
		s.Observe(g)
	}
	return s
}
