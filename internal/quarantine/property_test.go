package quarantine

import (
	"testing"
	"testing/quick"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// TestConservationProperty: for any fault stream and any policy,
// errors + prevented == total, and node-days equals entries × period.
func TestConservationProperty(t *testing.T) {
	f := func(gaps []uint16, nodes []uint8, periodDays uint8) bool {
		n := len(gaps)
		if len(nodes) < n {
			n = len(nodes)
		}
		var faults []extract.Fault
		at := timebase.T(0)
		for i := 0; i < n; i++ {
			at += timebase.T(gaps[i])
			faults = append(faults, extract.Classify(extract.RawRun{
				Node:    cluster.NodeID{Blade: int(nodes[i])%8 + 1, SoC: 1},
				Addr:    dram.Addr(i),
				FirstAt: at, LastAt: at, Logs: 1,
				Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE,
			}))
		}
		p := DefaultTrigger(time.Duration(periodDays%31) * 24 * time.Hour)
		res := Simulate(faults, p)
		if res.Errors+res.Prevented != n {
			return false
		}
		wantDays := float64(res.Entries) * float64(periodDays%31)
		return res.NodeDaysQuarantined == wantDays
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPreventionNeedsPeriod: with a zero period nothing is ever prevented,
// whatever the stream looks like.
func TestPreventionNeedsPeriod(t *testing.T) {
	f := func(gaps []uint8) bool {
		var faults []extract.Fault
		at := timebase.T(0)
		for i, g := range gaps {
			at += timebase.T(g)
			faults = append(faults, extract.Classify(extract.RawRun{
				Node: cluster.NodeID{Blade: 1, SoC: 1}, Addr: dram.Addr(i),
				FirstAt: at, LastAt: at, Logs: 1,
				Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE,
			}))
		}
		res := Simulate(faults, DefaultTrigger(0))
		return res.Prevented == 0 && res.Errors == len(faults)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDenseBurstMostlyPrevented: a dense enough burst is almost entirely
// absorbed regardless of its exact shape.
func TestDenseBurstMostlyPrevented(t *testing.T) {
	f := func(seed uint8) bool {
		var faults []extract.Fault
		at := timebase.T(int(seed) * 1000)
		for i := 0; i < 200; i++ {
			at += timebase.T(600 + int(seed)%60) // ~10 min apart
			faults = append(faults, extract.Classify(extract.RawRun{
				Node: cluster.NodeID{Blade: 2, SoC: 2}, Addr: dram.Addr(i),
				FirstAt: at, LastAt: at, Logs: 1,
				Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE,
			}))
		}
		res := Simulate(faults, DefaultTrigger(10*24*time.Hour))
		// The trigger fires on the 4th error within 24h; everything after
		// is inside one long quarantine.
		return res.Errors <= 4 && res.Prevented >= 196
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
