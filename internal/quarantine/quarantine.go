// Package quarantine implements §IV's failure-avoidance proposal: put a
// node in quarantine as soon as it shows an abnormally high error rate,
// instead of waiting for a long failure history. The simulator replays the
// study's independent-error log; errors on quarantined nodes are prevented
// (the node would not have been running jobs). Table II sweeps the
// quarantine period from 0 to 30 days: 30-day quarantine raised system
// MTBF from 2.1 h to 156.9 h at a cost of 180 node-days (<0.1% of node
// availability).
package quarantine

import (
	"sort"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// Policy parameterizes the quarantine trigger.
type Policy struct {
	// Period is how long a node stays quarantined.
	Period time.Duration
	// TriggerCount errors within TriggerWindow send a node to quarantine
	// ("abnormally high error rate"; the paper classifies >3 errors/day as
	// degraded).
	TriggerCount  int
	TriggerWindow time.Duration
}

// DefaultTrigger matches the paper's degraded-day rule: a fourth error
// within 24 hours is abnormal.
func DefaultTrigger(period time.Duration) Policy {
	return Policy{Period: period, TriggerCount: 4, TriggerWindow: 24 * time.Hour}
}

// Result summarizes one simulated policy (one row of Table II).
type Result struct {
	Policy Policy
	// Errors is how many errors still occurred (outside quarantine).
	Errors int
	// Prevented is how many errors fell inside quarantine windows.
	Prevented int
	// NodeDaysQuarantined is the availability cost.
	NodeDaysQuarantined float64
	// MTBFHours is study wall-clock hours per surviving error.
	MTBFHours float64
	// Entries counts quarantine activations.
	Entries int
}

// nodeState tracks the rolling trigger window and quarantine status.
type nodeState struct {
	recent         []timebase.T
	quarantinedTil timebase.T
}

// Simulate replays faults (must be time-ordered) under the policy.
// Faults of excluded nodes (the permanently failed 02-04) are skipped, as
// in the paper's Table II.
func Simulate(faults []extract.Fault, p Policy, exclude ...cluster.NodeID) Result {
	skip := make(map[cluster.NodeID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	states := make(map[cluster.NodeID]*nodeState)
	res := Result{Policy: p}
	period := timebase.T(p.Period / time.Second)
	window := timebase.T(p.TriggerWindow / time.Second)
	for _, f := range faults {
		if skip[f.Node] {
			continue
		}
		st, ok := states[f.Node]
		if !ok {
			st = &nodeState{}
			states[f.Node] = st
		}
		if f.FirstAt < st.quarantinedTil {
			res.Prevented++
			continue
		}
		res.Errors++
		if period <= 0 {
			continue
		}
		// Slide the trigger window (exclusive at the trailing edge: an
		// error exactly TriggerWindow ago no longer counts).
		st.recent = append(st.recent, f.FirstAt)
		cut := 0
		for cut < len(st.recent) && st.recent[cut] <= f.FirstAt-window {
			cut++
		}
		st.recent = st.recent[cut:]
		if len(st.recent) >= p.TriggerCount {
			st.quarantinedTil = f.FirstAt + period
			st.recent = st.recent[:0]
			res.Entries++
			res.NodeDaysQuarantined += float64(period) / 86400
		}
	}
	if res.Errors > 0 {
		res.MTBFHours = float64(timebase.StudySeconds) / 3600 / float64(res.Errors)
	}
	return res
}

// Sweep runs Table II: one simulation per quarantine period (days).
func Sweep(faults []extract.Fault, periodsDays []int, exclude ...cluster.NodeID) []Result {
	ordered := append([]extract.Fault(nil), faults...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].FirstAt < ordered[j].FirstAt })
	out := make([]Result, 0, len(periodsDays))
	for _, days := range periodsDays {
		p := DefaultTrigger(time.Duration(days) * 24 * time.Hour)
		out = append(out, Simulate(ordered, p, exclude...))
	}
	return out
}

// PaperPeriods are Table II's quarantine periods in days.
var PaperPeriods = []int{0, 5, 10, 15, 20, 25, 30}
