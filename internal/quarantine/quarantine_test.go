package quarantine

import (
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

var (
	burstNode = cluster.NodeID{Blade: 4, SoC: 5}
	quietNode = cluster.NodeID{Blade: 9, SoC: 9}
)

func mk(node cluster.NodeID, at timebase.T) extract.Fault {
	return extract.Classify(extract.RawRun{
		Node: node, Addr: dram.Addr(at % 1000), FirstAt: at, LastAt: at,
		Logs: 1, Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE,
	})
}

// burstFixture: a 10-day burst of 20 errors/day on one node, plus 3
// scattered errors on another.
func burstFixture() []extract.Fault {
	var out []extract.Fault
	day := timebase.T(86400)
	for d := 0; d < 10; d++ {
		for e := 0; e < 20; e++ {
			out = append(out, mk(burstNode, timebase.T(100*86400)+timebase.T(d)*day+timebase.T(e)*3000))
		}
	}
	out = append(out,
		mk(quietNode, 5*day),
		mk(quietNode, 150*day),
		mk(quietNode, 300*day),
	)
	extract.SortFaults(out)
	return out
}

func TestZeroPeriodIsPassThrough(t *testing.T) {
	faults := burstFixture()
	res := Simulate(faults, DefaultTrigger(0))
	if res.Errors != len(faults) || res.Prevented != 0 {
		t.Fatalf("P=0: %+v", res)
	}
	if res.NodeDaysQuarantined != 0 {
		t.Fatal("no quarantine at P=0")
	}
}

func TestQuarantineAbsorbsBurst(t *testing.T) {
	faults := burstFixture()
	res := Simulate(faults, DefaultTrigger(5*24*time.Hour))
	// Trigger on the 4th error of day one; the 5-day quarantine absorbs
	// days 1-5; re-trigger absorbs the rest.
	if res.Errors >= 30 {
		t.Fatalf("quarantine left %d errors of %d", res.Errors, len(faults))
	}
	if res.Prevented+res.Errors != len(faults) {
		t.Fatal("errors + prevented must equal total")
	}
	if res.Entries < 1 || res.NodeDaysQuarantined < 5 {
		t.Fatalf("entries=%d days=%v", res.Entries, res.NodeDaysQuarantined)
	}
	// Scattered errors never trigger.
	res30 := Simulate(faults, DefaultTrigger(30*24*time.Hour))
	if res30.Errors < 3 {
		t.Fatal("quiet node errors should survive (never quarantined)")
	}
}

func TestLongerPeriodsNeverWorseOnBursts(t *testing.T) {
	faults := burstFixture()
	results := Sweep(faults, PaperPeriods)
	if len(results) != len(PaperPeriods) {
		t.Fatal("sweep size")
	}
	if results[0].Errors != len(faults) {
		t.Fatal("P=0 baseline")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Errors > results[0].Errors {
			t.Fatalf("quarantine increased errors: %+v", results[i])
		}
	}
	// MTBF improves by orders of magnitude at P=30 on this fixture.
	if results[len(results)-1].MTBFHours < 10*results[0].MTBFHours {
		t.Fatalf("MTBF gain too small: %v -> %v",
			results[0].MTBFHours, results[len(results)-1].MTBFHours)
	}
}

func TestExclusion(t *testing.T) {
	faults := burstFixture()
	res := Simulate(faults, DefaultTrigger(0), burstNode)
	if res.Errors != 3 {
		t.Fatalf("excluding the burst node should leave 3, got %d", res.Errors)
	}
}

func TestTriggerWindowSlides(t *testing.T) {
	// 3 errors per day never reach the 4-in-24h trigger.
	var faults []extract.Fault
	day := timebase.T(86400)
	for d := 0; d < 30; d++ {
		for e := 0; e < 3; e++ {
			faults = append(faults, mk(burstNode, timebase.T(d)*day+timebase.T(e)*20000))
		}
	}
	res := Simulate(faults, DefaultTrigger(10*24*time.Hour))
	if res.Entries != 0 {
		t.Fatalf("sub-threshold rate triggered quarantine %d times", res.Entries)
	}
}
