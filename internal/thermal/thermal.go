// Package thermal models node temperature telemetry.
//
// The paper logs node temperature with every scanner event, but telemetry
// only started in April 2015, so early errors carry no temperature (§III-F).
// Observed behaviour to reproduce:
//   - the machine room was held between 18°C and 26°C;
//   - the scanner barely stresses the CPU, so most errors are logged at
//     30–40°C node temperature;
//   - a small set of errors occurred above 60°C (possibly temperature
//     induced), none of them multi-bit;
//   - SoC 12 of most blades overheats because of its position in the rack
//     and was eventually powered off.
package thermal

import (
	"math"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/rng"
	"unprotected/internal/timebase"
)

// TelemetryStart is when temperature logging began (April 2015). Events
// before this instant have no temperature attached.
var TelemetryStart = timebase.FromTime(time.Date(2015, time.April, 15, 0, 0, 0, 0, time.UTC))

// NoReading is the sentinel for "temperature unknown" (pre-telemetry).
const NoReading = -273.0

// Model computes node temperatures. The zero value is not useful; use New.
type Model struct {
	// RoomBase and RoomSwing bound the machine-room ambient temperature:
	// ambient oscillates seasonally and diurnally within [18, 26]°C.
	RoomBase, RoomSwing float64
	// IdleDelta is the node-over-ambient delta while running only the
	// scanner (low CPU stress).
	IdleDelta float64
	// SoC12Delta is the extra heating of the SoC-12 rack position.
	SoC12Delta float64
	// NeighborDelta is the extra heating of nodes adjacent to SoC 12
	// while SoC 12 is powered (it "produces heat for other nodes").
	NeighborDelta float64
	// Noise is the standard deviation of per-reading jitter.
	Noise float64
	// TelemetryStart gates whether a reading exists.
	TelemetryStart timebase.T
}

// New returns the model calibrated to the paper's observations.
func New() *Model {
	return &Model{
		RoomBase:       22, // midpoint of the 18..26 band
		RoomSwing:      3,
		IdleDelta:      12, // idle node sits ~30-40°C
		SoC12Delta:     26, // overheating position reaches >60°C
		NeighborDelta:  5,
		Noise:          2.2,
		TelemetryStart: TelemetryStart,
	}
}

// Ambient returns the machine-room temperature at t: a seasonal term plus a
// small diurnal term, clamped to the [18, 26] control band.
func (m *Model) Ambient(t timebase.T) float64 {
	abs := t.Time()
	// Seasonal phase: coldest early February, warmest early August.
	yearFrac := float64(abs.YearDay()) / 365
	seasonal := -math.Cos(2 * math.Pi * yearFrac)
	// Diurnal phase: warmest mid-afternoon local time.
	hour := float64(t.HourOfDay())
	diurnal := math.Sin(2 * math.Pi * (hour - 9) / 24)
	a := m.RoomBase + m.RoomSwing*0.8*seasonal + m.RoomSwing*0.25*diurnal
	if a < 18 {
		a = 18
	}
	if a > 26 {
		a = 26
	}
	return a
}

// NodeTemp returns the temperature of a node at t while it is running the
// scanner, or NoReading if telemetry had not started yet. soc12Powered says
// whether the SoC-12 position of that blade is still powered at t (the
// overheating deltas disappear once administrators turn those SoCs off).
func (m *Model) NodeTemp(id cluster.NodeID, t timebase.T, soc12Powered bool, r *rng.Stream) float64 {
	if t < m.TelemetryStart {
		return NoReading
	}
	temp := m.Ambient(t) + m.IdleDelta
	if soc12Powered {
		switch {
		case id.SoC == 12:
			temp += m.SoC12Delta
		case id.SoC == 11 || id.SoC == 13:
			temp += m.NeighborDelta
		}
	}
	if r != nil {
		temp += r.Normal(0, m.Noise)
	}
	return temp
}

// HasReading reports whether a temperature value represents real telemetry.
func HasReading(temp float64) bool { return temp > NoReading+1 }
