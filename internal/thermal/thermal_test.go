package thermal

import (
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/rng"
	"unprotected/internal/timebase"
)

func at(y int, m time.Month, d, hh int) timebase.T {
	return timebase.FromTime(time.Date(y, m, d, hh, 0, 0, 0, time.UTC))
}

func TestAmbientBand(t *testing.T) {
	m := New()
	for day := 0; day < 394; day += 5 {
		for _, hh := range []int{3, 9, 15, 21} {
			ts := timebase.T(int64(day)*86400 + int64(hh)*3600)
			a := m.Ambient(ts)
			if a < 18 || a > 26 {
				t.Fatalf("ambient %v outside the 18-26°C machine-room band", a)
			}
		}
	}
}

func TestPreTelemetryNoReading(t *testing.T) {
	m := New()
	id := cluster.NodeID{Blade: 10, SoC: 5}
	temp := m.NodeTemp(id, at(2015, time.March, 1, 12), true, nil)
	if HasReading(temp) {
		t.Fatalf("March 2015 reading should be absent, got %v", temp)
	}
	temp = m.NodeTemp(id, at(2015, time.May, 1, 12), true, nil)
	if !HasReading(temp) {
		t.Fatal("May 2015 reading should exist")
	}
}

func TestNominalBand(t *testing.T) {
	// The scanner barely stresses the node: most readings sit 30-40°C.
	m := New()
	r := rng.New(5)
	id := cluster.NodeID{Blade: 20, SoC: 5}
	in := 0
	const n = 2000
	for i := 0; i < n; i++ {
		ts := at(2015, time.June, 1, 0) + timebase.T(i*3600)
		temp := m.NodeTemp(id, ts, false, r)
		if temp >= 30 && temp <= 40 {
			in++
		}
	}
	if frac := float64(in) / n; frac < 0.80 {
		t.Fatalf("only %v of readings in the nominal 30-40°C band", frac)
	}
}

func TestSoC12Overheats(t *testing.T) {
	m := New()
	ts := at(2015, time.May, 10, 14)
	hot := m.NodeTemp(cluster.NodeID{Blade: 20, SoC: 12}, ts, true, nil)
	normal := m.NodeTemp(cluster.NodeID{Blade: 20, SoC: 5}, ts, true, nil)
	if hot < 60 {
		t.Fatalf("SoC 12 at %v°C, should exceed 60°C while powered", hot)
	}
	if hot <= normal {
		t.Fatal("SoC 12 must run hotter than mid-blade SoCs")
	}
	// Neighbours pick up heat while SoC 12 is powered.
	n11 := m.NodeTemp(cluster.NodeID{Blade: 20, SoC: 11}, ts, true, nil)
	if n11 <= normal {
		t.Fatal("SoC 11 should be warmer than mid-blade while SoC 12 powered")
	}
	// After the power-off, the deltas disappear.
	off := m.NodeTemp(cluster.NodeID{Blade: 20, SoC: 11}, ts, false, nil)
	if off >= n11 {
		t.Fatal("SoC 11 should cool once SoC 12 is off")
	}
}

func TestHasReadingSentinel(t *testing.T) {
	if HasReading(NoReading) {
		t.Fatal("NoReading must not count as a reading")
	}
	if !HasReading(35) {
		t.Fatal("35°C is a reading")
	}
}
