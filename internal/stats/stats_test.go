package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("mean %v", m)
	}
	// Sample variance with n-1: sum sq dev = 32, n-1 = 7.
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Fatalf("variance %v", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/short inputs should be 0")
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); !almost(m, 3, 1e-12) {
		t.Fatalf("median %v", m)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 %v", p)
	}
	if p := Percentile(xs, 25); !almost(p, 2, 1e-12) {
		t.Fatalf("p25 %v", p)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax %v %v", lo, hi)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.R, 1, 1e-12) || r.P > 1e-9 {
		t.Fatalf("perfect correlation: r=%v p=%v", r.R, r.P)
	}
	for i := range ys {
		ys[i] = -ys[i]
	}
	r, _ = Pearson(xs, ys)
	if !almost(r.R, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation: r=%v", r.R)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Anscombe's quartet I: r = 0.81642.
	xs := []float64{10, 8, 13, 9, 11, 14, 6, 4, 12, 7, 5}
	ys := []float64{8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.R, 0.81642, 5e-5) {
		t.Fatalf("Anscombe r = %v, want 0.81642", r.R)
	}
	// Known two-tailed p for r=0.81642, n=11 is ~0.00217.
	if !almost(r.P, 0.00217, 2e-4) {
		t.Fatalf("Anscombe p = %v, want ~0.00217", r.P)
	}
}

func TestPearsonPaperScale(t *testing.T) {
	// The paper's r=-0.17966 with n=394 gives p≈0.0002 (reported 0.0002).
	// Verify our p-value machinery reproduces that mapping.
	n := 394.0
	r := -0.17966
	tstat := r * math.Sqrt((n-2)/(1-r*r))
	p := 2 * studentTSF(math.Abs(tstat), n-2)
	if !almost(p, 0.000338, 5e-5) {
		t.Fatalf("p = %v for paper r; expected ~3.4e-4", p)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{3, 4}); err != ErrShort {
		t.Fatalf("short input: %v", err)
	}
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r.R != 0 || r.P != 1 {
		t.Fatalf("constant series: r=%v p=%v err=%v", r.R, r.P, err)
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	if v := RegIncBeta(2, 3, 0); v != 0 {
		t.Fatalf("I_0 = %v", v)
	}
	if v := RegIncBeta(2, 3, 1); v != 1 {
		t.Fatalf("I_1 = %v", v)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	f := func(aRaw, bRaw, xRaw uint16) bool {
		a := 0.5 + float64(aRaw%100)/10
		b := 0.5 + float64(bRaw%100)/10
		x := float64(xRaw%1000)/1000*0.98 + 0.01
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almost(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// I_{1/2}(a,a) = 1/2 exactly for symmetric beta.
	for _, a := range []float64{0.5, 1, 2, 7.5} {
		if v := RegIncBeta(a, a, 0.5); !almost(v, 0.5, 1e-10) {
			t.Fatalf("I_0.5(%v,%v) = %v", a, a, v)
		}
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	rnd := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rnd.IntN(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rnd.NormFloat64()
			ys[i] = rnd.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if r.R < -1 || r.R > 1 || r.P < 0 || r.P > 1 {
			t.Fatalf("out of bounds: r=%v p=%v", r.R, r.P)
		}
	}
}
