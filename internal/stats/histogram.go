package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binned counter over a closed range [Lo, Hi).
// Values outside the range are clamped into the first/last bin so figure
// code never silently drops observations.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, n)}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinIndex returns the bin an observation falls into, clamped.
func (h *Histogram) BinIndex(x float64) int {
	i := int(math.Floor((x - h.Lo) / h.BinWidth()))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Add increments the bin containing x by w.
func (h *Histogram) Add(x, w float64) { h.Counts[h.BinIndex(x)] += w }

// Observe increments the bin containing x by one.
func (h *Histogram) Observe(x float64) { h.Add(x, 1) }

// Total returns the sum of all bin counts.
func (h *Histogram) Total() float64 { return Sum(h.Counts) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// MaxBin returns the index of the largest bin (first on ties).
func (h *Histogram) MaxBin() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) n=%d total=%g", h.Lo, h.Hi, len(h.Counts), h.Total())
}

// Bootstrap draws nResample bootstrap replicates of statistic f over xs and
// returns the (lo, hi) percentile interval, e.g. 2.5/97.5 for a 95% CI.
// The caller supplies the random source to keep determinism in their hands.
func Bootstrap(xs []float64, nResample int, loPct, hiPct float64,
	f func([]float64) float64, uniform func(n int) int) (lo, hi float64) {
	if len(xs) == 0 || nResample <= 0 {
		return 0, 0
	}
	reps := make([]float64, nResample)
	sample := make([]float64, len(xs))
	for r := 0; r < nResample; r++ {
		for i := range sample {
			sample[i] = xs[uniform(len(xs))]
		}
		reps[r] = f(sample)
	}
	return Percentile(reps, loPct), Percentile(reps, hiPct)
}
