package stats

import (
	"math/rand/v2"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if w := h.BinWidth(); w != 2 {
		t.Fatalf("bin width %v", w)
	}
	h.Observe(0)   // bin 0
	h.Observe(1.9) // bin 0
	h.Observe(2)   // bin 1
	h.Observe(9.9) // bin 4
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("total %v", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(-3)  // clamps to bin 0
	h.Observe(100) // clamps to last bin
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamped counts %v", h.Counts)
	}
}

func TestHistogramCentersAndMax(t *testing.T) {
	h := NewHistogram(10, 20, 5)
	if c := h.BinCenter(0); c != 11 {
		t.Fatalf("center %v", c)
	}
	h.Add(12, 3)
	h.Add(18, 5)
	if h.MaxBin() != 4 {
		t.Fatalf("max bin %d", h.MaxBin())
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // forced to sane shape
	h.Observe(5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram unusable")
	}
}

func TestBootstrap(t *testing.T) {
	rnd := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rnd.NormFloat64() + 10
	}
	lo, hi := Bootstrap(xs, 500, 2.5, 97.5, Mean, func(n int) int { return rnd.IntN(n) })
	if !(lo < 10 && 10 < hi) {
		t.Fatalf("bootstrap CI [%v, %v] excludes true mean", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("bootstrap CI too wide: [%v, %v]", lo, hi)
	}
	lo, hi = Bootstrap(nil, 100, 2.5, 97.5, Mean, func(n int) int { return 0 })
	if lo != 0 || hi != 0 {
		t.Fatal("empty input should yield zero CI")
	}
}
