// Package stats implements the statistical machinery the paper's analysis
// uses: descriptive statistics, histograms, Pearson correlation with a
// two-tailed p-value (Student's t via the regularized incomplete beta
// function), and bootstrap confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrShort is returned when a computation needs more data points.
var ErrShort = errors.New("stats: not enough data points")

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the extrema of xs; (0,0) for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0..100) by linear interpolation
// between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// PearsonResult carries a correlation coefficient with its significance.
type PearsonResult struct {
	R      float64 // correlation coefficient in [-1, 1]
	P      float64 // two-tailed p-value under H0: rho = 0
	N      int     // number of pairs
	TValue float64 // t statistic with N-2 degrees of freedom
}

// Pearson computes the sample Pearson correlation between paired series and
// its two-tailed p-value. The paper reports r = -0.17966, p = 0.0002 between
// daily terabyte-hours scanned and daily error counts (§III-G).
func Pearson(xs, ys []float64) (PearsonResult, error) {
	if len(xs) != len(ys) {
		return PearsonResult{}, errors.New("stats: length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return PearsonResult{}, ErrShort
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return PearsonResult{R: 0, P: 1, N: n}, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp against floating point drift.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	df := float64(n - 2)
	var p, t float64
	switch {
	case math.Abs(r) >= 1:
		p = 0
		t = math.Inf(1)
	default:
		t = r * math.Sqrt(df/(1-r*r))
		p = 2 * studentTSF(math.Abs(t), df)
	}
	return PearsonResult{R: r, P: p, N: n, TValue: t}, nil
}

// studentTSF is the survival function P(T > t) for Student's t with df
// degrees of freedom, t >= 0, via the regularized incomplete beta function:
// P(T > t) = 0.5 * I_{df/(df+t^2)}(df/2, 1/2).
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// lgamma returns log |Gamma(x)|.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
