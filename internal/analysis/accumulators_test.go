package analysis

import (
	"reflect"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/rng"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// accumFixture builds a synthetic dataset with enough structure to
// exercise every accumulator: multiple nodes, FirstAt ties (simultaneity
// groups), a multi-bit mix, pre- and post-telemetry temperatures, multi-day
// sessions and an excluded controller node.
func accumFixture() *Dataset {
	r := rng.New(5)
	day := timebase.T(86400)
	controller := cluster.NodeID{Blade: 2, SoC: 4}
	var faults []extract.Fault
	var sessions []eventlog.Session
	rawByNode := make(map[cluster.NodeID]int64)
	var raw int64
	for n := 0; n < 12; n++ {
		host := cluster.NodeID{Blade: n/4 + 1, SoC: n%4 + 1}
		if n == 5 {
			host = controller
		}
		for i := 0; i < 40; i++ {
			at := day*timebase.T(5+i%200) + timebase.T((i/3)*977)
			temp := thermal.NoReading
			if i%4 != 0 {
				temp = 20 + r.Float64()*45
			}
			mask := uint32(1) << (i % 32)
			if i%9 == 0 {
				mask |= 1 << ((i + 7) % 32)
			}
			if i%27 == 0 {
				mask |= 0xf << (i % 20)
			}
			logs := 1 + r.IntN(30)
			faults = append(faults, extract.Classify(extract.RawRun{
				Node: host, Addr: dram.Addr(i * 31), FirstAt: at, LastAt: at + 30,
				Logs: logs, Expected: 0xffffffff, Actual: 0xffffffff ^ mask,
				TempC: temp,
			}))
			raw += int64(logs)
			rawByNode[host] += int64(logs)
		}
		for s := 0; s < 10; s++ {
			from := day*timebase.T(3*s) + timebase.T(r.IntN(7200))
			sess := eventlog.Session{Host: host, From: from, To: from + day + 3600, AllocBytes: 3 << 30}
			if s%5 == 2 {
				sess.Truncated = true
			}
			sessions = append(sessions, sess)
		}
	}
	extract.SortFaults(faults)
	return &Dataset{
		Faults: faults, Sessions: sessions,
		RawLogs: raw, RawLogsByNode: rawByNode,
		Topo:           cluster.PaperTopology(),
		ControllerNode: controller,
	}
}

// TestAccumulatorsMatchSliceFunctions: streaming the dataset through the
// bundle must reproduce every slice-based computation exactly — same
// arithmetic, same order, same floats.
func TestAccumulatorsMatchSliceFunctions(t *testing.T) {
	d := accumFixture()
	a := NewAccumulators(d.ControllerNode)
	for _, f := range d.Faults {
		a.ObserveFault(f)
	}
	for _, s := range d.Sessions {
		a.ObserveSession(s)
	}

	if got, want := a.Headline.Headline(d.RawLogs, d.RawLogsByNode, d.Topo), ComputeHeadline(d); got != want {
		t.Fatalf("headline diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.HourOfDay, ComputeHourOfDay(d.Faults); *got != *want {
		t.Fatal("hour-of-day diverged")
	}
	if got, want := a.Temperature, ComputeTemperature(d.Faults); !reflect.DeepEqual(got, want) {
		t.Fatal("temperature diverged")
	}
	if got, want := a.MultiBit.Stats(), ComputeMultiBitStats(d.Faults); got != want {
		t.Fatalf("multi-bit stats diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.Simultaneity.Figure(), ComputeSimultaneityFigure(d.Faults); *got != *want {
		t.Fatalf("simultaneity figure diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.Simultaneity.Stats(), extract.Simultaneity(extract.Groups(d.Faults)); got != want {
		t.Fatalf("simultaneity stats diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.Daily.Scanned, DailyScanned(d); !reflect.DeepEqual(got, want) {
		t.Fatal("daily scanned diverged")
	}
	if got, want := a.Daily.Errors, DailyErrors(d.Faults); !reflect.DeepEqual(got, want) {
		t.Fatal("daily errors diverged")
	}
	gotP, errG := a.Daily.Correlation()
	wantP, errW := ScanErrorCorrelation(d)
	if (errG == nil) != (errW == nil) || gotP != wantP {
		t.Fatalf("correlation diverged: %+v/%v vs %+v/%v", gotP, errG, wantP, errW)
	}
	if got, want := a.Regimes.Finish(), ComputeRegimes(d); !reflect.DeepEqual(got, want) {
		t.Fatalf("regimes diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestHeadlineTopRawNodeDeterministicOnTies: equal per-node raw volumes
// must resolve to the lowest node index, not map iteration order.
func TestHeadlineTopRawNodeDeterministicOnTies(t *testing.T) {
	byNode := map[cluster.NodeID]int64{
		{Blade: 9, SoC: 9}:  500,
		{Blade: 3, SoC: 1}:  500,
		{Blade: 12, SoC: 2}: 500,
		{Blade: 1, SoC: 1}:  10,
	}
	want := cluster.NodeID{Blade: 3, SoC: 1}
	for trial := 0; trial < 30; trial++ {
		h := NewHeadlineAccum().Headline(1510, byNode, nil)
		if h.TopRawNode != want {
			t.Fatalf("trial %d: top raw node %v, want %v", trial, h.TopRawNode, want)
		}
		if h.TopNodeRawShare != 500.0/1510.0 {
			t.Fatalf("share %v", h.TopNodeRawShare)
		}
	}
}

// TestMultiBitTableDeterministicOnTies: rows sharing (bits, occurrences,
// corrupted) must order by expected value, stably across runs.
func TestMultiBitTableDeterministicOnTies(t *testing.T) {
	mk := func(expected, actual uint32) extract.Fault {
		return extract.Classify(extract.RawRun{
			Node: cluster.NodeID{Blade: 1, SoC: 1}, FirstAt: 100,
			Expected: expected, Actual: actual, Logs: 1,
		})
	}
	// Both rows: 2-bit corruption, same corrupted value, one occurrence.
	d := &Dataset{Faults: []extract.Fault{
		mk(0x00000005, 0x00000000), // bits 0,2
		mk(0x00000009, 0x00000000), // bits 0,3 — 2 bits as well? 0x9 = 1001: bits 0,3
	}}
	var first []MultiBitRow
	for trial := 0; trial < 30; trial++ {
		rows := MultiBitTable(d)
		if len(rows) != 2 {
			t.Fatalf("rows %d, want 2", len(rows))
		}
		if trial == 0 {
			first = rows
			if rows[0].Expected != 0x5 || rows[1].Expected != 0x9 {
				t.Fatalf("tie not broken by expected value: %+v", rows)
			}
			continue
		}
		if !reflect.DeepEqual(rows, first) {
			t.Fatalf("trial %d: row order unstable", trial)
		}
	}
}
