package analysis

import (
	"fmt"
	"sort"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/render"
	"unprotected/internal/stats"
	"unprotected/internal/timebase"
)

// DailyAccum is the incremental form of the Figs 9–11 time series: it
// accumulates scanned TBh per day from sessions and error counts per day
// and bit class from faults, one element at a time.
type DailyAccum struct {
	// Scanned[day] is terabyte-hours of memory analyzed (Fig 9).
	Scanned []float64
	// Errors[class][day] counts faults; class 0 aggregates everything.
	Errors [7][]float64
}

// NewDailyAccum returns an empty accumulator spanning the study window.
func NewDailyAccum() *DailyAccum {
	a := &DailyAccum{Scanned: make([]float64, timebase.StudyDays)}
	for c := 0; c <= 6; c++ {
		a.Errors[c] = make([]float64, timebase.StudyDays)
	}
	return a
}

// ObserveSession splits one session's TBh across the local days it
// overlaps (DST-aware).
func (a *DailyAccum) ObserveSession(s eventlog.Session) {
	if s.Duration() == 0 {
		return
	}
	tbPerSec := float64(s.AllocBytes) / float64(int64(1)<<40) / 3600
	for t := s.From; t < s.To; {
		day := t.Day()
		// Step to the next local midnight.
		next := t + timebase.T(86400-t.SecondsIntoLocalDay())
		if next <= t {
			next = t + 86400
		}
		if next > s.To {
			next = s.To
		}
		if day >= 0 && day < len(a.Scanned) {
			a.Scanned[day] += float64(next-t) * tbPerSec
		}
		t = next
	}
}

// ObserveFault buckets one fault by study day and bit class.
func (a *DailyAccum) ObserveFault(f extract.Fault) {
	day := f.FirstAt.Day()
	if day < 0 || day >= timebase.StudyDays {
		return
	}
	a.Errors[0][day]++
	a.Errors[BitClass(f.BitCount())][day]++
}

// Correlation is §III-G's Pearson over the accumulated series.
func (a *DailyAccum) Correlation() (stats.PearsonResult, error) {
	return stats.Pearson(a.Scanned, a.Errors[0])
}

// DailyScanned is Fig 9: terabyte-hours of memory analyzed per study day.
// Session contributions are split across the local days they overlap. It
// is the collect-all wrapper over DailyAccum.ObserveSession.
func DailyScanned(d *Dataset) []float64 {
	a := NewDailyAccum()
	for _, s := range d.Sessions {
		a.ObserveSession(s)
	}
	return a.Scanned
}

// DailyErrors buckets faults per study day, one series per bit class.
// Class 0 aggregates everything. It is the collect-all wrapper over
// DailyAccum.ObserveFault.
func DailyErrors(faults []extract.Fault) [7][]float64 {
	a := NewDailyAccum()
	for _, f := range faults {
		a.ObserveFault(f)
	}
	return a.Errors
}

// ScanErrorCorrelation is §III-G: the Pearson correlation between daily
// scanned TBh and daily error counts. The paper measured r = −0.17966
// with p = 0.0002 and concluded the scanning methodology does not drive
// the observed error counts.
func ScanErrorCorrelation(d *Dataset) (stats.PearsonResult, error) {
	scanned := DailyScanned(d)
	errs := DailyErrors(d.Faults)[0]
	return stats.Pearson(scanned, errs)
}

// TopNode summarizes one node's contribution for Fig 12.
type TopNode struct {
	Node  cluster.NodeID
	Total int
	Daily []float64
}

// TopNodes is Fig 12: the highest-error nodes individually, everything
// else aggregated ("purple"). n is how many nodes to break out (the paper
// shows three).
func TopNodes(d *Dataset, n int) (top []TopNode, rest TopNode) {
	byNode := d.ByNode()
	type kv struct {
		id cluster.NodeID
		c  int
	}
	var order []kv
	for id, fs := range byNode {
		order = append(order, kv{id, len(fs)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].c != order[j].c {
			return order[i].c > order[j].c
		}
		return order[i].id.Index() < order[j].id.Index()
	})
	pick := make(map[cluster.NodeID]int)
	for i := 0; i < n && i < len(order); i++ {
		pick[order[i].id] = i
		top = append(top, TopNode{
			Node:  order[i].id,
			Total: order[i].c,
			Daily: make([]float64, timebase.StudyDays),
		})
	}
	rest = TopNode{Daily: make([]float64, timebase.StudyDays)}
	for _, f := range d.Faults {
		day := f.FirstAt.Day()
		if day < 0 || day >= timebase.StudyDays {
			continue
		}
		if i, ok := pick[f.Node]; ok {
			top[i].Daily[day]++
		} else {
			rest.Daily[day]++
			rest.Total++
		}
	}
	return top, rest
}

// MonthlySeries compresses a daily series into per-month sums for compact
// rendering.
func MonthlySeries(daily []float64) (labels []string, sums []float64) {
	idx := make(map[string]int)
	for day, v := range daily {
		d := timebase.Epoch.AddDate(0, 0, day)
		key := d.Format("2006-01")
		i, ok := idx[key]
		if !ok {
			i = len(sums)
			idx[key] = i
			labels = append(labels, key)
			sums = append(sums, 0)
		}
		sums[i] += v
	}
	return labels, sums
}

// DailyChart renders one or more daily series as monthly bars.
func DailyChart(title string, series map[string][]float64) *render.BarChart {
	chart := &render.BarChart{Title: title}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		labels, sums := MonthlySeries(series[name])
		if chart.XLabels == nil {
			chart.XLabels = labels
		}
		chart.Series = append(chart.Series, render.Series{Label: name, Values: sums})
	}
	return chart
}

// FormatNode renders a node label for chart legends.
func FormatNode(id cluster.NodeID) string { return fmt.Sprintf("node %s", id) }
