package analysis

import (
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
)

// Accumulators bundles every streaming figure computation so one pass over
// a canonically ordered fault stream plus one pass over the session stream
// yields the §III statistics that are computable online: the headline box,
// hour-of-day and temperature distributions (Figs 5–8), the multi-bit
// population, simultaneity (Fig 4, §III-C), the daily time series
// (Figs 9–11) and the regime split (Fig 13). The campaign engine and the
// log-replay loader both feed it through the shared core sink, so a
// full-scale report never iterates the dataset a second time for these
// figures.
//
// Faults must arrive in the canonical extract.Compare order (both stream
// sources guarantee it); sessions may arrive in any order.
type Accumulators struct {
	Headline     *HeadlineAccum
	HourOfDay    *HourOfDay
	Temperature  *Temperature
	MultiBit     *MultiBitAccum
	Simultaneity *SimultaneityAccum
	Daily        *DailyAccum
	Regimes      *RegimesAccum
}

// NewAccumulators builds the bundle. excludeFromRegimes lists the nodes
// the §III-I regime analysis drops (the permanently failing controller
// node); it must be known before the stream starts.
func NewAccumulators(excludeFromRegimes ...cluster.NodeID) *Accumulators {
	return &Accumulators{
		Headline:     NewHeadlineAccum(),
		HourOfDay:    NewHourOfDay(),
		Temperature:  NewTemperature(),
		MultiBit:     NewMultiBitAccum(),
		Simultaneity: NewSimultaneityAccum(),
		Daily:        NewDailyAccum(),
		Regimes:      NewRegimesAccum(excludeFromRegimes...),
	}
}

// ObserveFault feeds one fault to every fault-driven accumulator.
func (a *Accumulators) ObserveFault(f extract.Fault) {
	a.Headline.ObserveFault(f)
	a.HourOfDay.Observe(f)
	a.Temperature.Observe(f)
	a.MultiBit.Observe(f)
	a.Simultaneity.Observe(f)
	a.Daily.ObserveFault(f)
	a.Regimes.Observe(f)
}

// ObserveSession feeds one session to every session-driven accumulator.
func (a *Accumulators) ObserveSession(s eventlog.Session) {
	a.Headline.ObserveSession(s)
	a.Daily.ObserveSession(s)
}

// Finish completes the stream.Observer interface, making the bundle the
// stock observer consumers attach via unprotected.WithObservers. The
// individual accumulators expose their own finalizers (Headline,
// Regimes.Finish, ...) which remain callable at any time after the
// stream ends, so Finish itself has nothing to seal.
func (a *Accumulators) Finish() error { return nil }
