package analysis

import (
	"fmt"
	"math"

	"unprotected/internal/cluster"
	"unprotected/internal/render"
	"unprotected/internal/units"
)

// ScenarioSummary is one scenario's headline row in a cross-scenario
// comparison (internal/sweep): the paper's key aggregates — raw error
// rate, multi-bit fraction, day/night contrast, worst node — reduced to
// the scalars that move when an environmental or configuration axis
// moves. It is computed from the streaming accumulators, so a sweep
// scenario never needs to materialize its dataset.
type ScenarioSummary struct {
	// Name identifies the scenario ("altitude=1500,seed=2"), or the
	// study for a standalone summary.
	Name string

	// Faults is the independent-fault count (§III-B).
	Faults int
	// FaultsPerTBh is the raw error rate the paper's headline normalizes
	// to: independent faults per terabyte-hour of scanned memory.
	FaultsPerTBh float64
	// NodeMTBFHours is monitored node-hours per independent fault.
	NodeMTBFHours float64

	// MultiBitFaults counts faults corrupting >1 bit of one word, and
	// MultiBitFraction is their share of all faults (§III-C).
	MultiBitFaults   int
	MultiBitFraction float64

	// DayNightAll and DayNightMultiBit are the §III-E 7:00–17:59 vs
	// night ratios (paper: ~1 for all errors, ~2 for multi-bit).
	DayNightAll      float64
	DayNightMultiBit float64

	// WorstNode is the node with the largest raw-log volume and
	// WorstNodeRawShare its share of RawLogs (§III-B's ~98% node).
	WorstNode         cluster.NodeID
	WorstNodeRawShare float64

	// RawLogs, TotalTBh and NodeHours carry the denominators so rates
	// stay auditable side by side.
	RawLogs   int64
	TotalTBh  units.TBh
	NodeHours units.NodeHours
}

// Summarize reduces a finalized headline plus the hour-of-day figure to
// one comparison row. It is pure arithmetic over already-accumulated
// state, so calling it never perturbs the accumulators.
func Summarize(name string, h Headline, hod *HourOfDay) ScenarioSummary {
	s := ScenarioSummary{
		Name:              name,
		Faults:            h.IndependentFaults,
		NodeMTBFHours:     h.NodeMTBFHours,
		MultiBitFaults:    h.MultiBitFaults,
		WorstNode:         h.TopRawNode,
		WorstNodeRawShare: h.TopNodeRawShare,
		RawLogs:           h.RawLogs,
		TotalTBh:          h.TotalTBh,
		NodeHours:         h.NodeHours,
	}
	if h.TotalTBh > 0 {
		s.FaultsPerTBh = float64(h.IndependentFaults) / float64(h.TotalTBh)
	}
	if h.IndependentFaults > 0 {
		s.MultiBitFraction = float64(h.MultiBitFaults) / float64(h.IndependentFaults)
	}
	if hod != nil {
		s.DayNightAll = DayNightRatio(hod.Total())
		s.DayNightMultiBit = DayNightRatio(hod.MultiBit())
	}
	return s
}

// Row renders the summary as the comparison table's cells, in the
// RenderComparison column order. The formatting is deterministic: every
// cell is a pure function of the summary, so two runs producing equal
// summaries render byte-identical rows.
func (s ScenarioSummary) Row() []string {
	worst := "-"
	var zero cluster.NodeID
	if s.RawLogs > 0 && s.WorstNode != zero {
		worst = fmt.Sprintf("%v (%.1f%%)", s.WorstNode, 100*s.WorstNodeRawShare)
	}
	return []string{
		s.Name,
		fmt.Sprint(s.Faults),
		formatRate(s.FaultsPerTBh),
		fmt.Sprintf("%d (%.2f%%)", s.MultiBitFaults, 100*s.MultiBitFraction),
		formatRate(s.DayNightAll),
		formatRate(s.DayNightMultiBit),
		worst,
		fmt.Sprint(s.RawLogs),
		fmt.Sprintf("%.1f", float64(s.TotalTBh)),
	}
}

// formatRate renders a ratio with enough precision to compare scenarios
// without drowning the table ("0" stays "0", NaN/Inf stay explicit).
func formatRate(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprint(v)
	}
	return fmt.Sprintf("%.4g", v)
}

// comparisonHeaders are the side-by-side columns, matching Row.
var comparisonHeaders = []string{
	"scenario", "faults", "faults/TBh", "multi-bit", "d/n all", "d/n multi", "worst raw node", "raw logs", "TBh",
}

// RenderComparison lays the scenario rows side by side, in the given
// order, with numeric columns right-aligned. The caller owns the row
// order; the sweep engine passes rows sorted by scenario name so output
// is independent of completion and submission order.
func RenderComparison(rows []ScenarioSummary) *render.Table {
	t := &render.Table{
		Title:   "Cross-scenario comparison",
		Headers: comparisonHeaders,
		// Every column but the scenario and worst-node labels is numeric.
		RightAlign: []bool{false, true, true, true, true, true, false, true, true},
	}
	for _, r := range rows {
		t.AddRow(r.Row()...)
	}
	return t
}
