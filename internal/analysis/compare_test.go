package analysis

import (
	"bytes"
	"strings"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/units"
)

// TestSweepSummarize: the comparison row derives the paper's headline
// rates from the accumulated aggregates, with guarded denominators.
func TestSweepSummarize(t *testing.T) {
	h := Headline{
		RawLogs:           1000,
		TopRawNode:        cluster.NodeID{Blade: 17, SoC: 9},
		TopNodeRawShare:   0.98,
		IndependentFaults: 200,
		MultiBitFaults:    10,
		NodeHours:         units.NodeHours(400),
		TotalTBh:          units.TBh(50),
		NodeMTBFHours:     2,
	}
	hod := NewHourOfDay()
	// 6 multi-bit day errors, 3 multi-bit night errors, 4 single night.
	for i := 0; i < 6; i++ {
		hod.Counts[2][12]++
	}
	for i := 0; i < 3; i++ {
		hod.Counts[2][2]++
	}
	for i := 0; i < 4; i++ {
		hod.Counts[1][3]++
	}
	s := Summarize("x=1", h, hod)
	if s.Name != "x=1" || s.Faults != 200 || s.MultiBitFaults != 10 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.FaultsPerTBh != 4 {
		t.Fatalf("FaultsPerTBh %v, want 4", s.FaultsPerTBh)
	}
	if s.MultiBitFraction != 0.05 {
		t.Fatalf("MultiBitFraction %v, want 0.05", s.MultiBitFraction)
	}
	if s.DayNightMultiBit != 2 {
		t.Fatalf("DayNightMultiBit %v, want 2", s.DayNightMultiBit)
	}
	if got := s.DayNightAll; got != 6.0/7 {
		t.Fatalf("DayNightAll %v, want 6/7", got)
	}
	if s.WorstNode != h.TopRawNode || s.WorstNodeRawShare != 0.98 {
		t.Fatalf("worst node: %+v", s)
	}

	row := s.Row()
	want := []string{"x=1", "200", "4", "10 (5.00%)", "0.8571", "2", "17-09 (98.0%)", "1000", "50.0"}
	if strings.Join(row, "|") != strings.Join(want, "|") {
		t.Fatalf("row %v, want %v", row, want)
	}

	// Empty study: every guarded denominator renders benignly.
	empty := Summarize("empty", Headline{}, NewHourOfDay())
	erow := empty.Row()
	ewant := []string{"empty", "0", "0", "0 (0.00%)", "0", "0", "-", "0", "0.0"}
	if strings.Join(erow, "|") != strings.Join(ewant, "|") {
		t.Fatalf("empty row %v, want %v", erow, ewant)
	}

	// A nil hour-of-day figure (hand-built summaries) is tolerated.
	if s := Summarize("n", h, nil); s.DayNightMultiBit != 0 {
		t.Fatalf("nil hod summary: %+v", s)
	}
}

// TestSweepRenderComparison: rows land side by side in caller order with
// right-aligned numeric columns.
func TestSweepRenderComparison(t *testing.T) {
	a := Summarize("alt=0", Headline{IndependentFaults: 5, TotalTBh: 10}, NewHourOfDay())
	b := Summarize("alt=3000", Headline{IndependentFaults: 40, MultiBitFaults: 4, TotalTBh: 10}, NewHourOfDay())
	var buf bytes.Buffer
	RenderComparison([]ScenarioSummary{a, b}).Render(&buf)
	out := buf.String()
	for _, want := range []string{"Cross-scenario comparison", "scenario", "faults/TBh", "alt=0", "alt=3000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "alt=0") > strings.Index(out, "alt=3000") {
		t.Fatalf("row order not caller order:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines[1:] {
		if len(l) != len(lines[1]) {
			t.Fatalf("ragged table rows:\n%s", out)
		}
	}
}
