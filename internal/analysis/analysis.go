// Package analysis computes every figure and table of the paper's §III
// from a study dataset: heat maps of hours/TBh/errors per node (Figs 1–3),
// the multi-bit corruption table (Table I), simultaneity (Fig 4 and
// §III-C), hour-of-day and temperature distributions (Figs 5–8), daily
// time series and their correlation (Figs 9–11, §III-G), spatial and
// temporal correlation (Figs 12–13) and the headline statistics of
// §III-B. It is deliberately independent of the campaign package: a
// Dataset can come from the simulator, from parsed log files, or from a
// test fixture.
package analysis

import (
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
	"unprotected/internal/units"
)

// Dataset is the analysis input: independent faults (§II-C extraction
// already applied, pathological node excluded) plus session accounting.
type Dataset struct {
	Faults   []extract.Fault
	Sessions []eventlog.Session
	// RawLogs counts every ERROR record, including the pathological node.
	RawLogs       int64
	RawLogsByNode map[cluster.NodeID]int64
	Topo          *cluster.Topology

	// ControllerNode (02-04) is excluded from MTBF/regime/quarantine
	// analyses per §III-I; zero value disables the exclusion.
	ControllerNode cluster.NodeID
	// PathologicalNode produced ~98% of raw logs and no characterized
	// faults.
	PathologicalNode cluster.NodeID

	byNode map[cluster.NodeID][]extract.Fault
}

// ByNode lazily indexes faults per node.
func (d *Dataset) ByNode() map[cluster.NodeID][]extract.Fault {
	if d.byNode == nil {
		d.byNode = make(map[cluster.NodeID][]extract.Fault)
		for _, f := range d.Faults {
			d.byNode[f.Node] = append(d.byNode[f.Node], f)
		}
	}
	return d.byNode
}

// FaultsExcluding returns faults not on the given nodes, preserving order.
func (d *Dataset) FaultsExcluding(nodes ...cluster.NodeID) []extract.Fault {
	skip := make(map[cluster.NodeID]bool, len(nodes))
	for _, n := range nodes {
		skip[n] = true
	}
	var out []extract.Fault
	for _, f := range d.Faults {
		if !skip[f.Node] {
			out = append(out, f)
		}
	}
	return out
}

// MultiBitFaults returns the faults corrupting >1 bit of one word.
func (d *Dataset) MultiBitFaults() []extract.Fault {
	var out []extract.Fault
	for _, f := range d.Faults {
		if f.MultiBit() {
			out = append(out, f)
		}
	}
	return out
}

// BitClass buckets a per-word bit count into the paper's figure classes:
// 1..5 individually, 6 and above together ("6+").
func BitClass(bits int) int {
	if bits >= 6 {
		return 6
	}
	return bits
}

// BitClassLabels are the legend labels for the classes.
var BitClassLabels = []string{"", "1-bit", "2-bit", "3-bit", "4-bit", "5-bit", "6+bit"}

// Headline is §III-B's summary box.
type Headline struct {
	RawLogs            int64
	TopNodeRawShare    float64 // fraction of raw logs from the worst node
	TopRawNode         cluster.NodeID
	IndependentFaults  int
	MultiBitFaults     int
	NodeHours          units.NodeHours
	TotalTBh           units.TBh
	NodesScanned       int
	NodesWithFaults    int
	ClusterMTBFMinutes float64 // study minutes per independent fault
	NodeMTBFHours      float64 // monitored node-hours per independent fault
	Ones2Zeros         int
	Zeros2Ones         int
}

// ComputeHeadline aggregates the §III-B statistics.
func ComputeHeadline(d *Dataset) Headline {
	h := Headline{RawLogs: d.RawLogs, IndependentFaults: len(d.Faults)}
	var maxRaw int64
	for id, n := range d.RawLogsByNode {
		if n > maxRaw {
			maxRaw = n
			h.TopRawNode = id
		}
	}
	if d.RawLogs > 0 {
		h.TopNodeRawShare = float64(maxRaw) / float64(d.RawLogs)
	}
	var hours float64
	var tbh units.TBh
	for _, s := range d.Sessions {
		hours += s.Duration().Hours()
		tbh += s.TBh()
	}
	h.NodeHours = units.NodeHours(hours)
	h.TotalTBh = tbh
	if d.Topo != nil {
		h.NodesScanned = d.Topo.CountByRole()[cluster.Scanned]
	}
	h.NodesWithFaults = len(d.ByNode())
	if n := len(d.Faults); n > 0 {
		h.ClusterMTBFMinutes = float64(timebase.StudySeconds) / 60 / float64(n)
		h.NodeMTBFHours = hours / float64(n)
	}
	for _, f := range d.Faults {
		h.Ones2Zeros += f.Ones2Zeros.Count()
		h.Zeros2Ones += f.Zeros2Ones.Count()
		if f.MultiBit() {
			h.MultiBitFaults++
		}
	}
	return h
}

// Ones2ZerosFraction returns the fraction of corrupted bits that flipped
// 1→0 (the paper: about 90%).
func (h Headline) Ones2ZerosFraction() float64 {
	total := h.Ones2Zeros + h.Zeros2Ones
	if total == 0 {
		return 0
	}
	return float64(h.Ones2Zeros) / float64(total)
}
