// Package analysis computes every figure and table of the paper's §III
// from a study dataset: heat maps of hours/TBh/errors per node (Figs 1–3),
// the multi-bit corruption table (Table I), simultaneity (Fig 4 and
// §III-C), hour-of-day and temperature distributions (Figs 5–8), daily
// time series and their correlation (Figs 9–11, §III-G), spatial and
// temporal correlation (Figs 12–13) and the headline statistics of
// §III-B. It is deliberately independent of the campaign package: a
// Dataset can come from the simulator, from parsed log files, or from a
// test fixture.
package analysis

import (
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
	"unprotected/internal/units"
)

// Dataset is the analysis input: independent faults (§II-C extraction
// already applied, pathological node excluded) plus session accounting.
type Dataset struct {
	Faults   []extract.Fault
	Sessions []eventlog.Session
	// RawLogs counts every ERROR record, including the pathological node.
	RawLogs       int64
	RawLogsByNode map[cluster.NodeID]int64
	Topo          *cluster.Topology

	// ControllerNode (02-04) is excluded from MTBF/regime/quarantine
	// analyses per §III-I; zero value disables the exclusion.
	ControllerNode cluster.NodeID
	// PathologicalNode produced ~98% of raw logs and no characterized
	// faults.
	PathologicalNode cluster.NodeID

	byNode map[cluster.NodeID][]extract.Fault
}

// ByNode lazily indexes faults per node.
func (d *Dataset) ByNode() map[cluster.NodeID][]extract.Fault {
	if d.byNode == nil {
		d.byNode = make(map[cluster.NodeID][]extract.Fault)
		for _, f := range d.Faults {
			d.byNode[f.Node] = append(d.byNode[f.Node], f)
		}
	}
	return d.byNode
}

// FaultsExcluding returns faults not on the given nodes, preserving order.
func (d *Dataset) FaultsExcluding(nodes ...cluster.NodeID) []extract.Fault {
	skip := make(map[cluster.NodeID]bool, len(nodes))
	for _, n := range nodes {
		skip[n] = true
	}
	var out []extract.Fault
	for _, f := range d.Faults {
		if !skip[f.Node] {
			out = append(out, f)
		}
	}
	return out
}

// MultiBitFaults returns the faults corrupting >1 bit of one word.
func (d *Dataset) MultiBitFaults() []extract.Fault {
	var out []extract.Fault
	for _, f := range d.Faults {
		if f.MultiBit() {
			out = append(out, f)
		}
	}
	return out
}

// BitClass buckets a per-word bit count into the paper's figure classes:
// 1..5 individually, 6 and above together ("6+").
func BitClass(bits int) int {
	if bits >= 6 {
		return 6
	}
	return bits
}

// BitClassLabels are the legend labels for the classes.
var BitClassLabels = []string{"", "1-bit", "2-bit", "3-bit", "4-bit", "5-bit", "6+bit"}

// Headline is §III-B's summary box.
type Headline struct {
	RawLogs            int64
	TopNodeRawShare    float64 // fraction of raw logs from the worst node
	TopRawNode         cluster.NodeID
	IndependentFaults  int
	MultiBitFaults     int
	NodeHours          units.NodeHours
	TotalTBh           units.TBh
	NodesScanned       int
	NodesWithFaults    int
	ClusterMTBFMinutes float64 // study minutes per independent fault
	NodeMTBFHours      float64 // monitored node-hours per independent fault
	Ones2Zeros         int
	Zeros2Ones         int
}

// HeadlineAccum is the incremental form of ComputeHeadline: faults and
// sessions stream in one at a time; Headline finalizes against the scalar
// raw-log aggregates and topology.
type HeadlineAccum struct {
	faults          int
	multiBit        int
	ones2Zeros      int
	zeros2Ones      int
	hours           float64
	tbh             units.TBh
	nodesWithFaults map[cluster.NodeID]bool
}

// NewHeadlineAccum returns an empty accumulator.
func NewHeadlineAccum() *HeadlineAccum {
	return &HeadlineAccum{nodesWithFaults: make(map[cluster.NodeID]bool)}
}

// ObserveFault folds one fault into the aggregates.
func (a *HeadlineAccum) ObserveFault(f extract.Fault) {
	a.faults++
	a.ones2Zeros += f.Ones2Zeros.Count()
	a.zeros2Ones += f.Zeros2Ones.Count()
	if f.MultiBit() {
		a.multiBit++
	}
	a.nodesWithFaults[f.Node] = true
}

// ObserveSession folds one session into the hours/TBh accounting.
func (a *HeadlineAccum) ObserveSession(s eventlog.Session) {
	a.hours += s.Duration().Hours()
	a.tbh += s.TBh()
}

// Headline finalizes the §III-B summary. rawLogs and rawLogsByNode are the
// scalar aggregates (they never stream — they are counted, not collected),
// topo may be nil.
func (a *HeadlineAccum) Headline(rawLogs int64, rawLogsByNode map[cluster.NodeID]int64, topo *cluster.Topology) Headline {
	h := Headline{
		RawLogs:           rawLogs,
		IndependentFaults: a.faults,
		MultiBitFaults:    a.multiBit,
		Ones2Zeros:        a.ones2Zeros,
		Zeros2Ones:        a.zeros2Ones,
		NodeHours:         units.NodeHours(a.hours),
		TotalTBh:          a.tbh,
		NodesWithFaults:   len(a.nodesWithFaults),
	}
	var maxRaw int64
	for id, n := range rawLogsByNode {
		// Strict ordering with a node-index tiebreak: map iteration order
		// must not pick the reported worst node on equal raw volumes.
		if n > maxRaw || (n == maxRaw && n > 0 && id.Index() < h.TopRawNode.Index()) {
			maxRaw = n
			h.TopRawNode = id
		}
	}
	if rawLogs > 0 {
		h.TopNodeRawShare = float64(maxRaw) / float64(rawLogs)
	}
	if topo != nil {
		h.NodesScanned = topo.CountByRole()[cluster.Scanned]
	}
	if a.faults > 0 {
		h.ClusterMTBFMinutes = float64(timebase.StudySeconds) / 60 / float64(a.faults)
		h.NodeMTBFHours = a.hours / float64(a.faults)
	}
	return h
}

// ComputeHeadline aggregates the §III-B statistics. It is the collect-all
// wrapper over HeadlineAccum.
func ComputeHeadline(d *Dataset) Headline {
	a := NewHeadlineAccum()
	for _, s := range d.Sessions {
		a.ObserveSession(s)
	}
	for _, f := range d.Faults {
		a.ObserveFault(f)
	}
	return a.Headline(d.RawLogs, d.RawLogsByNode, d.Topo)
}

// Ones2ZerosFraction returns the fraction of corrupted bits that flipped
// 1→0 (the paper: about 90%).
func (h Headline) Ones2ZerosFraction() float64 {
	total := h.Ones2Zeros + h.Zeros2Ones
	if total == 0 {
		return 0
	}
	return float64(h.Ones2Zeros) / float64(total)
}
