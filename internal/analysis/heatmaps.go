package analysis

import (
	"fmt"

	"unprotected/internal/cluster"
	"unprotected/internal/render"
)

// nodeGrid builds a blades×SoCs grid over the monitored blades (the
// paper's heat maps show 63 blades × 15 SoCs), filling each cell from f.
func nodeGrid(d *Dataset, title string, log bool, f func(cluster.NodeID) float64) *render.Grid {
	blades := []int{}
	if d.Topo != nil {
		blades = d.Topo.MonitoredBlades()
	} else {
		for b := 1; b <= cluster.TotalBlades; b++ {
			blades = append(blades, b)
		}
	}
	g := &render.Grid{Title: title, Log: log}
	for s := 1; s <= cluster.SoCsPerBlade; s++ {
		g.ColLabels = append(g.ColLabels, fmt.Sprint(s))
	}
	for _, b := range blades {
		row := make([]float64, cluster.SoCsPerBlade)
		for s := 1; s <= cluster.SoCsPerBlade; s++ {
			row[s-1] = f(cluster.NodeID{Blade: b, SoC: s})
		}
		g.RowLabels = append(g.RowLabels, fmt.Sprintf("blade %02d", b))
		g.Values = append(g.Values, row)
	}
	return g
}

// HoursHeatmap is Fig 1: hours each node was scanned for memory errors.
func HoursHeatmap(d *Dataset) *render.Grid {
	hours := make(map[cluster.NodeID]float64)
	for _, s := range d.Sessions {
		hours[s.Host] += s.Duration().Hours()
	}
	return nodeGrid(d, "Fig 1: hours of memory-error scanning per node", false,
		func(id cluster.NodeID) float64 { return hours[id] })
}

// TBhHeatmap is Fig 2: terabyte-hours of memory analyzed per node.
func TBhHeatmap(d *Dataset) *render.Grid {
	tbh := make(map[cluster.NodeID]float64)
	for _, s := range d.Sessions {
		tbh[s.Host] += float64(s.TBh())
	}
	return nodeGrid(d, "Fig 2: memory analyzed per node (terabyte-hours)", false,
		func(id cluster.NodeID) float64 { return tbh[id] })
}

// ErrorsHeatmap is Fig 3: independent memory errors per node, on a log
// color scale because counts span five orders of magnitude.
func ErrorsHeatmap(d *Dataset) *render.Grid {
	byNode := d.ByNode()
	return nodeGrid(d, "Fig 3: independent memory errors per node (log scale)", true,
		func(id cluster.NodeID) float64 { return float64(len(byNode[id])) })
}

// HeatmapStats summarizes a grid for assertions and EXPERIMENTS.md.
type HeatmapStats struct {
	NonZero int
	Max     float64
	Mean    float64 // over non-zero cells
}

// GridStats computes summary statistics of a grid.
func GridStats(g *render.Grid) HeatmapStats {
	var st HeatmapStats
	var sum float64
	for _, row := range g.Values {
		for _, v := range row {
			if v > 0 {
				st.NonZero++
				sum += v
				if v > st.Max {
					st.Max = v
				}
			}
		}
	}
	if st.NonZero > 0 {
		st.Mean = sum / float64(st.NonZero)
	}
	return st
}
