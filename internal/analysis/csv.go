package analysis

import (
	"fmt"
	"os"
	"path/filepath"

	"unprotected/internal/render"
	"unprotected/internal/timebase"
)

// WriteCSVs writes one CSV file per figure/table into dir, for external
// plotting. Files:
//
//	fig1_hours.csv, fig2_tbh.csv, fig3_errors.csv   — node grids
//	fig4_simultaneity.csv                            — per-word vs per-node
//	fig5_fig6_hour_of_day.csv                        — hourly by bit class
//	fig7_fig8_temperature.csv                        — temperature by class
//	fig9_fig10_fig11_daily.csv                       — daily TBh + errors
//	fig12_top_nodes.csv                              — top-3 + rest daily
//	fig13_regimes.csv                                — regime per day
//	table1_multibit.csv, table2_quarantine.csv
func WriteCSVs(d *Dataset, quarantineRows [][]string, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, headers []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return render.CSV(f, headers, rows)
	}

	// Figs 1-3: grids flattened to (blade, soc, value).
	gridRows := func(g *render.Grid) [][]string {
		var rows [][]string
		for i, rowVals := range g.Values {
			for j, v := range rowVals {
				rows = append(rows, []string{
					g.RowLabels[i], g.ColLabels[j], fmt.Sprintf("%.4f", v),
				})
			}
		}
		return rows
	}
	for _, item := range []struct {
		name string
		grid *render.Grid
	}{
		{"fig1_hours.csv", HoursHeatmap(d)},
		{"fig2_tbh.csv", TBhHeatmap(d)},
		{"fig3_errors.csv", ErrorsHeatmap(d)},
	} {
		if err := write(item.name, []string{"blade", "soc", "value"}, gridRows(item.grid)); err != nil {
			return err
		}
	}

	// Fig 4.
	fig4 := ComputeSimultaneityFigure(d.Faults)
	var f4rows [][]string
	for c := 1; c <= 6; c++ {
		f4rows = append(f4rows, []string{
			BitClassLabels[c],
			fmt.Sprint(fig4.PerWord[c]),
			fmt.Sprint(fig4.PerNode[c]),
		})
	}
	if err := write("fig4_simultaneity.csv", []string{"class", "per_word", "per_node"}, f4rows); err != nil {
		return err
	}

	// Figs 5-6.
	hod := ComputeHourOfDay(d.Faults)
	var hourRows [][]string
	for hh := 0; hh < 24; hh++ {
		row := []string{fmt.Sprint(hh)}
		for c := 1; c <= 6; c++ {
			row = append(row, fmt.Sprint(hod.Counts[c][hh]))
		}
		hourRows = append(hourRows, row)
	}
	if err := write("fig5_fig6_hour_of_day.csv",
		[]string{"hour", "1bit", "2bit", "3bit", "4bit", "5bit", "6plus"}, hourRows); err != nil {
		return err
	}

	// Figs 7-8.
	temp := ComputeTemperature(d.Faults)
	var tempRows [][]string
	for i := range temp.Hists[1].Counts {
		row := []string{fmt.Sprintf("%.0f", temp.Hists[1].BinCenter(i))}
		for c := 1; c <= 6; c++ {
			row = append(row, fmt.Sprint(temp.Hists[c].Counts[i]))
		}
		tempRows = append(tempRows, row)
	}
	if err := write("fig7_fig8_temperature.csv",
		[]string{"temp_c", "1bit", "2bit", "3bit", "4bit", "5bit", "6plus"}, tempRows); err != nil {
		return err
	}

	// Figs 9-11.
	scanned := DailyScanned(d)
	daily := DailyErrors(d.Faults)
	var dayRows [][]string
	for day := range scanned {
		row := []string{fmt.Sprint(day), timebase.DayLabel(day), fmt.Sprintf("%.3f", scanned[day])}
		for c := 0; c <= 6; c++ {
			row = append(row, fmt.Sprint(daily[c][day]))
		}
		dayRows = append(dayRows, row)
	}
	if err := write("fig9_fig10_fig11_daily.csv",
		[]string{"day", "date", "tbh", "all", "1bit", "2bit", "3bit", "4bit", "5bit", "6plus"}, dayRows); err != nil {
		return err
	}

	// Fig 12.
	top, rest := TopNodes(d, 3)
	var topRows [][]string
	for day := 0; day < timebase.StudyDays; day++ {
		row := []string{fmt.Sprint(day), timebase.DayLabel(day)}
		for _, t := range top {
			row = append(row, fmt.Sprint(t.Daily[day]))
		}
		row = append(row, fmt.Sprint(rest.Daily[day]))
		topRows = append(topRows, row)
	}
	headers := []string{"day", "date"}
	for _, t := range top {
		headers = append(headers, t.Node.String())
	}
	headers = append(headers, "rest")
	if err := write("fig12_top_nodes.csv", headers, topRows); err != nil {
		return err
	}

	// Fig 13.
	reg := ComputeRegimes(d)
	var regRows [][]string
	for day, degraded := range reg.Degraded {
		state := "normal"
		if degraded {
			state = "degraded"
		}
		regRows = append(regRows, []string{
			fmt.Sprint(day), timebase.DayLabel(day), state, fmt.Sprint(reg.ErrorsPerDay[day]),
		})
	}
	if err := write("fig13_regimes.csv", []string{"day", "date", "regime", "errors"}, regRows); err != nil {
		return err
	}

	// Table I.
	var t1 [][]string
	for _, r := range MultiBitTable(d) {
		cons := "No"
		if r.Consecutive {
			cons = "Yes"
		}
		t1 = append(t1, []string{
			fmt.Sprint(r.Bits), fmt.Sprintf("0x%08x", r.Expected),
			fmt.Sprintf("0x%08x", r.Corrupted), fmt.Sprint(r.Occurrences), cons,
		})
	}
	if err := write("table1_multibit.csv",
		[]string{"bits", "expected", "corrupted", "occurrences", "consecutive"}, t1); err != nil {
		return err
	}

	// Table II (rows supplied by the caller, which owns the policy sweep).
	if quarantineRows != nil {
		if err := write("table2_quarantine.csv",
			[]string{"quarantine_days", "errors", "node_days", "mtbf_hours"}, quarantineRows); err != nil {
			return err
		}
	}
	return nil
}
