package analysis

import (
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

var (
	nodeA = cluster.NodeID{Blade: 2, SoC: 4}
	nodeB = cluster.NodeID{Blade: 10, SoC: 3}
)

func mkFault(node cluster.NodeID, at timebase.T, addr dram.Addr, exp, act uint32, temp float64) extract.Fault {
	return extract.Classify(extract.RawRun{
		Node: node, Addr: addr, FirstAt: at, LastAt: at,
		Logs: 1, Expected: exp, Actual: act, TempC: temp,
	})
}

// fixture builds a small, fully hand-checkable dataset: five errors on
// nodeA clustered on day 10 (one double-bit), one isolated 4-bit error on
// nodeB on day 20 without telemetry.
func fixture() *Dataset {
	day := timebase.T(86400)
	faults := []extract.Fault{
		mkFault(nodeA, 10*day+3600, 1, 0xFFFFFFFF, 0xFFFFFFFE, 31),
		mkFault(nodeA, 10*day+3600, 2, 0xFFFFFFFF, 0xFFFFFFFD, 31),
		mkFault(nodeA, 10*day+7200, 3, 0xFFFFFFFF, 0xFFFF7BFF, 33),
		mkFault(nodeA, 10*day+9900, 4, 0xFFFFFFFF, 0xFFFFFFFE, 35),
		mkFault(nodeA, 10*day+12000, 5, 0xFFFFFFFF, 0xFFFFFFFB, 32),
		mkFault(nodeB, 20*day+3600, 9, 0xFFFFFFFF, 0xF7FC7FFF, thermal.NoReading),
	}
	extract.SortFaults(faults)
	sessions := []eventlog.Session{
		{Host: nodeA, From: 0, To: 2 * 3600, AllocBytes: 3 << 30},
		{Host: nodeB, From: 9 * day, To: 9*day + 36000, AllocBytes: 2 << 30},
	}
	return &Dataset{
		Faults:        faults,
		Sessions:      sessions,
		RawLogs:       100,
		RawLogsByNode: map[cluster.NodeID]int64{nodeA: 90, nodeB: 10},
		Topo:          cluster.PaperTopology(),
	}
}

func TestHeadline(t *testing.T) {
	d := fixture()
	h := ComputeHeadline(d)
	if h.IndependentFaults != 6 || h.RawLogs != 100 {
		t.Fatalf("headline counts: %+v", h)
	}
	if h.TopRawNode != nodeA || h.TopNodeRawShare != 0.9 {
		t.Fatalf("top raw node: %v %v", h.TopRawNode, h.TopNodeRawShare)
	}
	if h.MultiBitFaults != 2 {
		t.Fatalf("multi-bit faults %d, want 2", h.MultiBitFaults)
	}
	if h.NodesWithFaults != 2 || h.NodesScanned != 923 {
		t.Fatalf("node counts: %+v", h)
	}
	// 2h + 10h of sessions.
	if float64(h.NodeHours) != 12 {
		t.Fatalf("node hours %v", h.NodeHours)
	}
	// All fixture flips are 1->0.
	if h.Ones2ZerosFraction() != 1 {
		t.Fatalf("flip fraction %v", h.Ones2ZerosFraction())
	}
}

func TestBitClass(t *testing.T) {
	for bits, want := range map[int]int{1: 1, 2: 2, 5: 5, 6: 6, 9: 6, 36: 6} {
		if got := BitClass(bits); got != want {
			t.Fatalf("BitClass(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestHeatmaps(t *testing.T) {
	d := fixture()
	hours := HoursHeatmap(d)
	st := GridStats(hours)
	if st.NonZero != 2 {
		t.Fatalf("hours nonzero cells %d", st.NonZero)
	}
	if st.Max != 10 {
		t.Fatalf("hours max %v, want 10 (nodeB session)", st.Max)
	}
	tbh := TBhHeatmap(d)
	if GridStats(tbh).NonZero != 2 {
		t.Fatal("tbh cells")
	}
	errs := ErrorsHeatmap(d)
	est := GridStats(errs)
	if est.NonZero != 2 || est.Max != 5 {
		t.Fatalf("errors grid: %+v", est)
	}
	// 63 monitored blades, 15 SoCs per row.
	if len(errs.Values) != 63 || len(errs.Values[0]) != 15 {
		t.Fatalf("grid shape %dx%d", len(errs.Values), len(errs.Values[0]))
	}
}

func TestHourOfDay(t *testing.T) {
	d := fixture()
	hod := ComputeHourOfDay(d.Faults)
	total := hod.Total()
	var sum float64
	for _, v := range total {
		sum += v
	}
	if sum != 6 {
		t.Fatalf("hour histogram total %v", sum)
	}
	multi := hod.MultiBit()
	var msum float64
	for _, v := range multi {
		msum += v
	}
	if msum != 2 {
		t.Fatalf("multi-bit hour total %v", msum)
	}
	// Chart renders without panicking and contains only non-empty series.
	chart := hod.Chart("fig5", false)
	if len(chart.Series) == 0 || len(chart.XLabels) != 24 {
		t.Fatal("chart shape")
	}
}

func TestDayNightRatioFlat(t *testing.T) {
	var flat [24]float64
	for i := range flat {
		flat[i] = 10
	}
	// Flat distribution: 11 day hours / 13 night hours.
	if r := DayNightRatio(flat); r < 0.84 || r > 0.85 {
		t.Fatalf("flat ratio %v, want 11/13", r)
	}
	var peaked [24]float64
	peaked[12] = 100
	if PeakHour(peaked) != 12 {
		t.Fatal("peak hour")
	}
}

func TestTemperature(t *testing.T) {
	d := fixture()
	temp := ComputeTemperature(d.Faults)
	if temp.NoReading != 1 {
		t.Fatalf("pre-telemetry count %d", temp.NoReading)
	}
	lo, hi := temp.ModalBand(1, 6)
	if lo < 28 || hi > 38 {
		t.Fatalf("modal band [%v, %v]", lo, hi)
	}
	if temp.CountAbove(60, 1, 6) != 0 {
		t.Fatal("no fixture errors above 60C")
	}
	if temp.CountAbove(30, 2, 6) != 1 {
		t.Fatalf("multi-bit above 30C: %v", temp.CountAbove(30, 2, 6))
	}
}

func TestDailySeries(t *testing.T) {
	d := fixture()
	scanned := DailyScanned(d)
	if len(scanned) != timebase.StudyDays {
		t.Fatal("daily length")
	}
	// Session 1: 2h × 3 GiB on day 0.
	want := 3.0 / 1024 * 2
	if diff := scanned[0] - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("day 0 scanned %v, want %v", scanned[0], want)
	}
	daily := DailyErrors(d.Faults)
	if daily[0][10] != 5 || daily[0][20] != 1 {
		t.Fatalf("daily errors: day10=%v day20=%v", daily[0][10], daily[0][20])
	}
	if daily[2][10] != 1 || daily[4][20] != 1 {
		t.Fatal("per-class daily errors")
	}
}

func TestTopNodes(t *testing.T) {
	d := fixture()
	top, rest := TopNodes(d, 1)
	if len(top) != 1 || top[0].Node != nodeA || top[0].Total != 5 {
		t.Fatalf("top: %+v", top)
	}
	if rest.Total != 1 {
		t.Fatalf("rest: %+v", rest.Total)
	}
	if top[0].Daily[10] != 5 {
		t.Fatal("top daily series")
	}
}

func TestRegimes(t *testing.T) {
	d := fixture()
	r := ComputeRegimes(d)
	// Day 10 has 5 errors (>3): degraded. Day 20 has 1: normal.
	if !r.Degraded[10] || r.Degraded[20] {
		t.Fatal("regime classification")
	}
	if r.DegradedDays != 1 || r.NormalDays != timebase.StudyDays-1 {
		t.Fatalf("day counts: %+v", r)
	}
	if r.DegradedErrors != 5 || r.NormalErrors != 1 {
		t.Fatalf("error split: %+v", r)
	}
	if r.MTBFDegradedHours != 24.0/5 {
		t.Fatalf("degraded MTBF %v", r.MTBFDegradedHours)
	}
	// Excluding nodeA as the controller node empties day 10.
	d.ControllerNode = nodeA
	r = ComputeRegimes(d)
	if r.DegradedDays != 0 || r.NormalErrors != 1 {
		t.Fatalf("exclusion: %+v", r)
	}
}

func TestMultiBitTableAndStats(t *testing.T) {
	d := fixture()
	rows := MultiBitTable(d)
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	// Ordered by bit count.
	if rows[0].Bits != 2 || rows[1].Bits != 4 {
		t.Fatalf("row order: %+v", rows)
	}
	total := 0
	for _, r := range rows {
		total += r.Occurrences
	}
	if total != 2 {
		t.Fatalf("occurrences %d", total)
	}
	st := ComputeMultiBitStats(d.Faults)
	if st.TotalEvents != 2 || st.DoubleBitEvents != 1 || st.OverThreeBits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxBits != 4 {
		t.Fatalf("max bits %d", st.MaxBits)
	}
	tbl := RenderMultiBitTable(rows)
	if len(tbl.Rows) != 2 {
		t.Fatal("rendered rows")
	}
}

func TestSimultaneityFigure(t *testing.T) {
	d := fixture()
	fig := ComputeSimultaneityFigure(d.Faults)
	// Per-word: 4 singles, 1 double, 1 quad.
	if fig.PerWord[1] != 4 || fig.PerWord[2] != 1 || fig.PerWord[4] != 1 {
		t.Fatalf("per word: %+v", fig.PerWord)
	}
	// Per-node: two 1-bit groups (the lone singles), two 2-bit groups (the
	// simultaneous single pair and the lone double), one 4-bit group.
	if fig.PerNode[1] != 2 || fig.PerNode[2] != 2 || fig.PerNode[4] != 1 {
		t.Fatalf("per node: %+v", fig.PerNode)
	}
	if c := fig.Chart(); len(c.Series) != 2 {
		t.Fatal("chart series")
	}
}

func TestIsolatedSDC(t *testing.T) {
	d := fixture()
	sdc := ComputeIsolatedSDC(d)
	if len(sdc.Events) != 1 || sdc.NodesInvolved != 1 {
		t.Fatalf("events: %+v", sdc)
	}
	ev := sdc.Events[0]
	if ev.NodeOtherErrors != 0 || ev.SimultaneousDetectable {
		t.Fatalf("isolation: %+v", ev)
	}
	if sdc.FullyIsolated != 1 || sdc.OnlyErrorOnNode != 1 || sdc.PreTelemetry != 1 {
		t.Fatalf("aggregates: %+v", sdc)
	}
}

func TestSpatialConcentration(t *testing.T) {
	d := fixture()
	errShare, nodeShare := SpatialConcentration(d, 1)
	if errShare != 5.0/6 {
		t.Fatalf("error share %v", errShare)
	}
	if nodeShare <= 0 || nodeShare > 0.01 {
		t.Fatalf("node share %v", nodeShare)
	}
}

func TestScanErrorCorrelation(t *testing.T) {
	d := fixture()
	pr, err := ScanErrorCorrelation(d)
	if err != nil {
		t.Fatal(err)
	}
	if pr.N != timebase.StudyDays {
		t.Fatalf("n = %d", pr.N)
	}
	if pr.R < -1 || pr.R > 1 {
		t.Fatalf("r = %v", pr.R)
	}
}

func TestFaultsExcluding(t *testing.T) {
	d := fixture()
	rest := d.FaultsExcluding(nodeA)
	if len(rest) != 1 || rest[0].Node != nodeB {
		t.Fatalf("exclusion: %+v", rest)
	}
	if len(d.FaultsExcluding()) != 6 {
		t.Fatal("no-op exclusion")
	}
}

func TestMonthlySeries(t *testing.T) {
	daily := make([]float64, timebase.StudyDays)
	daily[0] = 1  // Feb 2015
	daily[35] = 2 // Mar 2015
	labels, sums := MonthlySeries(daily)
	// Feb 2015 through Feb 2016 inclusive: exactly 13 calendar months.
	if len(labels) != 13 {
		t.Fatalf("months %d: %v", len(labels), labels)
	}
	if labels[0] != "2015-02" || sums[0] != 1 {
		t.Fatalf("first month: %v %v", labels[0], sums[0])
	}
	if labels[1] != "2015-03" || sums[1] != 2 {
		t.Fatalf("second month: %v %v", labels[1], sums[1])
	}
}
