package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	d := fixture()
	rows := [][]string{{"0", "10", "0", "2.1"}}
	if err := WriteCSVs(d, rows, dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig1_hours.csv", "fig2_tbh.csv", "fig3_errors.csv",
		"fig4_simultaneity.csv", "fig5_fig6_hour_of_day.csv",
		"fig7_fig8_temperature.csv", "fig9_fig10_fig11_daily.csv",
		"fig12_top_nodes.csv", "fig13_regimes.csv",
		"table1_multibit.csv", "table2_quarantine.csv",
	}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
	}

	// Spot-check content: fig13 has one degraded day (day 10).
	data, _ := os.ReadFile(filepath.Join(dir, "fig13_regimes.csv"))
	if !strings.Contains(string(data), "10,2015-02-11,degraded,5") {
		t.Fatalf("fig13 content wrong:\n%s", firstLines(string(data), 12))
	}
	// Table I carries the fixture's double and quad.
	data, _ = os.ReadFile(filepath.Join(dir, "table1_multibit.csv"))
	if !strings.Contains(string(data), "0xffff7bff") {
		t.Fatal("table1 missing the double-bit pattern")
	}
	// Table II passthrough.
	data, _ = os.ReadFile(filepath.Join(dir, "table2_quarantine.csv"))
	if !strings.Contains(string(data), "0,10,0,2.1") {
		t.Fatal("table2 rows not written")
	}
}

func TestWriteCSVsNilQuarantine(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSVs(fixture(), nil, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2_quarantine.csv")); !os.IsNotExist(err) {
		t.Fatal("table2 should be skipped without rows")
	}
}

func TestWriteCSVsBadDir(t *testing.T) {
	if err := WriteCSVs(fixture(), nil, "/dev/null/not-a-dir"); err == nil {
		t.Fatal("impossible directory accepted")
	}
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
