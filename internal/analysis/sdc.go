package analysis

import (
	"unprotected/internal/cluster"
	"unprotected/internal/extract"
	"unprotected/internal/thermal"
)

// IsolatedSDC is §III-D's analysis of the relation between detectable and
// undetectable errors: for every fault with more than 3 corrupted bits
// (undetectable by SECDED), how many *other* errors did its node log, and
// did anything detectable happen around the same time?
type IsolatedSDC struct {
	Events []IsolatedEvent
	// NodesInvolved is the number of distinct nodes carrying such events
	// (5 in the paper).
	NodesInvolved int
	// FullyIsolated counts events whose node logged no *detectable*
	// (≤3-bit) error in the entire study — the paper's striking finding
	// was that every undetectable error was uncorrelated with anything an
	// ECC counter would have seen.
	FullyIsolated int
	// OnlyErrorOnNode counts events that are their node's only error of
	// any kind ("4 of those undetectable errors occurred in a node that
	// had only that one error").
	OnlyErrorOnNode int
	// PreTelemetry counts events before temperature logging began.
	PreTelemetry int
	// NearSoC12Nodes counts the involved nodes physically adjacent to the
	// overheating SoC-12 position (4 of 5 nodes in the paper).
	NearSoC12Nodes int
}

// IsolatedEvent is one undetectable-error event.
type IsolatedEvent struct {
	Fault extract.Fault
	// NodeOtherErrors counts the node's other faults of any multiplicity.
	NodeOtherErrors int
	// NodeDetectableErrors counts the node's ≤3-bit (ECC-visible) faults.
	NodeDetectableErrors int
	// SimultaneousDetectable reports whether any other fault of the same
	// node shares its timestamp.
	SimultaneousDetectable bool
}

// ComputeIsolatedSDC scans faults with BitCount > 3.
func ComputeIsolatedSDC(d *Dataset) *IsolatedSDC {
	out := &IsolatedSDC{}
	byNode := d.ByNode()
	nodes := make(map[cluster.NodeID]bool)
	for _, f := range d.Faults {
		if f.BitCount() <= 3 {
			continue
		}
		ev := IsolatedEvent{Fault: f}
		for _, other := range byNode[f.Node] {
			if other == f {
				continue
			}
			ev.NodeOtherErrors++
			if other.BitCount() <= 3 {
				ev.NodeDetectableErrors++
			}
			if other.FirstAt == f.FirstAt {
				ev.SimultaneousDetectable = true
			}
		}
		if ev.NodeDetectableErrors == 0 {
			out.FullyIsolated++
		}
		if ev.NodeOtherErrors == 0 {
			out.OnlyErrorOnNode++
		}
		if f.TempC <= thermal.NoReading+1 {
			out.PreTelemetry++
		}
		if !nodes[f.Node] && (f.Node.SoC == 11 || f.Node.SoC == 13) {
			out.NearSoC12Nodes++
		}
		nodes[f.Node] = true
		out.Events = append(out.Events, ev)
	}
	out.NodesInvolved = len(nodes)
	return out
}
