package analysis

import (
	"fmt"
	"sort"

	"unprotected/internal/extract"
	"unprotected/internal/render"
)

// MultiBitRow is one line of Table I: a distinct (expected, corrupted)
// word pattern with its occurrence count.
type MultiBitRow struct {
	Bits        int
	Expected    uint32
	Corrupted   uint32
	Occurrences int
	Consecutive bool
}

// MultiBitTable builds Table I from the dataset's multi-bit faults,
// grouped by exact value pair, ordered like the paper (bit count, then
// occurrences).
func MultiBitTable(d *Dataset) []MultiBitRow {
	type key struct{ e, a uint32 }
	rows := make(map[key]*MultiBitRow)
	for _, f := range d.MultiBitFaults() {
		k := key{f.Expected, f.Actual}
		r, ok := rows[k]
		if !ok {
			r = &MultiBitRow{
				Bits:        f.BitCount(),
				Expected:    f.Expected,
				Corrupted:   f.Actual,
				Consecutive: f.Bits.Consecutive(),
			}
			rows[k] = r
		}
		r.Occurrences++
	}
	out := make([]MultiBitRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bits != out[j].Bits {
			return out[i].Bits < out[j].Bits
		}
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences < out[j].Occurrences
		}
		if out[i].Corrupted != out[j].Corrupted {
			return out[i].Corrupted < out[j].Corrupted
		}
		// Two distinct value pairs can share corrupted value, bit count and
		// occurrence count; without this final key the row order would leak
		// map iteration order into the rendered table.
		return out[i].Expected < out[j].Expected
	})
	return out
}

// MultiBitStats aggregates §III-C's adjacency observations over Table I.
type MultiBitStats struct {
	TotalEvents     int // multi-bit faults (85 in the paper)
	DoubleBitEvents int // 76 in the paper
	OverTwoBits     int // 9 in the paper (undetectable by SECDED)
	OverThreeBits   int // 7 in the paper (§III-D focus)
	NonConsecutive  int // events whose corrupted bits are not contiguous
	MeanGap         float64
	MaxGap          int
	MaxBits         int
	LSBShare        float64 // fraction of corrupted bits in the low half-word
}

// MultiBitAccum is the incremental form of ComputeMultiBitStats: Observe
// faults one at a time, read Stats whenever needed (Stats finalizes the
// running means without mutating the accumulator).
type MultiBitAccum struct {
	st        MultiBitStats
	gapSum    float64
	gapN      int
	lsb       int
	bitsTotal int
}

// NewMultiBitAccum returns an empty accumulator.
func NewMultiBitAccum() *MultiBitAccum { return &MultiBitAccum{} }

// Observe folds one fault into the aggregates; single-bit faults are
// ignored, as in the paper's Table I population.
func (a *MultiBitAccum) Observe(f extract.Fault) {
	bc := f.BitCount()
	if bc < 2 {
		return
	}
	st := &a.st
	st.TotalEvents++
	if bc == 2 {
		st.DoubleBitEvents++
	}
	if bc > 2 {
		st.OverTwoBits++
	}
	if bc > 3 {
		st.OverThreeBits++
	}
	if !f.Bits.Consecutive() {
		st.NonConsecutive++
	}
	if g := f.Bits.MaxGap(); g > st.MaxGap {
		st.MaxGap = g
	}
	if bc > st.MaxBits {
		st.MaxBits = bc
	}
	a.gapSum += f.Bits.MeanGap()
	a.gapN++
	for _, p := range f.Bits.Positions() {
		a.bitsTotal++
		if p < 16 {
			a.lsb++
		}
	}
}

// Stats returns the aggregates observed so far.
func (a *MultiBitAccum) Stats() MultiBitStats {
	st := a.st
	if a.gapN > 0 {
		st.MeanGap = a.gapSum / float64(a.gapN)
	}
	if a.bitsTotal > 0 {
		st.LSBShare = float64(a.lsb) / float64(a.bitsTotal)
	}
	return st
}

// ComputeMultiBitStats summarizes the multi-bit population. It is the
// collect-all wrapper over MultiBitAccum.
func ComputeMultiBitStats(faults []extract.Fault) MultiBitStats {
	a := NewMultiBitAccum()
	for _, f := range faults {
		a.Observe(f)
	}
	return a.Stats()
}

// RenderMultiBitTable renders Table I in the paper's column layout.
func RenderMultiBitTable(rows []MultiBitRow) *render.Table {
	t := &render.Table{
		Title:   "Table I: multi-bit corruptions affecting the prototype",
		Headers: []string{"Bits", "Expected", "Corrupted", "Occurrences", "Consecutive"},
	}
	for _, r := range rows {
		cons := "No"
		if r.Consecutive {
			cons = "Yes"
		}
		t.AddRow(
			fmt.Sprint(r.Bits),
			fmt.Sprintf("0x%08x", r.Expected),
			fmt.Sprintf("0x%08x", r.Corrupted),
			fmt.Sprint(r.Occurrences),
			cons,
		)
	}
	return t
}

// SimultaneityFigure is Fig 4: error-event counts by bit multiplicity on
// the per-word basis (standard multi-bit definition) and the per-node
// basis (bits summed over a simultaneity group).
type SimultaneityFigure struct {
	PerWord [7]float64 // index BitClass
	PerNode [7]float64
}

// ComputeSimultaneityFigure buckets faults and groups.
func ComputeSimultaneityFigure(faults []extract.Fault) *SimultaneityFigure {
	var fig SimultaneityFigure
	for _, f := range faults {
		fig.PerWord[BitClass(f.BitCount())]++
	}
	for _, g := range extract.Groups(faults) {
		fig.PerNode[BitClass(g.TotalBits())]++
	}
	return &fig
}

// SimultaneityAccum is the incremental form of the §III-C analyses: it
// feeds a streaming extract.Grouper, so Fig 4 and the simultaneity
// aggregates come out of one pass over a canonically ordered fault stream
// without materializing the groups. Call Flush (or read via Figure/Stats,
// which flush) after the last fault.
type SimultaneityAccum struct {
	fig     SimultaneityFigure
	st      extract.SimultaneityStats
	grouper *extract.Grouper
}

// NewSimultaneityAccum returns an empty accumulator.
func NewSimultaneityAccum() *SimultaneityAccum {
	a := &SimultaneityAccum{}
	a.grouper = extract.NewGrouper(func(g extract.Group) {
		a.fig.PerNode[BitClass(g.TotalBits())]++
		a.st.Observe(g)
	})
	return a
}

// Observe folds one fault of a canonically ordered stream.
func (a *SimultaneityAccum) Observe(f extract.Fault) {
	a.fig.PerWord[BitClass(f.BitCount())]++
	a.grouper.Observe(f)
}

// Flush closes the trailing group; further Observes start a new one.
func (a *SimultaneityAccum) Flush() { a.grouper.Flush() }

// Figure returns Fig 4 over everything observed so far.
func (a *SimultaneityAccum) Figure() *SimultaneityFigure {
	a.Flush()
	fig := a.fig
	return &fig
}

// Stats returns the §III-C aggregates over everything observed so far.
func (a *SimultaneityAccum) Stats() extract.SimultaneityStats {
	a.Flush()
	return a.st
}

// Chart renders Fig 4 on a log scale (counts span orders of magnitude).
func (f *SimultaneityFigure) Chart() *render.BarChart {
	chart := &render.BarChart{
		Title: "Fig 4: simultaneous memory errors vs multi-bit errors",
		LogY:  true,
	}
	for c := 1; c <= 6; c++ {
		chart.XLabels = append(chart.XLabels, BitClassLabels[c])
	}
	word := make([]float64, 6)
	node := make([]float64, 6)
	for c := 1; c <= 6; c++ {
		word[c-1] = f.PerWord[c]
		node[c-1] = f.PerNode[c]
	}
	chart.Series = append(chart.Series,
		render.Series{Label: "per memory word", Values: word},
		render.Series{Label: "per node", Values: node},
	)
	return chart
}
