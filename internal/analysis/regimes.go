package analysis

import (
	"unprotected/internal/cluster"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// NormalDayThreshold is §III-I's safety-margin rule: "we consider any day
// with three or less errors as normal".
const NormalDayThreshold = 3

// Regimes is Fig 13 plus the associated MTBF split. The permanent-failure
// node (02-04) is excluded, as the paper assumes production would have
// retired it.
type Regimes struct {
	// Degraded[day] reports whether the system ran degraded that day.
	Degraded []bool
	// ErrorsPerDay is the daily error count after exclusion.
	ErrorsPerDay []float64

	NormalDays     int
	DegradedDays   int
	NormalErrors   int
	DegradedErrors int
	// MTBFNormalHours / MTBFDegradedHours are wall-clock hours per error
	// within each regime (167 h vs 0.39 h in the paper).
	MTBFNormalHours   float64
	MTBFDegradedHours float64
}

// RegimesAccum is the incremental form of ComputeRegimes: faults stream in
// one at a time (excluded nodes are dropped on the fly), Finish classifies
// the days. The exclusion set must be known up front — it is (§III-I names
// the permanently failing controller node), which is what makes the regime
// analysis streamable at all.
type RegimesAccum struct {
	exclude      map[cluster.NodeID]bool
	errorsPerDay []float64
}

// NewRegimesAccum returns an accumulator excluding the given nodes.
func NewRegimesAccum(exclude ...cluster.NodeID) *RegimesAccum {
	a := &RegimesAccum{
		exclude:      make(map[cluster.NodeID]bool, len(exclude)),
		errorsPerDay: make([]float64, timebase.StudyDays),
	}
	for _, n := range exclude {
		a.exclude[n] = true
	}
	return a
}

// Observe folds one fault into the daily counts.
func (a *RegimesAccum) Observe(f extract.Fault) {
	if a.exclude[f.Node] {
		return
	}
	day := f.FirstAt.Day()
	if day >= 0 && day < len(a.errorsPerDay) {
		a.errorsPerDay[day]++
	}
}

// Finish classifies every study day from the accumulated counts. It does
// not mutate the accumulator and may be called repeatedly.
func (a *RegimesAccum) Finish() *Regimes {
	r := &Regimes{
		Degraded:     make([]bool, timebase.StudyDays),
		ErrorsPerDay: append([]float64(nil), a.errorsPerDay...),
	}
	for day, n := range r.ErrorsPerDay {
		if n > NormalDayThreshold {
			r.Degraded[day] = true
			r.DegradedDays++
			r.DegradedErrors += int(n)
		} else {
			r.NormalDays++
			r.NormalErrors += int(n)
		}
	}
	if r.NormalErrors > 0 {
		r.MTBFNormalHours = float64(r.NormalDays) * 24 / float64(r.NormalErrors)
	}
	if r.DegradedErrors > 0 {
		r.MTBFDegradedHours = float64(r.DegradedDays) * 24 / float64(r.DegradedErrors)
	}
	return r
}

// ComputeRegimes classifies every study day. It is the collect-all wrapper
// over RegimesAccum.
func ComputeRegimes(d *Dataset) *Regimes {
	exclude := []cluster.NodeID{}
	var zero cluster.NodeID
	if d.ControllerNode != zero {
		exclude = append(exclude, d.ControllerNode)
	}
	a := NewRegimesAccum(exclude...)
	for _, f := range d.Faults {
		a.Observe(f)
	}
	return a.Finish()
}

// DegradedFraction returns the share of study days in degraded mode
// (18.1% in the paper).
func (r *Regimes) DegradedFraction() float64 {
	total := r.NormalDays + r.DegradedDays
	if total == 0 {
		return 0
	}
	return float64(r.DegradedDays) / float64(total)
}

// SpatialConcentration quantifies §III-H: the fraction of all errors
// contributed by the k highest-error nodes, and the fraction of scanned
// nodes they represent. The paper: >99.9% of errors in <1% of nodes.
func SpatialConcentration(d *Dataset, k int) (errorShare, nodeShare float64) {
	top, rest := TopNodes(d, k)
	var topTotal int
	for _, t := range top {
		topTotal += t.Total
	}
	total := topTotal + rest.Total
	if total > 0 {
		errorShare = float64(topTotal) / float64(total)
	}
	scanned := 923
	if d.Topo != nil {
		scanned = d.Topo.CountByRole()[cluster.Scanned]
	}
	if scanned > 0 {
		nodeShare = float64(k) / float64(scanned)
	}
	return errorShare, nodeShare
}
