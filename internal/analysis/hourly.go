package analysis

import (
	"fmt"

	"unprotected/internal/extract"
	"unprotected/internal/render"
)

// HourOfDay is the Fig 5/6 data: error counts per local hour, one series
// per bit-count class.
type HourOfDay struct {
	// Counts[class][hour], class per BitClass (1..6).
	Counts [7][24]float64
}

// NewHourOfDay returns an empty accumulator for streaming consumers.
func NewHourOfDay() *HourOfDay { return &HourOfDay{} }

// Observe folds one fault into the histogram.
func (h *HourOfDay) Observe(f extract.Fault) {
	h.Counts[BitClass(f.BitCount())][f.FirstAt.HourOfDay()]++
}

// ComputeHourOfDay tallies faults by local hour of day and bit class. It is
// the collect-all wrapper over Observe.
func ComputeHourOfDay(faults []extract.Fault) *HourOfDay {
	h := NewHourOfDay()
	for _, f := range faults {
		h.Observe(f)
	}
	return h
}

// Total returns the all-classes histogram.
func (h *HourOfDay) Total() [24]float64 {
	var out [24]float64
	for c := 1; c <= 6; c++ {
		for hh := 0; hh < 24; hh++ {
			out[hh] += h.Counts[c][hh]
		}
	}
	return out
}

// MultiBit returns the multi-bit-only histogram (classes 2..6+), Fig 6.
func (h *HourOfDay) MultiBit() [24]float64 {
	var out [24]float64
	for c := 2; c <= 6; c++ {
		for hh := 0; hh < 24; hh++ {
			out[hh] += h.Counts[c][hh]
		}
	}
	return out
}

// DayNightRatio returns (7:00–17:59 count)/(rest) for a 24-bin histogram.
// The paper found ≈2× for multi-bit errors and ≈1 for all errors.
func DayNightRatio(hist [24]float64) float64 {
	var day, night float64
	for hh, v := range hist {
		if hh >= 7 && hh < 18 {
			day += v
		} else {
			night += v
		}
	}
	if night == 0 {
		return 0
	}
	return day / night
}

// PeakHour returns the hour with the largest count.
func PeakHour(hist [24]float64) int {
	best := 0
	for hh, v := range hist {
		if v > hist[best] {
			best = hh
		}
	}
	return best
}

// Chart renders the per-class histograms (Fig 5 when all classes, Fig 6
// when multiBitOnly).
func (h *HourOfDay) Chart(title string, multiBitOnly bool) *render.BarChart {
	chart := &render.BarChart{Title: title}
	for hh := 0; hh < 24; hh++ {
		chart.XLabels = append(chart.XLabels, fmt.Sprintf("%02dh", hh))
	}
	lo := 1
	if multiBitOnly {
		lo = 2
	}
	for c := lo; c <= 6; c++ {
		var vals []float64
		nonzero := false
		for hh := 0; hh < 24; hh++ {
			v := h.Counts[c][hh]
			vals = append(vals, v)
			if v > 0 {
				nonzero = true
			}
		}
		if nonzero {
			chart.Series = append(chart.Series, render.Series{Label: BitClassLabels[c], Values: vals})
		}
	}
	if multiBitOnly {
		mb := h.MultiBit()
		chart.Series = append(chart.Series, render.Series{Label: "all multi-bit", Values: mb[:]})
	}
	return chart
}
