package analysis

import (
	"fmt"

	"unprotected/internal/extract"
	"unprotected/internal/render"
	"unprotected/internal/stats"
)

// TempBins spans the plotted temperature range of Figs 7–8.
const (
	TempLo      = 18.0
	TempHi      = 72.0
	TempBinSize = 2.0
)

// Temperature is the Fig 7/8 data: per bit class, a histogram of node
// temperature at fault time. Faults before telemetry started (April 2015)
// carry no reading and are counted in NoReading.
type Temperature struct {
	Hists     [7]*stats.Histogram
	NoReading int
}

// NewTemperature returns an empty accumulator for streaming consumers.
func NewTemperature() *Temperature {
	t := &Temperature{}
	n := int((TempHi - TempLo) / TempBinSize)
	for c := 1; c <= 6; c++ {
		t.Hists[c] = stats.NewHistogram(TempLo, TempHi, n)
	}
	return t
}

// Observe folds one fault into the histograms.
func (t *Temperature) Observe(f extract.Fault) {
	if !f.HasTemp() {
		t.NoReading++
		return
	}
	t.Hists[BitClass(f.BitCount())].Observe(f.TempC)
}

// ComputeTemperature tallies faults with temperature telemetry. It is the
// collect-all wrapper over Observe.
func ComputeTemperature(faults []extract.Fault) *Temperature {
	t := NewTemperature()
	for _, f := range faults {
		t.Observe(f)
	}
	return t
}

// CountAbove returns errors hotter than the threshold across classes
// lo..hi (the paper: a small set of single-bit errors above 60°C, no
// multi-bit ones).
func (t *Temperature) CountAbove(tempC float64, loClass, hiClass int) float64 {
	var total float64
	for c := loClass; c <= hiClass && c <= 6; c++ {
		h := t.Hists[c]
		for i, v := range h.Counts {
			if h.BinCenter(i) > tempC {
				total += v
			}
		}
	}
	return total
}

// ModalBand returns the [lo, hi) temperature band of the modal bin over
// classes lo..hi; the paper's mode is 30–40°C.
func (t *Temperature) ModalBand(loClass, hiClass int) (lo, hi float64) {
	n := len(t.Hists[1].Counts)
	agg := make([]float64, n)
	for c := loClass; c <= hiClass && c <= 6; c++ {
		for i, v := range t.Hists[c].Counts {
			agg[i] += v
		}
	}
	best := 0
	for i, v := range agg {
		if v > agg[best] {
			best = i
		}
	}
	lo = TempLo + float64(best)*TempBinSize
	return lo, lo + TempBinSize
}

// Chart renders the temperature distributions (Fig 7 for all classes,
// Fig 8 restricted to multi-bit).
func (t *Temperature) Chart(title string, multiBitOnly bool) *render.BarChart {
	chart := &render.BarChart{Title: title}
	h0 := t.Hists[1]
	for i := range h0.Counts {
		chart.XLabels = append(chart.XLabels, fmt.Sprintf("%.0fC", h0.BinCenter(i)))
	}
	lo := 1
	if multiBitOnly {
		lo = 2
	}
	for c := lo; c <= 6; c++ {
		nonzero := false
		for _, v := range t.Hists[c].Counts {
			if v > 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			chart.Series = append(chart.Series, render.Series{
				Label: BitClassLabels[c], Values: append([]float64(nil), t.Hists[c].Counts...),
			})
		}
	}
	return chart
}
