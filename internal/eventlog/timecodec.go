package eventlog

// Hand-rolled codec for the single timestamp layout the log format uses
// ("2006-01-02T15:04:05Z", UTC). The generic time.Parse/AppendFormat pair
// re-interprets the layout string on every call and dominated the per-line
// cost of log replay; this codec is safe to substitute because the Writer
// emits exactly one canonical layout, and the parser accepts exactly the
// language time.Parse accepts for that layout (fixed-width fields, range
// checks including leap years, plus Go's documented tolerance for a
// fractional-seconds suffix that is absent from the layout).
//
// Civil-date arithmetic follows the classic era-based algorithms
// (Howard Hinnant's civil_from_days/days_from_civil), valid over the whole
// proleptic Gregorian calendar.

import (
	"fmt"
	"math"
	"time"

	"unprotected/internal/timebase"
)

// epochUnix is the study epoch as a Unix time; the codec converts between
// timebase.T (seconds since the study epoch) and civil UTC fields through
// Unix seconds.
var epochUnix = timebase.Epoch.Unix()

const secondsPerDay = 86400

// maxEpochDelta is the saturation point of timebase.FromTime: time.Time.Sub
// clamps to ±math.MaxInt64 nanoseconds (±292 years), so any parsed instant
// farther from the study epoch collapses to ±maxEpochDelta seconds. The
// codec reproduces that exactly — a replayed log must yield the same
// timebase.T the time.Parse pipeline yielded, even for absurd years.
const maxEpochDelta = int64(math.MaxInt64 / time.Second)

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func isLeap(y int64) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

func daysInMonth(y int64, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default: // February
		if isLeap(y) {
			return 29
		}
		return 28
	}
}

// daysFromCivil returns the number of days between 1970-01-01 and the civil
// date (y, m, d); negative before the Unix epoch.
func daysFromCivil(y int64, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := floorDiv(y, 400)
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // 719468 = days 0000-03-01..1970-01-01
}

// civilFromDays inverts daysFromCivil.
func civilFromDays(z int64) (y int64, m, d int) {
	z += 719468
	era := floorDiv(z, 146097)
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp) + 3
	} else {
		m = int(mp) - 9
	}
	if m <= 2 {
		y++
	}
	return y, m, d
}

// appendTimestamp renders t in the canonical layout, byte-identical to
// t.Time().AppendFormat(b, tsLayout) for every t a parsed or simulated
// record can carry (|t| ≤ maxEpochDelta, i.e. years 1723..2307 — beyond
// that the old Time()-based path overflowed time.Duration and rendered
// wrapped nonsense; the codec renders the true instant instead). Years
// outside [0, 9999] cannot be rendered in the fixed four-digit form and
// fall back to AppendFormat.
func appendTimestamp(b []byte, t timebase.T) []byte {
	unix := int64(t) + epochUnix
	days := floorDiv(unix, secondsPerDay)
	rem := unix - days*secondsPerDay // [0, 86399]
	y, m, d := civilFromDays(days)
	if y < 0 || y > 9999 {
		return t.Time().AppendFormat(b, tsLayout)
	}
	b = append(b,
		byte('0'+y/1000%10), byte('0'+y/100%10), byte('0'+y/10%10), byte('0'+y%10), '-',
		byte('0'+m/10), byte('0'+m%10), '-',
		byte('0'+d/10), byte('0'+d%10), 'T')
	hh, mm, ss := rem/3600, rem/60%60, rem%60
	b = append(b,
		byte('0'+hh/10), byte('0'+hh%10), ':',
		byte('0'+mm/10), byte('0'+mm%10), ':',
		byte('0'+ss/10), byte('0'+ss%10), 'Z')
	return b
}

// num2 parses two ASCII digits; ok is false on any non-digit.
func num2(v []byte, i int) (int, bool) {
	a, b := v[i]-'0', v[i+1]-'0'
	return int(a)*10 + int(b), a <= 9 && b <= 9
}

// parseTimestamp parses the canonical layout. It accepts exactly what
// time.Parse(tsLayout, v) accepts: fixed-width numeric fields (except the
// hour, which Go's "15" layout token parses as one or two digits), full
// range validation (month, day-in-month with leap years, hour, minute,
// second), and an optional fractional-seconds suffix ('.' or ',' followed
// by digits) that Go's parser tolerates even though the layout has none —
// the fraction is discarded, as timebase.T has whole-second resolution.
func parseTimestamp(v []byte) (timebase.T, error) {
	if len(v) < 19 || v[4] != '-' || v[7] != '-' || v[10] != 'T' {
		return 0, errTimestamp(v)
	}
	y4, ok0 := num2(v, 0)
	y2, ok1 := num2(v, 2)
	mo, ok2 := num2(v, 5)
	d, ok3 := num2(v, 8)
	if !(ok0 && ok1 && ok2 && ok3) {
		return 0, errTimestamp(v)
	}
	// Hour: one or two digits (time.Parse's 24-hour token is not
	// fixed-width), then fixed ":MM:SS".
	i := 11
	hh := int(v[i] - '0')
	if hh > 9 {
		return 0, errTimestamp(v)
	}
	i++
	if d2 := v[i] - '0'; d2 <= 9 {
		hh = hh*10 + int(d2)
		i++
	}
	if len(v) < i+7 || v[i] != ':' || v[i+3] != ':' {
		return 0, errTimestamp(v)
	}
	mm, ok4 := num2(v, i+1)
	ss, ok5 := num2(v, i+4)
	if !(ok4 && ok5) {
		return 0, errTimestamp(v)
	}
	i += 6
	fracNonzero := false
	if v[i] == '.' || v[i] == ',' {
		j := i + 1
		for j < len(v) && v[j]-'0' <= 9 {
			// time.Parse keeps at most nine fractional digits (nanosecond
			// resolution); deeper digits are consumed but can never make
			// the fraction nonzero.
			if v[j] != '0' && j <= i+9 {
				fracNonzero = true
			}
			j++
		}
		if j == i+1 {
			return 0, errTimestamp(v) // bare '.' with no digits
		}
		i = j
	}
	if i != len(v)-1 || v[i] != 'Z' {
		return 0, errTimestamp(v)
	}
	y := int64(y4)*100 + int64(y2)
	if mo < 1 || mo > 12 || d < 1 || d > daysInMonth(y, mo) || hh > 23 || mm > 59 || ss > 59 {
		return 0, errTimestamp(v)
	}
	unix := daysFromCivil(y, mo, d)*secondsPerDay + int64(hh)*3600 + int64(mm)*60 + int64(ss)
	delta := unix - epochUnix
	// Match FromTime's truncation toward zero: a nonzero fraction on an
	// instant before the epoch rounds the whole-second delta up.
	if delta < 0 && fracNonzero {
		delta++
	}
	if delta > maxEpochDelta {
		delta = maxEpochDelta
	} else if delta < -maxEpochDelta {
		delta = -maxEpochDelta
	}
	return timebase.T(delta), nil
}

// errTimestamp builds the (allocating) error for a rejected timestamp; the
// value's bytes are copied into the message immediately, so the error never
// aliases a reusable read buffer.
func errTimestamp(v []byte) error {
	return fmt.Errorf("invalid timestamp %q (want %s)", v, tsLayout)
}
