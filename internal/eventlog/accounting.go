package eventlog

import (
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/timebase"
	"unprotected/internal/units"
)

// Session is one reconstructed scanner run on a node: from a START record
// to the matching END.
type Session struct {
	Host       cluster.NodeID
	From, To   timebase.T
	AllocBytes int64
	// Truncated marks sessions whose END was never logged (hard reboot).
	// Per §II-B these contribute zero monitored time: "we took a
	// conservative approach and we assumed 0 hours of memory monitoring".
	Truncated bool
}

// Duration returns the monitored time, zero for truncated sessions.
func (s Session) Duration() time.Duration {
	if s.Truncated || s.To <= s.From {
		return 0
	}
	return s.To.Sub(s.From)
}

// TBh returns the memory-time scanned by the session.
func (s Session) TBh() units.TBh {
	return units.TBhOf(s.AllocBytes, s.Duration())
}

// Accounting reconstructs sessions and accumulates monitored hours and
// terabyte-hours per node from an ordered record stream. Records of
// different hosts may be interleaved; records of one host must be in time
// order (as they are in per-node log files).
type Accounting struct {
	open     map[cluster.NodeID]*Session
	Sessions []Session
}

// NewAccounting returns an empty accumulator.
func NewAccounting() *Accounting {
	return &Accounting{open: make(map[cluster.NodeID]*Session)}
}

// Observe consumes one record.
func (a *Accounting) Observe(r Record) {
	switch r.Kind {
	case KindStart:
		if prev, ok := a.open[r.Host]; ok {
			// START after START: the node was hard-rebooted and the END
			// lost. Close the previous session as truncated (0 hours).
			prev.Truncated = true
			a.Sessions = append(a.Sessions, *prev)
		}
		a.open[r.Host] = &Session{Host: r.Host, From: r.At, AllocBytes: r.AllocBytes}
	case KindEnd:
		if s, ok := a.open[r.Host]; ok {
			s.To = r.At
			a.Sessions = append(a.Sessions, *s)
			delete(a.open, r.Host)
		}
		// An END without a START is dropped: nothing can be accounted.
	}
}

// Finish closes still-open sessions as truncated and returns all sessions.
func (a *Accounting) Finish() []Session {
	for _, s := range a.open {
		s.Truncated = true
		a.Sessions = append(a.Sessions, *s)
	}
	a.open = make(map[cluster.NodeID]*Session)
	return a.Sessions
}

// HoursByNode sums monitored hours per node.
func (a *Accounting) HoursByNode() map[cluster.NodeID]float64 {
	out := make(map[cluster.NodeID]float64)
	for _, s := range a.Sessions {
		out[s.Host] += s.Duration().Hours()
	}
	return out
}

// TBhByNode sums scanned terabyte-hours per node.
func (a *Accounting) TBhByNode() map[cluster.NodeID]units.TBh {
	out := make(map[cluster.NodeID]units.TBh)
	for _, s := range a.Sessions {
		out[s.Host] += s.TBh()
	}
	return out
}

// TotalNodeHours sums monitored time across all nodes.
func (a *Accounting) TotalNodeHours() units.NodeHours {
	var total float64
	for _, s := range a.Sessions {
		total += s.Duration().Hours()
	}
	return units.NodeHours(total)
}

// TotalTBh sums scanned memory-time across all nodes.
func (a *Accounting) TotalTBh() units.TBh {
	var total units.TBh
	for _, s := range a.Sessions {
		total += s.TBh()
	}
	return total
}
