package eventlog

import (
	"cmp"
	"sort"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/timebase"
	"unprotected/internal/units"
)

// Session is one reconstructed scanner run on a node: from a START record
// to the matching END.
type Session struct {
	Host       cluster.NodeID
	From, To   timebase.T
	AllocBytes int64
	// Truncated marks sessions whose END was never logged (hard reboot).
	// Per §II-B these contribute zero monitored time: "we took a
	// conservative approach and we assumed 0 hours of memory monitoring".
	Truncated bool
}

// CompareSessions is the canonical total order over sessions: (start,
// host, end, allocation, truncation). No two sessions of one host share a
// start time, so (start, host) alone already orders any real campaign; the
// remaining fields only exist to keep the order total on arbitrary input.
// The campaign's k-way merge relies on this totality.
func CompareSessions(a, b *Session) int {
	switch {
	case a.From != b.From:
		return cmp.Compare(a.From, b.From)
	case a.Host.Blade != b.Host.Blade:
		// (Blade, SoC) matches Index() order on valid IDs but stays
		// injective on arbitrary ones, keeping the order truly total.
		return cmp.Compare(a.Host.Blade, b.Host.Blade)
	case a.Host.SoC != b.Host.SoC:
		return cmp.Compare(a.Host.SoC, b.Host.SoC)
	case a.To != b.To:
		return cmp.Compare(a.To, b.To)
	case a.AllocBytes != b.AllocBytes:
		return cmp.Compare(a.AllocBytes, b.AllocBytes)
	case a.Truncated != b.Truncated:
		if b.Truncated {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Duration returns the monitored time, zero for truncated sessions.
func (s Session) Duration() time.Duration {
	if s.Truncated || s.To <= s.From {
		return 0
	}
	return s.To.Sub(s.From)
}

// TBh returns the memory-time scanned by the session.
func (s Session) TBh() units.TBh {
	return units.TBhOf(s.AllocBytes, s.Duration())
}

// Accounting reconstructs sessions and accumulates monitored hours and
// terabyte-hours per node from an ordered record stream. Records of
// different hosts may be interleaved; records of one host must be in time
// order (as they are in per-node log files).
type Accounting struct {
	open     map[cluster.NodeID]*Session
	Sessions []Session
}

// NewAccounting returns an empty accumulator.
func NewAccounting() *Accounting {
	return &Accounting{open: make(map[cluster.NodeID]*Session)}
}

// Observe consumes one record.
func (a *Accounting) Observe(r Record) {
	switch r.Kind {
	case KindStart:
		if prev, ok := a.open[r.Host]; ok {
			// START after START: the node was hard-rebooted and the END
			// lost. Close the previous session as truncated (0 hours).
			prev.Truncated = true
			a.Sessions = append(a.Sessions, *prev)
		}
		a.open[r.Host] = &Session{Host: r.Host, From: r.At, AllocBytes: r.AllocBytes}
	case KindEnd:
		if s, ok := a.open[r.Host]; ok {
			s.To = r.At
			a.Sessions = append(a.Sessions, *s)
			delete(a.open, r.Host)
		}
		// An END without a START is dropped: nothing can be accounted.
	}
}

// Finish closes still-open sessions as truncated and returns all sessions.
// The appended tail is sorted by CompareSessions: the open set is a map, and
// letting map-iteration order leak into the returned slice would make every
// replay of the same logs order its truncated sessions differently.
func (a *Accounting) Finish() []Session {
	closed := len(a.Sessions)
	for _, s := range a.open {
		s.Truncated = true
		a.Sessions = append(a.Sessions, *s)
	}
	tail := a.Sessions[closed:]
	sort.Slice(tail, func(i, j int) bool { return CompareSessions(&tail[i], &tail[j]) < 0 })
	a.open = make(map[cluster.NodeID]*Session)
	return a.Sessions
}

// Snapshot appends every session Finish would return — closed ones plus
// the still-open set closed as-if-truncated — to dst, without mutating
// the accumulator: a later END still closes its session normally. It is
// the follow-mode serving core's conservative view of a node mid-tail
// (§II-B: an unfinished session contributes zero monitored time), and at
// quiescence it matches Finish exactly. Like Finish, the open-set tail is
// sorted so map iteration order never leaks into the result.
func (a *Accounting) Snapshot(dst []Session) []Session {
	dst = append(dst, a.Sessions...)
	open := make([]Session, 0, len(a.open))
	for _, s := range a.open {
		cp := *s
		cp.Truncated = true
		open = append(open, cp)
	}
	sort.Slice(open, func(i, j int) bool { return CompareSessions(&open[i], &open[j]) < 0 })
	return append(dst, open...)
}

// HoursByNode sums monitored hours per node.
func (a *Accounting) HoursByNode() map[cluster.NodeID]float64 {
	out := make(map[cluster.NodeID]float64)
	for _, s := range a.Sessions {
		out[s.Host] += s.Duration().Hours()
	}
	return out
}

// TBhByNode sums scanned terabyte-hours per node.
func (a *Accounting) TBhByNode() map[cluster.NodeID]units.TBh {
	out := make(map[cluster.NodeID]units.TBh)
	for _, s := range a.Sessions {
		out[s.Host] += s.TBh()
	}
	return out
}

// TotalNodeHours sums monitored time across all nodes.
func (a *Accounting) TotalNodeHours() units.NodeHours {
	var total float64
	for _, s := range a.Sessions {
		total += s.Duration().Hours()
	}
	return units.NodeHours(total)
}

// TotalTBh sums scanned memory-time across all nodes.
func (a *Accounting) TotalTBh() units.TBh {
	var total units.TBh
	for _, s := range a.Sessions {
		total += s.TBh()
	}
	return total
}
