package eventlog

import (
	"testing"
	"time"

	"unprotected/internal/timebase"
)

// TestTimestampCodecMatchesTimePackage sweeps instants across the study
// window and far beyond it (leap years, century/year boundaries, DST-free
// UTC arithmetic) asserting the hand-rolled codec is byte-identical to
// AppendFormat and value-identical to time.Parse.
func TestTimestampCodecMatchesTimePackage(t *testing.T) {
	// Irregular step so every second-of-day, day-of-month and month get
	// exercised over the sweep; range spans ~1936..2109.
	const step = 40*86400 + 12345
	for off := int64(-2_500_000_000); off < 3_000_000_000; off += step {
		ts := timebase.T(off)
		want := ts.Time().AppendFormat(nil, tsLayout)
		got := appendTimestamp(nil, ts)
		if string(got) != string(want) {
			t.Fatalf("appendTimestamp(%d) = %q, want %q", off, got, want)
		}
		back, err := parseTimestamp(got)
		if err != nil {
			t.Fatalf("parseTimestamp(%q): %v", got, err)
		}
		if back != ts {
			t.Fatalf("parseTimestamp(%q) = %d, want %d", got, back, off)
		}
	}
}

// TestParseTimestampAgreesWithTimeParse feeds the codec the acceptance edge
// cases of time.Parse for this layout: single-digit hours, tolerated
// fractional seconds, leap-day validation, range checks.
func TestParseTimestampAgreesWithTimeParse(t *testing.T) {
	cases := []string{
		"2015-02-01T00:00:00Z",
		"2015-02-01T5:04:05Z",                // single-digit hour: accepted by layout token "15"
		"2015-02-01T05:04:05.123Z",           // tolerated fraction, discarded
		"2015-02-01T05:04:05,9Z",             // comma fraction
		"2015-02-01T05:04:05.1234567890123Z", // over-long fraction
		"2016-02-29T00:00:00Z",               // leap day
		"0000-01-01T00:00:00Z",
		"9999-12-31T23:59:59Z",
		"2015-02-29T00:00:00Z", // not a leap year
		"2015-02-01T05:04:05.Z",
		"2015-02-01T05:04:5Z",
		"2015-02-01T05:4:05Z",
		"2015-2-01T05:04:05Z",
		"2015-02-1T05:04:05Z",
		"2015-02-01T24:00:00Z",
		"2015-13-01T00:00:00Z",
		"2015-00-01T00:00:00Z",
		"2015-01-00T00:00:00Z",
		"2015-01-32T00:00:00Z",
		"2015-02-01T23:60:00Z",
		"2015-02-01T23:00:60Z",
		"2015-02-01T05:04:05",
		"2015-02-01T05:04:05Zx",
		"2015-02-01 05:04:05Z",
		"201a-02-01T05:04:05Z",
		"",
		"Z",
	}
	for _, s := range cases {
		ref, refErr := time.Parse(tsLayout, s)
		got, gotErr := parseTimestamp([]byte(s))
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: time.Parse err=%v, codec err=%v", s, refErr, gotErr)
		}
		if refErr == nil && got != timebase.FromTime(ref) {
			t.Fatalf("%q: codec %d, time.Parse %d", s, got, timebase.FromTime(ref))
		}
	}
}

// TestAppendTimestampExtremeYears pins the slow-path fallback for years the
// four-digit form cannot carry.
func TestAppendTimestampExtremeYears(t *testing.T) {
	for _, abs := range []time.Time{
		time.Date(10000, time.January, 1, 0, 0, 0, 0, time.UTC),
		time.Date(-1, time.December, 31, 23, 59, 59, 0, time.UTC),
	} {
		ts := timebase.FromTime(abs)
		want := ts.Time().AppendFormat(nil, tsLayout)
		if got := appendTimestamp(nil, ts); string(got) != string(want) {
			t.Fatalf("year %d: %q != %q", abs.Year(), got, want)
		}
	}
}
