package eventlog

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// parseReference is the pre-ParseBytes implementation of Parse
// (strings.Fields + time.Parse + strconv on substrings), kept verbatim as
// the differential-fuzzing oracle, plus the duplicate-field rejection that
// ParseBytes added (the one deliberate semantic change of the rewrite).
func parseReference(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Record{}, fmt.Errorf("eventlog: empty line")
	}
	var rec Record
	switch fields[0] {
	case "START":
		rec.Kind = KindStart
	case "ERROR":
		rec.Kind = KindError
	case "END":
		rec.Kind = KindEnd
	case "ALLOCFAIL":
		rec.Kind = KindAllocFail
	default:
		return Record{}, fmt.Errorf("eventlog: unknown record kind %q", fields[0])
	}
	rec.TempC = thermal.NoReading
	var sawTS, sawHost, sawLast bool
	seen := make(map[string]bool)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Record{}, fmt.Errorf("eventlog: malformed field %q", f)
		}
		var err error
		switch k {
		case "ts":
			var t time.Time
			t, err = time.Parse(tsLayout, v)
			rec.At = timebase.FromTime(t)
			sawTS = true
		case "host":
			rec.Host, err = cluster.ParseNodeID(v)
			sawHost = true
		case "alloc":
			rec.AllocBytes, err = strconv.ParseInt(v, 10, 64)
		case "temp":
			if v != "NA" {
				rec.TempC, err = strconv.ParseFloat(v, 64)
			}
		case "vaddr":
			rec.VAddr, err = refParseHex(v)
		case "actual":
			var u uint64
			u, err = refParseHex(v)
			rec.Actual = uint32(u)
		case "expected":
			var u uint64
			u, err = refParseHex(v)
			rec.Expected = uint32(u)
		case "ppage":
			rec.PhysPage, err = refParseHex(v)
		case "last":
			var t time.Time
			t, err = time.Parse(tsLayout, v)
			rec.LastAt = timebase.FromTime(t)
			sawLast = true
		case "logs":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			if err == nil && n < 1 {
				err = fmt.Errorf("count must be >= 1, got %d", n)
			}
			rec.Logs = int(n)
		default:
			return Record{}, fmt.Errorf("eventlog: unknown field %q", k)
		}
		if err != nil {
			return Record{}, fmt.Errorf("eventlog: field %q: %w", f, err)
		}
		if seen[k] {
			return Record{}, fmt.Errorf("eventlog: duplicate field %q", k)
		}
		seen[k] = true
	}
	if !sawTS || !sawHost {
		return Record{}, fmt.Errorf("eventlog: record missing mandatory ts/host fields: %q", line)
	}
	if rec.Logs > 0 && !sawLast {
		rec.LastAt = rec.At
	}
	if sawLast && rec.Logs == 0 {
		rec.Logs = 1
	}
	if sawLast && rec.LastAt < rec.At {
		return Record{}, fmt.Errorf("eventlog: run ends before it starts: %q", line)
	}
	return rec, nil
}

func refParseHex(s string) (uint64, error) {
	s = strings.TrimPrefix(s, "0x")
	return strconv.ParseUint(s, 16, 64)
}

// sameRecord compares records treating NaN temperatures as equal (a
// "temp=NaN" line parses to a NaN TempC on both paths).
func sameRecord(a, b Record) bool {
	if math.IsNaN(a.TempC) && math.IsNaN(b.TempC) {
		a.TempC, b.TempC = 0, 0
	}
	return a == b
}

// FuzzParse hammers the log-line parser: it must never panic and must
// reject or round-trip — a reliability study cannot afford a log reader
// that silently mangles its input.
func FuzzParse(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(rec.String())
	}
	f.Add("START ts=2015-02-01T00:00:00Z host=01-01 alloc=0 temp=NA")
	f.Add("ERROR ts=2015-12-31T23:59:59Z host=72-15 vaddr=0x0 actual=0x0 expected=0x0 temp=-5.0 ppage=0x0")
	f.Add("")
	f.Add("ERROR ts= host=")
	f.Add(strings.Repeat("a=b ", 100))
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := Parse(line)
		if err != nil {
			return
		}
		// Anything accepted must render and re-parse stably.
		again, err := Parse(rec.String())
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", line, rec.String(), err)
		}
		if again.String() != rec.String() {
			t.Fatalf("canonical form unstable:\n1: %s\n2: %s", rec.String(), again.String())
		}
	})
}

// FuzzRecordRoundTrip differentially fuzzes the zero-allocation fast path
// against the reference parser, and pins the canonical-form fixed point:
// for any accepted line, AppendText → ParseBytes → AppendText must
// reproduce the first rendering byte for byte.
func FuzzRecordRoundTrip(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(rec.String())
	}
	f.Add("ERROR ts=2015-06-14T03:12:45Z host=02-04 vaddr=0x7f2a00001234 actual=0xfffffffe expected=0xffffffff temp=41.53 ppage=0x1a2b3c last=2015-06-14T03:14:45Z logs=12")
	f.Add("START ts=2015-02-01T5:04:05.25Z host=01-01 alloc=+3221225472 temp=NA")
	f.Add("ERROR ts=2015-02-01T00:00:00Z host=01-01 temp=NaN vaddr=0XFF")
	f.Add("ERROR ts=9999-12-31T23:59:59Z host=72-15 logs=1 logs=2")
	f.Add("END ts=0000-01-01T00:00:00,123456789012Z host=01-01 temp=-1e308")
	f.Fuzz(func(t *testing.T, line string) {
		got, gotErr := ParseBytes([]byte(line))
		ref, refErr := parseReference(line)
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("acceptance disagrees on %q:\nParseBytes: %v\nreference:  %v", line, gotErr, refErr)
		}
		if gotErr != nil {
			return
		}
		if !sameRecord(got, ref) {
			t.Fatalf("records disagree on %q:\nParseBytes: %+v\nreference:  %+v", line, got, ref)
		}
		first := got.AppendText(nil)
		again, err := ParseBytes(first)
		if err != nil {
			t.Fatalf("canonical form of %q rejected: %v\n%s", line, err, first)
		}
		if second := again.AppendText(nil); string(first) != string(second) {
			t.Fatalf("canonical form unstable for %q:\n1: %s\n2: %s", line, first, second)
		}
	})
}

// FuzzRecordRender drives the renderer with arbitrary field values: every
// rendered record must parse back with identity fields intact.
func FuzzRecordRender(f *testing.F) {
	f.Add(uint8(0), int64(0), 1, 1, int64(0), uint32(0), uint32(0), 0.0, uint64(0))
	f.Add(uint8(1), int64(1000), 2, 4, int64(3<<30), uint32(0xffffffff), uint32(0xffff7bff), 35.5, uint64(0x12345))
	f.Add(uint8(2), int64(999999), 72, 15, int64(1), uint32(1), uint32(2), -10.0, uint64(1))
	f.Fuzz(func(t *testing.T, kind uint8, at int64, blade, soc int, alloc int64,
		expected, actual uint32, temp float64, page uint64) {
		if at < 0 {
			at = -at
		}
		if alloc < 0 {
			alloc = -alloc
		}
		if blade < 0 {
			blade = -blade
		}
		if soc < 0 {
			soc = -soc
		}
		rec := Record{
			Kind:       Kind(kind % 4),
			At:         timebase.T(at % (400 * 86400)),
			Host:       cluster.NodeID{Blade: blade%cluster.TotalBlades + 1, SoC: soc%cluster.SoCsPerBlade + 1},
			AllocBytes: alloc,
			Expected:   expected,
			Actual:     actual,
			TempC:      temp,
			PhysPage:   page,
			VAddr:      0x7f2a_0000_0000 + (page%1000)*4,
		}
		// Normalize unrenderable temperatures to the sentinel, as the
		// thermal model does, then quantize to the renderer's precision.
		if rec.TempC < -200 || rec.TempC > 1000 || rec.TempC != rec.TempC {
			rec.TempC = thermal.NoReading
		}
		if thermal.HasReading(rec.TempC) {
			rec.TempC = float64(int(rec.TempC*10)) / 10
		}
		back, err := Parse(rec.String())
		if err != nil {
			t.Fatalf("rendered record failed to parse: %v\n%s", err, rec.String())
		}
		if back.Kind != rec.Kind || back.Host != rec.Host || back.At != rec.At {
			t.Fatalf("identity fields mangled: %+v vs %+v", back, rec)
		}
	})
}
