package eventlog

import (
	"strings"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// FuzzParse hammers the log-line parser: it must never panic and must
// reject or round-trip — a reliability study cannot afford a log reader
// that silently mangles its input.
func FuzzParse(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(rec.String())
	}
	f.Add("START ts=2015-02-01T00:00:00Z host=01-01 alloc=0 temp=NA")
	f.Add("ERROR ts=2015-12-31T23:59:59Z host=72-15 vaddr=0x0 actual=0x0 expected=0x0 temp=-5.0 ppage=0x0")
	f.Add("")
	f.Add("ERROR ts= host=")
	f.Add(strings.Repeat("a=b ", 100))
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := Parse(line)
		if err != nil {
			return
		}
		// Anything accepted must render and re-parse stably.
		again, err := Parse(rec.String())
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", line, rec.String(), err)
		}
		if again.String() != rec.String() {
			t.Fatalf("canonical form unstable:\n1: %s\n2: %s", rec.String(), again.String())
		}
	})
}

// FuzzRecordRender drives the renderer with arbitrary field values: every
// rendered record must parse back with identity fields intact.
func FuzzRecordRender(f *testing.F) {
	f.Add(uint8(0), int64(0), 1, 1, int64(0), uint32(0), uint32(0), 0.0, uint64(0))
	f.Add(uint8(1), int64(1000), 2, 4, int64(3<<30), uint32(0xffffffff), uint32(0xffff7bff), 35.5, uint64(0x12345))
	f.Add(uint8(2), int64(999999), 72, 15, int64(1), uint32(1), uint32(2), -10.0, uint64(1))
	f.Fuzz(func(t *testing.T, kind uint8, at int64, blade, soc int, alloc int64,
		expected, actual uint32, temp float64, page uint64) {
		if at < 0 {
			at = -at
		}
		if alloc < 0 {
			alloc = -alloc
		}
		if blade < 0 {
			blade = -blade
		}
		if soc < 0 {
			soc = -soc
		}
		rec := Record{
			Kind:       Kind(kind % 4),
			At:         timebase.T(at % (400 * 86400)),
			Host:       cluster.NodeID{Blade: blade%cluster.TotalBlades + 1, SoC: soc%cluster.SoCsPerBlade + 1},
			AllocBytes: alloc,
			Expected:   expected,
			Actual:     actual,
			TempC:      temp,
			PhysPage:   page,
			VAddr:      0x7f2a_0000_0000 + (page%1000)*4,
		}
		// Normalize unrenderable temperatures to the sentinel, as the
		// thermal model does, then quantize to the renderer's precision.
		if rec.TempC < -200 || rec.TempC > 1000 || rec.TempC != rec.TempC {
			rec.TempC = thermal.NoReading
		}
		if thermal.HasReading(rec.TempC) {
			rec.TempC = float64(int(rec.TempC*10)) / 10
		}
		back, err := Parse(rec.String())
		if err != nil {
			t.Fatalf("rendered record failed to parse: %v\n%s", err, rec.String())
		}
		if back.Kind != rec.Kind || back.Host != rec.Host || back.At != rec.At {
			t.Fatalf("identity fields mangled: %+v vs %+v", back, rec)
		}
	})
}
