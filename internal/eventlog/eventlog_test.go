package eventlog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindStart, At: 100, Host: cluster.NodeID{Blade: 2, SoC: 4}, AllocBytes: 3 << 30, TempC: 31.5},
		{Kind: KindError, At: 160, Host: cluster.NodeID{Blade: 2, SoC: 4}, VAddr: 0x7f2a00001234,
			Actual: 0xffff7bff, Expected: 0xffffffff, TempC: 32.1, PhysPage: 0x12345},
		{Kind: KindEnd, At: 3700, Host: cluster.NodeID{Blade: 2, SoC: 4}, TempC: 30.9},
		{Kind: KindAllocFail, At: 4000, Host: cluster.NodeID{Blade: 5, SoC: 1}, TempC: thermal.NoReading},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		line := rec.String()
		back, err := Parse(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if back != rec {
			t.Fatalf("round trip:\n in=%+v\nout=%+v\nline=%q", rec, back, line)
		}
	}
}

func TestRecordFormat(t *testing.T) {
	rec := sampleRecords()[1]
	line := rec.String()
	for _, want := range []string{"ERROR", "host=02-04", "vaddr=0x7f2a00001234",
		"actual=0xffff7bff", "expected=0xffffffff", "temp=32.1", "ppage=0x12345"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	noTemp := Record{Kind: KindEnd, At: 5, Host: cluster.NodeID{Blade: 1, SoC: 2}, TempC: thermal.NoReading}
	if !strings.Contains(noTemp.String(), "temp=NA") {
		t.Fatalf("missing NA temp: %q", noTemp.String())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(at uint32, blade, soc uint8, vaddr uint64, actual, expected uint32, temp int16) bool {
		rec := Record{
			Kind:     KindError,
			At:       timebase.T(at % uint32(timebase.StudySeconds)),
			Host:     cluster.NodeID{Blade: int(blade)%cluster.TotalBlades + 1, SoC: int(soc)%cluster.SoCsPerBlade + 1},
			VAddr:    vaddr,
			Actual:   actual,
			Expected: expected,
			TempC:    float64(temp%80) + 0.5,
		}
		if rec.TempC < -270 {
			rec.TempC = thermal.NoReading
		}
		back, err := Parse(rec.String())
		return err == nil && back == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"BOGUS ts=2015-02-01T00:00:00Z host=01-01",
		"START ts=notatime host=01-01 alloc=1 temp=NA",
		"START ts=2015-02-01T00:00:00Z host=zz alloc=1 temp=NA",
		"START ts=2015-02-01T00:00:00Z host=01-01 alloc=xyz temp=NA",
		"ERROR ts=2015-02-01T00:00:00Z host=01-01 unknownfield=3",
		"ERROR ts=2015-02-01T00:00:00Z host=01-01 malformed",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted", line)
		}
	}
}

func TestParseRejectsDuplicateFields(t *testing.T) {
	// Every duplicated key must be rejected — the last occurrence used to
	// win silently, which let a corrupted log shadow a real observation.
	lines := []string{
		"START ts=2015-02-01T00:00:00Z ts=2015-02-01T00:00:01Z host=01-01 alloc=1 temp=NA",
		"START ts=2015-02-01T00:00:00Z host=01-01 host=01-02 alloc=1 temp=NA",
		"START ts=2015-02-01T00:00:00Z host=01-01 alloc=1 alloc=2 temp=NA",
		"ERROR ts=2015-02-01T00:00:00Z host=01-01 temp=30 temp=31",
		"ERROR ts=2015-02-01T00:00:00Z host=01-01 vaddr=0x1 vaddr=0x2",
		"ERROR ts=2015-02-01T00:00:00Z host=01-01 logs=1 logs=1",
	}
	for _, line := range lines {
		if _, err := Parse(line); err == nil || !strings.Contains(err.Error(), "duplicate field") {
			t.Errorf("Parse(%q) = %v, want duplicate-field error", line, err)
		}
	}
}

// TestParseBytesZeroAlloc is the allocation-regression gate for the replay
// hot path: steady-state (well-formed) lines must parse without touching
// the heap, including the worst case — a fully loaded pre-collapsed ERROR
// line whose temperature needs all 17 significant digits.
func TestParseBytesZeroAlloc(t *testing.T) {
	lines := [][]byte{
		[]byte("ERROR ts=2015-06-14T03:12:45Z host=02-04 vaddr=0x7f2a00001234 actual=0xfffffffe expected=0xffffffff temp=41.53 ppage=0x1a2b3c last=2015-06-14T03:14:45Z logs=12"),
		[]byte("ERROR ts=2015-06-14T03:12:45Z host=02-04 vaddr=0x7f2a00001234 actual=0xfffffffe expected=0xffffffff temp=33.517383129784076 ppage=0x1a2b3c"),
		[]byte("START ts=2015-02-01T00:00:00Z host=01-01 alloc=3221225472 temp=NA"),
		[]byte("END ts=2015-02-01T00:10:00Z host=01-01 temp=31.5"),
	}
	for _, line := range lines {
		line := line
		avg := testing.AllocsPerRun(200, func() {
			if _, err := ParseBytes(line); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("ParseBytes(%q) allocates %v times per run, want 0", line, avg)
		}
	}
}

// TestAppendTextZeroAlloc pins the exporter's side of the bargain: with a
// pre-grown buffer, rendering any record kind must not allocate either.
func TestAppendTextZeroAlloc(t *testing.T) {
	recs := sampleRecords()
	recs = append(recs, Record{
		Kind: KindError, At: 160, Host: cluster.NodeID{Blade: 2, SoC: 4},
		VAddr: 0x7f2a00001234, Actual: 0xfffffffe, Expected: 0xffffffff,
		TempC: 33.517383129784076, PhysPage: 0x12345, LastAt: 520, Logs: 9,
	})
	buf := make([]byte, 0, 256)
	for _, rec := range recs {
		rec := rec
		avg := testing.AllocsPerRun(200, func() { buf = rec.AppendText(buf[:0]) })
		if avg != 0 {
			t.Errorf("AppendText(%v) allocates %v times per run, want 0", rec.Kind, avg)
		}
	}
}

func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("count %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderSkipsBlanksReportsPosition(t *testing.T) {
	input := "\n" + sampleRecords()[0].String() + "\n\n" + "JUNK line\n"
	r := NewReader(strings.NewReader(input))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want positioned error, got %v", err)
	}
}

func TestAccountingSessions(t *testing.T) {
	host := cluster.NodeID{Blade: 3, SoC: 3}
	acc := NewAccounting()
	// Normal session: 2 hours.
	acc.Observe(Record{Kind: KindStart, At: 0, Host: host, AllocBytes: 3 << 30})
	acc.Observe(Record{Kind: KindEnd, At: 7200, Host: host})
	// Hard reboot: START then START — first session contributes 0 hours.
	acc.Observe(Record{Kind: KindStart, At: 10000, Host: host, AllocBytes: 3 << 30})
	acc.Observe(Record{Kind: KindStart, At: 20000, Host: host, AllocBytes: 2 << 30})
	acc.Observe(Record{Kind: KindEnd, At: 23600, Host: host})
	sessions := acc.Finish()
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	hours := acc.HoursByNode()[host]
	if hours != 3 { // 2h + 0h (truncated) + 1h
		t.Fatalf("hours = %v, want 3 (truncated session must count 0)", hours)
	}
	tbh := float64(acc.TBhByNode()[host])
	want := 3.0/1024*2 + 2.0/1024*1
	if diff := tbh - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("tbh = %v, want %v", tbh, want)
	}
	if float64(acc.TotalNodeHours()) != 3 {
		t.Fatalf("total hours %v", acc.TotalNodeHours())
	}
}

func TestAccountingOpenSessionTruncated(t *testing.T) {
	host := cluster.NodeID{Blade: 4, SoC: 4}
	acc := NewAccounting()
	acc.Observe(Record{Kind: KindStart, At: 0, Host: host, AllocBytes: 1 << 30})
	sessions := acc.Finish()
	if len(sessions) != 1 || !sessions[0].Truncated {
		t.Fatalf("open session should be truncated: %+v", sessions)
	}
	if sessions[0].Duration() != 0 {
		t.Fatal("truncated session must contribute zero time")
	}
}

func TestAccountingEndWithoutStart(t *testing.T) {
	acc := NewAccounting()
	acc.Observe(Record{Kind: KindEnd, At: 100, Host: cluster.NodeID{Blade: 1, SoC: 2}})
	if sessions := acc.Finish(); len(sessions) != 0 {
		t.Fatalf("dangling END produced sessions: %v", sessions)
	}
}

func TestSessionTBh(t *testing.T) {
	s := Session{Host: cluster.NodeID{Blade: 1, SoC: 2}, From: 0, To: timebase.T(3600), AllocBytes: 1 << 40}
	if s.TBh() != 1 {
		t.Fatalf("TBh = %v", s.TBh())
	}
	if s.Duration() != time.Hour {
		t.Fatalf("duration %v", s.Duration())
	}
}

func TestReadAllError(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("GARBAGE\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if recs, err := ReadAll(strings.NewReader("")); err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v %v", recs, err)
	}
}
