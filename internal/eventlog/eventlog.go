// Package eventlog defines the memory scanner's log records and their text
// format, mirroring §II-B of the paper:
//
//   - START: timestamp, allocated bytes, host name, node temperature
//   - ERROR: timestamp, host, virtual address, actual value, expected
//     value, temperature, physical page address
//   - END: timestamp, host, temperature
//   - ALLOCFAIL: timestamp, host (kept in a separate file on the real
//     system; here a record kind)
//
// It also implements the paper's conservative node-hour accounting: a START
// followed by another START (hard reboot, END lost) contributes zero
// monitored hours.
package eventlog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"unicode"
	"unicode/utf8"
	"unsafe"

	"unprotected/internal/cluster"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// Kind discriminates log records.
type Kind uint8

const (
	KindStart Kind = iota
	KindError
	KindEnd
	KindAllocFail
)

func (k Kind) String() string {
	switch k {
	case KindStart:
		return "START"
	case KindError:
		return "ERROR"
	case KindEnd:
		return "END"
	case KindAllocFail:
		return "ALLOCFAIL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one scanner log entry. Unused fields are zero; TempC is
// thermal.NoReading when the node had no temperature telemetry.
type Record struct {
	Kind       Kind
	At         timebase.T
	Host       cluster.NodeID
	AllocBytes int64   // START only
	TempC      float64 // START, ERROR, END
	VAddr      uint64  // ERROR only
	Actual     uint32  // ERROR only
	Expected   uint32  // ERROR only
	PhysPage   uint64  // ERROR only

	// LastAt and Logs carry the pre-collapsed (§II-C extracted) view on
	// ERROR records: Logs > 0 marks the line as one already-extracted
	// independent fault standing for Logs raw scanner records observed
	// from At through LastAt. The live scanner never sets them (each of
	// its ERROR lines is one raw observation, Logs == 0); exporters write
	// them so a replayed directory reconstructs runs byte-identically
	// instead of re-applying the collapse heuristics to collapsed data.
	LastAt timebase.T // ERROR only, pre-collapsed records
	Logs   int        // ERROR only; 0 = raw record, >0 = pre-collapsed
}

// tsLayout is the timestamp format in log files.
const tsLayout = "2006-01-02T15:04:05Z"

// AppendText renders the record in the canonical line format (no trailing
// newline) and returns the extended buffer.
func (r Record) AppendText(b []byte) []byte {
	b = append(b, r.Kind.String()...)
	b = append(b, " ts="...)
	b = appendTimestamp(b, r.At)
	b = append(b, " host="...)
	b = r.Host.AppendText(b)
	switch r.Kind {
	case KindStart:
		b = append(b, " alloc="...)
		b = strconv.AppendInt(b, r.AllocBytes, 10)
		b = appendTemp(b, r.TempC)
	case KindError:
		b = append(b, " vaddr=0x"...)
		b = strconv.AppendUint(b, r.VAddr, 16)
		b = append(b, " actual=0x"...)
		b = appendHex32(b, r.Actual)
		b = append(b, " expected=0x"...)
		b = appendHex32(b, r.Expected)
		b = appendTemp(b, r.TempC)
		b = append(b, " ppage=0x"...)
		b = strconv.AppendUint(b, r.PhysPage, 16)
		if r.Logs > 0 {
			b = append(b, " last="...)
			b = appendTimestamp(b, r.LastAt)
			b = append(b, " logs="...)
			b = strconv.AppendInt(b, int64(r.Logs), 10)
		}
	case KindEnd:
		b = appendTemp(b, r.TempC)
	}
	return b
}

func appendHex32(b []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, digits[(v>>uint(shift))&0xf])
	}
	return b
}

func appendTemp(b []byte, t float64) []byte {
	b = append(b, " temp="...)
	if !thermal.HasReading(t) {
		return append(b, "NA"...)
	}
	// Shortest representation that parses back to the exact same float64:
	// replay must reconstruct TempC bit-for-bit, since the canonical fault
	// order (extract.Compare) includes it as its final tiebreak.
	return strconv.AppendFloat(b, t, 'f', -1, 64)
}

// String renders the canonical line.
func (r Record) String() string { return string(r.AppendText(nil)) }

// Parse parses one canonical log line. It is a thin wrapper over the
// allocation-free ParseBytes fast path.
func Parse(line string) (Record, error) {
	return ParseBytes([]byte(line))
}

// Field-presence bits: one per known key, for mandatory-field and
// duplicate-field checks without a map.
const (
	fieldTS = 1 << iota
	fieldHost
	fieldAlloc
	fieldTemp
	fieldVAddr
	fieldActual
	fieldExpected
	fieldPPage
	fieldLast
	fieldLogs
)

// ParseBytes parses one canonical log line from a raw byte slice. It is the
// replay hot path: for well-formed input it performs zero heap allocations —
// fields are scanned in place (no strings.Fields), timestamps go through the
// fixed-layout codec (no time.Parse) and numbers through byte-slice parsers.
// The slice is neither modified nor retained, so callers may hand it a
// reused read buffer (bufio.Scanner's, in Reader). Only the error paths
// allocate, and every error message copies what it needs out of the buffer.
//
// A field key appearing twice is an error (the last occurrence used to win
// silently — corrupted or hand-edited logs must not be half-trusted).
func ParseBytes(line []byte) (Record, error) {
	start, end := nextField(line, 0)
	if start == len(line) {
		return Record{}, fmt.Errorf("eventlog: empty line")
	}
	var rec Record
	switch kind := line[start:end]; {
	case string(kind) == "START":
		rec.Kind = KindStart
	case string(kind) == "ERROR":
		rec.Kind = KindError
	case string(kind) == "END":
		rec.Kind = KindEnd
	case string(kind) == "ALLOCFAIL":
		rec.Kind = KindAllocFail
	default:
		return Record{}, fmt.Errorf("eventlog: unknown record kind %q", kind)
	}
	rec.TempC = thermal.NoReading
	var seen uint16
	for i := end; ; {
		fs, fe := nextField(line, i)
		if fs == len(line) {
			break
		}
		i = fe
		f := line[fs:fe]
		eq := bytes.IndexByte(f, '=')
		if eq < 0 {
			return Record{}, fmt.Errorf("eventlog: malformed field %q", f)
		}
		k, v := f[:eq], f[eq+1:]
		var bit uint16
		var err error
		switch string(k) {
		case "ts":
			bit = fieldTS
			rec.At, err = parseTimestamp(v)
		case "host":
			bit = fieldHost
			rec.Host, err = cluster.ParseNodeIDBytes(v)
		case "alloc":
			bit = fieldAlloc
			rec.AllocBytes, err = parseIntBytes(v)
		case "temp":
			bit = fieldTemp
			if string(v) != "NA" {
				rec.TempC, err = parseFloatBytes(v)
			}
		case "vaddr":
			bit = fieldVAddr
			rec.VAddr, err = parseHexBytes(v)
		case "actual":
			bit = fieldActual
			var u uint64
			u, err = parseHexBytes(v)
			rec.Actual = uint32(u)
		case "expected":
			bit = fieldExpected
			var u uint64
			u, err = parseHexBytes(v)
			rec.Expected = uint32(u)
		case "ppage":
			bit = fieldPPage
			rec.PhysPage, err = parseHexBytes(v)
		case "last":
			bit = fieldLast
			rec.LastAt, err = parseTimestamp(v)
		case "logs":
			bit = fieldLogs
			var n int64
			n, err = parseIntBytes(v)
			if err == nil && n < 1 {
				err = fmt.Errorf("count must be >= 1, got %d", n)
			}
			rec.Logs = int(n)
		default:
			return Record{}, fmt.Errorf("eventlog: unknown field %q", k)
		}
		if err != nil {
			return Record{}, fmt.Errorf("eventlog: field %q: %w", f, err)
		}
		if seen&bit != 0 {
			return Record{}, fmt.Errorf("eventlog: duplicate field %q", k)
		}
		seen |= bit
	}
	if seen&fieldTS == 0 || seen&fieldHost == 0 {
		return Record{}, fmt.Errorf("eventlog: record missing mandatory ts/host fields: %q", line)
	}
	// Normalize the pre-collapsed pair: either field alone implies the
	// other's default (a single-record run ends where it starts).
	sawLast := seen&fieldLast != 0
	if rec.Logs > 0 && !sawLast {
		rec.LastAt = rec.At
	}
	if sawLast && rec.Logs == 0 {
		rec.Logs = 1
	}
	if sawLast && rec.LastAt < rec.At {
		return Record{}, fmt.Errorf("eventlog: run ends before it starts: %q", line)
	}
	return rec, nil
}

// asciiSpace marks strings.Fields' ASCII separator set.
var asciiSpace = [256]bool{' ': true, '\t': true, '\n': true, '\v': true, '\f': true, '\r': true}

// nextField returns the bounds of the next whitespace-separated field of
// line at or after offset i; start == len(line) means no field remains. The
// separator set matches strings.Fields (unicode.IsSpace). The hot loops are
// pure table-lookup byte scans; multi-byte runes — which the canonical
// format never emits — divert to the rune-decoding slow path.
func nextField(line []byte, i int) (start, end int) {
	for i < len(line) {
		c := line[i]
		if c >= utf8.RuneSelf {
			return nextFieldSlow(line, i)
		}
		if !asciiSpace[c] {
			break
		}
		i++
	}
	start = i
	for i < len(line) {
		c := line[i]
		if c >= utf8.RuneSelf {
			return start, fieldEndSlow(line, i)
		}
		if asciiSpace[c] {
			break
		}
		i++
	}
	return start, i
}

// nextFieldSlow resumes the separator skip at a non-ASCII byte.
func nextFieldSlow(line []byte, i int) (start, end int) {
	for i < len(line) {
		space, size := isSpaceAt(line, i)
		if !space {
			break
		}
		i += size
	}
	return i, fieldEndSlow(line, i)
}

// fieldEndSlow resumes the field scan at a non-ASCII byte.
func fieldEndSlow(line []byte, i int) int {
	for i < len(line) {
		space, size := isSpaceAt(line, i)
		if space {
			break
		}
		i += size
	}
	return i
}

func isSpaceAt(line []byte, i int) (bool, int) {
	c := line[i]
	if c < utf8.RuneSelf {
		return asciiSpace[c], 1
	}
	r, size := utf8.DecodeRune(line[i:])
	return unicode.IsSpace(r), size
}

// parseIntBytes matches strconv.ParseInt(string(v), 10, 64) — optional
// sign, decimal digits, overflow rejected — without the string conversion.
func parseIntBytes(v []byte) (int64, error) {
	neg := false
	i := 0
	if len(v) > 0 && (v[0] == '+' || v[0] == '-') {
		neg = v[0] == '-'
		i++
	}
	if i == len(v) {
		return 0, fmt.Errorf("invalid integer %q", v)
	}
	const cutoff = (1 << 63) / 10
	var n uint64
	for ; i < len(v); i++ {
		d := v[i] - '0'
		if d > 9 {
			return 0, fmt.Errorf("invalid integer %q", v)
		}
		if n > cutoff {
			return 0, fmt.Errorf("integer %q out of range", v)
		}
		n = n*10 + uint64(d)
		if n > 1<<63 || (!neg && n > 1<<63-1) {
			return 0, fmt.Errorf("integer %q out of range", v)
		}
	}
	if neg {
		return -int64(n), nil
	}
	return int64(n), nil
}

// parseHexBytes matches the old parseHex (optional "0x" prefix, then
// strconv.ParseUint(s, 16, 64)) without the string conversion.
func parseHexBytes(v []byte) (uint64, error) {
	if len(v) >= 2 && v[0] == '0' && v[1] == 'x' {
		v = v[2:]
	}
	if len(v) == 0 {
		return 0, fmt.Errorf("invalid hex %q", v)
	}
	var n uint64
	for _, c := range v {
		var d byte
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0, fmt.Errorf("invalid hex %q", v)
		}
		if n >= 1<<60 {
			return 0, fmt.Errorf("hex %q out of range", v)
		}
		n = n<<4 | uint64(d)
	}
	return n, nil
}

// parseFloatBytes is strconv.ParseFloat over a byte slice without the
// copying string conversion. Shortest-round-trip temperatures need a
// correctly-rounded decimal parser, which is not worth re-implementing; the
// zero-copy view is safe because ParseFloat never retains its argument on
// success. On failure the parse is redone from a stable copy, so the
// returned *NumError cannot alias the caller's reusable read buffer.
func parseFloatBytes(v []byte) (float64, error) {
	if len(v) == 0 {
		return strconv.ParseFloat("", 64)
	}
	f, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(v), len(v)), 64)
	if err != nil {
		return strconv.ParseFloat(string(v), 64)
	}
	return f, nil
}

// Writer streams records as text lines.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one record line.
func (lw *Writer) Write(r Record) error {
	lw.buf = r.AppendText(lw.buf[:0])
	lw.buf = append(lw.buf, '\n')
	lw.n++
	_, err := lw.w.Write(lw.buf)
	return err
}

// Count returns how many records were written.
func (lw *Writer) Count() int { return lw.n }

// Flush flushes buffered output.
func (lw *Writer) Flush() error { return lw.w.Flush() }

// Reader streams records from text lines, skipping blank lines. Malformed
// lines abort with a positioned error: silent log corruption must never
// skew a reliability study.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{s: s}
}

// Next returns the next record, io.EOF at end of input. Lines are parsed
// straight out of the scanner's reused buffer through ParseBytes, so a
// steady-state read loop performs no per-line allocations.
func (lr *Reader) Next() (Record, error) {
	for lr.s.Scan() {
		lr.line++
		text := bytes.TrimSpace(lr.s.Bytes())
		if len(text) == 0 {
			continue
		}
		rec, err := ParseBytes(text)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", lr.line, err)
		}
		return rec, nil
	}
	if err := lr.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll consumes the stream into a slice (small logs only; the campaign
// pipeline streams instead).
func ReadAll(r io.Reader) ([]Record, error) {
	lr := NewReader(r)
	var out []Record
	for {
		rec, err := lr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
