// Package eventlog defines the memory scanner's log records and their text
// format, mirroring §II-B of the paper:
//
//   - START: timestamp, allocated bytes, host name, node temperature
//   - ERROR: timestamp, host, virtual address, actual value, expected
//     value, temperature, physical page address
//   - END: timestamp, host, temperature
//   - ALLOCFAIL: timestamp, host (kept in a separate file on the real
//     system; here a record kind)
//
// It also implements the paper's conservative node-hour accounting: a START
// followed by another START (hard reboot, END lost) contributes zero
// monitored hours.
package eventlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// Kind discriminates log records.
type Kind uint8

const (
	KindStart Kind = iota
	KindError
	KindEnd
	KindAllocFail
)

func (k Kind) String() string {
	switch k {
	case KindStart:
		return "START"
	case KindError:
		return "ERROR"
	case KindEnd:
		return "END"
	case KindAllocFail:
		return "ALLOCFAIL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one scanner log entry. Unused fields are zero; TempC is
// thermal.NoReading when the node had no temperature telemetry.
type Record struct {
	Kind       Kind
	At         timebase.T
	Host       cluster.NodeID
	AllocBytes int64   // START only
	TempC      float64 // START, ERROR, END
	VAddr      uint64  // ERROR only
	Actual     uint32  // ERROR only
	Expected   uint32  // ERROR only
	PhysPage   uint64  // ERROR only

	// LastAt and Logs carry the pre-collapsed (§II-C extracted) view on
	// ERROR records: Logs > 0 marks the line as one already-extracted
	// independent fault standing for Logs raw scanner records observed
	// from At through LastAt. The live scanner never sets them (each of
	// its ERROR lines is one raw observation, Logs == 0); exporters write
	// them so a replayed directory reconstructs runs byte-identically
	// instead of re-applying the collapse heuristics to collapsed data.
	LastAt timebase.T // ERROR only, pre-collapsed records
	Logs   int        // ERROR only; 0 = raw record, >0 = pre-collapsed
}

// tsLayout is the timestamp format in log files.
const tsLayout = "2006-01-02T15:04:05Z"

// AppendText renders the record in the canonical line format (no trailing
// newline) and returns the extended buffer.
func (r Record) AppendText(b []byte) []byte {
	b = append(b, r.Kind.String()...)
	b = append(b, " ts="...)
	b = r.At.Time().AppendFormat(b, tsLayout)
	b = append(b, " host="...)
	b = append(b, r.Host.String()...)
	switch r.Kind {
	case KindStart:
		b = append(b, " alloc="...)
		b = strconv.AppendInt(b, r.AllocBytes, 10)
		b = appendTemp(b, r.TempC)
	case KindError:
		b = append(b, " vaddr=0x"...)
		b = strconv.AppendUint(b, r.VAddr, 16)
		b = append(b, " actual=0x"...)
		b = appendHex32(b, r.Actual)
		b = append(b, " expected=0x"...)
		b = appendHex32(b, r.Expected)
		b = appendTemp(b, r.TempC)
		b = append(b, " ppage=0x"...)
		b = strconv.AppendUint(b, r.PhysPage, 16)
		if r.Logs > 0 {
			b = append(b, " last="...)
			b = r.LastAt.Time().AppendFormat(b, tsLayout)
			b = append(b, " logs="...)
			b = strconv.AppendInt(b, int64(r.Logs), 10)
		}
	case KindEnd:
		b = appendTemp(b, r.TempC)
	}
	return b
}

func appendHex32(b []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, digits[(v>>uint(shift))&0xf])
	}
	return b
}

func appendTemp(b []byte, t float64) []byte {
	b = append(b, " temp="...)
	if !thermal.HasReading(t) {
		return append(b, "NA"...)
	}
	// Shortest representation that parses back to the exact same float64:
	// replay must reconstruct TempC bit-for-bit, since the canonical fault
	// order (extract.Compare) includes it as its final tiebreak.
	return strconv.AppendFloat(b, t, 'f', -1, 64)
}

// String renders the canonical line.
func (r Record) String() string { return string(r.AppendText(nil)) }

// Parse parses one canonical log line.
func Parse(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Record{}, fmt.Errorf("eventlog: empty line")
	}
	var rec Record
	switch fields[0] {
	case "START":
		rec.Kind = KindStart
	case "ERROR":
		rec.Kind = KindError
	case "END":
		rec.Kind = KindEnd
	case "ALLOCFAIL":
		rec.Kind = KindAllocFail
	default:
		return Record{}, fmt.Errorf("eventlog: unknown record kind %q", fields[0])
	}
	rec.TempC = thermal.NoReading
	var sawTS, sawHost, sawLast bool
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Record{}, fmt.Errorf("eventlog: malformed field %q", f)
		}
		var err error
		switch k {
		case "ts":
			var t time.Time
			t, err = time.Parse(tsLayout, v)
			rec.At = timebase.FromTime(t)
			sawTS = true
		case "host":
			rec.Host, err = cluster.ParseNodeID(v)
			sawHost = true
		case "alloc":
			rec.AllocBytes, err = strconv.ParseInt(v, 10, 64)
		case "temp":
			if v != "NA" {
				rec.TempC, err = strconv.ParseFloat(v, 64)
			}
		case "vaddr":
			rec.VAddr, err = parseHex(v)
		case "actual":
			var u uint64
			u, err = parseHex(v)
			rec.Actual = uint32(u)
		case "expected":
			var u uint64
			u, err = parseHex(v)
			rec.Expected = uint32(u)
		case "ppage":
			rec.PhysPage, err = parseHex(v)
		case "last":
			var t time.Time
			t, err = time.Parse(tsLayout, v)
			rec.LastAt = timebase.FromTime(t)
			sawLast = true
		case "logs":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			if err == nil && n < 1 {
				err = fmt.Errorf("count must be >= 1, got %d", n)
			}
			rec.Logs = int(n)
		default:
			return Record{}, fmt.Errorf("eventlog: unknown field %q", k)
		}
		if err != nil {
			return Record{}, fmt.Errorf("eventlog: field %q: %w", f, err)
		}
	}
	if !sawTS || !sawHost {
		return Record{}, fmt.Errorf("eventlog: record missing mandatory ts/host fields: %q", line)
	}
	// Normalize the pre-collapsed pair: either field alone implies the
	// other's default (a single-record run ends where it starts).
	if rec.Logs > 0 && !sawLast {
		rec.LastAt = rec.At
	}
	if sawLast && rec.Logs == 0 {
		rec.Logs = 1
	}
	if sawLast && rec.LastAt < rec.At {
		return Record{}, fmt.Errorf("eventlog: run ends before it starts: %q", line)
	}
	return rec, nil
}

func parseHex(s string) (uint64, error) {
	s = strings.TrimPrefix(s, "0x")
	return strconv.ParseUint(s, 16, 64)
}

// Writer streams records as text lines.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one record line.
func (lw *Writer) Write(r Record) error {
	lw.buf = r.AppendText(lw.buf[:0])
	lw.buf = append(lw.buf, '\n')
	lw.n++
	_, err := lw.w.Write(lw.buf)
	return err
}

// Count returns how many records were written.
func (lw *Writer) Count() int { return lw.n }

// Flush flushes buffered output.
func (lw *Writer) Flush() error { return lw.w.Flush() }

// Reader streams records from text lines, skipping blank lines. Malformed
// lines abort with a positioned error: silent log corruption must never
// skew a reliability study.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{s: s}
}

// Next returns the next record, io.EOF at end of input.
func (lr *Reader) Next() (Record, error) {
	for lr.s.Scan() {
		lr.line++
		text := strings.TrimSpace(lr.s.Text())
		if text == "" {
			continue
		}
		rec, err := Parse(text)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", lr.line, err)
		}
		return rec, nil
	}
	if err := lr.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll consumes the stream into a slice (small logs only; the campaign
// pipeline streams instead).
func ReadAll(r io.Reader) ([]Record, error) {
	lr := NewReader(r)
	var out []Record
	for {
		rec, err := lr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
