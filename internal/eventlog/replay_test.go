package eventlog

import (
	"strings"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// TestFinishStableOrder is the regression test for the map-iteration leak:
// Finish used to append still-open sessions in Go map order, so two replays
// of the same logs disagreed on the truncated-session order. Many open
// hosts, many repetitions, one acceptable order.
func TestFinishStableOrder(t *testing.T) {
	build := func() []Session {
		a := NewAccounting()
		// Open one session per host, never END any of them. Spread start
		// times so the expected order exercises both keys of the
		// comparator: (From, Host).
		for blade := 1; blade <= 10; blade++ {
			for soc := 1; soc <= 5; soc++ {
				a.Observe(Record{
					Kind:  KindStart,
					At:    timebase.T(1000 * (soc % 3)), // deliberate From ties
					Host:  cluster.NodeID{Blade: blade, SoC: soc},
					TempC: thermal.NoReading,
				})
			}
		}
		return a.Finish()
	}

	want := build()
	if len(want) != 50 {
		t.Fatalf("sessions %d, want 50", len(want))
	}
	for i := 1; i < len(want); i++ {
		if CompareSessions(&want[i-1], &want[i]) >= 0 {
			t.Fatalf("session %d out of canonical order: %+v then %+v", i, want[i-1], want[i])
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := build()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: session %d differs: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFinishSortsOnlyTheOpenTail: sessions closed by END keep their
// observation order; only the appended truncated tail is canonicalized.
func TestFinishSortsOnlyTheOpenTail(t *testing.T) {
	a := NewAccounting()
	h1 := cluster.NodeID{Blade: 9, SoC: 9}
	h2 := cluster.NodeID{Blade: 1, SoC: 1}
	// h1 closes first even though h2 sorts lower: closed order preserved.
	a.Observe(Record{Kind: KindStart, At: 100, Host: h1, TempC: thermal.NoReading})
	a.Observe(Record{Kind: KindStart, At: 50, Host: h2, TempC: thermal.NoReading})
	a.Observe(Record{Kind: KindEnd, At: 200, Host: h1, TempC: thermal.NoReading})
	a.Observe(Record{Kind: KindEnd, At: 250, Host: h2, TempC: thermal.NoReading})
	// Two still-open sessions land in the tail, canonically ordered.
	a.Observe(Record{Kind: KindStart, At: 400, Host: h1, TempC: thermal.NoReading})
	a.Observe(Record{Kind: KindStart, At: 300, Host: h2, TempC: thermal.NoReading})
	ss := a.Finish()
	if len(ss) != 4 {
		t.Fatalf("sessions %d, want 4", len(ss))
	}
	if ss[0].Host != h1 || ss[1].Host != h2 {
		t.Fatalf("closed-session order rewritten: %+v", ss[:2])
	}
	if ss[2].From != 300 || ss[3].From != 400 || !ss[2].Truncated || !ss[3].Truncated {
		t.Fatalf("open tail not canonical: %+v", ss[2:])
	}
}

// TestPreCollapsedRecordRoundTrip: ERROR lines can carry the extracted
// (last=, logs=) view and must round-trip exactly, including default
// expansion when only one of the pair is present.
func TestPreCollapsedRecordRoundTrip(t *testing.T) {
	host := cluster.NodeID{Blade: 4, SoC: 5}
	rec := Record{
		Kind: KindError, At: 5000, Host: host,
		VAddr: 0x7f2a00000100, Actual: 0xfffffffe, Expected: 0xffffffff,
		TempC: 33.4567890123, PhysPage: 0x42,
		LastAt: 9000, Logs: 17,
	}
	back, err := Parse(rec.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", back, rec)
	}

	// logs= without last=: the run ends where it starts.
	r2, err := Parse("ERROR ts=2015-03-01T00:00:00Z host=01-01 vaddr=0x0 actual=0x0 expected=0x1 temp=NA ppage=0x0 logs=3")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Logs != 3 || r2.LastAt != r2.At {
		t.Fatalf("lone logs= not normalized: %+v", r2)
	}

	// last= without logs=: a single-record run.
	r3, err := Parse("ERROR ts=2015-03-01T00:00:00Z host=01-01 vaddr=0x0 actual=0x0 expected=0x1 temp=NA ppage=0x0 last=2015-03-01T00:01:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Logs != 1 || r3.LastAt != r3.At+60 {
		t.Fatalf("lone last= not normalized: %+v", r3)
	}

	// A raw scanner record renders without the pre-collapsed fields.
	raw := Record{Kind: KindError, At: 10, Host: host, Expected: 1, TempC: thermal.NoReading}
	if s := raw.String(); strings.Contains(s, "last=") || strings.Contains(s, "logs=") {
		t.Fatalf("raw record leaked pre-collapsed fields: %s", s)
	}

	// Rejections: zero/negative counts and runs ending before they start.
	for _, line := range []string{
		"ERROR ts=2015-03-01T00:00:00Z host=01-01 vaddr=0x0 actual=0x0 expected=0x1 temp=NA ppage=0x0 logs=0",
		"ERROR ts=2015-03-01T00:00:00Z host=01-01 vaddr=0x0 actual=0x0 expected=0x1 temp=NA ppage=0x0 logs=-2",
		"ERROR ts=2015-03-01T00:02:00Z host=01-01 vaddr=0x0 actual=0x0 expected=0x1 temp=NA ppage=0x0 last=2015-03-01T00:01:00Z",
	} {
		if _, err := Parse(line); err == nil {
			t.Fatalf("accepted malformed pre-collapsed line: %s", line)
		}
	}
}
