// Package kway implements a deterministic k-way merge of individually
// sorted streams. It is the ordering backbone shared by the campaign
// engine (merging per-node simulation streams) and the log-replay loader
// (merging per-node log-file streams): per-node sequences arrive already
// sorted from parallel workers, and Merge interleaves them into the
// canonical global order in O(n log k) comparisons without ever
// materializing the merged sequence.
package kway

import "iter"

// Merge deterministically merges k individually sorted streams into one
// ordered sequence, invoking emit once per element.
//
// cmp must be a total order consistent with each stream's internal order.
// When two stream heads compare equal, the lower stream index wins, so the
// merge is stable across runs even for equal elements. Exhausted streams
// are released as soon as their last element is emitted.
func Merge[T any](streams [][]T, cmp func(a, b *T) int, emit func(T)) {
	for v := range MergeSeq(streams, cmp) {
		emit(v)
	}
}

// MergeSeq is Merge as a range-over-func iterator: the same deterministic
// order and stability contract, but the consumer may stop early by
// breaking out of the range, releasing the heap immediately. The iterator
// allocates only its heap of k cursors up front — emitting an element
// performs no allocation, so a delivery layer built on it stays
// zero-alloc per event.
func MergeSeq[T any](streams [][]T, cmp func(a, b *T) int) iter.Seq[T] {
	return func(yield func(T) bool) {
		h := make([]cursor[T], 0, len(streams))
		for i, s := range streams {
			if len(s) > 0 {
				h = append(h, cursor[T]{items: s, idx: i})
			}
		}
		less := func(a, b *cursor[T]) bool {
			if c := cmp(&a.items[a.pos], &b.items[b.pos]); c != 0 {
				return c < 0
			}
			return a.idx < b.idx
		}
		for i := len(h)/2 - 1; i >= 0; i-- {
			siftDown(h, i, less)
		}
		for len(h) > 0 {
			top := &h[0]
			if !yield(top.items[top.pos]) {
				return
			}
			top.pos++
			if top.pos == len(top.items) {
				h[0] = h[len(h)-1]
				h[len(h)-1] = cursor[T]{} // drop the stale copy's reference
				h = h[:len(h)-1]
			}
			siftDown(h, 0, less)
		}
	}
}

// MergeBlocks is the block-granular form of the merge: it drains the same
// deterministic sequence as MergeSeq, but moves it in caller-owned blocks
// instead of element-wise yields. Each merged element is converted by conv
// (the delivery layer maps faults and sessions into its Event sum type
// here, so blocks are built in one pass over the heap) and appended to
// buf; emit is invoked once per full block and once for the final partial
// one, and must consume the block before returning — buf is recycled for
// the next block. An emit returning false stops the merge immediately;
// MergeBlocks reports whether the sequence was fully drained.
//
// Ordering, stability and the allocation contract are exactly MergeSeq's:
// block boundaries carry no meaning, cmp ties break on stream index, and
// beyond the k-cursor heap nothing is allocated — with a pooled buf,
// block delivery is allocation-free in steady state. len(buf) is the
// block size and must be at least 1.
func MergeBlocks[S, T any](streams [][]S, cmp func(a, b *S) int, buf []T, conv func(S) T, emit func([]T) bool) bool {
	if len(buf) == 0 {
		panic("kway: MergeBlocks: empty block buffer")
	}
	h := make([]cursor[S], 0, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			h = append(h, cursor[S]{items: s, idx: i})
		}
	}
	less := func(a, b *cursor[S]) bool {
		if c := cmp(&a.items[a.pos], &b.items[b.pos]); c != 0 {
			return c < 0
		}
		return a.idx < b.idx
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
	n := 0
	for len(h) > 0 {
		top := &h[0]
		buf[n] = conv(top.items[top.pos])
		n++
		top.pos++
		if top.pos == len(top.items) {
			h[0] = h[len(h)-1]
			h[len(h)-1] = cursor[S]{} // drop the stale copy's reference
			h = h[:len(h)-1]
		}
		siftDown(h, 0, less)
		if n == len(buf) {
			if !emit(buf[:n]) {
				return false
			}
			n = 0
		}
	}
	if n > 0 {
		return emit(buf[:n])
	}
	return true
}

// cursor is one stream's read position in the merge heap.
type cursor[T any] struct {
	items []T
	pos   int
	idx   int // original stream index, the deterministic tiebreak
}

// siftDown restores the min-heap property below node i.
func siftDown[T any](h []cursor[T], i int, less func(a, b *cursor[T]) bool) {
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < len(h) && less(&h[left], &h[min]) {
			min = left
		}
		if right < len(h) && less(&h[right], &h[min]) {
			min = right
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
