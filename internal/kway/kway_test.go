package kway

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func cmpInt(a, b *int) int {
	switch {
	case *a < *b:
		return -1
	case *a > *b:
		return 1
	default:
		return 0
	}
}

func TestMergeOrders(t *testing.T) {
	streams := [][]int{
		{1, 4, 7, 10},
		{2, 5, 8},
		{},
		{3, 6, 9, 11, 12},
	}
	var got []int
	Merge(streams, cmpInt, func(v int) { got = append(got, v) })
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	var got []int
	Merge(nil, cmpInt, func(v int) { got = append(got, v) })
	Merge([][]int{{}, {}}, cmpInt, func(v int) { got = append(got, v) })
	if len(got) != 0 {
		t.Fatalf("empty streams emitted %v", got)
	}
	Merge([][]int{{5, 6, 7}}, cmpInt, func(v int) { got = append(got, v) })
	if !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Fatalf("single stream %v", got)
	}
}

func TestMergeStableOnTies(t *testing.T) {
	// Equal keys must drain in stream-index order, every time.
	type kv struct{ key, stream int }
	streams := [][]kv{
		{{1, 0}, {2, 0}},
		{{1, 1}, {2, 1}},
		{{1, 2}, {2, 2}},
	}
	cmp := func(a, b *kv) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	}
	var got []kv
	Merge(streams, cmp, func(v kv) { got = append(got, v) })
	want := []kv{{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie order %v, want %v", got, want)
	}
}

func TestMergeRandomizedAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := r.Intn(9)
		streams := make([][]int, k)
		var all []int
		for i := range streams {
			n := r.Intn(20)
			for j := 0; j < n; j++ {
				streams[i] = append(streams[i], r.Intn(40))
			}
			sort.Ints(streams[i])
			all = append(all, streams[i]...)
		}
		sort.Ints(all)
		var got []int
		Merge(streams, cmpInt, func(v int) { got = append(got, v) })
		if len(got) == 0 && len(all) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge %v, want %v (streams %v)", trial, got, all, streams)
		}
	}
}

// TestMergeSeqEarlyBreak: breaking out of the range stops the merge; a
// fresh iterator over the same streams still delivers everything.
func TestMergeSeqEarlyBreak(t *testing.T) {
	streams := [][]int{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}}
	var got []int
	for v := range MergeSeq(streams, cmpInt) {
		got = append(got, v)
		if len(got) == 4 {
			break
		}
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("early break delivered %v", got)
	}
	var all []int
	for v := range MergeSeq(streams, cmpInt) {
		all = append(all, v)
	}
	if !reflect.DeepEqual(all, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Fatalf("re-iteration delivered %v", all)
	}
}

// TestMergeSeqZeroAllocPerElement is the hard gate behind the stream
// contract's "delivery is allocation-free per event": the merge allocates
// only its cursor heap up front, so total allocations are identical for a
// 10-element and a 100k-element merge — per element, zero.
func TestMergeSeqZeroAllocPerElement(t *testing.T) {
	build := func(perStream int) [][]int {
		streams := make([][]int, 8)
		for i := range streams {
			for j := 0; j < perStream; j++ {
				streams[i] = append(streams[i], j*8+i)
			}
		}
		return streams
	}
	measure := func(streams [][]int) float64 {
		var sink int
		return testing.AllocsPerRun(10, func() {
			for v := range MergeSeq(streams, cmpInt) {
				sink += v
			}
		})
	}
	small, large := measure(build(10)), measure(build(100_000))
	if small != large {
		t.Fatalf("allocations scale with element count: %v for 80 elements, %v for 800k", small, large)
	}
	// The constant is the setup: cursor heap, comparator closure, and the
	// iterator/yield closures of the range-over-func machinery.
	if large > 5 {
		t.Fatalf("merge setup allocates %v times, want <= 5", large)
	}
}

// TestMergeBlocksMatchesMerge: the block-granular merge must flatten to
// exactly the element-wise sequence for every block size, deliver full
// blocks plus one final partial, honour an emit-false stop, and report
// drained status accordingly.
func TestMergeBlocksMatchesMerge(t *testing.T) {
	streams := [][]int{{1, 4, 7, 10}, {2, 5, 8}, {}, {3, 6, 9, 11, 12}}
	var want []int
	Merge(streams, cmpInt, func(v int) { want = append(want, v) })

	ident := func(v int) int { return v }
	for _, size := range []int{1, 2, 3, 5, 12, 13, 64} {
		var got []int
		blocks := 0
		drained := MergeBlocks(streams, cmpInt, make([]int, size), ident, func(b []int) bool {
			if len(b) > size {
				t.Fatalf("size %d: oversized block of %d", size, len(b))
			}
			if len(b) < size && blocks >= 0 {
				blocks = -1 // only the final block may be partial
			} else if blocks == -1 {
				t.Fatalf("size %d: block after the partial one", size)
			}
			got = append(got, b...)
			return true
		})
		if !drained {
			t.Fatalf("size %d: full consumption reported undrained", size)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("size %d: merged %v, want %v", size, got, want)
		}
	}

	// emit-false stops the merge mid-way and reports undrained.
	var got []int
	drained := MergeBlocks(streams, cmpInt, make([]int, 4), ident, func(b []int) bool {
		got = append(got, b...)
		return false
	})
	if drained || !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("stopped merge: drained=%v got=%v", drained, got)
	}

	// Empty input: no emit at all, trivially drained.
	calls := 0
	if !MergeBlocks(nil, cmpInt, make([]int, 4), ident, func([]int) bool { calls++; return true }) || calls != 0 {
		t.Fatalf("empty merge: %d emits", calls)
	}
}

// TestMergeBlocksEmptyBufPanics: a zero-length block buffer can never
// make progress; it must panic instead of looping.
func TestMergeBlocksEmptyBufPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty buffer")
		}
	}()
	MergeBlocks([][]int{{1}}, cmpInt, nil, func(v int) int { return v }, func([]int) bool { return true })
}
