package kway

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func cmpInt(a, b *int) int {
	switch {
	case *a < *b:
		return -1
	case *a > *b:
		return 1
	default:
		return 0
	}
}

func TestMergeOrders(t *testing.T) {
	streams := [][]int{
		{1, 4, 7, 10},
		{2, 5, 8},
		{},
		{3, 6, 9, 11, 12},
	}
	var got []int
	Merge(streams, cmpInt, func(v int) { got = append(got, v) })
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	var got []int
	Merge(nil, cmpInt, func(v int) { got = append(got, v) })
	Merge([][]int{{}, {}}, cmpInt, func(v int) { got = append(got, v) })
	if len(got) != 0 {
		t.Fatalf("empty streams emitted %v", got)
	}
	Merge([][]int{{5, 6, 7}}, cmpInt, func(v int) { got = append(got, v) })
	if !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Fatalf("single stream %v", got)
	}
}

func TestMergeStableOnTies(t *testing.T) {
	// Equal keys must drain in stream-index order, every time.
	type kv struct{ key, stream int }
	streams := [][]kv{
		{{1, 0}, {2, 0}},
		{{1, 1}, {2, 1}},
		{{1, 2}, {2, 2}},
	}
	cmp := func(a, b *kv) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	}
	var got []kv
	Merge(streams, cmp, func(v kv) { got = append(got, v) })
	want := []kv{{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie order %v, want %v", got, want)
	}
}

func TestMergeRandomizedAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := r.Intn(9)
		streams := make([][]int, k)
		var all []int
		for i := range streams {
			n := r.Intn(20)
			for j := 0; j < n; j++ {
				streams[i] = append(streams[i], r.Intn(40))
			}
			sort.Ints(streams[i])
			all = append(all, streams[i]...)
		}
		sort.Ints(all)
		var got []int
		Merge(streams, cmpInt, func(v int) { got = append(got, v) })
		if len(got) == 0 && len(all) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge %v, want %v (streams %v)", trial, got, all, streams)
		}
	}
}
