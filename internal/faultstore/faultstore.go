// Package faultstore is the sharded, time-partitioned binary store for
// extracted fault datasets — the fleet-scale successor to reading one
// flat text log per node. Text logs stay the interchange format; this
// store is where repeated analytical queries go.
//
// # Layout
//
// A store directory holds segment files plus one MANIFEST. Each segment
// belongs to exactly one (shard, time window) cell: the shard is a stable
// hash of the fault's NodeID, the window is its first-observation time
// divided into fixed-length partitions. Inside a segment, faults and
// sessions are encoded in a fixed-layout little-endian columnar codec —
// one contiguous array per record field — so decoding is a handful of
// straight array sweeps instead of per-record text parsing (see
// encode.go/decode.go; DESIGN.md §10 has the byte-level diagram).
//
// The MANIFEST is the store's index: for every segment it records the
// (shard, window) cell, record counts, the min/max observation time and
// the exact set of nodes present. Queries prune on it — a node-subset or
// time-range query opens only the segments whose index entry can match,
// before any segment I/O happens.
//
// # Semantics
//
//   - Ingest streams a text log directory through the §II-C replay
//     pipeline (logstore.Events) and buckets the extracted faults and
//     sessions into segments. Ingest is additive: a second Ingest into
//     the same store appends a new generation of segments.
//   - Events replays the store as the standard stream contract — stats
//     prologue, faults in extract.Compare order, sessions in
//     eventlog.CompareSessions order — by k-way merging the per-segment
//     streams (each sorted at write time) through internal/kway, exactly
//     like the campaign engine and the text-log loader.
//   - Export renders the store back to per-node text logs via
//     logstore.Export. For a store ingested from a canonically exported
//     directory the round trip is byte-identical.
//   - Compact rewrites each shard: fault runs that one ingest batch
//     boundary split in two (same node, address and corruption pattern,
//     within the §II-C collapse gap) are re-collapsed, and every
//     (shard, window) cell ends up with exactly one segment again.
//
// Segment reads are metered by the shared fdlimit budget, so store
// queries and log writers draw descriptors from one pool.
package faultstore

import (
	"fmt"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/timebase"
)

const (
	// DefaultShards is the default number of node-hash shards. Wide
	// enough that a node-subset query skips most of the store, narrow
	// enough that a 13-month study does not shatter into confetti.
	DefaultShards = 8

	// DefaultWindow is the default time-partition length. Thirteen study
	// months make ~14 windows, so a month-scale time-range query touches
	// a couple of windows instead of the whole history.
	DefaultWindow = 30 * 24 * time.Hour

	// ManifestName is the index file inside a store directory.
	ManifestName = "MANIFEST"
)

// shardOf maps a node to its shard with FNV-1a over the (blade, SoC)
// pair. The hash is part of the on-disk format: it must stay stable
// across releases or existing manifests would lie about segment
// membership.
func shardOf(id cluster.NodeID, shards int) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [2]uint64{uint64(int64(id.Blade)), uint64(int64(id.SoC))} {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	return uint32(h % uint64(shards))
}

// windowOf maps an observation time to its window index (floor division,
// so pre-epoch times land in negative windows instead of sharing window
// zero).
func windowOf(t timebase.T, windowSeconds int64) int64 {
	v := int64(t)
	w := v / windowSeconds
	if v%windowSeconds != 0 && v < 0 {
		w--
	}
	return w
}

// segmentName renders a segment file name. Generations distinguish the
// segments successive Ingest calls add to one (shard, window) cell; the
// manifest is the source of truth, the name only has to be unique and
// debuggable.
func segmentName(shard uint32, window int64, gen uint32) string {
	return fmt.Sprintf("seg-%03d-w%d-g%06d.seg", shard, window, gen)
}
