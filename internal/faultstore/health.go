package faultstore

import (
	"fmt"
	"slices"
	"strings"
	"sync"
)

// SegmentError is one segment a degraded read had to skip: which file,
// why, and — from the manifest index, since the payload was unreadable —
// how many records the skip cost.
type SegmentError struct {
	// Segment is the segment file name the manifest references.
	Segment string
	// Err is the read or decode failure that caused the skip (retries
	// already exhausted for transient errors).
	Err error
	// Faults and Sessions are the index-declared record counts of the
	// skipped segment — the upper bound on what the query lost.
	Faults, Sessions int
}

// Health is the queryable report of a degraded read: every segment the
// query skipped, with diagnostics. The zero value is ready to use; one
// Health may be shared across queries (it accumulates) and is safe for
// the concurrent decode workers that feed it.
type Health struct {
	mu      sync.Mutex
	skipped []SegmentError
}

// record appends one skip; a nil receiver discards it (degraded mode
// without a report attached).
func (h *Health) record(e SegmentError) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.skipped = append(h.skipped, e)
	h.mu.Unlock()
}

// Clean reports whether every segment was delivered — no skips.
func (h *Health) Clean() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.skipped) == 0
}

// Skipped returns the skipped segments sorted by name (the decode pool
// records them in completion order, which is not deterministic).
func (h *Health) Skipped() []SegmentError {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := slices.Clone(h.skipped)
	h.mu.Unlock()
	slices.SortFunc(out, func(a, b SegmentError) int {
		return strings.Compare(a.Segment, b.Segment)
	})
	return out
}

// LostFaults and LostSessions total the index-declared records the
// skipped segments held.
func (h *Health) LostFaults() int {
	n := 0
	for _, e := range h.Skipped() {
		n += e.Faults
	}
	return n
}

// LostSessions is the session half of LostFaults.
func (h *Health) LostSessions() int {
	n := 0
	for _, e := range h.Skipped() {
		n += e.Sessions
	}
	return n
}

// String renders a one-line summary plus one line per skipped segment.
func (h *Health) String() string {
	sk := h.Skipped()
	if len(sk) == 0 {
		return "store healthy: no segments skipped"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "degraded: %d segment(s) skipped (%d faults, %d sessions unavailable)",
		len(sk), h.LostFaults(), h.LostSessions())
	for _, e := range sk {
		fmt.Fprintf(&b, "\n  %s: %v", e.Segment, e.Err)
	}
	return b.String()
}
