package faultstore

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"slices"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// The segment codec, write side. A segment file is:
//
//	magic "UFS1"                                       4 B
//	shard          u32                                 4 B
//	window         i64 (window index)                  8 B
//	minAt, maxAt   i64 (prune key bounds, see below)  16 B
//	nFaults        u32                                 4 B
//	nSessions      u32                                 4 B
//	fault columns, each contiguous, nFaults entries:
//	  blade i64 | soc i64 | addr u32 | firstAt i64 | lastAt i64
//	  | logs i64 | expected u32 | actual u32 | tempBits u64
//	session columns, each contiguous, nSessions entries:
//	  blade i64 | soc i64 | from i64 | to i64 | alloc i64 | truncated u8
//	crc            u32 (Castagnoli, over everything above)
//
// Everything is little-endian at fixed offsets: the decoder computes
// every column's position from the two counts alone and sweeps plain
// arrays — no per-record framing, no varints, no text. minAt/maxAt span
// the prune keys of the payload: fault first-observation times and
// session start times. Temperatures are stored as raw IEEE-754 bits so
// the NoReading sentinel (and any exact reading) round-trips
// bit-for-bit; blade/SoC are stored as full i64 so even out-of-fleet
// node IDs parsed from hand-edited logs survive unchanged.

const (
	segMagic      = "UFS1"
	segHeaderLen  = 4 + 4 + 8 + 8 + 8 + 4 + 4
	faultRowLen   = 8 + 8 + 4 + 8 + 8 + 8 + 4 + 4 + 8
	sessionRowLen = 8 + 8 + 8 + 8 + 8 + 1
	segTrailerLen = 4
)

// crcTable is the Castagnoli polynomial: hardware-accelerated on the
// platforms the decode throughput target cares about.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var le = binary.LittleEndian

// segBounds returns the min/max prune key of a segment payload.
func segBounds(faults []extract.Fault, sessions []eventlog.Session) (lo, hi timebase.T) {
	first := true
	see := func(t timebase.T) {
		if first {
			lo, hi = t, t
			first = false
			return
		}
		lo, hi = min(lo, t), max(hi, t)
	}
	for i := range faults {
		see(faults[i].FirstAt)
	}
	for i := range sessions {
		see(sessions[i].From)
	}
	return lo, hi
}

// encodeSegment renders one segment payload in the columnar codec.
// faults must already be in extract.Compare order and sessions in
// eventlog.CompareSessions order — the decoder and the query merge rely
// on it.
func encodeSegment(shard uint32, window int64, faults []extract.Fault, sessions []eventlog.Session) []byte {
	n, m := len(faults), len(sessions)
	size := segHeaderLen + n*faultRowLen + m*sessionRowLen + segTrailerLen
	b := make([]byte, 0, size)
	b = append(b, segMagic...)
	b = le.AppendUint32(b, shard)
	b = le.AppendUint64(b, uint64(window))
	lo, hi := segBounds(faults, sessions)
	b = le.AppendUint64(b, uint64(lo))
	b = le.AppendUint64(b, uint64(hi))
	b = le.AppendUint32(b, uint32(n))
	b = le.AppendUint32(b, uint32(m))

	for i := range faults {
		b = le.AppendUint64(b, uint64(int64(faults[i].Node.Blade)))
	}
	for i := range faults {
		b = le.AppendUint64(b, uint64(int64(faults[i].Node.SoC)))
	}
	for i := range faults {
		b = le.AppendUint32(b, uint32(faults[i].Addr))
	}
	for i := range faults {
		b = le.AppendUint64(b, uint64(faults[i].FirstAt))
	}
	for i := range faults {
		b = le.AppendUint64(b, uint64(faults[i].LastAt))
	}
	for i := range faults {
		b = le.AppendUint64(b, uint64(int64(faults[i].Logs)))
	}
	for i := range faults {
		b = le.AppendUint32(b, faults[i].Expected)
	}
	for i := range faults {
		b = le.AppendUint32(b, faults[i].Actual)
	}
	for i := range faults {
		b = le.AppendUint64(b, math.Float64bits(faults[i].TempC))
	}

	for i := range sessions {
		b = le.AppendUint64(b, uint64(int64(sessions[i].Host.Blade)))
	}
	for i := range sessions {
		b = le.AppendUint64(b, uint64(int64(sessions[i].Host.SoC)))
	}
	for i := range sessions {
		b = le.AppendUint64(b, uint64(sessions[i].From))
	}
	for i := range sessions {
		b = le.AppendUint64(b, uint64(sessions[i].To))
	}
	for i := range sessions {
		b = le.AppendUint64(b, uint64(sessions[i].AllocBytes))
	}
	for i := range sessions {
		var t byte
		if sessions[i].Truncated {
			t = 1
		}
		b = append(b, t)
	}

	return le.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// The manifest codec. The MANIFEST file is the store's index:
//
//	magic "UFM2"
//	windowSeconds i64 (the store's time-partition length)
//	segCount u32
//	per segment:
//	  nameLen u16 | name bytes
//	  shard u32 | window i64 | gen u32
//	  nFaults u32 | nSessions u32
//	  minAt i64 | maxAt i64
//	  nodeCount u32 | per node: blade i64 | soc i64   (sorted, unique)
//	crc u32 (Castagnoli, over everything above)
//
// Reading it is the only I/O a fully pruned query performs. The window
// length is persisted because Ingest and Compact re-derive bucket
// boundaries from it: without it a Compact of a WithWindow store would
// silently re-partition at the default granularity.

const manMagic = "UFM2"

// segMeta is one segment's index entry.
type segMeta struct {
	name         string
	shard        uint32
	window       int64
	gen          uint32
	nFaults      int
	nSessions    int
	minAt, maxAt timebase.T
	nodes        []cluster.NodeID // sorted by (Blade, SoC), unique
}

// manifest is the decoded store index, sorted by (shard, window, gen).
type manifest struct {
	// windowSeconds is the store's time-partition length, fixed at
	// creation; zero only in synthetic in-memory manifests (readers fall
	// back to DefaultWindow).
	windowSeconds int64
	segs          []segMeta
}

// sort orders the entries canonically; every writer calls it so the
// on-disk entry order — and with it the query merge's stream order — is
// deterministic.
func (m *manifest) sort() {
	slices.SortFunc(m.segs, func(a, b segMeta) int {
		switch {
		case a.shard != b.shard:
			return int(a.shard) - int(b.shard)
		case a.window != b.window:
			if a.window < b.window {
				return -1
			}
			return 1
		default:
			return int(a.gen) - int(b.gen)
		}
	})
}

// nextGen returns the generation number the next Ingest should use.
func (m *manifest) nextGen() uint32 {
	var g uint32
	for i := range m.segs {
		if m.segs[i].gen >= g {
			g = m.segs[i].gen + 1
		}
	}
	return g
}

// nodeSetOf collects the sorted unique node set of a segment payload,
// the manifest's pruning key for node-subset queries.
func nodeSetOf(faults []extract.Fault, sessions []eventlog.Session) []cluster.NodeID {
	set := make(map[cluster.NodeID]struct{}, 16)
	for i := range faults {
		set[faults[i].Node] = struct{}{}
	}
	for i := range sessions {
		set[sessions[i].Host] = struct{}{}
	}
	nodes := make([]cluster.NodeID, 0, len(set))
	for id := range set {
		nodes = append(nodes, id)
	}
	slices.SortFunc(nodes, func(a, b cluster.NodeID) int {
		if a.Blade != b.Blade {
			return a.Blade - b.Blade
		}
		return a.SoC - b.SoC
	})
	return nodes
}

// encodeManifest renders the index file.
func encodeManifest(m *manifest) []byte {
	b := []byte(manMagic)
	b = le.AppendUint64(b, uint64(m.windowSeconds))
	b = le.AppendUint32(b, uint32(len(m.segs)))
	for i := range m.segs {
		s := &m.segs[i]
		b = le.AppendUint16(b, uint16(len(s.name)))
		b = append(b, s.name...)
		b = le.AppendUint32(b, s.shard)
		b = le.AppendUint64(b, uint64(s.window))
		b = le.AppendUint32(b, s.gen)
		b = le.AppendUint32(b, uint32(s.nFaults))
		b = le.AppendUint32(b, uint32(s.nSessions))
		b = le.AppendUint64(b, uint64(s.minAt))
		b = le.AppendUint64(b, uint64(s.maxAt))
		b = le.AppendUint32(b, uint32(len(s.nodes)))
		for _, id := range s.nodes {
			b = le.AppendUint64(b, uint64(int64(id.Blade)))
			b = le.AppendUint64(b, uint64(int64(id.SoC)))
		}
	}
	return le.AppendUint32(b, crc32.Checksum(b, crcTable))
}
