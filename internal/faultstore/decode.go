package faultstore

import (
	"fmt"
	"hash/crc32"
	"math"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// The segment codec, read side. Decoding is the store's hot path: after
// the integrity check every column is one straight sweep over a
// contiguous little-endian array at an offset computed from the two
// record counts, so throughput is bounded by memory bandwidth and the
// CRC, not by parsing.

// segPayload is a decoded segment.
type segPayload struct {
	shard        uint32
	window       int64
	minAt, maxAt timebase.T
	faults       []extract.Fault
	sessions     []eventlog.Session
}

// corruptf builds the uniform corruption error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("faultstore: corrupt segment: "+format, args...)
}

// decodeSegment parses one segment file image. Corruption — bad magic, a
// truncated file, a CRC mismatch — is a hard error: a reliability study
// must never half-trust its own storage.
func decodeSegment(data []byte) (*segPayload, error) {
	if len(data) < segHeaderLen+segTrailerLen {
		return nil, corruptf("%d bytes is shorter than header+trailer", len(data))
	}
	if string(data[:4]) != segMagic {
		return nil, corruptf("bad magic %q", data[:4])
	}
	body, trailer := data[:len(data)-segTrailerLen], data[len(data)-segTrailerLen:]
	if got, want := crc32.Checksum(body, crcTable), le.Uint32(trailer); got != want {
		return nil, corruptf("CRC mismatch (file %08x, computed %08x)", want, got)
	}
	p := &segPayload{
		shard:  le.Uint32(data[4:]),
		window: int64(le.Uint64(data[8:])),
		minAt:  timebase.T(le.Uint64(data[16:])),
		maxAt:  timebase.T(le.Uint64(data[24:])),
	}
	n := int(le.Uint32(data[32:]))
	m := int(le.Uint32(data[36:]))
	if want := segHeaderLen + n*faultRowLen + m*sessionRowLen + segTrailerLen; len(data) != want {
		return nil, corruptf("%d bytes for %d faults + %d sessions, want %d", len(data), n, m, want)
	}

	off := segHeaderLen
	col64 := func(cnt int) []byte { c := body[off:]; off += 8 * cnt; return c }
	col32 := func(cnt int) []byte { c := body[off:]; off += 4 * cnt; return c }

	// One row-wise pass per record kind: the decoder streams all columns
	// in parallel (the prefetcher handles a handful of sequential read
	// streams) and touches each output struct exactly once, instead of
	// re-walking the whole output array per column. The classification
	// fields are re-derived in the same pass (extract.Classify, fused):
	// they are functions of Expected/Actual, so the codec never stores
	// them.
	p.faults = make([]extract.Fault, n)
	fs := p.faults
	cBlade, cSoC := col64(n), col64(n)
	cAddr := col32(n)
	cFirst, cLast, cLogs := col64(n), col64(n), col64(n)
	cExp, cAct := col32(n), col32(n)
	cTemp := col64(n)
	for i := 0; i < n; i++ {
		f := &fs[i]
		f.Node.Blade = int(int64(le.Uint64(cBlade[8*i:])))
		f.Node.SoC = int(int64(le.Uint64(cSoC[8*i:])))
		f.Addr = dram.Addr(le.Uint32(cAddr[4*i:]))
		f.FirstAt = timebase.T(le.Uint64(cFirst[8*i:]))
		f.LastAt = timebase.T(le.Uint64(cLast[8*i:]))
		f.Logs = int(int64(le.Uint64(cLogs[8*i:])))
		f.Expected = le.Uint32(cExp[4*i:])
		f.Actual = le.Uint32(cAct[4*i:])
		f.TempC = math.Float64frombits(le.Uint64(cTemp[8*i:]))
		diff := f.Expected ^ f.Actual
		f.Bits = dram.BitSet(diff)
		f.Ones2Zeros = dram.BitSet(f.Expected & diff)
		f.Zeros2Ones = dram.BitSet(f.Actual & diff)
	}

	p.sessions = make([]eventlog.Session, m)
	ss := p.sessions
	cHBlade, cHSoC := col64(m), col64(m)
	cFrom, cTo, cAlloc := col64(m), col64(m), col64(m)
	for i := 0; i < m; i++ {
		s := &ss[i]
		s.Host.Blade = int(int64(le.Uint64(cHBlade[8*i:])))
		s.Host.SoC = int(int64(le.Uint64(cHSoC[8*i:])))
		s.From = timebase.T(le.Uint64(cFrom[8*i:]))
		s.To = timebase.T(le.Uint64(cTo[8*i:]))
		s.AllocBytes = int64(le.Uint64(cAlloc[8*i:]))
		switch body[off+i] {
		case 0:
		case 1:
			s.Truncated = true
		default:
			return nil, corruptf("truncation flag %d", body[off+i])
		}
	}
	return p, nil
}

// decodeManifest parses the index file.
func decodeManifest(data []byte) (*manifest, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("faultstore: corrupt manifest: "+format, args...)
	}
	if len(data) < len(manMagic)+8+4+4 {
		return nil, bad("%d bytes is too short", len(data))
	}
	if string(data[:4]) != manMagic {
		return nil, bad("bad magic %q", data[:4])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), le.Uint32(trailer); got != want {
		return nil, bad("CRC mismatch (file %08x, computed %08x)", want, got)
	}
	off := 4
	need := func(n int) bool { return off+n <= len(body) }
	if !need(8 + 4) {
		return nil, bad("truncated header")
	}
	windowSeconds := int64(le.Uint64(body[off:]))
	if windowSeconds < 0 {
		return nil, bad("negative window length %d", windowSeconds)
	}
	count := int(le.Uint32(body[off+8:]))
	off += 12
	// The declared count is untrusted (a CRC-valid file can still claim
	// ~4e9 entries): bound the preallocation by what the body could
	// possibly hold — 46 bytes is the smallest encodable entry — and let
	// the per-entry length checks reject the lie.
	const minEntryLen = 2 + 44
	m := &manifest{
		windowSeconds: windowSeconds,
		segs:          make([]segMeta, 0, min(count, (len(body)-off)/minEntryLen)),
	}
	for s := 0; s < count; s++ {
		if !need(2) {
			return nil, bad("truncated entry %d", s)
		}
		nameLen := int(le.Uint16(body[off:]))
		off += 2
		if !need(nameLen + 4 + 8 + 4 + 4 + 4 + 8 + 8 + 4) {
			return nil, bad("truncated entry %d", s)
		}
		e := segMeta{name: string(body[off : off+nameLen])}
		off += nameLen
		e.shard = le.Uint32(body[off:])
		e.window = int64(le.Uint64(body[off+4:]))
		e.gen = le.Uint32(body[off+12:])
		e.nFaults = int(le.Uint32(body[off+16:]))
		e.nSessions = int(le.Uint32(body[off+20:]))
		e.minAt = timebase.T(le.Uint64(body[off+24:]))
		e.maxAt = timebase.T(le.Uint64(body[off+32:]))
		nodeCount := int(le.Uint32(body[off+40:]))
		off += 44
		if !need(16 * nodeCount) {
			return nil, bad("truncated node set of entry %d", s)
		}
		e.nodes = make([]cluster.NodeID, nodeCount)
		for i := range e.nodes {
			e.nodes[i].Blade = int(int64(le.Uint64(body[off:])))
			e.nodes[i].SoC = int(int64(le.Uint64(body[off+8:])))
			off += 16
		}
		m.segs = append(m.segs, e)
	}
	if off != len(body) {
		return nil, bad("%d trailing bytes", len(body)-off)
	}
	return m, nil
}
