package faultstore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/iofault"
	"unprotected/internal/stream"
)

// The chaos suite proves the store's crash-consistency and degraded-read
// contracts by construction: every write/rename/sync boundary of Ingest
// and Compact is enumerated and crashed at, the reopened store must
// export byte-identically to either the pre- or the post-operation state
// (never a torn hybrid), and fsck must verify it clean or repair it to
// clean. Single-worker runs keep the injector's mutation numbering
// deterministic, which is what makes "crash at mutation n" a complete
// sweep rather than a sample.

// fastRetry keeps injected-failure tests quick without changing the
// retry semantics under test.
var fastRetry = iofault.RetryPolicy{Attempts: 4, Base: 50 * time.Microsecond, Max: time.Millisecond}

// chaosBatchA is the pre-existing store content: two nodes, one window.
func chaosBatchA(t *testing.T) string {
	t.Helper()
	// The two faults land in different one-hour windows, so the store
	// always holds at least two segments whatever the shard hashing does.
	faults := []extract.Fault{
		synthFault(2, 4, 0x100, 1000, 1040, 3, 0xffffffff, 0xfffeffff),
		synthFault(3, 1, 0x200, 4200, 4200, 1, 0xffffffff, 0xfffffffe),
	}
	sessions := []eventlog.Session{
		{Host: faults[0].Node, From: 900, To: 2000, AllocBytes: 1 << 20},
		{Host: faults[1].Node, From: 4100, To: 5200, AllocBytes: 1 << 20},
	}
	return exportDir(t, faults, sessions)
}

// chaosBatchB is the second generation: it extends batch A's first run
// within the collapse gap (so Compact has a real cross-generation merge
// to do and pre/post exports genuinely differ) and adds a third node.
func chaosBatchB(t *testing.T) string {
	t.Helper()
	faults := []extract.Fault{
		synthFault(2, 4, 0x100, 1080, 1110, 2, 0xffffffff, 0xfffeffff),
		synthFault(5, 2, 0x300, 4000, 4010, 2, 0x0, 0x00010000),
	}
	sessions := []eventlog.Session{
		{Host: faults[1].Node, From: 3900, To: 5000, AllocBytes: 2 << 20},
	}
	return exportDir(t, faults, sessions)
}

// copyStore clones a store directory (flat files) into a fresh temp dir.
func copyStore(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for name, data := range readFiles(t, src) {
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// exportSnapshot renders the store to text logs and snapshots the bytes.
func exportSnapshot(t *testing.T, storeDir string) map[string][]byte {
	t.Helper()
	out := t.TempDir()
	if err := Export(context.Background(), storeDir, out, 1); err != nil {
		t.Fatal(err)
	}
	return readFiles(t, out)
}

// equalFiles compares two directory snapshots byte for byte.
func equalFiles(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for name, data := range a {
		if !bytes.Equal(b[name], data) {
			return false
		}
	}
	return true
}

// verifyOrRepair asserts the store checks clean, or that one fsck
// -repair pass restores it to clean — the sweep's second invariant.
func verifyOrRepair(t *testing.T, dir string, label string) {
	t.Helper()
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("%s: fsck: %v", label, err)
	}
	if rep.Clean() {
		return
	}
	if _, err := Fsck(dir, WithRepair()); err != nil {
		t.Fatalf("%s: fsck -repair: %v", label, err)
	}
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatalf("%s: fsck after repair: %v", label, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: store still dirty after repair:\n%s", label, rep)
	}
}

// crashSweep enumerates every mutation boundary of op (already proven to
// perform total mutations by a counting baseline) and asserts the
// pre-or-post invariant plus fsck-clean-or-repairable at each one, with
// and without a torn final write.
func crashSweep(t *testing.T, preDir string, total uint64,
	preExport, postExport map[string][]byte,
	op func(dir string, fsys iofault.FS) error) {
	t.Helper()
	for _, torn := range []bool{false, true} {
		for n := uint64(0); n <= total; n++ {
			dir := copyStore(t, preDir)
			inj := iofault.NewInjector(nil)
			inj.CrashAfterMutations(n)
			if torn {
				inj.SetCrashTorn(0.41)
			}
			err := op(dir, inj)
			label := "crash at mutation " + itoa(n)
			if torn {
				label += " (torn)"
			}
			if n == total && err != nil {
				t.Fatalf("crash point beyond the last mutation must not fire: %v", err)
			}
			got := exportSnapshot(t, dir)
			matchPre, matchPost := equalFiles(got, preExport), equalFiles(got, postExport)
			if !matchPre && !matchPost {
				t.Fatalf("%s: reopened store exports a torn hybrid (matches neither pre nor post state)", label)
			}
			if err == nil && !matchPost {
				// Success may legitimately be reported even when the crash
				// ate post-commit best-effort cleanup (obsolete-segment
				// deletion) — but then the commit itself must have landed.
				t.Fatalf("%s: operation reported success but the store is not in the post state", label)
			}
			verifyOrRepair(t, dir, label)
		}
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCrashSweepIngest crashes an additive ingest at every write, sync,
// rename and remove boundary: the reopened store must be byte-identical
// (via export) to the store before or after the ingest, never in
// between, and fsck must account for all crash litter.
func TestCrashSweepIngest(t *testing.T) {
	ctx := context.Background()
	batchA, batchB := chaosBatchA(t), chaosBatchB(t)

	pre := t.TempDir()
	if _, err := Ingest(ctx, batchA, pre, WithShards(4), WithWindow(time.Hour), WithIngestWorkers(1)); err != nil {
		t.Fatal(err)
	}
	preExport := exportSnapshot(t, pre)

	ingestB := func(dir string, fsys iofault.FS) error {
		opts := []IngestOption{WithShards(4), WithIngestWorkers(1)}
		if fsys != nil {
			opts = append(opts, WithIngestFS(fsys))
		}
		_, err := Ingest(ctx, batchB, dir, opts...)
		return err
	}

	post := copyStore(t, pre)
	if err := ingestB(post, nil); err != nil {
		t.Fatal(err)
	}
	postExport := exportSnapshot(t, post)
	if equalFiles(preExport, postExport) {
		t.Fatal("batch B must change the exported dataset or the sweep proves nothing")
	}

	// Counting baseline: an empty injector is a passthrough, and the
	// single-worker run makes its mutation numbering the sweep's axis.
	base := copyStore(t, pre)
	counter := iofault.NewInjector(nil)
	if err := ingestB(base, counter); err != nil {
		t.Fatal(err)
	}
	total := counter.Mutations()
	if total < 8 {
		t.Fatalf("ingest performed only %d mutations; the sweep axis looks wrong", total)
	}
	if !equalFiles(exportSnapshot(t, base), postExport) {
		t.Fatal("counting baseline diverged from the clean run")
	}

	crashSweep(t, pre, total, preExport, postExport, ingestB)
}

// TestCrashSweepCompact is the same sweep over compaction, whose
// post-swap obsolete-segment deletion adds a crash window where the new
// manifest is live but old segments still exist — fsck must see those as
// orphans and repair must delete them.
func TestCrashSweepCompact(t *testing.T) {
	ctx := context.Background()
	batchA, batchB := chaosBatchA(t), chaosBatchB(t)

	pre := t.TempDir()
	if _, err := Ingest(ctx, batchA, pre, WithShards(4), WithWindow(time.Hour), WithIngestWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(ctx, batchB, pre, WithShards(4), WithIngestWorkers(1)); err != nil {
		t.Fatal(err)
	}
	preExport := exportSnapshot(t, pre)

	compact := func(dir string, fsys iofault.FS) error {
		var opts []CompactOption
		if fsys != nil {
			opts = append(opts, WithCompactFS(fsys))
		}
		_, err := Compact(dir, opts...)
		return err
	}

	post := copyStore(t, pre)
	if err := compact(post, nil); err != nil {
		t.Fatal(err)
	}
	postExport := exportSnapshot(t, post)
	if equalFiles(preExport, postExport) {
		t.Fatal("compaction must merge the cross-generation run or the sweep proves nothing")
	}

	base := copyStore(t, pre)
	counter := iofault.NewInjector(nil)
	if err := compact(base, counter); err != nil {
		t.Fatal(err)
	}
	total := counter.Mutations()
	if total < 8 {
		t.Fatalf("compact performed only %d mutations; the sweep axis looks wrong", total)
	}
	if !equalFiles(exportSnapshot(t, base), postExport) {
		t.Fatal("counting baseline diverged from the clean run")
	}

	crashSweep(t, pre, total, preExport, postExport, compact)
}

// chaosStore builds a store with several segments and returns its
// directory, the sorted segment names and the ingested totals.
func chaosStore(t *testing.T) (dir string, segs []string, faults, sessions int) {
	t.Helper()
	dir = t.TempDir()
	stats, err := Ingest(context.Background(), chaosBatchA(t), dir,
		WithShards(4), WithWindow(time.Hour), WithIngestWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for name := range readFiles(t, dir) {
		if strings.HasSuffix(name, ".seg") {
			segs = append(segs, name)
		}
	}
	if len(segs) < 2 {
		t.Fatalf("store has %d segments, want several for skip tests", len(segs))
	}
	return dir, segs, stats.Faults, stats.Sessions
}

// drainErr collects a query, returning the stream error instead of
// failing the test — for paths where an error is the expected outcome.
func drainErr(s *Store, q Query) (faults []extract.Fault, sessions []eventlog.Session, err error) {
	for ev, serr := range s.Events(context.Background(), q) {
		if serr != nil {
			return nil, nil, serr
		}
		switch ev.Kind {
		case stream.KindFault:
			faults = append(faults, ev.Fault)
		case stream.KindSession:
			sessions = append(sessions, ev.Session)
		}
	}
	return faults, sessions, nil
}

// TestDegradedReadSkipsCorruptSegment pins the degraded contract: strict
// reads hard-fail on a CRC-broken segment, degraded reads deliver
// everything else and account for the loss in the health report.
func TestDegradedReadSkipsCorruptSegment(t *testing.T) {
	dir, segs, totalFaults, totalSessions := chaosStore(t)
	victim := segs[0]
	path := filepath.Join(dir, victim)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := drainErr(s, Query{Workers: 1}); err == nil {
		t.Fatal("strict read of a corrupt segment must fail")
	} else if !strings.Contains(err.Error(), victim) {
		t.Fatalf("strict error does not name the corrupt segment: %v", err)
	}

	h := &Health{}
	faults, sessions, err := drainErr(s, Query{Workers: 1, Degraded: true, Health: h})
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	sk := h.Skipped()
	if len(sk) != 1 || sk[0].Segment != victim {
		t.Fatalf("health skipped %v, want exactly [%s]", sk, victim)
	}
	if h.Clean() {
		t.Fatal("health must not report clean after a skip")
	}
	if len(faults)+h.LostFaults() != totalFaults {
		t.Fatalf("delivered %d + lost %d faults, want %d", len(faults), h.LostFaults(), totalFaults)
	}
	if len(sessions)+h.LostSessions() != totalSessions {
		t.Fatalf("delivered %d + lost %d sessions, want %d", len(sessions), h.LostSessions(), totalSessions)
	}
	if !strings.Contains(h.String(), victim) {
		t.Fatalf("health report does not name the segment:\n%s", h)
	}
}

// TestDegradedReadSkipsUnreadableSegment is the I/O-error flavour: a
// persistently failing read (retries exhausted) skips under Degraded and
// fails strict.
func TestDegradedReadSkipsUnreadableSegment(t *testing.T) {
	dir, segs, totalFaults, _ := chaosStore(t)
	victim := segs[len(segs)-1]

	inj := iofault.NewInjector(nil)
	inj.FailPath(victim, -1, nil)
	s, err := Open(dir, WithStoreFS(inj), WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := drainErr(s, Query{Workers: 1}); err == nil {
		t.Fatal("strict read of an unreadable segment must fail")
	}

	h := &Health{}
	faults, _, err := drainErr(s, Query{Workers: 1, Degraded: true, Health: h})
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	sk := h.Skipped()
	if len(sk) != 1 || sk[0].Segment != victim || !errors.Is(sk[0].Err, iofault.ErrInjected) {
		t.Fatalf("health skipped %v, want the injected failure on %s", sk, victim)
	}
	if len(faults)+h.LostFaults() != totalFaults {
		t.Fatalf("delivered %d + lost %d faults, want %d", len(faults), h.LostFaults(), totalFaults)
	}
}

// TestTransientReadRetryRecovers pins the retry satellite: a segment
// read that fails transiently twice succeeds within the retry budget, so
// a strict query sees no error and the health stays clean.
func TestTransientReadRetryRecovers(t *testing.T) {
	dir, segs, totalFaults, _ := chaosStore(t)
	victim := segs[0]

	inj := iofault.NewInjector(nil)
	inj.FailPath(victim, 2, nil)
	s, err := Open(dir, WithStoreFS(inj), WithRetry(fastRetry))
	if err != nil {
		t.Fatal(err)
	}
	h := &Health{}
	faults, _, err := drainErr(s, Query{Workers: 1, Health: h})
	if err != nil {
		t.Fatalf("strict read should have recovered via retry: %v", err)
	}
	if len(faults) != totalFaults {
		t.Fatalf("delivered %d faults, want %d", len(faults), totalFaults)
	}
	if !h.Clean() {
		t.Fatalf("health reports skips after a recovered read:\n%s", h)
	}
}

// TestFsckFindsAndRepairs drives the scrubber end to end: a corrupt
// referenced segment plus two orphans are found, repair quarantines the
// segment, rewrites the manifest and deletes the litter, and the store
// then verifies clean and queries strict again.
func TestFsckFindsAndRepairs(t *testing.T) {
	dir, segs, totalFaults, _ := chaosStore(t)
	victim := segs[0]

	data, err := os.ReadFile(filepath.Join(dir, victim))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // trailer CRC byte
	if err := os.WriteFile(filepath.Join(dir, victim), data, 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := "seg-999-w0-g999999.seg"
	if err := os.WriteFile(filepath.Join(dir, orphan), []byte("litter"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName+".tmp"), []byte("stranded"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0].Segment != victim {
		t.Fatalf("fsck corrupt = %v, want [%s]", rep.Corrupt, victim)
	}
	if len(rep.Orphans) != 2 {
		t.Fatalf("fsck orphans = %v, want the litter segment and MANIFEST.tmp", rep.Orphans)
	}
	if rep.Clean() {
		t.Fatal("report must not be clean")
	}

	rep, err = Fsck(dir, WithRepair())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || !rep.ManifestRewritten || len(rep.Removed) != 2 {
		t.Fatalf("repair did not act on all findings:\n%s", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, victim)); err != nil {
		t.Fatalf("quarantined segment bytes missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, orphan)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan still present: %v", err)
	}

	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.SegmentsChecked != len(segs)-1 {
		t.Fatalf("store not clean after repair:\n%s", rep)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	faults, _, err := drainErr(s, Query{Workers: 1})
	if err != nil {
		t.Fatalf("strict query after repair: %v", err)
	}
	if len(faults) >= totalFaults {
		t.Fatalf("repair quarantined a segment but the query still delivered %d of %d faults", len(faults), totalFaults)
	}

	// Index mismatch is corruption too: a segment whose bytes are valid
	// but disagree with the manifest entry it is filed under.
	dir2, segs2, _, _ := chaosStore(t)
	good, err := os.ReadFile(filepath.Join(dir2, segs2[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, segs2[1]), good, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) == 0 || !strings.Contains(rep.Corrupt[0].Err.Error(), "mismatch") {
		t.Fatalf("fsck missed the index mismatch:\n%s", rep)
	}
}

// FuzzDegradedRead pins the degraded-read panic-freedom contract: no
// single-segment corruption — byte flips anywhere, truncation to any
// length, including zero — may panic a degraded query or surface as a
// hard error; the damage is always absorbed as a recorded skip (or, if
// the mutation happens to keep the segment decodable, as data).
func FuzzDegradedRead(f *testing.F) {
	f.Add(uint32(0), byte(0x01), false, uint16(0))
	f.Add(uint32(40), byte(0xff), true, uint16(1))
	f.Add(uint32(9999), byte(0x80), true, uint16(0))
	f.Add(uint32(17), byte(0x00), false, uint16(64))
	f.Fuzz(func(t *testing.T, pos uint32, flip byte, truncate bool, cut uint16) {
		dir, segs, totalFaults, _ := chaosStore(t)
		victim := segs[int(pos)%len(segs)]
		path := filepath.Join(dir, victim)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if truncate {
			data = data[:int(cut)%(len(data)+1)]
		} else if len(data) > 0 {
			data[int(pos)%len(data)] ^= flip
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		h := &Health{}
		faults, _, err := drainErr(s, Query{Workers: 1, Degraded: true, Health: h})
		if err != nil {
			t.Fatalf("degraded read surfaced a hard error: %v", err)
		}
		if len(faults)+h.LostFaults() != totalFaults {
			t.Fatalf("delivered %d + lost %d faults, want %d", len(faults), h.LostFaults(), totalFaults)
		}
	})
}
