package faultstore

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"slices"
	"strings"

	"unprotected/internal/iofault"
)

// QuarantineDir is the store subdirectory fsck -repair moves corrupt
// segments into: the bytes are preserved for forensics, the manifest
// stops referencing them, and queries never see them again.
const QuarantineDir = "quarantine"

// FsckIssue is one referenced segment that failed verification.
type FsckIssue struct {
	Segment string
	Err     error
}

// FsckReport is the result of one store check (and, with WithRepair,
// the actions taken).
type FsckReport struct {
	// SegmentsChecked counts the manifest-referenced segments verified.
	SegmentsChecked int
	// Corrupt lists referenced segments that are missing, unreadable,
	// CRC-invalid, or inconsistent with their index entry.
	Corrupt []FsckIssue
	// Orphans lists files in the store directory that look like store
	// state but are referenced by nothing: segments left by a crashed
	// pre-commit ingest or compact, and a stranded MANIFEST.tmp.
	Orphans []string
	// Quarantined, Removed and ManifestRewritten record what -repair
	// did: corrupt segments moved under quarantine/, orphans deleted,
	// and the manifest rewritten without the quarantined references.
	Quarantined       []string
	Removed           []string
	ManifestRewritten bool
}

// Clean reports whether the store verified with no findings (after
// repair, whether what remains is consistent).
func (r *FsckReport) Clean() bool {
	return len(r.Corrupt) == 0 && len(r.Orphans) == 0
}

// String renders the human-readable report cmd/faultstore prints.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d segment(s) checked", r.SegmentsChecked)
	if r.Clean() && len(r.Quarantined) == 0 && len(r.Removed) == 0 {
		b.WriteString(", store clean")
		return b.String()
	}
	for _, c := range r.Corrupt {
		fmt.Fprintf(&b, "\ncorrupt: %s: %v", c.Segment, c.Err)
	}
	for _, o := range r.Orphans {
		fmt.Fprintf(&b, "\norphan: %s", o)
	}
	for _, q := range r.Quarantined {
		fmt.Fprintf(&b, "\nquarantined: %s -> %s/", q, QuarantineDir)
	}
	for _, d := range r.Removed {
		fmt.Fprintf(&b, "\nremoved orphan: %s", d)
	}
	if r.ManifestRewritten {
		b.WriteString("\nmanifest rewritten without quarantined segments")
	}
	return b.String()
}

// FsckOption configures Fsck.
type FsckOption func(*fsckOptions) error

type fsckOptions struct {
	repair bool
	fsys   iofault.FS
}

// WithRepair makes Fsck act on its findings: corrupt segments are moved
// into quarantine/ and dropped from the manifest (a durable rewrite),
// orphan files are deleted. Without it Fsck only reports.
func WithRepair() FsckOption {
	return func(o *fsckOptions) error {
		o.repair = true
		return nil
	}
}

// WithFsckFS routes the check's I/O through fsys (default: the OS
// passthrough).
func WithFsckFS(fsys iofault.FS) FsckOption {
	return func(o *fsckOptions) error {
		if fsys == nil {
			return fmt.Errorf("faultstore: nil FS")
		}
		o.fsys = fsys
		return nil
	}
}

// Fsck verifies the store at dir: every manifest-referenced segment must
// exist, decode (magic, layout, CRC) and agree with its index entry, and
// every store-shaped file on disk must be referenced. Pre-commit crashes
// leave orphan segments (the manifest never adopted them) and possibly a
// stranded MANIFEST.tmp — both are findings, not errors: the committed
// state is intact, the crash just left litter. With WithRepair the
// litter is deleted, corrupt segments are quarantined and the manifest
// is rewritten so the store verifies clean again (minus the quarantined
// data, which a degraded read would have skipped anyway).
//
// A missing or corrupt manifest is an error, not a finding: without the
// index there is nothing to verify against.
func Fsck(dir string, opts ...FsckOption) (*FsckReport, error) {
	o := fsckOptions{fsys: iofault.OS}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	man, err := readManifest(o.fsys, dir)
	if err != nil {
		return nil, err
	}

	rep := &FsckReport{}
	referenced := make(map[string]bool, len(man.segs))
	corrupt := make(map[string]bool)
	for i := range man.segs {
		e := &man.segs[i]
		referenced[e.name] = true
		rep.SegmentsChecked++
		if err := verifySegment(o.fsys, dir, e); err != nil {
			rep.Corrupt = append(rep.Corrupt, FsckIssue{Segment: e.name, Err: err})
			corrupt[e.name] = true
		}
	}

	entries, err := o.fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("faultstore: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue // quarantine/ and anything else nested is not store state
		}
		if (strings.HasSuffix(name, ".seg") && !referenced[name]) || name == ManifestName+".tmp" {
			rep.Orphans = append(rep.Orphans, name)
		}
	}
	slices.Sort(rep.Orphans)

	if !o.repair || rep.Clean() {
		return rep, nil
	}

	// Repair: quarantine what the manifest references but cannot trust,
	// rewrite the manifest without it, delete the litter.
	if len(corrupt) > 0 {
		qdir := filepath.Join(dir, QuarantineDir)
		if err := o.fsys.MkdirAll(qdir, 0o755); err != nil {
			return rep, fmt.Errorf("faultstore: repair: %w", err)
		}
		for _, c := range rep.Corrupt {
			err := o.fsys.Rename(filepath.Join(dir, c.Segment), filepath.Join(qdir, c.Segment))
			switch {
			case err == nil:
				rep.Quarantined = append(rep.Quarantined, c.Segment)
			case errors.Is(err, fs.ErrNotExist):
				// Nothing on disk to preserve; dropping the reference is
				// the whole repair.
			default:
				return rep, fmt.Errorf("faultstore: repair: %w", err)
			}
		}
		man.segs = slices.DeleteFunc(man.segs, func(e segMeta) bool { return corrupt[e.name] })
		if err := writeManifest(o.fsys, dir, man); err != nil {
			return rep, fmt.Errorf("faultstore: repair: %w", err)
		}
		rep.ManifestRewritten = true
	}
	for _, name := range rep.Orphans {
		if err := o.fsys.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return rep, fmt.Errorf("faultstore: repair: %w", err)
		}
		rep.Removed = append(rep.Removed, name)
	}
	return rep, nil
}

// verifySegment checks one referenced segment file against its index
// entry: readable, decodable (magic, layout, CRC) and consistent with
// what the manifest claims about it.
func verifySegment(fsys iofault.FS, dir string, e *segMeta) error {
	data, err := fsys.ReadFile(filepath.Join(dir, e.name))
	if err != nil {
		return err
	}
	p, err := decodeSegment(data)
	if err != nil {
		return err
	}
	switch {
	case p.shard != e.shard:
		return fmt.Errorf("index mismatch: segment says shard %d, manifest says %d", p.shard, e.shard)
	case p.window != e.window:
		return fmt.Errorf("index mismatch: segment says window %d, manifest says %d", p.window, e.window)
	case len(p.faults) != e.nFaults:
		return fmt.Errorf("index mismatch: segment holds %d faults, manifest says %d", len(p.faults), e.nFaults)
	case len(p.sessions) != e.nSessions:
		return fmt.Errorf("index mismatch: segment holds %d sessions, manifest says %d", len(p.sessions), e.nSessions)
	}
	return nil
}
