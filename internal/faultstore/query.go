package faultstore

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"context"
	"iter"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
	"unprotected/internal/stream"
	"unprotected/internal/timebase"
)

// Store is an opened fault store: the decoded manifest plus the I/O
// accounting a query leaves behind. Opening reads only the manifest;
// segment files are touched first when a query needs them.
type Store struct {
	dir    string
	man    *manifest
	fs     iofault.FS
	retry  iofault.RetryPolicy
	budget *fdlimit.Budget
	opened atomic.Int64
	pruned atomic.Int64
}

// StoreOption configures Open (and Export, which opens a store).
type StoreOption func(*Store) error

// WithStoreFS routes every I/O operation of the opened store — the
// manifest read and all segment reads — through fsys (default: the OS
// passthrough).
func WithStoreFS(fsys iofault.FS) StoreOption {
	return func(s *Store) error {
		if fsys == nil {
			return fmt.Errorf("faultstore: nil FS")
		}
		s.fs = fsys
		return nil
	}
}

// WithRetry replaces the store's transient-read retry policy (default
// iofault.DefaultRetry): segment reads failing with a transient error —
// descriptor pressure, an EIO blip — are retried with backoff under the
// query's context before the failure is surfaced (strict mode) or the
// segment is skipped (degraded mode).
func WithRetry(p iofault.RetryPolicy) StoreOption {
	return func(s *Store) error {
		if p.Attempts < 1 {
			return fmt.Errorf("faultstore: retry attempts must be >= 1, got %d", p.Attempts)
		}
		s.retry = p
		return nil
	}
}

// Open reads the manifest of the store at dir.
func Open(dir string, opts ...StoreOption) (*Store, error) {
	s := &Store{dir: dir, fs: iofault.OS, retry: iofault.DefaultRetry, budget: fdlimit.Shared}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	man, err := readManifest(s.fs, dir)
	if err != nil {
		return nil, err
	}
	s.man = man
	return s, nil
}

// SetBudget makes the store meter its segment reads from b instead of
// the shared fdlimit pool.
func (s *Store) SetBudget(b *fdlimit.Budget) { s.budget = b }

// Segments reports how many segments the manifest names.
func (s *Store) Segments() int { return len(s.man.segs) }

// SegmentsOpened counts the segment files queries on this Store actually
// read; SegmentsPruned counts the ones the manifest index ruled out
// before any I/O. Together they are the pruning effectiveness metric the
// regression tests assert on. Both accumulate over the Store's lifetime.
func (s *Store) SegmentsOpened() int64 { return s.opened.Load() }

// SegmentsPruned counts index-skipped segments; see SegmentsOpened.
func (s *Store) SegmentsPruned() int64 { return s.pruned.Load() }

// Query restricts what a store read delivers. The zero value delivers
// everything.
type Query struct {
	// Nodes, when non-empty, keeps only faults and sessions of these
	// nodes. Segments whose index node set is disjoint are never opened.
	Nodes []cluster.NodeID
	// HasRange enables the [From, To) half-open time filter over fault
	// first-observation times and session start times. Segments whose
	// index bounds fall outside are never opened.
	HasRange bool
	From, To timebase.T
	// Workers bounds the segment decode pool (0 selects GOMAXPROCS).
	Workers int
	// Degraded turns per-segment read and decode failures from hard
	// errors into skips: the query delivers everything that survives,
	// and each skipped segment's diagnostics land in Health (when set).
	// Strict hard-error remains the default — a reliability study must
	// opt in to half-trusting its own storage, never drift into it.
	Degraded bool
	// Health, when non-nil under Degraded, collects the per-segment
	// diagnostics of everything the query had to skip.
	Health *Health
}

// matchSeg reports whether the index entry can contain matching records.
func (q *Query) matchSeg(e *segMeta, set map[cluster.NodeID]bool) bool {
	if q.HasRange && (e.maxAt < q.From || e.minAt >= q.To) {
		return false
	}
	if set != nil {
		for _, id := range e.nodes {
			if set[id] {
				return true
			}
		}
		return false
	}
	return true
}

func (q *Query) matchAt(t timebase.T) bool {
	return !q.HasRange || (t >= q.From && t < q.To)
}

// nodeSet builds the lookup set, nil when the query has no node subset.
func (q *Query) nodeSet() map[cluster.NodeID]bool {
	if len(q.Nodes) == 0 {
		return nil
	}
	set := make(map[cluster.NodeID]bool, len(q.Nodes))
	for _, id := range q.Nodes {
		set[id] = true
	}
	return set
}

// readSegmentFile reads and decodes one segment, metering the open file
// against the budget (the descriptor is held only for the read itself —
// decode works on the in-memory image). Transient read errors are
// retried with backoff under ctx; decode failures are deterministic and
// never retried.
func readSegmentFile(ctx context.Context, fsys iofault.FS, path string, budget *fdlimit.Budget, retry iofault.RetryPolicy) (*segPayload, error) {
	var data []byte
	err := retry.Do(ctx, func() error {
		if budget != nil {
			budget.Acquire()
		}
		var rerr error
		data, rerr = fsys.ReadFile(path)
		if budget != nil {
			budget.Release()
		}
		return rerr
	})
	if err != nil {
		return nil, fmt.Errorf("faultstore: %w", err)
	}
	return decodeSegment(data)
}

// Events reads the store as the standard stream contract: a stats
// prologue sized to exactly what the query delivers, every matching
// fault in extract.Compare order, then every matching session in
// eventlog.CompareSessions order. Matching segments are decoded by a
// bounded worker pool (descriptors metered by the store's budget) and
// k-way merged through the shared block delivery layer; segments the
// index rules out are never opened. Cancelling ctx drains the pool and
// yields a final (zero Event, ctx.Err()) pair, leak-free, exactly like
// the other sources.
func (s *Store) Events(ctx context.Context, q Query) iter.Seq2[stream.Event, error] {
	return func(yield func(stream.Event, error) bool) {
		faultStreams, sessionStreams, stats, err := s.collect(ctx, q)
		if err != nil {
			yield(stream.Event{}, err)
			return
		}
		stream.Deliver(ctx, yield, stats, faultStreams, sessionStreams)
	}
}

// decoded is one segment's filtered payload, tagged with its manifest
// position so the merge's stream order is deterministic.
type decoded struct {
	pos      int
	faults   []extract.Fault
	sessions []eventlog.Session
	err      error
}

// collect prunes, decodes and filters the matching segments, returning
// the per-segment sorted streams in manifest order plus the exact stats
// of what survived the predicates.
func (s *Store) collect(ctx context.Context, q Query) ([][]extract.Fault, [][]eventlog.Session, *stream.Stats, error) {
	set := q.nodeSet()
	var matched []int
	for i := range s.man.segs {
		if q.matchSeg(&s.man.segs[i], set) {
			matched = append(matched, i)
		} else {
			s.pruned.Add(1)
		}
	}

	workers := q.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(matched))

	jobs := make(chan int) // index into matched
	results := make(chan decoded, max(workers, 1))
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain the queue without reading
				}
				e := &s.man.segs[matched[pos]]
				d := decoded{pos: pos}
				p, err := readSegmentFile(ctx, s.fs, filepath.Join(s.dir, e.name), s.budget, s.retry)
				s.opened.Add(1)
				switch {
				case err == nil:
					d.faults = filterFaults(p.faults, &q, set)
					d.sessions = filterSessions(p.sessions, &q, set)
				case q.Degraded && ctx.Err() == nil:
					// Degraded read: the segment is skipped, not fatal.
					// Its diagnostics — and the index's account of what
					// was lost — go to the health report.
					q.Health.record(SegmentError{
						Segment:  e.name,
						Err:      err,
						Faults:   e.nFaults,
						Sessions: e.nSessions,
					})
				default:
					d.err = fmt.Errorf("%s: %w", e.name, err)
				}
				select {
				case results <- d:
				case <-done:
				}
			}
		}()
	}
	go func() {
	feed:
		for pos := range matched {
			select {
			case jobs <- pos:
			case <-done:
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	parts := make([]decoded, len(matched))
	firstErr := -1
	for d := range results {
		if ctx.Err() != nil {
			continue // cancelled: keep draining so the pool exits
		}
		if d.err != nil {
			// Deterministic failure: remember the lowest-positioned
			// segment's error no matter which worker tripped first.
			if firstErr == -1 || d.pos < firstErr {
				firstErr = d.pos
				parts[d.pos] = d
			}
			continue
		}
		parts[d.pos] = d
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	if firstErr != -1 {
		return nil, nil, nil, parts[firstErr].err
	}

	stats := &stream.Stats{RawLogsByNode: make(map[cluster.NodeID]int64)}
	faultStreams := make([][]extract.Fault, 0, len(parts))
	sessionStreams := make([][]eventlog.Session, 0, len(parts))
	for i := range parts {
		p := &parts[i]
		if len(p.faults) > 0 {
			faultStreams = append(faultStreams, p.faults)
			stats.Faults += len(p.faults)
			for j := range p.faults {
				stats.RawLogs += int64(p.faults[j].Logs)
				stats.RawLogsByNode[p.faults[j].Node] += int64(p.faults[j].Logs)
			}
		}
		if len(p.sessions) > 0 {
			sessionStreams = append(sessionStreams, p.sessions)
			stats.Sessions += len(p.sessions)
		}
	}
	return faultStreams, sessionStreams, stats, nil
}

// filterFaults applies the exact per-record predicate in place (the
// slice is decode-owned).
func filterFaults(fs []extract.Fault, q *Query, set map[cluster.NodeID]bool) []extract.Fault {
	if set == nil && !q.HasRange {
		return fs
	}
	out := fs[:0]
	for i := range fs {
		if (set == nil || set[fs[i].Node]) && q.matchAt(fs[i].FirstAt) {
			out = append(out, fs[i])
		}
	}
	return out
}

// filterSessions is filterFaults for the session half.
func filterSessions(ss []eventlog.Session, q *Query, set map[cluster.NodeID]bool) []eventlog.Session {
	if set == nil && !q.HasRange {
		return ss
	}
	out := ss[:0]
	for i := range ss {
		if (set == nil || set[ss[i].Host]) && q.matchAt(ss[i].From) {
			out = append(out, ss[i])
		}
	}
	return out
}
