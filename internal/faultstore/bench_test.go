package faultstore

import (
	"context"
	"slices"
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
	"unprotected/internal/stream"
	"unprotected/internal/timebase"
)

// benchSegment builds a realistically sized segment image: 10k faults
// and 1k sessions, the shape a month-window shard of the full campaign
// produces.
func benchSegment() []byte {
	faults := make([]extract.Fault, 0, 10000)
	for i := 0; i < 10000; i++ {
		at := timebase.T(i * 60)
		f := synthFault(i%30+1, i%14+1, uint32(i*37), at, at+timebase.T(i%600), i%50+1,
			0xffffffff, 0xffffffff^uint32(1<<(i%32)))
		f.TempC = 20 + float64(i%400)/10
		f = extract.Classify(f.RawRun)
		faults = append(faults, f)
	}
	extract.SortFaults(faults)
	sessions := make([]eventlog.Session, 0, 1000)
	for i := 0; i < 1000; i++ {
		from := timebase.T(i * 600)
		sessions = append(sessions, eventlog.Session{
			Host: cluster.NodeID{Blade: i%30 + 1, SoC: i%14 + 1},
			From: from, To: from + 590, AllocBytes: 3 << 30,
		})
	}
	slices.SortFunc(sessions, func(a, b eventlog.Session) int {
		return eventlog.CompareSessions(&a, &b)
	})
	return encodeSegment(0, 0, faults, sessions)
}

// BenchmarkStoreDecode measures the columnar codec's read path — the
// store's equivalent of text parsing. The acceptance floor is 4× the
// text parser's MB/s (BenchmarkSubstrateParse in BENCH_PR6.json).
func BenchmarkStoreDecode(b *testing.B) {
	data := benchSegment()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeSegment(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQueryPruned measures a single-node query against a
// many-segment store: the manifest prunes most segments before any I/O,
// so the cost is one manifest scan plus the few matching decodes.
func BenchmarkStoreQueryPruned(b *testing.B) {
	dir := b.TempDir()
	var faults []extract.Fault
	for i := 0; i < 4096; i++ {
		at := timebase.T(i * 3600)
		faults = append(faults, synthFault(i%64+1, i%14+1, uint32(i), at, at, 1,
			0xffffffff, 0xfffffffe))
	}
	extract.SortFaults(faults)
	logDir := b.TempDir()
	if err := logstore.Export(nil, faults, logDir); err != nil {
		b.Fatal(err)
	}
	if _, err := Ingest(context.Background(), logDir, dir,
		WithShards(16), WithWindow(240*time.Hour)); err != nil {
		b.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	target := cluster.NodeID{Blade: 5, SoC: 5}
	q := Query{Nodes: []cluster.NodeID{target}, Workers: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for ev, err := range s.Events(context.Background(), q) {
			if err != nil {
				b.Fatal(err)
			}
			if ev.Kind == stream.KindFault {
				n++
			}
		}
		if n == 0 {
			b.Fatal("pruned query returned nothing")
		}
	}
	b.StopTimer()
	if s.SegmentsPruned() == 0 {
		b.Fatal("no segments were pruned")
	}
}
