package faultstore

import (
	"bytes"
	"context"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
	"unprotected/internal/logstore"
	"unprotected/internal/stream"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// synthFault builds a classified fault for synthetic datasets.
func synthFault(blade, soc int, addr uint32, first, last timebase.T, logs int, exp, act uint32) extract.Fault {
	return extract.Classify(extract.RawRun{
		Node: cluster.NodeID{Blade: blade, SoC: soc}, Addr: dram.Addr(addr),
		FirstAt: first, LastAt: last, Logs: logs,
		Expected: exp, Actual: act, TempC: thermal.NoReading,
	})
}

// exportDir writes a synthetic dataset as a text log directory.
func exportDir(t *testing.T, faults []extract.Fault, sessions []eventlog.Session) string {
	t.Helper()
	dir := t.TempDir()
	if err := logstore.Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// drain collects everything a query delivers.
func drain(t *testing.T, s *Store, q Query) ([]extract.Fault, []eventlog.Session, *stream.Stats) {
	t.Helper()
	var faults []extract.Fault
	var sessions []eventlog.Session
	var stats stream.Stats
	for ev, err := range s.Events(context.Background(), q) {
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case stream.KindStats:
			stats = *ev.Stats
		case stream.KindFault:
			faults = append(faults, ev.Fault)
		case stream.KindSession:
			sessions = append(sessions, ev.Session)
		}
	}
	return faults, sessions, &stats
}

// readFiles snapshots a directory as name -> content.
func readFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

// TestStoreRoundTripCampaign is the fidelity acceptance test: the seed-42
// campaign exported to text, ingested into the store and exported again
// must reproduce the source directory byte for byte — text stays the
// interchange format, the store only changes the query cost.
func TestStoreRoundTripCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	ctx := context.Background()
	res := campaign.Run(campaign.DefaultConfig(42))
	src := t.TempDir()
	if err := logstore.Export(res.Sessions, res.Faults, src); err != nil {
		t.Fatal(err)
	}

	storeDir := t.TempDir()
	stats, err := Ingest(ctx, src, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults != len(res.Faults) || stats.Sessions != len(res.Sessions) {
		t.Fatalf("ingested %d faults / %d sessions, want %d / %d",
			stats.Faults, stats.Sessions, len(res.Faults), len(res.Sessions))
	}
	if stats.Segments < 2 {
		t.Fatalf("campaign ingest produced %d segments, want a partitioned store", stats.Segments)
	}

	out := t.TempDir()
	if err := Export(ctx, storeDir, out, 0); err != nil {
		t.Fatal(err)
	}
	want, got := readFiles(t, src), readFiles(t, out)
	if len(got) != len(want) {
		t.Fatalf("exported %d files, want %d", len(got), len(want))
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Fatalf("file %s differs after store round trip", name)
		}
	}
}

// TestStoreQueryNodeSubsetPruning pins the index's point: a node-subset
// query must open exactly the segments whose node set intersects the
// subset and skip every other one without any I/O.
func TestStoreQueryNodeSubsetPruning(t *testing.T) {
	var faults []extract.Fault
	hour := timebase.T(3600)
	for blade := 1; blade <= 6; blade++ {
		for w := 0; w < 3; w++ {
			at := timebase.T(w)*hour + timebase.T(blade)
			faults = append(faults, synthFault(blade, 2, uint32(blade*100+w), at, at, 1, 0xffffffff, 0xfffffffe))
		}
	}
	extract.SortFaults(faults)
	dir := exportDir(t, faults, nil)

	storeDir := t.TempDir()
	if _, err := Ingest(context.Background(), dir, storeDir,
		WithShards(4), WithWindow(time.Hour)); err != nil {
		t.Fatal(err)
	}
	s, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Segments() < 6 {
		t.Fatalf("store has %d segments, want a multi-shard multi-window layout", s.Segments())
	}

	target := cluster.NodeID{Blade: 3, SoC: 2}
	wantOpen := 0
	for _, e := range s.man.segs {
		if slices.Contains(e.nodes, target) {
			wantOpen++
		}
	}
	if wantOpen == 0 || wantOpen == s.Segments() {
		t.Fatalf("degenerate layout: %d of %d segments hold %v", wantOpen, s.Segments(), target)
	}

	got, _, stats := drain(t, s, Query{Nodes: []cluster.NodeID{target}})
	if len(got) != 3 {
		t.Fatalf("query returned %d faults, want 3", len(got))
	}
	for _, f := range got {
		if f.Node != target {
			t.Fatalf("query leaked fault of node %v", f.Node)
		}
	}
	if stats.Faults != 3 || stats.RawLogs != 3 {
		t.Fatalf("stats prologue %+v does not match the filtered delivery", stats)
	}
	if opened := s.SegmentsOpened(); opened != int64(wantOpen) {
		t.Fatalf("opened %d segments, want exactly the %d whose index holds %v", opened, wantOpen, target)
	}
	if pruned := s.SegmentsPruned(); pruned != int64(s.Segments()-wantOpen) {
		t.Fatalf("pruned %d segments, want %d", pruned, s.Segments()-wantOpen)
	}
}

// TestStoreQueryTimeRangePruning is the time half of the pruning
// contract, plus the exact per-record [From, To) filter within a
// partially overlapping segment.
func TestStoreQueryTimeRangePruning(t *testing.T) {
	var faults []extract.Fault
	hour := timebase.T(3600)
	for w := 0; w < 4; w++ {
		for i := 0; i < 2; i++ {
			at := timebase.T(w)*hour + timebase.T(i*1800)
			faults = append(faults, synthFault(1, 2, uint32(w*10+i), at, at, 1, 0xffffffff, 0x7fffffff))
		}
	}
	extract.SortFaults(faults)
	dir := exportDir(t, faults, nil)

	storeDir := t.TempDir()
	if _, err := Ingest(context.Background(), dir, storeDir,
		WithShards(1), WithWindow(time.Hour)); err != nil {
		t.Fatal(err)
	}
	s, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 4 {
		t.Fatalf("store has %d segments, want 4 one-hour windows", s.Segments())
	}

	// [1h, 2h30m): all of window 1, the first fault of window 2.
	got, _, _ := drain(t, s, Query{HasRange: true, From: hour, To: 2*hour + 1800})
	if len(got) != 3 {
		t.Fatalf("range query returned %d faults, want 3", len(got))
	}
	for _, f := range got {
		if f.FirstAt < hour || f.FirstAt >= 2*hour+1800 {
			t.Fatalf("fault at %d escaped the [%d, %d) range", f.FirstAt, hour, 2*hour+1800)
		}
	}
	if opened := s.SegmentsOpened(); opened != 2 {
		t.Fatalf("opened %d segments, want the 2 overlapping windows", opened)
	}
	if pruned := s.SegmentsPruned(); pruned != 2 {
		t.Fatalf("pruned %d segments, want 2", pruned)
	}
}

// TestStoreCompactMergesSplitRuns pins the compaction semantics: a run
// cut in two by an ingest-batch boundary — same node, address and words,
// continuation within the §II-C gap — is one fault again after Compact,
// with the combined extent and raw-log weight.
func TestStoreCompactMergesSplitRuns(t *testing.T) {
	ctx := context.Background()
	first := []extract.Fault{
		synthFault(1, 2, 100, 1000, 1050, 5, 0xffffffff, 0xfffffffe),
		synthFault(4, 3, 200, 1010, 1010, 1, 0xffffffff, 0xffff7fff),
	}
	second := []extract.Fault{
		// Continues the first run: starts 30 s after its end (< 60 s gap).
		synthFault(1, 2, 100, 1080, 1120, 3, 0xffffffff, 0xfffffffe),
	}
	storeDir := t.TempDir()
	if _, err := Ingest(ctx, exportDir(t, first, nil), storeDir); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(ctx, exportDir(t, second, nil), storeDir); err != nil {
		t.Fatal(err)
	}

	s, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	before, _, _ := drain(t, s, Query{})
	if len(before) != 3 {
		t.Fatalf("two-generation store delivers %d faults, want 3 (split run uncollapsed)", len(before))
	}

	stats, err := Compact(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsBefore != 3 || stats.FaultsAfter != 2 {
		t.Fatalf("compact collapsed %d -> %d faults, want 3 -> 2", stats.FaultsBefore, stats.FaultsAfter)
	}
	if stats.SegmentsAfter >= stats.SegmentsBefore {
		t.Fatalf("compact kept %d of %d segments, want fewer", stats.SegmentsAfter, stats.SegmentsBefore)
	}

	s, err = Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	after, _, _ := drain(t, s, Query{})
	if len(after) != 2 {
		t.Fatalf("compacted store delivers %d faults, want 2", len(after))
	}
	var merged *extract.Fault
	for i := range after {
		if after[i].Node == (cluster.NodeID{Blade: 1, SoC: 2}) {
			merged = &after[i]
		}
	}
	if merged == nil {
		t.Fatal("merged run missing")
	}
	if merged.FirstAt != 1000 || merged.LastAt != 1120 || merged.Logs != 8 {
		t.Fatalf("merged run %+v, want FirstAt=1000 LastAt=1120 Logs=8", merged)
	}

	// Stale generation files are gone; only manifest-named segments remain.
	kept := map[string]bool{ManifestName: true}
	for _, e := range s.man.segs {
		kept[e.name] = true
	}
	files := readFiles(t, storeDir)
	for name := range files {
		if !kept[name] {
			t.Fatalf("stale segment %s survived compaction", name)
		}
	}

	// Compaction is idempotent: everything now sits in one generation, so
	// a second pass must be a pure re-bucket even though the merged run's
	// neighbours may fall within the §II-C gap.
	again, err := Compact(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if again.FaultsBefore != again.FaultsAfter {
		t.Fatalf("re-compact changed %d -> %d faults, want a pure re-bucket",
			again.FaultsBefore, again.FaultsAfter)
	}
}

// TestStoreCompactSingleGenerationIsPureRebucket pins the replay
// contract inside compaction: pre-collapsed log lines map to runs
// verbatim, so two same-(node, address, words) faults within the §II-C
// gap that arrived in ONE ingest were deliberately kept separate by the
// original extraction, and Compact must not merge them — only runs split
// across ingest generations may collapse. Export before and after
// compaction must stay byte-identical.
func TestStoreCompactSingleGenerationIsPureRebucket(t *testing.T) {
	ctx := context.Background()
	faults := []extract.Fault{
		synthFault(1, 2, 100, 1000, 1050, 5, 0xffffffff, 0xfffffffe),
		// Same node, address and words, 30 s after the previous run's end:
		// inside the gap, but a separate pre-collapsed line.
		synthFault(1, 2, 100, 1080, 1120, 3, 0xffffffff, 0xfffffffe),
	}
	storeDir := t.TempDir()
	if _, err := Ingest(ctx, exportDir(t, faults, nil), storeDir); err != nil {
		t.Fatal(err)
	}
	before := t.TempDir()
	if err := Export(ctx, storeDir, before, 0); err != nil {
		t.Fatal(err)
	}

	stats, err := Compact(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsBefore != 2 || stats.FaultsAfter != 2 {
		t.Fatalf("single-generation compact changed %d -> %d faults, want 2 -> 2",
			stats.FaultsBefore, stats.FaultsAfter)
	}

	after := t.TempDir()
	if err := Export(ctx, storeDir, after, 0); err != nil {
		t.Fatal(err)
	}
	b, a := readFiles(t, before), readFiles(t, after)
	if len(b) != len(a) {
		t.Fatalf("export changed file set: %d files before, %d after", len(b), len(a))
	}
	for name, data := range b {
		if !bytes.Equal(data, a[name]) {
			t.Fatalf("export of %s changed across a single-generation compact", name)
		}
	}
}

// TestStoreCompactNeverReusesLiveSegmentNames pins the crash-consistency
// contract of compaction: the manifest swap is the commit point, so no
// output segment may take a name the pre-compact manifest references —
// an in-place overwrite before the swap would tear files a crashed-out
// (or concurrently open) store still points at.
func TestStoreCompactNeverReusesLiveSegmentNames(t *testing.T) {
	ctx := context.Background()
	batches := [][]extract.Fault{
		{synthFault(1, 2, 100, 1000, 1050, 5, 0xffffffff, 0xfffffffe)},
		{synthFault(3, 4, 200, 2000, 2010, 2, 0xffffffff, 0xffff7fff)},
	}
	storeDir := t.TempDir()
	for _, b := range batches {
		if _, err := Ingest(ctx, exportDir(t, b, nil), storeDir); err != nil {
			t.Fatal(err)
		}
	}
	before, err := readManifest(iofault.OS, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[string]bool, len(before.segs))
	for _, e := range before.segs {
		live[e.name] = true
	}

	if _, err := Compact(storeDir); err != nil {
		t.Fatal(err)
	}
	after, err := readManifest(iofault.OS, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range after.segs {
		if live[e.name] {
			t.Fatalf("compact wrote %s, a name the live manifest referenced", e.name)
		}
	}
}

// TestStoreWindowPersistence pins that the time-partition length is a
// property of the store, not of the call: Compact re-buckets with the
// window the manifest persists (it used to silently reset a WithWindow
// store to the 30-day default), an additive ingest adopts it, and an
// explicit contradiction is an error.
func TestStoreWindowPersistence(t *testing.T) {
	ctx := context.Background()
	var faults []extract.Fault
	hour := timebase.T(3600)
	for w := 0; w < 4; w++ {
		at := timebase.T(w) * hour
		faults = append(faults, synthFault(1, 2, uint32(w), at, at, 1, 0xffffffff, 0xfffffffe))
	}
	extract.SortFaults(faults)
	storeDir := t.TempDir()
	if _, err := Ingest(ctx, exportDir(t, faults, nil), storeDir,
		WithShards(1), WithWindow(time.Hour)); err != nil {
		t.Fatal(err)
	}

	man, err := readManifest(iofault.OS, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if man.windowSeconds != 3600 {
		t.Fatalf("manifest persists window %ds, want 3600", man.windowSeconds)
	}

	stats, err := Compact(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsAfter != 4 {
		t.Fatalf("compact re-bucketed into %d segments, want the store's 4 one-hour windows", stats.SegmentsAfter)
	}

	// An additive ingest without WithWindow adopts the stored hour window
	// instead of re-bucketing new data at the 30-day default.
	more := []extract.Fault{synthFault(1, 2, 99, 5*hour, 5*hour, 1, 0xffffffff, 0xfffffffe)}
	if _, err := Ingest(ctx, exportDir(t, more, nil), storeDir, WithShards(1)); err != nil {
		t.Fatal(err)
	}
	man, err = readManifest(iofault.OS, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if man.windowSeconds != 3600 {
		t.Fatalf("additive ingest changed the window to %ds, want 3600", man.windowSeconds)
	}
	for _, e := range man.segs {
		if e.nFaults == 1 && e.minAt == 5*hour && e.window != 5 {
			t.Fatalf("additive ingest bucketed the new fault into window %d, want hour window 5", e.window)
		}
	}

	// An explicit WithWindow that contradicts the store is an error.
	if _, err := Ingest(ctx, exportDir(t, more, nil), storeDir, WithWindow(2*time.Hour)); err == nil ||
		!strings.Contains(err.Error(), "window") {
		t.Fatalf("conflicting WithWindow error %v, want a window mismatch", err)
	}
}

// TestStoreQuerySurvivesIdleWriterCache is the shared-budget liveness
// regression: a logstore writer cache holds descriptors indefinitely, so
// when it sits idle on a full budget a store query must still find
// tokens — the reserve withheld from cache-style holders — instead of
// blocking forever on a release that never comes.
func TestStoreQuerySurvivesIdleWriterCache(t *testing.T) {
	budget := fdlimit.NewReservedBudget(8, 2)

	// Fill the writer cache to its ceiling (cap - reserve) and leave it
	// idle, holding every token a cache-style holder may claim.
	ws, err := logstore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ws.SetBudget(budget)
	for n := 0; n < 10; n++ {
		rec := eventlog.Record{
			Kind: eventlog.KindStart, At: timebase.T(n),
			Host: cluster.NodeID{Blade: n + 1, SoC: 1}, AllocBytes: 1 << 30,
			TempC: thermal.NoReading,
		}
		if err := ws.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := budget.InUse(); got != 6 {
		t.Fatalf("writer cache holds %d descriptors, want cap-reserve = 6", got)
	}

	faults := []extract.Fault{synthFault(1, 2, 7, 100, 200, 3, 0xffffffff, 0xfffffffe)}
	storeDir := t.TempDir()
	if _, err := Ingest(context.Background(), exportDir(t, faults, nil), storeDir); err != nil {
		t.Fatal(err)
	}
	s, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetBudget(budget)

	type result struct {
		faults int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		var r result
		for ev, err := range s.Events(context.Background(), Query{}) {
			if err != nil {
				r.err = err
				break
			}
			if ev.Kind == stream.KindFault {
				r.faults++
			}
		}
		done <- r
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.faults != 1 {
			t.Fatalf("query returned %d faults, want 1", r.faults)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("store query deadlocked against an idle writer cache holding the budget")
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCodecCorruption pins the decoder's refusal to half-trust
// damaged storage: bad magic, flipped payload bytes, inconsistent counts
// and invalid flags are all hard errors, never silent data.
func TestStoreCodecCorruption(t *testing.T) {
	faults := []extract.Fault{synthFault(1, 2, 7, 100, 200, 3, 0xffffffff, 0xfffffffe)}
	sessions := []eventlog.Session{{Host: cluster.NodeID{Blade: 1, SoC: 2}, From: 50, To: 300, AllocBytes: 1 << 20}}
	data := encodeSegment(0, 0, faults, sessions)

	if p, err := decodeSegment(data); err != nil {
		t.Fatal(err)
	} else if len(p.faults) != 1 || p.faults[0] != faults[0] || len(p.sessions) != 1 || p.sessions[0] != sessions[0] {
		t.Fatalf("clean decode mangled the payload: %+v", p)
	}

	reseal := func(body []byte) []byte {
		return le.AppendUint32(slices.Clone(body), crc32.Checksum(body, crcTable))
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"short", data[:10], "shorter than header"},
		{"magic", reseal(append([]byte("XXS1"), data[4:len(data)-4]...)), "bad magic"},
		{"flipped byte", func() []byte {
			bad := slices.Clone(data)
			bad[segHeaderLen] ^= 0x40
			return bad
		}(), "CRC mismatch"},
		{"count mismatch", func() []byte {
			body := slices.Clone(data[:len(data)-4])
			le.PutUint32(body[32:], 2) // claim 2 faults in a 1-fault body
			return reseal(body)
		}(), "want"},
		{"truncation flag", func() []byte {
			body := slices.Clone(data[:len(data)-4])
			body[len(body)-1] = 7 // the flag column is the segment's tail
			return reseal(body)
		}(), "truncation flag"},
	}
	for _, tc := range cases {
		_, err := decodeSegment(tc.data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}

	man := encodeManifest(&manifest{segs: []segMeta{{name: "seg", nodes: []cluster.NodeID{{Blade: 1, SoC: 2}}}}})
	if _, err := decodeManifest(man); err != nil {
		t.Fatal(err)
	}
	badMan := slices.Clone(man)
	badMan[8] ^= 1
	if _, err := decodeManifest(badMan); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("manifest corruption error %v, want CRC mismatch", err)
	}
	if _, err := decodeManifest(man[:5]); err == nil {
		t.Fatal("truncated manifest accepted")
	}

	// A CRC-valid manifest whose declared count dwarfs its body must fail
	// on the entry checks, not attempt a multi-hundred-GB preallocation.
	hugeCount := slices.Clone(man[:len(man)-4])
	le.PutUint32(hugeCount[12:], 0xfffffff0)
	hugeCount = le.AppendUint32(hugeCount, crc32.Checksum(hugeCount, crcTable))
	if _, err := decodeManifest(hugeCount); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("inflated segment count error %v, want truncated entry", err)
	}
}

// TestStoreThousandSegmentFDBudget is the shared-descriptor regression
// test: a query fanning out over 1000 segments with more workers than
// the budget allows must never hold more descriptors than the cap.
func TestStoreThousandSegmentFDBudget(t *testing.T) {
	dir := t.TempDir()
	const segments = 1000
	man := &manifest{}
	for i := 0; i < segments; i++ {
		f := synthFault(i%30+1, i%14+1, uint32(i), timebase.T(i*100), timebase.T(i*100), 1, 0xffffffff, 0xfffffffe)
		meta, _, err := writeSegment(iofault.OS, dir, uint32(i%8), int64(i), 0, []extract.Fault{f}, nil)
		if err != nil {
			t.Fatal(err)
		}
		man.segs = append(man.segs, meta)
	}
	if err := writeManifest(iofault.OS, dir, man); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 16
	budget := fdlimit.NewBudget(cap)
	s.SetBudget(budget)
	faults, _, _ := drain(t, s, Query{Workers: 64})
	if len(faults) != segments {
		t.Fatalf("query returned %d faults, want %d", len(faults), segments)
	}
	if !slices.IsSortedFunc(faults, func(a, b extract.Fault) int { return extract.Compare(&a, &b) }) {
		t.Fatal("merged delivery is not in canonical order")
	}
	if got := budget.MaxInUse(); got > cap {
		t.Fatalf("query held %d descriptors at once, budget caps at %d", got, cap)
	}
	if opened := s.SegmentsOpened(); opened != segments {
		t.Fatalf("opened %d segments, want all %d (no predicate)", opened, segments)
	}
}

// TestStoreIngestOptionValidation pins the option errors.
func TestStoreIngestOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Ingest(ctx, t.TempDir(), t.TempDir(), WithShards(0)); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := Ingest(ctx, t.TempDir(), t.TempDir(), WithWindow(time.Millisecond)); err == nil {
		t.Fatal("sub-second window accepted")
	}
	if _, err := Ingest(ctx, t.TempDir(), t.TempDir(), WithIngestWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open of an empty directory succeeded")
	}
}

// TestStoreQueryCancellation pins leak-free wind-down: cancelling the
// context mid-stream must surface ctx.Err() and leave no goroutine
// holding budget tokens.
func TestStoreQueryCancellation(t *testing.T) {
	var faults []extract.Fault
	for i := 0; i < 50; i++ {
		faults = append(faults, synthFault(i%6+1, 2, uint32(i), timebase.T(i*3600), timebase.T(i*3600), 1, 0xffffffff, 0xfffffffe))
	}
	extract.SortFaults(faults)
	storeDir := t.TempDir()
	if _, err := Ingest(context.Background(), exportDir(t, faults, nil), storeDir,
		WithShards(4), WithWindow(time.Hour)); err != nil {
		t.Fatal(err)
	}
	s, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var last error
	for _, err := range s.Events(ctx, Query{}) {
		last = err
	}
	if last != context.Canceled {
		t.Fatalf("cancelled query ended with %v, want context.Canceled", last)
	}
	budget := fdlimit.NewBudget(4)
	s.SetBudget(budget)
	if got := budget.InUse(); got != 0 {
		t.Fatalf("%d descriptors still held after cancellation", got)
	}
}
