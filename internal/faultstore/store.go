package faultstore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"slices"
	"time"

	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
	"unprotected/internal/kway"
	"unprotected/internal/logstore"
	"unprotected/internal/stream"
)

// IngestOption configures Ingest.
type IngestOption func(*ingestOptions) error

type ingestOptions struct {
	shards        int
	windowSeconds int64
	windowSet     bool // WithWindow given explicitly
	workers       int
	fsys          iofault.FS
}

// WithIngestFS routes every I/O operation of this ingest — reading the
// text logs, writing segments, committing the manifest — through fsys.
// The default is the OS passthrough; chaos tests inject an
// iofault.Injector here.
func WithIngestFS(fsys iofault.FS) IngestOption {
	return func(o *ingestOptions) error {
		if fsys == nil {
			return fmt.Errorf("faultstore: nil FS")
		}
		o.fsys = fsys
		return nil
	}
}

// WithShards sets the number of node-hash shards for the segments this
// ingest writes (default DefaultShards). An additive ingest into an
// existing store may use a different shard count; queries merge across
// generations regardless.
func WithShards(n int) IngestOption {
	return func(o *ingestOptions) error {
		if n < 1 {
			return fmt.Errorf("faultstore: shards must be >= 1, got %d", n)
		}
		o.shards = n
		return nil
	}
}

// WithWindow sets the time-partition length (default DefaultWindow,
// minimum one second). The window is a property of the store, persisted
// in the manifest at creation: an additive ingest into an existing store
// adopts the stored window, and an explicit WithWindow that contradicts
// it is an error — Compact re-buckets with the stored window, so one
// store never mixes partition granularities.
func WithWindow(d time.Duration) IngestOption {
	return func(o *ingestOptions) error {
		if d < time.Second {
			return fmt.Errorf("faultstore: window must be >= 1s, got %v", d)
		}
		o.windowSeconds = int64(d / time.Second)
		o.windowSet = true
		return nil
	}
}

// WithIngestWorkers bounds the text-replay loader pool feeding the
// ingest (0 selects GOMAXPROCS).
func WithIngestWorkers(n int) IngestOption {
	return func(o *ingestOptions) error {
		if n < 0 {
			return fmt.Errorf("faultstore: workers must be >= 0, got %d", n)
		}
		o.workers = n
		return nil
	}
}

// IngestStats summarizes one Ingest.
type IngestStats struct {
	Faults   int
	Sessions int
	RawLogs  int64
	Segments int   // segments this ingest wrote
	Bytes    int64 // segment bytes this ingest wrote
}

// bucketKey addresses one (shard, window) cell.
type bucketKey struct {
	shard  uint32
	window int64
}

// bucket accumulates one cell's payload during ingest.
type bucket struct {
	faults   []extract.Fault
	sessions []eventlog.Session
}

// Ingest streams the text log directory logDir through the replay
// pipeline and writes its extracted dataset into the store at storeDir,
// creating the store if needed and appending a new segment generation if
// it already exists. Faults arrive from the loader in canonical
// extract.Compare order and sessions in eventlog.CompareSessions order,
// so every bucket — an order-preserving subsequence — is born sorted and
// segments never need a sort of their own.
func Ingest(ctx context.Context, logDir, storeDir string, opts ...IngestOption) (*IngestStats, error) {
	o := ingestOptions{shards: DefaultShards, windowSeconds: int64(DefaultWindow / time.Second), fsys: iofault.OS}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.fsys.MkdirAll(storeDir, 0o755); err != nil {
		return nil, fmt.Errorf("faultstore: %w", err)
	}
	man, err := readManifest(o.fsys, storeDir)
	if errors.Is(err, fs.ErrNotExist) {
		man = &manifest{windowSeconds: o.windowSeconds}
	} else if err != nil {
		return nil, err
	} else if man.windowSeconds > 0 {
		// The stored window is authoritative for an existing store: adopt
		// it, and reject an explicit contradiction instead of silently
		// mixing partition granularities.
		if o.windowSet && o.windowSeconds != man.windowSeconds {
			return nil, fmt.Errorf("faultstore: store at %s was created with a %ds window, ingest requested %ds",
				storeDir, man.windowSeconds, o.windowSeconds)
		}
		o.windowSeconds = man.windowSeconds
	} else {
		man.windowSeconds = o.windowSeconds
	}
	gen := man.nextGen()

	stats := &IngestStats{}
	buckets := make(map[bucketKey]*bucket)
	cell := func(k bucketKey) *bucket {
		b, ok := buckets[k]
		if !ok {
			b = &bucket{}
			buckets[k] = b
		}
		return b
	}
	for ev, err := range logstore.EventsFS(ctx, logDir, o.workers, o.fsys) {
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case stream.KindFault:
			f := ev.Fault
			k := bucketKey{shardOf(f.Node, o.shards), windowOf(f.FirstAt, o.windowSeconds)}
			b := cell(k)
			b.faults = append(b.faults, f)
			stats.Faults++
			stats.RawLogs += int64(f.Logs)
		case stream.KindSession:
			s := ev.Session
			k := bucketKey{shardOf(s.Host, o.shards), windowOf(s.From, o.windowSeconds)}
			b := cell(k)
			b.sessions = append(b.sessions, s)
			stats.Sessions++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compareBucketKeys)
	// Until the manifest rename commits, every segment this ingest wrote
	// is provisional: on any error the written files are deleted again
	// (best-effort — a crash also kills the cleanup, which is exactly the
	// orphan case fsck exists for).
	var written []string
	cleanup := func() {
		for _, name := range written {
			o.fsys.Remove(filepath.Join(storeDir, name))
		}
	}
	for _, k := range keys {
		b := buckets[k]
		meta, n, err := writeSegment(o.fsys, storeDir, k.shard, k.window, gen, b.faults, b.sessions)
		if err != nil {
			cleanup()
			return nil, err
		}
		written = append(written, meta.name)
		man.segs = append(man.segs, meta)
		stats.Segments++
		stats.Bytes += n
	}
	if err := writeManifest(o.fsys, storeDir, man); err != nil {
		if !errors.Is(err, errSyncAfterCommit) {
			cleanup()
		}
		return nil, err
	}
	return stats, nil
}

func compareBucketKeys(a, b bucketKey) int {
	switch {
	case a.shard != b.shard:
		return int(a.shard) - int(b.shard)
	case a.window < b.window:
		return -1
	case a.window > b.window:
		return 1
	default:
		return 0
	}
}

// writeSegment encodes, writes and fsyncs one segment file, returning
// its index entry and byte size. The fsync matters: the manifest rename
// is the commit point, and a manifest must never become durable while a
// segment it references can still evaporate from the page cache.
func writeSegment(fsys iofault.FS, dir string, shard uint32, window int64, gen uint32,
	faults []extract.Fault, sessions []eventlog.Session) (segMeta, int64, error) {
	name := segmentName(shard, window, gen)
	path := filepath.Join(dir, name)
	data := encodeSegment(shard, window, faults, sessions)
	if err := fsys.WriteFile(path, data, 0o644); err != nil {
		return segMeta{}, 0, fmt.Errorf("faultstore: %w", err)
	}
	if err := fsys.Sync(path); err != nil {
		return segMeta{}, 0, fmt.Errorf("faultstore: %w", err)
	}
	lo, hi := segBounds(faults, sessions)
	return segMeta{
		name: name, shard: shard, window: window, gen: gen,
		nFaults: len(faults), nSessions: len(sessions),
		minAt: lo, maxAt: hi,
		nodes: nodeSetOf(faults, sessions),
	}, int64(len(data)), nil
}

// readManifest loads and decodes the store index. A missing file returns
// fs.ErrNotExist so callers can distinguish "no store here" from
// corruption.
func readManifest(fsys iofault.FS, dir string) (*manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("faultstore: %w", err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, err
	}
	m.sort()
	return m, nil
}

// writeManifest renders and atomically replaces the store index: the
// rename is the ingest/compact commit point, so a crash mid-write leaves
// the previous manifest — and with it a consistent store — in place.
//
// The fsync ordering is what makes the commit point real on a power
// cut, not just on a process kill:
//
//  1. Sync(dir) — the directory entries of every segment written (and
//     fsynced) before this call become durable, so a durable manifest
//     can never reference a segment whose entry was lost.
//  2. WriteFile + Sync of the tmp manifest — its bytes are durable
//     before the rename can expose them.
//  3. Rename(tmp, MANIFEST) — the atomic commit.
//  4. Sync(dir) — the rename itself becomes durable; until then a
//     power cut falls back to the previous manifest, which is fine:
//     pre-state and post-state are both consistent, a torn hybrid is
//     not reachable.
func writeManifest(fsys iofault.FS, dir string, m *manifest) error {
	m.sort()
	if err := fsys.Sync(dir); err != nil {
		return fmt.Errorf("faultstore: %w", err)
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := fsys.WriteFile(tmp, encodeManifest(m), 0o644); err != nil {
		return fmt.Errorf("faultstore: %w", err)
	}
	if err := fsys.Sync(tmp); err != nil {
		return fmt.Errorf("faultstore: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("faultstore: %w", err)
	}
	if err := fsys.Sync(dir); err != nil {
		// The rename already committed: the new manifest is live and
		// references the segments just written. The caller must report
		// this (the commit may not survive a power cut) but must NOT
		// delete the referenced segments as if the operation had failed
		// before the commit — errSyncAfterCommit is the marker.
		return fmt.Errorf("%w: %w", errSyncAfterCommit, err)
	}
	return nil
}

// errSyncAfterCommit marks a writeManifest failure that happened after
// the rename commit point: the store now references the new segments, so
// error-path cleanup must leave them alone.
var errSyncAfterCommit = errors.New("faultstore: manifest committed, directory sync failed")

// Export renders the store back to a directory of per-node text log
// files — the interchange format — via logstore.Export. The store's
// canonical stream order matches the order the exporter's stable
// per-node sort preserves, so a store ingested from a canonically
// exported directory exports byte-identically (proved by the round-trip
// tests and FuzzSegmentRoundTrip).
func Export(ctx context.Context, storeDir, logDir string, workers int, opts ...StoreOption) error {
	s, err := Open(storeDir, opts...)
	if err != nil {
		return err
	}
	var faults []extract.Fault
	var sessions []eventlog.Session
	for ev, err := range s.Events(ctx, Query{Workers: workers}) {
		if err != nil {
			return err
		}
		switch ev.Kind {
		case stream.KindStats:
			faults = make([]extract.Fault, 0, ev.Stats.Faults)
			sessions = make([]eventlog.Session, 0, ev.Stats.Sessions)
		case stream.KindFault:
			faults = append(faults, ev.Fault)
		case stream.KindSession:
			sessions = append(sessions, ev.Session)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return logstore.ExportFS(sessions, faults, logDir, s.fs)
}

// CompactStats summarizes one Compact.
type CompactStats struct {
	SegmentsBefore, SegmentsAfter int
	FaultsBefore, FaultsAfter     int
}

// CompactOption configures Compact.
type CompactOption func(*compactOptions) error

type compactOptions struct {
	fsys iofault.FS
}

// WithCompactFS routes every I/O operation of this compaction through
// fsys (default: the OS passthrough).
func WithCompactFS(fsys iofault.FS) CompactOption {
	return func(o *compactOptions) error {
		if fsys == nil {
			return fmt.Errorf("faultstore: nil FS")
		}
		o.fsys = fsys
		return nil
	}
}

// Compact rewrites the store one shard at a time: every segment of the
// shard is decoded, the fault streams are k-way merged back into the
// canonical order, runs that ingest-batch boundaries split in two are
// re-collapsed (same node, address, expected and actual word, next run
// starting within the §II-C gap of the previous run's end, and — the
// batch-boundary signature — coming from a different ingest generation
// than the run it continues), and the shard is re-bucketed — using the
// window length the manifest persists — into one segment per window under
// a single fresh generation the current manifest does not reference. No
// live segment file is ever overwritten, so the manifest swap at the end
// stays the commit point: a crash mid-compact leaves the old manifest
// pointing at the old, untouched files (plus unreferenced output orphans
// that a re-run simply overwrites). Sessions are merged
// order-preservingly and never coalesced. After the swap the superseded
// segment files are deleted (best-effort — queries only open what the
// manifest names).
//
// The generation gate is what keeps compaction faithful to the replay
// contract: ingested faults are pre-collapsed lines, and the Collapser
// maps each of those to exactly one run verbatim, so two same-key faults
// within the gap inside ONE ingest were deliberately kept separate by the
// original extraction and must stay separate. Only across generations —
// where a single physical run was cut in two because the batches were
// ingested separately — is merging sound. Compacting a one-generation
// store (or re-compacting a compacted one) is therefore a pure re-bucket:
// FaultsBefore == FaultsAfter.
func Compact(dir string, opts ...CompactOption) (*CompactStats, error) {
	o := compactOptions{fsys: iofault.OS}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	man, err := readManifest(o.fsys, dir)
	if err != nil {
		return nil, err
	}
	stats := &CompactStats{SegmentsBefore: len(man.segs)}
	byShard := make(map[uint32][]segMeta)
	var shards []uint32
	windowSeconds := man.windowSeconds
	if windowSeconds <= 0 {
		windowSeconds = int64(DefaultWindow / time.Second)
	}
	// All output segments share one generation, picked above every live
	// one so their names never collide with files the current manifest
	// references (the crash-consistency contract of the manifest swap).
	outGen := man.nextGen()
	for _, e := range man.segs {
		if _, ok := byShard[e.shard]; !ok {
			shards = append(shards, e.shard)
		}
		byShard[e.shard] = append(byShard[e.shard], e)
		stats.FaultsBefore += e.nFaults
	}
	slices.Sort(shards)

	next := &manifest{windowSeconds: windowSeconds}
	var obsolete []string
	// Output segments are provisional until the manifest swap: on any
	// error the ones already written are deleted again (best-effort — a
	// crash also kills the cleanup, leaving orphans for fsck).
	var written []string
	cleanup := func() {
		for _, name := range written {
			o.fsys.Remove(filepath.Join(dir, name))
		}
	}
	for _, shard := range shards {
		segs := byShard[shard]
		faultStreams := make([][]genFault, 0, len(segs))
		sessionStreams := make([][]eventlog.Session, 0, len(segs))
		for _, e := range segs {
			p, err := readSegmentFile(context.Background(), o.fsys, filepath.Join(dir, e.name), fdlimit.Shared, iofault.DefaultRetry)
			if err != nil {
				cleanup()
				return nil, err
			}
			if len(p.faults) > 0 {
				gfs := make([]genFault, len(p.faults))
				for i, f := range p.faults {
					gfs[i] = genFault{gen: e.gen, Fault: f}
				}
				faultStreams = append(faultStreams, gfs)
			}
			if len(p.sessions) > 0 {
				sessionStreams = append(sessionStreams, p.sessions)
			}
			obsolete = append(obsolete, e.name)
		}
		faults := collapseRuns(mergeFaults(faultStreams))
		sessions := mergeSessions(sessionStreams)
		stats.FaultsAfter += len(faults)

		buckets := make(map[int64]*bucket)
		var windows []int64
		cell := func(w int64) *bucket {
			b, ok := buckets[w]
			if !ok {
				b = &bucket{}
				buckets[w] = b
				windows = append(windows, w)
			}
			return b
		}
		for _, f := range faults {
			b := cell(windowOf(f.FirstAt, windowSeconds))
			b.faults = append(b.faults, f)
		}
		for _, s := range sessions {
			b := cell(windowOf(s.From, windowSeconds))
			b.sessions = append(b.sessions, s)
		}
		slices.Sort(windows)
		for _, w := range windows {
			b := buckets[w]
			meta, _, err := writeSegment(o.fsys, dir, shard, w, outGen, b.faults, b.sessions)
			if err != nil {
				cleanup()
				return nil, err
			}
			written = append(written, meta.name)
			next.segs = append(next.segs, meta)
		}
	}
	stats.SegmentsAfter = len(next.segs)
	if err := writeManifest(o.fsys, dir, next); err != nil {
		if !errors.Is(err, errSyncAfterCommit) {
			cleanup()
		}
		return nil, err
	}
	// Superseded names can never collide with the output (outGen is fresh),
	// so every pre-compact segment is safe to delete after the swap.
	for _, name := range obsolete {
		o.fsys.Remove(filepath.Join(dir, name))
	}
	return stats, nil
}

// genFault is a fault tagged with the generation of the segment it was
// read from, so the compaction collapse can tell batch-split run halves
// (different generations) from deliberately separate same-key runs
// (same generation).
type genFault struct {
	gen uint32
	extract.Fault
}

func compareGenFaults(a, b *genFault) int {
	return extract.Compare(&a.Fault, &b.Fault)
}

// mergeFaults k-way merges per-segment sorted fault streams into one
// canonical sequence, keeping each fault's source generation.
func mergeFaults(streams [][]genFault) []genFault {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]genFault, 0, total)
	for f := range kway.MergeSeq(streams, compareGenFaults) {
		out = append(out, f)
	}
	return out
}

// mergeSessions k-way merges per-segment sorted session streams.
func mergeSessions(streams [][]eventlog.Session) []eventlog.Session {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]eventlog.Session, 0, total)
	for s := range kway.MergeSeq(streams, eventlog.CompareSessions) {
		out = append(out, s)
	}
	return out
}

// collapseRuns re-applies the §II-C run adjacency across batch
// boundaries only: walking the canonical order, a fault whose (node,
// address, expected, actual) matches a still-open run, whose first
// observation falls within the collapse gap of that run's last one, AND
// whose source generation differs from the run's is folded in — the
// run's extent and raw-log weight grow, its identity (first observation,
// temperature) stays, and the run adopts the continuation's generation
// so a third batch can extend it again. Same-generation neighbours are
// never merged: the original extraction already decided they are
// independent faults (pre-collapsed lines map to runs verbatim), and
// re-applying the gap heuristic to them would change the dataset. The
// result is re-sorted because a grown run's LastAt participates in the
// canonical order's tiebreaks.
func collapseRuns(faults []genFault) []extract.Fault {
	type key struct {
		blade, soc int
		addr       uint32
	}
	type run struct {
		idx int // index in out
		gen uint32
	}
	open := make(map[key]run) // key -> the open run for that address
	out := make([]extract.Fault, 0, len(faults))
	for _, f := range faults {
		k := key{f.Node.Blade, f.Node.SoC, uint32(f.Addr)}
		if r, ok := open[k]; ok {
			prev := &out[r.idx]
			if f.gen != r.gen && prev.Expected == f.Expected && prev.Actual == f.Actual &&
				f.FirstAt >= prev.LastAt && int64(f.FirstAt-prev.LastAt) <= extract.DefaultGap {
				prev.LastAt = max(prev.LastAt, f.LastAt)
				prev.Logs += f.Logs
				open[k] = run{idx: r.idx, gen: f.gen}
				continue
			}
		}
		out = append(out, f.Fault)
		open[k] = run{idx: len(out) - 1, gen: f.gen}
	}
	extract.SortFaults(out)
	return out
}
