package faultstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"slices"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// byteReader derives bounded field values from the fuzz input,
// recycling it when exhausted so any input length yields a dataset.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.pos%len(r.data)]
	r.pos++
	return b
}

func (r *byteReader) u32() uint32 {
	var raw [4]byte
	for i := range raw {
		raw[i] = r.next()
	}
	return binary.LittleEndian.Uint32(raw[:])
}

// datasetOf turns fuzz bytes into a valid extracted dataset: classified
// faults with positive extents and weights, sessions with ordered
// bounds — the invariants every real ingest input satisfies.
func datasetOf(data []byte) ([]extract.Fault, []eventlog.Session) {
	r := &byteReader{data: data}
	nf := int(r.next())%24 + 1
	ns := int(r.next()) % 8
	faults := make([]extract.Fault, 0, nf)
	for i := 0; i < nf; i++ {
		node := cluster.NodeID{Blade: int(r.next())%8 + 1, SoC: int(r.next())%14 + 1}
		first := timebase.T(r.u32() % (400 * 24 * 3600))
		expected := r.u32()
		actual := r.u32()
		if actual == expected {
			actual ^= 1 << (r.next() % 32)
		}
		temp := thermal.NoReading
		if r.next()%2 == 0 {
			temp = float64(r.u32()%1200)/10 - 20
		}
		faults = append(faults, extract.Classify(extract.RawRun{
			Node: node, Addr: dram.Addr(r.u32()),
			FirstAt: first, LastAt: first + timebase.T(r.u32()%7200),
			Logs:     int(r.u32()%10000) + 1,
			Expected: expected, Actual: actual, TempC: temp,
		}))
	}
	extract.SortFaults(faults)
	sessions := make([]eventlog.Session, 0, ns)
	for i := 0; i < ns; i++ {
		from := timebase.T(r.u32() % (400 * 24 * 3600))
		sessions = append(sessions, eventlog.Session{
			Host:       cluster.NodeID{Blade: int(r.next())%8 + 1, SoC: int(r.next())%14 + 1},
			From:       from,
			To:         from + timebase.T(r.u32()%86400) + 1,
			AllocBytes: int64(r.u32() % (3 << 30)),
			Truncated:  r.next()%4 == 0,
		})
	}
	slices.SortFunc(sessions, func(a, b eventlog.Session) int {
		return eventlog.CompareSessions(&a, &b)
	})
	return faults, sessions
}

// FuzzSegmentRoundTrip drives both fidelity layers from one generated
// dataset. The codec layer must be exact on the first pass:
// decode(encode(x)) == x field for field, including raw IEEE-754
// temperature bits. The text interchange layer is a fixed point after
// one canonicalizing cycle: arbitrary generated datasets may hold runs
// the §II-C replay collapse would merge, so cycle 1 (text -> store ->
// text) canonicalizes, and cycle 2 must reproduce cycle 1's directory
// byte for byte.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte("unprotected computing"))
	f.Add([]byte{0xff, 0x00, 0xa5, 0x5a, 0x13, 0x37, 0x42, 0x42, 0x01, 0x80})
	f.Add(bytes.Repeat([]byte{7, 99, 3}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		faults, sessions := datasetOf(data)

		// Codec layer: exact round trip.
		p, err := decodeSegment(encodeSegment(3, -2, faults, sessions))
		if err != nil {
			t.Fatal(err)
		}
		if p.shard != 3 || p.window != -2 {
			t.Fatalf("header round trip: shard %d window %d", p.shard, p.window)
		}
		if len(p.faults) != len(faults) || len(p.sessions) != len(sessions) {
			t.Fatalf("decoded %d/%d records, want %d/%d",
				len(p.faults), len(p.sessions), len(faults), len(sessions))
		}
		for i := range faults {
			if p.faults[i] != faults[i] {
				t.Fatalf("fault %d:\n got %+v\nwant %+v", i, p.faults[i], faults[i])
			}
		}
		for i := range sessions {
			if p.sessions[i] != sessions[i] {
				t.Fatalf("session %d:\n got %+v\nwant %+v", i, p.sessions[i], sessions[i])
			}
		}

		// Interchange layer: ingest/export is byte-identical once the
		// directory is canonical.
		ctx := context.Background()
		dir0 := t.TempDir()
		if err := logstore.Export(sessions, faults, dir0); err != nil {
			t.Fatal(err)
		}
		store1, dir1 := t.TempDir(), t.TempDir()
		if _, err := Ingest(ctx, dir0, store1); err != nil {
			t.Fatal(err)
		}
		if err := Export(ctx, store1, dir1, 0); err != nil {
			t.Fatal(err)
		}
		store2, dir2 := t.TempDir(), t.TempDir()
		if _, err := Ingest(ctx, dir1, store2); err != nil {
			t.Fatal(err)
		}
		if err := Export(ctx, store2, dir2, 0); err != nil {
			t.Fatal(err)
		}
		want := readFiles(t, dir1)
		got := readFiles(t, dir2)
		if len(got) != len(want) {
			t.Fatalf("cycle 2 exported %d files, cycle 1 %d", len(got), len(want))
		}
		for name, data := range want {
			if !bytes.Equal(got[name], data) {
				t.Fatalf("file %s differs between canonical cycles:\ncycle1:\n%s\ncycle2:\n%s",
					name, data, got[name])
			}
		}
	})
}
