// Package cluster models the prototype machine's topology and node roster.
//
// The prototype (§II-A) has system-on-chip nodes with 2 ARM cores, 4 GB of
// ECC-less LPDDR and a GPU. 15 SoCs form a blade, 9 blades a chassis,
// 4 chassis a rack, 2 racks the system: 72 blades, 1080 nodes. One chassis
// (9 blades) was dedicated to another study; 9 nodes served as login nodes;
// a handful had permanent hardware failures. 923 nodes were continuously
// scanned from February 2015 to February 2016.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"unprotected/internal/timebase"
)

// Geometry constants of the prototype.
const (
	SoCsPerBlade     = 15
	BladesPerChassis = 9
	ChassisPerRack   = 4
	Racks            = 2
	TotalBlades      = Racks * ChassisPerRack * BladesPerChassis // 72
	TotalNodes       = TotalBlades * SoCsPerBlade                // 1080
	NodeDRAMBytes    = 4 << 30                                   // 4 GB LPDDR per node
	ScanTargetBytes  = 3 << 30                                   // scanner asks for 3 GB
)

// Role classifies why a node does or does not participate in the study.
type Role int

const (
	// Scanned nodes take part in the memory-error characterization.
	Scanned Role = iota
	// Login nodes never run the scanner.
	Login
	// Excluded nodes belong to the chassis dedicated to another study.
	Excluded
	// Dead nodes had permanent hardware failures and were never scanned.
	Dead
)

func (r Role) String() string {
	switch r {
	case Scanned:
		return "scanned"
	case Login:
		return "login"
	case Excluded:
		return "excluded"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// NodeID identifies a node as (blade, SoC), both 1-based, rendered "BB-SS"
// as in the paper's node names (02-04, 04-05, 58-02).
type NodeID struct {
	Blade int // 1..72
	SoC   int // 1..15
}

// String renders the paper's "BB-SS" form.
func (id NodeID) String() string { return string(id.AppendText(make([]byte, 0, 8))) }

// AppendText appends the "BB-SS" form to b and returns the extended buffer.
// It is the allocation-free renderer behind String and the eventlog writer's
// host= field.
func (id NodeID) AppendText(b []byte) []byte {
	b = appendPad2(b, id.Blade)
	b = append(b, '-')
	return appendPad2(b, id.SoC)
}

// appendPad2 appends v zero-padded to two digits, matching fmt's %02d for
// any int (values outside [0, 99] never occur in a valid NodeID but must
// still render unambiguously).
func appendPad2(b []byte, v int) []byte {
	if v >= 0 && v < 100 {
		return append(b, byte('0'+v/10), byte('0'+v%10))
	}
	return strconv.AppendInt(b, int64(v), 10)
}

// Index returns a dense zero-based index over all 1080 node slots.
func (id NodeID) Index() int { return (id.Blade-1)*SoCsPerBlade + (id.SoC - 1) }

// NodeIDFromIndex inverts Index.
func NodeIDFromIndex(i int) NodeID {
	return NodeID{Blade: i/SoCsPerBlade + 1, SoC: i%SoCsPerBlade + 1}
}

// ParseNodeID parses the "BB-SS" form: decimal digits, a dash, decimal
// digits, nothing else (the previous fmt.Sscanf implementation accidentally
// tolerated signs, inner whitespace and trailing garbage).
func ParseNodeID(s string) (NodeID, error) {
	id, ok := parseNodeID(s)
	if !ok {
		return NodeID{}, fmt.Errorf("cluster: bad node id %q", s)
	}
	if id.Blade < 1 || id.Blade > TotalBlades || id.SoC < 1 || id.SoC > SoCsPerBlade {
		return NodeID{}, fmt.Errorf("cluster: node id %q out of range", s)
	}
	return id, nil
}

// ParseNodeIDBytes is ParseNodeID over a byte slice; it allocates only on
// the error path, making it safe for zero-allocation log parsing loops. The
// slice is neither retained nor modified.
func ParseNodeIDBytes(s []byte) (NodeID, error) {
	id, ok := parseNodeID(s)
	if !ok {
		return NodeID{}, fmt.Errorf("cluster: bad node id %q", s)
	}
	if id.Blade < 1 || id.Blade > TotalBlades || id.SoC < 1 || id.SoC > SoCsPerBlade {
		return NodeID{}, fmt.Errorf("cluster: node id %q out of range", s)
	}
	return id, nil
}

func parseNodeID[T string | []byte](s T) (NodeID, bool) {
	dash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '-' {
			dash = i
			break
		}
	}
	if dash < 0 {
		return NodeID{}, false
	}
	b, ok1 := atoiSmall(s[:dash])
	c, ok2 := atoiSmall(s[dash+1:])
	if !ok1 || !ok2 {
		return NodeID{}, false
	}
	return NodeID{Blade: b, SoC: c}, true
}

// atoiSmall parses a non-negative decimal with a cap generous enough for
// any in-range blade/SoC number; values past the cap report failure rather
// than overflowing (the caller range-checks anyway).
func atoiSmall[T string | []byte](s T) (int, bool) {
	if len(s) == 0 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		d := s[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + int(d)
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, true
}

// Chassis returns the 1-based chassis number (1..8) of a blade.
func Chassis(blade int) int { return (blade-1)/BladesPerChassis + 1 }

// Rack returns the 1-based rack number (1..2) of a blade.
func Rack(blade int) int { return (blade-1)/(BladesPerChassis*ChassisPerRack) + 1 }

// Outage is a half-open window [From, To) during which a node is powered
// off and cannot scan.
type Outage struct {
	From, To timebase.T
	Reason   string
}

// Node is one SoC in the roster.
type Node struct {
	ID      NodeID
	Role    Role
	Outages []Outage
}

// Available reports whether the node can run the scanner at time t: it must
// be a Scanned node outside all outage windows.
func (n *Node) Available(t timebase.T) bool {
	if n.Role != Scanned {
		return false
	}
	for _, o := range n.Outages {
		if t >= o.From && t < o.To {
			return false
		}
	}
	return true
}

// Topology is the full roster plus derived index structures.
type Topology struct {
	Nodes []*Node // dense, indexed by NodeID.Index()
}

// Config controls roster construction. The zero value is not useful; use
// PaperTopology for the prototype as described in §II-A/§III-A.
type Config struct {
	// ExcludedChassis is the 1-based chassis dedicated to another study.
	ExcludedChassis int
	// LoginNodes lists nodes reserved as login nodes.
	LoginNodes []NodeID
	// DeadNodes lists nodes with permanent hardware failures (never scanned).
	DeadNodes []NodeID
	// SoC12OffFrom is when system administrators powered off the
	// overheating SoC-12 positions for long periods (zero disables).
	SoC12OffFrom timebase.T
	// SoC12OffTo closes the SoC-12 outage window.
	SoC12OffTo timebase.T
	// Blade33Outage is the hardware-issue shutdown of blade 33.
	Blade33Outage *Outage
}

// PaperTopology reproduces the roster of the study:
//   - chassis 8 (blades 64..72) excluded for another project (−135 nodes)
//   - SoC 1 of blades 1..9 reserved as login nodes (−9)
//   - 13 nodes dead from permanent hardware failures (−13)
//
// leaving 923 continuously scanned nodes out of 1080.
func PaperTopology() *Topology {
	cfg := Config{
		ExcludedChassis: 8,
		SoC12OffFrom:    timebase.FromTime(timebase.Epoch.AddDate(0, 4, 0)), // June 2015
		SoC12OffTo:      timebase.T(timebase.StudySeconds),
		Blade33Outage: &Outage{
			From:   timebase.FromTime(timebase.Epoch.AddDate(0, 5, 14)),
			To:     timebase.FromTime(timebase.Epoch.AddDate(0, 7, 20)),
			Reason: "blade 33 hardware issues",
		},
	}
	for b := 1; b <= 9; b++ {
		cfg.LoginNodes = append(cfg.LoginNodes, NodeID{Blade: b, SoC: 1})
	}
	// 13 permanently failed nodes, spread over the machine. Positions are
	// arbitrary but fixed so figures are reproducible.
	dead := []NodeID{
		{5, 7}, {11, 3}, {14, 9}, {19, 15}, {22, 6}, {27, 11}, {31, 2},
		{38, 14}, {41, 8}, {46, 4}, {52, 10}, {57, 13}, {61, 5},
	}
	cfg.DeadNodes = dead
	return NewTopology(cfg)
}

// NewTopology builds a roster from cfg.
func NewTopology(cfg Config) *Topology {
	topo := &Topology{Nodes: make([]*Node, TotalNodes)}
	login := make(map[NodeID]bool, len(cfg.LoginNodes))
	for _, id := range cfg.LoginNodes {
		login[id] = true
	}
	dead := make(map[NodeID]bool, len(cfg.DeadNodes))
	for _, id := range cfg.DeadNodes {
		dead[id] = true
	}
	for i := 0; i < TotalNodes; i++ {
		id := NodeIDFromIndex(i)
		n := &Node{ID: id, Role: Scanned}
		switch {
		case cfg.ExcludedChassis != 0 && Chassis(id.Blade) == cfg.ExcludedChassis:
			n.Role = Excluded
		case login[id]:
			n.Role = Login
		case dead[id]:
			n.Role = Dead
		}
		if n.Role == Scanned {
			if id.SoC == 12 && cfg.SoC12OffTo > cfg.SoC12OffFrom {
				n.Outages = append(n.Outages, Outage{
					From: cfg.SoC12OffFrom, To: cfg.SoC12OffTo,
					Reason: "SoC 12 overheating policy",
				})
			}
			if cfg.Blade33Outage != nil && id.Blade == 33 {
				n.Outages = append(n.Outages, *cfg.Blade33Outage)
			}
		}
		topo.Nodes[i] = n
	}
	return topo
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return t.Nodes[id.Index()] }

// Clone returns a deep copy of the topology: fresh Node values with
// independent outage slices. The campaign engine records profile-driven
// monitoring gaps onto its topology's nodes, so runs that would otherwise
// share one instance — the scenarios of a parameter sweep, or repeated
// campaigns over one Config — must each work on their own clone.
func (t *Topology) Clone() *Topology {
	cp := &Topology{Nodes: make([]*Node, len(t.Nodes))}
	for i, n := range t.Nodes {
		nn := *n
		nn.Outages = append([]Outage(nil), n.Outages...)
		cp.Nodes[i] = &nn
	}
	return cp
}

// ScannedNodes returns the nodes participating in the study, ordered by
// index for deterministic iteration.
func (t *Topology) ScannedNodes() []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.Role == Scanned {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Index() < out[j].ID.Index() })
	return out
}

// CountByRole tallies the roster.
func (t *Topology) CountByRole() map[Role]int {
	m := make(map[Role]int)
	for _, n := range t.Nodes {
		m[n.Role]++
	}
	return m
}

// MonitoredBlades returns the blade numbers that appear in the paper's heat
// maps: every blade outside the excluded chassis (63 blades).
func (t *Topology) MonitoredBlades() []int {
	seen := make(map[int]bool)
	var out []int
	for _, n := range t.Nodes {
		if n.Role == Excluded {
			continue
		}
		if !seen[n.ID.Blade] {
			seen[n.ID.Blade] = true
			out = append(out, n.ID.Blade)
		}
	}
	sort.Ints(out)
	return out
}
