package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"unprotected/internal/timebase"
)

func TestPaperRoster(t *testing.T) {
	topo := PaperTopology()
	counts := topo.CountByRole()
	if counts[Scanned] != 923 {
		t.Fatalf("scanned nodes = %d, want 923", counts[Scanned])
	}
	if counts[Excluded] != 135 {
		t.Fatalf("excluded = %d, want 135 (one chassis)", counts[Excluded])
	}
	if counts[Login] != 9 {
		t.Fatalf("login = %d, want 9", counts[Login])
	}
	if counts[Dead] != 13 {
		t.Fatalf("dead = %d, want 13", counts[Dead])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != TotalNodes || TotalNodes != 1080 {
		t.Fatalf("total = %d, want 1080", total)
	}
	if blades := topo.MonitoredBlades(); len(blades) != 63 {
		t.Fatalf("monitored blades = %d, want 63", len(blades))
	}
}

func TestNodeIDIndexRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		i := int(raw) % TotalNodes
		id := NodeIDFromIndex(i)
		return id.Index() == i &&
			id.Blade >= 1 && id.Blade <= TotalBlades &&
			id.SoC >= 1 && id.SoC <= SoCsPerBlade
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDParseString(t *testing.T) {
	id := NodeID{Blade: 2, SoC: 4}
	if s := id.String(); s != "02-04" {
		t.Fatalf("String = %q", s)
	}
	parsed, err := ParseNodeID("02-04")
	if err != nil || parsed != id {
		t.Fatalf("parse: %v %v", parsed, err)
	}
	if _, err := ParseNodeID("99-99"); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := ParseNodeID("banana"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestChassisRackMath(t *testing.T) {
	if Chassis(1) != 1 || Chassis(9) != 1 || Chassis(10) != 2 || Chassis(72) != 8 {
		t.Fatal("chassis math wrong")
	}
	if Rack(1) != 1 || Rack(36) != 1 || Rack(37) != 2 || Rack(72) != 2 {
		t.Fatal("rack math wrong")
	}
}

func TestAvailability(t *testing.T) {
	topo := PaperTopology()
	// Login node never available.
	login := topo.Node(NodeID{Blade: 1, SoC: 1})
	if login.Role != Login || login.Available(0) {
		t.Fatal("login node should not be available")
	}
	// SoC 12 outage applies from June 2015.
	n12 := topo.Node(NodeID{Blade: 10, SoC: 12})
	if n12.Role != Scanned {
		t.Fatal("SoC 12 of blade 10 should be scanned early on")
	}
	before := timebase.FromTime(timebase.Epoch.AddDate(0, 1, 0))
	after := timebase.FromTime(timebase.Epoch.AddDate(0, 6, 0))
	if !n12.Available(before) {
		t.Fatal("SoC 12 should be available before the power-off")
	}
	if n12.Available(after) {
		t.Fatal("SoC 12 should be off after June 2015")
	}
	// Blade 33 outage window.
	b33 := topo.Node(NodeID{Blade: 33, SoC: 3})
	mid := timebase.FromTime(timebase.Epoch.AddDate(0, 6, 0))
	if b33.Available(mid) {
		t.Fatal("blade 33 should be down mid-study")
	}
}

func TestScannedNodesOrderedAndComplete(t *testing.T) {
	topo := PaperTopology()
	nodes := topo.ScannedNodes()
	if len(nodes) != 923 {
		t.Fatalf("scanned list = %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID.Index() >= nodes[i].ID.Index() {
			t.Fatal("scanned nodes not strictly ordered")
		}
	}
}

func TestCustomTopologyMasks(t *testing.T) {
	cfg := Config{
		ExcludedChassis: 1,
		LoginNodes:      []NodeID{{Blade: 10, SoC: 1}},
		DeadNodes:       []NodeID{{Blade: 11, SoC: 2}},
	}
	topo := NewTopology(cfg)
	if topo.Node(NodeID{Blade: 5, SoC: 5}).Role != Excluded {
		t.Fatal("chassis exclusion not applied")
	}
	if topo.Node(NodeID{Blade: 10, SoC: 1}).Role != Login {
		t.Fatal("login mask not applied")
	}
	if topo.Node(NodeID{Blade: 11, SoC: 2}).Role != Dead {
		t.Fatal("dead mask not applied")
	}
	if topo.Node(NodeID{Blade: 11, SoC: 3}).Role != Scanned {
		t.Fatal("unrelated node mis-roled")
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{Scanned: "scanned", Login: "login", Excluded: "excluded", Dead: "dead"} {
		if r.String() != want {
			t.Fatalf("Role(%d).String() = %q", int(r), r.String())
		}
	}
}

func TestNodeIDAppendTextMatchesSprintf(t *testing.T) {
	// The hand-rolled renderer must match the old fmt layout for every
	// value a roster can hold, and stay sane outside it.
	for blade := 1; blade <= TotalBlades; blade++ {
		for soc := 1; soc <= SoCsPerBlade; soc++ {
			id := NodeID{Blade: blade, SoC: soc}
			want := fmt.Sprintf("%02d-%02d", blade, soc)
			if got := id.String(); got != want {
				t.Fatalf("String(%d,%d) = %q, want %q", blade, soc, got, want)
			}
		}
	}
	for _, id := range []NodeID{{0, 0}, {100, 115}, {-5, 7}} {
		want := fmt.Sprintf("%02d-%02d", id.Blade, id.SoC)
		if got := string(id.AppendText(nil)); got != want {
			t.Fatalf("AppendText(%+v) = %q, want %q", id, got, want)
		}
	}
}

func TestParseNodeIDBytes(t *testing.T) {
	for blade := 1; blade <= TotalBlades; blade++ {
		for soc := 1; soc <= SoCsPerBlade; soc++ {
			id := NodeID{Blade: blade, SoC: soc}
			got, err := ParseNodeIDBytes([]byte(id.String()))
			if err != nil || got != id {
				t.Fatalf("ParseNodeIDBytes(%q) = %v, %v", id.String(), got, err)
			}
		}
	}
	if got, err := ParseNodeIDBytes([]byte("2-4")); err != nil || (got != NodeID{Blade: 2, SoC: 4}) {
		t.Fatalf("unpadded id: %v, %v", got, err)
	}
	// The strict grammar rejects what fmt.Sscanf used to tolerate.
	for _, bad := range []string{"", "-", "02-", "-04", "02-04x", "+2-4", "02- 4", " 2-4", "2--4", "0x2-4", "99-99", "999999999999999999999-1"} {
		if _, err := ParseNodeIDBytes([]byte(bad)); err == nil {
			t.Errorf("ParseNodeIDBytes(%q) accepted", bad)
		}
		if _, err := ParseNodeID(bad); err == nil {
			t.Errorf("ParseNodeID(%q) accepted", bad)
		}
	}
}

func TestNodeIDRenderParseAllocationFree(t *testing.T) {
	id := NodeID{Blade: 72, SoC: 15}
	buf := make([]byte, 0, 8)
	if avg := testing.AllocsPerRun(200, func() { buf = id.AppendText(buf[:0]) }); avg != 0 {
		t.Errorf("AppendText allocates %v times per run", avg)
	}
	raw := []byte("72-15")
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := ParseNodeIDBytes(raw); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ParseNodeIDBytes allocates %v times per run", avg)
	}
}

func TestTopologyClone(t *testing.T) {
	orig := PaperTopology()
	id := NodeID{Blade: 2, SoC: 4}
	orig.Node(id).Outages = append(orig.Node(id).Outages, Outage{From: 1, To: 2, Reason: "x"})
	cp := orig.Clone()

	if len(cp.Nodes) != len(orig.Nodes) {
		t.Fatalf("clone has %d nodes, want %d", len(cp.Nodes), len(orig.Nodes))
	}
	for i, n := range orig.Nodes {
		c := cp.Nodes[i]
		if c == n {
			t.Fatalf("node %d aliases the original", i)
		}
		if c.ID != n.ID || c.Role != n.Role || len(c.Outages) != len(n.Outages) {
			t.Fatalf("node %d differs after clone: %+v vs %+v", i, c, n)
		}
	}

	// Mutations must not travel in either direction — the campaign
	// engine appends outages and parameter sweeps flip roles.
	cp.Node(id).Outages = append(cp.Node(id).Outages, Outage{From: 3, To: 4})
	cp.Node(id).Role = Dead
	if got := len(orig.Node(id).Outages); got != 1 {
		t.Fatalf("clone append leaked into original (%d outages)", got)
	}
	if orig.Node(id).Role == Dead {
		t.Fatal("clone role change leaked into original")
	}
	orig.Node(id).Outages[0].Reason = "changed"
	if cp.Node(id).Outages[0].Reason != "x" {
		t.Fatal("original mutation leaked into clone")
	}
}
