// Package solar computes the position of the sun in the sky for a given
// site and instant.
//
// The paper (§III-E) found that multi-bit DRAM errors are about twice as
// frequent during the day, peaking when the sun is highest — the signature
// of atmospheric-neutron showers whose local intensity tracks solar
// elevation. The radiation substrate uses this package as the physical
// driver for that diurnal modulation, so Fig 6's bell shape is produced by
// the same mechanism the paper hypothesizes rather than a painted histogram.
//
// The implementation follows the NOAA Solar Position Algorithm (the
// low-precision variant from Meeus, "Astronomical Algorithms"), accurate to
// well under a degree of elevation — far more than the flux model needs.
package solar

import (
	"math"
	"time"
)

// Site is a geographic observation point.
type Site struct {
	Name      string
	LatDeg    float64 // geographic latitude, degrees north
	LonDeg    float64 // geographic longitude, degrees east
	AltMeters float64 // altitude above sea level, meters
}

// Barcelona is the paper's site: the prototype machine is located in
// Barcelona at roughly 100 m above sea level.
var Barcelona = Site{Name: "Barcelona", LatDeg: 41.3874, LonDeg: 2.1686, AltMeters: 100}

const deg2rad = math.Pi / 180

// julianDay converts an instant to the Julian day number (UT).
func julianDay(t time.Time) float64 {
	t = t.UTC()
	y := t.Year()
	m := int(t.Month())
	d := float64(t.Day()) + (float64(t.Hour())+float64(t.Minute())/60+float64(t.Second())/3600)/24
	if m <= 2 {
		y--
		m += 12
	}
	a := y / 100
	b := 2 - a + a/4
	return math.Floor(365.25*float64(y+4716)) + math.Floor(30.6001*float64(m+1)) + d + float64(b) - 1524.5
}

// Position is the solar position at a site.
type Position struct {
	ElevationDeg   float64 // altitude above the horizon, degrees (negative: below)
	AzimuthDeg     float64 // degrees clockwise from true north
	DeclinationDeg float64
	HourAngleDeg   float64
}

// PositionAt computes the solar position at the site and instant.
func PositionAt(site Site, t time.Time) Position {
	jd := julianDay(t)
	// Julian centuries since J2000.0.
	T := (jd - 2451545.0) / 36525

	// Geometric mean longitude and anomaly of the sun (degrees).
	L0 := math.Mod(280.46646+T*(36000.76983+T*0.0003032), 360)
	M := 357.52911 + T*(35999.05029-0.0001537*T)
	Mr := M * deg2rad

	// Equation of center and true longitude.
	C := (1.914602-T*(0.004817+0.000014*T))*math.Sin(Mr) +
		(0.019993-0.000101*T)*math.Sin(2*Mr) +
		0.000289*math.Sin(3*Mr)
	trueLon := L0 + C

	// Apparent longitude, corrected for nutation and aberration.
	omega := 125.04 - 1934.136*T
	lambda := trueLon - 0.00569 - 0.00478*math.Sin(omega*deg2rad)

	// Obliquity of the ecliptic (corrected).
	eps0 := 23 + (26+(21.448-T*(46.8150+T*(0.00059-T*0.001813)))/60)/60
	eps := eps0 + 0.00256*math.Cos(omega*deg2rad)
	epsR := eps * deg2rad

	// Declination.
	sinDec := math.Sin(epsR) * math.Sin(lambda*deg2rad)
	dec := math.Asin(sinDec)

	// Equation of time (minutes).
	y := math.Tan(epsR/2) * math.Tan(epsR/2)
	L0r := L0 * deg2rad
	eot := 4 / deg2rad * (y*math.Sin(2*L0r) - 2*0.016708634*math.Sin(Mr) +
		4*0.016708634*y*math.Sin(Mr)*math.Cos(2*L0r) -
		0.5*y*y*math.Sin(4*L0r) - 1.25*0.016708634*0.016708634*math.Sin(2*Mr))

	// True solar time (minutes) and hour angle (degrees).
	ut := t.UTC()
	minutes := float64(ut.Hour())*60 + float64(ut.Minute()) + float64(ut.Second())/60
	tst := math.Mod(minutes+eot+4*site.LonDeg, 1440)
	if tst < 0 {
		tst += 1440
	}
	ha := tst/4 - 180
	haR := ha * deg2rad

	latR := site.LatDeg * deg2rad
	sinEl := math.Sin(latR)*math.Sin(dec) + math.Cos(latR)*math.Cos(dec)*math.Cos(haR)
	el := math.Asin(sinEl)

	// Azimuth measured clockwise from north.
	cosAz := (math.Sin(dec) - math.Sin(latR)*sinEl) / (math.Cos(latR) * math.Cos(el))
	if cosAz > 1 {
		cosAz = 1
	}
	if cosAz < -1 {
		cosAz = -1
	}
	az := math.Acos(cosAz) / deg2rad
	if ha > 0 {
		az = 360 - az
	}

	return Position{
		ElevationDeg:   el / deg2rad,
		AzimuthDeg:     az,
		DeclinationDeg: dec / deg2rad,
		HourAngleDeg:   ha,
	}
}

// Elevation returns just the solar elevation in degrees at the site.
func Elevation(site Site, t time.Time) float64 { return PositionAt(site, t).ElevationDeg }

// SolarNoonUTC returns the instant of local solar noon (hour angle zero) on
// the UTC calendar day containing t, found by golden-section search over the
// day — simple and robust, and called rarely (tests, figure annotations).
func SolarNoonUTC(site Site, t time.Time) time.Time {
	day := time.Date(t.UTC().Year(), t.UTC().Month(), t.UTC().Day(), 0, 0, 0, 0, time.UTC)
	lo, hi := 0, 24*3600
	for hi-lo > 30 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		e1 := Elevation(site, day.Add(time.Duration(m1)*time.Second))
		e2 := Elevation(site, day.Add(time.Duration(m2)*time.Second))
		if e1 < e2 {
			lo = m1
		} else {
			hi = m2
		}
	}
	return day.Add(time.Duration((lo+hi)/2) * time.Second)
}

// DaylightFraction returns the fraction of the 24h UTC day containing t
// during which the sun is above the horizon at the site, sampled at minute
// resolution. Used by tests to sanity-check seasonal behaviour.
func DaylightFraction(site Site, t time.Time) float64 {
	day := time.Date(t.UTC().Year(), t.UTC().Month(), t.UTC().Day(), 0, 0, 0, 0, time.UTC)
	up := 0
	for m := 0; m < 1440; m++ {
		if Elevation(site, day.Add(time.Duration(m)*time.Minute)) > 0 {
			up++
		}
	}
	return float64(up) / 1440
}
