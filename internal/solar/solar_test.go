package solar

import (
	"math"
	"testing"
	"time"
)

func TestElevationBounds(t *testing.T) {
	for day := 0; day < 365; day += 7 {
		for h := 0; h < 24; h++ {
			at := time.Date(2015, time.February, 1, h, 0, 0, 0, time.UTC).AddDate(0, 0, day)
			el := Elevation(Barcelona, at)
			if el < -90 || el > 90 {
				t.Fatalf("elevation %v out of range at %v", el, at)
			}
		}
	}
}

func TestNoonElevationSeasons(t *testing.T) {
	// Solar elevation at local solar noon: latitude 41.39°N gives
	// 90 - 41.39 + declination. Summer solstice: ~72°, winter: ~25°.
	summer := SolarNoonUTC(Barcelona, time.Date(2015, time.June, 21, 12, 0, 0, 0, time.UTC))
	if el := Elevation(Barcelona, summer); math.Abs(el-72.1) > 1.5 {
		t.Fatalf("summer solstice noon elevation %v, want ~72", el)
	}
	winter := SolarNoonUTC(Barcelona, time.Date(2015, time.December, 21, 12, 0, 0, 0, time.UTC))
	if el := Elevation(Barcelona, winter); math.Abs(el-25.2) > 1.5 {
		t.Fatalf("winter solstice noon elevation %v, want ~25", el)
	}
}

func TestSolarNoonTime(t *testing.T) {
	// Barcelona at 2.17°E: solar noon is near 11:51 UTC ± equation of time
	// (±16 min over the year).
	for _, m := range []time.Month{time.January, time.April, time.July, time.October} {
		noon := SolarNoonUTC(Barcelona, time.Date(2015, m, 15, 0, 0, 0, 0, time.UTC))
		minutes := noon.Hour()*60 + noon.Minute()
		want := 11*60 + 51
		if math.Abs(float64(minutes-want)) > 20 {
			t.Fatalf("solar noon in %v at %v, want ~11:51 UTC", m, noon)
		}
	}
}

func TestNightBelowHorizon(t *testing.T) {
	// Local midnight: the sun must be below the horizon all year.
	for day := 0; day < 365; day += 11 {
		at := time.Date(2015, time.January, 3, 23, 0, 0, 0, time.UTC).AddDate(0, 0, day)
		if el := Elevation(Barcelona, at); el > 0 {
			t.Fatalf("sun above horizon (%v°) at %v", el, at)
		}
	}
}

func TestDaylightFractionSeasons(t *testing.T) {
	summer := DaylightFraction(Barcelona, time.Date(2015, time.June, 21, 0, 0, 0, 0, time.UTC))
	winter := DaylightFraction(Barcelona, time.Date(2015, time.December, 21, 0, 0, 0, 0, time.UTC))
	if summer <= winter {
		t.Fatalf("summer daylight %v <= winter %v", summer, winter)
	}
	// ~15h vs ~9.2h daylight.
	if math.Abs(summer-15.2/24) > 0.03 || math.Abs(winter-9.2/24) > 0.03 {
		t.Fatalf("daylight fractions summer=%v winter=%v", summer, winter)
	}
}

func TestAzimuthAtNoonIsSouth(t *testing.T) {
	noon := SolarNoonUTC(Barcelona, time.Date(2015, time.May, 10, 0, 0, 0, 0, time.UTC))
	pos := PositionAt(Barcelona, noon)
	if math.Abs(pos.AzimuthDeg-180) > 3 {
		t.Fatalf("azimuth at solar noon %v, want ~180 (south)", pos.AzimuthDeg)
	}
	if math.Abs(pos.HourAngleDeg) > 1 {
		t.Fatalf("hour angle at solar noon %v, want ~0", pos.HourAngleDeg)
	}
}

func TestDeclinationRange(t *testing.T) {
	for day := 0; day < 365; day += 3 {
		at := time.Date(2015, time.January, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, day)
		dec := PositionAt(Barcelona, at).DeclinationDeg
		if dec < -23.6 || dec > 23.6 {
			t.Fatalf("declination %v out of tropic range at %v", dec, at)
		}
	}
}
