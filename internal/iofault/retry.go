package iofault

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"time"
)

// Transient reports whether an I/O error is worth retrying: descriptor
// pressure (EMFILE/ENFILE), interrupted or would-block syscalls, and the
// blanket EIO the paper's failure model expects from flaky media —
// including the injector's ErrInjected, which wraps EIO. Permanent
// conditions (missing files, permission, a crashed injector) are not
// transient: retrying them only delays the real answer.
func Transient(err error) bool {
	if err == nil || errors.Is(err, ErrCrashed) {
		return false
	}
	for _, t := range []error{
		syscall.EIO, syscall.EMFILE, syscall.ENFILE,
		syscall.EAGAIN, syscall.EINTR, syscall.EBUSY,
	} {
		if errors.Is(err, t) {
			return true
		}
	}
	return errors.Is(err, ErrInjected)
}

// RetryPolicy bounds how the storage layers ride out transient errors:
// up to Attempts tries, exponential backoff from Base capped at Max.
// The zero value performs exactly one attempt (no retry).
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first; values
	// below 1 behave as 1.
	Attempts int
	// Base is the delay before the first retry; it doubles per retry.
	Base time.Duration
	// Max caps the backoff delay (0 means no cap).
	Max time.Duration
}

// DefaultRetry is the storage layers' stock policy: four attempts with
// millisecond-scale backoff — enough to ride out a descriptor blip or a
// single flaky read without turning a genuinely dead disk into a hang.
var DefaultRetry = RetryPolicy{Attempts: 4, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}

// Do runs op, retrying while it returns a Transient error and attempts
// remain, backing off between tries. It is context-aware: a cancelled
// ctx aborts the backoff wait and returns both the pending error and the
// context's. Non-transient errors return immediately.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	attempts := max(p.Attempts, 1)
	delay := p.Base
	for i := 1; ; i++ {
		err := op()
		if err == nil || !Transient(err) || i >= attempts {
			return err
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("%w (retry %d/%d aborted: %w)", err, i, attempts, ctx.Err())
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return fmt.Errorf("%w (retry %d/%d aborted: %w)", err, i, attempts, ctx.Err())
		}
		delay = min(delay*2, nonZero(p.Max, delay*2))
	}
}

// nonZero returns cap unless it is zero, in which case v passes through.
func nonZero(cap, v time.Duration) time.Duration {
	if cap == 0 {
		return v
	}
	return cap
}
