package iofault

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// FuzzInjectorSchedule pins the injector's determinism contract: two
// injectors configured identically, driven through the same
// single-threaded operation script over equivalent directories, must
// produce the same outcome for every operation — same success/failure,
// same error class, same final operation and mutation counts. The chaos
// harness's crash-point sweep and the seeded-noise tests both stand on
// this property.
func FuzzInjectorSchedule(f *testing.F) {
	f.Add(uint64(42), uint16(300), byte(10), byte(3), byte(2), true)
	f.Add(uint64(0), uint16(0), byte(0), byte(0), byte(0), false)
	f.Add(uint64(7), uint16(1023), byte(40), byte(255), byte(7), true)
	f.Add(uint64(999), uint16(512), byte(25), byte(1), byte(0), false)
	f.Fuzz(func(t *testing.T, seed uint64, rateBits uint16, steps, crashAfter, failAt byte, torn bool) {
		script := func() []string {
			dir := t.TempDir()
			in := NewInjector(OS)
			in.SetRate(seed, float64(rateBits%1024)/1024)
			if crashAfter != 255 {
				in.CrashAfterMutations(uint64(crashAfter))
			}
			if failAt != 0 {
				in.FailOp(uint64(failAt), nil)
			}
			if torn {
				in.TornWriteAt(uint64(failAt)+2, 3)
				in.SetCrashTorn(0.5)
			}
			in.FailPath("blocked", 2, nil)

			classify := func(err error) string {
				switch {
				case err == nil:
					return "ok"
				case errors.Is(err, ErrCrashed):
					return "crashed"
				case errors.Is(err, ErrInjected):
					return "injected"
				default:
					return "other"
				}
			}
			a := filepath.Join(dir, "a")
			blocked := filepath.Join(dir, "blocked")
			var sig []string
			n := int(steps%64) + 4
			for i := 0; i < n; i++ {
				var err error
				switch i % 7 {
				case 0:
					err = in.WriteFile(a, []byte("payload-payload"), 0o644)
				case 1:
					_, err = in.ReadFile(a)
				case 2:
					err = in.Sync(a)
				case 3:
					err = in.WriteFile(blocked, []byte("z"), 0o644)
				case 4:
					_, err = in.ReadDir(dir)
				case 5:
					err = in.MkdirAll(filepath.Join(dir, "sub"), 0o755)
				case 6:
					err = in.Rename(a, a+"2")
					if err == nil {
						err = in.Rename(a+"2", a)
					}
				}
				sig = append(sig, classify(err))
			}
			sig = append(sig, fmt.Sprintf("ops=%d muts=%d", in.Ops(), in.Mutations()))
			return sig
		}

		first, second := script(), script()
		if len(first) != len(second) {
			t.Fatalf("signature lengths differ: %d vs %d", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("same schedule diverged at step %d: %q vs %q\nfirst:  %v\nsecond: %v",
					i, first[i], second[i], first, second)
			}
		}
	})
}
