package iofault

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOSPassthrough exercises every operation of the passthrough FS
// against a real directory: the seam must be invisible when no faults
// are scheduled.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	if err := OS.WriteFile(name, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := OS.Sync(name); err != nil {
		t.Fatal(err)
	}
	if err := OS.Sync(dir); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(name)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	f, err := OS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Open+ReadAll = %q, %v", got, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := OS.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.MkdirAll(filepath.Join(dir, "sub/deep"), 0o755); err != nil {
		t.Fatal(err)
	}
	renamed := filepath.Join(dir, "b.txt")
	if err := OS.Rename(name, renamed); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	data, err = OS.ReadFile(renamed)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("after append+rename: %q, %v", data, err)
	}
	if err := OS.Remove(renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.ReadFile(renamed); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("removed file readable: %v", err)
	}
}

// TestInjectorPassthroughCounts checks a fault-free injector is a pure
// counting passthrough and classifies mutations correctly.
func TestInjectorPassthroughCounts(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	name := filepath.Join(dir, "x")
	if err := in.WriteFile(name, []byte("abc"), 0o644); err != nil { // op 1, mut 1
		t.Fatal(err)
	}
	if _, err := in.ReadFile(name); err != nil { // op 2
		t.Fatal(err)
	}
	if err := in.Sync(name); err != nil { // op 3, mut 2
		t.Fatal(err)
	}
	if _, err := in.ReadDir(dir); err != nil { // op 4
		t.Fatal(err)
	}
	f, err := in.Open(name) // op 5
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, want := in.Ops(), uint64(5); got != want {
		t.Fatalf("Ops = %d, want %d", got, want)
	}
	if got, want := in.Mutations(), uint64(2); got != want {
		t.Fatalf("Mutations = %d, want %d", got, want)
	}
}

// TestInjectorFailOp checks the exact-operation transient failure: not
// applied, transient, and gone on retry.
func TestInjectorFailOp(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.FailOp(1, nil)
	name := filepath.Join(dir, "x")
	err := in.WriteFile(name, []byte("abc"), 0o644) // op 1: fails
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected EIO, got %v", err)
	}
	if !Transient(err) {
		t.Fatalf("injected error not transient: %v", err)
	}
	if _, err := os.Stat(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed op was applied: %v", err)
	}
	if err := in.WriteFile(name, []byte("abc"), 0o644); err != nil { // op 2: clean
		t.Fatalf("retry failed: %v", err)
	}
	custom := errors.New("boom")
	in.FailOp(4, custom)
	if _, err := in.ReadFile(name); err != nil { // op 3
		t.Fatal(err)
	}
	if _, err := in.ReadFile(name); !errors.Is(err, custom) { // op 4
		t.Fatalf("want custom error, got %v", err)
	}
}

// TestInjectorTornWrite checks a torn write leaves exactly the scheduled
// prefix on disk and fails transiently.
func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.TornWriteAt(1, 3)
	name := filepath.Join(dir, "x")
	err := in.WriteFile(name, []byte("abcdef"), 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected, got %v", err)
	}
	data, rerr := os.ReadFile(name)
	if rerr != nil || string(data) != "abc" {
		t.Fatalf("torn prefix = %q, %v (want \"abc\")", data, rerr)
	}
	// A torn schedule on a non-write op degrades to a plain failure.
	in2 := NewInjector(OS)
	in2.TornWriteAt(1, 3)
	if err := in2.Remove(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn on Remove: %v", err)
	}
}

// TestInjectorFailPath checks path-targeted failures: bounded counts
// expire, unbounded ones persist.
func TestInjectorFailPath(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	name := filepath.Join(dir, "node-01-02.log")
	other := filepath.Join(dir, "other.log")
	in.FailPath("node-01-02", 2, syscall.EMFILE)
	for i := 0; i < 2; i++ {
		if err := in.WriteFile(name, []byte("x"), 0o644); !errors.Is(err, syscall.EMFILE) {
			t.Fatalf("try %d: want EMFILE, got %v", i, err)
		}
	}
	if err := in.WriteFile(name, []byte("x"), 0o644); err != nil {
		t.Fatalf("rule did not expire: %v", err)
	}
	if err := in.WriteFile(other, []byte("x"), 0o644); err != nil {
		t.Fatalf("non-matching path failed: %v", err)
	}
	in.FailPath("other", -1, nil)
	for i := 0; i < 4; i++ {
		if _, err := in.ReadFile(other); !errors.Is(err, ErrInjected) {
			t.Fatalf("unbounded rule stopped at %d: %v", i, err)
		}
	}
}

// TestInjectorCrash checks the crash point: mutations up to N succeed,
// everything after — including cleanup-style removes — fails with the
// non-transient ErrCrashed, while reads stay alive.
func TestInjectorCrash(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.CrashAfterMutations(2)
	a, b, c := filepath.Join(dir, "a"), filepath.Join(dir, "b"), filepath.Join(dir, "c")
	if err := in.WriteFile(a, []byte("1"), 0o644); err != nil { // mut 1
		t.Fatal(err)
	}
	if err := in.WriteFile(b, []byte("2"), 0o644); err != nil { // mut 2
		t.Fatal(err)
	}
	err := in.WriteFile(c, []byte("3"), 0o644) // refused
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if Transient(err) {
		t.Fatal("crash must not be transient")
	}
	if err := in.Remove(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Remove: %v", err)
	}
	if err := in.Rename(a, c); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Rename: %v", err)
	}
	if err := in.Sync(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Sync: %v", err)
	}
	if err := in.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash MkdirAll: %v", err)
	}
	if _, err := in.OpenFile(c, os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash OpenFile(write): %v", err)
	}
	if data, err := in.ReadFile(a); err != nil || string(data) != "1" {
		t.Fatalf("post-crash read: %q, %v", data, err)
	}
	if got, want := in.Mutations(), uint64(2); got != want {
		t.Fatalf("Mutations = %d, want %d", got, want)
	}
}

// TestInjectorCrashTorn checks the crash-mid-write mode: the first
// refused data write applies its fraction, later ones apply nothing.
func TestInjectorCrashTorn(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.CrashAfterMutations(0)
	in.SetCrashTorn(0.5)
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := in.WriteFile(a, []byte("abcdef"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	data, err := os.ReadFile(a)
	if err != nil || string(data) != "abc" {
		t.Fatalf("crash-torn prefix = %q, %v", data, err)
	}
	if err := in.WriteFile(b, []byte("abcdef"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	if _, err := os.Stat(b); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("second crashed write applied bytes")
	}
}

// TestInjectorFileWrites checks that writes and syncs through an opened
// file draw operations from the same schedule.
func TestInjectorFileWrites(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	name := filepath.Join(dir, "x")
	f, err := in.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644) // op 1, mut 1
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in.TornWriteAt(2, 2)
	n, err := f.Write([]byte("abcd")) // op 2: torn
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("torn file write = %d, %v", n, err)
	}
	if n, err := f.Write([]byte("EF")); err != nil || n != 2 { // op 3, mut
		t.Fatalf("clean file write = %d, %v", n, err)
	}
	in.CrashAfterMutations(in.Mutations())
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash file Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close must pass through: %v", err)
	}
	data, _ := os.ReadFile(name)
	if string(data) != "abEF" {
		t.Fatalf("file contents = %q", data)
	}
}

// TestInjectorSeededRateDeterminism checks SetRate injects the same
// failure pattern for the same seed and a different one for another.
func TestInjectorSeededRateDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		dir := t.TempDir()
		in := NewInjector(OS)
		in.SetRate(seed, 0.3)
		name := filepath.Join(dir, "x")
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.WriteFile(name, []byte("v"), 0o644) != nil)
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("rate 0.3 produced %d/%d failures", fails, len(a))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

// TestTransientClassification pins which errors the retry layer rides
// out and which it must surface immediately.
func TestTransientClassification(t *testing.T) {
	for _, err := range []error{
		syscall.EIO, syscall.EMFILE, syscall.ENFILE,
		syscall.EAGAIN, syscall.EINTR, syscall.EBUSY, injected(),
	} {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		nil, fs.ErrNotExist, fs.ErrPermission, ErrCrashed,
		errors.New("opaque"), context.Canceled,
	} {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

// TestRetryDo checks the bounded retry loop: transient errors retry up
// to the attempt budget, non-transient errors return immediately, and a
// cancelled context aborts the backoff.
func TestRetryDo(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: time.Millisecond}

	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return syscall.EMFILE
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("ride-out: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = p.Do(context.Background(), func() error { calls++; return syscall.EIO })
	if !errors.Is(err, syscall.EIO) || calls != 3 {
		t.Fatalf("exhaustion: err=%v calls=%d", err, calls)
	}

	calls = 0
	permanent := fs.ErrNotExist
	err = p.Do(context.Background(), func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent: err=%v calls=%d", err, calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	err = RetryPolicy{Attempts: 5, Base: time.Hour}.Do(ctx, func() error { calls++; return syscall.EIO })
	if !errors.Is(err, context.Canceled) || !errors.Is(err, syscall.EIO) || calls != 1 {
		t.Fatalf("cancel: err=%v calls=%d", err, calls)
	}

	// The zero policy is one attempt, no retry.
	calls = 0
	err = RetryPolicy{}.Do(context.Background(), func() error { calls++; return syscall.EIO })
	if !errors.Is(err, syscall.EIO) || calls != 1 {
		t.Fatalf("zero policy: err=%v calls=%d", err, calls)
	}
}
