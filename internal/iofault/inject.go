package iofault

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"
	"syscall"
)

// ErrInjected marks a scheduled transient failure: the operation was not
// (fully) applied, and a retry — which draws a fresh operation number —
// may succeed. It wraps syscall.EIO through Injected so errors.Is works
// against both, and Transient reports it retryable.
var ErrInjected = errors.New("iofault: injected transient error")

// ErrCrashed marks operations refused after a crash point: the simulated
// machine is down, every subsequent mutation fails, and nothing —
// including error-path cleanup — gets to touch the disk again. Transient
// reports it NOT retryable.
var ErrCrashed = errors.New("iofault: crashed: writes halted")

// injected builds the standard transient error.
func injected() error { return fmt.Errorf("%w: %w", ErrInjected, syscall.EIO) }

// opKind classifies an operation for the schedule: reads never crash,
// data-carrying writes can tear, other mutations (rename, remove, sync,
// mkdir) fail whole.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opMut
)

// pathRule is one path-targeted failure: the first n operations whose
// path contains substr fail with err (n < 0 means every one, forever).
type pathRule struct {
	substr    string
	remaining int
	err       error
}

// Injector wraps an FS with a deterministic fault schedule. Every
// operation that reaches it draws the next operation number (starting at
// 1); mutating operations additionally advance the mutation count when
// they are allowed through. The schedule is keyed on those numbers, so a
// single-threaded caller replaying the same operation sequence hits
// exactly the same faults — the property FuzzInjectorSchedule pins.
// Under concurrency the injector is safe but the interleaving decides
// the numbering; chaos tests that sweep crash points run single-worker.
//
// Supported faults:
//
//   - FailOp(n, err): operation n fails transiently, nothing applied.
//   - TornWriteAt(n, k): if operation n carries data, its first k bytes
//     are applied before it fails — a torn write.
//   - FailPath(substr, n, err): the first n operations touching a
//     matching path fail (n < 0: all of them) — the tool for "this
//     segment is unreadable" and "OpenFile hits EMFILE twice".
//   - CrashAfterMutations(n): after n mutations have been allowed, every
//     later mutation fails with ErrCrashed; reads still work. Combined
//     with SetCrashTorn(frac), the first write refused by the crash
//     applies a frac prefix first — a crash mid-write.
//   - SetRate(seed, rate): seed-driven background noise — each operation
//     independently fails transiently with the given probability, via a
//     deterministic per-(seed, operation-number) hash.
type Injector struct {
	base FS

	mu         sync.Mutex
	ops        uint64
	muts       uint64
	failOps    map[uint64]error
	tornWrites map[uint64]int
	pathRules  []*pathRule
	crashAfter int64 // -1 disables
	crashTorn  float64
	crashTore  bool // the one torn crash write was spent
	seed       uint64
	rate       float64
}

// NewInjector wraps base (nil means OS) with an empty schedule: until
// faults are added it is a counting passthrough, which is exactly what a
// crash-point sweep's baseline run needs.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{
		base:       base,
		failOps:    make(map[uint64]error),
		tornWrites: make(map[uint64]int),
		crashAfter: -1,
	}
}

// FailOp schedules operation n (1-based) to fail transiently without
// being applied. A nil err selects the standard injected EIO.
func (in *Injector) FailOp(n uint64, err error) {
	if err == nil {
		err = injected()
	}
	in.mu.Lock()
	in.failOps[n] = err
	in.mu.Unlock()
}

// TornWriteAt schedules operation n to tear: if it carries data, its
// first k bytes are applied and the operation fails with ErrInjected;
// if it does not, it simply fails.
func (in *Injector) TornWriteAt(n uint64, k int) {
	in.mu.Lock()
	in.tornWrites[n] = max(k, 0)
	in.mu.Unlock()
}

// FailPath makes the first n operations whose path contains substr fail
// with err (nil err selects the standard injected EIO; n < 0 means every
// matching operation, forever).
func (in *Injector) FailPath(substr string, n int, err error) {
	if err == nil {
		err = injected()
	}
	in.mu.Lock()
	in.pathRules = append(in.pathRules, &pathRule{substr: substr, remaining: n, err: err})
	in.mu.Unlock()
}

// CrashAfterMutations sets the crash point: the first n mutating
// operations are allowed, every later one fails with ErrCrashed.
// CrashAfterMutations(0) halts all writes immediately.
func (in *Injector) CrashAfterMutations(n uint64) {
	in.mu.Lock()
	in.crashAfter = int64(n)
	in.mu.Unlock()
}

// SetCrashTorn makes the first data write refused by the crash point
// apply a frac prefix (0 <= frac <= 1) before failing, simulating a
// crash mid-write instead of cleanly between writes.
func (in *Injector) SetCrashTorn(frac float64) {
	in.mu.Lock()
	in.crashTorn = min(max(frac, 0), 1)
	in.mu.Unlock()
}

// SetRate adds seed-driven background noise: every operation fails
// transiently with probability rate, decided by a deterministic hash of
// (seed, operation number).
func (in *Injector) SetRate(seed uint64, rate float64) {
	in.mu.Lock()
	in.seed, in.rate = seed, min(max(rate, 0), 1)
	in.mu.Unlock()
}

// Ops reports how many operations have reached the injector.
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Mutations reports how many mutating operations the schedule has
// allowed through — the count a crash-point sweep enumerates.
func (in *Injector) Mutations() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.muts
}

// splitmix64 is the per-operation hash behind SetRate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide draws the next operation number and applies the schedule.
// It returns the number of payload bytes to apply before failing
// (meaningful only for opWrite when err != nil) and the scheduled error.
func (in *Injector) decide(kind opKind, path string, size int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	n := in.ops

	if kind != opRead && in.crashAfter >= 0 && int64(in.muts) >= in.crashAfter {
		torn := 0
		if kind == opWrite && !in.crashTore && in.crashTorn > 0 {
			in.crashTore = true
			torn = int(in.crashTorn * float64(size))
		}
		return torn, fmt.Errorf("%w (mutation %d refused)", ErrCrashed, in.muts+1)
	}
	if err, ok := in.failOps[n]; ok {
		return 0, fmt.Errorf("op %d: %w", n, err)
	}
	if k, ok := in.tornWrites[n]; ok {
		if kind == opWrite {
			return min(k, size), fmt.Errorf("op %d: torn write: %w", n, injected())
		}
		return 0, fmt.Errorf("op %d: %w", n, injected())
	}
	for _, r := range in.pathRules {
		if r.remaining != 0 && strings.Contains(path, r.substr) {
			if r.remaining > 0 {
				r.remaining--
			}
			return 0, fmt.Errorf("op %d %s: %w", n, path, r.err)
		}
	}
	if in.rate > 0 {
		h := splitmix64(in.seed ^ n)
		if float64(h>>11)/(1<<53) < in.rate {
			return 0, fmt.Errorf("op %d (seeded): %w", n, injected())
		}
	}
	if kind != opRead {
		in.muts++
	}
	return 0, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if _, err := in.decide(opRead, name, 0); err != nil {
		return nil, err
	}
	return in.base.ReadFile(name)
}

func (in *Injector) WriteFile(name string, data []byte, perm fs.FileMode) error {
	torn, err := in.decide(opWrite, name, len(data))
	if err != nil {
		if torn > 0 {
			// The torn prefix lands through the base FS directly: the
			// schedule already ruled on this operation.
			in.base.WriteFile(name, data[:min(torn, len(data))], perm)
		}
		return err
	}
	return in.base.WriteFile(name, data, perm)
}

func (in *Injector) Open(name string) (File, error) {
	if _, err := in.decide(opRead, name, 0); err != nil {
		return nil, err
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// writeFlags are the OpenFile flags that make an open a mutation.
const writeFlags = os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	kind := opRead
	if flag&writeFlags != 0 {
		kind = opMut
	}
	if _, err := in.decide(kind, name, 0); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.decide(opMut, oldpath, 0); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if _, err := in.decide(opMut, name, 0); err != nil {
		return err
	}
	return in.base.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if _, err := in.decide(opMut, path, 0); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if _, err := in.decide(opRead, name, 0); err != nil {
		return nil, err
	}
	return in.base.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if _, err := in.decide(opRead, name, 0); err != nil {
		return nil, err
	}
	return in.base.Stat(name)
}

func (in *Injector) Sync(name string) error {
	if _, err := in.decide(opMut, name, 0); err != nil {
		return err
	}
	return in.base.Sync(name)
}

// injFile routes the write-side file operations back through the
// schedule. Reads and Close pass through uncounted: the schedule aims at
// the durability-relevant operations, and a crashed machine does not
// fail to close what it will never flush.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (f *injFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *injFile) Write(p []byte) (int, error) {
	torn, err := f.in.decide(opWrite, f.name, len(p))
	if err != nil {
		n := 0
		if torn > 0 {
			n, _ = f.f.Write(p[:min(torn, len(p))])
		}
		return n, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if _, err := f.in.decide(opMut, f.name, 0); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Close() error { return f.f.Close() }

// Seek passes through uncounted, like Read and Close: repositioning a
// descriptor is not a durability-relevant operation.
func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}
