// Package iofault is the injectable I/O seam under the storage layers.
// The paper's premise is that hardware fails silently and at scale; the
// same adversarial stance applies to the filesystem the study's own
// persistence sits on. Every I/O call the fault store and the log store
// perform goes through the FS interface: production code uses the OS
// passthrough, chaos tests swap in an Injector that fails, tears or
// halts operations on a deterministic schedule — so crash-consistency
// and degraded-read behavior are provable, not aspirational.
//
// The package also hosts the retry policy the storage layers apply to
// transient errors (an EMFILE blip must not kill a replay, an EIO blip
// must not kill a query) and the Transient classifier that decides what
// is worth retrying.
package iofault

import (
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface the storage layers need: sequential
// reads for the log loader, writes and fsync for the log writer, and
// seeking for the follow-mode tailer, which must resume an evicted
// descriptor at the offset it had already consumed.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// FS is the I/O seam. Implementations: OS (passthrough, the default
// everywhere) and Injector (deterministic fault schedule, tests only).
// All paths are interpreted exactly as the os package would.
type FS interface {
	// ReadFile reads the named file whole.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it if needed.
	// It does not fsync; pair it with Sync for durability.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenFile is the generalized open (the log writer's append path).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath — the commit
	// primitive of the manifest swap.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists the named directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes the named file. The follow-mode tailer polls it to
	// detect growth (size past the consumed offset) and truncation (size
	// regression, which forces a reopen from zero).
	Stat(name string) (fs.FileInfo, error)
	// Sync opens the named file or directory and fsyncs it: the only
	// way to make a just-written file's bytes — or a directory's entry
	// table after a create or rename — durable before proceeding.
	Sync(name string) error
}

// OpenAppendFlags is the log writer's open mode: create if missing,
// write-only, append-at-end.
const OpenAppendFlags = os.O_CREATE | os.O_WRONLY | os.O_APPEND

// OS is the passthrough FS every storage layer defaults to.
var OS FS = osFS{}

// osFS forwards every operation to the os package.
type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) Sync(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
