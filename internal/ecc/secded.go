// Package ecc implements the error-correcting codes the prototype lacked,
// so the study can classify every observed corruption by what protected
// hardware *would* have done with it (§III-C, §III-D):
//
//   - Hsiao SECDED codes — (39,32) for the scanner's 32-bit words and
//     (72,64) as deployed on DDR DIMMs: single-bit errors are corrected,
//     double-bit errors detected, and ≥3-bit errors may be miscorrected or
//     pass entirely undetected (silent data corruption);
//   - a chipkill-style single-symbol-correct / double-symbol-detect code
//     over GF(16), which survives any corruption confined to one 4-bit
//     device but not the scattered multi-device patterns the paper found
//     dominant.
//
// All codecs are real encoders/decoders (syndrome computation, correction,
// aliasing), not outcome tables.
package ecc

import (
	"fmt"
	"math/bits"
)

// Outcome classifies what an ECC would do with a corruption.
type Outcome uint8

const (
	// OK: no corruption present.
	OK Outcome = iota
	// Corrected: the decoder repaired the word exactly.
	Corrected
	// Detected: the decoder flagged an uncorrectable error (machine check;
	// typically a crash, but no silent corruption).
	Detected
	// Miscorrected: the decoder "repaired" the word into a *different*
	// wrong value — silent data corruption with extra damage.
	Miscorrected
	// Undetected: the corrupted word passed the check unnoticed — silent
	// data corruption.
	Undetected
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	case Miscorrected:
		return "miscorrected"
	case Undetected:
		return "undetected"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Silent reports whether the outcome is silent data corruption.
func (o Outcome) Silent() bool { return o == Miscorrected || o == Undetected }

// SECDED is an Hsiao single-error-correct double-error-detect code with k
// data bits and r check bits. Columns of the parity-check matrix are
// distinct odd-weight r-bit vectors, which guarantees:
//   - single errors produce a syndrome equal to their column (correctable);
//   - double errors produce an even-weight nonzero syndrome (detected,
//     never confused with a single error);
//   - triple errors produce odd-weight syndromes and are miscorrected if
//     the syndrome collides with a column, detected otherwise;
//   - some ≥4-bit errors alias to syndrome zero and pass undetected.
type SECDED struct {
	k, r    int
	columns []uint32 // column (syndrome) of each codeword bit, data first then check
	colIdx  map[uint32]int
}

// NewSECDED3932 returns the (39,32) code protecting 32-bit words.
func NewSECDED3932() *SECDED { return newSECDED(32, 7) }

// NewSECDED7264 returns the (72,64) code used on ECC DIMMs.
func NewSECDED7264() *SECDED { return newSECDED(64, 8) }

func newSECDED(k, r int) *SECDED {
	c := &SECDED{k: k, r: r, colIdx: make(map[uint32]int)}
	// Data columns: odd-weight vectors of weight >= 3, ascending.
	var dataCols []uint32
	for w := 3; w <= r && len(dataCols) < k; w += 2 {
		for v := uint32(1); v < 1<<uint(r) && len(dataCols) < k; v++ {
			if bits.OnesCount32(v) == w {
				dataCols = append(dataCols, v)
			}
		}
	}
	if len(dataCols) < k {
		panic(fmt.Sprintf("ecc: cannot build Hsiao code (%d,%d)", k+r, k))
	}
	c.columns = append(c.columns, dataCols...)
	// Check-bit columns: weight-1 vectors.
	for i := 0; i < r; i++ {
		c.columns = append(c.columns, 1<<uint(i))
	}
	for i, col := range c.columns {
		c.colIdx[col] = i
	}
	return c
}

// N returns the codeword length in bits.
func (c *SECDED) N() int { return c.k + c.r }

// K returns the data length in bits.
func (c *SECDED) K() int { return c.k }

// dataMask masks stored values to the code's data width.
func (c *SECDED) dataMask() uint64 {
	if c.k == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(c.k) - 1
}

// Encode computes the check bits for up to 64 data bits (LSB-first). The
// codeword is the pair (data, check) — a (72,64) codeword does not fit in
// one machine word, so the two parts stay separate.
func (c *SECDED) Encode(data uint64) (uint64, uint32) {
	data &= c.dataMask()
	var check uint32
	for i := 0; i < c.k; i++ {
		if data&(1<<uint(i)) != 0 {
			check ^= c.columns[i]
		}
	}
	return data, check
}

// Syndrome computes the syndrome of a (possibly corrupted) codeword.
func (c *SECDED) Syndrome(data uint64, check uint32) uint32 {
	var s uint32
	for i := 0; i < c.k; i++ {
		if data&(1<<uint(i)) != 0 {
			s ^= c.columns[i]
		}
	}
	// Check-bit columns are weight-1 unit vectors: XOR the check value in.
	return s ^ check
}

// Decode inspects a codeword and returns the decoder's view: the
// (possibly "repaired") data and the outcome relative to original data.
// original is the data value that was encoded; the decoder itself never
// sees it — it is used only to classify miscorrection vs correction.
func (c *SECDED) Decode(data uint64, check uint32, original uint64) (uint64, Outcome) {
	original &= c.dataMask()
	s := c.Syndrome(data, check)
	if s == 0 {
		if data == original {
			return data, OK
		}
		return data, Undetected
	}
	if bits.OnesCount32(s)%2 == 1 {
		// Odd syndrome: the decoder assumes a single-bit error.
		if i, ok := c.colIdx[s]; ok {
			repaired := data
			if i < c.k {
				repaired = data ^ (1 << uint(i))
			}
			// i >= k repairs a check bit: data is untouched.
			if repaired == original {
				return repaired, Corrected
			}
			return repaired, Miscorrected
		}
		// Odd syndrome matching no column: uncorrectable.
		return data, Detected
	}
	// Even nonzero syndrome: double (or even-weight) error, uncorrectable.
	return data, Detected
}

// Classify runs the full encode→corrupt→decode path for a data word and a
// corruption mask applied to its *data bits* (the scanner only observes
// data corruption; check bits lived in the stripped ECC device).
func (c *SECDED) Classify(original uint64, flipMask uint64) Outcome {
	data, check := c.Encode(original)
	_, out := c.Decode(data^(flipMask&c.dataMask()), check, original)
	return out
}
