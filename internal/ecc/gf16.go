package ecc

// GF(16) arithmetic for the chipkill code: the field GF(2^4) with the
// primitive polynomial x^4 + x + 1 (0x13). Elements are 4-bit nibbles;
// exp/log tables make multiplication and inversion O(1).

const (
	gfPoly  = 0x13
	gfOrder = 15 // multiplicative group order
)

var (
	gfExp [2 * gfOrder]byte
	gfLog [16]byte
)

func init() {
	x := byte(1)
	for i := 0; i < gfOrder; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x10 != 0 {
			x ^= gfPoly
		}
	}
	for i := gfOrder; i < 2*gfOrder; i++ {
		gfExp[i] = gfExp[i-gfOrder]
	}
}

// gfMul multiplies two GF(16) elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b != 0).
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	if b == 0 {
		panic("ecc: division by zero in GF(16)")
	}
	return gfExp[(int(gfLog[a])-int(gfLog[b])+gfOrder)%gfOrder]
}

// gfPow returns alpha^e for the primitive element alpha = 2.
func gfPow(e int) byte {
	e %= gfOrder
	if e < 0 {
		e += gfOrder
	}
	return gfExp[e]
}
