package ecc

// Audit tallies decoder outcomes for a corruption population under one
// code. The eccaudit example and the §IV ablation benches use it to
// compare SECDED and chipkill coverage over the corruptions the study
// observed.
type Audit struct {
	Total        int
	ByOutcome    map[Outcome]int
	SilentByBits map[int]int // silent outcomes keyed by corrupted-bit count
}

// NewAudit returns an empty tally.
func NewAudit() *Audit {
	return &Audit{ByOutcome: make(map[Outcome]int), SilentByBits: make(map[int]int)}
}

// Add records one outcome for a corruption of the given bit multiplicity.
func (a *Audit) Add(o Outcome, bitCount int) {
	a.Total++
	a.ByOutcome[o]++
	if o.Silent() {
		a.SilentByBits[bitCount]++
	}
}

// Silent returns the count of silent-data-corruption outcomes.
func (a *Audit) Silent() int {
	return a.ByOutcome[Miscorrected] + a.ByOutcome[Undetected]
}

// Uncorrected returns everything the code failed to transparently fix
// (detected + silent): the quantity related work compares across codes.
func (a *Audit) Uncorrected() int {
	return a.ByOutcome[Detected] + a.Silent()
}

// Classifier is the common shape of the word-level codecs.
type Classifier interface {
	// Classify returns the outcome for a 32-bit data word and flip mask.
	Classify32(original, flipMask uint32) Outcome
}

// SECDED32 adapts SECDED (39,32) to the 32-bit Classifier shape.
type SECDED32 struct{ C *SECDED }

// Classify32 implements Classifier.
func (s SECDED32) Classify32(original, flipMask uint32) Outcome {
	return s.C.Classify(uint64(original), uint64(flipMask))
}

// Classify32 implements Classifier for chipkill.
func (c *Chipkill) Classify32(original, flipMask uint32) Outcome {
	return c.Classify(original, flipMask)
}

// RunAudit classifies each (word, mask) pair under the classifier.
func RunAudit(cl Classifier, pairs [][2]uint32) *Audit {
	a := NewAudit()
	for _, p := range pairs {
		o := cl.Classify32(p[0], p[1])
		bc := 0
		for m := p[1]; m != 0; m &= m - 1 {
			bc++
		}
		a.Add(o, bc)
	}
	return a
}
