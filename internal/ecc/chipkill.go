package ecc

// Chipkill is a single-symbol-correct / double-symbol-detect (SSC-DSD)
// Reed–Solomon code over GF(16), the standard construction for x4-device
// chipkill: each 4-bit symbol maps to one DRAM device, so any corruption —
// 1 to 4 bits — confined to a single device is corrected, and any two
// corrupted devices are detected. Related work cited by the paper ([31],
// Sridharan & Liberty) measured chipkill at 42× fewer uncorrected errors
// than SECDED.
//
// A 32-bit word becomes 8 data symbols; three check symbols give minimum
// distance 4 (correct 1 symbol, detect 2). The decoder computes syndromes
// S1 = Σ e_i α^i, S0 = Σ e_i, S2 = Σ e_i α^2i and locates a single error
// at position log(S1/S0), verifying with S2 to avoid miscorrecting double
// errors into singles.
type Chipkill struct {
	dataSymbols int
}

// NewChipkill returns the x4 chipkill code for 32-bit words (8 data + 3
// check symbols).
func NewChipkill() *Chipkill { return &Chipkill{dataSymbols: 8} }

// Symbols returns the total codeword length in symbols.
func (c *Chipkill) Symbols() int { return c.dataSymbols + 3 }

// encodeSymbols computes the three check symbols for data symbols d.
func (c *Chipkill) encodeSymbols(d []byte) (s0, s1, s2 byte) {
	for i, v := range d {
		s0 ^= v
		s1 ^= gfMul(v, gfPow(i))
		s2 ^= gfMul(v, gfPow(2*i))
	}
	return s0, s1, s2
}

// split explodes a 32-bit word into its 8 data symbols (nibbles, LSB
// first). Each nibble is the slice of the word stored in one x4 device.
func split(word uint32) []byte {
	out := make([]byte, 8)
	for i := range out {
		out[i] = byte(word>>(4*i)) & 0xf
	}
	return out
}

// Classify runs encode→corrupt→decode for a 32-bit data word and a data
// corruption mask, returning the chipkill outcome. Check symbols are
// assumed intact (they lived in the ECC device the prototype lacked).
func (c *Chipkill) Classify(original uint32, flipMask uint32) Outcome {
	if flipMask == 0 {
		return OK
	}
	data := split(original)
	s0c, s1c, s2c := c.encodeSymbols(data)
	corrupted := split(original ^ flipMask)

	// Received syndromes against stored check symbols.
	r0, r1, r2 := c.encodeSymbols(corrupted)
	S0 := r0 ^ s0c
	S1 := r1 ^ s1c
	S2 := r2 ^ s2c

	if S0 == 0 && S1 == 0 && S2 == 0 {
		return Undetected // aliased: corrupted word looks like a codeword
	}
	if S0 != 0 {
		// Hypothesize a single symbol error of value S0 at position
		// log(S1/S0); verify against S2.
		if S1 == 0 {
			// Error pattern with zero first syndrome power: cannot be a
			// single data-symbol error at a valid position unless the
			// check symbol itself is hypothesized — call it detected.
			return Detected
		}
		loc := (int(gfLog[gfDiv(S1, S0)])) % gfOrder
		if loc < c.dataSymbols && gfMul(S0, gfPow(2*loc)) == S2 {
			// Consistent single-symbol hypothesis: the decoder corrects.
			repaired := corrupted[loc] ^ S0
			if repairedWord(corrupted, loc, repaired) == original {
				return Corrected
			}
			return Miscorrected
		}
		return Detected
	}
	// S0 == 0 but S1 or S2 nonzero: even symbol-error pattern, detected.
	return Detected
}

// repairedWord reassembles a word with symbol loc replaced.
func repairedWord(symbols []byte, loc int, val byte) uint32 {
	var w uint32
	for i, s := range symbols {
		if i == loc {
			s = val
		}
		w |= uint32(s) << (4 * i)
	}
	return w
}
