package ecc

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSECDEDCodeConstruction(t *testing.T) {
	for _, c := range []*SECDED{NewSECDED3932(), NewSECDED7264()} {
		seen := make(map[uint32]bool)
		for i, col := range c.columns {
			if col == 0 {
				t.Fatalf("zero column at %d", i)
			}
			if seen[col] {
				t.Fatalf("duplicate column %x", col)
			}
			seen[col] = true
		}
		// Data columns must be odd weight >= 3; check columns weight 1.
		for i := 0; i < c.k; i++ {
			w := bits.OnesCount32(c.columns[i])
			if w%2 == 0 || w < 3 {
				t.Fatalf("data column %d weight %d", i, w)
			}
		}
		for i := c.k; i < c.N(); i++ {
			if bits.OnesCount32(c.columns[i]) != 1 {
				t.Fatalf("check column %d not weight 1", i)
			}
		}
	}
}

func TestSECDEDCleanRoundTrip(t *testing.T) {
	c := NewSECDED3932()
	for _, data := range []uint64{0, 1, 0xFFFFFFFF, 0xDEADBEEF, 0x80000001} {
		d, check := c.Encode(data)
		if s := c.Syndrome(d, check); s != 0 {
			t.Fatalf("clean codeword has syndrome %x", s)
		}
		got, out := c.Decode(d, check, data)
		if out != OK || got != data {
			t.Fatalf("clean decode: %v %x", out, got)
		}
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	c := NewSECDED3932()
	data := uint64(0xCAFEBABE)
	d, check := c.Encode(data)
	for i := 0; i < c.N(); i++ {
		fd, fc := d, check
		if i < c.K() {
			fd ^= 1 << uint(i)
		} else {
			fc ^= 1 << uint(i-c.K())
		}
		got, out := c.Decode(fd, fc, data)
		if out != Corrected {
			t.Fatalf("single-bit flip at %d: outcome %v", i, out)
		}
		if got != data {
			t.Fatalf("single-bit flip at %d: repaired to %x", i, got)
		}
	}
}

func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	// The Hsiao guarantee: no double error is miscorrected or missed.
	c := NewSECDED3932()
	data := uint64(0x12345678)
	d, check := c.Encode(data)
	flip := func(fd uint64, fc uint32, i int) (uint64, uint32) {
		if i < c.K() {
			return fd ^ 1<<uint(i), fc
		}
		return fd, fc ^ 1<<uint(i-c.K())
	}
	for i := 0; i < c.N(); i++ {
		for j := i + 1; j < c.N(); j++ {
			fd, fc := flip(d, check, i)
			fd, fc = flip(fd, fc, j)
			_, out := c.Decode(fd, fc, data)
			if out != Detected {
				t.Fatalf("double flip (%d,%d): outcome %v", i, j, out)
			}
		}
	}
}

func TestSECDEDTripleBitsGoSilentOrDetected(t *testing.T) {
	// Triples have odd syndromes: either miscorrected (silent!) or
	// detected. Some MUST miscorrect — that is the paper's SDC mechanism.
	c := NewSECDED3932()
	data := uint64(0xFFFFFFFF)
	d, check := c.Encode(data)
	mis, det := 0, 0
	for i := 0; i < c.k; i++ {
		for j := i + 1; j < c.k; j++ {
			for k := j + 1; k < c.k; k += 5 {
				_, out := c.Decode(d^(1<<uint(i))^(1<<uint(j))^(1<<uint(k)), check, data)
				switch out {
				case Miscorrected:
					mis++
				case Detected:
					det++
				default:
					t.Fatalf("triple (%d,%d,%d): outcome %v", i, j, k, out)
				}
			}
		}
	}
	if mis == 0 {
		t.Fatal("no triple miscorrected: SDC mechanism missing")
	}
	if det == 0 {
		t.Fatal("no triple detected: decoder too permissive")
	}
}

func TestSECDEDNeverOKWithFlips(t *testing.T) {
	c := NewSECDED3932()
	f := func(data uint32, mask uint32) bool {
		if mask == 0 {
			return c.Classify(uint64(data), 0) == OK
		}
		out := c.Classify(uint64(data), uint64(mask))
		if bits.OnesCount32(mask) == 1 {
			return out == Corrected
		}
		if bits.OnesCount32(mask) == 2 {
			return out == Detected
		}
		return out != OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSECDED7264(t *testing.T) {
	c := NewSECDED7264()
	data := uint64(0x0123456789ABCDEF)
	d, check := c.Encode(data)
	if s := c.Syndrome(d, check); s != 0 {
		t.Fatalf("clean syndrome %x", s)
	}
	for _, i := range []int{0, 17, 63, 64, 71} {
		fd, fc := d, check
		if i < 64 {
			fd ^= 1 << uint(i)
		} else {
			fc ^= 1 << uint(i-64)
		}
		if got, out := c.Decode(fd, fc, data); out != Corrected || got != data {
			t.Fatalf("72,64 single flip at %d: %v", i, out)
		}
	}
	if _, out := c.Decode(d^3, check, data); out != Detected {
		t.Fatalf("72,64 double flip: %v", out)
	}
}

func TestChipkillCorrectsAnySingleSymbol(t *testing.T) {
	ck := NewChipkill()
	words := []uint32{0, 0xFFFFFFFF, 0xDEADBEEF, 0x00000001}
	for _, w := range words {
		for sym := 0; sym < 8; sym++ {
			for pat := uint32(1); pat < 16; pat++ {
				mask := pat << (4 * sym)
				out := ck.Classify(w, mask)
				if out != Corrected {
					t.Fatalf("word %08x, symbol %d, pattern %x: %v (chipkill must fix any single device)",
						w, sym, pat, out)
				}
			}
		}
	}
}

func TestChipkillDetectsDoubleSymbols(t *testing.T) {
	ck := NewChipkill()
	rnd := rand.New(rand.NewPCG(5, 6))
	silent := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		w := rnd.Uint32()
		s1 := rnd.IntN(8)
		s2 := rnd.IntN(8)
		for s2 == s1 {
			s2 = rnd.IntN(8)
		}
		p1 := uint32(1 + rnd.IntN(15))
		p2 := uint32(1 + rnd.IntN(15))
		mask := p1<<(4*s1) | p2<<(4*s2)
		out := ck.Classify(w, mask)
		if out == Corrected || out == OK {
			t.Fatalf("double-symbol corruption silently accepted: %v", out)
		}
		if out.Silent() {
			silent++
		}
	}
	// SSC-DSD guarantees detection of any two symbol errors.
	if silent != 0 {
		t.Fatalf("%d/%d double-symbol errors were silent", silent, trials)
	}
}

func TestChipkillVsSECDEDOnAdjacentQuad(t *testing.T) {
	// A 4-bit burst inside one device: chipkill corrects, SECDED can go
	// silent or detect but never correct — the §IV comparison in one case.
	ck := NewChipkill()
	sec := NewSECDED3932()
	word := uint32(0xFFFFFFFF)
	mask := uint32(0xF) << 8 // all 4 bits of device 2
	if out := ck.Classify(word, mask); out != Corrected {
		t.Fatalf("chipkill on intra-device quad: %v", out)
	}
	if out := sec.Classify(uint64(word), uint64(mask)); out == Corrected || out == OK {
		t.Fatalf("SECDED transparently passed an intra-device quad: %v", out)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		Detected.String() != "detected" || Miscorrected.String() != "miscorrected" ||
		Undetected.String() != "undetected" {
		t.Fatal("outcome strings")
	}
	if !Miscorrected.Silent() || !Undetected.Silent() || Detected.Silent() {
		t.Fatal("silent classification")
	}
}

func TestGF16Axioms(t *testing.T) {
	for a := byte(0); a < 16; a++ {
		if gfMul(a, 1) != a || gfMul(1, a) != a {
			t.Fatal("multiplicative identity")
		}
		if gfMul(a, 0) != 0 {
			t.Fatal("zero annihilates")
		}
		for b := byte(0); b < 16; b++ {
			if gfMul(a, b) != gfMul(b, a) {
				t.Fatal("commutativity")
			}
			if b != 0 {
				if gfDiv(gfMul(a, b), b) != a {
					t.Fatal("division inverts multiplication")
				}
			}
			for c := byte(0); c < 16; c++ {
				if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
					t.Fatal("associativity")
				}
				if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
					t.Fatal("distributivity")
				}
			}
		}
	}
}

func TestRunAudit(t *testing.T) {
	pairs := [][2]uint32{
		{0xFFFFFFFF, 0x1},      // single: corrected
		{0xFFFFFFFF, 0x3},      // double: detected
		{0xFFFFFFFF, 0x0},      // clean
		{0x12345678, 0x10101},  // triple
		{0xABCDEF01, 0xF0F0F0}, // 12 bits
	}
	a := RunAudit(SECDED32{C: NewSECDED3932()}, pairs)
	if a.Total != 5 {
		t.Fatalf("total %d", a.Total)
	}
	if a.ByOutcome[Corrected] != 1 || a.ByOutcome[Detected] < 1 || a.ByOutcome[OK] != 1 {
		t.Fatalf("outcomes %v", a.ByOutcome)
	}
	if a.Uncorrected() != a.Total-a.ByOutcome[Corrected]-a.ByOutcome[OK] {
		t.Fatal("uncorrected arithmetic")
	}
}
