package ecc_test

import (
	"fmt"

	"unprotected/internal/ecc"
)

// A single-bit flip is transparently corrected; a double-bit flip is
// detected (machine check); some ≥3-bit flips are silently miscorrected —
// the SDC mechanism behind the paper's §III-D events.
func ExampleSECDED_Classify() {
	code := ecc.NewSECDED3932()
	fmt.Println("1 bit: ", code.Classify(0xFFFFFFFF, 1<<7))
	fmt.Println("2 bits:", code.Classify(0xFFFFFFFF, 1<<7|1<<19))
	// Output:
	// 1 bit:  corrected
	// 2 bits: detected
}

// Chipkill corrects any corruption confined to one x4 device, even all
// four of its bits at once.
func ExampleChipkill_Classify() {
	ck := ecc.NewChipkill()
	fmt.Println("whole device:", ck.Classify(0xDEADBEEF, 0xF<<12))
	fmt.Println("two devices: ", ck.Classify(0xDEADBEEF, 1<<0|1<<31))
	// Output:
	// whole device: corrected
	// two devices:  detected
}
