package faults

import (
	"sync"

	"unprotected/internal/cluster"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// Swapped implements the paper's second §VI proposal: "swap some
// components from the most faulty nodes with some healthy nodes to further
// improve the memory error characterization". The wrapped fault source
// represents a physical component (a DIMM, a regulator); before the swap
// instant it manifests on the Before node, afterwards on the After node.
// If the errors follow the component, the root cause is the component; if
// they had stayed with the chassis position, it would have been
// environmental — exactly the attribution experiment the authors propose.
type Swapped struct {
	At     timebase.T
	Before cluster.NodeID
	After  cluster.NodeID
	Inner  Source

	// mu serializes Emit: both nodes' simulations share this one
	// component and may run on different workers.
	mu sync.Mutex
}

// Emit clips the session window to the half of the study during which the
// component lives in this session's node, then delegates.
func (s *Swapped) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	clipped := *ctx
	switch ctx.Node {
	case s.Before:
		if ctx.Window.From >= s.At {
			return 0
		}
		if clipped.Window.To > s.At {
			clipped.Window.To = s.At
		}
	case s.After:
		if ctx.Window.To <= s.At {
			return 0
		}
		if clipped.Window.From < s.At {
			clipped.Window.From = s.At
		}
	default:
		return 0
	}
	return s.Inner.Emit(&clipped, out)
}
