package faults

import (
	"math"

	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// ThermalRetention models temperature-accelerated retention failures for
// the paper's §VI stress-test proposal ("turning on the nodes with heating
// issues and monitoring them as well as their neighbors"). DRAM retention
// time roughly halves every ~10°C, so the fault rate follows an
// Arrhenius-style doubling law above a reference temperature. At nominal
// scanner temperatures (30–40°C) the source is negligible — consistent
// with §III-F finding no temperature correlation — but an always-powered
// SoC-12 position running >60°C accumulates observable retention errors.
type ThermalRetention struct {
	// BaseRatePerHour is the observable fault rate at RefTempC.
	BaseRatePerHour float64
	// RefTempC anchors the doubling law.
	RefTempC float64
	// DoublingC is the temperature increase that doubles the rate.
	DoublingC float64
	// MaxTempC bounds the thinning envelope (the thermal model never
	// exceeds it).
	MaxTempC float64
}

// NewThermalRetention returns the stress-test calibration: ~0.02
// observable faults per hour at 65°C, halving every 10°C below.
func NewThermalRetention() *ThermalRetention {
	return &ThermalRetention{
		BaseRatePerHour: 0.02,
		RefTempC:        65,
		DoublingC:       10,
		MaxTempC:        80,
	}
}

// rateAt converts a temperature to the instantaneous rate per hour.
func (tr *ThermalRetention) rateAt(tempC float64) float64 {
	if tempC <= 0 {
		return 0
	}
	return tr.BaseRatePerHour * math.Pow(2, (tempC-tr.RefTempC)/tr.DoublingC)
}

// Emit samples retention failures over the session by thinning against
// the maximum-temperature envelope. Each failure discharges one cell; the
// polarity/phase rules decide observability like every other source.
func (tr *ThermalRetention) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	maxRate := tr.rateAt(tr.MaxTempC) / 3600
	if maxRate <= 0 {
		return 0
	}
	var raw int64
	t := float64(ctx.Window.From)
	node := uint64(ctx.Node.Index())
	for {
		t += ctx.Rng.Exp(maxRate)
		if t >= float64(ctx.Window.To) {
			return raw
		}
		at := timebase.T(t)
		temp := ctx.Temp(at)
		accept := tr.rateAt(temp) / tr.rateAt(tr.MaxTempC)
		if !ctx.Rng.Bernoulli(accept) {
			continue
		}
		k := ctx.iterAt(at)
		detect := ctx.detectAt(k)
		if detect < 0 {
			return raw
		}
		stored := ctx.storedAt(k)
		addr := dram.Addr(ctx.Rng.Int64N(ctx.Words))
		cells := dram.BitSetOf(ctx.Scrambler.ToLogical(ctx.Rng.IntN(dram.WordBits)))
		pol := ctx.Polarity.WordPolarity(node, addr)
		corrupted, o2z, z2o := dram.DischargeObserved(stored, cells, pol)
		if o2z|z2o == 0 {
			continue
		}
		*out = append(*out, ctx.run(addr, detect, detect, 1, stored, corrupted))
		raw++
	}
}
