package faults

import (
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/radiation"
	"unprotected/internal/scanner"
	"unprotected/internal/timebase"
)

// RecurringSite is a word containing two (occasionally three) strike-
// susceptible cells that repeatedly fail together, producing the recurring
// multi-bit patterns of Table I (the 0xffff7bff pattern fired 36 times).
//
// Firing is radiation-driven — the site's susceptibility multiplies the
// diurnal neutron flux, which gives Fig 6 its noon bell — and, when the
// site lives on a node with a degrading component (02-04), it additionally
// scales with the node's stress factor, reproducing Fig 11's November
// multi-bit burst and the §III-C co-occurrence of double-bit errors with
// simultaneous singles.
type RecurringSite struct {
	Addr dram.Addr
	// Cells are the logical bit positions that discharge together.
	Cells dram.BitSet
	// ModeAffinity is the scan mode under which the cells are observable.
	ModeAffinity scanner.Mode
	// RatePerHour is the base firing rate while scanning (before flux and
	// stress modulation), calibrated per site to its Table I occurrences.
	RatePerHour float64
	// Flux modulates firing with solar elevation.
	Flux *radiation.Flux
	// Stress, when non-nil, scales susceptibility with node degradation
	// and spawns companion glitch singles in the firing iteration.
	Stress *Controller
	// CompanionProb is the chance a firing under stress is accompanied by
	// glitch singles at other addresses in the same iteration.
	CompanionProb float64
	// CounterLowBits constrains counter-affine sites: their cells sit in
	// the low bits so small counter values exercise them (Table I's
	// 0x000003c1 → 0x000003c2).
	CounterLowBits bool
}

// Emit samples firings over the session by thinning against the maximum
// modulation, then materializes the word pattern under the session phase.
func (s *RecurringSite) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	if ctx.Mode != s.ModeAffinity || s.RatePerHour <= 0 {
		return 0
	}
	if int64(s.Addr) >= ctx.Words {
		return 0
	}
	maxMult := s.Flux.MaxMultiplier()
	stressMax := 1.0
	maxRate := s.RatePerHour * maxMult * stressMax / 3600
	var raw int64
	t := float64(ctx.Window.From)
	for {
		t += ctx.Rng.Exp(maxRate)
		if t >= float64(ctx.Window.To) {
			return raw
		}
		at := timebase.T(t)
		accept := s.Flux.Multiplier(at) / maxMult
		if s.Stress != nil {
			accept *= s.Stress.StressFactor(at)
		}
		if !ctx.Rng.Bernoulli(accept) {
			continue
		}
		k := ctx.iterAt(at)
		expected, actual, ok := s.materialize(ctx, k)
		if !ok {
			continue
		}
		detect := ctx.detectAt(k)
		if detect < 0 {
			return raw
		}
		*out = append(*out, ctx.run(s.Addr, detect, detect, 1, expected, actual))
		raw++
		if s.Stress != nil && ctx.Rng.Bernoulli(s.CompanionProb) {
			n := 1 + ctx.Rng.IntN(3)
			raw += s.Stress.EmitGlitch(ctx, at, n, out)
		}
	}
}

// materialize renders the multi-bit discharge under the phase of iteration
// k. In flip mode the cells only show in the 0xFFFFFFFF phase (all 1→0);
// iteration parity is adjusted to the next observable check. In counter
// mode every selected cell flips against the stored counter value.
func (s *RecurringSite) materialize(ctx *SessionCtx, k int64) (expected, actual uint32, ok bool) {
	mask := uint32(s.Cells)
	switch s.ModeAffinity {
	case scanner.FlipMode:
		expected = ctx.Mode.Expected(k + 1)
		if expected != 0xFFFFFFFF {
			return 0, 0, false // cells discharged invisibly in the zero phase
		}
		return expected, expected &^ mask, true
	default: // CounterMode
		expected = ctx.Mode.Expected(k + 1)
		if s.CounterLowBits && expected > 0xFFFF {
			// Long sessions push the counter beyond the low-bit regime the
			// site exercises; treat as unobservable to keep Table I's
			// small expected values.
			return 0, 0, false
		}
		return expected, expected ^ mask, expected != expected^mask
	}
}
