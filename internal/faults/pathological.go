package faults

import (
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// Pathological models the node responsible for over 98% of the 25 million
// raw error logs (§III-B): a component failure so severe that dozens of
// addresses fail on every scan pass, continuously, for months. Production
// systems replace such nodes; the paper removed it from the error
// characterization, so this source contributes raw log volume (and
// scanning hours) but no characterized faults.
type Pathological struct {
	// Active is the failure period.
	Active Burst
	// AddrsPerIter is the mean number of addresses failing each pass.
	AddrsPerIter float64
}

// Emit counts the raw logs the scanner would produce during the session.
// No runs are appended: the node is excluded from characterization before
// extraction, exactly as in the paper.
func (p *Pathological) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	from, to := ctx.Window.From, ctx.Window.To
	if from < p.Active.From {
		from = p.Active.From
	}
	if to > p.Active.To {
		to = p.Active.To
	}
	if to <= from {
		return 0
	}
	iters := int64(to-from) / int64(ctx.IterDur)
	// Per-iteration failing-address count fluctuates mildly around the mean.
	jitter := 0.98 + 0.04*ctx.Rng.Float64()
	return int64(float64(iters) * p.AddrsPerIter * jitter)
}

// ContinuousWindows returns full-availability scan windows for the node
// once it failed: it was removed from the job scheduler pool, so the
// epilogue-started scanner simply never got SIGTERMed again. The campaign
// substitutes these windows for scheduler-generated ones during the active
// period.
func (p *Pathological) ContinuousWindows(upTo timebase.T) []Burst {
	if p.Active.To < upTo {
		upTo = p.Active.To
	}
	if upTo <= p.Active.From {
		return nil
	}
	return []Burst{{From: p.Active.From, To: upTo}}
}
