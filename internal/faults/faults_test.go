package faults

import (
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/radiation"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/sched"
	"unprotected/internal/solar"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// testCtx builds a session context over [from, from+hours h).
func testCtx(from timebase.T, hours int, mode scanner.Mode, seed uint64) *SessionCtx {
	alloc := int64(3 << 30)
	return &SessionCtx{
		Node:      cluster.NodeID{Blade: 2, SoC: 4},
		Window:    sched.Window{From: from, To: from + timebase.T(hours*3600)},
		Alloc:     alloc,
		Mode:      mode,
		IterDur:   scanner.IterDuration(alloc),
		Words:     alloc / 4,
		Rng:       rng.New(seed),
		Temp:      func(at timebase.T) float64 { return thermal.NoReading },
		Polarity:  dram.NewPolarityMap(1),
		Scrambler: dram.NewScrambler(),
	}
}

func TestWeakBitEmission(t *testing.T) {
	w := &WeakBit{
		Addr: 100, Bit: 13, LeakPerCheck: 0.05,
		Bursts: []Burst{{From: 0, To: 48 * 3600}},
	}
	ctx := testCtx(0, 48, scanner.FlipMode, 1)
	var runs []extract.RawRun
	raw := w.Emit(ctx, &runs)
	if len(runs) == 0 {
		t.Fatal("no leaks in a 48h burst at 5%/check")
	}
	if raw < int64(len(runs)) {
		t.Fatal("raw logs below run count")
	}
	for _, r := range runs {
		if r.Expected != 0xFFFFFFFF || r.Actual != 0xFFFFFFFF&^(1<<13) {
			t.Fatalf("weak bit pattern wrong: %08x -> %08x", r.Expected, r.Actual)
		}
		if r.FirstAt < ctx.Window.From || r.FirstAt >= ctx.Window.To {
			t.Fatal("run outside window")
		}
		f := extract.Classify(r)
		if f.BitCount() != 1 || f.Ones2Zeros.Count() != 1 {
			t.Fatal("weak bit must be a single 1->0 flip")
		}
	}
}

func TestWeakBitIgnoresCounterMode(t *testing.T) {
	w := &WeakBit{Addr: 1, Bit: 2, LeakPerCheck: 1, Bursts: []Burst{{From: 0, To: 1e6}}}
	ctx := testCtx(0, 100, scanner.CounterMode, 2)
	var runs []extract.RawRun
	if w.Emit(ctx, &runs) != 0 || len(runs) != 0 {
		t.Fatal("weak bit fired in counter mode")
	}
}

func TestWeakBitOutsideBurstQuiet(t *testing.T) {
	w := &WeakBit{Addr: 1, Bit: 2, LeakPerCheck: 1,
		Bursts: []Burst{{From: 1000 * 86400, To: 1001 * 86400}}}
	ctx := testCtx(0, 100, scanner.FlipMode, 3)
	var runs []extract.RawRun
	if w.Emit(ctx, &runs); len(runs) != 0 {
		t.Fatal("weak bit fired outside its bursts")
	}
}

func newTestController(from, rampAt timebase.T) *Controller {
	pool := make([]dram.Addr, 500)
	for i := range pool {
		pool[i] = dram.Addr(i * 1000)
	}
	return &Controller{
		Active:        Burst{From: from, To: timebase.T(timebase.StudySeconds)},
		PeakRate:      50,
		RampUntil:     rampAt,
		AddrPool:      pool,
		Patterns:      DefaultPatterns(),
		MeanAddrs:     3,
		SingleProb:    0.5,
		MeanRunChecks: 2,
		MaxBurstAddrs: 36,
	}
}

func TestControllerGlitchSimultaneity(t *testing.T) {
	c := newTestController(0, 1) // at peak immediately
	ctx := testCtx(3600, 24, scanner.FlipMode, 4)
	var runs []extract.RawRun
	raw := c.Emit(ctx, &runs)
	if len(runs) < 100 {
		t.Fatalf("only %d runs from a 24h degraded session", len(runs))
	}
	if raw < int64(len(runs)) {
		t.Fatal("raw below run count")
	}
	// Glitches hitting several addresses share detection timestamps.
	groups := extract.Groups(extract.Faults(runs))
	multi := 0
	for _, g := range groups {
		if len(g.Faults) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no simultaneous multi-address glitches")
	}
}

func TestControllerInactiveBeforeOnset(t *testing.T) {
	onset := timebase.T(200 * 86400)
	c := newTestController(onset, onset+86400)
	ctx := testCtx(0, 48, scanner.FlipMode, 5)
	var runs []extract.RawRun
	if c.Emit(ctx, &runs); len(runs) != 0 {
		t.Fatal("controller fired before degradation onset")
	}
	if c.StressFactor(0) != 0 {
		t.Fatal("stress should be 0 before onset")
	}
	if c.StressFactor(onset+2*86400) <= 0 {
		t.Fatal("stress should be positive after onset")
	}
}

func TestControllerBigBurst(t *testing.T) {
	c := newTestController(0, 1)
	c.PeakRate = 0.0001 // keep background quiet
	c.BigBurstAt = 7200
	ctx := testCtx(0, 24, scanner.FlipMode, 6)
	var runs []extract.RawRun
	c.Emit(ctx, &runs)
	groups := extract.Groups(extract.Faults(runs))
	var biggest int
	for _, g := range groups {
		if tb := g.TotalBits(); tb > biggest {
			biggest = tb
		}
	}
	if biggest != 36 {
		t.Fatalf("big burst produced %d bits, want 36 (forced observability)", biggest)
	}
	// Fires exactly once across sessions.
	var more []extract.RawRun
	c.Emit(testCtx(90000, 24, scanner.FlipMode, 7), &more)
	for _, r := range more {
		_ = r
	}
	if c.bigDone != true {
		t.Fatal("big burst not latched")
	}
}

func TestScheduledMultiCarryForward(t *testing.T) {
	c := newTestController(0, 1)
	c.PeakRate = 0.0001
	sm := &ScheduledMulti{
		At:         1000, // before the session starts
		Masks:      []dram.BitSet{dram.BitSetOf(3, 9, 14)},
		Addrs:      []dram.Addr{77},
		Companions: 1,
	}
	c.ScheduledMulti = []*ScheduledMulti{sm}
	ctx := testCtx(50000, 24, scanner.FlipMode, 8)
	var runs []extract.RawRun
	c.Emit(ctx, &runs)
	if !sm.done {
		t.Fatal("scheduled event should have carried into the session")
	}
	var triple *extract.RawRun
	for i := range runs {
		if f := extract.Classify(runs[i]); f.BitCount() == 3 {
			triple = &runs[i]
		}
	}
	if triple == nil {
		t.Fatal("no triple-bit corruption emitted")
	}
	// Its companion single shares the timestamp.
	foundCompanion := false
	for _, r := range runs {
		if r.Addr != triple.Addr && r.FirstAt == triple.FirstAt {
			foundCompanion = true
		}
	}
	if !foundCompanion {
		t.Fatal("triple lacks a simultaneous companion single")
	}
}

func TestPathologicalRawVolume(t *testing.T) {
	p := &Pathological{Active: Burst{From: 0, To: 1e9}, AddrsPerIter: 20}
	ctx := testCtx(0, 24, scanner.FlipMode, 9)
	var runs []extract.RawRun
	raw := p.Emit(ctx, &runs)
	if len(runs) != 0 {
		t.Fatal("pathological node must not emit characterized runs")
	}
	iters := int64(24*3600) / int64(ctx.IterDur)
	want := float64(iters) * 20
	if float64(raw) < want*0.95 || float64(raw) > want*1.05 {
		t.Fatalf("raw volume %d, want ~%.0f", raw, want)
	}
	ws := p.ContinuousWindows(1000)
	if len(ws) != 1 || ws[0].From != 0 || ws[0].To != 1000 {
		t.Fatalf("continuous windows %v", ws)
	}
}

func TestIsolatedStrikeExactBits(t *testing.T) {
	for _, bits := range []int{4, 5, 6, 8, 9} {
		s := &IsolatedStrike{At: 5000, BitCount: bits, Addr: 999, PhysStart: 7}
		ctx := testCtx(0, 24, scanner.FlipMode, uint64(bits))
		var runs []extract.RawRun
		if raw := s.Emit(ctx, &runs); raw != 1 || len(runs) != 1 {
			t.Fatalf("strike emission: raw=%d runs=%d", raw, len(runs))
		}
		f := extract.Classify(runs[0])
		if f.BitCount() != bits {
			t.Fatalf("strike bit count %d, want %d", f.BitCount(), bits)
		}
		if !s.Consumed() {
			t.Fatal("strike not consumed")
		}
		// Never fires twice.
		var again []extract.RawRun
		if s.Emit(ctx, &again); len(again) != 0 {
			t.Fatal("strike fired twice")
		}
	}
}

func TestIsolatedStrikeCarriesToNextSession(t *testing.T) {
	s := &IsolatedStrike{At: 100, BitCount: 4, Addr: 10, PhysStart: 3}
	late := testCtx(10000, 2, scanner.FlipMode, 11)
	var runs []extract.RawRun
	s.Emit(late, &runs)
	if len(runs) != 1 || runs[0].FirstAt < late.Window.From {
		t.Fatalf("carry-forward failed: %+v", runs)
	}
}

func TestRecurringSiteModeAffinity(t *testing.T) {
	flux := radiation.NewFlux(solar.Barcelona)
	site := &RecurringSite{
		Addr: 500, Cells: dram.BitSetOf(9, 11), ModeAffinity: scanner.FlipMode,
		RatePerHour: 5, Flux: flux,
	}
	ctx := testCtx(0, 48, scanner.CounterMode, 12)
	var runs []extract.RawRun
	if site.Emit(ctx, &runs); len(runs) != 0 {
		t.Fatal("flip-affine site fired in counter mode")
	}
	ctx = testCtx(0, 48, scanner.FlipMode, 13)
	site.Emit(ctx, &runs)
	if len(runs) == 0 {
		t.Fatal("site never fired at 5/hour over 48h")
	}
	for _, r := range runs {
		f := extract.Classify(r)
		if f.BitCount() != 2 || r.Expected != 0xFFFFFFFF {
			t.Fatalf("site pattern: %08x -> %08x", r.Expected, r.Actual)
		}
	}
}

func TestRecurringCounterSiteLowBits(t *testing.T) {
	flux := radiation.NewFlux(solar.Barcelona)
	site := &RecurringSite{
		Addr: 500, Cells: dram.BitSetOf(0, 1), ModeAffinity: scanner.CounterMode,
		RatePerHour: 10, Flux: flux, CounterLowBits: true,
	}
	ctx := testCtx(0, 48, scanner.CounterMode, 14)
	var runs []extract.RawRun
	site.Emit(ctx, &runs)
	if len(runs) == 0 {
		t.Fatal("counter site never fired")
	}
	for _, r := range runs {
		if r.Expected > 0xFFFF {
			t.Fatalf("counter site fired at large expected %x", r.Expected)
		}
		if extract.Classify(r).BitCount() != 2 {
			t.Fatal("counter site should flip its two cells")
		}
	}
}

func TestStudyT(t *testing.T) {
	ts := StudyT(2015, time.November, 14, 13, 0)
	if ts.Time() != time.Date(2015, time.November, 14, 13, 0, 0, 0, time.UTC) {
		t.Fatalf("StudyT mapping: %v", ts.Time())
	}
}
