// Package faults implements the fault taxonomy the paper's data implies,
// as generative models that emit extract.RawRun streams during scan
// sessions:
//
//   - WeakBit (§III-H): a manufacturing-variability cell that leaks charge
//     intermittently, in bursts — nodes 04-05 and 58-02, whose thousands of
//     errors were all the identical bit flip;
//   - Controller (§III-H): a node-level electrical fault (loose DIMM,
//     capacitive noise, or a failing component outside the DRAM itself)
//     that corrupts many unrelated addresses at once — node 02-04, >50,000
//     errors over 11,000 addresses with ~30 corruption patterns;
//   - Pathological (§III-B): the node producing 98% of all raw logs, a
//     classic replace-on-failure case, excluded from characterization;
//   - RecurringSite (Table I): a word with a pair of strike-susceptible
//     cells that repeatedly produces the same multi-bit corruption;
//   - IsolatedStrike (§III-D): scheduled high-energy events corrupting >3
//     bits of one word on otherwise error-free nodes — the silent-data-
//     corruption cases;
//   - Ambient strikes: the radiation-driven background of transient
//     single-bit (and rare multi-word shower) upsets on healthy nodes.
package faults

import (
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/sched"
	"unprotected/internal/timebase"
)

// SessionCtx is everything a fault source needs to materialize errors
// during one scan session.
type SessionCtx struct {
	Node    cluster.NodeID
	Window  sched.Window
	Alloc   int64
	Mode    scanner.Mode
	IterDur timebase.T
	Words   int64
	Rng     *rng.Stream
	// Temp returns the logged node temperature at an instant.
	Temp func(at timebase.T) float64
	// Polarity resolves cell polarity for observability decisions.
	Polarity *dram.PolarityMap
	// Scrambler maps physical cell runs to logical bit sets.
	Scrambler *dram.Scrambler

	// picks is scratch for address sampling, reused across glitches and —
	// since the campaign engine reuses one SessionCtx per node — across
	// windows. Sources borrow it through pickN.
	picks []int
}

// pickN samples n distinct ints from [0, m) without replacement, exactly
// like ctx.Rng.PickN, into session-owned scratch: the returned slice is
// valid until the next pickN call on this ctx.
func (c *SessionCtx) pickN(n, m int) []int {
	c.picks = c.Rng.PickNAppend(c.picks[:0], n, m)
	return c.picks
}

// iterAt returns the scan iteration containing t.
func (c *SessionCtx) iterAt(t timebase.T) int64 {
	if t < c.Window.From {
		return 0
	}
	return int64(t-c.Window.From) / int64(c.IterDur)
}

// detectAt returns the timestamp at which iteration k's corruption is
// detected (the check of iteration k+1), or a negative value when the
// session ends first.
func (c *SessionCtx) detectAt(k int64) timebase.T {
	at := c.Window.From + timebase.T(k+1)*c.IterDur
	if at >= c.Window.To {
		return -1
	}
	return at
}

// storedAt returns the pattern value held in memory during iteration k
// (the value written by iteration k, checked by iteration k+1).
func (c *SessionCtx) storedAt(k int64) uint32 { return c.Mode.Write(k) }

// run emits a RawRun for a corruption first detected at "at".
func (c *SessionCtx) run(addr dram.Addr, at, lastAt timebase.T, logs int, expected, actual uint32) extract.RawRun {
	if lastAt < at {
		lastAt = at
	}
	if lastAt >= c.Window.To {
		lastAt = c.Window.To - 1
	}
	return extract.RawRun{
		Node: c.Node, Addr: addr, FirstAt: at, LastAt: lastAt, Logs: logs,
		Expected: expected, Actual: actual, TempC: c.Temp(at),
	}
}

// Source generates error runs for one node during a session.
type Source interface {
	// Emit appends runs observed during the session and returns the number
	// of raw ERROR log records they represent.
	Emit(ctx *SessionCtx, out *[]extract.RawRun) int64
}

// Plan is the complete fault assignment of one node.
type Plan struct {
	Node    *cluster.Node
	Sources []Source
	// Pathological, when set, replaces characterized output with bulk raw
	// logging (the node is excluded from the study's error analyses).
	Pathological *Pathological
}

// StudyT converts a calendar date to study time; a convenience for
// profiles placing scheduled events.
func StudyT(year int, month time.Month, day, hour, min int) timebase.T {
	return timebase.FromTime(time.Date(year, month, day, hour, min, 0, 0, time.UTC))
}
