package faults

import (
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/radiation"
)

// Ambient is the radiation-driven background every scanned node sees:
// occasional transient strikes, overwhelmingly single-cell, occasionally a
// multi-cell event. Multi-cell strikes follow DRAM layout: adjacent cells
// in a row belong to *different* logical words (column interleaving), so a
// shower manifests as several simultaneous single-bit errors in different
// memory regions; only the rare intra-column burst corrupts multiple bits
// of one word.
type Ambient struct {
	Gen *radiation.Generator
	// ColumnBurstProb is the chance a multi-cell strike lands within one
	// word's cells instead of across words.
	ColumnBurstProb float64
	// AddrStride spaces the words hit by a row-run shower; adjacent row
	// cells map to addresses far apart in the scanner's address space.
	AddrStride int64
}

// NewAmbient builds the background source with the study's geometry mix.
func NewAmbient(gen *radiation.Generator) *Ambient {
	return &Ambient{Gen: gen, ColumnBurstProb: 0.05, AddrStride: 797}
}

// Emit samples strikes in the window and materializes the observable ones.
// A strike is absorbed silently when every struck cell was already in its
// discharged state for the current scan phase — raw error rate studies see
// only the observable fraction.
func (a *Ambient) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	events := a.Gen.Window(ctx.Window.From, ctx.Window.To, ctx.Rng)
	var raw int64
	node := uint64(ctx.Node.Index())
	for _, ev := range events {
		k := ctx.iterAt(ev.At)
		detect := ctx.detectAt(k)
		if detect < 0 {
			continue
		}
		stored := ctx.storedAt(k)
		switch {
		case ev.Cells == 1:
			addr := dram.Addr(ctx.Rng.Int64N(ctx.Words))
			phys := ctx.Rng.IntN(dram.WordBits)
			cells := dram.BitSetOf(ctx.Scrambler.ToLogical(phys))
			pol := ctx.Polarity.WordPolarity(node, addr)
			corrupted, o2z, z2o := dram.DischargeObserved(stored, cells, pol)
			if o2z|z2o == 0 {
				continue
			}
			*out = append(*out, ctx.run(addr, detect, detect, 1, stored, corrupted))
			raw++
		case ctx.Rng.Bernoulli(a.ColumnBurstProb):
			// Intra-word burst: contiguous physical cells of one word.
			addr := dram.Addr(ctx.Rng.Int64N(ctx.Words))
			cells := ctx.Scrambler.PhysRun(ctx.Rng.IntN(dram.WordBits), ev.Cells)
			pol := ctx.Polarity.WordPolarity(node, addr)
			corrupted, o2z, z2o := dram.DischargeObserved(stored, cells, pol)
			if o2z|z2o == 0 {
				continue
			}
			*out = append(*out, ctx.run(addr, detect, detect, 1, stored, corrupted))
			raw++
		default:
			// Row-run shower: one cell in each of ev.Cells different words.
			base := ctx.Rng.Int64N(ctx.Words)
			for i := 0; i < ev.Cells; i++ {
				addr := dram.Addr((base + int64(i)*a.AddrStride) % ctx.Words)
				phys := ctx.Rng.IntN(dram.WordBits)
				cells := dram.BitSetOf(ctx.Scrambler.ToLogical(phys))
				pol := ctx.Polarity.WordPolarity(node, addr)
				corrupted, o2z, z2o := dram.DischargeObserved(stored, cells, pol)
				if o2z|z2o == 0 {
					continue
				}
				*out = append(*out, ctx.run(addr, detect, detect, 1, stored, corrupted))
				raw++
			}
		}
	}
	return raw
}
