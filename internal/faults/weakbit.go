package faults

import (
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// Burst is an activity window of an intermittent fault.
type Burst struct {
	From, To timebase.T
}

// WeakBit models the §III-H weak-cell nodes (04-05 and 58-02): a single
// cell, identical corruption every time, intermittently active in bursts.
// The cell is a true cell whose capacitor occasionally fails to hold
// charge between refreshes, so the observed flip is always 1→0 at the same
// bit — exactly what the paper saw ("the corrupted bit was the same in
// 100% of the cases").
type WeakBit struct {
	Addr dram.Addr
	Bit  int
	// LeakPerCheck is the discharge probability per observable scan check.
	LeakPerCheck float64
	// Bursts are the activity windows across the study.
	Bursts []Burst
}

// Emit walks the observable checks (the 0xFFFFFFFF phases of flip mode)
// inside each burst∩session intersection and emits a run per cluster of
// leaks, merging leaks at most two observable checks apart.
func (w *WeakBit) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	if ctx.Mode.String() != "flip" {
		// The weak bit stores 1 only during the 0xFFFFFFFF phase; counter
		// sessions keep this cell's word near zero almost all the time, so
		// the leak is not observable there.
		return 0
	}
	if int64(w.Addr) >= ctx.Words {
		return 0
	}
	const expected = 0xFFFFFFFF
	actual := uint32(expected) &^ (1 << uint(w.Bit))
	slotDur := 2 * ctx.IterDur // FF-phase checks happen every other pass
	var raw int64
	for _, b := range w.Bursts {
		from, to := b.From, b.To
		if from < ctx.Window.From {
			from = ctx.Window.From
		}
		if to > ctx.Window.To {
			to = ctx.Window.To
		}
		if to <= from {
			continue
		}
		// Walk leak events: inter-leak gaps are geometric in observable
		// slots. Merge leaks within two slots into one run.
		slots := int64(to-from) / int64(slotDur)
		var slot int64 = int64(ctx.Rng.Geometric(w.LeakPerCheck))
		for slot < slots {
			runStartSlot := slot
			logs := 1
			lastSlot := slot
			for {
				gap := int64(ctx.Rng.Geometric(w.LeakPerCheck))
				next := lastSlot + gap
				if next >= slots || gap > 2 {
					slot = next
					break
				}
				logs++
				lastSlot = next
			}
			at := from + timebase.T(runStartSlot)*slotDur
			lastAt := from + timebase.T(lastSlot)*slotDur
			*out = append(*out, ctx.run(w.Addr, at, lastAt, logs, expected, actual))
			raw += int64(logs)
		}
	}
	return raw
}

// ActiveDays returns the distinct study days covered by bursts; used by
// calibration tests.
func (w *WeakBit) ActiveDays() int {
	days := make(map[int]bool)
	for _, b := range w.Bursts {
		for d := b.From; d < b.To; d += 86400 {
			days[d.Day()] = true
		}
	}
	return len(days)
}
