package faults

import (
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// Pattern is one of the node's recurring single-bit corruption shapes.
// Node 02-04 exhibited "almost 30 different corruption patterns, with the
// vast majority of them corresponding to single bit-flips switching from
// 1 to 0" (§III-H).
type Pattern struct {
	Bit      int
	OneToZro bool // true: observable in the 0xFFFFFFFF phase as 1→0
}

// Controller models the degraded node 02-04: a component fault outside the
// DRAM array (the paper suspects a loose DIMM connection, capacitive noise
// or another failing component) that corrupts many unrelated addresses in
// the same scan pass. Error "glitches" arrive as a Poisson process whose
// rate ramps as the node degrades; each glitch corrupts several addresses
// simultaneously, which is the engine behind the paper's 26,000
// simultaneous corruptions and the per-node multi-bit counts of Fig 4.
type Controller struct {
	// Active bounds the degradation period (02-04: late August onward).
	Active Burst
	// PeakRate is the glitch arrival rate (per hour) at full degradation.
	PeakRate float64
	// RampUntil is when the linear ramp from 0 reaches PeakRate.
	RampUntil timebase.T
	// AddrPool is the set of affected addresses (~11,000 on 02-04).
	AddrPool []dram.Addr
	// Patterns is the palette of single-bit corruption shapes.
	Patterns []Pattern
	// MeanAddrs is the mean number of addresses hit by one glitch.
	MeanAddrs float64
	// SingleProb is the chance a glitch hits exactly one address.
	SingleProb float64
	// MeanRunChecks is the mean number of consecutive observable checks a
	// corrupted address keeps failing before the contact recovers.
	MeanRunChecks float64
	// MaxBurstAddrs caps a single glitch; the paper's largest simultaneous
	// event corrupted 36 bits across different words.
	MaxBurstAddrs int
	// BigBurstAt, if nonzero, schedules exactly one maximal glitch.
	BigBurstAt timebase.T
	// ScheduledMulti are word-level multi-bit corruptions that fire during
	// glitch activity: the paper's two triple-bit-with-single events and
	// the one simultaneous double-double (§III-C).
	ScheduledMulti []*ScheduledMulti

	bigDone bool
}

// ScheduledMulti is a scheduled word-level multi-bit corruption riding the
// node's glitch activity, with companion single-bit errors in the same
// scan iteration.
type ScheduledMulti struct {
	At timebase.T
	// Masks are the corrupted-bit masks, one word per mask (two masks
	// model the double+double event).
	Masks []dram.BitSet
	// Addrs receive the corruptions (parallel to Masks).
	Addrs []dram.Addr
	// Companions is how many single-bit glitch errors accompany the event.
	Companions int

	done bool
}

// rate returns the glitch rate at t in events/hour.
func (c *Controller) rate(t timebase.T) float64 {
	if t < c.Active.From || t >= c.Active.To {
		return 0
	}
	if t >= c.RampUntil {
		return c.PeakRate * 0.85
	}
	frac := float64(t-c.Active.From) / float64(c.RampUntil-c.Active.From)
	return c.PeakRate * (0.05 + 0.95*frac)
}

// StressFactor exposes the degradation level in [0,1] at t; recurring
// multi-bit sites on the same node scale their susceptibility with it
// (noise margins shrink while the component misbehaves), which produces
// Fig 11's November multi-bit burst.
func (c *Controller) StressFactor(t timebase.T) float64 {
	if c.PeakRate == 0 {
		return 0
	}
	return c.rate(t) / c.PeakRate
}

// Emit samples glitches over the session window by thinning.
func (c *Controller) Emit(ctx *SessionCtx, out *[]extract.RawRun) int64 {
	from, to := ctx.Window.From, ctx.Window.To
	if to <= c.Active.From || from >= c.Active.To {
		return 0
	}
	maxRate := c.PeakRate / 3600 // per second
	if maxRate <= 0 {
		return 0
	}
	var raw int64
	t := float64(from)
	for {
		t += ctx.Rng.Exp(maxRate)
		if t >= float64(to) {
			break
		}
		at := timebase.T(t)
		if !ctx.Rng.Bernoulli(c.rate(at) / c.PeakRate) {
			continue
		}
		n := c.sampleAddrs(ctx)
		raw += c.EmitGlitch(ctx, at, n, out)
	}
	// The one scheduled maximal event (36 corrupted bits across words).
	// Scheduled events that land while the node is busy carry forward to
	// the next scan session, like any corruption of idle DRAM.
	if !c.bigDone && c.BigBurstAt != 0 && c.BigBurstAt < to {
		c.bigDone = true
		at := c.BigBurstAt
		if at < from {
			at = from
		}
		raw += c.emitGlitch(ctx, at, c.MaxBurstAddrs, true, out)
	}
	for _, sm := range c.ScheduledMulti {
		if sm.done || sm.At >= to {
			continue
		}
		sm.done = true
		if sm.At < from {
			sm.At = from
		}
		k := ctx.iterAt(sm.At)
		detect := ctx.detectAt(k)
		if detect < 0 {
			continue
		}
		expected := ctx.Mode.Expected(k + 1)
		for i, mask := range sm.Masks {
			addr := sm.Addrs[i]
			if int64(addr) >= ctx.Words {
				continue
			}
			actual := expected ^ uint32(mask)
			*out = append(*out, ctx.run(addr, detect, detect, 1, expected, actual))
			raw++
		}
		if sm.Companions > 0 {
			raw += c.emitGlitch(ctx, sm.At, sm.Companions, true, out)
		}
	}
	return raw
}

func (c *Controller) sampleAddrs(ctx *SessionCtx) int {
	if ctx.Rng.Bernoulli(c.SingleProb) {
		return 1
	}
	n := 1 + ctx.Rng.Geometric(1/c.MeanAddrs)
	if n > c.MaxBurstAddrs {
		n = c.MaxBurstAddrs
	}
	return n
}

// EmitGlitch corrupts n distinct pool addresses at the iteration containing
// "at"; all runs share the detection timestamp (they are simultaneous in
// the log). Returns raw log records emitted. Exposed so recurring sites on
// the same node can spawn companion singles in their own firing iteration.
func (c *Controller) EmitGlitch(ctx *SessionCtx, at timebase.T, n int, out *[]extract.RawRun) int64 {
	return c.emitGlitch(ctx, at, n, false, out)
}

// emitGlitch implements EmitGlitch. When force is set, every address
// manifests regardless of scan phase (direction is chosen to match the
// stored bit) — used for the one maximal 36-bit event so its full size is
// observed, as in the paper's log.
func (c *Controller) emitGlitch(ctx *SessionCtx, at timebase.T, n int, force bool, out *[]extract.RawRun) int64 {
	k := ctx.iterAt(at)
	detect := ctx.detectAt(k)
	if detect < 0 {
		return 0
	}
	var raw int64
	picks := ctx.pickN(n, len(c.AddrPool))
	for _, pi := range picks {
		addr := c.AddrPool[pi]
		if int64(addr) >= ctx.Words {
			if !force {
				continue
			}
			// The forced maximal event must land all its corruptions even
			// when a leaky session shrank the scanned range.
			addr = dram.Addr(int64(addr) % ctx.Words)
		}
		pat := c.Patterns[ctx.Rng.IntN(len(c.Patterns))]
		if force {
			stored := ctx.Mode.Expected(k+1)&(1<<uint(pat.Bit)) != 0
			pat.OneToZro = stored
		}
		expected, actual, ok := pat.materialize(ctx, k)
		if !ok {
			continue
		}
		checks := ctx.Rng.Geometric(1 / c.MeanRunChecks)
		lastAt := detect + timebase.T(int64(checks-1)*2*int64(ctx.IterDur))
		*out = append(*out, ctx.run(addr, detect, lastAt, checks, expected, actual))
		raw += int64(checks)
	}
	return raw
}

// materialize computes the expected/actual pair for a single-bit pattern
// under the session's scan phase at iteration k, reporting whether the
// corruption is observable in that phase.
func (p Pattern) materialize(ctx *SessionCtx, k int64) (expected, actual uint32, ok bool) {
	expected = ctx.Mode.Expected(k + 1)
	mask := uint32(1) << uint(p.Bit)
	stored := expected&mask != 0
	if p.OneToZro {
		if !stored {
			return 0, 0, false
		}
		return expected, expected &^ mask, true
	}
	if stored {
		return 0, 0, false
	}
	return expected, expected | mask, true
}

// DefaultPatterns builds the ~30-pattern palette: mostly 1→0 across spread
// bit positions, a few 0→1.
func DefaultPatterns() []Pattern {
	var out []Pattern
	bits := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 17, 19, 21, 22, 24, 26, 28, 30, 31}
	for _, b := range bits {
		out = append(out, Pattern{Bit: b, OneToZro: true})
	}
	for _, b := range []int{2, 9, 25} {
		out = append(out, Pattern{Bit: b, OneToZro: false})
	}
	return out
}
