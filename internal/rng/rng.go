// Package rng provides deterministic, splittable random number streams.
//
// The campaign simulator runs one simulation per node on a worker pool.
// Reproducibility regardless of scheduling requires every node to own an
// independent stream whose seed depends only on (campaign seed, node index).
// Streams are derived with splitmix64, the standard seed-expansion mixer,
// and backed by math/rand/v2's PCG generator.
package rng

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random stream. It embeds *rand.Rand so all the
// usual draw methods (Uint64, Float64, IntN, ...) are available, and adds
// the distribution samplers the fault models need.
type Stream struct {
	*rand.Rand
}

// splitmix64 advances the state and returns the next mixed output.
// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA'14).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns the root stream for a campaign seed.
func New(seed uint64) *Stream {
	s := seed
	a := splitmix64(&s)
	b := splitmix64(&s)
	return &Stream{rand.New(rand.NewPCG(a, b))}
}

// Derive returns an independent stream identified by index, deterministic in
// (seed, index) and uncorrelated with sibling streams.
func Derive(seed uint64, index uint64) *Stream {
	s := seed ^ (index * 0xd1342543de82ef95)
	a := splitmix64(&s)
	b := splitmix64(&s)
	return &Stream{rand.New(rand.NewPCG(a, b))}
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp samples an exponential variate with the given rate (events per unit
// time). Used for inter-arrival times in Poisson processes.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return s.ExpFloat64() / rate
}

// Poisson samples a Poisson variate with mean lambda. For small lambda it
// uses Knuth multiplication; for large lambda the PTRS transformed-rejection
// method would be overkill here, so a normal approximation is used — the
// fault models only need counts, not tail-exact distributions.
func (s *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	v := s.NormFloat64()*math.Sqrt(lambda) + lambda + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Geometric samples the number of Bernoulli(p) trials up to and including
// the first success (support {1, 2, ...}, mean 1/p).
func (s *Stream) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return math.MaxInt32
	}
	// Inversion: ceil(ln(U) / ln(1-p)).
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	k := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// LogNormal samples exp(N(mu, sigma)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.NormFloat64()*sigma + mu)
}

// Normal samples N(mu, sigma).
func (s *Stream) Normal(mu, sigma float64) float64 {
	return s.NormFloat64()*sigma + mu
}

// WeightedIndex samples an index proportionally to weights. Weights must be
// non-negative with a positive sum; otherwise it returns 0.
func (s *Stream) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// PickN samples n distinct ints from [0, m) without replacement. If n >= m
// it returns the full range in random order. The result is not sorted.
func (s *Stream) PickN(n, m int) []int {
	return s.PickNAppend(nil, n, m)
}

// PickNAppend is PickN appending into dst, drawing the exact same values
// in the exact same order — pass a buffer reused across calls (dst[:0])
// and sampling allocates nothing beyond the buffer's first growth. The
// fault models sample addresses once per glitch, so the per-call map and
// slice of the old shape were a top campaign allocation site.
func (s *Stream) PickNAppend(dst []int, n, m int) []int {
	base := len(dst)
	if n >= m {
		// Mirrors rand/v2 Perm: fill 0..m-1, then one Shuffle pass.
		for i := 0; i < m; i++ {
			dst = append(dst, i)
		}
		out := dst[base:]
		s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return dst
	}
	// Floyd's algorithm: O(n) expected, no O(m) work. Membership is a
	// linear scan over the picks so far — n is a glitch burst (dozens at
	// most), where scanning a dozen ints beats a map in both time and the
	// allocation the map used to cost.
	for j := m - n; j < m; j++ {
		t := s.IntN(j + 1)
		if containsInt(dst[base:], t) {
			t = j
		}
		dst = append(dst, t)
	}
	// Shuffle so ordering carries no bias from the insertion pattern.
	out := dst[base:]
	s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return dst
}

// containsInt reports whether v occurs in xs.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
