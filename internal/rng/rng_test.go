package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Streams derived with different indices must differ immediately and
	// be reproducible.
	a1 := Derive(7, 1)
	a2 := Derive(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a1.Uint64() == a2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d/100 draws", same)
	}
	b1 := Derive(7, 1)
	c1 := Derive(7, 1)
	for i := 0; i < 100; i++ {
		if b1.Uint64() != c1.Uint64() {
			t.Fatalf("Derive not deterministic at draw %d", i)
		}
	}
}

func TestBernoulliEdge(t *testing.T) {
	s := New(1)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			n++
		}
	}
	p := float64(n) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(2)
	const rate = 4.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%v) mean %v, want %v", rate, mean, 1/rate)
	}
	if !math.IsInf(s.Exp(0), 1) {
		t.Fatal("Exp(0) should be +Inf")
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(3)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(4)
	const p = 0.2
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		k := s.Geometric(p)
		if k < 1 {
			t.Fatalf("Geometric returned %d < 1", k)
		}
		sum += float64(k)
	}
	mean := sum / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want %v", p, mean, 1/p)
	}
	if s.Geometric(1) != 1 {
		t.Fatal("Geometric(1) must be 1")
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(5)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight indices drawn: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want 3", ratio)
	}
	if got := s.WeightedIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights: %d", got)
	}
}

func TestPickNProperty(t *testing.T) {
	s := New(6)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw%30) + 1
		out := s.PickN(n, m)
		wantLen := n
		if n >= m {
			wantLen = m
		}
		if len(out) != wantLen {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range out {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}
