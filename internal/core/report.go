package core

import (
	"fmt"
	"io"

	"unprotected/internal/analysis"
	"unprotected/internal/ecc"
	"unprotected/internal/extract"
	"unprotected/internal/quarantine"
	"unprotected/internal/render"
	"unprotected/internal/stats"
)

// ReportOptions selects report sections.
type ReportOptions struct {
	Heatmaps    bool
	Charts      bool
	Experiments bool // terse paper-vs-measured lines for EXPERIMENTS.md
}

// FullReport renders every figure and table of the paper from the study.
// Figures that stream (headline, Figs 4–11, 13) come from the incremental
// accumulators when the study was built from a stream; the slice-based
// computations are the fallback and produce identical output (the
// accumulators are the same arithmetic applied in the same canonical
// order — the test suite pins the equivalence byte for byte).
func (s *Study) FullReport(w io.Writer, opt ReportOptions) {
	d := s.Dataset

	h := s.headline()
	fmt.Fprintf(w, "== Headline (§III-B) ==\n")
	fmt.Fprintf(w, "raw error logs:            %d (paper: >25,000,000)\n", h.RawLogs)
	fmt.Fprintf(w, "worst node raw share:      %.1f%% from %v (paper: >98%%)\n", 100*h.TopNodeRawShare, h.TopRawNode)
	fmt.Fprintf(w, "independent memory faults: %d (paper: >55,000)\n", h.IndependentFaults)
	fmt.Fprintf(w, "multi-bit word faults:     %d (paper: 85)\n", h.MultiBitFaults)
	fmt.Fprintf(w, "node-hours monitored:      %.0f (paper: ~4.2M)\n", float64(h.NodeHours))
	fmt.Fprintf(w, "memory analyzed:           %.0f TBh (paper: 12,135)\n", float64(h.TotalTBh))
	fmt.Fprintf(w, "nodes scanned:             %d (paper: 923)\n", h.NodesScanned)
	fmt.Fprintf(w, "cluster error cadence:     one per %.1f min (paper: ~10 min)\n", h.ClusterMTBFMinutes)
	fmt.Fprintf(w, "node-hours per fault:      %.0f h\n", h.NodeMTBFHours)
	fmt.Fprintf(w, "bit flips 1->0:            %.1f%% (paper: ~90%%)\n\n", 100*h.Ones2ZerosFraction())

	if opt.Heatmaps {
		analysis.HoursHeatmap(d).Render(w)
		fmt.Fprintln(w)
		analysis.TBhHeatmap(d).Render(w)
		fmt.Fprintln(w)
		analysis.ErrorsHeatmap(d).Render(w)
		fmt.Fprintln(w)
	} else {
		for _, g := range []*render.Grid{analysis.HoursHeatmap(d), analysis.TBhHeatmap(d), analysis.ErrorsHeatmap(d)} {
			st := analysis.GridStats(g)
			fmt.Fprintf(w, "%s: nodes>0=%d max=%.6g mean=%.6g\n", g.Title, st.NonZero, st.Max, st.Mean)
		}
		fmt.Fprintln(w)
	}

	rows := analysis.MultiBitTable(d)
	analysis.RenderMultiBitTable(rows).Render(w)
	mb := s.multiBitStats()
	fmt.Fprintf(w, "multi-bit events: %d (paper 85); double-bit: %d (76); >2-bit: %d (9); >3-bit: %d (7)\n",
		mb.TotalEvents, mb.DoubleBitEvents, mb.OverTwoBits, mb.OverThreeBits)
	fmt.Fprintf(w, "non-consecutive: %d/%d; mean gap %.1f bits (paper 3); max gap %d (paper 11); LSB share %.0f%%\n\n",
		mb.NonConsecutive, mb.TotalEvents, mb.MeanGap, mb.MaxGap, 100*mb.LSBShare)

	sim := s.simultaneityStats()
	fmt.Fprintf(w, "== Simultaneity (§III-C, Fig 4) ==\n")
	fmt.Fprintf(w, "faults co-occurring with others: %d (paper: >26,000)\n", sim.FaultsInGroups)
	fmt.Fprintf(w, "  of which all-single-bit groups: %d (paper: >99.9%%)\n", sim.SingleBitOnly)
	fmt.Fprintf(w, "double-bit with simultaneous single: %d (paper: 44)\n", sim.DoubleWithSingle)
	fmt.Fprintf(w, "triple-bit with simultaneous single: %d (paper: 2)\n", sim.TripleWithSingle)
	fmt.Fprintf(w, "double+double events: %d (paper: 1)\n", sim.DoubleDoublePairs)
	fmt.Fprintf(w, "largest simultaneous event: %d bits (paper: 36)\n\n", sim.MaxGroupBits)
	if opt.Charts {
		s.simultaneityFigure().Chart().Render(w)
		fmt.Fprintln(w)
	}

	hod := s.hourOfDay()
	all := hod.Total()
	multi := hod.MultiBit()
	fmt.Fprintf(w, "== Time of day (§III-E, Figs 5-6) ==\n")
	fmt.Fprintf(w, "all errors day/night ratio:       %.2f (paper: ~1, flat)\n", analysis.DayNightRatio(all))
	fmt.Fprintf(w, "multi-bit errors day/night ratio: %.2f (paper: ~2)\n", analysis.DayNightRatio(multi))
	fmt.Fprintf(w, "multi-bit peak hour:              %02d:00 local (paper: noon)\n\n", analysis.PeakHour(multi))
	if opt.Charts {
		hod.Chart("Fig 5: errors per hour of day by bit count", false).Render(w)
		hod.Chart("Fig 6: multi-bit errors per hour of day", true).Render(w)
		fmt.Fprintln(w)
	}

	temp := s.temperature()
	lo, hi := temp.ModalBand(1, 6)
	fmt.Fprintf(w, "== Temperature (§III-F, Figs 7-8) ==\n")
	fmt.Fprintf(w, "modal band: %.0f-%.0f°C (paper: 30-40°C); errors >60°C: %.0f; multi-bit >60°C: %.0f (paper: 0); no telemetry: %d\n\n",
		lo, hi, temp.CountAbove(60, 1, 6), temp.CountAbove(60, 2, 6), temp.NoReading)
	if opt.Charts {
		temp.Chart("Fig 7: errors vs temperature by bit count", false).Render(w)
		temp.Chart("Fig 8: multi-bit errors vs temperature", true).Render(w)
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "== Scanning vs errors (§III-G, Figs 9-11) ==\n")
	if pr, err := s.scanErrorCorrelation(); err == nil {
		fmt.Fprintf(w, "Pearson(TBh/day, errors/day): r=%.5f p=%.4g n=%d (paper: r=-0.17966 p=0.0002)\n\n", pr.R, pr.P, pr.N)
	}
	if opt.Charts {
		scanned, daily := s.dailySeries()
		analysis.DailyChart("Fig 9: memory scanned per day (TBh, monthly sums)",
			map[string][]float64{"TBh": scanned}).Render(w)
		analysis.DailyChart("Fig 10: errors per day (monthly sums)",
			map[string][]float64{"all": daily[0]}).Render(w)
		multiDaily := make([]float64, len(daily[2]))
		for c := 2; c <= 6; c++ {
			for i, v := range daily[c] {
				multiDaily[i] += v
			}
		}
		analysis.DailyChart("Fig 11: multi-bit errors per day (monthly sums)",
			map[string][]float64{"multi-bit": multiDaily}).Render(w)
		fmt.Fprintln(w)
	}

	top, restAgg := analysis.TopNodes(d, 3)
	fmt.Fprintf(w, "== Spatial correlation (§III-H, Fig 12) ==\n")
	for _, t := range top {
		fmt.Fprintf(w, "%s: %d errors\n", analysis.FormatNode(t.Node), t.Total)
	}
	fmt.Fprintf(w, "all other nodes combined: %d errors (paper: <30)\n", restAgg.Total)
	errShare, nodeShare := analysis.SpatialConcentration(d, 3)
	fmt.Fprintf(w, "concentration: %.2f%% of errors in %.2f%% of nodes (paper: >99.9%% in <1%%)\n\n",
		100*errShare, 100*nodeShare)

	reg := s.regimes()
	fmt.Fprintf(w, "== Temporal correlation (§III-I, Fig 13) ==\n")
	fmt.Fprintf(w, "normal days: %d (errors: %d, MTBF %.0f h; paper: 348 days, ~50 errors, 167 h)\n",
		reg.NormalDays, reg.NormalErrors, reg.MTBFNormalHours)
	fmt.Fprintf(w, "degraded days: %d = %.1f%% (errors: %d, MTBF %.2f h; paper: 77 days = 18.1%%, ~5,000 errors, 0.39 h)\n\n",
		reg.DegradedDays, 100*reg.DegradedFraction(), reg.DegradedErrors, reg.MTBFDegradedHours)
	if opt.Charts {
		render.Strip(w, "Fig 13: system regime per day (X = degraded)", reg.Degraded, 'X', '.')
		fmt.Fprintln(w)
	}

	sdc := analysis.ComputeIsolatedSDC(d)
	fmt.Fprintf(w, "== Detectable vs undetectable (§III-D) ==\n")
	fmt.Fprintf(w, ">3-bit (SECDED-undetectable) events: %d on %d nodes (paper: 7 on 5)\n", len(sdc.Events), sdc.NodesInvolved)
	fmt.Fprintf(w, "uncorrelated with any detectable error: %d of %d (paper: all); node's only error: %d (paper: 4)\n",
		sdc.FullyIsolated, len(sdc.Events), sdc.OnlyErrorOnNode)
	fmt.Fprintf(w, "pre-telemetry: %d; nodes adjacent to SoC-12: %d of %d (paper: 4 of 5)\n\n",
		sdc.PreTelemetry, sdc.NearSoC12Nodes, sdc.NodesInvolved)

	s.quarantineSection(w)
	s.eccSection(w)
}

// ScenarioSummary reduces the study to its cross-scenario comparison row
// (raw rate, multi-bit fraction, day/night contrast, worst node) under
// the given scenario name. Like FullReport it prefers the stream-fed
// accumulators and falls back to the slice computations, so summaries of
// pure-streaming sweeps and of hand-assembled studies agree.
func (s *Study) ScenarioSummary(name string) analysis.ScenarioSummary {
	return analysis.Summarize(name, s.headline(), s.hourOfDay())
}

// The figure accessors below prefer the stream-fed accumulators and fall
// back to the slice computations for hand-assembled studies.

func (s *Study) headline() analysis.Headline {
	if s.Figures != nil {
		return s.Figures.Headline.Headline(s.Dataset.RawLogs, s.Dataset.RawLogsByNode, s.Dataset.Topo)
	}
	return analysis.ComputeHeadline(s.Dataset)
}

func (s *Study) hourOfDay() *analysis.HourOfDay {
	if s.Figures != nil {
		return s.Figures.HourOfDay
	}
	return analysis.ComputeHourOfDay(s.Dataset.Faults)
}

func (s *Study) temperature() *analysis.Temperature {
	if s.Figures != nil {
		return s.Figures.Temperature
	}
	return analysis.ComputeTemperature(s.Dataset.Faults)
}

func (s *Study) multiBitStats() analysis.MultiBitStats {
	if s.Figures != nil {
		return s.Figures.MultiBit.Stats()
	}
	return analysis.ComputeMultiBitStats(s.Dataset.Faults)
}

func (s *Study) simultaneityStats() extract.SimultaneityStats {
	if s.Figures != nil {
		return s.Figures.Simultaneity.Stats()
	}
	return extract.Simultaneity(extract.Groups(s.Dataset.Faults))
}

func (s *Study) simultaneityFigure() *analysis.SimultaneityFigure {
	if s.Figures != nil {
		return s.Figures.Simultaneity.Figure()
	}
	return analysis.ComputeSimultaneityFigure(s.Dataset.Faults)
}

func (s *Study) scanErrorCorrelation() (stats.PearsonResult, error) {
	if s.Figures != nil {
		return s.Figures.Daily.Correlation()
	}
	return analysis.ScanErrorCorrelation(s.Dataset)
}

func (s *Study) dailySeries() (scanned []float64, errors [7][]float64) {
	if s.Figures != nil {
		return s.Figures.Daily.Scanned, s.Figures.Daily.Errors
	}
	return analysis.DailyScanned(s.Dataset), analysis.DailyErrors(s.Dataset.Faults)
}

func (s *Study) regimes() *analysis.Regimes {
	if s.Figures != nil {
		return s.Figures.Regimes.Finish()
	}
	return analysis.ComputeRegimes(s.Dataset)
}

// quarantineSection renders Table II.
func (s *Study) quarantineSection(w io.Writer) {
	results := quarantine.Sweep(s.Dataset.Faults, quarantine.PaperPeriods, s.ExcludedNodes()...)
	t := &render.Table{
		Title:   "Table II: system MTBF for different quarantine periods",
		Headers: []string{"Quarantine (days)", "Errors", "Node-days quarantined", "MTBF (h)"},
	}
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", int(r.Policy.Period.Hours()/24)),
			fmt.Sprint(r.Errors),
			fmt.Sprintf("%.0f", r.NodeDaysQuarantined),
			fmt.Sprintf("%.1f", r.MTBFHours),
		)
	}
	t.Render(w)
	fmt.Fprintf(w, "(paper row for 30 days: 65 errors, 180 node-days, 156.9 h)\n\n")
}

// eccSection runs the §IV ablation: what SECDED and chipkill would have
// done with every observed corruption.
func (s *Study) eccSection(w io.Writer) {
	pairs := make([][2]uint32, 0, len(s.Dataset.Faults))
	for _, f := range s.Dataset.Faults {
		pairs = append(pairs, [2]uint32{f.Expected, f.Expected ^ f.Actual})
	}
	sec := ecc.RunAudit(ecc.SECDED32{C: ecc.NewSECDED3932()}, pairs)
	ck := ecc.RunAudit(ecc.NewChipkill(), pairs)
	fmt.Fprintf(w, "== ECC ablation (§III-C/§IV) ==\n")
	fmt.Fprintf(w, "SECDED(39,32): corrected=%d detected=%d silent=%d\n",
		sec.ByOutcome[ecc.Corrected], sec.ByOutcome[ecc.Detected], sec.Silent())
	fmt.Fprintf(w, "chipkill SSC-DSD: corrected=%d detected=%d silent=%d\n",
		ck.ByOutcome[ecc.Corrected], ck.ByOutcome[ecc.Detected], ck.Silent())
	if cu, su := ck.Uncorrected(), sec.Uncorrected(); cu > 0 {
		fmt.Fprintf(w, "uncorrected-error ratio SECDED/chipkill: %.1fx (related work [31]: 42x)\n", float64(su)/float64(cu))
	}
	fmt.Fprintln(w)
}
