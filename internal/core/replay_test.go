package core

import (
	"bytes"
	"testing"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
	"unprotected/internal/rng"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// replayFixture builds a small synthetic dataset with a controller node,
// simultaneity groups and a multi-bit mix — enough structure for every
// report section to render non-trivially.
func replayFixture() ([]eventlog.Session, []extract.Fault, string) {
	r := rng.New(17)
	const controller = "02-04"
	controllerID := cluster.NodeID{Blade: 2, SoC: 4}
	day := timebase.T(86400)
	var faults []extract.Fault
	var sessions []eventlog.Session
	for n := 0; n < 18; n++ {
		host := cluster.NodeID{Blade: n/6 + 1, SoC: n%6 + 1}
		if n == 7 {
			host = controllerID
		}
		for i := 0; i < 30; i++ {
			at := day*timebase.T(10+i*4) + timebase.T((i%5)*13)
			temp := thermal.NoReading
			if i%3 != 0 {
				temp = 22 + r.Float64()*40
			}
			mask := uint32(1) << (i % 32)
			if i%8 == 0 {
				mask |= 1 << ((i + 9) % 32)
			}
			faults = append(faults, extract.Classify(extract.RawRun{
				Node: host, Addr: dram.Addr(i * 13), FirstAt: at, LastAt: at + timebase.T(r.IntN(90)),
				Logs: 1 + r.IntN(25), Expected: 0xffffffff, Actual: 0xffffffff ^ mask,
				TempC: temp,
			}))
		}
		for s := 0; s < 8; s++ {
			from := day*timebase.T(2*s) + timebase.T(r.IntN(3000))
			sess := eventlog.Session{Host: host, From: from, To: from + 5*3600, AllocBytes: 3 << 30}
			if s == 5 {
				sess.Truncated = true
				sess.To = 0
			}
			sessions = append(sessions, sess)
		}
	}
	extract.SortFaults(faults)
	return sessions, faults, controller
}

// TestFullReportFiguresMatchSliceFallback: a stream-fed study (Figures
// set) and the same dataset without accumulators must render byte-identical
// reports — the accumulators are the same arithmetic in the same order.
func TestFullReportFiguresMatchSliceFallback(t *testing.T) {
	sessions, faults, controller := replayFixture()
	dir := t.TempDir()
	if err := logstore.Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	streamed, err := StudyFromLogs(dir, controller, 4)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Figures == nil {
		t.Fatal("stream-built study carries no accumulators")
	}
	plain := &Study{Dataset: streamed.Dataset}

	opts := ReportOptions{Charts: true, Heatmaps: true}
	var a, b bytes.Buffer
	streamed.FullReport(&a, opts)
	plain.FullReport(&b, opts)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("accumulator report diverges from slice report:\n--- accumulators ---\n%s\n--- slices ---\n%s",
			a.String(), b.String())
	}
}

// TestStudyFromLogsDeterministicAcrossWorkers: the acceptance criterion —
// the -from-logs report must be byte-identical for every loader pool size
// and across repeated runs.
func TestStudyFromLogsDeterministicAcrossWorkers(t *testing.T) {
	sessions, faults, controller := replayFixture()
	dir := t.TempDir()
	if err := logstore.Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, workers := range []int{1, 1, 2, 4, 16} {
		study, err := StudyFromLogs(dir, controller, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		study.FullReport(&buf, ReportOptions{Charts: true, Heatmaps: true})
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("workers=%d: report differs from reference", workers)
		}
	}
}

// TestStudyFromLogsMatchesCampaignStudy: exporting a full campaign and
// replaying it must reproduce the campaign study's fault-derived report
// sections. Raw-volume lines differ by design (the extracted export does
// not carry the pathological node's uncharacterized raw flood), so the
// comparison is at the figure level, not the whole report.
func TestStudyFromLogsMatchesCampaignStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := campaign.DefaultConfig(11)
	mem := RunStudy(cfg)
	dir := t.TempDir()
	if err := logstore.Export(mem.Dataset.Sessions, mem.Dataset.Faults, dir); err != nil {
		t.Fatal(err)
	}
	replayed, err := StudyFromLogs(dir, cfg.Profile.ControllerNode.String(), 0)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(replayed.Dataset.Faults), len(mem.Dataset.Faults); got != want {
		t.Fatalf("faults %d, want %d", got, want)
	}
	for i := range replayed.Dataset.Faults {
		if replayed.Dataset.Faults[i] != mem.Dataset.Faults[i] {
			t.Fatalf("fault %d differs after round trip", i)
		}
	}
	if *replayed.Figures.HourOfDay != *mem.Figures.HourOfDay {
		t.Fatal("hour-of-day figure differs after round trip")
	}
	if replayed.Figures.MultiBit.Stats() != mem.Figures.MultiBit.Stats() {
		t.Fatal("multi-bit stats differ after round trip")
	}
	if replayed.Figures.Simultaneity.Stats() != mem.Figures.Simultaneity.Stats() {
		t.Fatal("simultaneity stats differ after round trip")
	}
	gotReg, wantReg := replayed.Figures.Regimes.Finish(), mem.Figures.Regimes.Finish()
	if gotReg.NormalDays != wantReg.NormalDays || gotReg.DegradedErrors != wantReg.DegradedErrors {
		t.Fatal("regime split differs after round trip")
	}
	// Session-derived accounting: hours/TBh survive (truncated sessions
	// contribute zero either way).
	gotH := replayed.Figures.Headline.Headline(0, nil, nil)
	wantH := mem.Figures.Headline.Headline(0, nil, nil)
	if gotH.NodeHours != wantH.NodeHours || gotH.TotalTBh != wantH.TotalTBh {
		t.Fatalf("session accounting differs: %v/%v vs %v/%v",
			gotH.NodeHours, gotH.TotalTBh, wantH.NodeHours, wantH.TotalTBh)
	}
}
