package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"unprotected/internal/analysis"
	"unprotected/internal/extract"
	"unprotected/internal/quarantine"
)

var (
	studyOnce sync.Once
	study     *Study
)

// sharedStudy runs the full-scale calibrated campaign once per test binary.
func sharedStudy(t *testing.T) *Study {
	t.Helper()
	if testing.Short() {
		t.Skip("full campaign")
	}
	studyOnce.Do(func() { study = RunPaperStudy(42) })
	return study
}

func TestStudyHeadlineBands(t *testing.T) {
	s := sharedStudy(t)
	h := analysis.ComputeHeadline(s.Dataset)

	check := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %v, want [%v, %v]", name, got, lo, hi)
		}
	}
	// §III-B magnitudes.
	check("raw logs (M)", float64(h.RawLogs)/1e6, 21, 30)
	check("worst-node raw share", h.TopNodeRawShare, 0.96, 1.0)
	check("independent faults (k)", float64(h.IndependentFaults)/1e3, 45, 70)
	check("multi-bit word faults", float64(h.MultiBitFaults), 65, 105)
	check("node-hours (M)", float64(h.NodeHours)/1e6, 3.8, 4.6)
	check("TBh", float64(h.TotalTBh), 10500, 13500)
	check("cluster cadence (min)", h.ClusterMTBFMinutes, 7, 14)
	check("1->0 fraction", h.Ones2ZerosFraction(), 0.85, 0.93)
}

func TestStudyMultiBitShape(t *testing.T) {
	s := sharedStudy(t)
	st := analysis.ComputeMultiBitStats(s.Dataset.Faults)
	if st.OverThreeBits != 7 {
		t.Errorf(">3-bit events = %d, want 7", st.OverThreeBits)
	}
	if st.MaxBits != 9 {
		t.Errorf("largest word corruption = %d bits, want 9", st.MaxBits)
	}
	if st.MaxGap > 12 || st.MaxGap < 8 {
		t.Errorf("max bit gap = %d, paper saw 11", st.MaxGap)
	}
	if st.NonConsecutive <= st.TotalEvents/2 {
		t.Errorf("only %d/%d non-consecutive; the majority must be non-adjacent",
			st.NonConsecutive, st.TotalEvents)
	}
	// Isolated SDC structure (§III-D).
	sdc := analysis.ComputeIsolatedSDC(s.Dataset)
	if len(sdc.Events) != 7 || sdc.NodesInvolved != 5 {
		t.Errorf("isolated SDC: %d events on %d nodes, want 7 on 5",
			len(sdc.Events), sdc.NodesInvolved)
	}
	if sdc.NearSoC12Nodes != 4 {
		t.Errorf("near-SoC12 nodes = %d, want 4", sdc.NearSoC12Nodes)
	}
	if sdc.FullyIsolated != 7 {
		t.Errorf("detectable-uncorrelated events = %d, want all 7", sdc.FullyIsolated)
	}
	if sdc.OnlyErrorOnNode != 4 {
		t.Errorf("only-error-on-node = %d, want 4", sdc.OnlyErrorOnNode)
	}
}

func TestStudyEnvironmentShapes(t *testing.T) {
	s := sharedStudy(t)
	hod := analysis.ComputeHourOfDay(s.Dataset.Faults)
	allRatio := analysis.DayNightRatio(hod.Total())
	multiRatio := analysis.DayNightRatio(hod.MultiBit())
	// Fig 5: flat (a uniform histogram gives 11/13 ≈ 0.85).
	if allRatio < 0.6 || allRatio > 1.3 {
		t.Errorf("all-errors day/night = %v, want ~flat", allRatio)
	}
	// Fig 6: multi-bit concentrated in daytime.
	if multiRatio < 1.4 {
		t.Errorf("multi-bit day/night = %v, want ~2", multiRatio)
	}
	if multiRatio < allRatio {
		t.Error("multi-bit errors must be more diurnal than singles")
	}
	// Fig 7/8: nominal temperatures dominate; no multi-bit above 60°C.
	temp := analysis.ComputeTemperature(s.Dataset.Faults)
	lo, _ := temp.ModalBand(1, 6)
	if lo < 28 || lo > 42 {
		t.Errorf("modal temperature band starts at %v, want ~30-40", lo)
	}
	if n := temp.CountAbove(60, 2, 6); n != 0 {
		t.Errorf("%v multi-bit errors above 60°C, paper saw none", n)
	}
}

func TestStudyCorrelations(t *testing.T) {
	s := sharedStudy(t)
	// §III-G: weak anti-correlation between scanned TBh/day and errors/day.
	pr, err := analysis.ScanErrorCorrelation(s.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if pr.R > -0.02 || pr.R < -0.4 {
		t.Errorf("Pearson r = %v, want mildly negative (~-0.18)", pr.R)
	}
	// §III-H: extreme spatial concentration.
	errShare, nodeShare := analysis.SpatialConcentration(s.Dataset, 3)
	if errShare < 0.995 {
		t.Errorf("top-3 error share %v, want >99.5%%", errShare)
	}
	if nodeShare > 0.01 {
		t.Errorf("top-3 node share %v, want <1%%", nodeShare)
	}
	// §III-I: regime split.
	reg := analysis.ComputeRegimes(s.Dataset)
	frac := reg.DegradedFraction()
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("degraded fraction %v, want ~0.18", frac)
	}
	if reg.MTBFDegradedHours > 1 {
		t.Errorf("degraded MTBF %v h, want well under an hour", reg.MTBFDegradedHours)
	}
	if reg.MTBFNormalHours < 60 {
		t.Errorf("normal MTBF %v h, want >100", reg.MTBFNormalHours)
	}
}

func TestStudyQuarantineSweep(t *testing.T) {
	s := sharedStudy(t)
	results := quarantine.Sweep(s.Dataset.Faults, quarantine.PaperPeriods, s.ExcludedNodes()...)
	base := results[0]
	last := results[len(results)-1]
	// Table II shape: errors collapse by >10x, MTBF rises by >20x,
	// availability cost stays small.
	if base.Errors < 3000 {
		t.Errorf("baseline errors %d, want thousands", base.Errors)
	}
	if last.Errors > base.Errors/10 {
		t.Errorf("30-day quarantine leaves %d of %d errors", last.Errors, base.Errors)
	}
	if last.MTBFHours < base.MTBFHours*20 {
		t.Errorf("MTBF gain too small: %v -> %v", base.MTBFHours, last.MTBFHours)
	}
	if last.NodeDaysQuarantined > 1000 {
		t.Errorf("availability cost %v node-days", last.NodeDaysQuarantined)
	}
}

func TestStudySimultaneity(t *testing.T) {
	s := sharedStudy(t)
	st := extract.Simultaneity(extract.Groups(s.Dataset.Faults))
	if st.FaultsInGroups < 18000 {
		t.Errorf("simultaneous faults %d, want >18k (~26k)", st.FaultsInGroups)
	}
	if frac := float64(st.SingleBitOnly) / float64(st.FaultsInGroups); frac < 0.98 {
		t.Errorf("all-single-bit group share %v, want >0.98", frac)
	}
	if st.TripleWithSingle != 2 {
		t.Errorf("triple+single = %d, want 2", st.TripleWithSingle)
	}
	if st.DoubleDoublePairs != 1 {
		t.Errorf("double+double = %d, want 1", st.DoubleDoublePairs)
	}
	if st.MaxGroupBits < 30 || st.MaxGroupBits > 40 {
		t.Errorf("largest event %d bits, want ~36", st.MaxGroupBits)
	}
}

func TestFullReportRenders(t *testing.T) {
	s := sharedStudy(t)
	var buf bytes.Buffer
	s.FullReport(&buf, ReportOptions{Charts: true, Heatmaps: true})
	out := buf.String()
	for _, want := range []string{
		"Headline", "Table I", "Table II", "Fig 1", "Fig 4", "Fig 5",
		"Fig 13", "Pearson", "SECDED", "chipkill", "quarantine",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 10000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestDatasetOfWiresExclusions(t *testing.T) {
	s := sharedStudy(t)
	if len(s.ExcludedNodes()) != 1 {
		t.Fatalf("excluded nodes: %v", s.ExcludedNodes())
	}
	if s.Dataset.ControllerNode != s.Config.Profile.ControllerNode {
		t.Fatal("controller node not propagated")
	}
	if s.Dataset.PathologicalNode != s.Config.Profile.PathologicalNode {
		t.Fatal("pathological node not propagated")
	}
}
