package core

import (
	"context"
	"fmt"
	"iter"

	"unprotected/internal/cluster"
	"unprotected/internal/faultstore"
	"unprotected/internal/stream"
)

// storeSource adapts the binary fault store to the Source interface. It
// is the only built-in source that understands the WithNodes and
// WithTimeRange predicates: they become the store query, so segments
// the manifest index rules out are never opened.
type storeSource struct {
	dir  string
	opts options
	err  error // first constructor-option error, surfaced on use
}

// Store returns the Source that reads a binary fault store directory
// (see cmd/faultstore for building one from text logs). Options carry
// the same meaning as on Analyze, which may add to them; WithNodes and
// WithTimeRange prune whole segments via the store index before any
// I/O, and each may be given either here or to Analyze but not both
// (two restrictions of the same kind are a conflict, not a union). An
// invalid option surfaces as the error of the first Events delivery
// (and from Analyze before the stream starts).
func Store(dir string, opts ...Option) stream.Source {
	s := &storeSource{dir: dir}
	s.err = s.opts.apply(opts)
	return s
}

// query assembles the store query from the resolved options.
func (s *storeSource) query() faultstore.Query {
	return faultstore.Query{
		Nodes:    s.opts.nodes,
		HasRange: s.opts.hasRange,
		From:     s.opts.from,
		To:       s.opts.to,
		Workers:  s.opts.workers,
		Degraded: s.opts.degraded,
		Health:   s.opts.health,
	}
}

func (s *storeSource) Events(ctx context.Context) iter.Seq2[stream.Event, error] {
	if s.err != nil {
		return func(yield func(stream.Event, error) bool) {
			yield(stream.Event{}, fmt.Errorf("unprotected: Store: %w", s.err))
		}
	}
	return func(yield func(stream.Event, error) bool) {
		st, err := faultstore.Open(s.dir)
		if err != nil {
			yield(stream.Event{}, fmt.Errorf("unprotected: Store: %w", err))
			return
		}
		for ev, err := range st.Events(ctx, s.query()) {
			if !yield(ev, err) {
				return
			}
		}
	}
}

func (s *storeSource) configure(o *options) (stream.Source, error) {
	if s.err != nil {
		return nil, fmt.Errorf("Store: %w", s.err)
	}
	// Observers and WithoutDataset baked into the Store call flow up to
	// Analyze, exactly like the Logs source.
	o.observers = append(o.observers, s.opts.observers...)
	if s.opts.noDataset {
		o.noDataset = true
	}
	// Worker count and predicates flow down into a derived copy, so a
	// reusable Source is never mutated by one Analyze call's options.
	changed := o.workers > 0 && o.workers != s.opts.workers
	if o.hasPredicates() || o.degraded {
		changed = true
	}
	if !changed {
		return s, nil
	}
	cp := *s
	if len(o.nodes) > 0 {
		// Two node restrictions cannot union: WithNodes promises to
		// restrict, and appending would silently widen the constructor's
		// set. Mirror the WithTimeRange conflict and reject.
		if len(cp.opts.nodes) > 0 {
			return nil, fmt.Errorf("Store: WithNodes given both to Store and to Analyze")
		}
		cp.opts.nodes = o.nodes
	}
	if o.hasRange {
		if cp.opts.hasRange {
			return nil, fmt.Errorf("Store: WithTimeRange given both to Store and to Analyze")
		}
		cp.opts.hasRange, cp.opts.from, cp.opts.to = true, o.from, o.to
	}
	if o.degraded {
		// Two WithDegraded calls could carry two different health sinks;
		// reject the ambiguity like the other both-places conflicts.
		if cp.opts.degraded {
			return nil, fmt.Errorf("Store: WithDegraded given both to Store and to Analyze")
		}
		cp.opts.degraded, cp.opts.health = true, o.health
	}
	if o.workers > 0 {
		cp.opts.workers = o.workers
	}
	return &cp, nil
}

func (s *storeSource) controller() cluster.NodeID   { return s.opts.controller }
func (s *storeSource) pathological() cluster.NodeID { return cluster.NodeID{} }

// topology returns the prototype's layout, for the same reason the log
// source does: a store carries record streams, not a topology, and the
// paper's is the only one the per-node analyses know how to map.
func (s *storeSource) topology() *cluster.Topology { return cluster.PaperTopology() }
