package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unprotected/internal/campaign"
	"unprotected/internal/faultstore"
	"unprotected/internal/logstore"
	"unprotected/internal/timebase"
)

// ingestFixtureStore exports the replay fixture as text logs and ingests
// them into a fresh store, returning both directories.
func ingestFixtureStore(t *testing.T) (logDir, storeDir string) {
	t.Helper()
	sessions, faults, _ := replayFixture()
	logDir = t.TempDir()
	if err := logstore.Export(sessions, faults, logDir); err != nil {
		t.Fatal(err)
	}
	storeDir = t.TempDir()
	if _, err := faultstore.Ingest(context.Background(), logDir, storeDir); err != nil {
		t.Fatal(err)
	}
	return logDir, storeDir
}

// TestStoreMatchesLogsReportFixture: the store source must be report
// byte-identical to replaying the text logs it was ingested from — the
// binary store changes the query cost, never the analysis.
func TestStoreMatchesLogsReportFixture(t *testing.T) {
	ctx := context.Background()
	logDir, storeDir := ingestFixtureStore(t)
	fromLogs, err := Analyze(ctx, Logs(logDir, WithController("02-04")))
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := Analyze(ctx, Store(storeDir, WithController("02-04")))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	fromLogs.FullReport(&a, ReportOptions{Charts: true, Heatmaps: true})
	fromStore.FullReport(&b, ReportOptions{Charts: true, Heatmaps: true})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Analyze(Store) report diverges from Analyze(Logs)")
	}
}

// TestStoreMatchesLogsReportCampaign is the full-scale acceptance run:
// the seed-42 campaign, exported, ingested, and analyzed through both
// sources, must render byte-identical reports.
func TestStoreMatchesLogsReportCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	ctx := context.Background()
	res := campaign.Run(campaign.DefaultConfig(42))
	logDir := t.TempDir()
	if err := logstore.Export(res.Sessions, res.Faults, logDir); err != nil {
		t.Fatal(err)
	}
	storeDir := t.TempDir()
	if _, err := faultstore.Ingest(ctx, logDir, storeDir); err != nil {
		t.Fatal(err)
	}
	fromLogs, err := Analyze(ctx, Logs(logDir, WithController("02-04")))
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := Analyze(ctx, Store(storeDir, WithController("02-04")))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	fromLogs.FullReport(&a, ReportOptions{Charts: true})
	fromStore.FullReport(&b, ReportOptions{Charts: true})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("seed-42: Analyze(Store) report diverges from Analyze(Logs)")
	}
}

// TestStorePredicates drives WithNodes/WithTimeRange through Analyze:
// the store source honors them, the other sources reject them.
func TestStorePredicates(t *testing.T) {
	ctx := context.Background()
	_, storeDir := ingestFixtureStore(t)

	study, err := Analyze(ctx, Store(storeDir, WithController("02-04")), WithNodes("01-02"))
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Dataset.Faults) == 0 {
		t.Fatal("node-filtered store delivered no faults")
	}
	for _, f := range study.Dataset.Faults {
		if f.Node.Blade != 1 || f.Node.SoC != 2 {
			t.Fatalf("WithNodes leaked fault of %v", f.Node)
		}
	}

	full, err := Analyze(ctx, Store(storeDir))
	if err != nil {
		t.Fatal(err)
	}
	lo := full.Dataset.Faults[0].FirstAt
	hi := full.Dataset.Faults[len(full.Dataset.Faults)-1].FirstAt
	mid := (lo + hi) / 2
	ranged, err := Analyze(ctx, Store(storeDir,
		WithTimeRange(lo.Time(), mid.Time())))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ranged.Dataset.Faults); n == 0 || n >= len(full.Dataset.Faults) {
		t.Fatalf("time-ranged store delivered %d of %d faults", n, len(full.Dataset.Faults))
	}
	for _, f := range ranged.Dataset.Faults {
		if f.FirstAt < lo || f.FirstAt >= mid {
			t.Fatalf("WithTimeRange leaked fault at %v", f.FirstAt)
		}
	}

	// The other sources reject predicates descriptively.
	if _, err := Analyze(ctx, Simulate(campaign.DefaultConfig(1)), WithNodes("01-02")); err == nil ||
		!strings.Contains(err.Error(), "Store source") {
		t.Fatalf("Simulate accepted WithNodes: %v", err)
	}
	logDir := t.TempDir()
	if _, err := Analyze(ctx, Logs(logDir), WithNodes("01-02")); err == nil ||
		!strings.Contains(err.Error(), "Store source") {
		t.Fatalf("Logs accepted WithNodes: %v", err)
	}
	if _, err := Analyze(ctx, Logs(logDir, WithNodes("01-02"))); err == nil ||
		!strings.Contains(err.Error(), "Store source") {
		t.Fatalf("Logs constructor accepted WithNodes: %v", err)
	}

	// Invalid predicate values are reported before the stream starts.
	if _, err := Analyze(ctx, Store(storeDir), WithNodes()); err == nil {
		t.Fatal("empty WithNodes accepted")
	}
	if _, err := Analyze(ctx, Store(storeDir), WithNodes("not-a-node")); err == nil {
		t.Fatal("unparseable node accepted")
	}
	now := timebase.T(0).Time()
	if _, err := Analyze(ctx, Store(storeDir), WithTimeRange(now, now)); err == nil {
		t.Fatal("empty time range accepted")
	}
	if _, err := Analyze(ctx, Store(storeDir, WithTimeRange(now, now.Add(time.Hour))),
		WithTimeRange(now, now.Add(time.Hour))); err == nil {
		t.Fatal("double WithTimeRange accepted")
	}
	// Two node restrictions are a conflict, never a silent union: the old
	// append widened Store(WithNodes("01-02")) to deliver both nodes.
	if _, err := Analyze(ctx, Store(storeDir, WithNodes("01-02")), WithNodes("02-02")); err == nil ||
		!strings.Contains(err.Error(), "WithNodes") {
		t.Fatalf("double WithNodes error %v, want a conflict", err)
	}
}

// TestStoreDegraded drives WithDegraded through Analyze: a corrupt
// segment fails the default strict analysis, is skipped (and accounted
// in the health report) under WithDegraded, and the option is rejected
// by the other sources and by double application.
func TestStoreDegraded(t *testing.T) {
	ctx := context.Background()
	_, storeDir := ingestFixtureStore(t)

	full, err := Analyze(ctx, Store(storeDir, WithController("02-04")))
	if err != nil {
		t.Fatal(err)
	}

	segs, err := faultstore.Fsck(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if segs.SegmentsChecked < 2 {
		t.Fatalf("fixture store has %d segments, want several", segs.SegmentsChecked)
	}
	corruptOneSegment(t, storeDir)

	if _, err := Analyze(ctx, Store(storeDir, WithController("02-04"))); err == nil {
		t.Fatal("strict analysis of a corrupt store must fail")
	}

	h := &StoreHealth{}
	degraded, err := Analyze(ctx, Store(storeDir, WithController("02-04")), WithDegraded(h))
	if err != nil {
		t.Fatalf("degraded analysis failed: %v", err)
	}
	if h.Clean() || len(h.Skipped()) != 1 {
		t.Fatalf("health report = %v, want one skipped segment", h.Skipped())
	}
	if got := len(degraded.Dataset.Faults) + h.LostFaults(); got != len(full.Dataset.Faults) {
		t.Fatalf("delivered+lost = %d faults, want %d", got, len(full.Dataset.Faults))
	}

	// The option is store-only and single-application, like the predicates.
	if _, err := Analyze(ctx, Simulate(campaign.DefaultConfig(1)), WithDegraded(nil)); err == nil ||
		!strings.Contains(err.Error(), "Store source") {
		t.Fatalf("Simulate accepted WithDegraded: %v", err)
	}
	if _, err := Analyze(ctx, Logs(t.TempDir(), WithDegraded(nil))); err == nil ||
		!strings.Contains(err.Error(), "Store source") {
		t.Fatalf("Logs accepted WithDegraded: %v", err)
	}
	if _, err := Analyze(ctx, Store(storeDir, WithDegraded(h)), WithDegraded(h)); err == nil ||
		!strings.Contains(err.Error(), "WithDegraded") {
		t.Fatalf("double WithDegraded error %v, want a conflict", err)
	}
}

// corruptOneSegment flips a byte in the middle of one segment file.
func corruptOneSegment(t *testing.T, storeDir string) {
	t.Helper()
	entries, err := os.ReadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		path := filepath.Join(storeDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no segment file found")
}

// TestStoreSourceReuse pins that Analyze options never mutate a
// reusable Store source: a predicate applied in one call must not
// narrow the next.
func TestStoreSourceReuse(t *testing.T) {
	ctx := context.Background()
	_, storeDir := ingestFixtureStore(t)
	src := Store(storeDir)
	filtered, err := Analyze(ctx, src, WithNodes("01-02"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Dataset.Faults) <= len(filtered.Dataset.Faults) {
		t.Fatalf("source retained a prior call's predicate: %d <= %d faults",
			len(full.Dataset.Faults), len(filtered.Dataset.Faults))
	}
}
