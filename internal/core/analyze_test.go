package core

import (
	"bytes"
	"context"
	"errors"
	"iter"
	"runtime"
	"strings"
	"testing"
	"time"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
	"unprotected/internal/stream"
)

// TestAnalyzeLogsMatchesStudyFromLogs: the acceptance criterion — the new
// entry point over a log source must render a report byte-identical to
// the deprecated wrapper's, for explicit and default worker counts.
func TestAnalyzeLogsMatchesStudyFromLogs(t *testing.T) {
	sessions, faults, controller := replayFixture()
	dir := t.TempDir()
	if err := logstore.Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	legacy, err := StudyFromLogs(dir, controller, 3)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	legacy.FullReport(&want, ReportOptions{Charts: true, Heatmaps: true})

	for _, opts := range [][]Option{
		{WithController(controller), WithWorkers(3)},
		{WithController(controller)},
	} {
		study, err := Analyze(context.Background(), Logs(dir), opts...)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		study.FullReport(&got, ReportOptions{Charts: true, Heatmaps: true})
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("Analyze(Logs) report diverges from StudyFromLogs (opts %d)", len(opts))
		}
	}

	// Options on the source itself are the same API.
	study, err := Analyze(context.Background(), Logs(dir, WithController(controller), WithWorkers(2)))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	study.FullReport(&got, ReportOptions{Charts: true, Heatmaps: true})
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("Analyze(Logs(WithController)) report diverges from StudyFromLogs")
	}
}

// TestAnalyzeSimulateMatchesRunStudy: same criterion for the simulation
// source, including the campaign-result view the Study carries.
func TestAnalyzeSimulateMatchesRunStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	legacy := RunStudy(campaign.DefaultConfig(8))
	var want bytes.Buffer
	legacy.FullReport(&want, ReportOptions{Charts: true, Heatmaps: true})

	study, err := Analyze(context.Background(), Simulate(campaign.DefaultConfig(8)))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	study.FullReport(&got, ReportOptions{Charts: true, Heatmaps: true})
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("Analyze(Simulate) report diverges from RunStudy")
	}
	if study.Config == nil || study.Result == nil {
		t.Fatal("simulation study lost its campaign view")
	}
	if study.Result.AllocFails != legacy.Result.AllocFails {
		t.Fatalf("AllocFails %d, want %d", study.Result.AllocFails, legacy.Result.AllocFails)
	}

	// A pure-streaming simulation carries no Result: empty slices next to
	// full raw-log counters would be an inconsistent campaign view.
	lean, err := Analyze(context.Background(), Simulate(campaign.DefaultConfig(8)), WithoutDataset())
	if err != nil {
		t.Fatal(err)
	}
	if lean.Result != nil {
		t.Fatal("WithoutDataset simulation still built a campaign Result")
	}
	if lean.Config == nil || lean.Figures == nil {
		t.Fatal("WithoutDataset simulation lost Config or Figures")
	}
}

// TestAnalyzeValidatesOptions: invalid configurations must produce
// descriptive errors instead of the old silent clamping.
func TestAnalyzeValidatesOptions(t *testing.T) {
	dir := t.TempDir()
	sessions, faults, _ := replayFixture()
	if err := logstore.Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	check := func(wantSub string, _ *Study, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("no error, want one mentioning %q", wantSub)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}

	s, err := Analyze(ctx, Logs(dir), WithWorkers(-3))
	check("workers", s, err)
	s, err = StudyFromLogs(dir, "", -1) // the old door validates too now
	check("workers", s, err)
	s, err = Analyze(ctx, Logs(dir), WithController("not-a-node"))
	check("controller", s, err)
	s, err = Analyze(ctx, Logs(dir, WithController("bogus!")))
	check("controller", s, err)
	s, err = Analyze(ctx, Simulate(nil))
	check("Config", s, err)
	s, err = Analyze(ctx, nil)
	check("Source", s, err)
	s, err = Analyze(ctx, Logs(dir), WithObservers(nil))
	check("Observer", s, err)

	// A bad option baked into a Source surfaces from Events too, not only
	// through Analyze.
	for ev, err := range Logs(dir, WithWorkers(-2)).Events(ctx) {
		if err == nil {
			t.Fatalf("bad source delivered %+v", ev)
		}
		check("workers", nil, err)
		break
	}
}

// countingObserver records everything it sees and whether Finish ran.
type countingObserver struct {
	faults   []extract.Fault
	sessions []eventlog.Session
	finished bool
	fail     error
}

func (c *countingObserver) ObserveFault(f extract.Fault) { c.faults = append(c.faults, f) }
func (c *countingObserver) ObserveSession(s eventlog.Session) {
	c.sessions = append(c.sessions, s)
}
func (c *countingObserver) Finish() error { c.finished = true; return c.fail }

// TestAnalyzeObserversAndWithoutDataset: attached observers ride the same
// pass (seeing exactly the dataset, in order), WithoutDataset leaves the
// slices empty while still feeding figures and observers, and a Finish
// error fails the run.
func TestAnalyzeObserversAndWithoutDataset(t *testing.T) {
	sessions, faults, controller := replayFixture()
	dir := t.TempDir()
	if err := logstore.Export(sessions, faults, dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	full, err := Analyze(ctx, Logs(dir, WithController(controller)))
	if err != nil {
		t.Fatal(err)
	}

	obs := &countingObserver{}
	lean, err := Analyze(ctx, Logs(dir, WithController(controller)),
		WithObservers(obs), WithoutDataset())
	if err != nil {
		t.Fatal(err)
	}
	if !obs.finished {
		t.Fatal("observer Finish never ran")
	}
	if len(lean.Dataset.Faults) != 0 || len(lean.Dataset.Sessions) != 0 {
		t.Fatal("WithoutDataset still materialized the dataset")
	}
	if len(obs.faults) != len(full.Dataset.Faults) {
		t.Fatalf("observer saw %d faults, dataset holds %d", len(obs.faults), len(full.Dataset.Faults))
	}
	for i := range obs.faults {
		if obs.faults[i] != full.Dataset.Faults[i] {
			t.Fatalf("observer fault %d differs from dataset", i)
		}
	}
	if len(obs.sessions) != len(full.Dataset.Sessions) {
		t.Fatalf("observer saw %d sessions, dataset holds %d", len(obs.sessions), len(full.Dataset.Sessions))
	}
	// Figures still accumulate on the pure-streaming run.
	if *lean.Figures.HourOfDay != *full.Figures.HourOfDay {
		t.Fatal("WithoutDataset diverged the hour-of-day figure")
	}
	if lean.Dataset.RawLogs != full.Dataset.RawLogs {
		t.Fatal("WithoutDataset lost the raw-log accounting")
	}

	// Observers and WithoutDataset baked into the Logs call itself are
	// equivalent to passing them to Analyze.
	baked := &countingObserver{}
	bakedStudy, err := Analyze(ctx,
		Logs(dir, WithController(controller), WithObservers(baked), WithoutDataset()))
	if err != nil {
		t.Fatal(err)
	}
	if !baked.finished || len(baked.faults) != len(full.Dataset.Faults) {
		t.Fatalf("source-baked observer saw %d faults (finished=%v), want %d",
			len(baked.faults), baked.finished, len(full.Dataset.Faults))
	}
	if len(bakedStudy.Dataset.Faults) != 0 {
		t.Fatal("source-baked WithoutDataset still materialized the dataset")
	}

	failing := &countingObserver{fail: errors.New("boom")}
	if _, err := Analyze(ctx, Logs(dir, WithController(controller)), WithObservers(failing)); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("observer Finish error not surfaced: %v", err)
	}
}

// TestAnalyzeCancelLeakFree is the goroutine-leak regression gate: a
// cancelled Analyze must return ctx.Err() and leave the goroutine count
// where it started, whether the cancellation lands during simulation
// (timer) or mid-stream (observer-triggered).
func TestAnalyzeCancelLeakFree(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	baseline := runtime.NumGoroutine()

	// Cancel ~5ms into a ~1s campaign: lands while the worker pool is
	// simulating nodes.
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	study, err := Analyze(ctx, Simulate(campaign.DefaultConfig(2)))
	timer.Stop()
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", study, err)
	}

	// Cancel from inside the stream: the 50th fault pulls the plug.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	n := 0
	obs := stream.FuncObserver{Fault: func(extract.Fault) {
		if n++; n == 50 {
			cancel2()
		}
	}}
	study, err = Analyze(ctx2, Simulate(campaign.DefaultConfig(2)), WithObservers(obs))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", study, err)
	}
	if n != 50 {
		t.Fatalf("observer fed %d faults after cancellation, want exactly 50", n)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// customSource is an external Source implementation: Analyze must accept
// any iterator honouring the stream contract, not just the built-ins.
type customSource struct {
	faults   []extract.Fault
	sessions []eventlog.Session
}

func (c *customSource) Events(ctx context.Context) iter.Seq2[stream.Event, error] {
	return func(yield func(stream.Event, error) bool) {
		if !yield(stream.StatsEvent(&stream.Stats{Faults: len(c.faults), Sessions: len(c.sessions)}), nil) {
			return
		}
		for _, f := range c.faults {
			if !yield(stream.FaultEvent(f), nil) {
				return
			}
		}
		for _, s := range c.sessions {
			if !yield(stream.SessionEvent(s), nil) {
				return
			}
		}
	}
}

// TestAnalyzeCustomSource: a third-party Source gets the same sink —
// dataset, figures, observers — as the built-ins.
func TestAnalyzeCustomSource(t *testing.T) {
	sessions, faults, _ := replayFixture()
	src := &customSource{faults: faults, sessions: sessions}
	obs := &countingObserver{}
	study, err := Analyze(context.Background(), src, WithController("02-04"), WithObservers(obs))
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Dataset.Faults) != len(faults) || len(study.Dataset.Sessions) != len(sessions) {
		t.Fatal("custom source dataset incomplete")
	}
	if study.Dataset.ControllerNode != (cluster.NodeID{Blade: 2, SoC: 4}) {
		t.Fatal("WithController ignored for custom source")
	}
	if study.Dataset.Topo == nil {
		t.Fatal("custom source study carries no topology")
	}
	if !obs.finished || len(obs.faults) != len(faults) {
		t.Fatal("observer not fed from custom source")
	}
	var buf bytes.Buffer
	study.FullReport(&buf, ReportOptions{})
	if !strings.Contains(buf.String(), "independent memory faults") {
		t.Fatal("custom-source report missing headline")
	}
}
