// Package core is the study façade: it wires the campaign simulator, the
// extraction methodology and the analysis layer into a single entry point
// that runs the whole reproduction and renders every figure and table of
// the paper. cmd/ binaries and the examples talk to this package (via the
// root unprotected package) rather than to the substrates directly.
//
// Both dataset sources — the campaign engine's merged simulation stream
// and the log-replay loader's merged file stream — feed the same sink: it
// collects the analysis dataset and simultaneously drives the incremental
// figure accumulators, so every online-computable §III statistic is ready
// the moment the stream ends, after exactly one pass over the source.
package core

import (
	"fmt"

	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/logstore"
)

// Study is one executed campaign with its analysis-ready dataset.
type Study struct {
	Config *campaign.Config
	// Result is the collected campaign output; nil for studies replayed
	// from log files (the logs are the result).
	Result  *campaign.Result
	Dataset *analysis.Dataset
	// Figures holds the incremental figure accumulators fed during the
	// stream; FullReport prefers them over recomputing from the slices.
	// Nil for studies assembled by hand — every consumer falls back to
	// the slice functions.
	Figures *analysis.Accumulators
}

// streamSink adapts a merged (faults, sessions) stream into a Study: it
// collects the dataset slices and feeds the figure accumulators element by
// element. Both campaign.Stream and logstore.Stream deliver the canonical
// orders the accumulators require.
type streamSink struct {
	dataset *analysis.Dataset
	figures *analysis.Accumulators
}

func newStreamSink(controller, pathological cluster.NodeID) *streamSink {
	var exclude []cluster.NodeID
	var zero cluster.NodeID
	if controller != zero {
		exclude = append(exclude, controller)
	}
	return &streamSink{
		dataset: &analysis.Dataset{
			ControllerNode:   controller,
			PathologicalNode: pathological,
		},
		figures: analysis.NewAccumulators(exclude...),
	}
}

func (s *streamSink) fault(f extract.Fault) {
	s.dataset.Faults = append(s.dataset.Faults, f)
	s.figures.ObserveFault(f)
}

func (s *streamSink) session(sess eventlog.Session) {
	s.dataset.Sessions = append(s.dataset.Sessions, sess)
	s.figures.ObserveSession(sess)
}

// study finalizes the sink once the stream has ended.
func (s *streamSink) study(topo *cluster.Topology, rawLogs int64, rawLogsByNode map[cluster.NodeID]int64) *Study {
	s.dataset.Topo = topo
	s.dataset.RawLogs = rawLogs
	s.dataset.RawLogsByNode = rawLogsByNode
	return &Study{Dataset: s.dataset, Figures: s.figures}
}

// RunPaperStudy executes the full-scale study (923 nodes, 13 months) with
// the calibrated paper profile.
func RunPaperStudy(seed uint64) *Study {
	cfg := campaign.DefaultConfig(seed)
	return RunStudy(cfg)
}

// RunStudy executes an arbitrary configuration. The campaign streams
// through the shared sink: dataset collection and the incremental figure
// computations happen during delivery, in one pass.
func RunStudy(cfg *campaign.Config) *Study {
	var controller, pathological cluster.NodeID
	if cfg.Profile != nil {
		controller = cfg.Profile.ControllerNode
		pathological = cfg.Profile.PathologicalNode
	}
	sink := newStreamSink(controller, pathological)
	st := campaign.Stream(cfg, campaign.StreamHandler{
		Begin: func(st *campaign.Stats) {
			sink.dataset.Faults = make([]extract.Fault, 0, st.Faults)
			sink.dataset.Sessions = make([]eventlog.Session, 0, st.Sessions)
		},
		Fault:   sink.fault,
		Session: sink.session,
	})
	study := sink.study(cfg.Topo, st.RawLogs, st.RawLogsByNode)
	study.Config = cfg
	study.Result = &campaign.Result{
		Cfg:           cfg,
		Faults:        study.Dataset.Faults,
		Sessions:      study.Dataset.Sessions,
		RawLogs:       st.RawLogs,
		RawLogsByNode: st.RawLogsByNode,
		AllocFails:    st.AllocFails,
	}
	return study
}

// StudyFromLogs rebuilds a study from a directory of per-node log files —
// the paper's actual workflow (§II-B kept one log file per node). The
// directory streams through the same sink as a simulated campaign, so the
// resulting Study is interchangeable with one from RunStudy: same canonical
// orders, same figure accumulators, one pass over the corpus. controller
// optionally names the permanently failing node excluded from MTBF-style
// analyses (empty string disables the exclusion); workers bounds the
// loader pool (0 means GOMAXPROCS). Output is identical for every workers
// value.
func StudyFromLogs(dir, controller string, workers int) (*Study, error) {
	var controllerID cluster.NodeID
	if controller != "" {
		id, err := cluster.ParseNodeID(controller)
		if err != nil {
			return nil, fmt.Errorf("bad controller node: %w", err)
		}
		controllerID = id
	}
	sink := newStreamSink(controllerID, cluster.NodeID{})
	st, err := logstore.StreamWorkers(dir, workers, logstore.StreamHandler{
		Begin: func(st *logstore.Stats) {
			sink.dataset.Faults = make([]extract.Fault, 0, st.Faults)
			sink.dataset.Sessions = make([]eventlog.Session, 0, st.Sessions)
		},
		Fault:   sink.fault,
		Session: sink.session,
	})
	if err != nil {
		return nil, err
	}
	return sink.study(cluster.PaperTopology(), st.RawLogs, st.RawLogsByNode), nil
}

// DatasetOf adapts a campaign result for the analysis layer.
func DatasetOf(cfg *campaign.Config, res *campaign.Result) *analysis.Dataset {
	d := &analysis.Dataset{
		Faults:        res.Faults,
		Sessions:      res.Sessions,
		RawLogs:       res.RawLogs,
		RawLogsByNode: res.RawLogsByNode,
		Topo:          cfg.Topo,
	}
	if cfg.Profile != nil {
		d.ControllerNode = cfg.Profile.ControllerNode
		d.PathologicalNode = cfg.Profile.PathologicalNode
	}
	return d
}

// ExcludedNodes returns the nodes MTBF-style analyses drop (§III-I): the
// permanently failing controller node.
func (s *Study) ExcludedNodes() []cluster.NodeID {
	var zero cluster.NodeID
	if s.Dataset.ControllerNode == zero {
		return nil
	}
	return []cluster.NodeID{s.Dataset.ControllerNode}
}
