// Package core is the study façade: it wires the campaign simulator, the
// extraction methodology and the analysis layer into a single entry point
// that runs the whole reproduction and renders every figure and table of
// the paper. cmd/ binaries and the examples talk to this package (via the
// root unprotected package) rather than to the substrates directly.
package core

import (
	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
)

// Study is one executed campaign with its analysis-ready dataset.
type Study struct {
	Config  *campaign.Config
	Result  *campaign.Result
	Dataset *analysis.Dataset
}

// RunPaperStudy executes the full-scale study (923 nodes, 13 months) with
// the calibrated paper profile.
func RunPaperStudy(seed uint64) *Study {
	cfg := campaign.DefaultConfig(seed)
	return RunStudy(cfg)
}

// RunStudy executes an arbitrary configuration.
func RunStudy(cfg *campaign.Config) *Study {
	res := campaign.Run(cfg)
	return &Study{Config: cfg, Result: res, Dataset: DatasetOf(cfg, res)}
}

// DatasetOf adapts a campaign result for the analysis layer.
func DatasetOf(cfg *campaign.Config, res *campaign.Result) *analysis.Dataset {
	d := &analysis.Dataset{
		Faults:        res.Faults,
		Sessions:      res.Sessions,
		RawLogs:       res.RawLogs,
		RawLogsByNode: res.RawLogsByNode,
		Topo:          cfg.Topo,
	}
	if cfg.Profile != nil {
		d.ControllerNode = cfg.Profile.ControllerNode
		d.PathologicalNode = cfg.Profile.PathologicalNode
	}
	return d
}

// ExcludedNodes returns the nodes MTBF-style analyses drop (§III-I): the
// permanently failing controller node.
func (s *Study) ExcludedNodes() []cluster.NodeID {
	var zero cluster.NodeID
	if s.Dataset.ControllerNode == zero {
		return nil
	}
	return []cluster.NodeID{s.Dataset.ControllerNode}
}
