// Package core is the study façade: it wires the campaign simulator, the
// extraction methodology and the analysis layer into a single entry point
// that runs the whole reproduction and renders every figure and table of
// the paper. cmd/ binaries and the examples talk to this package (via the
// root unprotected package) rather than to the substrates directly.
//
// The entry point is Analyze(ctx, src): src is any stream.Source — the
// campaign engine (Simulate), the log-replay loader (Logs), or an
// external implementation — and every source feeds the same sink, which
// collects the analysis dataset, drives the incremental figure
// accumulators and fans out to attached observers, so every
// online-computable §III statistic is ready the moment the stream ends,
// after exactly one pass over the source. RunStudy and StudyFromLogs
// survive as deprecated wrappers with byte-identical output.
package core

import (
	"context"

	"unprotected/internal/analysis"
	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/stream"
)

// Study is one executed campaign with its analysis-ready dataset.
type Study struct {
	Config *campaign.Config
	// Result is the collected campaign output; nil for studies replayed
	// from log files (the logs are the result) and for pure-streaming
	// runs (WithoutDataset collects nothing).
	Result  *campaign.Result
	Dataset *analysis.Dataset
	// Figures holds the incremental figure accumulators fed during the
	// stream; FullReport prefers them over recomputing from the slices.
	// Nil for studies assembled by hand — every consumer falls back to
	// the slice functions.
	Figures *analysis.Accumulators
}

// streamSink adapts a merged (faults, sessions) stream into a Study: it
// collects the dataset slices (when collect is set), feeds the figure
// accumulators, and fans out to any attached external observers, element
// by element. Every Source delivers the canonical orders the
// accumulators require.
type streamSink struct {
	dataset   *analysis.Dataset
	figures   *analysis.Accumulators
	collect   bool
	observers []stream.Observer
}

func newStreamSink(controller, pathological cluster.NodeID) *streamSink {
	var exclude []cluster.NodeID
	var zero cluster.NodeID
	if controller != zero {
		exclude = append(exclude, controller)
	}
	return &streamSink{
		dataset: &analysis.Dataset{
			ControllerNode:   controller,
			PathologicalNode: pathological,
		},
		figures: analysis.NewAccumulators(exclude...),
		collect: true,
	}
}

func (s *streamSink) fault(f extract.Fault) {
	if s.collect {
		s.dataset.Faults = append(s.dataset.Faults, f)
	}
	s.figures.ObserveFault(f)
	for _, ob := range s.observers {
		ob.ObserveFault(f)
	}
}

func (s *streamSink) session(sess eventlog.Session) {
	if s.collect {
		s.dataset.Sessions = append(s.dataset.Sessions, sess)
	}
	s.figures.ObserveSession(sess)
	for _, ob := range s.observers {
		ob.ObserveSession(sess)
	}
}

// study finalizes the sink once the stream has ended.
func (s *streamSink) study(topo *cluster.Topology, rawLogs int64, rawLogsByNode map[cluster.NodeID]int64) *Study {
	s.dataset.Topo = topo
	s.dataset.RawLogs = rawLogs
	s.dataset.RawLogsByNode = rawLogsByNode
	return &Study{Dataset: s.dataset, Figures: s.figures}
}

// RunPaperStudy executes the full-scale study (923 nodes, 13 months) with
// the calibrated paper profile.
func RunPaperStudy(seed uint64) *Study {
	cfg := campaign.DefaultConfig(seed)
	return RunStudy(cfg)
}

// RunStudy executes an arbitrary configuration.
//
// Deprecated: RunStudy is the pre-iterator entry point, kept as a thin
// wrapper over Analyze(ctx, Simulate(cfg)) — which it matches
// byte-for-byte, and which adds cancellation, custom observers and
// pure-streaming runs.
func RunStudy(cfg *campaign.Config) *Study {
	study, err := Analyze(context.Background(), Simulate(cfg))
	if err != nil {
		// A simulation source under a background context with no options
		// has no failure path.
		panic("core: RunStudy: " + err.Error())
	}
	return study
}

// StudyFromLogs rebuilds a study from a directory of per-node log files —
// the paper's actual workflow (§II-B kept one log file per node).
// controller optionally names the permanently failing node excluded from
// MTBF-style analyses (empty string disables the exclusion); workers
// bounds the loader pool (0 means GOMAXPROCS, negative is an error).
// Output is identical for every workers value.
//
// Deprecated: StudyFromLogs is the pre-iterator entry point, kept as a
// thin wrapper over Analyze(ctx, Logs(dir, ...)) — which it matches
// byte-for-byte, and which replaces the positional parameters with
// options.
func StudyFromLogs(dir, controller string, workers int) (*Study, error) {
	return Analyze(context.Background(), Logs(dir, WithController(controller), WithWorkers(workers)))
}

// DatasetOf adapts a campaign result for the analysis layer.
func DatasetOf(cfg *campaign.Config, res *campaign.Result) *analysis.Dataset {
	d := &analysis.Dataset{
		Faults:        res.Faults,
		Sessions:      res.Sessions,
		RawLogs:       res.RawLogs,
		RawLogsByNode: res.RawLogsByNode,
		Topo:          cfg.Topo,
	}
	if cfg.Profile != nil {
		d.ControllerNode = cfg.Profile.ControllerNode
		d.PathologicalNode = cfg.Profile.PathologicalNode
	}
	return d
}

// ExcludedNodes returns the nodes MTBF-style analyses drop (§III-I): the
// permanently failing controller node.
func (s *Study) ExcludedNodes() []cluster.NodeID {
	var zero cluster.NodeID
	if s.Dataset.ControllerNode == zero {
		return nil
	}
	return []cluster.NodeID{s.Dataset.ControllerNode}
}
