package core

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"time"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/faultstore"
	"unprotected/internal/logstore"
	"unprotected/internal/stream"
	"unprotected/internal/timebase"
)

// Option configures Analyze and the built-in sources. Options are
// validated when applied: Analyze (and the first Events call of a source
// built with invalid options) reports a descriptive error instead of
// silently clamping.
type Option func(*options) error

// options is the resolved option set.
type options struct {
	workers       int
	controller    cluster.NodeID
	hasController bool
	observers     []stream.Observer
	noDataset     bool
	// Store-source predicates (WithNodes / WithTimeRange); the other
	// sources reject them.
	nodes    []cluster.NodeID
	hasRange bool
	from, to timebase.T
	// Store-source read mode (WithDegraded); the other sources reject it.
	degraded bool
	health   *faultstore.Health
}

// hasPredicates reports whether a store-only predicate option was set.
func (o *options) hasPredicates() bool { return len(o.nodes) > 0 || o.hasRange }

// hasStoreOnly reports whether any option only the Store source
// understands was set.
func (o *options) hasStoreOnly() bool { return o.hasPredicates() || o.degraded }

func (o *options) apply(opts []Option) error {
	for _, opt := range opts {
		if opt == nil {
			return errors.New("nil Option")
		}
		if err := opt(o); err != nil {
			return err
		}
	}
	return nil
}

// WithWorkers bounds the source's worker pool. Zero selects GOMAXPROCS;
// negative values are rejected (they used to be silently clamped).
func WithWorkers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("workers must be >= 0, got %d (0 selects GOMAXPROCS)", n)
		}
		o.workers = n
		return nil
	}
}

// WithController names the permanently failing node excluded from
// MTBF-style analyses (§III-I). The empty string disables the exclusion.
// For a simulation source this overrides the profile's controller node;
// for a log-replay source it is the only way to identify it — log files
// do not record which node was the controller.
func WithController(node string) Option {
	return func(o *options) error {
		o.hasController = true
		if node == "" {
			o.controller = cluster.NodeID{}
			return nil
		}
		id, err := cluster.ParseNodeID(node)
		if err != nil {
			return fmt.Errorf("bad controller node: %w", err)
		}
		o.controller = id
		return nil
	}
}

// WithObservers attaches external one-pass accumulators to the stream:
// each observer sees every fault and session in canonical order, in the
// same single pass that feeds the internal figure accumulators, and its
// Finish runs once the stream ends. A Finish error fails Analyze.
func WithObservers(obs ...stream.Observer) Option {
	return func(o *options) error {
		for _, ob := range obs {
			if ob == nil {
				return errors.New("nil Observer")
			}
		}
		o.observers = append(o.observers, obs...)
		return nil
	}
}

// WithoutDataset makes Analyze a pure-streaming run: the Study's dataset
// slices stay empty (nothing is materialized per event) while the figure
// accumulators and any WithObservers attachments are still fed. Use it
// when the consumers are the observers themselves; report sections that
// recompute from the slices will see an empty dataset.
func WithoutDataset() Option {
	return func(o *options) error {
		o.noDataset = true
		return nil
	}
}

// WithNodes restricts a Store source to the named nodes: only their
// faults and sessions are delivered, and segments whose index node set
// is disjoint are never opened. Only the fault-store source understands
// it — Simulate and Logs reject it with a descriptive error — and, like
// WithTimeRange, giving it both to Store and to Analyze is a conflict
// error, never a silent union.
func WithNodes(nodes ...string) Option {
	return func(o *options) error {
		if len(nodes) == 0 {
			return errors.New("WithNodes: no nodes given")
		}
		for _, n := range nodes {
			id, err := cluster.ParseNodeID(n)
			if err != nil {
				return fmt.Errorf("WithNodes: %w", err)
			}
			o.nodes = append(o.nodes, id)
		}
		return nil
	}
}

// WithTimeRange restricts a Store source to records whose prune key —
// fault first-observation time, session start time — falls in the
// half-open interval [from, to). Segments whose index bounds fall
// outside are never opened. Only the fault-store source understands it.
func WithTimeRange(from, to time.Time) Option {
	return func(o *options) error {
		if !from.Before(to) {
			return fmt.Errorf("WithTimeRange: from %v is not before to %v", from, to)
		}
		o.hasRange = true
		o.from = timebase.FromTime(from)
		o.to = timebase.FromTime(to)
		return nil
	}
}

// StoreHealth is the queryable report of a degraded store read: every
// segment the query had to skip, with the error and the index-declared
// record counts the skip cost. The zero value is ready to pass to
// WithDegraded.
type StoreHealth = faultstore.Health

// WithDegraded switches a Store source to degraded reads: a segment that
// cannot be read or fails its CRC is skipped — with its diagnostics and
// index-declared record counts recorded in h, when non-nil — instead of
// failing the whole analysis. Strict hard-error remains the default: a
// reliability study must opt in to half-trusting its own storage. Only
// the fault-store source understands it; Simulate and Logs reject it.
func WithDegraded(h *faultstore.Health) Option {
	return func(o *options) error {
		o.degraded = true
		o.health = h
		return nil
	}
}

// configurableSource lets Analyze exchange options with the built-in
// sources: Analyze-level settings the source acts on (worker-pool size)
// flow down, source-baked settings only Analyze can act on (observers,
// WithoutDataset) flow up. configure returns the source to stream from —
// a derived copy when something changed, so neither the caller's Config
// nor a reusable Source is mutated by one Analyze call's options.
type configurableSource interface {
	configure(o *options) (stream.Source, error)
}

// studySource describes the study metadata a built-in source knows.
// topology is only required to be final after Events has been drained
// (the campaign engine defaults it during the run).
type studySource interface {
	controller() cluster.NodeID
	pathological() cluster.NodeID
	topology() *cluster.Topology
}

// simSource adapts the campaign engine to the Source interface.
type simSource struct {
	cfg *campaign.Config
}

// Simulate returns the Source that executes the campaign described by
// cfg. Pass it to Analyze, or range over Events directly for a custom
// consumer.
func Simulate(cfg *campaign.Config) stream.Source { return &simSource{cfg: cfg} }

func (s *simSource) Events(ctx context.Context) iter.Seq2[stream.Event, error] {
	if s.cfg == nil {
		return func(yield func(stream.Event, error) bool) {
			yield(stream.Event{}, errors.New("unprotected: Simulate: nil Config (use DefaultConfig)"))
		}
	}
	return campaign.Events(ctx, s.cfg)
}

func (s *simSource) configure(o *options) (stream.Source, error) {
	if s.cfg == nil {
		return nil, errors.New("Simulate: nil Config (use DefaultConfig)")
	}
	if o.hasStoreOnly() {
		return nil, errors.New("Simulate: WithNodes/WithTimeRange/WithDegraded apply only to a Store source")
	}
	if o.workers > 0 && o.workers != s.cfg.Workers {
		// Shallow-copy the Config so the override (and the engine's own
		// defaulting) stays local to this Analyze call.
		cfg := *s.cfg
		cfg.Workers = o.workers
		return &simSource{cfg: &cfg}, nil
	}
	return s, nil
}

func (s *simSource) controller() cluster.NodeID {
	if s.cfg != nil && s.cfg.Profile != nil {
		return s.cfg.Profile.ControllerNode
	}
	return cluster.NodeID{}
}

func (s *simSource) pathological() cluster.NodeID {
	if s.cfg != nil && s.cfg.Profile != nil {
		return s.cfg.Profile.PathologicalNode
	}
	return cluster.NodeID{}
}

func (s *simSource) topology() *cluster.Topology {
	if s.cfg == nil {
		return nil
	}
	return s.cfg.Topo
}

// logSource adapts the log-replay loader to the Source interface.
type logSource struct {
	dir  string
	opts options
	err  error // first constructor-option error, surfaced on use
}

// Logs returns the Source that replays a directory of per-node log files
// — the paper's actual workflow. Options accepted here carry the same
// meaning as on Analyze, which may override them (WithObservers and
// WithoutDataset only take effect through Analyze — a raw Events range
// has no sink to feed); an invalid option surfaces as the error of the
// first Events delivery (and from Analyze before the stream starts).
func Logs(dir string, opts ...Option) stream.Source {
	s := &logSource{dir: dir}
	s.err = s.opts.apply(opts)
	if s.err == nil && s.opts.hasStoreOnly() {
		s.err = errors.New("WithNodes/WithTimeRange/WithDegraded apply only to a Store source (replay the full directory or ingest it into a store first)")
	}
	return s
}

func (s *logSource) Events(ctx context.Context) iter.Seq2[stream.Event, error] {
	if s.err != nil {
		return func(yield func(stream.Event, error) bool) {
			yield(stream.Event{}, fmt.Errorf("unprotected: Logs: %w", s.err))
		}
	}
	return logstore.Events(ctx, s.dir, s.opts.workers)
}

func (s *logSource) configure(o *options) (stream.Source, error) {
	if s.err != nil {
		return nil, fmt.Errorf("Logs: %w", s.err)
	}
	if o.hasStoreOnly() {
		return nil, errors.New("Logs: WithNodes/WithTimeRange/WithDegraded apply only to a Store source (replay the full directory or ingest it into a store first)")
	}
	// Analyze-level options that the source cannot act on by itself flow
	// the other way: observers and WithoutDataset baked into the Logs call
	// join Analyze's own set, so both spellings are equivalent.
	o.observers = append(o.observers, s.opts.observers...)
	if s.opts.noDataset {
		o.noDataset = true
	}
	if o.workers > 0 && o.workers != s.opts.workers {
		cp := *s
		cp.opts.workers = o.workers
		return &cp, nil
	}
	return s, nil
}

func (s *logSource) controller() cluster.NodeID   { return s.opts.controller }
func (s *logSource) pathological() cluster.NodeID { return cluster.NodeID{} }

// topology returns the prototype's layout: a replayed directory carries
// no topology of its own, and the paper's is the only one the per-node
// analyses know how to map.
func (s *logSource) topology() *cluster.Topology { return cluster.PaperTopology() }

// Analyze drains src once and assembles the Study: the dataset slices
// (unless WithoutDataset), the incremental figure accumulators, and every
// attached observer are all fed element by element from the same single
// pass, in the canonical stream order. It is the one entry point both
// dataset sources — and any external Source implementation — share.
//
// Cancelling ctx aborts the run: the source winds its producers down
// leak-free and Analyze returns ctx.Err(). Invalid options (negative
// workers, an unparseable controller node, a nil observer) are reported
// before the stream starts.
func Analyze(ctx context.Context, src stream.Source, opts ...Option) (*Study, error) {
	if src == nil {
		return nil, errors.New("unprotected: Analyze: nil Source")
	}
	var o options
	if err := o.apply(opts); err != nil {
		return nil, fmt.Errorf("unprotected: Analyze: %w", err)
	}
	if cs, ok := src.(configurableSource); ok {
		configured, err := cs.configure(&o)
		if err != nil {
			return nil, fmt.Errorf("unprotected: Analyze: %w", err)
		}
		src = configured
	}

	var controller, pathological cluster.NodeID
	meta, hasMeta := src.(studySource)
	if hasMeta {
		controller, pathological = meta.controller(), meta.pathological()
	}
	if o.hasController {
		controller = o.controller
	}

	sink := newStreamSink(controller, pathological)
	sink.collect = !o.noDataset
	sink.observers = o.observers

	var st stream.Stats
	for ev, err := range src.Events(ctx) {
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case stream.KindStats:
			if ev.Stats != nil {
				st = *ev.Stats
				if sink.collect {
					sink.dataset.Faults = make([]extract.Fault, 0, st.Faults)
					sink.dataset.Sessions = make([]eventlog.Session, 0, st.Sessions)
				}
			}
		case stream.KindFault:
			sink.fault(ev.Fault)
		case stream.KindSession:
			sink.session(ev.Session)
		}
	}
	// Belt and braces: a well-behaved source surfaces cancellation as its
	// final iterator error, but a custom one may just stop yielding.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, ob := range o.observers {
		if err := ob.Finish(); err != nil {
			return nil, fmt.Errorf("unprotected: Analyze: observer: %w", err)
		}
	}

	topo := cluster.PaperTopology()
	if hasMeta {
		if t := meta.topology(); t != nil {
			topo = t
		}
	}
	study := sink.study(topo, st.RawLogs, st.RawLogsByNode)
	if sim, ok := src.(*simSource); ok {
		// Simulation studies keep carrying the campaign view, exactly as
		// RunStudy always has — except under WithoutDataset, where a
		// Result whose slices are deliberately empty but whose raw-log
		// counters are full would be internally inconsistent; it stays
		// nil, like a replayed study's.
		study.Config = sim.cfg
		if sink.collect {
			study.Result = &campaign.Result{
				Cfg:           sim.cfg,
				Faults:        study.Dataset.Faults,
				Sessions:      study.Dataset.Sessions,
				RawLogs:       st.RawLogs,
				RawLogsByNode: st.RawLogsByNode,
				AllocFails:    st.AllocFails,
			}
		}
	}
	return study, nil
}
