package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/stream"
)

// --- differential harness: old vs new delivery ---
//
// The batched, pooled delivery path (stream.Deliver via Analyze) must be
// observationally identical to the pre-batching architecture. The old
// side here is not a re-spelling of the new one: campaign.Stream drives
// the per-element kway.Merge directly into callbacks, with no block
// layer, no pooled buffers and no iterator plumbing in between. Each
// matrix cell renders the complete study — every figure, table, chart and
// heatmap — from both paths and requires the bytes to be equal.

// diffConfig builds one matrix cell's campaign configuration.
func diffConfig(seed uint64, blades int, counterFrac float64, workers int) *campaign.Config {
	cfg := campaign.DefaultConfig(seed)
	cfg.Topo = topoWithBlades(blades)
	cfg.CounterModeFrac = counterFrac
	cfg.Workers = workers
	return cfg
}

// topoWithBlades restricts the paper roster to blades 1..n, like the
// sweep engine's cluster-size axis: scanned nodes beyond the cut are
// excluded, special roles keep their spots.
func topoWithBlades(n int) *cluster.Topology {
	topo := cluster.PaperTopology()
	for _, node := range topo.Nodes {
		if node.ID.Blade > n && node.Role == cluster.Scanned {
			node.Role = cluster.Excluded
		}
	}
	return topo
}

// streamStudy assembles a Study through the old delivery architecture:
// campaign.Stream's per-element callbacks feed the same sink Analyze
// uses, so any divergence in the rendered report is attributable to the
// delivery layer alone.
func streamStudy(cfg *campaign.Config) *Study {
	var controller, pathological cluster.NodeID
	if cfg.Profile != nil {
		controller = cfg.Profile.ControllerNode
		pathological = cfg.Profile.PathologicalNode
	}
	sink := newStreamSink(controller, pathological)
	stats := campaign.Stream(cfg, campaign.StreamHandler{
		Begin: func(s *campaign.Stats) {
			sink.dataset.Faults = make([]extract.Fault, 0, s.Faults)
			sink.dataset.Sessions = make([]eventlog.Session, 0, s.Sessions)
		},
		Fault:   sink.fault,
		Session: sink.session,
	})
	study := sink.study(cfg.Topo, stats.RawLogs, stats.RawLogsByNode)
	study.Config = cfg
	study.Result = &campaign.Result{
		Cfg: cfg, Faults: study.Dataset.Faults, Sessions: study.Dataset.Sessions,
		RawLogs: stats.RawLogs, RawLogsByNode: stats.RawLogsByNode,
		AllocFails: stats.AllocFails,
	}
	return study
}

func renderFull(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	s.FullReport(&buf, ReportOptions{Charts: true, Heatmaps: true})
	return buf.Bytes()
}

// TestDifferentialDeliveryMatrix: workers × blades × pattern, old vs new,
// byte for byte.
func TestDifferentialDeliveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of campaigns")
	}
	const seed = 1916
	for _, workers := range []int{1, 4} {
		for _, blades := range []int{2, 3} {
			for _, frac := range []float64{0, 0.15} {
				name := fmt.Sprintf("workers=%d/blades=%d/counter=%v", workers, blades, frac)
				t.Run(name, func(t *testing.T) {
					want := renderFull(t, streamStudy(diffConfig(seed, blades, frac, workers)))
					study, err := Analyze(context.Background(), Simulate(diffConfig(seed, blades, frac, workers)))
					if err != nil {
						t.Fatal(err)
					}
					got := renderFull(t, study)
					if !bytes.Equal(want, got) {
						t.Fatalf("batched delivery changed the rendered study (%d vs %d bytes)", len(want), len(got))
					}
					if n := stream.LiveBatches(); n != 0 {
						t.Fatalf("%d pooled delivery blocks leaked", n)
					}
				})
			}
		}
	}
}

// TestDifferentialCancelMidway: the cancellation cells of the matrix. A
// context cancelled mid-stream must deliver exactly the uncancelled
// prefix, then one (zero Event, ctx.Err()) pair and nothing else — and
// the pooled delivery block must be back in the pool when the iterator
// returns, no matter where inside a block the cancel landed.
func TestDifferentialCancelMidway(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of campaigns")
	}
	const seed = 1916
	for _, workers := range []int{1, 4} {
		cfg := diffConfig(seed, 2, 0.15, workers)
		var full []stream.Event
		for ev, err := range campaign.Events(context.Background(), cfg) {
			if err != nil {
				t.Fatal(err)
			}
			full = append(full, ev)
		}
		// Cancellation points straddling block boundaries (the internal
		// block size is 512) plus the stats prologue and a deep position.
		for _, after := range []int{1, 100, 511, 512, 513, len(full) / 2} {
			t.Run(fmt.Sprintf("workers=%d/after=%d", workers, after), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var events []stream.Event
				var finalErr error
				tail := 0
				for ev, err := range campaign.Events(ctx, cfg) {
					if finalErr != nil {
						tail++ // deliveries after the error pair: must stay 0
						continue
					}
					if err != nil {
						finalErr = err
						continue
					}
					events = append(events, ev)
					if len(events) == after {
						cancel()
					}
				}
				if finalErr != context.Canceled {
					t.Fatalf("final error %v, want context.Canceled", finalErr)
				}
				if tail != 0 {
					t.Fatalf("%d events delivered after ctx.Done", tail)
				}
				if len(events) != after {
					t.Fatalf("%d events before the error pair, want %d", len(events), after)
				}
				for i := range events {
					if events[i].Kind != full[i].Kind {
						t.Fatalf("event %d: kind %v vs %v", i, events[i].Kind, full[i].Kind)
					}
					switch events[i].Kind {
					case stream.KindFault:
						if events[i].Fault != full[i].Fault {
							t.Fatalf("event %d: fault diverges under cancellation", i)
						}
					case stream.KindSession:
						if events[i].Session != full[i].Session {
							t.Fatalf("event %d: session diverges under cancellation", i)
						}
					}
				}
				if n := stream.LiveBatches(); n != 0 {
					t.Fatalf("%d pooled delivery blocks leaked on cancellation", n)
				}
			})
		}
	}
}
