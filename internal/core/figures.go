package core

import (
	"unprotected/internal/analysis"
	"unprotected/internal/extract"
)

// Exported figure accessors for programmatic consumers — the fleet
// monitor's JSON report and metrics endpoint chief among them. Each is
// the thin public face of the corresponding unexported accessor in
// report.go and inherits its contract: the stream-fed accumulators are
// preferred, the slice computations are the byte-identical fallback for
// hand-assembled studies, and calling one never mutates the Study (the
// underlying accumulators finalize non-destructively), so concurrent
// readers of one immutable snapshot need no coordination.

// Headline returns the §III-B headline numbers (raw volume, independent
// faults, monitored node-hours, MTBF cadences, flip polarity).
func (s *Study) Headline() analysis.Headline { return s.headline() }

// MultiBitStats returns the Table I aggregates (§III-C): multi-bit event
// counts by width, bit-gap shape, LSB concentration.
func (s *Study) MultiBitStats() analysis.MultiBitStats { return s.multiBitStats() }

// SimultaneityStats returns the Fig 4 aggregates (§III-C): faults
// co-occurring on one node and their bit-width mixture.
func (s *Study) SimultaneityStats() extract.SimultaneityStats { return s.simultaneityStats() }

// HourOfDayFigure returns the Figs 5-6 histograms (§III-E).
func (s *Study) HourOfDayFigure() *analysis.HourOfDay { return s.hourOfDay() }

// RegimesFigure returns the Fig 13 day classification (§III-I): normal
// versus degraded days with per-regime error counts and MTBF.
func (s *Study) RegimesFigure() *analysis.Regimes { return s.regimes() }
