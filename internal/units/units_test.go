package units

import (
	"math"
	"testing"
	"time"
)

func TestTBhOf(t *testing.T) {
	// 1 TiB held for 1 hour is exactly 1 TBh.
	got := TBhOf(TiB, time.Hour)
	if math.Abs(float64(got)-1) > 1e-12 {
		t.Fatalf("TBhOf(1TiB, 1h) = %v, want 1", got)
	}
	// 3 GiB for 2 hours.
	want := 3.0 / 1024 * 2
	got = TBhOf(3*GiB, 2*time.Hour)
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Fatalf("TBhOf(3GiB, 2h) = %v, want %v", got, want)
	}
	if got := TBhOf(0, time.Hour); got != 0 {
		t.Fatalf("TBhOf(0) = %v, want 0", got)
	}
}

func TestTBhAddAndString(t *testing.T) {
	a := TBh(1.5)
	if got := a.Add(2.25); math.Abs(float64(got)-3.75) > 1e-12 {
		t.Fatalf("Add = %v", got)
	}
	if s := TBh(12.345).String(); s != "12.35 TBh" {
		t.Fatalf("String = %q", s)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{3 * MiB, "3.00 MiB"},
		{3 * GiB, "3.00 GiB"},
		{2 * TiB, "2.00 TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestClampInt64(t *testing.T) {
	if got := ClampInt64(5, 0, 10); got != 5 {
		t.Fatalf("in range: %d", got)
	}
	if got := ClampInt64(-3, 0, 10); got != 0 {
		t.Fatalf("below: %d", got)
	}
	if got := ClampInt64(42, 0, 10); got != 10 {
		t.Fatalf("above: %d", got)
	}
}

func TestHoursOf(t *testing.T) {
	if got := HoursOf(90 * time.Minute); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("HoursOf = %v", got)
	}
}

func TestNodeHoursString(t *testing.T) {
	if s := NodeHours(4200000.04).String(); s != "4200000.0 node-hours" {
		t.Fatalf("String = %q", s)
	}
}
