// Package units provides byte-size and terabyte-hour quantities shared by
// the scanner, scheduler and analysis packages.
//
// The paper reports scanned memory in terabyte-hours (TBh): the integral of
// allocated bytes over scan time. Quantities here are plain float64/int64
// wrappers with explicit conversion helpers so call sites stay dimensionally
// honest without a units framework.
package units

import (
	"fmt"
	"time"
)

// Byte sizes, in bytes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// TBh is a quantity of memory-time: terabytes multiplied by hours.
// The paper's headline figure is 12,135 TBh scanned.
type TBh float64

// TBhOf returns the terabyte-hours accrued by holding size bytes for d.
func TBhOf(size int64, d time.Duration) TBh {
	return TBh(float64(size) / float64(TiB) * d.Hours())
}

// Add returns t + u.
func (t TBh) Add(u TBh) TBh { return t + u }

// String renders with the customary two decimals.
func (t TBh) String() string { return fmt.Sprintf("%.2f TBh", float64(t)) }

// FormatBytes renders a byte count using binary prefixes (e.g. "3.00 GiB").
func FormatBytes(n int64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.2f TiB", float64(n)/float64(TiB))
	case n >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// NodeHours is accumulated monitoring time across nodes, in hours.
// The study accumulated over 4.2 million node-hours.
type NodeHours float64

// String renders with thousands precision suitable for headlines.
func (h NodeHours) String() string { return fmt.Sprintf("%.1f node-hours", float64(h)) }

// HoursOf converts a duration to fractional hours.
func HoursOf(d time.Duration) float64 { return d.Hours() }

// ClampInt64 bounds v to [lo, hi].
func ClampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
