package pageretire

import (
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

var node = cluster.NodeID{Blade: 4, SoC: 5}

func mk(addr dram.Addr, at timebase.T) extract.Fault {
	return extract.Classify(extract.RawRun{
		Node: node, Addr: addr, FirstAt: at, LastAt: at, Logs: 1,
		Expected: 0xFFFFFFFF, Actual: 0xFFFFFFFE,
	})
}

func TestWeakBitRetired(t *testing.T) {
	// The same cell failing 20 times: after the threshold the page is
	// retired and the rest are prevented.
	var faults []extract.Fault
	for i := 0; i < 20; i++ {
		faults = append(faults, mk(0x1000, timebase.T(i*1000)))
	}
	res := Simulate(faults, Policy{Threshold: 3})
	if res.PagesRetired != 1 {
		t.Fatalf("pages retired %d", res.PagesRetired)
	}
	if res.Errors != 3 || res.Prevented != 17 {
		t.Fatalf("errors=%d prevented=%d", res.Errors, res.Prevented)
	}
	if res.PreventionRate() != 17.0/20 {
		t.Fatalf("rate %v", res.PreventionRate())
	}
}

func TestScatteredNotPrevented(t *testing.T) {
	// Faults on all-different pages: retirement never engages usefully.
	var faults []extract.Fault
	for i := 0; i < 20; i++ {
		faults = append(faults, mk(dram.Addr(i*dram.WordsPerPage*7), timebase.T(i*1000)))
	}
	res := Simulate(faults, Policy{Threshold: 3})
	if res.Prevented != 0 {
		t.Fatalf("scattered corruption prevented %d (should be 0)", res.Prevented)
	}
}

func TestBudgetCapsRetirement(t *testing.T) {
	var faults []extract.Fault
	// Two hot pages on one node, budget of one retirement.
	for i := 0; i < 10; i++ {
		faults = append(faults, mk(0x1000, timebase.T(i*1000)))
		faults = append(faults, mk(0x1000+dram.WordsPerPage*3, timebase.T(i*1000+5)))
	}
	res := Simulate(faults, Policy{Threshold: 2, Budget: 1})
	if res.PagesRetired != 1 {
		t.Fatalf("budget ignored: %d pages", res.PagesRetired)
	}
}

func TestByCauseSplit(t *testing.T) {
	var faults []extract.Fault
	// A weak bit (same address recurring)...
	for i := 0; i < 10; i++ {
		faults = append(faults, mk(0x2000, timebase.T(i*1000)))
	}
	// ...and scattered one-off addresses on the same page.
	for i := 0; i < 6; i++ {
		faults = append(faults, mk(0x2000+dram.Addr(i+1), timebase.T(100000+i*1000)))
	}
	weak, scattered := ByCause(faults, Policy{Threshold: 3})
	if weak == 0 {
		t.Fatal("weak-bit prevention not attributed")
	}
	if scattered == 0 {
		t.Fatal("scattered prevention not attributed")
	}
	if weak <= scattered {
		t.Fatalf("weak=%d should dominate scattered=%d here", weak, scattered)
	}
}

func TestZeroThresholdNeverRetires(t *testing.T) {
	faults := []extract.Fault{mk(1, 0), mk(1, 10), mk(1, 20)}
	res := Simulate(faults, Policy{})
	if res.PagesRetired != 0 || res.Prevented != 0 {
		t.Fatalf("zero threshold: %+v", res)
	}
}
