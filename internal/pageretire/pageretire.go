// Package pageretire evaluates the page-retirement strategy §IV discusses:
// after a physical page accumulates enough faults, the OS stops using it.
// The paper's verdict — useful against weak bits, ineffective against the
// multi-region simultaneous corruptions — is reproduced by replaying the
// fault stream against a retirement policy and counting what retirement
// would have prevented.
package pageretire

import (
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/extract"
)

// Policy retires a page after Threshold faults on it.
type Policy struct {
	Threshold int
	// Budget caps retired pages per node (OSes bound retirement cost);
	// zero means unlimited.
	Budget int
}

// Result summarizes a replay.
type Result struct {
	Policy        Policy
	Errors        int // faults that still hit live pages
	Prevented     int // faults on already-retired pages
	PagesRetired  int
	NodesRetiring int
}

// pageKey identifies a physical page on a node.
type pageKey struct {
	node cluster.NodeID
	page uint64
}

// Simulate replays time-ordered faults under the policy.
func Simulate(faults []extract.Fault, p Policy) Result {
	counts := make(map[pageKey]int)
	retired := make(map[pageKey]bool)
	perNode := make(map[cluster.NodeID]int)
	res := Result{Policy: p}
	for _, f := range faults {
		key := pageKey{f.Node, dram.PageOf(uint64(f.Node.Index()), f.Addr)}
		if retired[key] {
			res.Prevented++
			continue
		}
		res.Errors++
		counts[key]++
		if p.Threshold > 0 && counts[key] >= p.Threshold {
			if p.Budget > 0 && perNode[f.Node] >= p.Budget {
				continue
			}
			retired[key] = true
			perNode[f.Node]++
			res.PagesRetired++
		}
	}
	res.NodesRetiring = len(perNode)
	return res
}

// PreventionRate returns the fraction of faults retirement absorbed.
func (r Result) PreventionRate() float64 {
	total := r.Errors + r.Prevented
	if total == 0 {
		return 0
	}
	return float64(r.Prevented) / float64(total)
}

// ByCause splits prevention by single-address recurrence: the weak-bit
// share (same page repeatedly) versus scattered corruption. It quantifies
// the paper's claim that retirement helps weak bits but cannot address
// multi-region events.
func ByCause(faults []extract.Fault, p Policy) (weakBitPrevented, scatteredPrevented int) {
	// A fault is "weak-bit-like" when its exact address recurs; scattered
	// otherwise.
	addrSeen := make(map[pageKey]map[dram.Addr]int)
	counts := make(map[pageKey]int)
	retired := make(map[pageKey]bool)
	for _, f := range faults {
		key := pageKey{f.Node, dram.PageOf(uint64(f.Node.Index()), f.Addr)}
		if retired[key] {
			if addrSeen[key][f.Addr] > 1 {
				weakBitPrevented++
			} else {
				scatteredPrevented++
			}
		}
		if addrSeen[key] == nil {
			addrSeen[key] = make(map[dram.Addr]int)
		}
		addrSeen[key][f.Addr]++
		counts[key]++
		if p.Threshold > 0 && counts[key] >= p.Threshold {
			retired[key] = true
		}
	}
	return weakBitPrevented, scatteredPrevented
}
