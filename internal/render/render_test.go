package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeatCell(t *testing.T) {
	if HeatCell(0, 10) != ' ' {
		t.Fatal("zero must be blank")
	}
	if HeatCell(10, 10) != '@' {
		t.Fatal("max must be brightest")
	}
	if HeatCell(0.01, 10) == ' ' {
		t.Fatal("tiny non-zero must be visible")
	}
	if HeatCellLog(0, 100) != ' ' || HeatCellLog(100, 100) != '@' {
		t.Fatal("log cell extremes")
	}
	// Log scale compresses: mid value renders brighter (further along the
	// ramp) than linear. Compare ramp positions, not code points.
	ramp := " .:-=+*#%@"
	logIdx := strings.IndexRune(ramp, HeatCellLog(10, 1000))
	linIdx := strings.IndexRune(ramp, HeatCell(10, 1000))
	if logIdx <= linIdx {
		t.Fatalf("log scale should brighten small values: log=%d lin=%d", logIdx, linIdx)
	}
}

func TestGridRender(t *testing.T) {
	g := &Grid{
		Title:     "test grid",
		RowLabels: []string{"r1", "r2"},
		ColLabels: []string{"1", "2", "3"},
		Values:    [][]float64{{0, 1, 2}, {3, 4, 5}},
	}
	if g.Max() != 5 {
		t.Fatalf("max %v", g.Max())
	}
	var buf bytes.Buffer
	g.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "test grid") || !strings.Contains(out, "r1") {
		t.Fatalf("render output: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 { // title + header + 2 rows
		t.Fatalf("unexpected line count: %q", out)
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:   "chart",
		XLabels: []string{"a", "b"},
		Series:  []Series{{Label: "s1", Values: []float64{1, 10}}},
		Width:   20,
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "chart") || !strings.Contains(out, "s1") {
		t.Fatal("chart missing labels")
	}
	// The larger bar must be longer.
	lines := strings.Split(out, "\n")
	var aBar, bBar int
	for _, l := range lines {
		if strings.Contains(l, "a |") {
			aBar = strings.Count(l, "█")
		}
		if strings.Contains(l, "b |") {
			bBar = strings.Count(l, "█")
		}
	}
	if bBar <= aBar {
		t.Fatalf("bars not proportional: a=%d b=%d", aBar, bBar)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"col1", "c2"}}
	tbl.AddRow("a", "bb")
	tbl.AddRow("longvalue", "x")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T", "col1", "longvalue", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{
		{"plain", `has "quotes", and comma`},
		{"multi\nline", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has ""quotes"", and comma"`) {
		t.Fatalf("quoting: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header: %q", out)
	}
}

func TestStrip(t *testing.T) {
	days := make([]bool, 65)
	days[0] = true
	days[64] = true
	var buf bytes.Buffer
	Strip(&buf, "regimes", days, 'X', '.')
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + 3 strips of 30/30/5
		t.Fatalf("strip lines: %d", len(lines))
	}
	if !strings.Contains(lines[1], "X") || !strings.Contains(lines[3], "X") {
		t.Fatalf("markers missing: %q", out)
	}
}

func TestTableRightAlign(t *testing.T) {
	tbl := &Table{
		Headers:    []string{"name", "count"},
		RightAlign: []bool{false, true},
	}
	tbl.AddRow("a", "7")
	tbl.AddRow("bb", "12345")
	var buf bytes.Buffer
	tbl.Render(&buf)
	want := "name  count  \n" +
		"----  -----  \n" +
		"a         7  \n" +
		"bb    12345  \n"
	if buf.String() != want {
		t.Fatalf("right-aligned table:\n%q\nwant:\n%q", buf.String(), want)
	}

	// A short or missing RightAlign keeps the historic all-left layout.
	left := &Table{Headers: []string{"name", "count"}}
	left.AddRow("a", "7")
	var lb bytes.Buffer
	left.Render(&lb)
	if !strings.Contains(lb.String(), "a     7      \n") {
		t.Fatalf("left-aligned default changed:\n%q", lb.String())
	}
}
