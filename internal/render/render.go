// Package render turns analysis results into terminal artifacts: node heat
// maps (the paper's Figs 1–3), bar and line charts (Figs 4–12), regime
// strips (Fig 13), aligned tables (Tables I–II) and CSV for external
// plotting.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// heatRamp maps a normalized [0,1] value to a character, dark to bright.
var heatRamp = []rune(" .:-=+*#%@")

// HeatCell renders v normalized against max using the ramp; zero values
// render as blank ("white" in the paper's maps).
func HeatCell(v, max float64) rune {
	if v <= 0 || max <= 0 {
		return ' '
	}
	idx := int(v / max * float64(len(heatRamp)-1))
	if idx < 1 {
		idx = 1
	}
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	return heatRamp[idx]
}

// HeatCellLog renders with a log scale (Fig 3 uses one because node error
// counts span orders of magnitude).
func HeatCellLog(v, max float64) rune {
	if v <= 0 || max <= 0 {
		return ' '
	}
	return HeatCell(math.Log1p(v), math.Log1p(max))
}

// Grid is a labeled 2-D field (rows = blades, cols = SoC positions).
type Grid struct {
	Title     string
	RowLabels []string
	ColLabels []string
	Values    [][]float64 // [row][col]
	Log       bool
}

// Max returns the largest value in the grid.
func (g *Grid) Max() float64 {
	max := 0.0
	for _, row := range g.Values {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Render writes the heat map.
func (g *Grid) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (max=%.6g)\n", g.Title, g.Max())
	max := g.Max()
	cell := HeatCell
	if g.Log {
		cell = HeatCellLog
	}
	// Column header.
	fmt.Fprintf(w, "%8s ", "")
	for _, c := range g.ColLabels {
		fmt.Fprintf(w, "%2s", lastN(c, 2))
	}
	fmt.Fprintln(w)
	for i, row := range g.Values {
		fmt.Fprintf(w, "%8s ", g.RowLabels[i])
		for _, v := range row {
			fmt.Fprintf(w, " %c", cell(v, max))
		}
		fmt.Fprintln(w)
	}
}

func lastN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// Series is a labeled sequence for bar/line charts.
type Series struct {
	Label  string
	Values []float64
}

// BarChart renders horizontal bars for one or more series sharing X
// labels (e.g. hour of day, bit-count class).
type BarChart struct {
	Title   string
	XLabels []string
	Series  []Series
	Width   int // bar width in characters; default 50
	LogY    bool
}

// Render writes the chart, one block per series.
func (b *BarChart) Render(w io.Writer) {
	width := b.Width
	if width <= 0 {
		width = 50
	}
	fmt.Fprintln(w, b.Title)
	for _, s := range b.Series {
		max := 0.0
		for _, v := range s.Values {
			m := v
			if b.LogY {
				m = math.Log1p(v)
			}
			if m > max {
				max = m
			}
		}
		fmt.Fprintf(w, "-- %s\n", s.Label)
		for i, v := range s.Values {
			lbl := ""
			if i < len(b.XLabels) {
				lbl = b.XLabels[i]
			}
			m := v
			if b.LogY {
				m = math.Log1p(v)
			}
			n := 0
			if max > 0 {
				n = int(m / max * float64(width))
			}
			fmt.Fprintf(w, "%10s |%s %.6g\n", lbl, strings.Repeat("█", n), v)
		}
	}
}

// Table renders aligned rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// RightAlign marks columns to align right (numeric columns in
	// comparison tables); missing or short means all-left, the historic
	// behaviour.
	RightAlign []bool
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with column alignment.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			if i < len(t.RightAlign) && t.RightAlign[i] {
				fmt.Fprintf(w, "%*s  ", widths[i], c)
			} else {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes rows as comma-separated values with minimal quoting.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// Strip renders a boolean-per-day strip (Fig 13's normal/degraded view),
// 30 days per line.
func Strip(w io.Writer, title string, days []bool, onGlyph, offGlyph rune) {
	fmt.Fprintln(w, title)
	for i := 0; i < len(days); i += 30 {
		end := i + 30
		if end > len(days) {
			end = len(days)
		}
		var sb strings.Builder
		for _, d := range days[i:end] {
			if d {
				sb.WriteRune(onGlyph)
			} else {
				sb.WriteRune(offGlyph)
			}
		}
		fmt.Fprintf(w, "day %3d-%3d %s\n", i, end-1, sb.String())
	}
}
