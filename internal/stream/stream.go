// Package stream defines the unified campaign event stream: the single
// shape every dataset source in this module produces and every consumer
// reads. A Source — the campaign simulator, the log-replay loader, or any
// external implementation — yields one merged, canonically ordered
// sequence of faults and sessions as a Go 1.23 range-over-func iterator;
// an Observer is a pluggable one-pass accumulator fed from that sequence.
//
// The contract (DESIGN.md §7):
//
//   - A stream is a stats prologue (KindStats, exactly once, carrying the
//     scalar aggregates so collecting consumers can preallocate), followed
//     by every fault in the canonical extract.Compare order
//     (time, node, address, ...), followed by every session in
//     eventlog.CompareSessions order (start time, host).
//   - The iterator is driven by the consumer's goroutine. Breaking out of
//     the range, or cancelling the context passed to Events, stops the
//     producers: built-in sources wind their worker pools down before the
//     iterator returns control, so an abandoned stream leaks nothing.
//   - On cancellation the iterator yields a final (zero Event, ctx.Err())
//     pair. Any other delivery is (event, nil) or, for source failures
//     such as an unreadable log file, (zero Event, err) — after an error
//     the iterator yields nothing further.
//   - Delivery is allocation-free per event: Event is a value, and the
//     built-in sources' merge layer performs no per-element allocation.
package stream

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/kway"
)

// Kind discriminates the variants of the Event sum type.
type Kind uint8

const (
	// KindStats is the stream prologue: Event.Stats carries the scalar
	// aggregates, known before the first fault is delivered.
	KindStats Kind = iota + 1
	// KindFault delivers Event.Fault, in extract.Compare order.
	KindFault
	// KindSession delivers Event.Session, in eventlog.CompareSessions
	// order, after every fault.
	KindSession
	// KindRecord delivers Event.Record: one raw eventlog line, before
	// extraction. Only follow-mode (tail) streams produce it — a live log
	// has no canonical global order yet, so records arrive in per-node
	// arrival order and the consumer owns the §II-C collapse. Batch
	// (Deliver-shaped) streams never emit it.
	KindRecord
	// KindSync is a follow-mode poll-round boundary: every file the
	// tailer watches has been drained to its last complete line. It
	// carries no payload; consumers use it as the safe point to publish
	// a snapshot, because between two KindSyncs the stream may stop
	// mid-file. Batch streams never emit it.
	KindSync
	// KindReset invalidates a node's history: the file backing
	// Event.Record.Host was truncated, rotated or removed, so every
	// KindRecord previously delivered for that node no longer reflects
	// what is on disk. Consumers must discard the node's accumulated
	// state; whatever the file now holds is re-delivered as fresh
	// records. Only Event.Record.Host is meaningful. Batch streams never
	// emit it.
	KindReset
)

// Event is one element of the merged campaign stream: a tagged union of
// the stats prologue, a fault, and a session. Exactly the field named by
// Kind is meaningful; the others are zero.
type Event struct {
	Kind Kind
	// Fault is valid for KindFault events.
	Fault extract.Fault
	// Session is valid for KindSession events.
	Session eventlog.Session
	// Record is valid for KindRecord events (follow-mode streams only).
	Record eventlog.Record
	// Stats is valid for the single KindStats event. The pointed-to value
	// (including its RawLogsByNode map) is owned by the consumer once
	// yielded; sources do not retain or mutate it afterwards.
	Stats *Stats
}

// Stats are the scalar aggregates of a stream, delivered as its prologue.
type Stats struct {
	// Faults and Sessions count the full dataset behind the stream. For a
	// complete Events stream (the Source contract) they are exactly the
	// deliveries that follow the prologue, so a collecting consumer can
	// preallocate; an explicitly filtered stream (campaign.EventsFiltered)
	// omits one half's deliveries but still reports its true count.
	Faults   int
	Sessions int
	// RawLogs counts every ERROR record behind the stream (each fault is a
	// collapsed run of many raw records).
	RawLogs int64
	// RawLogsByNode splits the raw volume per node (nodes with zero raw
	// logs have no entry).
	RawLogsByNode map[cluster.NodeID]int64
	// AllocFails counts scanner sessions that could not allocate any
	// memory. Always zero for replayed log directories, which never wrote
	// a record for such sessions.
	AllocFails int
}

// StatsEvent wraps the stream prologue.
func StatsEvent(st *Stats) Event { return Event{Kind: KindStats, Stats: st} }

// FaultEvent wraps one fault delivery.
func FaultEvent(f extract.Fault) Event { return Event{Kind: KindFault, Fault: f} }

// SessionEvent wraps one session delivery.
func SessionEvent(s eventlog.Session) Event { return Event{Kind: KindSession, Session: s} }

// ResetEvent marks node's previously delivered records invalid
// (follow-mode streams; see KindReset).
func ResetEvent(node cluster.NodeID) Event {
	return Event{Kind: KindReset, Record: eventlog.Record{Host: node}}
}

// RecordEvent wraps one raw eventlog record (follow-mode streams).
func RecordEvent(r eventlog.Record) Event { return Event{Kind: KindRecord, Record: r} }

// SyncEvent marks a follow-mode poll-round boundary.
func SyncEvent() Event { return Event{Kind: KindSync} }

// batchSize is the internal delivery granularity: the k-way merges fill
// []Event blocks of this many elements before the per-event yield loop
// walks them. Large enough to amortize block handling, small enough that
// one pooled block stays cache-resident (512 events ≈ 100 KiB now that
// Event also carries the follow-mode Record variant).
const batchSize = 512

// batchPool recycles the []Event delivery blocks across Deliver calls —
// one campaign, a replayed directory and every scenario of a sweep all
// draw from the same pool, so steady-state block delivery allocates
// nothing no matter how many sources run.
var batchPool = sync.Pool{New: func() any {
	b := make([]Event, batchSize)
	return &b
}}

// liveBatches counts pool blocks currently checked out. It exists for the
// leak gates: every Deliver return path — drained, consumer break,
// cancellation mid-batch — must put its block back, and the tests pin
// LiveBatches to zero after each of them.
var liveBatches atomic.Int64

func getBatch() *[]Event {
	liveBatches.Add(1)
	return batchPool.Get().(*[]Event)
}

func putBatch(b *[]Event) {
	batchPool.Put(b)
	liveBatches.Add(-1)
}

// LiveBatches reports how many pooled delivery blocks are checked out
// right now; zero whenever no Deliver is in flight. Test instrumentation
// for the pool-ownership contract (DESIGN.md §9).
func LiveBatches() int64 { return liveBatches.Load() }

// Deliver emits the standard stream shape — stats prologue, merged
// faults, merged sessions — from per-source sorted slices, so every
// built-in Source encodes the contract (ordering, per-delivery
// cancellation check, yield-false handling) exactly once.
//
// Internally delivery is batched: the k-way merges move pooled []Event
// blocks (kway.MergeBlocks) and the yield loop walks each block
// element-wise. The observable sequence is the unbatched one — block
// boundaries are invisible to consumers, every delivery still gets its
// own cancellation check, and deliverUnbatched remains in-tree as the
// executable reference the differential and fuzz gates compare against.
// Cancellation between deliveries yields a final (zero Event, ctx.Err())
// pair; a false yield stops everything immediately. Either way the block
// returns to the pool before Deliver does.
func Deliver(ctx context.Context, yield func(Event, error) bool,
	st *Stats, faultStreams [][]extract.Fault, sessionStreams [][]eventlog.Session) {
	bp := getBatch()
	defer putBatch(bp)
	deliverBatched(ctx, yield, st, faultStreams, sessionStreams, *bp)
}

// deliverBatched is Deliver over an explicit block buffer; the fuzz gate
// drives it with adversarial block sizes.
func deliverBatched(ctx context.Context, yield func(Event, error) bool,
	st *Stats, faultStreams [][]extract.Fault, sessionStreams [][]eventlog.Session, buf []Event) {
	if !yield(StatsEvent(st), nil) {
		return
	}
	emit := func(block []Event) bool { return yieldBlock(ctx, yield, block) }
	if !kway.MergeBlocks(faultStreams, extract.Compare, buf, FaultEvent, emit) {
		return
	}
	kway.MergeBlocks(sessionStreams, eventlog.CompareSessions, buf, SessionEvent, emit)
}

// yieldBlock hands one merged block to the consumer element-wise,
// preserving the per-delivery contract: a cancellation check before every
// event (a mid-batch cancel delivers nothing further from the block) and
// immediate stop on a false yield.
func yieldBlock(ctx context.Context, yield func(Event, error) bool, block []Event) bool {
	done := ctx.Done()
	for _, ev := range block {
		select {
		case <-done:
			yield(Event{}, ctx.Err())
			return false
		default:
		}
		if !yield(ev, nil) {
			return false
		}
	}
	return true
}

// deliverUnbatched is the reference delivery implementation: the merges
// yield element-wise with no block layer in between. It encodes the
// observable contract Deliver must match exactly — the differential
// harness (internal/core) and FuzzEventBatchRoundTrip diff batched
// delivery against it — and is not used on any production path.
func deliverUnbatched(ctx context.Context, yield func(Event, error) bool,
	st *Stats, faultStreams [][]extract.Fault, sessionStreams [][]eventlog.Session) {
	if !yield(StatsEvent(st), nil) {
		return
	}
	done := ctx.Done()
	for f := range kway.MergeSeq(faultStreams, extract.Compare) {
		select {
		case <-done:
			yield(Event{}, ctx.Err())
			return
		default:
		}
		if !yield(FaultEvent(f), nil) {
			return
		}
	}
	for s := range kway.MergeSeq(sessionStreams, eventlog.CompareSessions) {
		select {
		case <-done:
			yield(Event{}, ctx.Err())
			return
		default:
		}
		if !yield(SessionEvent(s), nil) {
			return
		}
	}
}

// Source yields the merged campaign stream. The built-in implementations
// are the campaign simulator and the log-replay loader; external packages
// may implement Source to feed their own datasets through the same
// one-pass analysis machinery.
type Source interface {
	// Events returns the stream as a single-use iterator honouring the
	// package contract above. Each call restarts the source from scratch;
	// ctx cancellation and early break both stop the producers leak-free.
	Events(ctx context.Context) iter.Seq2[Event, error]
}

// Observer is a pluggable one-pass accumulator over the stream. Faults
// arrive in the canonical extract.Compare order and sessions in
// eventlog.CompareSessions order — the orders the internal figure
// accumulators rely on — and Finish is called exactly once, after the
// final delivery, so an observer can seal derived state or report that
// the stream it saw was unusable.
type Observer interface {
	ObserveFault(extract.Fault)
	ObserveSession(eventlog.Session)
	Finish() error
}

// FuncObserver adapts free functions to the Observer interface; any nil
// field is skipped. The zero value is a valid no-op observer.
type FuncObserver struct {
	Fault   func(extract.Fault)
	Session func(eventlog.Session)
	Done    func() error
}

// ObserveFault implements Observer.
func (o FuncObserver) ObserveFault(f extract.Fault) {
	if o.Fault != nil {
		o.Fault(f)
	}
}

// ObserveSession implements Observer.
func (o FuncObserver) ObserveSession(s eventlog.Session) {
	if o.Session != nil {
		o.Session(s)
	}
}

// Finish implements Observer.
func (o FuncObserver) Finish() error {
	if o.Done != nil {
		return o.Done()
	}
	return nil
}
