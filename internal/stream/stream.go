// Package stream defines the unified campaign event stream: the single
// shape every dataset source in this module produces and every consumer
// reads. A Source — the campaign simulator, the log-replay loader, or any
// external implementation — yields one merged, canonically ordered
// sequence of faults and sessions as a Go 1.23 range-over-func iterator;
// an Observer is a pluggable one-pass accumulator fed from that sequence.
//
// The contract (DESIGN.md §7):
//
//   - A stream is a stats prologue (KindStats, exactly once, carrying the
//     scalar aggregates so collecting consumers can preallocate), followed
//     by every fault in the canonical extract.Compare order
//     (time, node, address, ...), followed by every session in
//     eventlog.CompareSessions order (start time, host).
//   - The iterator is driven by the consumer's goroutine. Breaking out of
//     the range, or cancelling the context passed to Events, stops the
//     producers: built-in sources wind their worker pools down before the
//     iterator returns control, so an abandoned stream leaks nothing.
//   - On cancellation the iterator yields a final (zero Event, ctx.Err())
//     pair. Any other delivery is (event, nil) or, for source failures
//     such as an unreadable log file, (zero Event, err) — after an error
//     the iterator yields nothing further.
//   - Delivery is allocation-free per event: Event is a value, and the
//     built-in sources' merge layer performs no per-element allocation.
package stream

import (
	"context"
	"iter"

	"unprotected/internal/cluster"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/kway"
)

// Kind discriminates the variants of the Event sum type.
type Kind uint8

const (
	// KindStats is the stream prologue: Event.Stats carries the scalar
	// aggregates, known before the first fault is delivered.
	KindStats Kind = iota + 1
	// KindFault delivers Event.Fault, in extract.Compare order.
	KindFault
	// KindSession delivers Event.Session, in eventlog.CompareSessions
	// order, after every fault.
	KindSession
)

// Event is one element of the merged campaign stream: a tagged union of
// the stats prologue, a fault, and a session. Exactly the field named by
// Kind is meaningful; the others are zero.
type Event struct {
	Kind Kind
	// Fault is valid for KindFault events.
	Fault extract.Fault
	// Session is valid for KindSession events.
	Session eventlog.Session
	// Stats is valid for the single KindStats event. The pointed-to value
	// (including its RawLogsByNode map) is owned by the consumer once
	// yielded; sources do not retain or mutate it afterwards.
	Stats *Stats
}

// Stats are the scalar aggregates of a stream, delivered as its prologue.
type Stats struct {
	// Faults and Sessions count the full dataset behind the stream. For a
	// complete Events stream (the Source contract) they are exactly the
	// deliveries that follow the prologue, so a collecting consumer can
	// preallocate; an explicitly filtered stream (campaign.EventsFiltered)
	// omits one half's deliveries but still reports its true count.
	Faults   int
	Sessions int
	// RawLogs counts every ERROR record behind the stream (each fault is a
	// collapsed run of many raw records).
	RawLogs int64
	// RawLogsByNode splits the raw volume per node (nodes with zero raw
	// logs have no entry).
	RawLogsByNode map[cluster.NodeID]int64
	// AllocFails counts scanner sessions that could not allocate any
	// memory. Always zero for replayed log directories, which never wrote
	// a record for such sessions.
	AllocFails int
}

// StatsEvent wraps the stream prologue.
func StatsEvent(st *Stats) Event { return Event{Kind: KindStats, Stats: st} }

// FaultEvent wraps one fault delivery.
func FaultEvent(f extract.Fault) Event { return Event{Kind: KindFault, Fault: f} }

// SessionEvent wraps one session delivery.
func SessionEvent(s eventlog.Session) Event { return Event{Kind: KindSession, Session: s} }

// Deliver emits the standard stream shape — stats prologue, merged
// faults, merged sessions — from per-source sorted slices, so every
// built-in Source encodes the contract (ordering, per-delivery
// cancellation check, yield-false handling) exactly once. The merges run
// through kway.MergeSeq, which keeps delivery allocation-free per event.
// Cancellation between deliveries yields a final (zero Event, ctx.Err())
// pair; a false yield stops everything immediately.
func Deliver(ctx context.Context, yield func(Event, error) bool,
	st *Stats, faultStreams [][]extract.Fault, sessionStreams [][]eventlog.Session) {
	if !yield(StatsEvent(st), nil) {
		return
	}
	done := ctx.Done()
	for f := range kway.MergeSeq(faultStreams, extract.Compare) {
		select {
		case <-done:
			yield(Event{}, ctx.Err())
			return
		default:
		}
		if !yield(FaultEvent(f), nil) {
			return
		}
	}
	for s := range kway.MergeSeq(sessionStreams, eventlog.CompareSessions) {
		select {
		case <-done:
			yield(Event{}, ctx.Err())
			return
		default:
		}
		if !yield(SessionEvent(s), nil) {
			return
		}
	}
}

// Source yields the merged campaign stream. The built-in implementations
// are the campaign simulator and the log-replay loader; external packages
// may implement Source to feed their own datasets through the same
// one-pass analysis machinery.
type Source interface {
	// Events returns the stream as a single-use iterator honouring the
	// package contract above. Each call restarts the source from scratch;
	// ctx cancellation and early break both stop the producers leak-free.
	Events(ctx context.Context) iter.Seq2[Event, error]
}

// Observer is a pluggable one-pass accumulator over the stream. Faults
// arrive in the canonical extract.Compare order and sessions in
// eventlog.CompareSessions order — the orders the internal figure
// accumulators rely on — and Finish is called exactly once, after the
// final delivery, so an observer can seal derived state or report that
// the stream it saw was unusable.
type Observer interface {
	ObserveFault(extract.Fault)
	ObserveSession(eventlog.Session)
	Finish() error
}

// FuncObserver adapts free functions to the Observer interface; any nil
// field is skipped. The zero value is a valid no-op observer.
type FuncObserver struct {
	Fault   func(extract.Fault)
	Session func(eventlog.Session)
	Done    func() error
}

// ObserveFault implements Observer.
func (o FuncObserver) ObserveFault(f extract.Fault) {
	if o.Fault != nil {
		o.Fault(f)
	}
}

// ObserveSession implements Observer.
func (o FuncObserver) ObserveSession(s eventlog.Session) {
	if o.Session != nil {
		o.Session(s)
	}
}

// Finish implements Observer.
func (o FuncObserver) Finish() error {
	if o.Done != nil {
		return o.Done()
	}
	return nil
}
