package stream

import (
	"context"
	"testing"
)

// FuzzEventBatchRoundTrip drives the batched delivery path with
// adversarial shapes — stream counts, per-stream lengths, block sizes and
// a cancellation point — and checks it against the element-wise reference:
// the flattened batched sequence must equal the unbatched one event for
// event, cancellation must cut both at the same delivery, and nothing may
// panic or leak a pooled block.
func FuzzEventBatchRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint16(50), uint16(7), uint32(0))
	f.Add(uint64(2), uint8(1), uint16(1), uint16(1), uint32(0))
	f.Add(uint64(3), uint8(8), uint16(600), uint16(512), uint32(0))
	f.Add(uint64(4), uint8(0), uint16(0), uint16(9), uint32(0))
	f.Add(uint64(5), uint8(4), uint16(512), uint16(511), uint32(100))
	f.Add(uint64(6), uint8(2), uint16(300), uint16(513), uint32(1))

	f.Fuzz(func(t *testing.T, seed uint64, streams uint8, perStream, block uint16, cancelAfter uint32) {
		nStreams := int(streams % 10)
		n := int(perStream % 1500)
		blockLen := int(block%2048) + 1
		faults := synthFaultStreams(seed, nStreams, n)
		sessions := synthSessionStreams(seed^0xabcdef, nStreams, n)
		st := &Stats{Faults: nStreams * n, Sessions: nStreams * n}

		if cancelAfter == 0 {
			// Uncancelled round trip: exact sequence equality.
			want := record(func(y func(Event, error) bool) {
				deliverUnbatched(context.Background(), y, st, faults, sessions)
			})
			buf := make([]Event, blockLen)
			got := record(func(y func(Event, error) bool) {
				deliverBatched(context.Background(), y, st, faults, sessions, buf)
			})
			assertSameDeliveries(t, want, got)
			return
		}

		// Cancellation at an arbitrary delivery: both paths must agree on
		// the prefix and end with the (zero, ctx.Err()) pair.
		after := int(cancelAfter % uint32(1+2*nStreams*n))
		run := func(deliver func(context.Context, func(Event, error) bool)) []delivery {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var got []delivery
			deliver(ctx, func(ev Event, err error) bool {
				got = append(got, delivery{ev, err})
				if len(got) == after+1 {
					cancel()
				}
				return true
			})
			return got
		}
		buf := make([]Event, blockLen)
		want := run(func(ctx context.Context, y func(Event, error) bool) {
			deliverUnbatched(ctx, y, st, faults, sessions)
		})
		got := run(func(ctx context.Context, y func(Event, error) bool) {
			deliverBatched(ctx, y, st, faults, sessions, buf)
		})
		assertSameDeliveries(t, want, got)
		if live := LiveBatches(); live != 0 {
			t.Fatalf("%d pooled batches leaked", live)
		}
	})
}
