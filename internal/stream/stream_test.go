package stream

import (
	"context"
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/timebase"
)

// --- deterministic stream synthesis ---
// A tiny LCG keyed by an explicit seed keeps every synthesized dataset
// reproducible; streams are sorted per-stream (the Deliver precondition)
// and deliberately share keys across streams to exercise the merge's
// stream-index tiebreak.

type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 11
}

func synthFaultStreams(seed uint64, streams, perStream int) [][]extract.Fault {
	r := lcg(seed + 1)
	out := make([][]extract.Fault, streams)
	for s := range out {
		fs := make([]extract.Fault, perStream)
		for i := range fs {
			run := extract.RawRun{
				Node:     cluster.NodeID{Blade: int(r.next()%40) + 1, SoC: int(r.next()%12) + 1},
				Addr:     dram.Addr(r.next() % 1024), // small space → frequent ties
				FirstAt:  timebase.T(r.next() % 512),
				Logs:     int(r.next()%9) + 1,
				Expected: uint32(r.next()),
				Actual:   uint32(r.next()),
			}
			run.LastAt = run.FirstAt + timebase.T(r.next()%64)
			fs[i] = extract.Classify(run)
		}
		extract.SortFaults(fs)
		out[s] = fs
	}
	return out
}

func synthSessionStreams(seed uint64, streams, perStream int) [][]eventlog.Session {
	r := lcg(seed + 2)
	out := make([][]eventlog.Session, streams)
	for s := range out {
		ss := make([]eventlog.Session, perStream)
		for i := range ss {
			from := timebase.T(r.next() % 512)
			ss[i] = eventlog.Session{
				Host:       cluster.NodeID{Blade: int(r.next()%40) + 1, SoC: int(r.next()%12) + 1},
				From:       from,
				To:         from + timebase.T(r.next()%3600),
				AllocBytes: int64(r.next() % (3 << 30)),
				Truncated:  r.next()%8 == 0,
			}
		}
		sortSessions(ss)
		out[s] = ss
	}
	return out
}

func sortSessions(ss []eventlog.Session) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && eventlog.CompareSessions(&ss[j-1], &ss[j]) > 0; j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
}

// delivery is one recorded yield.
type delivery struct {
	ev  Event
	err error
}

func record(deliver func(yield func(Event, error) bool)) []delivery {
	var got []delivery
	deliver(func(ev Event, err error) bool {
		got = append(got, delivery{ev, err})
		return true
	})
	return got
}

func assertSameDeliveries(t *testing.T, want, got []delivery) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("delivery counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if (w.err == nil) != (g.err == nil) {
			t.Fatalf("delivery %d: error %v vs %v", i, w.err, g.err)
		}
		if w.ev.Kind != g.ev.Kind {
			t.Fatalf("delivery %d: kind %v vs %v", i, w.ev.Kind, g.ev.Kind)
		}
		switch w.ev.Kind {
		case KindFault:
			if w.ev.Fault != g.ev.Fault {
				t.Fatalf("delivery %d: fault %+v vs %+v", i, w.ev.Fault, g.ev.Fault)
			}
		case KindSession:
			if w.ev.Session != g.ev.Session {
				t.Fatalf("delivery %d: session %+v vs %+v", i, w.ev.Session, g.ev.Session)
			}
		}
	}
}

// TestDeliverMatchesUnbatched: the tentpole equivalence — batched Deliver
// produces the exact delivery sequence of the element-wise reference,
// across stream shapes from empty to heavily tied.
func TestDeliverMatchesUnbatched(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name               string
		streams, perStream int
	}{
		{"empty", 0, 0},
		{"one-element", 1, 1},
		{"single-stream", 1, 300},
		{"many-small", 16, 7},
		{"block-boundary", 2, batchSize},   // fault merge ends exactly on a block
		{"multi-block", 4, batchSize + 37}, // several full blocks + partial
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := &Stats{Faults: tc.streams * tc.perStream, Sessions: tc.streams * tc.perStream}
			faults := synthFaultStreams(77, tc.streams, tc.perStream)
			sessions := synthSessionStreams(99, tc.streams, tc.perStream)
			want := record(func(y func(Event, error) bool) { deliverUnbatched(ctx, y, st, faults, sessions) })
			got := record(func(y func(Event, error) bool) { Deliver(ctx, y, st, faults, sessions) })
			assertSameDeliveries(t, want, got)
			if n := LiveBatches(); n != 0 {
				t.Fatalf("%d pooled batches leaked", n)
			}
		})
	}
}

// TestDeliverBlockSizes: block boundaries must be invisible for any block
// size, including the degenerate size 1 and sizes straddling the stream
// lengths.
func TestDeliverBlockSizes(t *testing.T) {
	ctx := context.Background()
	st := &Stats{}
	faults := synthFaultStreams(5, 3, 101)
	sessions := synthSessionStreams(6, 3, 101)
	want := record(func(y func(Event, error) bool) { deliverUnbatched(ctx, y, st, faults, sessions) })
	for _, size := range []int{1, 2, 3, 100, 101, 302, 303, 304, 1024} {
		buf := make([]Event, size)
		got := record(func(y func(Event, error) bool) { deliverBatched(ctx, y, st, faults, sessions, buf) })
		assertSameDeliveries(t, want, got)
	}
}

// TestDeliverEmptyBlockPanics: a zero-length block buffer is a programming
// error, not a silent stall.
func TestDeliverEmptyBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty block buffer")
		}
	}()
	deliverBatched(context.Background(), func(Event, error) bool { return true },
		&Stats{}, synthFaultStreams(1, 1, 4), nil, nil)
}

// TestDeliverConsumerBreak: a false yield mid-block stops everything and
// still returns the pooled block.
func TestDeliverConsumerBreak(t *testing.T) {
	st := &Stats{}
	faults := synthFaultStreams(8, 4, 200)
	sessions := synthSessionStreams(9, 4, 200)
	for _, stop := range []int{0, 1, 50, batchSize, batchSize + 1, 799} {
		n := 0
		Deliver(context.Background(), func(ev Event, err error) bool {
			n++
			return n <= stop
		}, st, faults, sessions)
		if n != stop+1 {
			t.Fatalf("stop=%d: %d deliveries after a false yield", stop, n)
		}
		if live := LiveBatches(); live != 0 {
			t.Fatalf("stop=%d: %d pooled batches leaked", stop, live)
		}
	}
}

// TestDeliverCancelMidBatch: cancelling while a block is being walked must
// deliver nothing further from that block — the consumer sees exactly the
// pre-cancel prefix, one final (zero, ctx.Err()) pair, and the block goes
// back to the pool.
func TestDeliverCancelMidBatch(t *testing.T) {
	st := &Stats{}
	faults := synthFaultStreams(3, 4, 300)
	sessions := synthSessionStreams(4, 4, 300)
	full := record(func(y func(Event, error) bool) {
		Deliver(context.Background(), y, st, faults, sessions)
	})

	for _, after := range []int{1, 17, batchSize - 1, batchSize, batchSize + 5} {
		ctx, cancel := context.WithCancel(context.Background())
		var got []delivery
		Deliver(ctx, func(ev Event, err error) bool {
			got = append(got, delivery{ev, err})
			if len(got) == after {
				cancel() // mid-batch: the block walk sees done on its next event
			}
			return true
		}, st, faults, sessions)
		cancel()

		if len(got) != after+1 {
			t.Fatalf("after=%d: %d deliveries, want prefix plus the error pair", after, len(got))
		}
		last := got[len(got)-1]
		if last.err != context.Canceled || last.ev != (Event{}) {
			t.Fatalf("after=%d: final delivery (%+v, %v), want (zero, context.Canceled)", after, last.ev, last.err)
		}
		assertSameDeliveries(t, full[:after], got[:after])
		if live := LiveBatches(); live != 0 {
			t.Fatalf("after=%d: %d pooled batches leaked on cancellation", after, live)
		}
	}
}

// TestDeliverAllocBudget: with a warm pool, delivering thousands of events
// must cost only the two merge heaps — the per-event budget is zero.
func TestDeliverAllocBudget(t *testing.T) {
	ctx := context.Background()
	st := &Stats{}
	faults := synthFaultStreams(11, 8, 1024)
	sessions := synthSessionStreams(12, 8, 1024)
	events := 1 + 2*8*1024
	drain := func() {
		n := 0
		Deliver(ctx, func(ev Event, err error) bool {
			if err != nil {
				t.Fatal(err)
			}
			n++
			return true
		}, st, faults, sessions)
		if n != events {
			t.Fatalf("delivered %d events, want %d", n, events)
		}
	}
	drain() // warm the batch pool
	allocs := testing.AllocsPerRun(5, drain)
	// Two cursor heaps plus pool noise; 16k+ events must not show up.
	if allocs > 8 {
		t.Fatalf("Deliver allocated %.0f times for %d events, budget 8 total", allocs, events)
	}
}
