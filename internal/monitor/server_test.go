package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/core"
	"unprotected/internal/dram"
	"unprotected/internal/timebase"
)

// TestMonitorHandlersBeforeFirstRound: every study endpoint answers 503
// until the first poll round publishes, so probes hold traffic.
func TestMonitorHandlersBeforeFirstRound(t *testing.T) {
	m, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := m.Handler()
	for _, path := range []string{"/study", "/healthz", "/nodes", "/nodes/01-01"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s before first round: %d, want 503", path, rec.Code)
		}
	}
	// /metrics stays live: the ingest counters exist from the start.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "unprotected_snapshot_epoch 0") {
		t.Errorf("/metrics before first round: %d\n%s", rec.Code, rec.Body.String())
	}
}

// TestMonitorDaemonEndToEnd is the live-daemon test: a monitor on a real
// wall-clock cadence serving real HTTP while writers append concurrently.
// It polls /study and /metrics until the fleet converges, checks every
// endpoint, then proves the final snapshot byte-identical to a one-shot
// replay — the daemon seen from outside.
func TestMonitorDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m, err := New(dir, WithInterval(2*time.Millisecond), WithController("02-04"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Four writer goroutines, each appending its own node's log — the
	// per-node single-writer discipline the store documents.
	const perNode, nodes = 40, 4
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			host := cluster.NodeID{Blade: n + 1, SoC: 3}
			for i := 0; i < perNode; i++ {
				at := timebase.T(i * 1000)
				appendRecord(t, dir, startRec(host, at))
				if i%4 == 0 {
					appendRecord(t, dir, errorRec(host, at+10, dram.Addr(n*1000+i), 0xFFFFFFFE))
				}
				appendRecord(t, dir, endRec(host, at+900))
				if i%8 == 0 {
					time.Sleep(time.Millisecond) // straddle poll rounds
				}
			}
		}(n)
	}
	wg.Wait()
	wantLines := int64(nodes * (perNode*2 + perNode/4))

	// Poll /study until ingest converges on everything the writers wrote.
	deadline := time.Now().Add(60 * time.Second)
	var rep Report
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: %+v", rep)
		}
		code, body := get("/study")
		if code == http.StatusOK {
			rep = Report{}
			if err := json.Unmarshal([]byte(body), &rep); err != nil {
				t.Fatalf("bad /study JSON: %v\n%s", err, body)
			}
			if rep.Lines == wantLines {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rep.Headline.IndependentFaults != nodes*perNode/4 {
		t.Fatalf("faults %d, want %d", rep.Headline.IndependentFaults, nodes*perNode/4)
	}
	if got := len(rep.Nodes); got != nodes {
		t.Fatalf("verdicts %d, want %d", got, nodes)
	}

	// /metrics carries the study families with converged values.
	_, metrics := get("/metrics")
	if families := strings.Count(metrics, "# TYPE "); families < 6 {
		t.Fatalf("only %d metric families:\n%s", families, metrics)
	}
	for _, want := range []string{
		fmt.Sprintf("unprotected_ingest_lines_total %d", wantLines),
		fmt.Sprintf("unprotected_independent_faults_total %d", nodes*perNode/4),
		"unprotected_regime_days{regime=\"normal\"}",
		"unprotected_worst_node_raw_share{node=",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Health, the node list, one verdict, and the error paths.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	if code, body := get("/nodes/01-03"); code != http.StatusOK || !strings.Contains(body, `"node":"01-03"`) {
		t.Fatalf("/nodes/01-03: %d %s", code, body)
	}
	if code, _ := get("/nodes/99-99"); code != http.StatusBadRequest {
		t.Fatalf("invalid node id: %d, want 400", code)
	}
	if code, _ := get("/nodes/70-01"); code != http.StatusNotFound {
		t.Fatalf("unseen node: %d, want 404", code)
	}
	if resp, err := http.Post(srv.URL+"/study", "text/plain", nil); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /study: %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Two GETs of one epoch return identical bytes (pre-marshalled).
	_, a := get("/study")
	_, b := get("/study")
	if a != b {
		t.Fatal("/study bytes differ within one epoch")
	}

	// Graceful drain: cancel (the daemon's SIGTERM path) and the tail
	// loop exits clean; the final snapshot equals a one-shot replay.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not drain after cancel")
	}
	oneShot, err := core.Analyze(context.Background(), core.Logs(dir), core.WithController("02-04"))
	if err != nil {
		t.Fatal(err)
	}
	if want, got := reportBytes(oneShot), reportBytes(m.Snapshot().Study); !bytes.Equal(want, got) {
		t.Fatalf("daemon's final snapshot diverges from one-shot replay:\n--- one-shot ---\n%s\n--- monitor ---\n%s", want, got)
	}
}

// TestMonitorMetricsConcurrentReaders floods the handler with 100
// concurrent readers while ingest keeps publishing epochs underneath —
// the lock-free render claim, proven under the race detector.
func TestMonitorMetricsConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	host := cluster.NodeID{Blade: 9, SoC: 1}
	appendRecord(t, dir, startRec(host, 0))
	m, step, cancel, _ := stepMonitor(t, dir)
	waitEpoch(t, m, 1)

	h := m.Handler()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		// Keep epochs churning while readers render.
		defer writers.Done()
		at := timebase.T(1000)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			appendRecord(t, dir, errorRec(host, at+timebase.T(i*100), dram.Addr(i+1), 0xFFFFFFFE))
			step <- struct{}{}
		}
	}()

	const readers = 100
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/metrics"
			if i%3 == 1 {
				path = "/study"
			} else if i%3 == 2 {
				path = "/nodes"
			}
			for j := 0; j < 20; j++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("%s: %d", path, rec.Code)
					return
				}
				if path == "/metrics" && !strings.Contains(rec.Body.String(), "unprotected_snapshot_epoch") {
					errs <- "metrics body missing epoch family"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	writers.Wait()
	cancel()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}
