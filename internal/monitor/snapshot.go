package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"unprotected/internal/analysis"
	"unprotected/internal/cluster"
	"unprotected/internal/core"
	"unprotected/internal/logstore"
)

// Snapshot is one published epoch: a complete, immutable view of the
// study at a poll-round boundary. Everything in it is computed before the
// pointer swap, so readers only ever load and format — no computation
// races ingest, and two readers of one epoch always see identical bytes.
type Snapshot struct {
	// Epoch increments per publish; /healthz and the tests use it to
	// detect progress.
	Epoch int64
	// Study is the full analysis at this epoch, rebuilt in canonical
	// order (see rebuild); immutable by convention.
	Study *core.Study
	// Report is the JSON view served by /study.
	Report *Report
	// studyJSON is Report pre-marshalled: /study is a write, not a
	// marshal, and every GET of one epoch returns identical bytes.
	studyJSON []byte
	// byNode indexes Report.Nodes for the per-node verdict endpoint.
	byNode map[string]*NodeVerdict
}

// Report is the deterministic JSON shape of /study. All fields derive
// from the Study's figure accumulators; float fields are sanitized
// (NaN/Inf become 0) so an empty or fault-free directory still marshals.
type Report struct {
	Epoch int64 `json:"epoch"`
	// Ingest counters frozen at publish time.
	Rounds      int64 `json:"rounds"`
	Lines       int64 `json:"lines"`
	Files       int64 `json:"files"`
	Truncations int64 `json:"truncations"`
	Reopens     int64 `json:"reopens"`

	Headline     HeadlineReport     `json:"headline"`
	MultiBit     MultiBitReport     `json:"multi_bit"`
	Simultaneity SimultaneityReport `json:"simultaneity"`
	Regimes      RegimesReport      `json:"regimes"`
	HourOfDay    HourOfDayReport    `json:"hour_of_day"`
	Nodes        []NodeVerdict      `json:"nodes"`
}

// HeadlineReport mirrors the §III-B headline block of FullReport.
type HeadlineReport struct {
	RawLogs            int64   `json:"raw_logs"`
	TopRawNode         string  `json:"top_raw_node,omitempty"`
	TopNodeRawShare    float64 `json:"top_node_raw_share"`
	IndependentFaults  int     `json:"independent_faults"`
	MultiBitFaults     int     `json:"multi_bit_faults"`
	NodeHours          float64 `json:"node_hours"`
	TotalTBh           float64 `json:"total_tbh"`
	FaultsPerTBh       float64 `json:"faults_per_tbh"`
	NodesScanned       int     `json:"nodes_scanned"`
	NodesWithFaults    int     `json:"nodes_with_faults"`
	ClusterMTBFMinutes float64 `json:"cluster_mtbf_minutes"`
	NodeMTBFHours      float64 `json:"node_mtbf_hours"`
	Ones2Zeros         int     `json:"ones_to_zeros"`
	Zeros2Ones         int     `json:"zeros_to_ones"`
}

// MultiBitReport mirrors the Table I aggregates (§III-C).
type MultiBitReport struct {
	TotalEvents     int     `json:"total_events"`
	DoubleBitEvents int     `json:"double_bit_events"`
	OverTwoBits     int     `json:"over_two_bits"`
	OverThreeBits   int     `json:"over_three_bits"`
	NonConsecutive  int     `json:"non_consecutive"`
	MeanGap         float64 `json:"mean_gap"`
	MaxGap          int     `json:"max_gap"`
	LSBShare        float64 `json:"lsb_share"`
}

// SimultaneityReport mirrors the Fig 4 aggregates (§III-C).
type SimultaneityReport struct {
	FaultsInGroups    int `json:"faults_in_groups"`
	SingleBitOnly     int `json:"single_bit_only"`
	DoubleWithSingle  int `json:"double_with_single"`
	TripleWithSingle  int `json:"triple_with_single"`
	DoubleDoublePairs int `json:"double_double_pairs"`
	MaxGroupBits      int `json:"max_group_bits"`
}

// RegimesReport mirrors the Fig 13 day classification (§III-I).
type RegimesReport struct {
	NormalDays        int     `json:"normal_days"`
	DegradedDays      int     `json:"degraded_days"`
	NormalErrors      int     `json:"normal_errors"`
	DegradedErrors    int     `json:"degraded_errors"`
	MTBFNormalHours   float64 `json:"mtbf_normal_hours"`
	MTBFDegradedHours float64 `json:"mtbf_degraded_hours"`
}

// HourOfDayReport mirrors the Figs 5-6 day/night summary (§III-E).
type HourOfDayReport struct {
	DayNightRatioAll      float64 `json:"day_night_ratio_all"`
	DayNightRatioMultiBit float64 `json:"day_night_ratio_multi_bit"`
	MultiBitPeakHour      int     `json:"multi_bit_peak_hour"`
}

// NodeVerdict is one node's standing in the fleet at this epoch.
type NodeVerdict struct {
	Node     string  `json:"node"`
	Class    string  `json:"class"`
	Faults   int     `json:"faults"`
	MultiBit int     `json:"multi_bit"`
	RawLogs  int64   `json:"raw_logs"`
	Sessions int     `json:"sessions"`
	Open     int     `json:"open_sessions"`
	Hours    float64 `json:"hours"`
	TBh      float64 `json:"tbh"`
	Excluded bool    `json:"excluded,omitempty"`
}

// Verdict classes, from best to worst. A node is pathological when it
// contributes the majority of the fleet's raw error volume while its
// errors collapse to few independent faults — the paper's 38-03 profile.
const (
	ClassClean        = "clean"
	ClassFaulty       = "faulty"
	ClassMultiBit     = "multi-bit"
	ClassPathological = "pathological"
)

// sanitize clamps the non-finite float artifacts of an empty study
// (0/0 rates, MTBF of zero faults) to zero so the report always marshals.
func sanitize(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// newSnapshot derives the full published view from a rebuilt Study and
// the live tail counters. It runs on the ingest goroutine, before the
// epoch swap; a marshal failure is impossible after sanitization, so it
// panics rather than publishing a half-built epoch.
func newSnapshot(epoch int64, study *core.Study, st *logstore.FollowStats) *Snapshot {
	h := study.Headline()
	mb := study.MultiBitStats()
	sim := study.SimultaneityStats()
	reg := study.RegimesFigure()
	hod := study.HourOfDayFigure()

	rep := &Report{
		Epoch:       epoch,
		Rounds:      st.Rounds.Load(),
		Lines:       st.Lines.Load(),
		Files:       st.Files.Load(),
		Truncations: st.Truncations.Load(),
		Reopens:     st.Reopens.Load(),
		Headline: HeadlineReport{
			RawLogs:            h.RawLogs,
			TopNodeRawShare:    sanitize(h.TopNodeRawShare),
			IndependentFaults:  h.IndependentFaults,
			MultiBitFaults:     h.MultiBitFaults,
			NodeHours:          sanitize(float64(h.NodeHours)),
			TotalTBh:           sanitize(float64(h.TotalTBh)),
			FaultsPerTBh:       rate(float64(h.IndependentFaults), float64(h.TotalTBh)),
			NodesScanned:       h.NodesScanned,
			NodesWithFaults:    h.NodesWithFaults,
			ClusterMTBFMinutes: sanitize(h.ClusterMTBFMinutes),
			NodeMTBFHours:      sanitize(h.NodeMTBFHours),
			Ones2Zeros:         h.Ones2Zeros,
			Zeros2Ones:         h.Zeros2Ones,
		},
		MultiBit: MultiBitReport{
			TotalEvents:     mb.TotalEvents,
			DoubleBitEvents: mb.DoubleBitEvents,
			OverTwoBits:     mb.OverTwoBits,
			OverThreeBits:   mb.OverThreeBits,
			NonConsecutive:  mb.NonConsecutive,
			MeanGap:         sanitize(mb.MeanGap),
			MaxGap:          mb.MaxGap,
			LSBShare:        sanitize(mb.LSBShare),
		},
		Simultaneity: SimultaneityReport{
			FaultsInGroups:    sim.FaultsInGroups,
			SingleBitOnly:     sim.SingleBitOnly,
			DoubleWithSingle:  sim.DoubleWithSingle,
			TripleWithSingle:  sim.TripleWithSingle,
			DoubleDoublePairs: sim.DoubleDoublePairs,
			MaxGroupBits:      sim.MaxGroupBits,
		},
		Regimes: RegimesReport{
			NormalDays:        reg.NormalDays,
			DegradedDays:      reg.DegradedDays,
			NormalErrors:      reg.NormalErrors,
			DegradedErrors:    reg.DegradedErrors,
			MTBFNormalHours:   sanitize(reg.MTBFNormalHours),
			MTBFDegradedHours: sanitize(reg.MTBFDegradedHours),
		},
		HourOfDay: HourOfDayReport{
			DayNightRatioAll:      sanitize(analysis.DayNightRatio(hod.Total())),
			DayNightRatioMultiBit: sanitize(analysis.DayNightRatio(hod.MultiBit())),
			MultiBitPeakHour:      analysis.PeakHour(hod.MultiBit()),
		},
	}
	if h.RawLogs > 0 {
		rep.Headline.TopRawNode = h.TopRawNode.String()
	}
	rep.Nodes = verdicts(study, h)

	body, err := json.Marshal(rep)
	if err != nil {
		panic(fmt.Sprintf("monitor: snapshot marshal: %v", err))
	}
	snap := &Snapshot{
		Epoch:     epoch,
		Study:     study,
		Report:    rep,
		studyJSON: body,
		byNode:    make(map[string]*NodeVerdict, len(rep.Nodes)),
	}
	for i := range rep.Nodes {
		snap.byNode[rep.Nodes[i].Node] = &rep.Nodes[i]
	}
	return snap
}

// rate is a sanitized division: zero denominator yields zero, not Inf.
func rate(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return sanitize(num / den)
}

// verdicts classifies every node the snapshot has seen, in node order.
func verdicts(study *core.Study, h analysis.Headline) []NodeVerdict {
	d := study.Dataset
	acc := make(map[cluster.NodeID]*NodeVerdict)
	var order []cluster.NodeID
	at := func(id cluster.NodeID) *NodeVerdict {
		v, ok := acc[id]
		if !ok {
			v = &NodeVerdict{Node: id.String()}
			acc[id] = v
			order = append(order, id)
		}
		return v
	}
	for _, f := range d.Faults {
		v := at(f.Node)
		v.Faults++
		if f.BitCount() > 1 {
			v.MultiBit++
		}
	}
	for _, s := range d.Sessions {
		v := at(s.Host)
		v.Sessions++
		if s.Truncated {
			v.Open++
		}
		v.Hours += s.Duration().Hours()
		v.TBh += float64(s.TBh())
	}
	for id, raw := range d.RawLogsByNode {
		at(id).RawLogs = raw
	}
	// Map-accumulated; the sort below dominates iteration order.
	sort.Slice(order, func(i, j int) bool { return compareNodes(order[i], order[j]) < 0 })

	out := make([]NodeVerdict, 0, len(order))
	for _, id := range order {
		v := acc[id]
		switch {
		// The paper's pathological profile: the fleet's dominant raw-log
		// source (>50% of all raw volume) whose flood collapses to few
		// independent faults — exactly how 38-03 presented (§III-A).
		case h.RawLogs > 0 && v.RawLogs*2 > h.RawLogs:
			v.Class = ClassPathological
		case v.MultiBit > 0:
			v.Class = ClassMultiBit
		case v.Faults > 0:
			v.Class = ClassFaulty
		default:
			v.Class = ClassClean
		}
		v.Excluded = id == d.ControllerNode
		v.Hours = sanitize(v.Hours)
		v.TBh = sanitize(v.TBh)
		out = append(out, *v)
	}
	return out
}
