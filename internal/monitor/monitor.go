// Package monitor is the long-running fleet monitor's serving core: it
// tails a live log directory through logstore.Follow, folds every record
// into per-node §II-C state incrementally, and publishes immutable Study
// snapshots that N concurrent HTTP readers consume without ever
// contending with ingest.
//
// The concurrency design is a single-writer epoch pointer swap. One
// goroutine (Run) owns all mutable ingest state — per-node collapsers and
// session accounting — and nothing else may touch it. At every poll-round
// boundary it rebuilds a complete *Snapshot and publishes it with one
// atomic pointer store; readers load the pointer and hold an immutable
// value forever after. No lock is ever held across a render, and a slow
// reader delays nobody: it just keeps an old epoch alive.
//
// Snapshots are rebuilt in the canonical global order, not arrival order:
// follow-mode delivers records in per-node arrival order, but the figure
// accumulators (the simultaneity grouper above all) require the canonical
// merged order, so each snapshot re-sorts the per-node state and streams
// it through core.Analyze exactly the way the one-shot log replay does.
// At quiescence the snapshot is therefore byte-identical to a one-shot
// Analyze over the same directory — the equivalence DESIGN.md §13 argues
// and TestMonitorQuiescenceEquivalence pins.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync/atomic"
	"time"

	"unprotected/internal/cluster"
	"unprotected/internal/core"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/fdlimit"
	"unprotected/internal/iofault"
	"unprotected/internal/logstore"
	"unprotected/internal/stream"
)

// Option configures a Monitor.
type Option func(*Monitor) error

// WithController names the permanently failing node excluded from
// MTBF-style analyses (§III-I), exactly as core.WithController does for a
// one-shot replay. Empty disables the exclusion.
func WithController(node string) Option {
	return func(m *Monitor) error {
		if node != "" {
			if _, err := cluster.ParseNodeID(node); err != nil {
				return err
			}
		}
		m.controller = node
		return nil
	}
}

// WithInterval sets the tail poll cadence (default one second).
func WithInterval(d time.Duration) Option {
	return func(m *Monitor) error {
		if d <= 0 {
			return fmt.Errorf("monitor: non-positive poll interval %v", d)
		}
		m.follow = append(m.follow, logstore.FollowWithInterval(d))
		return nil
	}
}

// WithFS routes the tailer's file operations through fsys — the chaos
// tests' injection seam.
func WithFS(fsys iofault.FS) Option {
	return func(m *Monitor) error {
		m.follow = append(m.follow, logstore.FollowWithFS(fsys))
		return nil
	}
}

// WithBudget meters the tailer's long-lived descriptors from b instead of
// the shared process-wide pool.
func WithBudget(b *fdlimit.Budget) Option {
	return func(m *Monitor) error {
		m.follow = append(m.follow, logstore.FollowWithBudget(b))
		return nil
	}
}

// WithTicker injects the poll ticker (see logstore.FollowWithTicker);
// tests drive rounds deterministically through it.
func WithTicker(wait func(ctx context.Context) bool) Option {
	return func(m *Monitor) error {
		m.follow = append(m.follow, logstore.FollowWithTicker(wait))
		return nil
	}
}

// Monitor tails one log directory and serves its evolving Study.
// Construct with New, start exactly one Run, and share the Monitor
// freely among HTTP handlers: Snapshot and Stats are safe for any number
// of concurrent callers.
type Monitor struct {
	dir        string
	controller string
	follow     []logstore.FollowOption
	stats      logstore.FollowStats

	// snap is the epoch pointer: Run stores, everyone else loads. Nil
	// until the first poll round completes.
	snap atomic.Pointer[Snapshot]

	// Ingest state below is owned exclusively by the Run goroutine.
	nodes map[cluster.NodeID]*nodeState
	order []cluster.NodeID // sorted keys of nodes
	dirty bool
	epoch int64
}

// nodeState is one node's incremental §II-C pipeline: records fold in as
// they arrive, snapshots read it non-destructively.
type nodeState struct {
	col  *extract.Collapser
	acct *eventlog.Accounting
}

// New builds a Monitor over dir. Nothing is read until Run.
func New(dir string, opts ...Option) (*Monitor, error) {
	m := &Monitor{dir: dir, nodes: make(map[cluster.NodeID]*nodeState), dirty: true}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("monitor: nil Option")
		}
		if err := opt(m); err != nil {
			return nil, err
		}
	}
	m.follow = append(m.follow, logstore.FollowWithStats(&m.stats))
	return m, nil
}

// Snapshot returns the latest published snapshot, nil before the first
// poll round completes. The returned value is immutable and never
// invalidated: callers may hold it as long as they like.
func (m *Monitor) Snapshot() *Snapshot { return m.snap.Load() }

// Stats exposes the live tail counters (atomics; lock-free reads).
func (m *Monitor) Stats() *logstore.FollowStats { return &m.stats }

// Run tails the directory until ctx is cancelled, publishing a fresh
// snapshot after every poll round that ingested anything (and after the
// first round regardless, so an empty directory still serves an empty
// study). It must be called exactly once; cancellation is a clean
// shutdown and returns nil, any other stream or rebuild error is fatal
// and returned.
func (m *Monitor) Run(ctx context.Context) error {
	for ev, err := range logstore.Follow(ctx, m.dir, m.follow...) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil
			}
			return err
		}
		switch ev.Kind {
		case stream.KindRecord:
			m.ingest(ev.Record)
		case stream.KindReset:
			m.reset(ev.Record.Host)
		case stream.KindSync:
			if !m.dirty {
				continue
			}
			if err := m.publish(ctx); err != nil {
				if errors.Is(err, context.Canceled) {
					return nil
				}
				return err
			}
			m.dirty = false
		}
	}
	return nil
}

// ingest folds one record into its node's state. Records are keyed by
// their host= field — under the store's one-file-per-node layout this is
// exactly the per-file state the one-shot loader keeps (DESIGN.md §13).
func (m *Monitor) ingest(rec eventlog.Record) {
	ns, ok := m.nodes[rec.Host]
	if !ok {
		ns = &nodeState{col: extract.NewCollapser(), acct: eventlog.NewAccounting()}
		m.nodes[rec.Host] = ns
		i := sort.Search(len(m.order), func(i int) bool {
			return compareNodes(m.order[i], rec.Host) >= 0
		})
		m.order = append(m.order, cluster.NodeID{})
		copy(m.order[i+1:], m.order[i:])
		m.order[i] = rec.Host
	}
	ns.acct.Observe(rec)
	ns.col.Observe(rec)
	m.dirty = true
}

// reset discards one node's accumulated state: its backing file was
// truncated, rotated or removed (stream.KindReset), so everything folded
// from it no longer reflects disk. The file's current content follows as
// fresh records — without the discard those re-delivered lines would be
// double-counted and the quiescence equivalence would break.
func (m *Monitor) reset(host cluster.NodeID) {
	if _, ok := m.nodes[host]; !ok {
		return
	}
	delete(m.nodes, host)
	i := sort.Search(len(m.order), func(i int) bool {
		return compareNodes(m.order[i], host) >= 0
	})
	m.order = append(m.order[:i], m.order[i+1:]...)
	m.dirty = true
}

// compareNodes orders nodes the way sorted file paths do: FileName
// zero-pads both coordinates, so lexicographic file order is (Blade, SoC)
// order — the property that makes the snapshot's merge identical to the
// one-shot loader's.
func compareNodes(a, b cluster.NodeID) int {
	if a.Blade != b.Blade {
		if a.Blade < b.Blade {
			return -1
		}
		return 1
	}
	switch {
	case a.SoC < b.SoC:
		return -1
	case a.SoC > b.SoC:
		return 1
	}
	return 0
}

// publish rebuilds the Study from the per-node state and swaps it in as
// the new epoch.
func (m *Monitor) publish(ctx context.Context) error {
	study, err := m.rebuild(ctx)
	if err != nil {
		return err
	}
	m.epoch++
	snap := newSnapshot(m.epoch, study, &m.stats)
	m.snap.Store(snap)
	return nil
}

// rebuild re-establishes the canonical global order — per-node snapshots,
// locally sorted, k-way merged in node order via stream.Deliver — and
// streams it through core.Analyze, mirroring the one-shot loader's
// pipeline stage for stage. Both per-node snapshot calls are
// non-destructive, so ingest resumes untouched afterwards.
func (m *Monitor) rebuild(ctx context.Context) (*core.Study, error) {
	stats := stream.Stats{RawLogsByNode: make(map[cluster.NodeID]int64)}
	src := &memSource{stats: &stats}
	for _, id := range m.order {
		ns := m.nodes[id]
		runs, raw := ns.col.Snapshot()
		stats.RawLogs += raw
		stats.Faults += len(runs)
		for _, r := range runs {
			stats.RawLogsByNode[r.Node] += int64(r.Logs)
		}
		if len(runs) > 0 {
			faults := extract.Faults(runs)
			extract.SortFaults(faults)
			src.faults = append(src.faults, faults)
		}
		sessions := ns.acct.Snapshot(nil)
		sort.Slice(sessions, func(i, j int) bool {
			return eventlog.CompareSessions(&sessions[i], &sessions[j]) < 0
		})
		stats.Sessions += len(sessions)
		if len(sessions) > 0 {
			src.sessions = append(src.sessions, sessions)
		}
	}
	var opts []core.Option
	if m.controller != "" {
		opts = append(opts, core.WithController(m.controller))
	}
	return core.Analyze(ctx, src, opts...)
}

// memSource replays the rebuilt per-node streams through the standard
// delivery contract — the same stream.Deliver call the one-shot log
// replay ends in, which is what makes the two paths byte-identical.
type memSource struct {
	stats    *stream.Stats
	faults   [][]extract.Fault
	sessions [][]eventlog.Session
}

func (s *memSource) Events(ctx context.Context) iter.Seq2[stream.Event, error] {
	return func(yield func(stream.Event, error) bool) {
		stream.Deliver(ctx, yield, s.stats, s.faults, s.sessions)
	}
}
