package monitor

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/core"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/logstore"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// stepMonitor runs m.Run in a goroutine under an injected stepper ticker:
// each send on step permits one more poll round (the first round runs
// unprompted), closing step ends the follow. done receives Run's error.
func stepMonitor(t *testing.T, dir string, opts ...Option) (m *Monitor, step chan struct{}, cancel context.CancelFunc, done chan error) {
	t.Helper()
	step = make(chan struct{})
	opts = append(opts, WithTicker(func(ctx context.Context) bool {
		select {
		case <-ctx.Done():
			return false
		case _, ok := <-step:
			return ok
		}
	}))
	m, err := New(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	exited := make(chan struct{})
	go func() { done <- m.Run(ctx); close(exited) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-exited:
		case <-time.After(30 * time.Second):
			t.Error("Run did not exit after cancel")
		}
	})
	return m, step, cancel, done
}

// waitEpoch polls until a snapshot with at least the wanted epoch is
// published.
func waitEpoch(t *testing.T, m *Monitor, want int64) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if s := m.Snapshot(); s != nil && s.Epoch >= want {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no snapshot reached epoch %d", want)
	return nil
}

// reportBytes renders the study's full numeric report — every figure and
// table, the byte-equivalence oracle.
func reportBytes(s *core.Study) []byte {
	var buf bytes.Buffer
	s.FullReport(&buf, core.ReportOptions{Charts: true})
	return buf.Bytes()
}

// splitLines splits raw file content at a line boundary near frac.
func splitLines(raw []byte, frac float64) (head, tail []byte) {
	cut := int(float64(len(raw)) * frac)
	if cut >= len(raw) {
		return raw, nil
	}
	i := bytes.IndexByte(raw[cut:], '\n')
	if i < 0 {
		return raw, nil
	}
	return raw[:cut+i+1], raw[cut+i+1:]
}

// TestMonitorQuiescenceEquivalence is the serving core's central claim:
// after live, incremental, arrival-order ingest goes quiet, the published
// snapshot is byte-identical — every figure, every table — to a one-shot
// Analyze replay of the same directory. The corpus is a subsampled
// simulated campaign (full fault set, every 6th session) staged into the
// live directory in three phases: a backlog, partial per-file appends cut
// mid-file, and late-arriving node files.
func TestMonitorQuiescenceEquivalence(t *testing.T) {
	ds, err := core.Analyze(context.Background(), core.Simulate(campaign.DefaultConfig(7)))
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]eventlog.Session, 0, len(ds.Dataset.Sessions)/6+1)
	for i := 0; i < len(ds.Dataset.Sessions); i += 6 {
		sessions = append(sessions, ds.Dataset.Sessions[i])
	}
	staging := t.TempDir()
	if err := logstore.Export(sessions, ds.Dataset.Faults, staging); err != nil {
		t.Fatal(err)
	}
	files, err := logstore.ListNodeFiles(staging)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 100 {
		t.Fatalf("corpus too small: %d files", len(files))
	}

	live := t.TempDir()
	write := func(path string, data []byte, appendTo bool) {
		flags := os.O_CREATE | os.O_WRONLY
		if appendTo {
			flags |= os.O_APPEND
		}
		f, err := os.OpenFile(path, flags, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1 backlog: the first 60% of every even-indexed file.
	type pending struct {
		path string
		data []byte
	}
	var phase2, phase3 []pending
	for i, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(live, filepath.Base(path))
		if i%2 == 0 {
			head, tail := splitLines(raw, 0.6)
			write(dst, head, false)
			if len(tail) > 0 {
				phase2 = append(phase2, pending{dst, tail})
			}
		} else {
			// Odd-indexed files appear only mid-tail: new-file discovery.
			phase3 = append(phase3, pending{dst, raw})
		}
	}

	m, step, cancel, done := stepMonitor(t, live, WithController("02-04"))
	snap := waitEpoch(t, m, 1)
	if snap.Report.Lines == 0 || snap.Report.Files == 0 {
		t.Fatalf("backlog round ingested nothing: %+v", snap.Report)
	}

	// Phase 2: finish the cut files. Phase 3: the late node files.
	for _, p := range phase2 {
		write(p.path, p.data, true)
	}
	step <- struct{}{}
	waitEpoch(t, m, 2)
	for _, p := range phase3 {
		write(p.path, p.data, false)
	}
	step <- struct{}{}
	final := waitEpoch(t, m, 3)
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	oneShot, err := core.Analyze(context.Background(), core.Logs(live), core.WithController("02-04"))
	if err != nil {
		t.Fatal(err)
	}
	want, got := reportBytes(oneShot), reportBytes(final.Study)
	if !bytes.Equal(want, got) {
		t.Fatalf("quiescent snapshot diverges from one-shot replay:\n--- one-shot ---\n%s\n--- monitor ---\n%s", want, got)
	}
	if final.Report.Lines != m.Stats().Lines.Load() {
		t.Fatalf("frozen line counter %d != live %d at quiescence", final.Report.Lines, m.Stats().Lines.Load())
	}
}

// mkrec appends one canonical log line to a node file.
func appendRecord(t *testing.T, dir string, rec eventlog.Record) {
	t.Helper()
	path := filepath.Join(dir, logstore.FileName(rec.Host))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(rec.AppendText(nil), '\n')); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func startRec(host cluster.NodeID, at timebase.T) eventlog.Record {
	return eventlog.Record{Kind: eventlog.KindStart, At: at, Host: host, AllocBytes: 2 << 30, TempC: thermal.NoReading}
}

func endRec(host cluster.NodeID, at timebase.T) eventlog.Record {
	return eventlog.Record{Kind: eventlog.KindEnd, At: at, Host: host, TempC: thermal.NoReading}
}

func errorRec(host cluster.NodeID, at timebase.T, addr dram.Addr, actual uint32) eventlog.Record {
	return eventlog.Record{
		Kind: eventlog.KindError, At: at, Host: host,
		VAddr: dram.VirtAddr(addr), Expected: 0xFFFFFFFF, Actual: actual,
		TempC: thermal.NoReading,
	}
}

// TestMonitorVerdictClasses pins the per-node classification rules on a
// hand-built fleet: a clean node, a single-bit faulty node, a multi-bit
// node, and a raw-log flooder crossing the pathological threshold.
func TestMonitorVerdictClasses(t *testing.T) {
	dir := t.TempDir()
	clean := cluster.NodeID{Blade: 1, SoC: 1}
	faulty := cluster.NodeID{Blade: 2, SoC: 1}
	multi := cluster.NodeID{Blade: 3, SoC: 1}
	flooder := cluster.NodeID{Blade: 4, SoC: 1}

	appendRecord(t, dir, startRec(clean, 0))
	appendRecord(t, dir, endRec(clean, 3600))
	appendRecord(t, dir, startRec(faulty, 0))
	appendRecord(t, dir, errorRec(faulty, 100, 7, 0xFFFFFFFE))
	appendRecord(t, dir, endRec(faulty, 3600))
	appendRecord(t, dir, startRec(multi, 0))
	appendRecord(t, dir, errorRec(multi, 200, 9, 0xFFFFFF00))
	appendRecord(t, dir, endRec(multi, 3600))
	flood := errorRec(flooder, 300, 11, 0xFFFF7FFF)
	flood.LastAt, flood.Logs = 4000, 1_000_000
	appendRecord(t, dir, startRec(flooder, 0))
	appendRecord(t, dir, flood)

	m, _, cancel, _ := stepMonitor(t, dir)
	snap := waitEpoch(t, m, 1)
	cancel()

	want := map[string]string{
		clean.String():   ClassClean,
		faulty.String():  ClassFaulty,
		multi.String():   ClassMultiBit,
		flooder.String(): ClassPathological,
	}
	if len(snap.Report.Nodes) != len(want) {
		t.Fatalf("verdicts: %+v", snap.Report.Nodes)
	}
	for _, v := range snap.Report.Nodes {
		if want[v.Node] != v.Class {
			t.Errorf("node %s class %q, want %q", v.Node, v.Class, want[v.Node])
		}
	}
	// The flooder's still-open session must be accounted conservatively:
	// present, marked open, zero hours (§II-B).
	fv := snap.byNode[flooder.String()]
	if fv == nil || fv.Open != 1 || fv.Sessions != 1 || fv.Hours != 0 {
		t.Fatalf("flooder verdict %+v, want one open zero-hour session", fv)
	}
	if cv := snap.byNode[clean.String()]; cv == nil || cv.Hours <= 0 {
		t.Fatalf("clean verdict %+v, want positive monitored hours", cv)
	}
}

// TestMonitorIdleRoundsPublishNothing: rounds that ingest nothing must
// not churn epochs — readers of a quiet fleet keep the same snapshot.
// TestMonitorTruncationResetsNodeState: when a node's file is truncated
// and rewritten underneath the tail, the monitor must discard that node's
// accumulated state (stream.KindReset) before folding the re-delivered
// content — otherwise the reread double-counts every session and fault
// and the quiescence equivalence breaks. Found live: a rotated file left
// the node with both the old and the reread sessions.
func TestMonitorTruncationResetsNodeState(t *testing.T) {
	dir := t.TempDir()
	a := cluster.NodeID{Blade: 6, SoC: 2}
	b := cluster.NodeID{Blade: 7, SoC: 1}
	for i := 0; i < 4; i++ {
		at := timebase.T(i * 1000)
		appendRecord(t, dir, startRec(a, at))
		appendRecord(t, dir, errorRec(a, at+5, dram.Addr(i+1), 0xFFFFFFFE))
		appendRecord(t, dir, endRec(a, at+900))
		appendRecord(t, dir, startRec(b, at))
		appendRecord(t, dir, endRec(b, at+900))
	}

	m, step, cancel, _ := stepMonitor(t, dir)
	waitEpoch(t, m, 1)

	// Rotate a's file in place: shorter, different content. The reread
	// must replace a's state, not stack on top of it.
	var fresh []byte
	for _, rec := range []eventlog.Record{
		startRec(a, 10000),
		errorRec(a, 10005, 99, 0xFFFFFFFE),
		endRec(a, 10900),
	} {
		fresh = append(fresh, rec.AppendText(nil)...)
		fresh = append(fresh, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, logstore.FileName(a)), fresh, 0o644); err != nil {
		t.Fatal(err)
	}
	step <- struct{}{}
	snap := waitEpoch(t, m, 2)
	if m.Stats().Truncations.Load() == 0 {
		t.Fatal("rotation not detected as truncation")
	}
	va := snap.Report.Nodes[0]
	if va.Node != "06-02" || va.Sessions != 1 || va.Faults != 1 {
		t.Fatalf("rotated node carries stale state: %+v", va)
	}
	if vb := snap.Report.Nodes[1]; vb.Sessions != 4 {
		t.Fatalf("untouched node disturbed: %+v", vb)
	}

	// And the rebuilt snapshot still equals a one-shot replay of what is
	// on disk now.
	cancel()
	oneShot, err := core.Analyze(context.Background(), core.Logs(dir))
	if err != nil {
		t.Fatal(err)
	}
	if want, got := reportBytes(oneShot), reportBytes(snap.Study); !bytes.Equal(want, got) {
		t.Fatalf("post-truncation snapshot diverges from one-shot replay:\n--- one-shot ---\n%s\n--- monitor ---\n%s", want, got)
	}
}

func TestMonitorIdleRoundsPublishNothing(t *testing.T) {
	dir := t.TempDir()
	appendRecord(t, dir, startRec(cluster.NodeID{Blade: 1, SoC: 2}, 0))
	m, step, cancel, _ := stepMonitor(t, dir)
	snap := waitEpoch(t, m, 1)
	for i := 0; i < 3; i++ {
		step <- struct{}{}
	}
	// The sends above only return once Follow reaches the next wait, so
	// at least two idle rounds have fully completed by now.
	if cur := m.Snapshot(); cur.Epoch != snap.Epoch {
		t.Fatalf("idle rounds advanced the epoch: %d -> %d", snap.Epoch, cur.Epoch)
	}
	cancel()
}

// TestMonitorOptionErrors pins constructor validation.
func TestMonitorOptionErrors(t *testing.T) {
	if _, err := New(t.TempDir(), WithController("not-a-node")); err == nil {
		t.Fatal("bad controller accepted")
	}
	if _, err := New(t.TempDir(), nil); err == nil {
		t.Fatal("nil option accepted")
	}
	if _, err := New(t.TempDir(), WithInterval(-time.Second)); err == nil {
		t.Fatal("negative interval accepted")
	}
}

// TestMonitorRunSurfacesCorruptLine: a malformed line is fatal to the
// tail loop and surfaces from Run with the file position.
func TestMonitorRunSurfacesCorruptLine(t *testing.T) {
	dir := t.TempDir()
	host := cluster.NodeID{Blade: 5, SoC: 5}
	appendRecord(t, dir, startRec(host, 0))
	if err := os.WriteFile(filepath.Join(dir, logstore.FileName(host)), []byte("GARBAGE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err == nil {
		t.Fatal("corrupt line did not surface")
	}
}
