package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"

	"unprotected/internal/cluster"
)

// Handler returns the monitor's HTTP surface:
//
//	GET /study       full study report (JSON, pre-marshalled per epoch)
//	GET /metrics     Prometheus text exposition
//	GET /healthz     liveness + current epoch
//	GET /nodes       every node's verdict (JSON array)
//	GET /nodes/{id}  one node's verdict ("02-04" form)
//
// Every handler reads the epoch pointer once and serves from that
// immutable snapshot: N concurrent readers never block each other or the
// ingest loop, and no lock is held across any render. Before the first
// poll round completes the study endpoints answer 503, so an orchestrator
// probing /healthz holds traffic until the backlog is served.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /study", func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(snap.studyJSON)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		if snap == nil {
			http.Error(w, `{"status":"starting","epoch":0}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","epoch":%d}`, snap.Epoch)
	})
	mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap.Report.Nodes)
	})
	mux.HandleFunc("GET /nodes/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		id, err := cluster.ParseNodeID(r.PathValue("id"))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad node id: %v", err), http.StatusBadRequest)
			return
		}
		v, ok := snap.byNode[id.String()]
		if !ok {
			http.Error(w, "node not seen", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	})
	return mux
}
